// Tests for the beyond-the-paper extensions: cross-correlation lag
// analysis, telemetry loss injection, GPU thermal throttling, the
// power-aware scheduler, and queued-job power prediction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure_analysis.hpp"
#include "core/job_features.hpp"
#include "core/prediction.hpp"
#include "core/simulation.hpp"
#include "power/power_aware_scheduler.hpp"
#include "stats/xcorr.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/inband.hpp"
#include "telemetry/node_sampler.hpp"
#include "telemetry/pipeline.hpp"
#include "thermal/node_thermal.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace exawatt;

// ------------------------------------------------------------------ xcorr

TEST(Xcorr, AutocorrelationOfPeriodicSignal) {
  std::vector<double> x(400);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 20.0);
  }
  const auto r = stats::autocorrelation(x, 40);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_NEAR(r[20], 1.0, 0.12);   // one full period
  EXPECT_NEAR(r[10], -1.0, 0.12);  // half period
}

TEST(Xcorr, AutocorrelationOfNoiseDecays) {
  util::Rng rng(3);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.normal();
  const auto r = stats::autocorrelation(x, 10);
  for (std::size_t k = 1; k <= 10; ++k) EXPECT_LT(std::fabs(r[k]), 0.1);
}

TEST(Xcorr, EstimateLagRecoversShift) {
  util::Rng rng(4);
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<double>(i) * 0.05) + 0.1 * rng.normal();
  }
  for (int shift : {0, 3, 7, 15}) {
    std::vector<double> y(x.size(), 0.0);
    for (std::size_t i = static_cast<std::size_t>(shift); i < y.size(); ++i) {
      y[i] = x[i - static_cast<std::size_t>(shift)] + 0.1 * rng.normal();
    }
    const auto lag = stats::estimate_lag(x, y, 30);
    EXPECT_EQ(lag.lag, shift);
    EXPECT_GT(lag.correlation, 0.8);
  }
}

TEST(Xcorr, EstimateLagNegativeDirection) {
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = std::sin(static_cast<double>(i) * 0.07);
  }
  for (std::size_t i = 5; i < x.size(); ++i) x[i] = y[i - 5];
  // x lags y by 5 -> y leads -> estimate_lag(x, y) should be negative.
  const auto lag = stats::estimate_lag(x, y, 20);
  EXPECT_EQ(lag.lag, -5);
}

TEST(Xcorr, SpearmanMonotoneInvariance) {
  // Spearman is invariant under monotone transforms; Pearson is not.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // strongly convex but monotone
  }
  EXPECT_NEAR(stats::spearman(x, y), 1.0, 1e-9);
}

TEST(Xcorr, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {1, 2, 2, 3};
  EXPECT_NEAR(stats::spearman(x, y), 1.0, 1e-9);
  const std::vector<double> anti = {3, 2, 2, 1};
  EXPECT_NEAR(stats::spearman(x, anti), -1.0, 1e-9);
}

TEST(Xcorr, RejectsBadInputs) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(stats::autocorrelation(tiny, 5), util::CheckError);
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 2};
  EXPECT_THROW((void)stats::spearman(a, b), util::CheckError);
}

// ------------------------------------------------------------ Throttling

TEST(Throttle, InactiveBelowOnset) {
  EXPECT_DOUBLE_EQ(thermal::throttle_factor(40.0), 1.0);
  EXPECT_DOUBLE_EQ(thermal::throttle_factor(83.0), 1.0);
}

TEST(Throttle, LinearDerateAboveOnset) {
  thermal::ThermalParams p;
  const double mid =
      thermal::throttle_factor(0.5 * (p.throttle_onset_c + p.throttle_limit_c),
                               p);
  EXPECT_NEAR(mid, 0.5 * (1.0 + p.throttle_floor), 1e-9);
  EXPECT_DOUBLE_EQ(thermal::throttle_factor(200.0, p), p.throttle_floor);
}

TEST(Throttle, NeverEngagesUnderNormalCooling) {
  // Drive a loaded node through the sampler at the nominal 20 C supply:
  // temperatures must never reach the throttle band (the paper: the
  // facility overcools so throttling/shutdowns never happen).
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(32);
  cfg.seed = 7;
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 6});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay / 6);
  const util::TimeRange window = {util::kHour, util::kHour + 300};
  workload::AllocationIndex alloc(jobs, window, cfg.scale.nodes);
  power::FleetVariability fleet(cfg.scale, 1);
  thermal::FleetThermal thermals(cfg.scale, 2);
  machine::Topology topo(cfg.scale);
  facility::MsbModel msb(topo, 3);
  telemetry::NodeSampler sampler(0, alloc, fleet, thermals, msb, 20.0);
  for (util::TimeSec t = window.begin; t < window.end; ++t) {
    (void)sampler.sample(t);
    for (double c : sampler.temps().gpu_c) {
      EXPECT_LT(c, thermals.params().throttle_onset_c);
    }
  }
}

TEST(Throttle, EngagesUnderWarmWaterFailureInjection) {
  // Failure injection: feed 70 C "coolant" (e.g. a failed plant) and
  // verify the closed loop derates GPU power rather than diverging.
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(32);
  cfg.seed = 7;
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 6});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay / 6);
  const util::TimeRange window = {util::kHour, util::kHour + 600};
  workload::AllocationIndex alloc(jobs, window, cfg.scale.nodes);
  power::FleetVariability fleet(cfg.scale, 1);
  thermal::FleetThermal thermals(cfg.scale, 2);
  machine::Topology topo(cfg.scale);
  facility::MsbModel msb(topo, 3);

  // Find a node busy during the window.
  machine::NodeId busy = -1;
  for (machine::NodeId n = 0; n < cfg.scale.nodes; ++n) {
    if (alloc.job_at(n, window.begin + 300) != nullptr) {
      busy = n;
      break;
    }
  }
  ASSERT_GE(busy, 0);

  telemetry::NodeSampler hot(busy, alloc, fleet, thermals, msb, 70.0);
  telemetry::NodeSampler cool(busy, alloc, fleet, thermals, msb, 20.0);
  double hot_gpu_w = 0.0;
  double cool_gpu_w = 0.0;
  double hottest = 0.0;
  for (util::TimeSec t = window.begin; t < window.end; ++t) {
    const auto rh = hot.sample(t);
    const auto rc = cool.sample(t);
    const int ch = telemetry::channel_of(telemetry::MetricKind::kGpuPower, 0);
    hot_gpu_w += rh.values[static_cast<std::size_t>(ch)];
    cool_gpu_w += rc.values[static_cast<std::size_t>(ch)];
    for (double c : hot.temps().gpu_c) hottest = std::max(hottest, c);
  }
  EXPECT_GT(hottest, thermals.params().throttle_onset_c);  // it did run hot
  EXPECT_LT(hottest, 110.0);                               // but bounded
  EXPECT_LT(hot_gpu_w, 0.97 * cool_gpu_w);                 // derated power
}

// -------------------------------------------------------- Telemetry loss

TEST(TelemetryLoss, RandomLossDropsConfiguredFraction) {
  telemetry::Collector collector(
      {.mean_delay_s = 2.5, .max_delay_s = 5.0, .loss_fraction = 0.2});
  std::vector<telemetry::MetricEvent> events;
  for (int i = 0; i < 20000; ++i) {
    events.push_back({telemetry::metric_id(i % 64, i % 100), i / 64, 1});
  }
  const auto arrivals = collector.ingest(events);
  const double kept = static_cast<double>(arrivals.size()) /
                      static_cast<double>(events.size());
  EXPECT_NEAR(kept, 0.8, 0.02);
  EXPECT_EQ(collector.dropped() + arrivals.size(), events.size());
}

TEST(TelemetryLoss, OutageSilencesNodeWindow) {
  telemetry::Collector collector;
  collector.add_outage({.node = 3, .window = {100, 200}});
  std::vector<telemetry::MetricEvent> events = {
      {telemetry::metric_id(3, 0), 150, 1},   // dropped (outage)
      {telemetry::metric_id(3, 0), 250, 1},   // kept (after window)
      {telemetry::metric_id(4, 0), 150, 1},   // kept (other node)
  };
  const auto arrivals = collector.ingest(events);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(collector.dropped(), 1u);
}

TEST(TelemetryLoss, AggregationTolerantToHoles) {
  // Coarsening over a lossy stream still produces windows (sample-and-
  // hold bridges holes), just as the paper's analysis survived its
  // spring-2020 data loss.
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(16);
  cfg.seed = 9;
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 8});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay / 8);
  const util::TimeRange window = {util::kHour, util::kHour + 300};
  workload::AllocationIndex alloc(jobs, window, cfg.scale.nodes);
  power::FleetVariability fleet(cfg.scale, 1);
  thermal::FleetThermal thermals(cfg.scale, 2);
  machine::Topology topo(cfg.scale);
  facility::MsbModel msb(topo, 3);
  telemetry::Pipeline pipeline({0, 1}, alloc, fleet, thermals, msb, 20.0,
                               {.loss_fraction = 0.5});
  (void)pipeline.run(window);
  const auto agg = telemetry::aggregate_metric(
      pipeline.archive(),
      telemetry::metric_id(0, telemetry::channel_of(
                                  telemetry::MetricKind::kInputPower, 0)),
      window);
  std::size_t nonempty = 0;
  for (std::size_t w = 0; w < agg.size(); ++w) {
    if (agg[w].count > 0) ++nonempty;
  }
  EXPECT_GT(nonempty, agg.size() / 2);
}

// ------------------------------------------------- Power-aware scheduler

std::vector<workload::Job> two_day_jobs(machine::MachineScale scale) {
  workload::WorkloadConfig cfg;
  cfg.scale = scale;
  cfg.seed = 77;
  workload::JobGenerator gen(cfg);
  return gen.generate({0, 2 * util::kDay});
}

TEST(PowerAware, UncappedMatchesBaselineShape) {
  const auto scale = machine::MachineScale::small(512);
  auto jobs_a = two_day_jobs(scale);
  auto jobs_b = jobs_a;
  workload::Scheduler base(scale);
  power::PowerAwareScheduler aware(scale, {.cluster_cap_w = 0.0});
  const auto sa = base.run(jobs_a, 2 * util::kDay);
  const auto sb = aware.run(jobs_b, 2 * util::kDay);
  EXPECT_EQ(sa.scheduled, sb.base.scheduled);
  EXPECT_NEAR(sa.utilization, sb.base.utilization, 1e-9);
  EXPECT_EQ(sb.power_blocked, 0u);
}

TEST(PowerAware, CapNeverExceededByCommittedPeaks) {
  const auto scale = machine::MachineScale::small(512);
  auto jobs = two_day_jobs(scale);
  const double cap = 0.75e6;  // ~0.75 MW for a 512-node machine
  power::PowerAwareScheduler aware(scale, {.cluster_cap_w = cap});
  const auto stats = aware.run(jobs, 2 * util::kDay);
  EXPECT_LE(stats.peak_committed_w, cap + 1.0);
  EXPECT_GT(stats.power_blocked, 0u);
}

TEST(PowerAware, CapReducesRealizedPeak) {
  const auto scale = machine::MachineScale::small(512);
  auto uncapped = two_day_jobs(scale);
  auto capped = uncapped;
  power::PowerAwareScheduler a(scale, {.cluster_cap_w = 0.0});
  power::PowerAwareScheduler b(scale, {.cluster_cap_w = 0.8e6});
  a.run(uncapped, 2 * util::kDay);
  b.run(capped, 2 * util::kDay);
  auto peak_of = [&](const std::vector<workload::Job>& jobs) {
    const auto frame = power::cluster_power_frame(
        jobs, scale, {0, 2 * util::kDay}, {.dt = 300, .subsamples = 2});
    double peak = 0.0;
    const auto& p = frame.at("input_power_w");
    for (std::size_t i = 0; i < p.size(); ++i) peak = std::max(peak, p[i]);
    return peak;
  };
  const double peak_uncapped = peak_of(uncapped);
  const double peak_capped = peak_of(capped);
  EXPECT_LT(peak_capped, peak_uncapped);
  EXPECT_LT(peak_capped, 0.85e6);  // estimate headroom holds realized peak
}

TEST(PowerAware, EstimatedPeakBoundsRealizedJobPower) {
  const auto scale = machine::MachineScale::small(256);
  auto jobs = two_day_jobs(scale);
  workload::Scheduler sched(scale);
  sched.run(jobs, 2 * util::kDay);
  int checked = 0;
  for (const auto& j : jobs) {
    if (j.start < 0 || checked >= 50) continue;
    ++checked;
    const auto s = power::summarize_job(j, 10);
    EXPECT_LE(s.max_power_w,
              power::estimated_peak_power_w(j) * 1.08)  // noise margin
        << "job " << j.id;
  }
  EXPECT_GT(checked, 10);
}

// -------------------------------------------------------------- Predictor

TEST(Predictor, LearnsProjectPortraits) {
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(256);
  config.seed = 15;
  config.range = {0, 5 * util::kDay};
  core::Simulation sim(config);
  const auto all = core::summarize_jobs(sim.jobs());
  ASSERT_GT(all.size(), 500u);
  const std::size_t split = all.size() * 3 / 4;
  const std::vector<power::JobPowerSummary> train(all.begin(),
                                                  all.begin() + split);
  const std::vector<power::JobPowerSummary> test(all.begin() + split,
                                                 all.end());
  core::PowerPredictor predictor(train);
  EXPECT_GT(predictor.portraits(), 10u);
  const auto eval = predictor.evaluate(test);
  EXPECT_GT(eval.jobs, 100u);
  EXPECT_LT(eval.mape_mean, eval.baseline_mape_mean);
  EXPECT_LT(eval.mape_mean, 0.35);
}

TEST(Predictor, PredictionScalesWithNodeCount) {
  std::vector<power::JobPowerSummary> train;
  for (int i = 0; i < 10; ++i) {
    power::JobPowerSummary s;
    s.project = 1;
    s.sched_class = 5;
    s.node_count = 4;
    s.mean_power_w = 4 * 1000.0;
    s.max_power_w = 4 * 1500.0;
    train.push_back(s);
  }
  core::PowerPredictor predictor(train);
  const auto p4 = predictor.predict(1, 5, 4);
  const auto p8 = predictor.predict(1, 5, 8);
  EXPECT_TRUE(p4.from_portrait);
  EXPECT_NEAR(p8.mean_power_w, 2.0 * p4.mean_power_w, 1e-6);
  EXPECT_NEAR(p4.mean_power_w, 4000.0, 1e-6);
}

TEST(Predictor, ColdProjectFallsBackWithWideUncertainty) {
  std::vector<power::JobPowerSummary> train;
  for (int i = 0; i < 20; ++i) {
    power::JobPowerSummary s;
    s.project = 1;
    s.sched_class = 5;
    s.node_count = 2;
    s.mean_power_w = 2 * 900.0;
    s.max_power_w = 2 * 1200.0;
    train.push_back(s);
  }
  core::PowerPredictor predictor(train);
  const auto cold = predictor.predict(/*project=*/999, 5, 2);
  EXPECT_FALSE(cold.from_portrait);
  EXPECT_GE(cold.uncertainty, 0.5);
  EXPECT_GT(cold.mean_power_w, 0.0);
}

TEST(Predictor, RejectsBadInputs) {
  EXPECT_THROW(core::PowerPredictor({}), util::CheckError);
  std::vector<power::JobPowerSummary> one(1);
  one[0].node_count = 2;
  one[0].mean_power_w = 100.0;
  one[0].max_power_w = 150.0;
  core::PowerPredictor p(one);
  EXPECT_THROW((void)p.predict(0, 5, 0), util::CheckError);
}


// ------------------------------------------------------- In-band model

TEST(Inband, OutOfBandIsFree) {
  EXPECT_DOUBLE_EQ(telemetry::inband_slowdown(0.0, 100, 4608), 0.0);
  EXPECT_DOUBLE_EQ(telemetry::inband_slowdown(1.0, 0, 4608), 0.0);
}

TEST(Inband, GrowsWithRateAndScale) {
  const double s1 = telemetry::inband_slowdown(1.0, 100, 1);
  const double s2 = telemetry::inband_slowdown(2.0, 100, 1);
  EXPECT_NEAR(s2 / s1, 2.0, 1e-9);  // linear in sample rate
  const double small = telemetry::inband_slowdown(1.0, 100, 8);
  const double large = telemetry::inband_slowdown(1.0, 100, 4608);
  EXPECT_GT(large, small);  // noise amplification with node count
  EXPECT_LE(telemetry::inband_slowdown(1e9, 100, 4608), 1.0);  // saturates
}

TEST(Inband, LostNodeHoursScalesWithUtilization) {
  const double a = telemetry::inband_lost_node_hours_per_year(
      1.0, 100, 4626, 0.4, 64.0);
  const double b = telemetry::inband_lost_node_hours_per_year(
      1.0, 100, 4626, 0.8, 64.0);
  EXPECT_NEAR(b / a, 2.0, 1e-9);
  EXPECT_THROW((void)telemetry::inband_lost_node_hours_per_year(1.0, 100, 4626,
                                                          1.5, 64.0),
               util::CheckError);
}

// --------------------------------------------------- Spatial breakdown

TEST(SpatialBreakdown, FlatForHealthyFleetSpikyWithDefects) {
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(360);
  config.seed = 23;
  config.range = {0, util::kWeek};
  config.failures.rate_scale = 80.0;
  core::Simulation sim(config);
  const machine::Topology topo(config.scale);
  const auto& log = sim.failure_log();
  ASSERT_GT(log.size(), 500u);

  const auto healthy = core::spatial_breakdown(log, topo, true);
  const auto raw = core::spatial_breakdown(log, topo, false);
  // Counts cover all three coordinates.
  std::uint64_t total = 0;
  for (auto c : healthy.by_height) total += c;
  EXPECT_GT(total, 0u);
  EXPECT_EQ(healthy.by_height.size(), 18u);
  // Excluding defect-heavy nodes flattens the distribution (the NVLink
  // super-offender dominates one cell otherwise).
  EXPECT_LE(healthy.column_peak_ratio, raw.column_peak_ratio + 1e-9);
  EXPECT_LT(healthy.height_peak_ratio, 3.0);
}
}  // namespace
