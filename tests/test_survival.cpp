#include <gtest/gtest.h>

#include <cmath>

#include "core/gpu_survival.hpp"
#include "core/simulation.hpp"
#include "stats/survival.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace exawatt;
using stats::SurvivalObservation;

TEST(KaplanMeier, TextbookExample) {
  // Classic: events at 6, 7; censored at 9; event at 10 (n = 4).
  std::vector<SurvivalObservation> obs = {
      {6, true}, {7, true}, {9, false}, {10, true}};
  stats::KaplanMeier km(obs);
  EXPECT_DOUBLE_EQ(km(5.0), 1.0);
  EXPECT_DOUBLE_EQ(km(6.0), 0.75);        // 1 * (1 - 1/4)
  EXPECT_DOUBLE_EQ(km(8.0), 0.5);         // * (1 - 1/3)
  EXPECT_DOUBLE_EQ(km(9.5), 0.5);         // censoring changes nothing
  EXPECT_DOUBLE_EQ(km(10.0), 0.0);        // * (1 - 1/1)
  EXPECT_DOUBLE_EQ(km.median(), 8.0 < 10 ? 7.0 : 7.0);  // S(7)=0.5
}

TEST(KaplanMeier, AllCensoredStaysAtOne) {
  std::vector<SurvivalObservation> obs(10, {100.0, false});
  stats::KaplanMeier km(obs);
  EXPECT_DOUBLE_EQ(km(1000.0), 1.0);
  EXPECT_TRUE(std::isinf(km.median()));
  EXPECT_EQ(km.total_events(), 0u);
}

TEST(KaplanMeier, TiedEventTimes) {
  std::vector<SurvivalObservation> obs = {
      {5, true}, {5, true}, {5, false}, {8, true}};
  stats::KaplanMeier km(obs);
  EXPECT_DOUBLE_EQ(km(5.0), 0.5);  // 1 - 2/4
  EXPECT_DOUBLE_EQ(km(8.0), 0.0);
}

TEST(KaplanMeier, MatchesExponentialSurvival) {
  // Exponential lifetimes without censoring: S(t) ~ exp(-lambda t).
  util::Rng rng(7);
  std::vector<SurvivalObservation> obs;
  const double lambda = 1.0 / 50.0;
  for (int i = 0; i < 20000; ++i) {
    obs.push_back({rng.exponential(lambda), true});
  }
  stats::KaplanMeier km(obs);
  for (double t : {10.0, 50.0, 100.0}) {
    EXPECT_NEAR(km(t), std::exp(-lambda * t), 0.01) << "t=" << t;
  }
  EXPECT_NEAR(km.median(), std::log(2.0) / lambda, 1.5);
}

TEST(KaplanMeier, RejectsBadInput) {
  EXPECT_THROW(stats::KaplanMeier({}), util::CheckError);
  EXPECT_THROW(stats::KaplanMeier({{-1.0, true}}), util::CheckError);
}

TEST(LogRank, SameDistributionNotSignificant) {
  util::Rng rng(9);
  std::vector<SurvivalObservation> a;
  std::vector<SurvivalObservation> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back({rng.exponential(0.01), true});
    b.push_back({rng.exponential(0.01), true});
  }
  const auto result = stats::log_rank_test(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(LogRank, DifferentHazardsSignificant) {
  util::Rng rng(11);
  std::vector<SurvivalObservation> fast;
  std::vector<SurvivalObservation> slow;
  for (int i = 0; i < 300; ++i) {
    fast.push_back({rng.exponential(0.05), true});
    slow.push_back({rng.exponential(0.01), true});
  }
  const auto result = stats::log_rank_test(fast, slow);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.chi_square, 30.0);
}

TEST(LogRank, CensoringHandled) {
  // Group B heavily censored early: should not fake a difference.
  util::Rng rng(13);
  std::vector<SurvivalObservation> a;
  std::vector<SurvivalObservation> b;
  for (int i = 0; i < 400; ++i) {
    const double t = rng.exponential(0.02);
    a.push_back({t, true});
    const double t2 = rng.exponential(0.02);
    b.push_back({std::min(t2, 30.0), t2 < 30.0});
  }
  const auto result = stats::log_rank_test(a, b);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(GpuSurvival, WeakPoolFailsFirst) {
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(256);
  config.seed = 61;
  config.range = {0, 4 * util::kWeek};
  config.failures.rate_scale = 60.0;
  core::Simulation sim(config);
  const auto study = core::gpu_survival_study(
      sim.failure_log(), sim.failure_generator().defect_pool(),
      config.scale.nodes, config.range);

  ASSERT_EQ(study.all.size(), 256u * 6u);
  const stats::KaplanMeier weak(study.weak_pool);
  const stats::KaplanMeier healthy(study.healthy);
  const double horizon = static_cast<double>(config.range.duration());
  EXPECT_LT(weak(horizon), healthy(horizon));
  EXPECT_LT(study.weak_vs_healthy.p_value, 0.01);
}

TEST(GpuSurvival, ApplicationFailuresExcluded) {
  // A log with only memory page faults (application type) yields zero
  // events: every GPU is censored.
  std::vector<failures::GpuFailureEvent> log(50);
  for (auto& ev : log) {
    ev.type = failures::XidType::kMemoryPageFault;
    ev.node = 1;
    ev.slot = 0;
    ev.time = 100;
  }
  const auto study =
      core::gpu_survival_study(log, {}, 8, {0, util::kDay});
  const stats::KaplanMeier km(study.all);
  EXPECT_EQ(km.total_events(), 0u);
  EXPECT_DOUBLE_EQ(km(static_cast<double>(util::kDay)), 1.0);
}

TEST(GpuSurvival, FirstFailureOnlyCountsOnce) {
  std::vector<failures::GpuFailureEvent> log;
  for (int i = 0; i < 5; ++i) {
    failures::GpuFailureEvent ev;
    ev.type = failures::XidType::kDoubleBitError;
    ev.node = 2;
    ev.slot = 3;
    ev.time = 1000 + i * 100;
    log.push_back(ev);
  }
  const auto study = core::gpu_survival_study(log, {}, 8, {0, util::kDay});
  const stats::KaplanMeier km(study.all);
  EXPECT_EQ(km.total_events(), 1u);  // one GPU failed (at its first event)
  EXPECT_EQ(study.by_slot[3].size(), 8u);
}

}  // namespace
