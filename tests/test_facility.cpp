#include <gtest/gtest.h>

#include <cmath>

#include "facility/cep.hpp"
#include "facility/cooling.hpp"
#include "facility/msb.hpp"
#include "facility/weather.hpp"
#include "util/check.hpp"
#include "util/welford.hpp"

namespace {

using namespace exawatt;

// ---------------------------------------------------------------- Weather

TEST(Weather, SeasonalCycle) {
  facility::Weather w(7);
  util::Welford january;
  util::Welford july;
  for (int d = 0; d < 28; ++d) {
    january.add(w.wet_bulb_c((d + 5) * util::kDay));
    july.add(w.wet_bulb_c((d + 185) * util::kDay));
  }
  EXPECT_LT(january.mean(), 8.0);
  EXPECT_GT(july.mean(), 17.0);
  EXPECT_GT(july.mean() - january.mean(), 10.0);
}

TEST(Weather, DiurnalCycle) {
  facility::Weather w(7);
  const util::TimeSec noon = 200 * util::kDay + 15 * util::kHour;
  const util::TimeSec predawn = 200 * util::kDay + 4 * util::kHour;
  EXPECT_GT(w.wet_bulb_c(noon), w.wet_bulb_c(predawn));
}

TEST(Weather, DryBulbAboveWetBulb) {
  facility::Weather w(7);
  for (int d = 0; d < 366; d += 13) {
    const util::TimeSec t = d * util::kDay + 10 * util::kHour;
    EXPECT_GT(w.dry_bulb_c(t), w.wet_bulb_c(t));
  }
}

TEST(Weather, Deterministic) {
  facility::Weather a(7);
  facility::Weather b(7);
  facility::Weather c(8);
  EXPECT_DOUBLE_EQ(a.wet_bulb_c(1000000), b.wet_bulb_c(1000000));
  EXPECT_NE(a.wet_bulb_c(1000000), c.wet_bulb_c(1000000));
}

// ---------------------------------------------------------------- Cooling

TEST(Cooling, ChillerFractionByWetBulb) {
  facility::CoolingPlant plant;
  EXPECT_DOUBLE_EQ(plant.chiller_fraction(5.0), 0.0);   // winter
  EXPECT_DOUBLE_EQ(plant.chiller_fraction(17.0), 0.0);  // at the knee
  EXPECT_GT(plant.chiller_fraction(19.0), 0.0);
  EXPECT_DOUBLE_EQ(plant.chiller_fraction(25.0), 1.0);  // deep summer
}

TEST(Cooling, WinterPueNearPaperValue) {
  facility::CoolingPlant plant;
  plant.reset(5.5e6, 5.0);
  for (int i = 0; i < 600; ++i) plant.step(10, 5.5e6, 5.0);
  EXPECT_NEAR(plant.state().pue, 1.11, 0.02);
  EXPECT_LT(plant.state().chiller_tons, 1.0);
}

TEST(Cooling, SummerPueHigher) {
  facility::CoolingPlant plant;
  plant.reset(5.5e6, 23.0);
  for (int i = 0; i < 600; ++i) plant.step(10, 5.5e6, 23.0);
  EXPECT_GT(plant.state().pue, 1.2);
  EXPECT_LT(plant.state().pue, 1.35);
  EXPECT_GT(plant.state().chiller_tons, plant.state().tower_tons);
}

TEST(Cooling, ForcedChillersMimicMaintenance) {
  facility::CoolingPlant plant;
  plant.reset(5.5e6, 5.0);
  for (int i = 0; i < 600; ++i) {
    plant.step(10, 5.5e6, 5.0, /*force_chillers=*/true);
  }
  EXPECT_GT(plant.state().pue, 1.25);  // the paper's Feb 1.3 episode
  EXPECT_LT(plant.state().tower_tons, 10.0);
}

TEST(Cooling, ForcedChillersCarryFullLoadOnTrim) {
  // A tower outage moves the whole heat load onto the trim chillers:
  // at steady state the chiller tons must account for essentially the
  // entire IT load, with the towers contributing nothing.
  facility::CoolingPlant plant;
  plant.reset(5.5e6, 5.0);
  for (int i = 0; i < 1200; ++i) {
    plant.step(10, 5.5e6, 5.0, /*force_chillers=*/true);
  }
  const auto& s = plant.state();
  EXPECT_NEAR(s.chiller_tons * facility::kWattsPerTon, 5.5e6, 0.05 * 5.5e6);
  EXPECT_LT(s.tower_tons * facility::kWattsPerTon, 0.02 * 5.5e6);
}

TEST(Cooling, ForcedChillersStrictlyExceedTowerBaseline) {
  // Same load, same winter wet-bulb, stepped in lock-step: the forced
  // plant must pay strictly more facility power — and therefore a
  // strictly higher PUE — than the free-cooling baseline at every step
  // once both have settled. This is the invariant scenariocheck gates
  // on end-to-end; here it is pinned at the plant model itself.
  facility::CoolingPlant forced;
  facility::CoolingPlant baseline;
  forced.reset(5.5e6, 5.0);
  baseline.reset(5.5e6, 5.0);
  for (int i = 0; i < 120; ++i) {  // settle both
    forced.step(10, 5.5e6, 5.0, /*force_chillers=*/true);
    baseline.step(10, 5.5e6, 5.0);
  }
  for (int i = 0; i < 600; ++i) {
    const auto& f = forced.step(10, 5.5e6, 5.0, /*force_chillers=*/true);
    const auto& b = baseline.step(10, 5.5e6, 5.0);
    EXPECT_GT(f.facility_power_w, b.facility_power_w) << "step " << i;
    EXPECT_GT(f.pue, b.pue) << "step " << i;
  }
}

TEST(Cooling, ForcedChillerStageDownRecoveryTimeConstant) {
  // When the outage ends the towers take the load back with the plant's
  // staging lag, not instantly: the PUE must still be elevated shortly
  // after release (inside the return-sensor delay) and back near the
  // free-cooling value within ~20 minutes.
  facility::CoolingPlant plant;
  plant.reset(5.5e6, 5.0);
  for (int i = 0; i < 1200; ++i) {
    plant.step(10, 5.5e6, 5.0, /*force_chillers=*/true);
  }
  const double forced_pue = plant.state().pue;

  facility::CoolingPlant reference;
  reference.reset(5.5e6, 5.0);
  for (int i = 0; i < 1200; ++i) reference.step(10, 5.5e6, 5.0);
  const double free_pue = reference.state().pue;
  ASSERT_GT(forced_pue, free_pue);

  // 30 s after release: staging has barely moved, PUE still much closer
  // to the outage level than to the baseline.
  for (int i = 0; i < 3; ++i) plant.step(10, 5.5e6, 5.0);
  EXPECT_GT(plant.state().pue, free_pue + 0.5 * (forced_pue - free_pue));

  // 20 min after release: chillers staged down, towers carry the load,
  // PUE within 10% of the remaining gap from the free-cooling value.
  for (int i = 3; i < 120; ++i) plant.step(10, 5.5e6, 5.0);
  EXPECT_LT(plant.state().pue, free_pue + 0.1 * (forced_pue - free_pue));
  EXPECT_GT(plant.state().tower_tons, plant.state().chiller_tons);
}

TEST(Cooling, CapacityMatchesLoadAtSteadyState) {
  facility::CoolingPlant plant;
  plant.reset(8.0e6, 10.0);
  for (int i = 0; i < 1200; ++i) plant.step(10, 8.0e6, 10.0);
  const double tons = plant.state().tower_tons + plant.state().chiller_tons;
  EXPECT_NEAR(tons * facility::kWattsPerTon, 8.0e6, 0.02 * 8.0e6);
}

TEST(Cooling, StagingLagOnRisingStep) {
  facility::CoolingPlant plant;
  plant.reset(4.0e6, 10.0);
  const double before =
      plant.state().tower_tons + plant.state().chiller_tons;
  // Step the load up 4 MW; capacity must not respond within the return-
  // sensor delay (~60 s), then catch up.
  double at_30s = 0.0;
  double at_600s = 0.0;
  for (int i = 1; i <= 60; ++i) {
    plant.step(10, 8.0e6, 10.0);
    if (i == 3) {
      at_30s = plant.state().tower_tons + plant.state().chiller_tons;
    }
  }
  for (int i = 0; i < 540; ++i) plant.step(10, 8.0e6, 10.0);
  at_600s = plant.state().tower_tons + plant.state().chiller_tons;
  EXPECT_NEAR(at_30s, before, 0.15 * before);  // still near the old level
  EXPECT_NEAR(at_600s * facility::kWattsPerTon, 8.0e6, 0.05 * 8.0e6);
}

TEST(Cooling, FallingEdgeAttenuatesSlower) {
  facility::CoolingPlant rise;
  facility::CoolingPlant fall;
  rise.reset(4.0e6, 10.0);
  fall.reset(8.0e6, 10.0);
  // Same |delta|, opposite signs; compare progress after 90 s past the
  // sensor delay.
  for (int i = 0; i < 15; ++i) {
    rise.step(10, 8.0e6, 10.0);
    fall.step(10, 4.0e6, 10.0);
  }
  const double rise_progress =
      (rise.state().tower_tons + rise.state().chiller_tons) * facility::kWattsPerTon -
      4.0e6;
  const double fall_progress =
      8.0e6 - (fall.state().tower_tons + fall.state().chiller_tons) *
                  facility::kWattsPerTon;
  EXPECT_GT(rise_progress, fall_progress);
}

TEST(Cooling, ReturnTempTracksLoad) {
  facility::CoolingPlant plant;
  plant.reset(5.5e6, 10.0);
  for (int i = 0; i < 600; ++i) plant.step(10, 5.5e6, 10.0);
  const double dt_loop =
      plant.state().mtw_return_c - plant.state().mtw_supply_c;
  EXPECT_NEAR(dt_loop, 5.5e6 / plant.params().loop_w_per_c, 0.5);
  // Paper Table 1: return 80-100 F (26.7-37.8 C) at typical loads.
  EXPECT_GT(plant.state().mtw_return_c, 26.0);
  EXPECT_LT(plant.state().mtw_return_c, 38.0);
}

TEST(Cooling, PueInverselyProportionalToLoad) {
  facility::CoolingPlant plant;
  plant.reset(3.0e6, 5.0);
  for (int i = 0; i < 600; ++i) plant.step(10, 3.0e6, 5.0);
  const double pue_low = plant.state().pue;
  plant.reset(10.0e6, 5.0);
  for (int i = 0; i < 600; ++i) plant.step(10, 10.0e6, 5.0);
  const double pue_high = plant.state().pue;
  EXPECT_GT(pue_low, pue_high);  // fixed pumps amortize at high load
}

TEST(Cooling, RejectsNegativeInputs) {
  facility::CoolingPlant plant;
  EXPECT_THROW(plant.step(-1, 1e6, 10.0), util::CheckError);
  EXPECT_THROW(plant.step(10, -1.0, 10.0), util::CheckError);
}

// --------------------------------------------------------------------- CEP

TEST(Cep, FrameColumnsAndGrid) {
  ts::Frame cluster(0, 10, 360);
  std::vector<double> p(360, 5.0e6);
  cluster.set("input_power_w", std::move(p));
  const ts::Frame cep = facility::simulate_cep(cluster);
  EXPECT_EQ(cep.rows(), 360u);
  EXPECT_EQ(cep.dt(), 10);
  for (const char* col : {"pue", "mtw_supply_c", "mtw_return_c", "tower_tons",
                          "chiller_tons", "facility_power_w", "wet_bulb_c"}) {
    EXPECT_TRUE(cep.has(col)) << col;
  }
  EXPECT_THROW(facility::simulate_cep(ts::Frame(0, 10, 5)), util::CheckError);
}

TEST(Cep, MaintenanceWindowForcesChillers) {
  // Constant 5 MW through early February (days 31-38 by default).
  const util::TimeSec start = 30 * util::kDay;
  const std::size_t n = 8 * 24 * 6;  // 8 days at 10-minute steps
  ts::Frame cluster(start, 600, n);
  cluster.set("input_power_w", std::vector<double>(n, 5.0e6));
  const ts::Frame cep = facility::simulate_cep(cluster);
  // Inside the window chillers dominate despite winter weather.
  const std::size_t inside = 2 * 24 * 6;  // day 32-ish
  EXPECT_GT(cep.at("chiller_tons")[inside], cep.at("tower_tons")[inside]);
  EXPECT_GT(cep.at("pue")[inside], 1.2);
}

// --------------------------------------------------------------------- MSB

TEST(Msb, SensorFactorsShareBatchBias) {
  machine::Topology topo(machine::MachineScale::small(500));
  facility::MsbModel msb(topo, 4);
  // Factors within one MSB cluster tighter than across MSBs.
  util::Welford within;
  std::vector<double> msb_means;
  for (machine::MsbId m = 0; m < topo.msbs(); ++m) {
    util::Welford acc;
    for (machine::NodeId n : topo.nodes_of_msb(m)) {
      acc.add(msb.node_sensor_factor(n));
    }
    msb_means.push_back(acc.mean());
    within.add(acc.stddev());
  }
  util::Welford across;
  for (double m : msb_means) across.add(m);
  EXPECT_GT(across.stddev(), 0.0);
  // All factors positive and ~10% above unity (the paper's ~11% offset).
  for (double m : msb_means) {
    EXPECT_GT(m, 1.05);
    EXPECT_LT(m, 1.18);
  }
}

TEST(Msb, MeterNoiseIsSmallAndDeterministic) {
  machine::Topology topo(machine::MachineScale::small(100));
  facility::MsbModel msb(topo, 4);
  const double a = msb.meter_reading(0, 1.0e6, 500);
  const double b = msb.meter_reading(0, 1.0e6, 500);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NEAR(a, 1.0e6, 0.01 * 1.0e6);
  EXPECT_THROW((void)msb.meter_reading(5, 1.0e6, 0), util::CheckError);
}

TEST(Msb, SampleNoiseAveragesOut) {
  machine::Topology topo(machine::MachineScale::small(100));
  facility::MsbModel msb(topo, 4);
  util::Welford acc;
  for (util::TimeSec t = 0; t < 2000; ++t) {
    acc.add(msb.node_sensor_sample(7, 1000.0, t));
  }
  EXPECT_NEAR(acc.mean(), 1000.0 * msb.node_sensor_factor(7), 2.0);
  EXPECT_GT(acc.stddev(), 5.0);  // per-second jitter is present
}

}  // namespace
