// src/net + src/server: adversarial framing, wire-codec round-trips,
// deadline-aware admission control (deterministic via util::ManualClock),
// and loopback client/server integration. The framing tests treat the
// wire as hostile: truncated frames, oversized length claims, corrupt
// magic/version/CRC, and slow-loris byte-at-a-time delivery must all be
// survived — rejected with a typed error or simply waited out, never a
// crash (CI runs this suite under ASan/UBSan).

#include <gtest/gtest.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <thread>

#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "server/chunk.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "server/wire.hpp"
#include "store/store.hpp"
#include "stream/replay.hpp"
#include "telemetry/codec.hpp"
#include "util/check.hpp"
#include "util/sim_time.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;

// --- framing -------------------------------------------------------------

std::vector<std::uint8_t> payload_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Frame, RoundTripsThroughDecoder) {
  const auto bytes = net::encode_frame(net::FrameType::kResponse, 42,
                                       payload_of("hello wire"));
  net::FrameDecoder decoder;
  decoder.feed(bytes);
  net::Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, net::FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, payload_of("hello wire"));
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Frame, EmptyPayloadAndBackToBackFrames) {
  auto bytes = net::encode_frame(net::FrameType::kGoodbye, 1, {});
  const auto second =
      net::encode_frame(net::FrameType::kTick, 2, payload_of("x"));
  bytes.insert(bytes.end(), second.begin(), second.end());
  net::FrameDecoder decoder;
  decoder.feed(bytes);
  net::Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, net::FrameType::kGoodbye);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, net::FrameType::kTick);
  EXPECT_EQ(frame.request_id, 2u);
}

TEST(Frame, SlowLorisByteAtATimeStillDecodes) {
  const auto bytes = net::encode_frame(net::FrameType::kRequest, 7,
                                       payload_of("one byte at a time"));
  net::FrameDecoder decoder;
  net::Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed({&bytes[i], 1});
    EXPECT_FALSE(decoder.next(frame)) << "frame complete too early at " << i;
  }
  decoder.feed({&bytes[bytes.size() - 1], 1});
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.payload, payload_of("one byte at a time"));
}

TEST(Frame, TruncatedFrameNeverSurfaces) {
  const auto bytes =
      net::encode_frame(net::FrameType::kRequest, 9, payload_of("cut off"));
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    net::FrameDecoder decoder;
    decoder.feed({bytes.data(), keep});
    net::Frame frame;
    EXPECT_FALSE(decoder.next(frame)) << "incomplete prefix of " << keep;
    EXPECT_LE(decoder.buffered_bytes(), keep);
  }
}

void expect_fault(std::vector<std::uint8_t> bytes, net::FrameFault fault) {
  net::FrameDecoder decoder;
  try {
    decoder.feed(bytes);
    FAIL() << "corrupt frame accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), fault) << e.what();
  }
  // Poisoned: even a pristine frame is refused afterwards (the stream
  // cannot be resynchronized, so reuse is a programming error).
  const auto clean = net::encode_frame(net::FrameType::kRequest, 1, {});
  EXPECT_THROW(decoder.feed(clean), util::CheckError);
}

TEST(Frame, RejectsBadMagic) {
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3, {});
  bytes[0] = 'H';  // "HXWN" — say, an HTTP client dialled the wrong port
  expect_fault(std::move(bytes), net::FrameFault::kBadMagic);
}

TEST(Frame, RejectsBadVersion) {
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3, {});
  bytes[4] = 99;
  expect_fault(std::move(bytes), net::FrameFault::kBadVersion);
}

TEST(Frame, RejectsBadType) {
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3, {});
  bytes[5] = 0;
  expect_fault(bytes, net::FrameFault::kBadType);
  bytes[5] = 250;
  expect_fault(std::move(bytes), net::FrameFault::kBadType);
}

TEST(Frame, RejectsReservedBits) {
  // Bits 3..15 of the flags word are still reserved; the low three are
  // the chunk flags, legal only on responses.
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3, {});
  bytes[7] = 1;  // bit 8: undefined
  expect_fault(std::move(bytes), net::FrameFault::kBadReserved);
}

TEST(Frame, RejectsChunkFlagsOffResponses) {
  // A chunk flag on anything but a kResponse is a protocol violation:
  // requests and ticks never stream.
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3, {});
  bytes[6] = 1;  // kFrameFlagChunk on a request
  expect_fault(std::move(bytes), net::FrameFault::kBadChunkFlags);

  // More than one of {chunk, final, abort} at once is also malformed,
  // even on a response.
  auto multi = net::encode_frame(net::FrameType::kResponse, 3, {});
  multi[6] = 3;  // chunk|final
  expect_fault(std::move(multi), net::FrameFault::kBadChunkFlags);
}

TEST(Frame, RejectsOversizedLengthFromHeaderAlone) {
  // A hostile 4 GB length claim must be rejected from the 24 header
  // bytes, before any buffer is sized from it.
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3, {});
  bytes[16] = bytes[17] = bytes[18] = bytes[19] = 0xff;
  bytes.resize(net::kFrameHeaderBytes);  // no payload follows — irrelevant
  expect_fault(std::move(bytes), net::FrameFault::kOversized);
}

TEST(Frame, RejectsCorruptPayloadCrc) {
  auto bytes = net::encode_frame(net::FrameType::kRequest, 3,
                                 payload_of("checksummed"));
  bytes.back() ^= 0x01;  // flip one payload bit
  expect_fault(std::move(bytes), net::FrameFault::kBadCrc);
}

// --- wire codec ----------------------------------------------------------

TEST(Wire, RequestRoundTripsEveryMethod) {
  server::wire::Request req;
  req.method = server::wire::Method::kClusterSum;
  req.deadline_ms = 250;
  req.nodes = {0, 3, 7};
  req.channel = 12;
  req.range = {100, 700};
  req.window = 10;
  const auto back = server::wire::decode_request(server::wire::encode_request(req));
  EXPECT_EQ(back.method, req.method);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.nodes, req.nodes);
  EXPECT_EQ(back.channel, req.channel);
  EXPECT_EQ(back.range.begin, req.range.begin);
  EXPECT_EQ(back.range.end, req.range.end);
  EXPECT_EQ(back.window, req.window);

  server::wire::Request scan;
  scan.method = server::wire::Method::kScan;
  scan.metrics = {5, 6, 1000000};
  scan.range = {0, 60};
  const auto scan_back =
      server::wire::decode_request(server::wire::encode_request(scan));
  EXPECT_EQ(scan_back.metrics, scan.metrics);

  server::wire::Request sub;
  sub.method = server::wire::Method::kSubscribe;
  sub.nodes = {1, 2};
  sub.subscribe_mask = 0x7;
  const auto sub_back =
      server::wire::decode_request(server::wire::encode_request(sub));
  EXPECT_EQ(sub_back.subscribe_mask, 0x7);
}

TEST(Wire, ResponseRoundTripsBitIdentically) {
  server::wire::Response resp;
  resp.method = server::wire::Method::kScan;
  resp.runs.resize(2);
  resp.runs[0].id = 11;
  resp.runs[0].samples = {{0, 1.5}, {1, -2.25}, {2, 1e-300}};
  resp.runs[1].id = 12;
  resp.runs[1].samples = {{5, 42.0}};
  resp.stats.lost_segments = 1;
  resp.stats.cache_hits = 9;
  const auto back =
      server::wire::decode_response(server::wire::encode_response(resp));
  ASSERT_EQ(back.runs.size(), 2u);
  EXPECT_EQ(back.runs[0].id, 11u);
  ASSERT_EQ(back.runs[0].samples.size(), 3u);
  // Doubles cross the wire as raw bits: exact equality is the contract.
  EXPECT_EQ(back.runs[0].samples[2].value, 1e-300);
  EXPECT_EQ(back.stats.lost_segments, 1u);
  EXPECT_EQ(back.stats.cache_hits, 9u);

  server::wire::Response err;
  err.status = server::wire::Status::kResourceExhausted;
  err.method = server::wire::Method::kPing;
  err.message = "admission queue full (256)";
  const auto err_back =
      server::wire::decode_response(server::wire::encode_response(err));
  EXPECT_EQ(err_back.status, server::wire::Status::kResourceExhausted);
  EXPECT_EQ(err_back.message, err.message);
}

TEST(Wire, ServerStatsToleratesVersionSkew) {
  server::wire::Response resp;
  resp.method = server::wire::Method::kServerStats;
  resp.server.accepted = 10;
  resp.server.served = 9;
  resp.server.queue_limit = 256;
  resp.server.p99_ms = 1.5;
  resp.server.reconnects_attempted = 3;
  resp.server.reconnects_succeeded = 2;
  resp.server.shards_total = 5;
  resp.server.shards_down = 1;
  resp.server.streams = 7;
  resp.server.stream_chunks = 70;
  resp.server.stream_pauses = 2;
  resp.server.stream_resumes = 2;
  resp.server.qos_workers = 6;
  resp.server.qos_backlog_cost_us = 123456;
  resp.server.qos_served = {100, 200, 300};
  resp.server.qos_shed = {1, 2, 3};
  resp.server.qos_p99_us = {900, 9000, 90000};
  const auto bytes = server::wire::encode_response(resp);

  // Same-version round trip carries every counter.
  const auto back = server::wire::decode_response(bytes);
  EXPECT_EQ(back.server.accepted, 10u);
  EXPECT_EQ(back.server.reconnects_attempted, 3u);
  EXPECT_EQ(back.server.reconnects_succeeded, 2u);
  EXPECT_EQ(back.server.shards_total, 5u);
  EXPECT_EQ(back.server.shards_down, 1u);
  EXPECT_EQ(back.server.streams, 7u);
  EXPECT_EQ(back.server.stream_chunks, 70u);
  EXPECT_EQ(back.server.stream_pauses, 2u);
  EXPECT_EQ(back.server.stream_resumes, 2u);
  EXPECT_EQ(back.server.qos_workers, 6u);
  EXPECT_EQ(back.server.qos_backlog_cost_us, 123456u);
  EXPECT_EQ(back.server.qos_served[1], 200u);
  EXPECT_EQ(back.server.qos_shed[2], 3u);
  EXPECT_EQ(back.server.qos_p99_us[0], 900u);

  // Pre-extension server: the payload stops before the extension block
  // (count u64 + 19 counters = 160 bytes). A new client must zero-fill,
  // not throw a transport-looking truncation error.
  ASSERT_GT(bytes.size(), 160u);
  const auto from_old =
      server::wire::decode_response({bytes.data(), bytes.size() - 160});
  EXPECT_EQ(from_old.server.accepted, 10u);
  EXPECT_EQ(from_old.server.p99_ms, 1.5);
  EXPECT_EQ(from_old.server.reconnects_attempted, 0u);
  EXPECT_EQ(from_old.server.shards_total, 0u);
  EXPECT_EQ(from_old.server.shards_down, 0u);
  EXPECT_EQ(from_old.server.streams, 0u);
  EXPECT_EQ(from_old.server.qos_workers, 0u);

  // Mid-version server (shard counters but no stream or qos counters):
  // the count it wrote is honored and the newer fields zero-fill.
  auto mid = bytes;
  mid.resize(mid.size() - 120);  // drop stream + qos counters (15)...
  mid.at(mid.size() - 40) = 4;   // ...and declare count 4 (LE low byte)
  const auto from_mid = server::wire::decode_response(mid);
  EXPECT_EQ(from_mid.server.reconnects_attempted, 3u);
  EXPECT_EQ(from_mid.server.shards_down, 1u);
  EXPECT_EQ(from_mid.server.streams, 0u);
  EXPECT_EQ(from_mid.server.stream_chunks, 0u);
  EXPECT_EQ(from_mid.server.qos_backlog_cost_us, 0u);

  // Stream-era server (everything but the qos counters): stream fields
  // arrive, qos fields zero-fill.
  auto stream_era = bytes;
  stream_era.resize(stream_era.size() - 88);  // drop the 11 qos counters...
  stream_era.at(stream_era.size() - 72) = 8;  // ...and declare count 8
  const auto from_stream = server::wire::decode_response(stream_era);
  EXPECT_EQ(from_stream.server.streams, 7u);
  EXPECT_EQ(from_stream.server.stream_resumes, 2u);
  EXPECT_EQ(from_stream.server.qos_workers, 0u);
  EXPECT_EQ(from_stream.server.qos_served[0], 0u);
  EXPECT_EQ(from_stream.server.qos_p99_us[2], 0u);

  // Newer server: a twentieth extension counter this decoder has never
  // heard of is consumed and ignored, not reported as trailing bytes.
  auto future = bytes;
  future.at(future.size() - 160) = 20;  // count 19 -> 20 (LE low byte)
  for (int i = 0; i < 8; ++i) future.push_back(0xEE);
  const auto from_new = server::wire::decode_response(future);
  EXPECT_EQ(from_new.server.accepted, 10u);
  EXPECT_EQ(from_new.server.reconnects_attempted, 3u);
  EXPECT_EQ(from_new.server.shards_down, 1u);
  EXPECT_EQ(from_new.server.qos_p99_us[2], 90000u);
}

TEST(Wire, TickRoundTrips) {
  server::wire::Tick tick;
  tick.kind = server::wire::TickKind::kAlert;
  tick.t = 777;
  tick.alert.kind = stream::AlertKind::kThermal;
  tick.alert.raised = true;
  tick.alert.node = 13;
  tick.alert.value = 3.5;
  const auto back = server::wire::decode_tick(server::wire::encode_tick(tick));
  EXPECT_EQ(back.kind, server::wire::TickKind::kAlert);
  EXPECT_EQ(back.alert.kind, stream::AlertKind::kThermal);
  EXPECT_EQ(back.alert.node, 13);
  EXPECT_EQ(back.alert.value, 3.5);
}

TEST(Wire, EveryTruncationIsRejectedNotCrashed) {
  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {1, 2, 3, 4};
  req.range = {0, 600};
  const auto req_bytes = server::wire::encode_request(req);
  for (std::size_t keep = 0; keep < req_bytes.size(); ++keep) {
    EXPECT_THROW(
        (void)server::wire::decode_request({req_bytes.data(), keep}),
        server::wire::WireError)
        << "request prefix " << keep;
  }

  server::wire::Response resp;
  resp.method = server::wire::Method::kClusterSum;
  resp.series = ts::Series(0, 10, {1.0, 2.0, 3.0});
  resp.counts = {3.0, 3.0, 2.0};
  const auto resp_bytes = server::wire::encode_response(resp);
  for (std::size_t keep = 0; keep < resp_bytes.size(); ++keep) {
    EXPECT_THROW(
        (void)server::wire::decode_response({resp_bytes.data(), keep}),
        server::wire::WireError)
        << "response prefix " << keep;
  }
}

TEST(Wire, HostileElementCountIsRejectedBeforeAllocation) {
  // A scan request claiming 2^31 metric ids in a 30-byte payload must be
  // rejected by the count-vs-remaining-bytes check, not attempted.
  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {1};
  auto bytes = server::wire::encode_request(req);
  // The metric count is the u32 right after method(1)+deadline(4)+
  // range(16)+window(8) = byte 29 in the scan layout; rather than
  // hard-code that, just splat a huge count over every u32-aligned spot
  // and require *some* WireError (never a bad_alloc / crash).
  for (std::size_t at = 1; at + 4 <= bytes.size(); ++at) {
    auto evil = bytes;
    evil[at] = 0xff;
    evil[at + 1] = 0xff;
    evil[at + 2] = 0xff;
    evil[at + 3] = 0x7f;
    try {
      (void)server::wire::decode_request(evil);
    } catch (const server::wire::WireError&) {
      // expected for the count offset; harmless elsewhere
    }
  }
}

TEST(Wire, ScenarioSweepRequestRoundTripsEveryField) {
  server::wire::Request req;
  req.method = server::wire::Method::kScenarioSweep;
  req.deadline_ms = 750;
  req.nodes = {0, 5, 9};
  req.range = {100, 700};
  req.window = 10;
  req.subscribe_mask =
      static_cast<std::uint8_t>(server::wire::TickKind::kWindow);

  scenario::ScenarioSpec cap;
  cap.name = "cap-18MW";
  cap.power_cap_w = 1.8e7;
  scenario::ScenarioSpec summer;
  summer.name = "hot-summer";
  summer.wet_bulb_offset_c = 6.5;
  summer.has_weather_seed = true;
  summer.weather_seed = 99;
  scenario::ScenarioSpec outage;
  outage.name = "feb-outage";
  outage.force_chillers = true;
  outage.has_cooling = true;
  outage.cooling.tower_approach_c = 4.25;
  outage.cooling.chiller_w_per_w = 0.31;
  outage.cooling.return_delay_s = 90;
  req.scenarios = {cap, summer, outage};

  const auto back =
      server::wire::decode_request(server::wire::encode_request(req));
  EXPECT_EQ(back.method, server::wire::Method::kScenarioSweep);
  EXPECT_EQ(back.nodes, req.nodes);
  EXPECT_EQ(back.range.begin, 100);
  EXPECT_EQ(back.range.end, 700);
  EXPECT_EQ(back.subscribe_mask,
            static_cast<std::uint8_t>(server::wire::TickKind::kWindow));
  ASSERT_EQ(back.scenarios.size(), 3u);
  EXPECT_EQ(back.scenarios[0].name, "cap-18MW");
  EXPECT_EQ(back.scenarios[0].power_cap_w, 1.8e7);
  EXPECT_FALSE(back.scenarios[0].has_cooling);
  EXPECT_EQ(back.scenarios[1].wet_bulb_offset_c, 6.5);
  EXPECT_TRUE(back.scenarios[1].has_weather_seed);
  EXPECT_EQ(back.scenarios[1].weather_seed, 99u);
  EXPECT_TRUE(back.scenarios[2].force_chillers);
  ASSERT_TRUE(back.scenarios[2].has_cooling);
  // Cooling tunables cross as raw double bits: exact equality.
  EXPECT_EQ(back.scenarios[2].cooling.tower_approach_c, 4.25);
  EXPECT_EQ(back.scenarios[2].cooling.chiller_w_per_w, 0.31);
  EXPECT_EQ(back.scenarios[2].cooling.return_delay_s, 90);
}

TEST(Wire, ScenarioSummariesAndVariantTicksRoundTrip) {
  server::wire::Response resp;
  resp.method = server::wire::Method::kScenarioSweep;
  resp.scenarios.resize(2);
  resp.scenarios[0].name = "cap-18MW";
  resp.scenarios[0].windows = 360;
  resp.scenarios[0].energy_j = 4.5e12;
  resp.scenarios[0].baseline_energy_j = 4.9e12;
  resp.scenarios[0].mean_pue = 1.12;
  resp.scenarios[0].baseline_mean_pue = 1.11;
  resp.scenarios[0].peak_power_w = 1.8e7;
  resp.scenarios[0].baseline_peak_power_w = 2.4e7;
  resp.scenarios[0].max_power_delta_w = -6.0e6;
  resp.scenarios[0].max_pue_delta = 1e-300;
  resp.scenarios[1].name = "feb-outage";
  resp.scenarios[1].windows = 360;
  resp.scenarios[1].max_pue_delta = 0.19;
  const auto back =
      server::wire::decode_response(server::wire::encode_response(resp));
  ASSERT_EQ(back.scenarios.size(), 2u);
  EXPECT_EQ(back.scenarios[0].name, "cap-18MW");
  EXPECT_EQ(back.scenarios[0].windows, 360u);
  EXPECT_EQ(back.scenarios[0].max_power_delta_w, -6.0e6);
  EXPECT_EQ(back.scenarios[0].max_pue_delta, 1e-300);
  EXPECT_EQ(back.scenarios[1].name, "feb-outage");
  EXPECT_EQ(back.scenarios[1].max_pue_delta, 0.19);

  server::wire::Tick tick;
  tick.kind = server::wire::TickKind::kVariantWindow;
  tick.index = 35;
  tick.t = 350;
  tick.power_w = 1.7e7;
  tick.pue = 1.13;
  tick.nodes_reporting = 12.0;
  tick.variant = 63;  // the last slot of a maximal sweep
  const auto tick_back =
      server::wire::decode_tick(server::wire::encode_tick(tick));
  EXPECT_EQ(tick_back.kind, server::wire::TickKind::kVariantWindow);
  EXPECT_EQ(tick_back.index, 35u);
  EXPECT_EQ(tick_back.t, 350);
  EXPECT_EQ(tick_back.power_w, 1.7e7);
  EXPECT_EQ(tick_back.pue, 1.13);
  EXPECT_EQ(tick_back.variant, 63u);
}

TEST(Wire, ScenarioTruncationsAndHostileSpecsAreRejected) {
  server::wire::Request req;
  req.method = server::wire::Method::kScenarioSweep;
  req.nodes = {1, 2};
  req.range = {0, 600};
  scenario::ScenarioSpec cap;
  cap.name = "cap";
  cap.power_cap_w = 1e7;
  scenario::ScenarioSpec tuned;
  tuned.name = "tuned";
  tuned.has_cooling = true;
  req.scenarios = {cap, tuned};
  const auto req_bytes = server::wire::encode_request(req);
  for (std::size_t keep = 0; keep < req_bytes.size(); ++keep) {
    EXPECT_THROW(
        (void)server::wire::decode_request({req_bytes.data(), keep}),
        server::wire::WireError)
        << "sweep request prefix " << keep;
  }

  server::wire::Response resp;
  resp.method = server::wire::Method::kScenarioSweep;
  resp.scenarios.resize(1);
  resp.scenarios[0].name = "cap";
  resp.scenarios[0].windows = 10;
  const auto resp_bytes = server::wire::encode_response(resp);
  for (std::size_t keep = 0; keep < resp_bytes.size(); ++keep) {
    EXPECT_THROW(
        (void)server::wire::decode_response({resp_bytes.data(), keep}),
        server::wire::WireError)
        << "sweep response prefix " << keep;
  }

  // A spec whose cooling-override flag is set but whose count-prefixed
  // tunable block is empty is a contract violation, not a zero-fill:
  // find the flags byte (the only byte force_chillers toggles) and set
  // the has_cooling bit on an encoding that carried no tunables.
  server::wire::Request plain;
  plain.method = server::wire::Method::kScenario;
  plain.nodes = {1};
  plain.range = {0, 600};
  scenario::ScenarioSpec spec;
  spec.name = "x";
  plain.scenarios = {spec};
  const auto without = server::wire::encode_request(plain);
  plain.scenarios[0].force_chillers = true;
  const auto with = server::wire::encode_request(plain);
  ASSERT_EQ(without.size(), with.size());
  std::size_t flag_at = without.size();
  for (std::size_t i = 0; i < without.size(); ++i) {
    if (without[i] != with[i]) {
      ASSERT_EQ(flag_at, without.size()) << "flags must differ in one byte";
      flag_at = i;
    }
  }
  ASSERT_LT(flag_at, without.size());
  auto evil = without;
  evil[flag_at] |= 4u;  // has_cooling, with a zero-count tunable block
  EXPECT_THROW((void)server::wire::decode_request(evil),
               server::wire::WireError);
}

// --- admission control (deterministic, no sockets) -----------------------

std::string store_dir(const char* leaf) {
  return (fs::temp_directory_path() / "exawatt_test_net" / leaf).string();
}

/// A small store: 4 metrics at 1 Hz for 120 s.
store::Store make_store(const std::string& dir) {
  fs::remove_all(dir);
  store::Store st = store::Store::open(dir);
  std::vector<telemetry::MetricEvent> batch;
  for (util::TimeSec t = 0; t < 120; ++t) {
    for (std::uint32_t m = 0; m < 4; ++m) {
      batch.push_back({m, t, static_cast<std::int32_t>(500 + m + t % 7)});
    }
  }
  st.append(batch);
  st.flush();
  return st;
}

struct ServiceFixture {
  store::Store store;
  util::ThreadPool pool{1};  ///< single worker => deterministic queueing
  util::ManualClock clock;
  server::QueryService service;

  ServiceFixture(std::size_t queue_limit, const char* leaf)
      : store(make_store(store_dir(leaf))),
        service(store, {.queue_limit = queue_limit,
                        .pool = &pool,
                        .clock = &clock}) {}

  /// Occupy the single pool thread until `release` is satisfied.
  std::future<void> block_pool(std::shared_future<void> release) {
    auto running = std::make_shared<std::promise<void>>();
    auto started = running->get_future();
    service.set_subscribe_source(
        [release, running](const server::wire::Request&,
                           const server::CancelToken&,
                           const server::QueryService::Emit&) {
          running->set_value();
          release.wait();
        });
    server::wire::Request req;
    req.method = server::wire::Method::kSubscribe;
    service.submit(req, server::make_cancel_token(),
                   [](const server::wire::Tick&) {},
                   [](server::wire::Response&&) {});
    return started;
  }
};

server::QueryService::Done capture(std::promise<server::wire::Response>& p) {
  return [&p](server::wire::Response&& resp) { p.set_value(std::move(resp)); };
}

TEST(Admission, FullQueueShedsWithResourceExhausted) {
  ServiceFixture fx(/*queue_limit=*/2, "shed");
  std::promise<void> release;
  fx.block_pool(release.get_future().share()).wait();

  // Depth 1 (the blocker). One more fits...
  std::promise<server::wire::Response> queued;
  server::wire::Request req;
  req.method = server::wire::Method::kPing;
  fx.service.submit(req, server::make_cancel_token(), {}, capture(queued));

  // ...and the third is shed inline, with an explicit status — never a
  // silent drop.
  std::promise<server::wire::Response> shed;
  fx.service.submit(req, server::make_cancel_token(), {}, capture(shed));
  auto shed_resp = shed.get_future().get();
  EXPECT_EQ(shed_resp.status, server::wire::Status::kResourceExhausted);
  EXPECT_NE(shed_resp.message.find("queue full"), std::string::npos);
  EXPECT_EQ(fx.service.metrics().shed, 1u);

  release.set_value();
  EXPECT_EQ(queued.get_future().get().status, server::wire::Status::kOk);
  const auto m = fx.service.metrics();
  EXPECT_EQ(m.accepted, 2u);  // blocker + queued ping; shed not admitted
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST(Admission, ExpiredDeadlineIsNeverExecuted) {
  ServiceFixture fx(8, "deadline");
  std::promise<void> release;
  fx.block_pool(release.get_future().share()).wait();

  std::promise<server::wire::Response> late;
  server::wire::Request req;
  req.method = server::wire::Method::kWindowSum;
  req.metric = 0;
  req.range = {0, 120};
  req.window = 10;
  req.deadline_ms = 50;
  fx.service.submit(req, server::make_cancel_token(), {}, capture(late));

  // The deadline passes while the request is still queued behind the
  // blocker; when the worker finally picks it up it must refuse to run.
  fx.clock.advance_us(51'000);
  release.set_value();
  const auto resp = late.get_future().get();
  EXPECT_EQ(resp.status, server::wire::Status::kDeadlineExceeded);
  EXPECT_NE(resp.message.find("before execution"), std::string::npos);
  EXPECT_TRUE(resp.window_sum.sum.empty()) << "expired work was executed";
  EXPECT_EQ(fx.service.metrics().deadline_exceeded, 1u);
}

TEST(Admission, MetDeadlineExecutesNormally) {
  ServiceFixture fx(8, "deadline_ok");
  std::promise<server::wire::Response> done;
  server::wire::Request req;
  req.method = server::wire::Method::kWindowSum;
  req.metric = 1;
  req.range = {0, 120};
  req.window = 10;
  req.deadline_ms = 1000;  // ManualClock never advances: always in budget
  fx.service.submit(req, server::make_cancel_token(), {}, capture(done));
  const auto resp = done.get_future().get();
  EXPECT_EQ(resp.status, server::wire::Status::kOk);
  EXPECT_EQ(resp.window_sum.sum.size(), 12u);
}

TEST(Admission, DisconnectCancelsQueuedWork) {
  ServiceFixture fx(8, "cancel");
  std::promise<void> release;
  fx.block_pool(release.get_future().share()).wait();

  auto token = server::make_cancel_token();
  std::promise<server::wire::Response> doomed;
  server::wire::Request req;
  req.method = server::wire::Method::kPing;
  fx.service.submit(req, token, {}, capture(doomed));

  token->store(true);  // the peer vanished while the request was queued
  release.set_value();
  const auto resp = doomed.get_future().get();
  EXPECT_EQ(resp.status, server::wire::Status::kCancelled);
  EXPECT_EQ(fx.service.metrics().cancelled, 1u);
}

TEST(Admission, DrainRejectsNewWorkAndWaitsForOld) {
  ServiceFixture fx(8, "drain");
  std::promise<server::wire::Response> ok;
  server::wire::Request req;
  req.method = server::wire::Method::kPing;
  fx.service.submit(req, server::make_cancel_token(), {}, capture(ok));
  EXPECT_EQ(ok.get_future().get().status, server::wire::Status::kOk);

  fx.service.drain();  // queue empty: returns once depth hits zero
  std::promise<server::wire::Response> rejected;
  fx.service.submit(req, server::make_cancel_token(), {}, capture(rejected));
  EXPECT_EQ(rejected.get_future().get().status,
            server::wire::Status::kUnavailable);
}

TEST(Admission, SubscriptionEmitsTicksBeforeDone) {
  ServiceFixture fx(8, "subticks");
  fx.service.set_subscribe_source(
      [](const server::wire::Request&, const server::CancelToken&,
         const server::QueryService::Emit& emit) {
        for (std::uint64_t i = 0; i < 3; ++i) {
          server::wire::Tick tick;
          tick.kind = server::wire::TickKind::kWindow;
          tick.index = i;
          emit(tick);
        }
      });
  std::vector<std::uint64_t> seen;
  std::promise<server::wire::Response> done;
  server::wire::Request req;
  req.method = server::wire::Method::kSubscribe;
  fx.service.submit(req, server::make_cancel_token(),
                    [&](const server::wire::Tick& t) {
                      seen.push_back(t.index);
                    },
                    capture(done));
  EXPECT_EQ(done.get_future().get().status, server::wire::Status::kOk);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2}));
}

// --- adversarial request bodies ------------------------------------------
// Valid frames can still carry hostile query parameters: ranges and
// windows are attacker-chosen i64s, and none of them may reach the
// store's grid arithmetic (allocation size, signed round-up) unchecked.

TEST(Execute, ClusterSumHugeGridIsRejectedNotAllocated) {
  ServiceFixture fx(4, "hostile_cluster");
  server::wire::Request req;
  req.method = server::wire::Method::kClusterSum;
  req.nodes = {0};
  // 2^40 seconds at window=1 asks for a multi-terabyte zero-filled grid.
  req.range = {0, static_cast<util::TimeSec>(1) << 40};
  req.window = 1;
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);
}

TEST(Execute, InvertedAndOverflowingRangesAreRejected) {
  ServiceFixture fx(4, "hostile_range");
  server::wire::Request req;
  req.method = server::wire::Method::kWindowSum;
  req.window = 10;

  req.range = {10, 0};  // inverted
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);

  // end - begin overflows i64; duration() must stay defined under UBSan
  // and the request must still be rejected.
  req.range = {std::numeric_limits<util::TimeSec>::min(),
               std::numeric_limits<util::TimeSec>::max()};
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);

  // Inverted by 2^64 - 1: the unsigned wrap makes duration() == +1, so
  // the begin > end check has to catch it, not the width check.
  req.range = {std::numeric_limits<util::TimeSec>::max(),
               std::numeric_limits<util::TimeSec>::min()};
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);

  req.method = server::wire::Method::kScan;
  req.metrics = {0};
  req.range = {10, 0};
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);
}

TEST(Execute, HugeWindowCannotOverflowTheRoundUp) {
  ServiceFixture fx(4, "hostile_window");
  server::wire::Request req;
  req.method = server::wire::Method::kWindowSum;
  req.range = {0, 100};
  // duration + window - 1 would overflow i64 inside the store.
  req.window = std::numeric_limits<util::TimeSec>::max();
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);

  req.method = server::wire::Method::kClusterSum;
  req.nodes = {0};
  EXPECT_EQ(fx.service.execute(req).status,
            server::wire::Status::kInvalidArgument);
}

TEST(Execute, PueRollupClampsHostileRangeToStoreBounds) {
  ServiceFixture fx(4, "hostile_pue");
  server::wire::Request req;
  req.method = server::wire::Method::kPueRollup;
  req.nodes = {0};
  // A 2^60-second replay at one iteration per simulated second would
  // occupy a pool thread for eons; clamped to the data it is 120 steps.
  req.range = {0, static_cast<util::TimeSec>(1) << 60};
  req.window = 10;
  const auto resp = fx.service.execute(req);
  EXPECT_EQ(resp.status, server::wire::Status::kOk);

  stream::EngineOptions opts;
  opts.range = fx.store.bounds();
  opts.window = 10;
  opts.rollup.edge_node_count = 1.0;
  const auto direct = stream::replay_rollup(fx.store, req.nodes, opts);
  EXPECT_EQ(resp.series.start(), direct.power.start());
  EXPECT_TRUE(std::ranges::equal(resp.series.values(),
                                 direct.power.values()));
  EXPECT_TRUE(std::ranges::equal(resp.pue.values(), direct.pue.values()));
}

TEST(Execute, PueRollupHonorsCancelAndDeadline) {
  ServiceFixture fx(4, "pue_interrupt");
  server::wire::Request req;
  req.method = server::wire::Method::kPueRollup;
  req.nodes = {0};
  req.range = {0, 120};
  req.window = 10;

  auto cancel = server::make_cancel_token();
  cancel->store(true);
  EXPECT_EQ(fx.service.execute(req, cancel, 0).status,
            server::wire::Status::kCancelled);

  fx.clock.advance_us(1000);  // deadline already in the past
  EXPECT_EQ(fx.service.execute(req, nullptr, 500).status,
            server::wire::Status::kDeadlineExceeded);
}

// --- loopback integration ------------------------------------------------

struct LoopbackFixture {
  store::Store store;
  server::Server server;
  std::thread loop;

  explicit LoopbackFixture(const char* leaf)
      : store(make_store(store_dir(leaf))), server(store, {}) {
    loop = std::thread([this] { server.run(); });
  }
  ~LoopbackFixture() {
    server.shutdown();
    loop.join();
    server.drain();
  }

  server::ClientOptions client_options() const {
    server::ClientOptions copts;
    copts.port = server.port();
    return copts;
  }
};

TEST(Loopback, ResponsesAreBitIdenticalToDirectCalls) {
  LoopbackFixture fx("loopback");
  server::Client client(fx.client_options());

  server::wire::Request req;
  req.method = server::wire::Method::kWindowSum;
  req.metric = 2;
  req.range = {0, 120};
  req.window = 10;
  const auto wire_resp = client.call(req);
  const auto direct = fx.server.service().execute(req);
  ASSERT_EQ(wire_resp.status, server::wire::Status::kOk);
  EXPECT_EQ(wire_resp.window_sum.start, direct.window_sum.start);
  EXPECT_EQ(wire_resp.window_sum.sum, direct.window_sum.sum);
  EXPECT_EQ(wire_resp.window_sum.count, direct.window_sum.count);

  req = {};
  req.method = server::wire::Method::kServerStats;
  const auto stats = client.call(req);
  ASSERT_EQ(stats.status, server::wire::Status::kOk);
  EXPECT_GE(stats.server.accepted, 1u);
  EXPECT_EQ(stats.server.queue_limit, 256u);
}

TEST(Loopback, MalformedRequestBodyKeepsConnectionAlive) {
  LoopbackFixture fx("badbody");
  auto stream = net::TcpStream::connect("127.0.0.1", fx.server.port(), 2000);
  // Structurally valid frame, garbage payload: per-request error only.
  const auto bad = net::encode_frame(net::FrameType::kRequest, 5,
                                     payload_of("\xff\xff not a request"));
  stream.write_all(bad.data(), bad.size(), 2000);

  net::FrameDecoder decoder;
  net::Frame frame;
  std::uint8_t chunk[4096];
  while (!decoder.next(frame)) {
    ASSERT_TRUE(stream.wait_readable(2000));
    const auto r = stream.read_some(chunk, sizeof(chunk));
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    decoder.feed({chunk, r.n});
  }
  EXPECT_EQ(frame.type, net::FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 5u);
  const auto resp = server::wire::decode_response(frame.payload);
  EXPECT_EQ(resp.status, server::wire::Status::kInvalidArgument);

  // Same connection still serves a well-formed request afterwards.
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;
  const auto good = net::encode_frame(net::FrameType::kRequest, 6,
                                      server::wire::encode_request(ping));
  stream.write_all(good.data(), good.size(), 2000);
  while (!decoder.next(frame)) {
    ASSERT_TRUE(stream.wait_readable(2000));
    const auto r = stream.read_some(chunk, sizeof(chunk));
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    decoder.feed({chunk, r.n});
  }
  EXPECT_EQ(frame.request_id, 6u);
  EXPECT_EQ(server::wire::decode_response(frame.payload).status,
            server::wire::Status::kOk);
}

TEST(Loopback, UnknownFutureMethodIsTypedErrorNotConnectionFatal) {
  // Mixed-version skew: a newer client speaking a method id this server
  // has never heard of (the slot after kScenarioSweep) must get a typed
  // per-request error back, and the connection must keep serving.
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;
  auto payload = server::wire::encode_request(ping);
  payload[0] = 11;  // one past the known method range (10 = kScanBlocks)
  EXPECT_THROW((void)server::wire::decode_request(payload),
               server::wire::WireError);

  LoopbackFixture fx("futuremethod");
  auto stream = net::TcpStream::connect("127.0.0.1", fx.server.port(), 2000);
  const auto skewed =
      net::encode_frame(net::FrameType::kRequest, 21, payload);
  stream.write_all(skewed.data(), skewed.size(), 2000);

  net::FrameDecoder decoder;
  net::Frame frame;
  std::uint8_t chunk[4096];
  while (!decoder.next(frame)) {
    ASSERT_TRUE(stream.wait_readable(2000));
    const auto r = stream.read_some(chunk, sizeof(chunk));
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    decoder.feed({chunk, r.n});
  }
  EXPECT_EQ(frame.type, net::FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 21u);
  const auto resp = server::wire::decode_response(frame.payload);
  EXPECT_EQ(resp.status, server::wire::Status::kInvalidArgument);
  EXPECT_NE(resp.message.find("method"), std::string::npos);

  // Same connection, same-version request afterwards: still served.
  const auto good = net::encode_frame(net::FrameType::kRequest, 22,
                                      server::wire::encode_request(ping));
  stream.write_all(good.data(), good.size(), 2000);
  while (!decoder.next(frame)) {
    ASSERT_TRUE(stream.wait_readable(2000));
    const auto r = stream.read_some(chunk, sizeof(chunk));
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    decoder.feed({chunk, r.n});
  }
  EXPECT_EQ(frame.request_id, 22u);
  EXPECT_EQ(server::wire::decode_response(frame.payload).status,
            server::wire::Status::kOk);
}

TEST(Loopback, GarbageBytesGetGoodbyeAndCloseButServerSurvives) {
  LoopbackFixture fx("garbage");
  {
    auto stream =
        net::TcpStream::connect("127.0.0.1", fx.server.port(), 2000);
    const std::string junk = "GET / HTTP/1.1\r\nHost: summit\r\n\r\n";
    stream.write_all(reinterpret_cast<const std::uint8_t*>(junk.data()),
                     junk.size(), 2000);
    // The server must answer with a goodbye frame and close; reading to
    // EOF must not hang.
    net::FrameDecoder decoder;
    net::Frame frame;
    bool got_goodbye = false;
    bool closed = false;
    std::uint8_t chunk[4096];
    while (!closed && stream.wait_readable(5000)) {
      const auto r = stream.read_some(chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kClosed) {
        closed = true;
        break;
      }
      ASSERT_EQ(r.status, net::IoStatus::kOk);
      decoder.feed({chunk, r.n});
      while (decoder.next(frame)) {
        if (frame.type == net::FrameType::kGoodbye) got_goodbye = true;
      }
    }
    EXPECT_TRUE(got_goodbye);
    EXPECT_TRUE(closed);
  }
  EXPECT_GE(fx.server.loop_stats().protocol_errors, 1u);

  // A fresh, polite client is served as if nothing happened.
  server::Client client(fx.client_options());
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;
  EXPECT_EQ(client.call(ping).status, server::wire::Status::kOk);
}

TEST(Loopback, SlowLorisRequestIsAnsweredOnceComplete) {
  LoopbackFixture fx("loris");
  auto stream = net::TcpStream::connect("127.0.0.1", fx.server.port(), 2000);
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;
  const auto bytes = net::encode_frame(net::FrameType::kRequest, 11,
                                       server::wire::encode_request(ping));
  // Dribble the frame a few bytes at a time; the server must neither
  // time out internally nor misparse across chunk boundaries.
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    const std::size_t n = std::min<std::size_t>(3, bytes.size() - i);
    stream.write_all(bytes.data() + i, n, 2000);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  net::FrameDecoder decoder;
  net::Frame frame;
  std::uint8_t chunk[4096];
  while (!decoder.next(frame)) {
    ASSERT_TRUE(stream.wait_readable(5000));
    const auto r = stream.read_some(chunk, sizeof(chunk));
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    decoder.feed({chunk, r.n});
  }
  EXPECT_EQ(frame.request_id, 11u);
  EXPECT_EQ(server::wire::decode_response(frame.payload).status,
            server::wire::Status::kOk);
}

TEST(Loopback, SubscriptionStreamsAndDisconnectCancels) {
  LoopbackFixture fx("subscribe");
  std::atomic<bool> saw_cancel{false};
  fx.server.service().set_subscribe_source(
      [&](const server::wire::Request&, const server::CancelToken& cancel,
          const server::QueryService::Emit& emit) {
        for (std::uint64_t i = 0; i < 1000; ++i) {
          if (cancel != nullptr && cancel->load()) {
            saw_cancel.store(true);
            return;
          }
          server::wire::Tick tick;
          tick.kind = server::wire::TickKind::kWindow;
          tick.index = i;
          emit(tick);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  {
    server::wire::Request req;
    req.method = server::wire::Method::kSubscribe;
    server::Subscription sub(fx.client_options(), req);
    // Take a few ticks, then vanish without so much as a FIN wave.
    for (int i = 0; i < 3; ++i) {
      const auto tick = sub.next(5000);
      ASSERT_TRUE(tick.has_value());
      EXPECT_EQ(tick->kind, server::wire::TickKind::kWindow);
    }
    sub.close();
  }
  // The server-side replay must notice the tripped token and stop early.
  for (int spins = 0; spins < 500 && !saw_cancel.load(); ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_cancel.load());
}

TEST(Loopback, ClientReconnectsAfterServerSideClose) {
  LoopbackFixture fx("reconnect");
  server::Client client(fx.client_options());
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;
  ASSERT_EQ(client.call(ping).status, server::wire::Status::kOk);
  client.disconnect();  // simulate a dropped connection
  EXPECT_EQ(client.call(ping).status, server::wire::Status::kOk);
}

// --- chunked stream reassembly -------------------------------------------

net::Frame make_chunk(std::uint64_t id, std::uint16_t flags,
                      const std::string& payload,
                      net::FrameType type = net::FrameType::kResponse) {
  net::Frame f;
  f.type = type;
  f.request_id = id;
  f.flags = flags;
  f.payload = payload_of(payload);
  return f;
}

TEST(Chunk, ReassemblesSlicesAndClearsFlags) {
  net::ChunkAssembler assembler;
  net::Frame a = make_chunk(7, net::kFrameFlagChunk, "abc");
  net::Frame b = make_chunk(7, net::kFrameFlagChunk, "def");
  net::Frame c = make_chunk(7, net::kFrameFlagFinal, "gh");
  EXPECT_FALSE(assembler.feed(a));
  EXPECT_TRUE(assembler.streaming());
  EXPECT_FALSE(assembler.feed(b));
  EXPECT_EQ(assembler.buffered_bytes(), 6u);
  ASSERT_TRUE(assembler.feed(c));
  EXPECT_EQ(c.payload, payload_of("abcdefgh"));
  EXPECT_EQ(c.flags, 0u);  // callers never see chunking happened
  EXPECT_FALSE(assembler.streaming());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  assembler.finish();  // idle assembler: EOF is fine
}

TEST(Chunk, PassesThroughUnrelatedFramesMidStream) {
  net::ChunkAssembler assembler;
  net::Frame open = make_chunk(7, net::kFrameFlagChunk, "part");
  EXPECT_FALSE(assembler.feed(open));
  // A tick for the same request interleaves legally (sweeps stream
  // window ticks ahead of their chunked final response)...
  net::Frame tick = make_chunk(7, 0, "tick", net::FrameType::kTick);
  EXPECT_TRUE(assembler.feed(tick));
  EXPECT_EQ(tick.payload, payload_of("tick"));
  // ...and so does a complete response for a *different* request.
  net::Frame other = make_chunk(8, 0, "whole");
  EXPECT_TRUE(assembler.feed(other));
  EXPECT_TRUE(assembler.streaming());  // the open stream is untouched
}

TEST(Chunk, TruncatedMidStreamIsTypedFault) {
  // An unchunked response for the id of the open stream means the sender
  // abandoned the stream without kFinal/kAbort: the tail is lost.
  net::ChunkAssembler assembler;
  net::Frame open = make_chunk(7, net::kFrameFlagChunk, "part");
  EXPECT_FALSE(assembler.feed(open));
  net::Frame plain = make_chunk(7, 0, "whole");
  try {
    (void)assembler.feed(plain);
    FAIL() << "truncated stream accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kChunkTruncated) << e.what();
  }
}

TEST(Chunk, MissingFinalAtEofIsTypedFault) {
  net::ChunkAssembler assembler;
  net::Frame open = make_chunk(7, net::kFrameFlagChunk, "part");
  EXPECT_FALSE(assembler.feed(open));
  try {
    assembler.finish();  // connection ended with the stream open
    FAIL() << "EOF inside a stream accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kChunkTruncated) << e.what();
  }
}

TEST(Chunk, InterleavedStreamsAreTypedFault) {
  // One connection carries one response stream at a time (the server
  // serializes chunked sends per connection); a second id chunking
  // mid-stream can only be a corrupt or hostile sender.
  net::ChunkAssembler assembler;
  net::Frame a = make_chunk(7, net::kFrameFlagChunk, "aaa");
  EXPECT_FALSE(assembler.feed(a));
  net::Frame b = make_chunk(8, net::kFrameFlagChunk, "bbb");
  try {
    (void)assembler.feed(b);
    FAIL() << "interleaved stream accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kChunkInterleaved) << e.what();
  }
}

TEST(Chunk, AbortReplacesThePartialStream) {
  net::ChunkAssembler assembler;
  net::Frame a = make_chunk(7, net::kFrameFlagChunk, "doomed bytes");
  EXPECT_FALSE(assembler.feed(a));
  server::wire::Response err;
  err.status = server::wire::Status::kDeadlineExceeded;
  err.method = server::wire::Method::kScan;
  err.message = "deadline expired during scan";
  const auto err_bytes = server::wire::encode_response(err);
  net::Frame abort = make_chunk(7, net::kFrameFlagAbort, "");
  abort.payload = err_bytes;
  ASSERT_TRUE(assembler.feed(abort));
  EXPECT_EQ(abort.payload, err_bytes);  // buffered fragments discarded
  EXPECT_EQ(abort.flags, 0u);
  EXPECT_FALSE(assembler.streaming());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  const auto decoded = server::wire::decode_response(abort.payload);
  EXPECT_EQ(decoded.status, server::wire::Status::kDeadlineExceeded);
}

TEST(Chunk, OversizedAssemblyIsTypedFault) {
  net::ChunkAssembler assembler(/*max_bytes=*/16);
  net::Frame a = make_chunk(7, net::kFrameFlagChunk, "0123456789");
  EXPECT_FALSE(assembler.feed(a));
  net::Frame b = make_chunk(7, net::kFrameFlagChunk, "0123456789");
  try {
    (void)assembler.feed(b);
    FAIL() << "oversized assembly accepted";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.fault(), net::FrameFault::kChunkOversized) << e.what();
  }
}

// --- backpressure (deterministic: stub sink, no sockets) -----------------

/// Collects every frame a ChunkWriter flushes, acquiring budget from a
/// real StreamGate but releasing only when the test says the "peer"
/// drained — the socketless stand-in for EventLoop's gated outbox.
struct StubSink {
  net::StreamGate gate;
  std::mutex mu;
  std::vector<std::vector<std::uint8_t>> frames;

  explicit StubSink(std::size_t budget) : gate(budget) {}

  server::ChunkWriter::Sink sink() {
    server::ChunkWriter::Sink s;
    s.acquire = [this](std::size_t n, const std::function<bool()>& cancelled) {
      return gate.acquire(n, cancelled);
    };
    s.send = [this](std::vector<std::uint8_t>&& bytes) {
      std::lock_guard lk(mu);
      frames.push_back(std::move(bytes));
      return true;
    };
    return s;
  }

  /// Reassemble everything sent so far as a client would see it.
  std::vector<std::uint8_t> reassembled() {
    net::FrameDecoder decoder;
    net::ChunkAssembler assembler;
    {
      std::lock_guard lk(mu);
      for (const auto& f : frames) decoder.feed(f);
    }
    net::Frame frame;
    while (decoder.next(frame)) {
      if (assembler.feed(frame)) return frame.payload;
    }
    return {};
  }

  std::size_t sent() {
    std::lock_guard lk(mu);
    return frames.size();
  }
  std::size_t sent_bytes_of(std::size_t i) {
    std::lock_guard lk(mu);
    return frames.at(i).size();
  }
};

std::vector<std::uint8_t> pattern_payload(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>((i * 31 + 7) & 0xff);
  }
  return bytes;
}

TEST(Backpressure, WriterSlicesAndStreamReassemblesBitIdentically) {
  StubSink sink(/*budget=*/std::size_t{1} << 20);
  server::ChunkWriter writer(42, /*chunk_bytes=*/512, sink.sink(),
                             [] { return false; });
  const auto payload = pattern_payload(10'000);
  // Dribble in uneven slices: chunk boundaries must not depend on write
  // granularity.
  for (std::size_t off = 0; off < payload.size(); off += 777) {
    const std::size_t n = std::min<std::size_t>(777, payload.size() - off);
    ASSERT_TRUE(writer.write({payload.data() + off, n}));
  }
  ASSERT_TRUE(writer.finish());
  EXPECT_TRUE(writer.terminated());
  EXPECT_GE(writer.chunks(), 10'000u / 512);
  EXPECT_EQ(sink.reassembled(), payload);
  // Everything acquired must be in flight (nothing released yet), and
  // never beyond one frame past the budget.
  EXPECT_GT(sink.gate.in_flight(), payload.size());
}

TEST(Backpressure, SaturatedGatePausesThenResumesBitIdentically) {
  // Budget of ~2 frames: the producer must pause, and every drained
  // frame must wake it for exactly one more.
  StubSink sink(/*budget=*/1200);
  server::ChunkWriter writer(42, /*chunk_bytes=*/512, sink.sink(),
                             [] { return false; });
  const auto payload = pattern_payload(8'000);
  std::atomic<bool> finished{false};
  std::thread producer([&] {
    ASSERT_TRUE(writer.write(payload));
    ASSERT_TRUE(writer.finish());
    finished.store(true);
  });

  // The producer must park on the gate, not spin frames out.
  for (int spins = 0; spins < 500 && sink.gate.stats().pauses == 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sink.gate.stats().pauses, 1u);
  EXPECT_FALSE(finished.load());

  // Drain like the loop thread would: release each frame as it "reaches
  // the socket"; the producer finishes and the bytes match exactly.
  std::size_t drained = 0;
  for (int spins = 0; spins < 5000 && !finished.load(); ++spins) {
    while (drained < sink.sent()) {
      sink.gate.release(sink.sent_bytes_of(drained));
      ++drained;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  ASSERT_TRUE(finished.load());
  const net::StreamGateStats gs = sink.gate.stats();
  EXPECT_GE(gs.resumes, 1u);
  EXPECT_EQ(gs.resumes, gs.pauses);  // every pause ended in a resume
  EXPECT_EQ(sink.reassembled(), payload);
  // Peak stayed near the budget: one frame may straddle the line, but
  // the result-sized blowup the gate exists to prevent cannot happen.
  EXPECT_LE(gs.peak_buffered, 1200u + 512u + net::kFrameHeaderBytes);
}

TEST(Backpressure, CancelWhileParkedUnblocksWithoutAResume) {
  StubSink sink(/*budget=*/600);
  std::atomic<bool> cancelled{false};
  server::ChunkWriter writer(
      42, /*chunk_bytes=*/512, sink.sink(),
      [&] { return cancelled.load(); });
  std::atomic<bool> write_ok{true};
  std::thread producer([&] {
    write_ok.store(writer.write(pattern_payload(8'000)));
  });
  for (int spins = 0; spins < 500 && sink.gate.stats().pauses == 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(sink.gate.stats().pauses, 1u);
  cancelled.store(true);  // peer's token trips while the producer sleeps
  producer.join();
  EXPECT_FALSE(write_ok.load());  // the stream reported itself dead
  EXPECT_TRUE(writer.terminated());
  EXPECT_EQ(sink.gate.stats().resumes, 0u);  // a cancel is not a resume
  // Terminated writers swallow later writes instead of corrupting state.
  EXPECT_FALSE(writer.write(pattern_payload(8)));
  EXPECT_FALSE(writer.finish());
}

TEST(Backpressure, GateCloseFreesTheParkedProducer) {
  StubSink sink(/*budget=*/600);
  server::ChunkWriter writer(42, /*chunk_bytes=*/512, sink.sink(),
                             [] { return false; });
  std::atomic<bool> write_ok{true};
  std::thread producer([&] {
    write_ok.store(writer.write(pattern_payload(8'000)));
  });
  for (int spins = 0; spins < 500 && sink.gate.stats().pauses == 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(sink.gate.stats().pauses, 1u);
  sink.gate.close();  // the connection died under the stream
  producer.join();
  EXPECT_FALSE(write_ok.load());
  // The abort path must still get the error out through a closed gate
  // (it bypasses acquire by contract)... but the writer is terminated,
  // so even abort is a no-op now; nothing hangs either way.
  server::wire::Response err;
  err.status = server::wire::Status::kCancelled;
  EXPECT_FALSE(writer.abort(err));
}

TEST(Backpressure, CancelWhileParkedFreesTheAdmissionSlot) {
  // Full service-level conservation: a streaming scan paused on a gate
  // its peer never drains is cancelled, the executor aborts the stream,
  // and the admission slot comes back — queue depth to zero, the request
  // accounted as cancelled, never a ghost occupying the pool.
  store::Store store = make_store(store_dir("cancel_slot"));
  util::ThreadPool pool{1};
  server::QueryService service(store, {.queue_limit = 4, .pool = &pool});

  StubSink sink(/*budget=*/600);
  auto token = server::make_cancel_token();
  server::ChunkWriter writer(
      1, /*chunk_bytes=*/512, sink.sink(),
      [token] { return token->load(std::memory_order_relaxed); });

  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {0, 1, 2, 3};
  req.range = {0, 120};
  req.chunk_bytes = 512;
  std::promise<server::wire::Response> done;
  service.submit(req, token, {}, capture(done), &writer);

  for (int spins = 0; spins < 500 && sink.gate.stats().pauses == 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(sink.gate.stats().pauses, 1u);
  EXPECT_EQ(service.metrics().queue_depth, 1u);

  token->store(true);  // the peer vanished
  auto fut = done.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  const auto resp = fut.get();
  EXPECT_EQ(resp.status, server::wire::Status::kCancelled);
  const auto m = service.metrics();
  EXPECT_EQ(m.queue_depth, 0u);  // the slot is free again
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.accepted, m.served + m.shed + m.deadline_exceeded +
                            m.cancelled + m.failed + m.queue_depth);
}

// --- chunked loopback ----------------------------------------------------

/// Bit-parity modulo cache warmth: hit/miss attribution depends on which
/// call decoded a block first, so it is zeroed before comparing. Loss
/// accounting (the correctness-bearing stats) must still match exactly.
std::vector<std::uint8_t> canonical_bytes(server::wire::Response resp) {
  resp.stats.cache_hits = 0;
  resp.stats.cache_misses = 0;
  return server::wire::encode_response(resp);
}

TEST(ChunkedLoopback, ScanMatchesUnchunkedBitForBit) {
  LoopbackFixture fx("chunked_scan");
  server::Client client(fx.client_options());

  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {0, 1, 2, 3};
  req.range = {0, 120};
  const auto plain = client.call(req);
  ASSERT_EQ(plain.status, server::wire::Status::kOk);

  req.chunk_bytes = 600;  // many chunks over a 480-sample archive
  const auto chunked = client.call(req);
  ASSERT_EQ(chunked.status, server::wire::Status::kOk);
  EXPECT_EQ(canonical_bytes(chunked), canonical_bytes(plain));

  server::wire::Request stats_req;
  stats_req.method = server::wire::Method::kServerStats;
  const auto stats = client.call(stats_req);
  ASSERT_EQ(stats.status, server::wire::Status::kOk);
  EXPECT_GE(stats.server.streams, 1u);
  EXPECT_GE(stats.server.stream_chunks, 3u);
}

TEST(ChunkedLoopback, MaterializedMethodsChunkAtTheWireToo) {
  // pue_rollup (and every other method) materializes its response, but a
  // negotiated chunk size still slices it at the wire — same bytes, just
  // framed in gated pieces.
  LoopbackFixture fx("chunked_pue");
  server::Client client(fx.client_options());

  server::wire::Request req;
  req.method = server::wire::Method::kPueRollup;
  req.nodes = {0, 1};
  req.range = {0, 120};
  req.window = 10;
  const auto plain = client.call(req);
  ASSERT_EQ(plain.status, server::wire::Status::kOk);
  req.chunk_bytes = 512;
  const auto chunked = client.call(req);
  ASSERT_EQ(chunked.status, server::wire::Status::kOk);
  EXPECT_EQ(canonical_bytes(chunked), canonical_bytes(plain));

  // Hostile ask on a method that cannot stream incrementally must not
  // change the answer either — chunking is transport, not semantics.
  server::wire::Request sum;
  sum.method = server::wire::Method::kWindowSum;
  sum.metric = 2;
  sum.range = {0, 120};
  sum.window = 10;
  const auto sum_plain = client.call(sum);
  sum.chunk_bytes = 512;
  const auto sum_chunked = client.call(sum);
  EXPECT_EQ(canonical_bytes(sum_chunked), canonical_bytes(sum_plain));
}

TEST(ChunkedLoopback, FullArchiveScanStaysUnderTheStreamBudget) {
  // The acceptance bound: peak resident response-buffer bytes for a full
  // archive scan are capped by the per-connection budget, not the result
  // size. Budget 2 KiB, result ~7.8 KiB encoded — impossible without
  // streaming.
  server::ServerOptions sopts;
  sopts.loop.stream_budget_bytes = 2 << 10;
  store::Store st = make_store(store_dir("budget_scan"));
  server::Server srv(st, sopts);
  std::thread loop([&] { srv.run(); });

  server::ClientOptions copts;
  copts.port = srv.port();
  server::Client client(copts);
  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {0, 1, 2, 3};
  req.range = {0, 120};
  const auto plain = client.call(req);
  req.chunk_bytes = 512;
  const auto chunked = client.call(req);
  ASSERT_EQ(chunked.status, server::wire::Status::kOk);
  EXPECT_EQ(canonical_bytes(chunked), canonical_bytes(plain));
  EXPECT_GT(server::wire::encode_response(plain).size(),
            sopts.loop.stream_budget_bytes);

  const net::LoopStats ls = srv.loop_stats();
  EXPECT_GT(ls.stream_peak_buffered, 0u);
  // One in-flight frame may straddle the budget line; past that the gate
  // must have paused the scan rather than buffer the result.
  EXPECT_LE(ls.stream_peak_buffered,
            sopts.loop.stream_budget_bytes + 512 + net::kFrameHeaderBytes);

  srv.shutdown();
  loop.join();
  srv.drain();
}

TEST(ChunkedLoopback, HostileChunkFlagsFailOneConnectionNotTheNeighbor) {
  LoopbackFixture fx("hostile_flags");
  server::Client neighbor(fx.client_options());
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;
  ASSERT_EQ(neighbor.call(ping).status, server::wire::Status::kOk);

  {
    // A request frame wearing a continuation flag: requests never
    // stream, so this is a framing violation — goodbye and close.
    auto stream =
        net::TcpStream::connect("127.0.0.1", fx.server.port(), 2000);
    auto bytes = net::encode_frame(net::FrameType::kRequest, 5,
                                   server::wire::encode_request(ping));
    bytes[6] = net::kFrameFlagChunk;  // CRC covers the payload, not this
    stream.write_all(bytes.data(), bytes.size(), 2000);

    net::FrameDecoder decoder;
    net::Frame frame;
    bool got_goodbye = false;
    bool closed = false;
    std::uint8_t chunk[4096];
    while (!closed && stream.wait_readable(5000)) {
      const auto r = stream.read_some(chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kClosed) {
        closed = true;
        break;
      }
      ASSERT_EQ(r.status, net::IoStatus::kOk);
      decoder.feed({chunk, r.n});
      while (decoder.next(frame)) {
        if (frame.type == net::FrameType::kGoodbye) {
          got_goodbye = true;
          const std::string why(frame.payload.begin(), frame.payload.end());
          EXPECT_NE(why.find("invalid chunk flags"), std::string::npos);
        }
      }
    }
    EXPECT_TRUE(got_goodbye);
    EXPECT_TRUE(closed);
  }
  EXPECT_GE(fx.server.loop_stats().protocol_errors, 1u);
  // The neighbor never noticed.
  EXPECT_EQ(neighbor.call(ping).status, server::wire::Status::kOk);
}

TEST(ChunkedLoopback, DowngradesForPreChunkPeersTransparently) {
  // A hand-rolled "old" server: answers pings, but any request carrying
  // the chunk_bytes extension gets the exact INVALID_ARGUMENT a
  // pre-chunking decode_request would raise for trailing bytes.
  net::TcpListener listener = net::TcpListener::bind(0, true);
  const std::uint16_t port = listener.local_port();
  std::atomic<bool> stop{false};
  std::atomic<int> chunked_seen{0};
  std::thread old_server([&] {
    net::TcpStream peer;
    while (!stop.load() && !peer.valid()) {
      peer = listener.accept();
      if (!peer.valid()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    net::FrameDecoder decoder;
    std::uint8_t chunk[4096];
    while (!stop.load()) {
      if (!peer.wait_readable(50)) continue;
      const auto r = peer.read_some(chunk, sizeof(chunk));
      if (r.status != net::IoStatus::kOk) {
        if (r.status == net::IoStatus::kWouldBlock) continue;
        return;
      }
      decoder.feed({chunk, r.n});
      net::Frame frame;
      while (decoder.next(frame)) {
        const auto req = server::wire::decode_request(frame.payload);
        server::wire::Response resp;
        resp.method = req.method;
        if (req.chunk_bytes != 0) {
          ++chunked_seen;
          resp.status = server::wire::Status::kInvalidArgument;
          resp.message = "trailing bytes after request";
        }
        const auto out =
            net::encode_frame(net::FrameType::kResponse, frame.request_id,
                              server::wire::encode_response(resp));
        peer.write_all(out.data(), out.size(), 2000);
      }
    }
  });

  server::ClientOptions copts;
  copts.port = port;
  server::Client client(copts);
  server::wire::Request req;
  req.method = server::wire::Method::kPing;
  req.chunk_bytes = 4096;  // caller wants streaming; the peer predates it
  EXPECT_EQ(client.call(req).status, server::wire::Status::kOk);
  EXPECT_EQ(client.call(req).status, server::wire::Status::kOk);
  // The downgrade is sticky: exactly one probe carried the extension.
  EXPECT_EQ(chunked_seen.load(), 1);

  stop.store(true);
  old_server.join();
}

// --- many-connection harness ---------------------------------------------

std::size_t open_fd_count() {
  std::size_t n = 0;
  for (auto it = fs::directory_iterator("/proc/self/fd");
       it != fs::directory_iterator(); ++it) {
    ++n;
  }
  return n;
}

struct HerdParam {
  std::size_t workers;
  std::size_t connections;
};

/// miniMarl-style fixture: a live server at an ephemeral port, swept
/// over {worker threads} x {connection count}, with TearDown proving no
/// leak survived the herd — file descriptors return to the baseline and
/// every admission slot is conserved.
class WithServerAt : public ::testing::TestWithParam<HerdParam> {
 protected:
  void SetUp() override {
    // 1024 sockets on each side of the loopback plus the archive needs
    // headroom beyond the default 1024 soft cap.
    rlimit lim{};
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &lim), 0);
    const rlim_t want = 8192;
    if (lim.rlim_cur < want) {
      rlimit raise = lim;
      raise.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
      ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &raise), 0);
    }
    const auto p = GetParam();
    store_ = std::make_unique<store::Store>(make_store(store_dir(
        ("herd_" + std::to_string(p.workers) + "_" +
         std::to_string(p.connections))
            .c_str())));
    fds_before_ = open_fd_count();
    pool_ = std::make_unique<util::ThreadPool>(p.workers);
    service_ = std::make_unique<server::QueryService>(
        *store_, server::ServiceOptions{.queue_limit = p.connections + 8,
                                        .pool = pool_.get()});
    server_ = std::make_unique<server::Server>(*service_);
    loop_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    // Admission-slot conservation: whatever the herd did, accepted
    // requests all reached a terminal bucket and the queue is empty.
    for (int spins = 0; spins < 500; ++spins) {
      if (service_->metrics().queue_depth == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const auto m = service_->metrics();
    EXPECT_EQ(m.queue_depth, 0u);
    EXPECT_EQ(m.accepted,
              m.served + m.shed + m.deadline_exceeded + m.cancelled + m.failed);

    server_->shutdown();
    loop_.join();
    server_->drain();
    server_.reset();
    service_.reset();
    pool_.reset();

    // Leak check: with the loop (epoll fd, wake pipe, listener, every
    // connection) torn down, the process is back to its baseline.
    std::size_t fds_after = open_fd_count();
    for (int spins = 0; spins < 500 && fds_after > fds_before_; ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      fds_after = open_fd_count();
    }
    EXPECT_LE(fds_after, fds_before_);
    store_.reset();
  }

  server::ClientOptions client_options() const {
    server::ClientOptions copts;
    copts.port = server_->port();
    return copts;
  }

  std::unique_ptr<store::Store> store_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<server::QueryService> service_;
  std::unique_ptr<server::Server> server_;
  std::thread loop_;
  std::size_t fds_before_ = 0;
};

TEST_P(WithServerAt, HerdGetsBitIdenticalAnswersAndLeaksNothing) {
  const auto p = GetParam();
  server::wire::Request req;
  req.method = server::wire::Method::kWindowSum;
  req.metric = 1;
  req.range = {0, 120};
  req.window = 10;
  const auto expected = canonical_bytes(service_->execute(req));

  // Open the whole herd first — the loop must hold every connection
  // concurrently — then work it, a mix of held-open idlers and callers.
  std::vector<std::unique_ptr<server::Client>> herd;
  herd.reserve(p.connections);
  for (std::size_t i = 0; i < p.connections; ++i) {
    herd.push_back(std::make_unique<server::Client>(client_options()));
  }
  for (auto& client : herd) {
    auto got = client->call(req);
    ASSERT_EQ(got.status, server::wire::Status::kOk);
    // Bit-parity at every point of the sweep, chunked and plain alike.
    EXPECT_EQ(canonical_bytes(got), expected);
  }
  // Every 8th connection re-asks over the chunked path.
  server::wire::Request chunked = req;
  chunked.chunk_bytes = 512;
  for (std::size_t i = 0; i < herd.size(); i += 8) {
    const auto got = herd[i]->call(chunked);
    ASSERT_EQ(got.status, server::wire::Status::kOk);
    EXPECT_EQ(canonical_bytes(got), expected);
  }
  for (int spins = 0;
       spins < 500 && server_->loop_stats().accepted < p.connections;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server_->loop_stats().accepted, p.connections);
  herd.clear();  // TearDown proves the close wave leaks nothing
}

INSTANTIATE_TEST_SUITE_P(
    Herd, WithServerAt,
    ::testing::Values(HerdParam{1, 1}, HerdParam{1, 16}, HerdParam{4, 16},
                      HerdParam{2, 256}, HerdParam{4, 256},
                      HerdParam{4, 1024}),
    [](const ::testing::TestParamInfo<HerdParam>& info) {
      return "w" + std::to_string(info.param.workers) + "_c" +
             std::to_string(info.param.connections);
    });

// --- scan_blocks wire form ------------------------------------------------

TEST(ScanBlocksWire, RequestExtensionRoundTrips) {
  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {1, 2};
  req.range = {0, 120};
  req.chunk_bytes = 4096;
  req.want_scan_blocks = true;
  const auto both =
      server::wire::decode_request(server::wire::encode_request(req));
  EXPECT_EQ(both.method, server::wire::Method::kScan);
  EXPECT_EQ(both.chunk_bytes, 4096u);
  EXPECT_TRUE(both.want_scan_blocks);

  // The block form negotiates independently of chunking.
  req.chunk_bytes = 0;
  const auto lone =
      server::wire::decode_request(server::wire::encode_request(req));
  EXPECT_EQ(lone.chunk_bytes, 0u);
  EXPECT_TRUE(lone.want_scan_blocks);

  // kScanBlocks is a response-only method: a request asks with kScan
  // plus the extension, never with the method itself.
  server::wire::Request bad;
  bad.method = server::wire::Method::kScanBlocks;
  EXPECT_THROW((void)server::wire::encode_request(bad),
               server::wire::WireError);
}

TEST(ScanBlocksWire, MaterializedResponseRoundTrips) {
  server::wire::Response resp;
  resp.status = server::wire::Status::kOk;
  resp.method = server::wire::Method::kScanBlocks;
  store::MetricRun a;
  a.id = 7;
  a.samples = {{1, 4.0}, {2, 5.0}, {2, 6.0}};
  store::MetricRun b;
  b.id = 9;  // empty run: begin + end, no pieces
  resp.runs = {a, b};
  resp.stats.lost_blocks = 1;
  resp.stats.cache_misses = 3;

  const auto back =
      server::wire::decode_response(server::wire::encode_response(resp));
  EXPECT_EQ(back.status, server::wire::Status::kOk);
  EXPECT_EQ(back.method, server::wire::Method::kScanBlocks);
  ASSERT_EQ(back.runs.size(), 2u);
  EXPECT_EQ(back.runs[0].id, 7u);
  ASSERT_EQ(back.runs[0].samples.size(), 3u);
  EXPECT_EQ(back.runs[0].samples[1].t, 2);
  EXPECT_EQ(back.runs[0].samples[1].value, 5.0);
  EXPECT_EQ(back.runs[1].id, 9u);
  EXPECT_TRUE(back.runs[1].samples.empty());
  EXPECT_EQ(back.stats.lost_blocks, 1u);
  EXPECT_EQ(back.stats.cache_misses, 3u);
}

TEST(ScanBlocksWire, StreamedRawBlockDecodesToSamples) {
  // Assemble the exact byte stream the streaming service produces: one
  // run carrying a still-encoded codec block plus a loose tail sample.
  std::vector<telemetry::MetricEvent> events;
  for (int i = 0; i < 64; ++i) {
    events.push_back({5, 10 + i, 100 - i});
  }
  const telemetry::EncodedBlock block = telemetry::encode_events(events);

  std::vector<std::uint8_t> bytes;
  server::wire::scan_blocks_begin(1, &bytes);
  server::wire::scan_blocks_run_begin(5, &bytes);
  server::wire::scan_blocks_block_header(
      static_cast<std::uint32_t>(block.bytes.size()), 64, &bytes);
  bytes.insert(bytes.end(), block.bytes.begin(), block.bytes.end());
  const ts::Sample loose{200, 1.0};
  server::wire::scan_blocks_samples({&loose, 1}, &bytes);
  server::wire::scan_blocks_run_end(&bytes);
  store::QueryStats stats;
  stats.cache_misses = 2;
  server::wire::scan_blocks_end(stats, &bytes);

  const auto resp = server::wire::decode_response(bytes);
  EXPECT_EQ(resp.method, server::wire::Method::kScanBlocks);
  ASSERT_EQ(resp.runs.size(), 1u);
  const auto& run = resp.runs[0];
  EXPECT_EQ(run.id, 5u);
  ASSERT_EQ(run.samples.size(), 65u);  // 64 decoded + 1 loose, sorted
  EXPECT_EQ(run.samples.front().t, 10);
  EXPECT_EQ(run.samples.front().value, 100.0);
  EXPECT_EQ(run.samples.back().t, 200);
  EXPECT_TRUE(std::is_sorted(run.samples.begin(), run.samples.end(),
                             store::sample_less));
  EXPECT_EQ(resp.stats.cache_misses, 2u);

  // A block whose declared event count disagrees with its payload is a
  // protocol violation, not a silent miscount.
  std::vector<std::uint8_t> tampered;
  server::wire::scan_blocks_begin(1, &tampered);
  server::wire::scan_blocks_run_begin(5, &tampered);
  server::wire::scan_blocks_block_header(
      static_cast<std::uint32_t>(block.bytes.size()), 63, &tampered);
  tampered.insert(tampered.end(), block.bytes.begin(), block.bytes.end());
  server::wire::scan_blocks_run_end(&tampered);
  server::wire::scan_blocks_end(stats, &tampered);
  EXPECT_THROW((void)server::wire::decode_response(tampered),
               server::wire::WireError);

  // So is an unknown piece tag.
  std::vector<std::uint8_t> unknown;
  server::wire::scan_blocks_begin(1, &unknown);
  server::wire::scan_blocks_run_begin(5, &unknown);
  unknown.push_back(7);
  server::wire::scan_blocks_end(stats, &unknown);
  EXPECT_THROW((void)server::wire::decode_response(unknown),
               server::wire::WireError);
}

TEST(ChunkedLoopback, BlockFormScanMatchesClassicRunForRun) {
  LoopbackFixture fx("scan_blocks");
  server::Client client(fx.client_options());

  // Full-range: every block lies wholly inside, so the server ships raw
  // encoded blocks and the client decodes them. Partial range: boundary
  // blocks decode server-side into loose samples. Both must reproduce
  // the classic scan exactly.
  for (const util::TimeRange range :
       {util::TimeRange{0, 120}, util::TimeRange{30, 90}}) {
    server::wire::Request req;
    req.method = server::wire::Method::kScan;
    req.metrics = {0, 1, 2, 3};
    req.range = range;
    const auto classic = client.call(req);
    ASSERT_EQ(classic.status, server::wire::Status::kOk);

    req.chunk_bytes = 600;
    req.want_scan_blocks = true;
    const auto blocks = client.call(req);
    ASSERT_EQ(blocks.status, server::wire::Status::kOk);
    EXPECT_EQ(blocks.method, server::wire::Method::kScanBlocks);
    ASSERT_EQ(blocks.runs.size(), classic.runs.size());
    for (std::size_t i = 0; i < classic.runs.size(); ++i) {
      EXPECT_EQ(blocks.runs[i].id, classic.runs[i].id);
      ASSERT_EQ(blocks.runs[i].samples.size(),
                classic.runs[i].samples.size())
          << "run " << i << " range [" << range.begin << ", " << range.end
          << ")";
      for (std::size_t j = 0; j < classic.runs[i].samples.size(); ++j) {
        EXPECT_EQ(blocks.runs[i].samples[j].t, classic.runs[i].samples[j].t);
        EXPECT_EQ(blocks.runs[i].samples[j].value,
                  classic.runs[i].samples[j].value);
      }
    }
    EXPECT_EQ(blocks.stats.lost_segments, 0u);
    EXPECT_EQ(blocks.stats.lost_blocks, 0u);
  }

  server::wire::Request stats_req;
  stats_req.method = server::wire::Method::kServerStats;
  const auto stats = client.call(stats_req);
  ASSERT_EQ(stats.status, server::wire::Status::kOk);
  EXPECT_GE(stats.server.streams, 2u);
}

}  // namespace
