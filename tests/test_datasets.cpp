#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/report.hpp"
#include "core/simulation.hpp"
#include "datasets/export.hpp"
#include "datasets/import.hpp"
#include "datasets/schema.hpp"
#include "power/cluster.hpp"
#include "telemetry/pipeline.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"

namespace {

using namespace exawatt;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------- CSV reader

TEST(CsvReader, RoundTripWithWriter) {
  const std::string path = temp_path("exawatt_csv_rt.csv");
  {
    util::CsvWriter w(path, {"name", "value"});
    w.add_row(std::vector<std::string>{"plain", "1.5"});
    w.add_row(std::vector<std::string>{"with,comma", "2.5"});
    w.add_row(std::vector<std::string>{"say \"hi\"", "3.5"});
  }
  util::CsvReader r(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.rows(), 3u);
  EXPECT_EQ(r.header()[0], "name");
  EXPECT_EQ(r.text(1, 0), "with,comma");
  EXPECT_EQ(r.text(2, 0), "say \"hi\"");
  EXPECT_DOUBLE_EQ(r.number(0, r.column("value")), 1.5);
  EXPECT_THROW((void)r.column("nope"), util::CheckError);
  std::filesystem::remove(path);
}

TEST(CsvReader, MissingFileNotOk) {
  util::CsvReader r("/nonexistent/file.csv");
  EXPECT_FALSE(r.ok());
}

TEST(CsvSplit, HandlesQuotingRules) {
  const auto plain = util::csv_split("a,b,c");
  ASSERT_EQ(plain.size(), 3u);
  EXPECT_EQ(plain[1], "b");
  const auto quoted = util::csv_split("\"a,b\",\"x\"\"y\"");
  ASSERT_EQ(quoted.size(), 2u);
  EXPECT_EQ(quoted[0], "a,b");
  EXPECT_EQ(quoted[1], "x\"y");
  const auto empty = util::csv_split("a,,c");
  ASSERT_EQ(empty.size(), 3u);
  EXPECT_EQ(empty[1], "");
}

// ---------------------------------------------------------------- Ranges

TEST(Schema, RangeListRoundTrip) {
  const std::vector<std::pair<std::int32_t, int>> ranges = {
      {0, 18}, {100, 1}, {4000, 608}};
  const std::string enc = datasets::encode_ranges(ranges);
  EXPECT_EQ(enc, "0:18;100:1;4000:608");
  const auto dec = datasets::decode_ranges(enc);
  ASSERT_EQ(dec.size(), 3u);
  EXPECT_EQ(dec[2].first, 4000);
  EXPECT_EQ(dec[2].second, 608);
  EXPECT_TRUE(datasets::decode_ranges("").empty());
  EXPECT_THROW(datasets::decode_ranges("12;34"), util::CheckError);
}

// ----------------------------------------------------- Dataset round trip

core::SimulationConfig dataset_config() {
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(128);
  config.seed = 51;
  config.range = {0, util::kDay};
  config.failures.rate_scale = 20.0;
  return config;
}

TEST(Datasets, JobsRoundTripExactly) {
  core::Simulation sim(dataset_config());
  const std::string path = temp_path("exawatt_jobs.csv");
  const std::size_t rows = datasets::export_jobs(path, sim.jobs());
  EXPECT_GT(rows, 100u);

  const auto back = datasets::import_jobs(path);
  ASSERT_EQ(back.size(), rows);
  std::size_t i = 0;
  for (const auto& j : sim.jobs()) {
    if (j.start < 0) continue;
    const auto& b = back[i++];
    EXPECT_EQ(b.id, j.id);
    EXPECT_EQ(b.sched_class, j.sched_class);
    EXPECT_EQ(b.node_count, j.node_count);
    EXPECT_EQ(b.start, j.start);
    EXPECT_EQ(b.end, j.end);
    EXPECT_EQ(b.key, j.key);
    EXPECT_EQ(b.nodes.size(), j.nodes.size());
    for (std::size_t r = 0; r < j.nodes.size(); ++r) {
      EXPECT_EQ(b.nodes[r].first, j.nodes[r].first);
      EXPECT_EQ(b.nodes[r].count, j.nodes[r].count);
    }
  }
  std::filesystem::remove(path);
}

TEST(Datasets, ReimportedJobsReproducePowerSeries) {
  // The power model is a pure function of the job record, so analyses
  // rerun from files must match in-memory results bit for bit.
  core::Simulation sim(dataset_config());
  const std::string path = temp_path("exawatt_jobs2.csv");
  datasets::export_jobs(path, sim.jobs());
  const auto back = datasets::import_jobs(path);

  const auto a = power::cluster_power_frame(sim.jobs(), sim.scale(),
                                            {0, util::kDay / 2}, {.dt = 300});
  const auto b = power::cluster_power_frame(back, sim.scale(),
                                            {0, util::kDay / 2}, {.dt = 300});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.at("input_power_w")[i], b.at("input_power_w")[i]);
  }
  std::filesystem::remove(path);
}

TEST(Datasets, XidLogRoundTrip) {
  core::Simulation sim(dataset_config());
  const auto& log = sim.failure_log();
  ASSERT_GT(log.size(), 20u);
  const std::string path = temp_path("exawatt_xid.csv");
  datasets::export_xid_log(path, log);
  const auto back = datasets::import_xid_log(path);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(back[i].time, log[i].time);
    EXPECT_EQ(back[i].type, log[i].type);
    EXPECT_EQ(back[i].node, log[i].node);
    EXPECT_EQ(back[i].slot, log[i].slot);
    EXPECT_NEAR(back[i].temp_c, log[i].temp_c, 1e-3);
  }
  std::filesystem::remove(path);
}

TEST(Datasets, ClusterSeriesRoundTrip) {
  core::Simulation sim(dataset_config());
  const auto cluster = sim.cluster_frame({0, util::kDay / 4}, {.dt = 60});
  const std::string path = temp_path("exawatt_cluster.csv");
  datasets::export_cluster_series(path, cluster);
  const ts::Series back = datasets::import_cluster_power(path);
  ASSERT_EQ(back.size(), cluster.rows());
  EXPECT_EQ(back.dt(), 60);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], cluster.at("input_power_w")[i],
                1e-6 * cluster.at("input_power_w")[i]);
  }
  std::filesystem::remove(path);
}

TEST(Datasets, ExportRejectsBadPath) {
  core::Simulation sim(dataset_config());
  EXPECT_THROW(datasets::export_jobs("/nonexistent/dir/jobs.csv", sim.jobs()),
               util::CheckError);
  EXPECT_THROW(datasets::import_jobs("/nonexistent/jobs.csv"),
               util::CheckError);
}

// ------------------------------------------------------------------ Flags

TEST(Flags, ParsesCommandAndValues) {
  // Note: a bare "--flag" consumes a following non-dash token as its
  // value, so positionals must precede bare flags (or use --flag=value).
  const char* argv[] = {"tool", "simulate", "--nodes", "512",
                        "--days=2.5", "extra", "--verbose"};
  util::Flags flags(7, argv);
  EXPECT_EQ(flags.command(), "simulate");
  EXPECT_EQ(flags.get_int("nodes", 0), 512);
  EXPECT_DOUBLE_EQ(flags.get_number("days", 0.0), 2.5);
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get("missing", "dflt"), "dflt");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "extra");
}

TEST(Flags, NoCommand) {
  const char* argv[] = {"tool", "--x", "1"};
  util::Flags flags(3, argv);
  EXPECT_TRUE(flags.command().empty());
  EXPECT_EQ(flags.get_int("x", 0), 1);
}

// ----------------------------------------------------------------- Report

TEST(Report, FloorHeatmapShapesAndNan) {
  machine::Topology topo(machine::MachineScale::small(72));  // 4 cabinets
  std::vector<double> values(4, 25.0);
  values[2] = std::numeric_limits<double>::quiet_NaN();
  values[3] = 35.0;
  const std::string map = core::floor_heatmap(topo, values, 20.0, 40.0);
  EXPECT_NE(map.find('.'), std::string::npos);  // the NaN cell
  EXPECT_NE(map.find("scale:"), std::string::npos);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(core::floor_heatmap(topo, wrong), util::CheckError);
}

TEST(Report, SparklineSpansLevels) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const std::string line = core::sparkline(ts::Series(0, 1, v), 40);
  EXPECT_EQ(line.size(), 40u);
  EXPECT_EQ(line.front(), ' ');  // minimum level
  EXPECT_EQ(line.back(), '@');   // maximum level
  EXPECT_TRUE(core::sparkline(ts::Series(), 10).empty());
}


TEST(Datasets, NodeAggregatesExport) {
  // Run a short telemetry window and export Dataset 0 for two nodes.
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(32);
  cfg.seed = 3;
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 8});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay / 8);
  const util::TimeRange window = {util::kHour, util::kHour + 120};
  workload::AllocationIndex alloc(jobs, window, cfg.scale.nodes);
  power::FleetVariability fleet(cfg.scale, 1);
  thermal::FleetThermal thermals(cfg.scale, 2);
  machine::Topology topo(cfg.scale);
  facility::MsbModel msb(topo, 3);
  telemetry::Pipeline pipeline({0, 1}, alloc, fleet, thermals, msb);
  (void)pipeline.run(window);

  const std::string path = temp_path("exawatt_ds0.csv");
  const int power_ch =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  const std::size_t rows = datasets::export_node_aggregates(
      path, pipeline.archive(), {0, 1}, {power_ch}, window);
  // Two nodes x 12 windows of 10 s.
  EXPECT_EQ(rows, 24u);
  util::CsvReader r(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rows(), rows);
  const auto c_count = r.column("count");
  const auto c_mean = r.column("mean");
  for (std::size_t i = 0; i < r.rows(); ++i) {
    EXPECT_DOUBLE_EQ(r.number(i, c_count), 10.0);
    EXPECT_GT(r.number(i, c_mean), 300.0);
  }
  std::filesystem::remove(path);
}
}  // namespace
