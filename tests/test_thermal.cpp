#include <gtest/gtest.h>

#include "power/job_power.hpp"
#include "thermal/node_thermal.hpp"
#include "thermal/rc_model.hpp"
#include "util/check.hpp"
#include "util/welford.hpp"

namespace {

using namespace exawatt;
using machine::SummitSpec;

// ---------------------------------------------------------------- RC step

TEST(RcModel, ConvergesToTarget) {
  double t = 20.0;
  for (int i = 0; i < 100; ++i) t = thermal::rc_step(t, 50.0, 10.0, 20.0);
  EXPECT_NEAR(t, 50.0, 1e-6);
}

TEST(RcModel, OneTauReaches63Percent) {
  const double t = thermal::rc_step(0.0, 100.0, 20.0, 20.0);
  EXPECT_NEAR(t, 63.21, 0.01);
}

TEST(RcModel, ZeroDtIsIdentity) {
  EXPECT_DOUBLE_EQ(thermal::rc_step(33.0, 99.0, 0.0, 20.0), 33.0);
}

TEST(RcModel, RejectsBadParameters) {
  EXPECT_THROW((void)thermal::rc_step(0.0, 1.0, -1.0, 20.0), util::CheckError);
  EXPECT_THROW((void)thermal::rc_step(0.0, 1.0, 1.0, 0.0), util::CheckError);
}

TEST(RcModel, AsymmetricStepsFasterUp) {
  const double up = thermal::rc_step_asymmetric(0.0, 100.0, 30.0, 50.0, 170.0);
  const double down =
      100.0 - thermal::rc_step_asymmetric(100.0, 0.0, 30.0, 50.0, 170.0);
  EXPECT_GT(up, down);  // heating approach is faster than cooling decay
}

// ------------------------------------------------------------ FleetThermal

thermal::FleetThermal small_fleet() {
  return thermal::FleetThermal(machine::MachineScale::small(256), 9);
}

TEST(FleetThermal, ResistancesPositiveAndVaried) {
  const auto fleet = small_fleet();
  util::Welford acc;
  for (machine::NodeId n = 0; n < 256; ++n) {
    for (int g = 0; g < 6; ++g) {
      const double r = fleet.gpu_r(n, g);
      EXPECT_GT(r, 0.0);
      acc.add(r);
    }
  }
  EXPECT_NEAR(acc.mean(), fleet.params().gpu_r_mean_c_per_w,
              0.05 * fleet.params().gpu_r_mean_c_per_w);
  EXPECT_GT(acc.stddev() / acc.mean(), 0.10);  // real chip-to-chip spread
}

TEST(FleetThermal, Deterministic) {
  const auto a = small_fleet();
  const auto b = small_fleet();
  EXPECT_DOUBLE_EQ(a.gpu_r(17, 2), b.gpu_r(17, 2));
  EXPECT_DOUBLE_EQ(a.cpu_r(17, 1), b.cpu_r(17, 1));
  EXPECT_DOUBLE_EQ(a.node_coolant_offset_c(100), b.node_coolant_offset_c(100));
}

TEST(FleetThermal, BoundsChecked) {
  const auto fleet = small_fleet();
  EXPECT_THROW((void)fleet.gpu_r(256, 0), util::CheckError);
  EXPECT_THROW((void)fleet.gpu_r(0, 6), util::CheckError);
  EXPECT_THROW((void)fleet.cpu_r(0, 2), util::CheckError);
}

TEST(FleetThermal, SteadyTempsIdleNearSupply) {
  const auto fleet = small_fleet();
  power::FleetVariability var(machine::MachineScale::small(256), 9);
  const auto p = power::idle_node_power(5, var);
  const auto t = fleet.steady_temps(5, p, 20.0);
  for (double c : t.gpu_c) {
    EXPECT_GT(c, 20.0);
    EXPECT_LT(c, 30.0);  // idle GPUs barely above the water
  }
}

TEST(FleetThermal, SteadyTempsLoadedBelowSixty) {
  const auto fleet = small_fleet();
  // Fully loaded GPUs at 290 W each.
  power::NodeComponentPower p;
  for (auto& g : p.gpu_w) g = 290.0;
  for (auto& c : p.cpu_w) c = 150.0;
  int below_60 = 0;
  double max_c = 0.0;
  for (machine::NodeId n = 0; n < 256; ++n) {
    const auto t = fleet.steady_temps(n, p, 20.0);
    for (double c : t.gpu_c) {
      if (c < 60.0) ++below_60;
      max_c = std::max(max_c, c);
    }
  }
  // Paper: "the vast majority of the GPUs do not exceed 60 C".
  EXPECT_GT(static_cast<double>(below_60) / (256.0 * 6.0), 0.97);
  EXPECT_LT(max_c, 75.0);
}

TEST(FleetThermal, CoolantChainPreheatsDownstreamGpus) {
  thermal::ThermalParams params;
  params.gpu_r_sigma = 0.0;   // isolate the chain effect
  params.cabinet_sigma_c = 0.0;
  params.row_gradient_c = 0.0;
  thermal::FleetThermal fleet(machine::MachineScale::small(32), 9, params);
  power::NodeComponentPower p;
  for (auto& g : p.gpu_w) g = 290.0;
  const auto t = fleet.steady_temps(3, p, 20.0);
  // Within each socket the later coolant positions run warmer.
  EXPECT_LT(t.gpu_c[0], t.gpu_c[1]);
  EXPECT_LT(t.gpu_c[1], t.gpu_c[2]);
  EXPECT_LT(t.gpu_c[3], t.gpu_c[4]);
  EXPECT_LT(t.gpu_c[4], t.gpu_c[5]);
  // Sockets are symmetric when variability is off.
  EXPECT_NEAR(t.gpu_c[0], t.gpu_c[3], 1e-9);
}

TEST(FleetThermal, TempScalesWithSupply) {
  const auto fleet = small_fleet();
  power::NodeComponentPower p;
  for (auto& g : p.gpu_w) g = 200.0;
  const auto cold = fleet.steady_temps(7, p, 18.0);
  const auto warm = fleet.steady_temps(7, p, 22.0);
  for (int g = 0; g < 6; ++g) {
    EXPECT_NEAR(warm.gpu_c[g] - cold.gpu_c[g], 4.0, 1e-9);
  }
}

TEST(FleetThermal, WithinJobSpreadMatchesPaperScale) {
  // The paper's exemplar: ~62 W non-outlier power spread produced a
  // ~15.8 C temperature spread. At near-uniform power our spread must be
  // dominated by manufacturing variability: expect >= 8 C across chips.
  const auto fleet = small_fleet();
  power::NodeComponentPower p;
  for (auto& g : p.gpu_w) g = 280.0;
  std::vector<double> temps;
  for (machine::NodeId n = 0; n < 256; ++n) {
    const auto t = fleet.steady_temps(n, p, 20.0);
    for (double c : t.gpu_c) temps.push_back(c);
  }
  const double p95 = [&] {
    std::sort(temps.begin(), temps.end());
    return temps[static_cast<std::size_t>(0.95 * temps.size())];
  }();
  const double p5 = temps[static_cast<std::size_t>(0.05 * temps.size())];
  EXPECT_GT(p95 - p5, 8.0);
  EXPECT_LT(p95 - p5, 30.0);
}

TEST(FleetThermal, CpuTempsFlatterThanGpu) {
  const auto fleet = small_fleet();
  power::NodeComponentPower lo;
  power::NodeComponentPower hi;
  for (auto& g : lo.gpu_w) g = 50.0;
  for (auto& g : hi.gpu_w) g = 290.0;
  for (auto& c : lo.cpu_w) c = 120.0;
  for (auto& c : hi.cpu_w) c = 160.0;  // CPU swing is small in GPU jobs
  const auto tlo = fleet.steady_temps(9, lo, 20.0);
  const auto thi = fleet.steady_temps(9, hi, 20.0);
  const double gpu_swing = thi.gpu_c[0] - tlo.gpu_c[0];
  const double cpu_swing = thi.cpu_c[0] - tlo.cpu_c[0];
  EXPECT_GT(gpu_swing, 3.0 * cpu_swing);
}

}  // namespace
