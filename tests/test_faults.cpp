// Fault-matrix suite for the store's graceful-degradation contract: for
// every injectable fault class, recovery loses at most the unsealed tail,
// surviving samples are a subset of the reference feed (never a wrong
// value), and `cluster_sum` over the survivors bit-matches a reference
// archive rebuilt from exactly the surviving events.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "faultfs/fault.hpp"
#include "store/store.hpp"
#include "stream/alerts.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/archive.hpp"
#include "util/rng.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;

// ------------------------------------------------------------- fixtures

constexpr int kChannel = 3;
const std::vector<machine::NodeId> kNodes{0, 1, 2, 3};
constexpr util::TimeRange kWindow{0, 600};

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("exawatt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Deterministic per-second feed for a small node set, chunked into
/// batches the way the pipeline hands them to the store.
std::vector<std::vector<telemetry::MetricEvent>> make_batches() {
  util::Rng rng(0xFA017ULL);
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  std::vector<telemetry::MetricEvent> batch;
  for (util::TimeSec t = kWindow.begin; t < kWindow.end; ++t) {
    for (const machine::NodeId node : kNodes) {
      batch.push_back({telemetry::metric_id(node, kChannel), t,
                       static_cast<std::int32_t>(rng.uniform_index(40'000))});
      if (batch.size() == 256) {
        batches.push_back(std::move(batch));
        batch.clear();
      }
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

/// The in-memory truth the store must never contradict.
telemetry::Archive make_reference(
    const std::vector<std::vector<telemetry::MetricEvent>>& batches) {
  telemetry::Archive archive;
  for (const auto& b : batches) archive.append(b);
  return archive;
}

store::StoreOptions small_segments() {
  store::StoreOptions options;
  options.segment_events = 1 << 10;  // several seals from a 2400-event feed
  return options;
}

/// Replay the batches into `dir` through `vfs`; false when an injected
/// fault killed the run before the final flush (the Store destructor's
/// best-effort salvage has already run by the time this returns).
bool feed(const std::string& dir,
          const std::vector<std::vector<telemetry::MetricEvent>>& batches,
          util::Vfs* vfs = nullptr, util::Clock* clock = nullptr) {
  fs::remove_all(dir);
  store::StoreOptions options = small_segments();
  options.vfs = vfs;
  options.clock = clock;
  try {
    store::Store store = store::Store::open(dir, options);
    for (const auto& batch : batches) store.append(batch);
    store.flush();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// True when every sample of `part` appears in `full` with identical
/// timestamp and bit-identical value (both time-sorted).
bool is_subset(const std::vector<ts::Sample>& part,
               const std::vector<ts::Sample>& full) {
  std::size_t j = 0;
  for (const auto& s : part) {
    while (j < full.size() && full[j].t < s.t) ++j;
    if (j >= full.size() || full[j].t != s.t || full[j].value != s.value) {
      return false;
    }
    ++j;
  }
  return true;
}

/// The recovery invariant, checked after any fault schedule: reopen on
/// the real filesystem, require survivors ⊆ reference, and require the
/// store roll-up to bit-match an archive rebuilt from the survivors.
/// Returns the surviving event count (reference total = 2400).
std::uint64_t verify_recovery(const std::string& dir,
                              const telemetry::Archive& reference) {
  store::Store store = store::Store::open(dir, small_segments());
  telemetry::Archive survivors;
  std::vector<telemetry::MetricEvent> events;
  std::uint64_t total = 0;
  for (const telemetry::MetricId id : store.metrics()) {
    const auto disk = store.query(id, kWindow);
    EXPECT_TRUE(is_subset(disk, reference.query(id, kWindow)))
        << "metric " << id << " holds samples the feed never produced";
    total += disk.size();
    for (const auto& s : disk) {
      events.push_back({id, s.t, static_cast<std::int32_t>(s.value)});
    }
  }
  if (!events.empty()) survivors.append(std::move(events));

  const auto disk_sum =
      store::cluster_sum(store, kNodes, kChannel, kWindow);
  const auto ref_sum =
      telemetry::cluster_sum(survivors, kNodes, kChannel, kWindow);
  EXPECT_EQ(disk_sum.size(), ref_sum.size()) << dir;
  for (std::size_t w = 0; w < disk_sum.size() && w < ref_sum.size(); ++w) {
    EXPECT_EQ(disk_sum[w], ref_sum[w])
        << "cluster_sum diverges from surviving events at window " << w;
    if (disk_sum[w] != ref_sum[w]) break;
  }
  return total;
}

/// Index of the write-side op whose journal line starts with `kind` and
/// mentions `needle`, from a fault-free rehearsal — how a schedule aims
/// at "the manifest rename" or "a segment body write" without hard-coding
/// op numbers. `last` picks the final match instead of the first.
std::uint64_t find_op(const std::vector<std::string>& journal,
                      const std::string& kind, const std::string& needle,
                      bool last = false) {
  std::uint64_t found = 0;
  bool any = false;
  for (std::size_t i = 0; i < journal.size(); ++i) {
    if (journal[i].rfind(kind, 0) == 0 &&
        journal[i].find(needle) != std::string::npos) {
      found = static_cast<std::uint64_t>(i);
      any = true;
      if (!last) break;
    }
  }
  if (!any) ADD_FAILURE() << "no journalled op matches: " << kind << needle;
  return found;
}

std::uint64_t total_events(const telemetry::Archive& a) {
  return a.total_events();
}

// ---------------------------------------------------------- fault matrix

TEST(FaultMatrix, ShortWriteTearsSegmentRecoveryDropsOnlyTail) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_short_write");

  // Rehearsal numbers the write points; aim a torn write at a segment
  // body write. The crash one op later is a guard: if a future seal path
  // retries past the tear, it dies instead of quietly repairing the
  // damage before we look at the disk.
  faultfs::FaultVfs rehearsal(util::Vfs::real());
  ASSERT_TRUE(feed(dir, batches, &rehearsal));
  const auto journal = rehearsal.write_journal();
  const std::uint64_t seg_write = find_op(journal, "write ", ".seg");

  faultfs::FaultVfs chaos(util::Vfs::real(),
                          faultfs::FaultPlan()
                              .short_write(seg_write, 7)
                              .crash_at_write(seg_write + 1));
  ASSERT_FALSE(feed(dir, batches, &chaos));
  ASSERT_GE(chaos.stats().injected, 1u);

  store::Store reopened = store::Store::open(dir, small_segments());
  EXPECT_FALSE(reopened.recovery().clean());
  const auto survived = verify_recovery(dir, reference);
  EXPECT_LT(survived, total_events(reference));
}

TEST(FaultMatrix, EnospcSurfacesAsStoreErrorNotCorruption) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_enospc");

  faultfs::FaultVfs rehearsal(util::Vfs::real());
  ASSERT_TRUE(feed(dir, batches, &rehearsal));
  const std::uint64_t seg_write =
      find_op(rehearsal.write_journal(), "write ", ".seg");

  fs::remove_all(dir);
  store::StoreOptions options = small_segments();
  faultfs::FaultVfs chaos(util::Vfs::real(),
                          faultfs::FaultPlan().enospc_at(seg_write));
  options.vfs = &chaos;
  bool threw = false;
  {
    store::Store store = store::Store::open(dir, options);
    try {
      for (const auto& batch : batches) store.append(batch);
      store.flush();
    } catch (const store::StoreError& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("no space"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_TRUE(threw);
  verify_recovery(dir, reference);
}

TEST(FaultMatrix, TransientOutageIsRetriedAndLosesNothing) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_transient");

  faultfs::FaultVfs rehearsal(util::Vfs::real());
  ASSERT_TRUE(feed(dir, batches, &rehearsal));
  const std::uint64_t seg_write =
      find_op(rehearsal.write_journal(), "write ", ".seg");

  // One transient blip mid-seal: the store's backoff policy must absorb
  // it — on the injected clock, so the test itself never sleeps.
  util::ManualClock clock;
  faultfs::FaultVfs chaos(
      util::Vfs::real(),
      faultfs::FaultPlan().fail_write(seg_write, /*transient=*/true), &clock);
  ASSERT_TRUE(feed(dir, batches, &chaos, &clock));
  EXPECT_EQ(chaos.stats().injected, 1u);
  ASSERT_FALSE(clock.sleeps().empty());
  EXPECT_GT(clock.sleeps().front(), 0);

  EXPECT_EQ(verify_recovery(dir, reference), total_events(reference));
  store::Store reopened = store::Store::open(dir, small_segments());
  EXPECT_TRUE(reopened.recovery().clean());
}

TEST(FaultMatrix, CrashBetweenSealAndManifestRenameAdoptsOrphan) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_orphan");

  faultfs::FaultVfs rehearsal(util::Vfs::real());
  ASSERT_TRUE(feed(dir, batches, &rehearsal));
  // The last MANIFEST.tmp create is the replace that would have listed
  // the final sealed segment: dying right there leaves a sealed orphan.
  const std::uint64_t manifest_create = find_op(
      rehearsal.write_journal(), "create ", "MANIFEST.tmp", /*last=*/true);

  faultfs::FaultVfs chaos(
      util::Vfs::real(),
      faultfs::FaultPlan().crash_at_write(manifest_create));
  ASSERT_FALSE(feed(dir, batches, &chaos));

  store::Store reopened = store::Store::open(dir, small_segments());
  EXPECT_GE(reopened.recovery().adopted_orphans, 1u);
  // The orphan was fully sealed, so adoption recovers the entire feed.
  EXPECT_EQ(verify_recovery(dir, reference), total_events(reference));
}

TEST(FaultMatrix, DelayedManifestReplaceOnlyStallsTheInjectedClock) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_slow_manifest");

  faultfs::FaultVfs rehearsal(util::Vfs::real());
  ASSERT_TRUE(feed(dir, batches, &rehearsal));
  const std::uint64_t manifest_rename = find_op(
      rehearsal.write_journal(), "rename ", "MANIFEST", /*last=*/true);

  constexpr std::int64_t kStallUs = 30'000'000;  // 30 s — never for real
  util::ManualClock clock;
  faultfs::FaultVfs chaos(
      util::Vfs::real(),
      faultfs::FaultPlan().delay_write(manifest_rename, kStallUs), &clock);
  ASSERT_TRUE(feed(dir, batches, &chaos, &clock));
  ASSERT_EQ(clock.sleeps().size(), 1u);
  EXPECT_EQ(clock.sleeps().front(), kStallUs);
  EXPECT_EQ(verify_recovery(dir, reference), total_events(reference));
}

TEST(FaultMatrix, BitFlipOnReadDegradesThenHealsWhenFaultClears) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_bitflip");
  ASSERT_TRUE(feed(dir, batches));

  // Open clean, then arm a flip on every later read: the block CRCs must
  // convert silent corruption into counted, skipped blocks.
  faultfs::FaultVfs flippy(util::Vfs::real());
  store::StoreOptions options = small_segments();
  options.vfs = &flippy;
  store::Store store = store::Store::open(dir, options);
  ASSERT_TRUE(store.recovery().clean());
  flippy.set_plan(faultfs::FaultPlan().flip_bits_on_reads_from(
      flippy.stats().read_ops, 11));

  std::uint64_t returned = 0;
  bool degraded = false;
  for (const telemetry::MetricId id : store.metrics()) {
    store::QueryStats stats;
    const auto disk = store.query(id, kWindow, &stats);
    EXPECT_TRUE(is_subset(disk, reference.query(id, kWindow)));
    returned += disk.size();
    degraded = degraded || stats.degraded();
  }
  EXPECT_TRUE(degraded);
  EXPECT_LT(returned, total_events(reference));

  // Clear the schedule: the data on disk was never touched, so the same
  // store object reads everything back intact.
  flippy.set_plan({});
  std::uint64_t healed = 0;
  for (const telemetry::MetricId id : store.metrics()) {
    store::QueryStats stats;
    healed += store.query(id, kWindow, &stats).size();
    EXPECT_FALSE(stats.degraded());
  }
  EXPECT_EQ(healed, total_events(reference));
}

TEST(FaultMatrix, WarmBlockCacheServesQueriesThroughReadFaults) {
  const auto batches = make_batches();
  const std::string dir = scratch_dir("faults_warm_cache");
  ASSERT_TRUE(feed(dir, batches));

  faultfs::FaultVfs flippy(util::Vfs::real());
  store::StoreOptions cached_options = small_segments();
  cached_options.vfs = &flippy;
  store::StoreOptions cold_options = cached_options;
  cold_options.cache_bytes = 0;  // contrast store: every scan hits disk
  store::Store warm = store::Store::open(dir, cached_options);
  store::Store cold = store::Store::open(dir, cold_options);
  ASSERT_TRUE(warm.recovery().clean());

  // Warm the decoded-block cache, then poison every later disk read.
  std::map<telemetry::MetricId, std::vector<ts::Sample>> clean;
  for (const telemetry::MetricId id : warm.metrics()) {
    clean[id] = warm.query(id, kWindow);
  }
  const auto clean_sum = warm.window_sum(
      telemetry::metric_id(kNodes.front(), kChannel), kWindow, 10);
  flippy.set_plan(faultfs::FaultPlan().flip_bits_on_reads_from(
      flippy.stats().read_ops, 7));

  // The warm store never touches the faulted disk: full results, zero
  // degradation, every block a cache hit.
  for (const auto& [id, reference] : clean) {
    store::QueryStats stats;
    const auto got = warm.query(id, kWindow, &stats);
    EXPECT_FALSE(stats.degraded());
    EXPECT_GT(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, 0u);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].t, reference[i].t);
      EXPECT_EQ(got[i].value, reference[i].value);
    }
  }
  store::QueryStats sum_stats;
  const auto warm_sum =
      warm.window_sum(telemetry::metric_id(kNodes.front(), kChannel),
                      kWindow, 10, nullptr, &sum_stats);
  EXPECT_FALSE(sum_stats.degraded());
  EXPECT_EQ(warm_sum.sum, clean_sum.sum);
  EXPECT_EQ(warm_sum.count, clean_sum.count);

  // The cold store sees the same faults and must degrade loudly.
  bool degraded = false;
  for (const auto& [id, reference] : clean) {
    store::QueryStats stats;
    const auto got = cold.query(id, kWindow, &stats);
    EXPECT_TRUE(is_subset(got, reference));
    degraded = degraded || stats.degraded();
  }
  EXPECT_TRUE(degraded);
}

TEST(DegradedQueries, WindowSumRollsBackDamagedBlocksWhole) {
  const auto batches = make_batches();
  const std::string dir = scratch_dir("faults_window_sum");
  ASSERT_TRUE(feed(dir, batches));

  faultfs::FaultVfs flippy(util::Vfs::real());
  store::StoreOptions options = small_segments();
  options.vfs = &flippy;
  options.cache_bytes = 0;
  store::Store store = store::Store::open(dir, options);
  const telemetry::MetricId id = telemetry::metric_id(kNodes[1], kChannel);
  const auto clean = store.window_sum(id, kWindow, 10);

  flippy.set_plan(faultfs::FaultPlan().flip_bits_on_reads_from(
      flippy.stats().read_ops, 3));
  store::QueryStats stats;
  const auto damaged = store.window_sum(id, kWindow, 10, nullptr, &stats);
  EXPECT_TRUE(stats.degraded());
  // Partial sums never leak: every window's contribution is either the
  // full clean value or absent — here every block fails, so the grid is
  // all zero (and strictly below the clean totals).
  for (std::size_t w = 0; w < damaged.size(); ++w) {
    EXPECT_LE(damaged.count[w], clean.count[w]);
    if (damaged.count[w] == clean.count[w]) {
      EXPECT_EQ(damaged.sum[w], clean.sum[w]);
    } else {
      EXPECT_LE(std::abs(damaged.sum[w]), std::abs(clean.sum[w]));
    }
  }

  // Like query(), window_sum degrades rather than throws even without a
  // stats out-param — stats only adds attribution.
  const auto silent = store.window_sum(id, kWindow, 10);
  EXPECT_EQ(silent.sum, damaged.sum);
  EXPECT_EQ(silent.count, damaged.count);
}

// ------------------------------------------------------- degraded queries

TEST(DegradedQueries, LostSegmentShrinksResultsInsteadOfThrowing) {
  const auto batches = make_batches();
  const std::string dir = scratch_dir("faults_lost_segment");
  ASSERT_TRUE(feed(dir, batches));

  store::Store store = store::Store::open(dir, small_segments());
  ASSERT_GE(store.sealed_segments(), 2u);
  const auto ids = store.metrics();

  // Delete every sealed segment behind the live store's back.
  for (const std::string& name : util::Vfs::real().list(dir)) {
    if (name.ends_with(".seg")) util::Vfs::real().remove(dir + "/" + name);
  }

  store::QueryStats stats;
  const auto run = store.query(ids.front(), kWindow, &stats);
  EXPECT_TRUE(run.empty());
  EXPECT_TRUE(stats.degraded());
  EXPECT_GE(stats.lost_segments, 1u);

  store::QueryStats many_stats;
  const auto runs = store.query_many(ids, kWindow, nullptr, &many_stats);
  ASSERT_EQ(runs.size(), ids.size());
  for (const auto& r : runs) EXPECT_TRUE(r.samples.empty());
  EXPECT_TRUE(many_stats.degraded());

  store::QueryStats sum_stats;
  const auto sum = store::cluster_sum(store, kNodes, kChannel, kWindow, 10,
                                      nullptr, nullptr, &sum_stats);
  EXPECT_TRUE(sum_stats.degraded());
  for (std::size_t w = 0; w < sum.size(); ++w) EXPECT_EQ(sum[w], 0.0);
}

// ---------------------------------------------------------- property test

// Under ANY seeded read-side fault schedule, queries may return fewer
// samples (flagged degraded) but never a sample the feed did not produce.
// On failure the seed and the full schedule print for replay.
TEST(FaultProperty, RandomReadFaultsNeverCorruptQueries) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_property");
  ASSERT_TRUE(feed(dir, batches));

  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    util::ManualClock clock;  // delay faults must not really sleep
    faultfs::FaultVfs chaos(util::Vfs::real(), {}, &clock);
    store::StoreOptions options = small_segments();
    options.vfs = &chaos;
    options.clock = &clock;
    store::Store store = store::Store::open(dir, options);
    ASSERT_TRUE(store.recovery().clean()) << "seed " << seed;

    const auto plan = faultfs::FaultPlan::random_reads(
        seed, 8, chaos.stats().read_ops + 64);
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan:\n" +
                 plan.describe());
    chaos.set_plan(plan);

    for (const telemetry::MetricId id : store.metrics()) {
      store::QueryStats stats;
      std::vector<ts::Sample> disk;
      ASSERT_NO_THROW(disk = store.query(id, kWindow, &stats));
      const auto ref = reference.query(id, kWindow);
      ASSERT_TRUE(is_subset(disk, ref)) << "metric " << id;
      if (disk.size() != ref.size()) {
        EXPECT_TRUE(stats.degraded()) << "metric " << id;
      }
    }
  }
}

// --------------------------------------------------------- alert surface

TEST(IngestDropAlert, RaisesOnFirstSheddingAndClearsWhenStable) {
  stream::AlertEngine engine;
  engine.on_ingest_drops(10, 0);  // quiet baseline
  EXPECT_EQ(engine.raised(stream::AlertKind::kIngestDrops), 0u);

  engine.on_ingest_drops(11, 5);  // first shed: raise with the delta
  EXPECT_EQ(engine.raised(stream::AlertKind::kIngestDrops), 1u);
  EXPECT_EQ(engine.active(stream::AlertKind::kIngestDrops), 1u);
  ASSERT_FALSE(engine.log().empty());
  EXPECT_EQ(engine.log().back().kind, stream::AlertKind::kIngestDrops);
  EXPECT_TRUE(engine.log().back().raised);
  EXPECT_EQ(engine.log().back().value, 5.0);
  EXPECT_NE(engine.log().back().describe().find("ingest"),
            std::string::npos);

  engine.on_ingest_drops(12, 9);  // still shedding: latched, no re-raise
  EXPECT_EQ(engine.raised(stream::AlertKind::kIngestDrops), 1u);
  EXPECT_EQ(engine.active(stream::AlertKind::kIngestDrops), 1u);

  engine.on_ingest_drops(13, 9);  // stable counter: clear
  EXPECT_EQ(engine.raised(stream::AlertKind::kIngestDrops), 1u);
  EXPECT_EQ(engine.active(stream::AlertKind::kIngestDrops), 0u);
  EXPECT_FALSE(engine.log().back().raised);

  engine.on_ingest_drops(14, 12);  // shedding resumes: a second raise
  EXPECT_EQ(engine.raised(stream::AlertKind::kIngestDrops), 2u);
  EXPECT_EQ(engine.log().back().value, 3.0);
}

// ------------------------------------------------------- warm-tier faults

// SegmentReader ctor read-side op numbering: header (0), trailer (1),
// footer (2), then the map attempt (3) when map_file is set.
constexpr std::uint64_t kMapOp = 3;

TEST(WarmTierFaults, MapFailureFallsBackToBufferedReads) {
  const auto batches = make_batches();
  const std::string dir = scratch_dir("faults_map_fail");
  ASSERT_TRUE(feed(dir, batches));
  std::string seg;
  {
    store::Store st = store::Store::open(dir, small_segments());
    ASSERT_FALSE(st.directory().empty());
    seg = dir + "/" + st.directory().front().file;
  }
  store::SegmentReader clean(seg, nullptr, /*map_file=*/true);
  ASSERT_TRUE(clean.mapped());

  faultfs::FaultVfs vfs(util::Vfs::real(),
                        faultfs::FaultPlan().fail_read(kMapOp));
  store::SegmentReader reader(seg, &vfs, /*map_file=*/true);
  EXPECT_FALSE(reader.mapped());  // the tier refused, the open did not
  EXPECT_GE(vfs.stats().injected, 1u);
  for (const auto& b : reader.blocks()) {
    // Buffered fallback serves the identical events the mapping would.
    const auto got = reader.read_block(b);
    const auto want = clean.read_block(b);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].t, want[i].t);
      EXPECT_EQ(got[i].value, want[i].value);
    }
  }
}

TEST(WarmTierFaults, BitFlipOnMappedViewIsCaughtByBlockCrc) {
  const auto batches = make_batches();
  const std::string dir = scratch_dir("faults_map_flip");
  ASSERT_TRUE(feed(dir, batches));
  std::string seg;
  {
    store::Store st = store::Store::open(dir, small_segments());
    ASSERT_FALSE(st.directory().empty());
    seg = dir + "/" + st.directory().front().file;
  }
  store::SegmentReader probe(seg);  // clean, to aim the flip
  ASSERT_FALSE(probe.blocks().empty());
  const store::BlockMeta target = probe.blocks().front();

  // Flip the first bit of the first block inside the mapped copy: the
  // mapping succeeds, but every read of that block must fail its CRC.
  faultfs::FaultVfs vfs(
      util::Vfs::real(),
      faultfs::FaultPlan().flip_bit_on_read(kMapOp, target.offset * 8));
  store::SegmentReader reader(seg, &vfs, /*map_file=*/true);
  ASSERT_TRUE(reader.mapped());
  EXPECT_THROW((void)reader.read_block(target), store::StoreError);

  // The degraded path skips the damaged block, counts it, and still
  // attributes the read to the warm tier.
  store::QueryStats stats;
  std::vector<ts::Sample> out;
  reader.scan(target.id, reader.bounds(), out, &stats);
  EXPECT_GE(stats.lost_blocks, 1u);
  EXPECT_GE(stats.warm_blocks, 1u);
  EXPECT_EQ(stats.cold_blocks, 0u);
  std::vector<ts::Sample> full;
  probe.scan(target.id, probe.bounds(), full);
  EXPECT_TRUE(is_subset(out, full));
  EXPECT_LT(out.size(), full.size());  // the damaged block is missing

  // The flip lived only in the mapping's private copy — the base file is
  // intact and a fresh reader serves the block clean.
  store::SegmentReader fresh(seg);
  EXPECT_EQ(fresh.read_block(target).size(), target.events);
}

// ------------------------------------------------------ compaction faults

TEST(CompactionFaults, CrashEitherSideOfTheFlipLosesNoCommittedEvent) {
  const auto batches = make_batches();
  const auto reference = make_reference(batches);
  const std::string dir = scratch_dir("faults_compact_crash");

  auto compact_through = [&](util::Vfs* vfs) {
    store::StoreOptions options = small_segments();
    options.vfs = vfs;
    store::Store st = store::Store::open(dir, options);
    store::CompactionOptions copts;
    copts.small_segment_events = 1 << 20;  // merge everything
    return st.compact(copts);
  };

  // Rehearsal numbers the compaction's write points on a clean copy.
  ASSERT_TRUE(feed(dir, batches));
  faultfs::FaultVfs rehearsal(util::Vfs::real());
  const auto clean_report = compact_through(&rehearsal);
  ASSERT_GE(clean_report.rounds, 1u);
  const auto journal = rehearsal.write_journal();
  const auto incoming_write = find_op(journal, "write ", ".incoming");
  const auto flip_rename = find_op(journal, "rename ", ".incoming",
                                   /*last=*/true);

  // Crash mid-copy (before the flip): the journal is still `copying`,
  // recovery rolls back, and every event is where it was.
  ASSERT_TRUE(feed(dir, batches));
  faultfs::FaultVfs chaos_copy(
      util::Vfs::real(),
      faultfs::FaultPlan().crash_at_write(incoming_write));
  EXPECT_THROW((void)compact_through(&chaos_copy), store::StoreError);
  {
    store::Store st = store::Store::open(dir, small_segments());
    EXPECT_EQ(st.recovery().compactions_rolled_back, 1u);
    EXPECT_EQ(st.recovery().compactions_finished, 0u);
  }
  EXPECT_EQ(verify_recovery(dir, reference), 2400u);

  // Crash at the incoming→final rename (just past the flip): the journal
  // committed, recovery rolls forward to the merged output.
  ASSERT_TRUE(feed(dir, batches));
  faultfs::FaultVfs chaos_flip(
      util::Vfs::real(), faultfs::FaultPlan().crash_at_write(flip_rename));
  EXPECT_THROW((void)compact_through(&chaos_flip), store::StoreError);
  {
    store::Store st = store::Store::open(dir, small_segments());
    EXPECT_EQ(st.recovery().compactions_finished, 1u);
    EXPECT_EQ(st.recovery().compactions_rolled_back, 0u);
  }
  EXPECT_EQ(verify_recovery(dir, reference), 2400u);
}

}  // namespace
