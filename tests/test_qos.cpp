#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "qos/autoscale.hpp"
#include "qos/cost.hpp"
#include "qos/pool.hpp"
#include "qos/scheduler.hpp"
#include "store/store.hpp"
#include "telemetry/metric.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;

// Every test in this file is deterministic: time is a ManualClock (or a
// plain integer handed to pop/snapshot/decide), so nothing here sleeps —
// the fairness, starvation and hysteresis proofs replay identically on
// any machine. The threaded end-to-end half lives in `qoscheck`.

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("exawatt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

qos::Item make_item(qos::Class cls, std::uint64_t tenant, std::uint64_t cost,
                    std::vector<std::uint64_t>* ran = nullptr,
                    std::uint64_t tag = 0) {
  qos::Item item;
  item.cls = cls;
  item.tenant = tenant;
  item.cost_us = cost;
  if (ran != nullptr) item.run = [ran, tag] { ran->push_back(tag); };
  return item;
}

// ---------------------------------------------------------------- class

TEST(QosClass, WireMappingDemotesUnknownTiers) {
  EXPECT_EQ(qos::class_from_wire(0), qos::Class::kInteractive);
  EXPECT_EQ(qos::class_from_wire(1), qos::Class::kNormal);
  EXPECT_EQ(qos::class_from_wire(2), qos::Class::kBatch);
  // A newer peer's unrecognized tier must never jump the queue.
  EXPECT_EQ(qos::class_from_wire(3), qos::Class::kBatch);
  EXPECT_EQ(qos::class_from_wire(0xFFFF), qos::Class::kBatch);
  EXPECT_STREQ(qos::class_name(qos::Class::kInteractive), "interactive");
  EXPECT_STREQ(qos::class_name(qos::Class::kBatch), "batch");
}

// ------------------------------------------------------------ scheduler

TEST(Scheduler, FifoWithinOneTenant) {
  qos::Scheduler sched;
  std::vector<std::uint64_t> ran;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto r =
        sched.push(make_item(qos::Class::kNormal, 7, 100, &ran, i), 0);
    ASSERT_TRUE(r.admitted);
  }
  while (auto item = sched.pop(0)) item->run();
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, DeficitRoundRobinConvergesToFairShare) {
  // Tenant A: 50 items of 1,000 us. Tenant B: 10 items of 5,000 us.
  // Same total demand; DRR must keep their served-cost divergence under
  // quantum + the largest single item cost at every prefix while both
  // stay backlogged.
  qos::SchedulerOptions opts;
  opts.quantum_us = 2'000;
  qos::Scheduler sched(opts);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sched.push(make_item(qos::Class::kNormal, 1, 1'000), 0)
                    .admitted);
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sched.push(make_item(qos::Class::kNormal, 2, 5'000), 0)
                    .admitted);
  }
  const std::uint64_t bound = opts.quantum_us + 5'000;
  std::uint64_t served_a = 0;
  std::uint64_t served_b = 0;
  std::size_t left_a = 50;
  std::size_t left_b = 10;
  while (auto item = sched.pop(0)) {
    if (item->tenant == 1) {
      served_a += item->cost_us;
      --left_a;
    } else {
      served_b += item->cost_us;
      --left_b;
    }
    if (left_a > 0 && left_b > 0) {
      const std::uint64_t gap =
          served_a > served_b ? served_a - served_b : served_b - served_a;
      EXPECT_LE(gap, bound)
          << "after A=" << served_a << "us B=" << served_b << "us";
    }
  }
  EXPECT_EQ(left_a, 0u);
  EXPECT_EQ(left_b, 0u);
  EXPECT_EQ(served_a, 50'000u);
  EXPECT_EQ(served_b, 50'000u);
}

TEST(Scheduler, StridePromotionDrainsBatchUnderFrozenClock) {
  // The clock never advances, so aged promotion can't fire — only the
  // every-Nth-pop stride keeps batch alive under relentless interactive
  // pressure.
  qos::SchedulerOptions opts;
  opts.promote_stride = 8;
  opts.promote_after_us = 100'000;
  qos::Scheduler sched(opts);
  std::vector<std::uint64_t> ran;
  ASSERT_TRUE(
      sched.push(make_item(qos::Class::kBatch, 1, 50'000, &ran, 999), 0)
          .admitted);
  std::size_t pops_until_batch = 0;
  for (std::size_t i = 0; i < 4 * opts.promote_stride; ++i) {
    ASSERT_TRUE(
        sched.push(make_item(qos::Class::kInteractive, 2, 10, &ran, i), 0)
            .admitted);
    auto item = sched.pop(0);
    ASSERT_TRUE(item.has_value());
    ++pops_until_batch;
    if (item->cls == qos::Class::kBatch) break;
  }
  EXPECT_LE(pops_until_batch, opts.promote_stride)
      << "batch starved past the stride guarantee";
}

TEST(Scheduler, AgedPromotionBeatsPriority) {
  qos::SchedulerOptions opts;
  opts.promote_after_us = 100'000;
  opts.promote_stride = 1'000'000;  // stride effectively off
  qos::Scheduler sched(opts);
  ASSERT_TRUE(sched.push(make_item(qos::Class::kBatch, 1, 500), 0).admitted);
  ASSERT_TRUE(
      sched.push(make_item(qos::Class::kInteractive, 2, 10), 150'000)
          .admitted);
  // The batch head is 150 ms old — past promote_after_us — so it wins
  // this pop despite the waiting interactive item.
  auto first = sched.pop(150'000);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cls, qos::Class::kBatch);
  auto second = sched.pop(150'000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->cls, qos::Class::kInteractive);
}

TEST(Scheduler, ShedsWorstClassThenCostThenYoungest) {
  qos::SchedulerOptions opts;
  opts.max_queue = 2;
  qos::Scheduler sched(opts);
  ASSERT_TRUE(
      sched.push(make_item(qos::Class::kInteractive, 1, 10), 0).admitted);
  ASSERT_TRUE(sched.push(make_item(qos::Class::kBatch, 2, 100), 0).admitted);

  // Queue full; an incoming normal item evicts the queued batch one —
  // class outranks cost (the batch item is not even the priciest).
  auto r = sched.push(make_item(qos::Class::kNormal, 3, 5), 0);
  EXPECT_TRUE(r.admitted);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(r.evicted->cls, qos::Class::kBatch);

  // An incoming batch item is itself the worst on offer: refused, handed
  // back so the caller can shed it with its estimated cost attached.
  r = sched.push(make_item(qos::Class::kBatch, 4, 1'000'000), 0);
  EXPECT_FALSE(r.admitted);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(r.evicted->cost_us, 1'000'000u);

  // An incoming interactive item evicts the queued normal one even
  // though the incoming costs more — again class before cost.
  r = sched.push(make_item(qos::Class::kInteractive, 5, 50), 0);
  EXPECT_TRUE(r.admitted);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(r.evicted->cls, qos::Class::kNormal);

  // Tie on class and cost: the younger admission goes first.
  qos::Scheduler tie(opts);
  ASSERT_TRUE(tie.push(make_item(qos::Class::kNormal, 1, 10), 0).admitted);
  ASSERT_TRUE(tie.push(make_item(qos::Class::kNormal, 2, 10), 0).admitted);
  r = tie.push(make_item(qos::Class::kNormal, 3, 10), 0);
  EXPECT_FALSE(r.admitted);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(r.evicted->tenant, 3u);
}

TEST(Scheduler, CostBacklogBoundSheds) {
  qos::SchedulerOptions opts;
  opts.max_queue = 1'000;
  opts.max_backlog_cost_us = 10'000;
  qos::Scheduler sched(opts);
  ASSERT_TRUE(sched.push(make_item(qos::Class::kNormal, 1, 6'000), 0)
                  .admitted);
  // Count is nowhere near the cap, but 12,000 us of promised work is.
  auto r = sched.push(make_item(qos::Class::kNormal, 2, 6'000), 0);
  EXPECT_FALSE(r.admitted);
  // A cheap item still fits under the remaining cost budget.
  EXPECT_TRUE(
      sched.push(make_item(qos::Class::kNormal, 2, 3'000), 0).admitted);
  EXPECT_EQ(sched.snapshot(0).backlog_cost_us, 9'000u);
}

TEST(Scheduler, PopLimitsGateLowerClassesNeverInteractive) {
  qos::Scheduler sched;
  ASSERT_TRUE(sched.push(make_item(qos::Class::kNormal, 1, 10), 0).admitted);
  ASSERT_TRUE(sched.push(make_item(qos::Class::kBatch, 1, 10), 0).admitted);
  qos::PopLimits closed;
  closed.allow_normal = false;
  closed.allow_batch = false;
  EXPECT_FALSE(sched.pop(0, closed).has_value());
  // Interactive rides through a fully capped pool.
  ASSERT_TRUE(
      sched.push(make_item(qos::Class::kInteractive, 1, 10), 0).admitted);
  auto item = sched.pop(0, closed);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->cls, qos::Class::kInteractive);
  // allow_normal alone opens the middle tier but not batch.
  qos::PopLimits no_batch;
  no_batch.allow_batch = false;
  item = sched.pop(0, no_batch);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->cls, qos::Class::kNormal);
  EXPECT_FALSE(sched.pop(0, no_batch).has_value());
  EXPECT_EQ(sched.snapshot(0).queued_by_class[2], 1u);
}

TEST(Scheduler, DrainAllReturnsEverythingInAdmissionOrder) {
  qos::Scheduler sched;
  ASSERT_TRUE(sched.push(make_item(qos::Class::kBatch, 1, 10), 0).admitted);
  ASSERT_TRUE(sched.push(make_item(qos::Class::kInteractive, 2, 10), 0)
                  .admitted);
  ASSERT_TRUE(sched.push(make_item(qos::Class::kNormal, 3, 10), 0).admitted);
  const auto drained = sched.drain_all();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].tenant, 1u);
  EXPECT_EQ(drained[1].tenant, 2u);
  EXPECT_EQ(drained[2].tenant, 3u);
  EXPECT_EQ(sched.snapshot(0).queued, 0u);
  EXPECT_EQ(sched.snapshot(0).backlog_cost_us, 0u);
}

TEST(Scheduler, SnapshotTracksBacklogAndOldestWait) {
  qos::Scheduler sched;
  ASSERT_TRUE(
      sched.push(make_item(qos::Class::kNormal, 1, 400), 1'000).admitted);
  ASSERT_TRUE(
      sched.push(make_item(qos::Class::kBatch, 2, 600), 5'000).admitted);
  const auto s = sched.snapshot(9'000);
  EXPECT_EQ(s.queued, 2u);
  EXPECT_EQ(s.backlog_cost_us, 1'000u);
  EXPECT_EQ(s.oldest_wait_us, 8'000);
  EXPECT_EQ(s.queued_by_class[1], 1u);
  EXPECT_EQ(s.queued_by_class[2], 1u);
}

// ------------------------------------------------------------ autoscaler

TEST(AutoScaler, GrowsMultiplicativelyOnQueueDelay) {
  qos::AutoScalerOptions opts;
  opts.min_workers = 1;
  opts.max_workers = 16;
  qos::AutoScaler scaler(opts);
  qos::ScaleSignals s;
  s.now_us = 0;
  s.queued = 5;
  s.oldest_wait_us = opts.grow_wait_us;
  s.workers = 2;
  s.busy = 2;
  EXPECT_EQ(scaler.decide(s), 3u);  // 2 + max(1, 2/2)

  // Rate limit: a second trigger inside the eval interval holds steady.
  s.workers = 3;
  s.now_us = opts.eval_interval_us - 1;
  EXPECT_EQ(scaler.decide(s), 3u);

  // Past the interval it compounds: 3 + 3/2.
  s.now_us = opts.eval_interval_us;
  EXPECT_EQ(scaler.decide(s), 4u);
}

TEST(AutoScaler, GrowsOnCostBacklogAlone) {
  qos::AutoScalerOptions opts;
  opts.min_workers = 1;
  opts.max_workers = 8;
  qos::AutoScaler scaler(opts);
  qos::ScaleSignals s;
  s.now_us = 0;
  s.queued = 1;
  s.oldest_wait_us = 0;  // fresh arrivals — delay says nothing yet
  s.backlog_cost_us = opts.backlog_per_worker_us * 4;
  s.workers = 4;
  s.busy = 4;
  EXPECT_EQ(scaler.decide(s), 6u);  // 4 + 4/2
}

TEST(AutoScaler, ShrinkNeedsSustainedIdleAndStepsByOne) {
  qos::AutoScalerOptions opts;
  opts.min_workers = 1;
  opts.max_workers = 8;
  qos::AutoScaler scaler(opts);
  qos::ScaleSignals s;
  s.workers = 4;
  s.queued = 0;
  s.busy = 0;

  s.now_us = 0;  // idle window opens here
  EXPECT_EQ(scaler.decide(s), 4u);
  s.now_us = opts.shrink_after_idle_us - 1;
  EXPECT_EQ(scaler.decide(s), 4u);  // not sustained long enough yet
  s.now_us = opts.shrink_after_idle_us;
  EXPECT_EQ(scaler.decide(s), 3u);  // one worker, not half the pool

  // The window restarts after each shrink: another full idle stretch is
  // required before the next step.
  s.workers = 3;
  s.now_us += opts.eval_interval_us;
  EXPECT_EQ(scaler.decide(s), 3u);
  s.now_us = opts.shrink_after_idle_us + opts.shrink_after_idle_us;
  EXPECT_EQ(scaler.decide(s), 2u);

  // A single busy observation resets the idle timer entirely: the next
  // idle *observation* reopens the window, and a full stretch must pass
  // from there.
  s.workers = 2;
  s.busy = 2;
  s.now_us += opts.eval_interval_us;
  EXPECT_EQ(scaler.decide(s), 2u);
  s.busy = 0;
  s.now_us += opts.eval_interval_us;
  const std::int64_t idle_restart = s.now_us;
  EXPECT_EQ(scaler.decide(s), 2u);  // window reopens here
  s.now_us = idle_restart + opts.shrink_after_idle_us - 1;
  EXPECT_EQ(scaler.decide(s), 2u);
  s.now_us = idle_restart + opts.shrink_after_idle_us;
  EXPECT_EQ(scaler.decide(s), 1u);

  // And never below the floor.
  s.workers = 1;
  s.now_us += 10 * opts.shrink_after_idle_us;
  EXPECT_EQ(scaler.decide(s), 1u);
}

TEST(AutoScaler, ClampsGrowthAtMaxWorkers) {
  qos::AutoScalerOptions opts;
  opts.min_workers = 1;
  opts.max_workers = 4;
  qos::AutoScaler scaler(opts);
  qos::ScaleSignals s;
  s.now_us = 0;
  s.queued = 100;
  s.oldest_wait_us = 1'000'000;
  s.workers = 4;
  s.busy = 4;
  EXPECT_EQ(scaler.decide(s), 4u);
}

// ------------------------------------------------------------ cost model

TEST(CostModel, MethodShapesPriceFromBlocks) {
  qos::CostProfile profile;
  profile.floor_us = 25.0;
  profile.block_decode_us = 12.0;
  profile.replay_us_per_event = 0.15;
  profile.events_per_block = 4096;
  // Fixed-fan counter: every distinct id touches 7 blocks.
  const qos::CostModel model(
      profile, [](std::span<const telemetry::MetricId> ids, util::TimeRange) {
        return std::uint64_t{7} * ids.size();
      });

  server::wire::Request req;
  req.method = server::wire::Method::kPing;
  EXPECT_EQ(model.price(req), 25u);
  req.method = server::wire::Method::kServerStats;
  EXPECT_EQ(model.price(req), 25u);

  req.method = server::wire::Method::kWindowSum;
  req.metric = 3;
  req.range = {0, 3600};
  EXPECT_EQ(model.price(req), static_cast<std::uint64_t>(25.0 + 7 * 12.0));

  req.method = server::wire::Method::kScan;
  req.metrics = {1, 2, 3};
  EXPECT_EQ(model.price(req),
            static_cast<std::uint64_t>(25.0 + 3 * 7 * 12.0));

  // Replay-shaped methods price the streamed events, not just the
  // decode: pue_rollup over 2 nodes = floor + decode + replay.
  req.method = server::wire::Method::kPueRollup;
  req.nodes = {0, 1};
  const double blocks = 2 * 7;
  const auto rollup = static_cast<std::uint64_t>(
      25.0 + blocks * 12.0 + blocks * 4096 * 0.15);
  EXPECT_EQ(model.price(req), rollup);

  // A 3-variant sweep replays baseline + intervention per variant.
  req.method = server::wire::Method::kScenarioSweep;
  req.scenarios.resize(3);
  const auto sweep = static_cast<std::uint64_t>(
      25.0 + blocks * 12.0 + 6.0 * blocks * 4096 * 0.15);
  EXPECT_EQ(model.price(req), sweep);
  EXPECT_GT(sweep, rollup);
}

TEST(CostModel, NullCounterAndEmptyRangesFallToFloor) {
  qos::CostProfile profile;
  const qos::CostModel structural(profile, nullptr);
  server::wire::Request req;
  req.method = server::wire::Method::kScan;
  req.metrics = {1, 2, 3};
  req.range = {0, 1 << 20};
  EXPECT_EQ(structural.price(req),
            static_cast<std::uint64_t>(profile.floor_us));

  const qos::CostModel counted(
      profile,
      [](std::span<const telemetry::MetricId>, util::TimeRange) {
        ADD_FAILURE() << "counter must not run on an inverted range";
        return std::uint64_t{1'000'000};
      });
  req.range = {100, 0};  // inverted — priced structurally, never counted
  EXPECT_EQ(counted.price(req),
            static_cast<std::uint64_t>(profile.floor_us));
}

TEST(CostModel, CalibratesDecodeRateFromBenchJson) {
  const std::string dir = scratch_dir("qos_calib");
  const std::string path = dir + "/BENCH_codec.json";
  {
    std::ofstream out(path);
    out << "{\n  \"decode_into_eps\": 2.048e8,\n  \"other\": 1\n}\n";
  }
  const auto calibrated = qos::CostProfile::from_bench_json(path, 4096);
  // 4096 events / 204.8M events/s = 20 us per block.
  EXPECT_NEAR(calibrated.block_decode_us, 20.0, 1e-9);

  // Missing or malformed files keep the built-in defaults — pricing
  // degrades in accuracy, never in availability.
  const qos::CostProfile defaults;
  const auto missing = qos::CostProfile::from_bench_json(dir + "/nope.json");
  EXPECT_EQ(missing.block_decode_us, defaults.block_decode_us);
  {
    std::ofstream out(path);
    out << "{\n  \"decode_into_eps\": \"fast\"\n}\n";
  }
  const auto malformed = qos::CostProfile::from_bench_json(path);
  EXPECT_EQ(malformed.block_decode_us, defaults.block_decode_us);
}

TEST(CostModel, EstimateMatchesMeasuredBlocksExactly) {
  // The calibration contract behind admission pricing: for a sealed
  // store, estimate_blocks(ids, range) must equal the number of codec
  // blocks a query of exactly that shape actually touches — measured as
  // the block cache's hits+misses delta around the query.
  const std::string dir = scratch_dir("qos_blocks");
  store::StoreOptions opts;
  opts.segment_events = 1024;
  opts.block_events = 256;
  auto store = store::Store::open(dir, opts);

  // Appended in segment-sized slices so the feed seals into several
  // segments (one huge batch would seal as a single oversized one).
  std::vector<telemetry::MetricEvent> batch;
  for (std::uint64_t i = 0; i < 12'000; ++i) {
    telemetry::MetricEvent ev;
    ev.id = static_cast<telemetry::MetricId>(1 + i % 4);
    ev.t = static_cast<util::TimeSec>(i / 4);
    ev.value = static_cast<std::int32_t>(i % 97);
    batch.push_back(ev);
    if (batch.size() == opts.segment_events) {
      store.append(std::move(batch));
      batch.clear();
    }
  }
  store.append(std::move(batch));
  store.flush();
  ASSERT_GT(store.sealed_segments(), 1u);
  ASSERT_NE(store.block_cache(), nullptr);

  const auto measure = [&](std::vector<telemetry::MetricId> ids,
                           util::TimeRange range) {
    const auto before = store.block_cache()->counters();
    const auto runs = store.query_many(ids, range);
    EXPECT_EQ(runs.size(), ids.size());
    const auto after = store.block_cache()->counters();
    return (after.hits + after.misses) - (before.hits + before.misses);
  };

  const std::vector<std::pair<std::vector<telemetry::MetricId>,
                              util::TimeRange>>
      shapes = {
          {{1}, {0, 3'000}},          // full span, one metric
          {{1, 2, 3, 4}, {0, 3'000}}, // full span, all metrics
          {{2, 3}, {700, 1'400}},     // interior window
          {{4}, {2'900, 9'999}},      // tail past the data
      };
  for (const auto& [ids, range] : shapes) {
    const std::uint64_t estimated = store.estimate_blocks(ids, range);
    EXPECT_GT(estimated, 0u);
    // Cold and warm reads touch the same blocks; only the hit/miss split
    // moves between the two passes.
    EXPECT_EQ(measure(ids, range), estimated)
        << "cold read of " << ids.size() << " ids";
    EXPECT_EQ(measure(ids, range), estimated)
        << "warm read of " << ids.size() << " ids";
  }

  // Duplicate ids collapse on both sides of the equation.
  const std::vector<telemetry::MetricId> dup = {1, 1, 2};
  const std::vector<telemetry::MetricId> uniq = {1, 2};
  EXPECT_EQ(store.estimate_blocks(dup, {0, 3'000}),
            store.estimate_blocks(uniq, {0, 3'000}));
}

// ------------------------------------------------------------ worker pool

TEST(WorkerPool, RunsQueuedWorkAndLeavesRestToOwnerOnStop) {
  qos::Scheduler sched;
  qos::WorkerPoolOptions opts;
  opts.autoscaler.min_workers = 2;
  opts.autoscaler.max_workers = 2;
  qos::WorkerPool pool(&sched, opts, nullptr);
  EXPECT_EQ(pool.workers(), 2u);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  for (int i = 0; i < 8; ++i) {
    qos::Item item;
    item.cls = i % 2 == 0 ? qos::Class::kInteractive : qos::Class::kBatch;
    item.tenant = static_cast<std::uint64_t>(i % 3);
    item.cost_us = 50;
    item.run = [&] {
      std::lock_guard lk(mu);
      ++done;
      cv.notify_all();
    };
    ASSERT_TRUE(sched.push(std::move(item), 0).admitted);
    pool.notify();
  }
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return done == 8; });
  }
  pool.stop();
  EXPECT_EQ(pool.workers(), 0u);

  // Work queued after stop stays in the scheduler: the pool never owns
  // undone items — the service drains and sheds them at shutdown.
  ASSERT_TRUE(sched.push(make_item(qos::Class::kNormal, 0, 10), 0).admitted);
  pool.notify();
  EXPECT_EQ(sched.drain_all().size(), 1u);
}

}  // namespace
