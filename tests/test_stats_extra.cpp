// Final coverage pass: numeric edge cases and invariants in stats/ts
// that the figure-driven tests do not reach.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "stats/descriptive.hpp"
#include "stats/fft.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "stats/special.hpp"
#include "ts/series.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace exawatt;

// ------------------------------------------------------------- Histogram

class HistogramDensity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramDensity, IntegratesToOneForAnyBinning) {
  const std::size_t bins = GetParam();
  stats::Histogram h(0.0, 100.0, bins);
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform(0.0, 100.0));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Binnings, HistogramDensity,
                         ::testing::Values(1u, 2u, 7u, 16u, 100u));

TEST(Histogram, DensityExcludesOutOfRangeMass) {
  stats::Histogram h(0.0, 10.0, 2);
  h.add(5.0);
  h.add(-100.0);
  h.add(100.0);
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);  // normalized over in-range mass
}

// ------------------------------------------------------------------- KDE

TEST(Kde1, ExplicitBandwidthOverridesScott) {
  const std::vector<double> x = {0.0, 10.0};
  stats::Kde1 wide(x, 100.0);
  stats::Kde1 narrow(x, 0.1);
  EXPECT_DOUBLE_EQ(wide.bandwidth(), 100.0);
  // Narrow bandwidth: deep valley between the two points.
  EXPECT_LT(narrow(5.0), 0.01 * narrow(0.0));
  // Wide bandwidth: essentially flat between them.
  EXPECT_GT(wide(5.0), 0.9 * wide(0.0));
}

TEST(Kde1, ConstantSampleFallsBackToUnitBandwidth) {
  const std::vector<double> x(10, 3.0);
  stats::Kde1 kde(x);  // Scott's rule would give 0; falls back to 1
  EXPECT_DOUBLE_EQ(kde.bandwidth(), 1.0);
  EXPECT_GT(kde(3.0), kde(6.0));
}

TEST(Kde2, GridCoordinatesSpanRequestedRange) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};
  stats::Kde2 kde(xs, ys);
  const auto g = kde.grid(-1.0, 3.0, 5, -2.0, 4.0, 7);
  EXPECT_DOUBLE_EQ(g.x.front(), -1.0);
  EXPECT_DOUBLE_EQ(g.x.back(), 3.0);
  EXPECT_DOUBLE_EQ(g.y.front(), -2.0);
  EXPECT_DOUBLE_EQ(g.y.back(), 4.0);
  EXPECT_EQ(g.density.size(), 35u);
}

// --------------------------------------------------------------- Special

TEST(Special, IncompleteBetaMonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double v = stats::incomplete_beta(2.5, 4.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Special, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(stats::incomplete_beta(2.0, 7.0, x),
                1.0 - stats::incomplete_beta(7.0, 2.0, 1.0 - x), 1e-10);
  }
}

TEST(Special, TTestApproachesNormalForLargeDf) {
  // t-distribution -> normal: two-sided p at t=1.96, df=1e6 ~ 0.05.
  EXPECT_NEAR(stats::t_sf_two_sided(1.96, 1e6), 0.05, 1e-3);
}

// ------------------------------------------------------------------- FFT

TEST(Fft, ParsevalEnergyConservation) {
  util::Rng rng(5);
  std::vector<std::complex<double>> x(100);  // Bluestein path
  for (auto& c : x) c = {rng.normal(), rng.normal()};
  const auto X = stats::fft_any(x, false);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& c : x) time_energy += std::norm(c);
  for (const auto& c : X) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy,
              1e-6 * time_energy);
}

TEST(Fft, LinearityOfSpectrum) {
  std::vector<double> a(60);
  std::vector<double> b(60);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(0.3 * static_cast<double>(i));
    b[i] = std::cos(0.7 * static_cast<double>(i));
  }
  std::vector<double> sum(60);
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + 2.0 * b[i];
  const auto fa = stats::fft_real(a);
  const auto fb = stats::fft_real(b);
  const auto fs = stats::fft_real(sum);
  for (std::size_t k = 0; k < fs.size(); ++k) {
    EXPECT_NEAR(std::abs(fs[k] - (fa[k] + 2.0 * fb[k])), 0.0, 1e-8);
  }
}

// ------------------------------------------------------------ Descriptive

TEST(Descriptive, BoxplotWhiskersAreDataPoints) {
  // Whiskers must be actual observations, not fence values.
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  const auto b = stats::boxplot(x);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 7.0);
  EXPECT_EQ(b.outliers, 0u);
}

TEST(Descriptive, SkewnessScaleInvariant) {
  util::Rng rng(11);
  std::vector<double> x;
  for (int i = 0; i < 5000; ++i) x.push_back(rng.exponential(1.0));
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(1000.0 * v + 77.0);
  EXPECT_NEAR(stats::skewness(x), stats::skewness(scaled), 1e-9);
}

// ---------------------------------------------------------------- Series

TEST(Series, DiffThenCumulateRecovers) {
  util::Rng rng(13);
  std::vector<double> v(50);
  for (auto& x : v) x = rng.uniform(0.0, 100.0);
  const ts::Series s(0, 10, v);
  const ts::Series d = s.diff();
  double acc = v[0];
  for (std::size_t i = 0; i < d.size(); ++i) {
    acc += d[i];
    EXPECT_NEAR(acc, v[i + 1], 1e-9);
  }
}

TEST(Series, SliceOfSliceComposes) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const ts::Series s(0, 10, v);
  const ts::Series once = s.slice({200, 800});
  const ts::Series twice = once.slice({300, 500});
  const ts::Series direct = s.slice({300, 500});
  ASSERT_EQ(twice.size(), direct.size());
  EXPECT_EQ(twice.start(), direct.start());
  for (std::size_t i = 0; i < twice.size(); ++i) {
    EXPECT_DOUBLE_EQ(twice[i], direct[i]);
  }
}

TEST(StatSeries, CoarsenIdempotentAtSameWindow) {
  // Coarsening an already-10s series by 10 yields one sample per window.
  std::vector<double> v = {1.0, 2.0, 3.0};
  const auto st = ts::coarsen(ts::Series(0, 10, v), 10);
  ASSERT_EQ(st.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(st[i].count, 1u);
    EXPECT_DOUBLE_EQ(st[i].mean, v[i]);
    EXPECT_DOUBLE_EQ(st[i].std, 0.0);
  }
}

}  // namespace
