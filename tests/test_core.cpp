#include <gtest/gtest.h>

#include <cmath>

#include "core/edges.hpp"
#include "core/fingerprint.hpp"
#include "core/job_features.hpp"
#include "core/msb_validation.hpp"
#include "core/pue_analysis.hpp"
#include "core/simulation.hpp"
#include "core/snapshots.hpp"
#include "core/spectral.hpp"
#include "core/thermal_response.hpp"
#include "core/variability.hpp"
#include "util/check.hpp"

namespace {

using namespace exawatt;

// ------------------------------------------------------------------ Edges

ts::Series step_series(double lo, double hi, std::size_t rise_at,
                       std::size_t fall_at, std::size_t n) {
  std::vector<double> v(n, lo);
  for (std::size_t i = rise_at; i < fall_at && i < n; ++i) v[i] = hi;
  return ts::Series(0, 10, std::move(v));
}

TEST(Edges, DetectsSingleRisingAndFalling) {
  // 100 nodes, 1 kW/node swing: well above 868 W/node.
  const auto s = step_series(100e3, 200e3, 20, 60, 100);
  const auto edges = core::detect_edges(s, 100.0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].rising);
  EXPECT_FALSE(edges[1].rising);
  EXPECT_NEAR(edges[0].amplitude_w, 100e3, 1.0);
  EXPECT_EQ(edges[0].start, 190);  // step between windows 19 and 20
}

TEST(Edges, BelowThresholdIgnored) {
  // 500 W/node swing < 868 W/node.
  const auto s = step_series(100e3, 150e3, 20, 60, 100);
  EXPECT_TRUE(core::detect_edges(s, 100.0).empty());
}

TEST(Edges, ThresholdScalesWithNodes) {
  const auto s = step_series(100e3, 150e3, 20, 60, 100);  // 50 kW swing
  // For a 10-node job the same swing is 5 kW/node: an edge.
  EXPECT_FALSE(core::detect_edges(s, 10.0).empty());
}

TEST(Edges, DurationIsEightyPercentReturn) {
  // Rise at window 20, plateau, decay linearly from window 30 to 50.
  std::vector<double> v(80, 100e3);
  for (std::size_t i = 20; i < 30; ++i) v[i] = 200e3;
  for (std::size_t i = 30; i < 50; ++i) {
    v[i] = 200e3 - 5e3 * static_cast<double>(i - 29);
  }
  for (std::size_t i = 50; i < 80; ++i) v[i] = 100e3;
  const auto edges = core::detect_edges(ts::Series(0, 10, v), 100.0);
  ASSERT_GE(edges.size(), 1u);
  const auto& e = edges[0];
  EXPECT_TRUE(e.rising);
  EXPECT_TRUE(e.returned);
  // 80% return: power back to 100e3 + 0.2*100e3 = 120e3, reached at
  // window 45 (200 - 5*16 = 120). Duration = (45 - 19) * 10 s.
  EXPECT_NEAR(static_cast<double>(e.duration_s), 260.0, 20.0);
}

TEST(Edges, MergesMultiStepRamp) {
  // Two consecutive 1 kW/node steps: one edge of 2 kW/node amplitude.
  std::vector<double> v(50, 100e3);
  for (std::size_t i = 20; i < 50; ++i) v[i] = 200e3;
  v[20] = 150e3;  // intermediate step
  // Re-level everything after 21 to 200e3 (already done) -> steps of
  // 50 kW then 50 kW.
  const auto edges = core::detect_edges(ts::Series(0, 10, v), 50.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_NEAR(edges[0].amplitude_w, 100e3, 1.0);
}

TEST(Edges, UnreturnedEdgeExtendsToSeriesEnd) {
  const auto s = step_series(100e3, 200e3, 20, 100, 100);  // never falls
  const auto edges = core::detect_edges(s, 100.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_FALSE(edges[0].returned);
  EXPECT_EQ(edges[0].duration_s, s.time_at(s.size() - 1) - edges[0].start);
}

TEST(Edges, RejectsBadArguments) {
  const auto s = step_series(0, 1, 0, 1, 10);
  EXPECT_THROW(core::detect_edges(s, 0.0), util::CheckError);
  core::EdgeOptions bad;
  bad.return_fraction = 0.0;
  EXPECT_THROW(core::detect_edges(s, 10.0, bad), util::CheckError);
}

// --------------------------------------------------------------- Spectral

TEST(Spectral, RecoversOscillationPeriod) {
  // 200 s square-ish oscillation on a 10 s grid.
  std::vector<double> v(512);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1e6 + 2e5 * std::sin(2.0 * M_PI * static_cast<double>(i) / 20.0);
  }
  const auto spec = core::job_spectrum(ts::Series(0, 10, v));
  ASSERT_TRUE(spec.valid);
  EXPECT_NEAR(spec.frequency_hz, 0.005, 0.0006);
  EXPECT_GT(spec.amplitude_w, 1e4);
}

TEST(Spectral, TooShortIsInvalid) {
  const auto spec = core::job_spectrum(ts::Series(0, 10, {1, 2, 3}));
  EXPECT_FALSE(spec.valid);
}

// -------------------------------------------------------------- Snapshots

TEST(Snapshots, CollectsAmplitudeBins) {
  // Synthetic cluster series: one 2 MW and one 5 MW rising edge.
  std::vector<double> v(200, 5e6);
  for (std::size_t i = 40; i < 70; ++i) v[i] = 7e6;
  for (std::size_t i = 120; i < 160; ++i) v[i] = 10e6;
  ts::Series power(0, 10, std::move(v));
  core::SnapshotOptions opts;
  opts.edges.per_node_threshold_w = 100.0;
  const auto sets = core::collect_edge_sets(power, 4626.0, true, opts);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].amplitude_mw, 2);
  EXPECT_EQ(sets[1].amplitude_mw, 5);
  EXPECT_EQ(sets[0].at.size(), 1u);
}

TEST(Snapshots, SuperimposedWindowAlignsAtEdge) {
  std::vector<double> v(200, 5e6);
  for (std::size_t i = 40; i < 70; ++i) v[i] = 7e6;
  ts::Series power(0, 10, std::move(v));
  core::SnapshotOptions opts;
  opts.edges.per_node_threshold_w = 100.0;
  const auto sets = core::collect_edge_sets(power, 4626.0, true, opts);
  ASSERT_EQ(sets.size(), 1u);
  const auto band = core::superimpose_column(power, sets[0], opts);
  // Window: 6 samples before, edge at index 6, 24 after.
  ASSERT_EQ(band.mean.size(), 31u);
  EXPECT_NEAR(band.mean[0], 5e6, 1.0);   // -60 s
  EXPECT_NEAR(band.mean[6], 5e6, 1.0);   // the pre-edge sample
  EXPECT_NEAR(band.mean[7], 7e6, 1.0);   // first post-edge sample
}

TEST(Snapshots, EdgeNearSeriesBoundaryPadsWithNan) {
  std::vector<double> v(30, 1e6);
  for (std::size_t i = 2; i < 30; ++i) v[i] = 7e6;
  ts::Series power(0, 10, std::move(v));
  core::SnapshotOptions opts;
  opts.edges.per_node_threshold_w = 100.0;
  const auto sets = core::collect_edge_sets(power, 4626.0, true, opts);
  ASSERT_EQ(sets.size(), 1u);
  const auto band = core::superimpose_column(power, sets[0], opts);
  // Band exists; the first offsets had no data but must not be NaN in
  // the mean (they are simply computed from zero snapshots -> 0).
  EXPECT_EQ(band.snapshots, 1u);
}

// ----------------------------------------------------- Simulation plumbing

core::SimulationConfig tiny_config() {
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(128);
  config.seed = 31;
  config.range = {0, 2 * util::kDay};
  return config;
}

TEST(Simulation, JobsCachedAndDeterministic) {
  core::Simulation a(tiny_config());
  core::Simulation b(tiny_config());
  EXPECT_EQ(a.jobs().size(), b.jobs().size());
  EXPECT_EQ(&a.jobs(), &a.jobs());  // cached
  EXPECT_GT(a.scheduler_stats().scheduled, 0u);
}

TEST(Simulation, ClusterAndCepFramesShareGrid) {
  core::Simulation sim(tiny_config());
  const auto cluster = sim.cluster_frame({0, util::kDay}, {.dt = 300});
  const auto cep = sim.cep_frame(cluster);
  EXPECT_EQ(cluster.rows(), cep.rows());
  EXPECT_EQ(cluster.dt(), cep.dt());
  EXPECT_GT(cep.at("pue")[10], 1.0);
}

TEST(Simulation, FailureLogCached) {
  core::Simulation sim(tiny_config());
  const auto& a = sim.failure_log();
  const auto& b = sim.failure_log();
  EXPECT_EQ(&a, &b);
}

// ------------------------------------------------------------ JobFeatures

TEST(JobFeatures, SummariesOnlyForScheduledJobs) {
  core::Simulation sim(tiny_config());
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::size_t scheduled = 0;
  for (const auto& j : sim.jobs()) {
    if (j.start >= 0 && j.end > j.start) ++scheduled;
  }
  EXPECT_EQ(summaries.size(), scheduled);
}

TEST(JobFeatures, FeatureExtractionAndCdf) {
  core::Simulation sim(tiny_config());
  const auto summaries = core::summarize_jobs(sim.jobs());
  const auto cdf = core::feature_cdf(summaries, core::JobFeature::kMaxPowerW);
  EXPECT_GT(cdf.p80, 0.0);
  EXPECT_GE(cdf.max, cdf.p80);
  const auto nodes = core::feature(summaries, core::JobFeature::kNodeCount);
  for (double n : nodes) EXPECT_GE(n, 1.0);
  const auto diff =
      core::feature(summaries, core::JobFeature::kMaxMinusMeanW);
  for (double d : diff) EXPECT_GE(d, -1e-9);
}

TEST(JobFeatures, ByClassPartition) {
  core::Simulation sim(tiny_config());
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::size_t total = 0;
  for (int cls = 1; cls <= 5; ++cls) {
    total += core::by_class(summaries, cls).size();
  }
  EXPECT_EQ(total, summaries.size());
}

// ---------------------------------------------------------- MSB validation

TEST(MsbValidation, ReproducesFigure4Shape) {
  core::Simulation sim(tiny_config());
  const machine::Topology topo(sim.scale());
  const facility::MsbModel msb(topo, 4);
  const auto result = core::validate_msbs(sim.jobs(), topo, msb,
                                          {util::kDay / 2, util::kDay}, 10);
  ASSERT_EQ(result.per_msb.size(), 5u);
  for (const auto& cmp : result.per_msb) {
    EXPECT_LT(cmp.mean_diff_w, 0.0);          // summation over-reads
    EXPECT_GT(cmp.phase_correlation, 0.99);   // in-phase
    EXPECT_GT(cmp.relative_diff, 0.05);
    EXPECT_LT(cmp.relative_diff, 0.18);       // ~11% in the paper
    EXPECT_LT(cmp.std_diff_w, std::fabs(cmp.mean_diff_w));
  }
  EXPECT_LT(result.overall_mean_diff_w, 0.0);
}

// ------------------------------------------------------------ PUE analysis

TEST(PueAnalysis, WeeklyRollupsCoverRange) {
  core::SimulationConfig config = tiny_config();
  config.range = {0, 3 * util::kWeek};
  core::Simulation sim(config);
  const auto cluster = sim.cluster_frame(config.range, {.dt = 1800});
  const auto cep = sim.cep_frame(cluster);
  const auto trend = core::year_trend(cluster, cep);
  EXPECT_EQ(trend.weeks.size(), 3u);
  EXPECT_GT(trend.mean_power_mw, 0.0);
  EXPECT_GT(trend.mean_pue, 1.0);
  EXPECT_LT(trend.mean_pue, 1.5);
  for (const auto& w : trend.weeks) {
    EXPECT_GT(w.power_mw.median, 0.0);
    EXPECT_GE(w.max_power_mw, w.power_mw.median);
    EXPECT_GE(w.energy_gwh, 0.0);
  }
}

// --------------------------------------------------------- Thermal frames

TEST(ThermalResponse, GpuTracksAndCpuFlat) {
  core::SimulationConfig config = tiny_config();
  core::Simulation sim(config);
  const auto cluster = sim.cluster_frame({0, util::kDay / 2}, {.dt = 10});
  const auto cep = sim.cep_frame(cluster);
  const auto temps =
      core::cluster_thermal_frame(cluster, cep, config.scale.nodes);
  ASSERT_EQ(temps.rows(), cluster.rows());
  const auto& gpu_mean = temps.at("gpu_mean_c");
  const auto& gpu_max = temps.at("gpu_max_c");
  const auto& cpu_mean = temps.at("cpu_mean_c");
  double gpu_lo = 1e9;
  double gpu_hi = -1e9;
  double cpu_lo = 1e9;
  double cpu_hi = -1e9;
  for (std::size_t i = 10; i < temps.rows(); ++i) {
    EXPECT_GT(gpu_max[i], gpu_mean[i]);
    gpu_lo = std::min(gpu_lo, gpu_mean[i]);
    gpu_hi = std::max(gpu_hi, gpu_mean[i]);
    cpu_lo = std::min(cpu_lo, cpu_mean[i]);
    cpu_hi = std::max(cpu_hi, cpu_mean[i]);
  }
  EXPECT_GT(gpu_hi - gpu_lo, 1.5 * (cpu_hi - cpu_lo));  // CPU flatter
  EXPECT_LT(gpu_hi, 60.0);
}

TEST(ThermalResponse, RejectsMismatchedFrames) {
  ts::Frame cluster(0, 10, 5);
  cluster.set("gpu_power_w", std::vector<double>(5, 1e5));
  cluster.set("cpu_power_w", std::vector<double>(5, 1e5));
  ts::Frame cep(0, 20, 5);
  cep.set("mtw_supply_c", std::vector<double>(5, 20.0));
  EXPECT_THROW(core::cluster_thermal_frame(cluster, cep, 100),
               util::CheckError);
}

// ------------------------------------------------------------- Variability

TEST(Variability, StudyOfLargestJob) {
  core::SimulationConfig config = tiny_config();
  core::Simulation sim(config);
  const workload::Job* exemplar =
      core::select_exemplar(sim.jobs(), config.scale.nodes / 3, 5.0, 600.0);
  ASSERT_NE(exemplar, nullptr);
  const power::FleetVariability fleet(config.scale, 11);
  const thermal::FleetThermal thermals(config.scale, 12);
  const auto study = core::variability_study(*exemplar, fleet, thermals);
  EXPECT_EQ(study.snapshots.size(), 6u);
  for (const auto& s : study.snapshots) {
    EXPECT_GT(s.gpu_power_w.median, 0.0);
    EXPECT_GT(s.gpu_temp_c.median, 20.0);
    EXPECT_GT(s.power_temp_corr, 0.0);  // monotone power-temp relation
    EXPECT_GT(s.temp_spread_c, 1.0);
  }
  EXPECT_GT(study.share_below_60c, 0.95);
  EXPECT_EQ(study.snapshots[0].cabinet_mean_c.size(),
            static_cast<std::size_t>(thermals.topology().cabinets()));
}

TEST(Variability, SelectExemplarFiltersByRuntime) {
  core::SimulationConfig config = tiny_config();
  core::Simulation sim(config);
  EXPECT_EQ(core::select_exemplar(sim.jobs(), 1, 0.0, 0.001), nullptr);
  const auto* any = core::select_exemplar(sim.jobs(), 1, 1.0, 10000.0);
  ASSERT_NE(any, nullptr);
}

// ------------------------------------------------------------- Fingerprint

TEST(Fingerprint, FeaturesFiniteAndClassSensitive) {
  core::Simulation sim(tiny_config());
  const auto summaries = core::summarize_jobs(sim.jobs());
  ASSERT_GT(summaries.size(), 50u);
  for (const auto& s : summaries) {
    const auto f = core::fingerprint_of(s);
    for (double v : f.v) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Fingerprint, KmeansPartitionsAllPoints) {
  core::Simulation sim(tiny_config());
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::vector<core::Fingerprint> prints;
  for (const auto& s : summaries) prints.push_back(core::fingerprint_of(s));
  const auto c = core::cluster_fingerprints(prints, 6);
  EXPECT_EQ(c.assignment.size(), prints.size());
  EXPECT_EQ(c.centroids.size(), 6u);
  for (int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 6);
  }
  EXPECT_GT(c.inertia, 0.0);
  EXPECT_GT(c.app_purity, 1.0 / 14.0);  // better than random guessing
}

TEST(Fingerprint, MoreClustersLowerInertia) {
  core::Simulation sim(tiny_config());
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::vector<core::Fingerprint> prints;
  for (const auto& s : summaries) prints.push_back(core::fingerprint_of(s));
  const auto c2 = core::cluster_fingerprints(prints, 2);
  const auto c10 = core::cluster_fingerprints(prints, 10);
  EXPECT_LT(c10.inertia, c2.inertia);
}

TEST(Fingerprint, RejectsBadK) {
  std::vector<core::Fingerprint> two(2);
  EXPECT_THROW(core::cluster_fingerprints(two, 3), util::CheckError);
  EXPECT_THROW(core::cluster_fingerprints(two, 0), util::CheckError);
}

}  // namespace
