// Property-based suites: invariants that must hold across seeds, scales
// and randomized inputs (TEST_P sweeps), plus tests for the dashboard and
// the telemetry job join.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/dashboard.hpp"
#include "core/edges.hpp"
#include "core/simulation.hpp"
#include "facility/cooling.hpp"
#include "power/cluster.hpp"
#include "power/job_power.hpp"
#include "telemetry/codec.hpp"
#include "telemetry/job_join.hpp"
#include "telemetry/pipeline.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;

// ------------------------------------------------- Scheduler invariants

class SchedulerInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SchedulerInvariants, HoldAcrossSeedsAndScales) {
  const auto [seed, nodes] = GetParam();
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(nodes);
  cfg.seed = seed;
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 2});
  workload::Scheduler sched(cfg.scale);
  const auto stats = sched.run(jobs, util::kDay / 2);

  // I1: every scheduled job's allocation exactly covers node_count nodes
  //     inside the machine, with no overlap at any instant.
  // I2: start >= submit, end <= horizon, runtime <= requested walltime.
  // I3: scheduled + unscheduled == submissions.
  std::size_t scheduled = 0;
  for (const auto& j : jobs) {
    if (j.start < 0) continue;
    ++scheduled;
    int total = 0;
    for (const auto& r : j.nodes) {
      EXPECT_GE(r.first, 0);
      EXPECT_LE(r.first + r.count, nodes);
      total += r.count;
    }
    EXPECT_EQ(total, j.node_count);
    EXPECT_GE(j.start, j.submit);
    EXPECT_LE(j.end, util::kDay / 2);
    EXPECT_LE(j.runtime(), j.requested_walltime);
  }
  EXPECT_EQ(scheduled + stats.unscheduled, jobs.size());
  EXPECT_EQ(scheduled, stats.scheduled);

  // I4: disjointness spot-check at three instants.
  for (util::TimeSec t :
       {util::kHour, 5 * util::kHour, 11 * util::kHour}) {
    std::set<machine::NodeId> busy;
    for (const auto& j : jobs) {
      if (j.start < 0 || !j.interval().contains(t)) continue;
      for (const auto& r : j.nodes) {
        for (int i = 0; i < r.count; ++i) {
          EXPECT_TRUE(busy.insert(r.first + i).second);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerInvariants,
    ::testing::Combine(::testing::Values(1u, 17u, 99u, 12345u),
                       ::testing::Values(64, 256, 1024)));

// ------------------------------------------- Cluster power mass balance

class ClusterMassBalance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterMassBalance, EnergyIndependentOfWindowing) {
  // Total energy over a range must agree between dt=60 and dt=300 grids
  // (windowing must neither create nor destroy energy), within the
  // subsampling tolerance.
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(256);
  cfg.seed = GetParam();
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 2});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay / 2);

  auto energy = [&](util::TimeSec dt, int subsamples) {
    const auto frame = power::cluster_power_frame(
        jobs, cfg.scale, {0, util::kDay / 2},
        {.dt = dt, .subsamples = subsamples});
    double acc = 0.0;
    const auto& p = frame.at("input_power_w");
    for (std::size_t i = 0; i < p.size(); ++i) {
      acc += p[i] * static_cast<double>(dt);
    }
    return acc;
  };
  const double fine = energy(60, 1);
  const double coarse = energy(300, 5);
  EXPECT_NEAR(coarse / fine, 1.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterMassBalance,
                         ::testing::Values(2u, 3u, 5u, 8u));

// -------------------------------------------------- Codec fuzz round-trip

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomStreamsRoundTripExactly) {
  util::Rng rng(GetParam());
  std::vector<telemetry::MetricEvent> events;
  const std::size_t n = 1000 + rng.uniform_index(5000);
  for (std::size_t i = 0; i < n; ++i) {
    telemetry::MetricEvent ev;
    // Adversarial: huge node ids, negative values, out-of-order times,
    // duplicated (id, t) pairs.
    ev.id = telemetry::metric_id(
        static_cast<machine::NodeId>(rng.uniform_index(4626)),
        static_cast<int>(rng.uniform_index(100)));
    ev.t = static_cast<std::int64_t>(rng.uniform_index(366 * 86400ULL));
    ev.value = static_cast<std::int32_t>(rng.uniform_index(1u << 20)) -
               (1 << 19);
    events.push_back(ev);
  }
  auto block = telemetry::encode_events(events);
  auto decoded = telemetry::decode_events(block);
  ASSERT_EQ(decoded.size(), events.size());
  std::sort(events.begin(), events.end(),
            [](const telemetry::MetricEvent& a,
               const telemetry::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  // Ties on (id, t) may reorder values; compare multisets per (id, t).
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t j = i;
    std::multiset<std::int32_t> want;
    std::multiset<std::int32_t> got;
    while (j < events.size() && events[j].id == events[i].id &&
           events[j].t == events[i].t) {
      want.insert(events[j].value);
      got.insert(decoded[j].value);
      EXPECT_EQ(decoded[j].id, events[j].id);
      EXPECT_EQ(decoded[j].t, events[j].t);
      ++j;
    }
    EXPECT_EQ(want, got);
    i = j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --------------------------------------------- Edge detection properties

class EdgeProperties : public ::testing::TestWithParam<double> {};

TEST_P(EdgeProperties, AmplitudeInvariantToBaseline) {
  // Shifting a series by a constant must not change its edges.
  const double baseline = GetParam();
  util::Rng rng(42);
  std::vector<double> v(200, 1e5);
  for (std::size_t i = 50; i < 120; ++i) v[i] = 3e5;
  for (auto& x : v) x += 20.0 * rng.normal();
  std::vector<double> shifted = v;
  for (auto& x : shifted) x += baseline;
  const auto a = core::detect_edges(ts::Series(0, 10, v), 100.0);
  const auto b = core::detect_edges(ts::Series(0, 10, shifted), 100.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_NEAR(a[i].amplitude_w, b[i].amplitude_w, 1e-6);
    EXPECT_EQ(a[i].duration_s, b[i].duration_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Baselines, EdgeProperties,
                         ::testing::Values(0.0, 1e5, 5e6, -1e5));

// ----------------------------------------- Cooling plant step properties

class CoolingProperties : public ::testing::TestWithParam<double> {};

TEST_P(CoolingProperties, SteadyStateIndependentOfPath) {
  // Approaching a load from above or below must converge to one state.
  const double load = GetParam();
  facility::CoolingPlant up;
  facility::CoolingPlant down;
  up.reset(load * 0.5, 12.0);
  down.reset(load * 1.5, 12.0);
  for (int i = 0; i < 2000; ++i) {
    up.step(10, load, 12.0);
    down.step(10, load, 12.0);
  }
  EXPECT_NEAR(up.state().pue, down.state().pue, 1e-6);
  EXPECT_NEAR(up.state().mtw_return_c, down.state().mtw_return_c, 1e-6);
  EXPECT_NEAR(up.state().tower_tons + up.state().chiller_tons,
              down.state().tower_tons + down.state().chiller_tons, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Loads, CoolingProperties,
                         ::testing::Values(3e6, 5.5e6, 8e6, 12e6));

// ------------------------------------------------------------- Dashboard

struct DashboardFixture {
  machine::MachineScale scale = machine::MachineScale::small(64);
  std::vector<workload::Job> jobs;
  std::unique_ptr<workload::AllocationIndex> alloc;
  power::FleetVariability fleet{scale, 1};
  thermal::FleetThermal thermals{scale, 2};

  DashboardFixture() {
    workload::WorkloadConfig cfg;
    cfg.scale = scale;
    cfg.seed = 5;
    workload::JobGenerator gen(cfg);
    jobs = gen.generate({0, util::kDay / 4});
    workload::Scheduler sched(scale);
    sched.run(jobs, util::kDay / 4);
    alloc = std::make_unique<workload::AllocationIndex>(
        jobs, util::TimeRange{0, util::kDay / 4}, scale.nodes);
  }
};

TEST(Dashboard, SnapshotCountsComponents) {
  DashboardFixture fx;
  core::FacilityDashboard dash(*fx.alloc, fx.fleet, fx.thermals,
                               fx.scale.nodes);
  facility::CoolingState cooling;
  cooling.mtw_supply_c = 20.0;
  const auto snap = dash.snapshot(3 * util::kHour, cooling);
  EXPECT_EQ(snap.sampled_nodes, 64);
  EXPECT_EQ(snap.gpu_core_c.total(), 64u * 6u);
  EXPECT_EQ(snap.cpu_core_c.total(), 64u * 2u);
  EXPECT_GT(snap.cluster_power_w, 64 * 500.0);
  EXPECT_EQ(snap.thermal_warnings, 0);  // normal cooling: no warnings
  const std::string panel = snap.render();
  EXPECT_NE(panel.find("GPU core temperature"), std::string::npos);
  EXPECT_NE(panel.find("MTW supply"), std::string::npos);
}

TEST(Dashboard, StrideSamplingScalesPower) {
  DashboardFixture fx;
  core::FacilityDashboard full(*fx.alloc, fx.fleet, fx.thermals,
                               fx.scale.nodes, 1);
  core::FacilityDashboard sampled(*fx.alloc, fx.fleet, fx.thermals,
                                  fx.scale.nodes, 4);
  facility::CoolingState cooling;
  const auto a = full.snapshot(3 * util::kHour, cooling);
  const auto b = sampled.snapshot(3 * util::kHour, cooling);
  EXPECT_EQ(b.sampled_nodes, 16);
  EXPECT_NEAR(b.cluster_power_w / a.cluster_power_w, 1.0, 0.35);
}

TEST(Dashboard, WarmSupplyRaisesWarnings) {
  DashboardFixture fx;
  core::FacilityDashboard dash(*fx.alloc, fx.fleet, fx.thermals,
                               fx.scale.nodes);
  facility::CoolingState hot;
  hot.mtw_supply_c = 55.0;  // failed plant scenario
  const auto snap = dash.snapshot(3 * util::kHour, hot);
  EXPECT_GT(snap.thermal_warnings, 0);
}

// ------------------------------------------------------ Telemetry join

TEST(JobJoin, MatchesAnalyticSeriesUpToSensorBias) {
  DashboardFixture fx;
  // Find a job fully inside a short window.
  const workload::Job* target = nullptr;
  const util::TimeRange window = {util::kHour, 3 * util::kHour};
  for (const auto& j : fx.jobs) {
    if (j.start >= window.begin + 600 && j.end <= window.end - 600 &&
        j.end - j.start >= 900 && j.node_count >= 2) {
      target = &j;
      break;
    }
  }
  ASSERT_NE(target, nullptr);

  machine::Topology topo(fx.scale);
  facility::MsbModel msb(topo, 3);
  telemetry::Pipeline pipeline(target->node_list(), *fx.alloc, fx.fleet,
                               fx.thermals, msb);
  (void)pipeline.run({target->start - 30, target->end + 30});

  const auto join =
      telemetry::join_job_power(pipeline.archive(), *target, window);
  const ts::Series analytic = power::job_power_series(*target, 10);

  // Compare overlapping windows: measured = analytic * (1 + bias).
  double ratio_acc = 0.0;
  std::size_t count = 0;
  for (std::size_t w = 2; w + 2 < join.power_w.size(); ++w) {
    const auto t = join.power_w.time_at(w);
    const auto idx = analytic.index_of(t);
    if (idx < 0 || static_cast<std::size_t>(idx) >= analytic.size()) continue;
    EXPECT_EQ(join.coverage[w], static_cast<double>(target->node_count));
    ratio_acc += join.power_w[w] / analytic[static_cast<std::size_t>(idx)];
    ++count;
  }
  ASSERT_GT(count, 10u);
  const double mean_ratio = ratio_acc / static_cast<double>(count);
  EXPECT_GT(mean_ratio, 1.04);  // sensors over-read (Figure 4)
  EXPECT_LT(mean_ratio, 1.20);
}

}  // namespace
