#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "store/manifest.hpp"
#include "store/segment.hpp"
#include "store/store.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/codec.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;

// ------------------------------------------------------------- fixtures

/// Fresh scratch directory per test, removed up-front so reruns are clean.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("exawatt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

/// Seeded synthetic batch: out-of-order times, a handful of metrics, value
/// collisions on purpose (equal t across metrics is the normal case).
std::vector<telemetry::MetricEvent> random_batch(util::Rng& rng,
                                                 util::TimeRange range,
                                                 std::size_t events,
                                                 std::uint32_t metrics) {
  std::vector<telemetry::MetricEvent> batch(events);
  for (auto& ev : batch) {
    ev.id = static_cast<telemetry::MetricId>(rng.uniform_index(metrics));
    ev.t = range.begin + static_cast<util::TimeSec>(rng.uniform_index(
                             static_cast<std::uint64_t>(range.duration())));
    ev.value = static_cast<std::int32_t>(rng.uniform_index(1000)) - 500;
  }
  return batch;
}

bool sample_less(const ts::Sample& a, const ts::Sample& b) {
  return a.t < b.t || (a.t == b.t && a.value < b.value);
}

bool sample_eq(const ts::Sample& a, const ts::Sample& b) {
  return a.t == b.t && a.value == b.value;
}

/// Equality up to same-timestamp ordering: the archive and the store both
/// return time-sorted samples but make no promise about tie order.
void expect_same_samples(std::vector<ts::Sample> a, std::vector<ts::Sample> b,
                         const std::string& what) {
  std::sort(a.begin(), a.end(), sample_less);
  std::sort(b.begin(), b.end(), sample_less);
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(sample_eq(a[i], b[i]))
        << what << " diverges at sample " << i << ": (" << a[i].t << ", "
        << a[i].value << ") vs (" << b[i].t << ", " << b[i].value << ")";
  }
}

// ----------------------------------------------------------------- crc32

TEST(Crc32, KnownAnswer) {
  // The CRC-32/IEEE check value for "123456789".
  EXPECT_EQ(util::crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(util::crc32(std::string_view("")), 0u);
}

TEST(Crc32, Incremental) {
  const std::string s = "exawatt telemetry store";
  const auto whole = util::crc32(std::string_view(s));
  const auto head = util::crc32(std::string_view(s).substr(0, 7));
  EXPECT_EQ(util::crc32(std::string_view(s).substr(7), head), whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(128, 0x5A);
  const auto before = util::crc32(data);
  data[64] ^= 0x01;
  EXPECT_NE(util::crc32(data), before);
}

// ---------------------------------------------------------------- footer

TEST(Format, FooterRoundTrip) {
  std::vector<store::BlockMeta> blocks;
  for (std::uint32_t i = 0; i < 17; ++i) {
    store::BlockMeta b;
    b.id = 100 * i + 3;
    b.offset = 16 + 1000 * i;
    b.size = 900 + i;
    b.events = 4096;
    b.t_min = -5 + static_cast<util::TimeSec>(i) * util::kHour;
    b.t_max = b.t_min + util::kHour - 1;
    b.crc = 0xDEAD0000u + i;
    blocks.push_back(b);
  }
  const auto payload = store::encode_footer(blocks);
  const auto parsed = store::parse_footer(payload);
  ASSERT_EQ(parsed.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(parsed[i].id, blocks[i].id);
    EXPECT_EQ(parsed[i].offset, blocks[i].offset);
    EXPECT_EQ(parsed[i].size, blocks[i].size);
    EXPECT_EQ(parsed[i].events, blocks[i].events);
    EXPECT_EQ(parsed[i].t_min, blocks[i].t_min);
    EXPECT_EQ(parsed[i].t_max, blocks[i].t_max);
    EXPECT_EQ(parsed[i].crc, blocks[i].crc);
  }
}

TEST(Format, FooterRejectsTruncationAtEveryLength) {
  std::vector<store::BlockMeta> blocks(3);
  blocks[0] = {7, 16, 100, 50, 0, 99, 0x1111};
  blocks[1] = {7, 116, 100, 50, 100, 199, 0x2222};
  blocks[2] = {9, 216, 100, 50, 0, 199, 0x3333};
  const auto payload = store::encode_footer(blocks);
  for (std::size_t len = 1; len < payload.size(); ++len) {
    EXPECT_THROW(
        (void)store::parse_footer(
            std::span<const std::uint8_t>(payload.data(), len)),
        store::StoreError)
        << "truncated to " << len << " of " << payload.size();
  }
  EXPECT_THROW((void)store::parse_footer(std::span<const std::uint8_t>()),
               store::StoreError);
}

// --------------------------------------------------------------- segment

TEST(Segment, RoundTripOutOfOrderEvents) {
  const auto dir = scratch_dir("seg_roundtrip");
  const std::string path = dir + "/seg.seg";
  util::Rng rng(1);
  const auto batch = random_batch(rng, {0, util::kHour}, 5000, 8);

  store::SegmentWriter writer(path, 0, /*block_events=*/256);
  writer.add(batch);
  const auto meta = writer.seal();
  EXPECT_EQ(meta.events, batch.size());
  EXPECT_GT(meta.bytes, 0u);

  store::SegmentReader reader(path);
  EXPECT_EQ(reader.events(), batch.size());
  // With 5000 events over 8 metrics at block_events=256, every metric
  // spans multiple blocks — the multi-block path is exercised.
  EXPECT_GT(reader.blocks().size(), 8u);

  std::map<telemetry::MetricId, std::vector<ts::Sample>> expect;
  for (const auto& ev : batch) {
    expect[ev.id].push_back({ev.t, static_cast<double>(ev.value)});
  }
  for (auto& [id, samples] : expect) {
    std::vector<ts::Sample> got;
    reader.scan(id, {0, util::kHour}, got);
    expect_same_samples(samples, got, "metric " + std::to_string(id));
    // Store contract: scans come back time-sorted.
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                               [](const ts::Sample& a, const ts::Sample& b) {
                                 return a.t < b.t;
                               }));
  }
}

TEST(Segment, PredicatePushdownMatchesFullScanFilter) {
  const auto dir = scratch_dir("seg_pushdown");
  const std::string path = dir + "/seg.seg";
  util::Rng rng(2);
  const auto batch = random_batch(rng, {0, 4 * util::kHour}, 8000, 4);
  store::SegmentWriter writer(path, 0, 128);
  writer.add(batch);
  (void)writer.seal();
  store::SegmentReader reader(path);

  const util::TimeRange sub{util::kHour + 17, 3 * util::kHour - 5};
  for (telemetry::MetricId id = 0; id < 4; ++id) {
    std::vector<ts::Sample> expect;
    for (const auto& ev : batch) {
      if (ev.id == id && sub.contains(ev.t)) {
        expect.push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
    std::vector<ts::Sample> got;
    reader.scan(id, sub, got);
    expect_same_samples(expect, got, "pushdown metric " + std::to_string(id));
  }
}

TEST(Segment, ScanSetMatchesPerMetricScans) {
  const auto dir = scratch_dir("seg_scanset");
  const std::string path = dir + "/seg.seg";
  util::Rng rng(3);
  const auto batch = random_batch(rng, {0, util::kHour}, 3000, 6);
  store::SegmentWriter writer(path, 0, 200);
  writer.add(batch);
  (void)writer.seal();
  store::SegmentReader reader(path);

  const std::unordered_set<telemetry::MetricId> ids{0, 2, 5};
  std::map<telemetry::MetricId, std::vector<ts::Sample>> got;
  reader.scan_set(ids, {0, util::kHour}, got);
  for (const auto id : ids) {
    std::vector<ts::Sample> single;
    reader.scan(id, {0, util::kHour}, single);
    expect_same_samples(single, got[id], "scan_set " + std::to_string(id));
  }
  EXPECT_FALSE(got.count(1));  // not requested, not returned
}

TEST(Segment, SealTwiceAndEmptyAreErrors) {
  const auto dir = scratch_dir("seg_misuse");
  {
    store::SegmentWriter empty(dir + "/empty.seg", 0);
    EXPECT_THROW((void)empty.seal(), store::StoreError);
  }
  store::SegmentWriter writer(dir + "/seg.seg", 0);
  writer.add({{1, 10, 100}});
  (void)writer.seal();
  EXPECT_THROW((void)writer.seal(), store::StoreError);
}

// ------------------------------------------------------------ corruption

/// Crash-safety at the file level: a segment cut off at ANY byte length
/// must be rejected by the reader's open-time validation — never a crash,
/// never silently-short data.
TEST(Corruption, TruncationAtEveryLengthIsDetected) {
  const auto dir = scratch_dir("trunc");
  const std::string path = dir + "/seg.seg";
  util::Rng rng(4);
  store::SegmentWriter writer(path, 0, 64);
  writer.add(random_batch(rng, {0, util::kHour}, 600, 3));
  (void)writer.seal();
  const auto whole = read_file(path);
  ASSERT_GT(whole.size(), store::kHeaderBytes + store::kTrailerBytes);

  const std::string cut = dir + "/cut.seg";
  for (std::size_t len = 0; len < whole.size(); ++len) {
    write_file(cut, {whole.begin(), whole.begin() + static_cast<long>(len)});
    EXPECT_THROW(store::SegmentReader reader(cut), store::StoreError)
        << "truncated to " << len << " of " << whole.size() << " bytes";
  }
  // Sanity: the untruncated file still opens.
  write_file(cut, whole);
  EXPECT_NO_THROW(store::SegmentReader reader(cut));
}

/// A flipped byte in a block payload passes open-time validation (the
/// footer is intact) but must surface as a StoreError when that block is
/// actually read — the per-block CRC contract.
TEST(Corruption, BlockBitFlipCaughtByCrcOnScan) {
  const auto dir = scratch_dir("bitflip");
  const std::string path = dir + "/seg.seg";
  util::Rng rng(5);
  store::SegmentWriter writer(path, 0, 64);
  writer.add(random_batch(rng, {0, util::kHour}, 600, 3));
  (void)writer.seal();

  store::SegmentReader clean(path);
  const auto& first = clean.blocks().front();
  auto bytes = read_file(path);
  bytes[first.offset + first.size / 2] ^= 0x40;
  write_file(path, bytes);

  store::SegmentReader flipped(path);  // footer intact: open succeeds
  std::vector<ts::Sample> out;
  EXPECT_THROW(flipped.scan(first.id, {0, util::kHour}, out),
               store::StoreError);
}

/// A flipped byte in the footer directory is caught at open time.
TEST(Corruption, FooterBitFlipCaughtAtOpen) {
  const auto dir = scratch_dir("footflip");
  const std::string path = dir + "/seg.seg";
  util::Rng rng(6);
  store::SegmentWriter writer(path, 0, 64);
  writer.add(random_batch(rng, {0, util::kHour}, 600, 3));
  (void)writer.seal();

  auto bytes = read_file(path);
  bytes[bytes.size() - store::kTrailerBytes - 4] ^= 0x01;
  write_file(path, bytes);
  EXPECT_THROW(store::SegmentReader reader(path), store::StoreError);
}

// -------------------------------------------------------------- manifest

TEST(Manifest, RoundTripAndTamperDetection) {
  store::Manifest m;
  m.segments.push_back({"seg00000000_day00000.seg", 0, 1000, 4096, 0, 86399});
  m.segments.push_back(
      {"seg00000001_day00001.seg", 1, 2000, 8192, 86400, 172799});
  const auto text = m.encode();
  const auto back = store::Manifest::decode(text);
  ASSERT_EQ(back.segments.size(), 2u);
  EXPECT_EQ(back.segments[0].file, m.segments[0].file);
  EXPECT_EQ(back.segments[1].events, 2000u);
  EXPECT_EQ(back.segments[1].t_max, 172799);

  auto tampered = text;
  tampered.replace(tampered.find("2000"), 4, "2001");
  EXPECT_THROW((void)store::Manifest::decode(tampered), store::StoreError);
  EXPECT_THROW((void)store::Manifest::decode("not a manifest\n"),
               store::StoreError);
}

TEST(Manifest, SaveIsAtomicReplaceAndLoadReportsAbsence) {
  const auto dir = scratch_dir("manifest");
  store::Manifest m;
  EXPECT_FALSE(store::Manifest::load(dir, m));

  m.segments.push_back({"a.seg", 0, 10, 100, 0, 9});
  m.save(dir);
  m.segments.push_back({"b.seg", 0, 20, 200, 10, 19});
  m.save(dir);  // replaces, no stale tmp left behind
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST.tmp"));

  store::Manifest loaded;
  ASSERT_TRUE(store::Manifest::load(dir, loaded));
  EXPECT_EQ(loaded.segments.size(), 2u);
}

// ----------------------------------------------------------------- store

TEST(Store, MemtableSealedAndReopenedQueriesAgree) {
  const auto dir = scratch_dir("store_basic");
  util::Rng rng(7);
  store::StoreOptions options;
  options.segment_events = 1000;
  options.block_events = 128;

  std::vector<std::vector<telemetry::MetricEvent>> batches;
  for (int i = 0; i < 7; ++i) {  // odd count: the last batch stays buffered
    batches.push_back(random_batch(rng, {0, 2 * util::kHour}, 700, 10));
  }

  telemetry::Archive archive;
  std::vector<telemetry::MetricId> ids;
  {
    auto st = store::Store::open(dir, options);
    for (const auto& b : batches) {
      st.append(b);
      archive.append(b);
    }
    // Memtable + sealed mix: some batches are still buffered here.
    EXPECT_GT(st.buffered_events(), 0u);
    EXPECT_GT(st.sealed_segments(), 0u);
    ids = st.metrics();
    for (const auto id : ids) {
      expect_same_samples(archive.query(id, {0, 2 * util::kHour}),
                          st.query(id, {0, 2 * util::kHour}),
                          "pre-flush metric " + std::to_string(id));
    }
    st.flush();
    EXPECT_EQ(st.buffered_events(), 0u);
  }

  auto reopened = store::Store::open(dir, options);
  EXPECT_TRUE(reopened.recovery().clean());
  EXPECT_EQ(reopened.total_events(), 7u * 700u);
  EXPECT_GT(reopened.compression_ratio(), 1.0);
  EXPECT_EQ(reopened.metrics(), ids);
  for (const auto id : ids) {
    expect_same_samples(archive.query(id, {0, 2 * util::kHour}),
                        reopened.query(id, {0, 2 * util::kHour}),
                        "reopened metric " + std::to_string(id));
  }
}

TEST(Store, DestructorFlushesTail) {
  const auto dir = scratch_dir("store_dtor");
  util::Rng rng(8);
  const auto batch = random_batch(rng, {0, util::kHour}, 500, 4);
  {
    auto st = store::Store::open(dir);
    st.append(batch);  // far below segment_events: memtable only
  }                    // destructor must seal it
  auto st = store::Store::open(dir);
  EXPECT_EQ(st.total_events(), batch.size());
}

TEST(Store, DayPartitionsFollowTheArchiveRule) {
  const auto dir = scratch_dir("store_days");
  auto st = store::Store::open(dir);
  // Partition = first event's day, exactly as Archive::append does it.
  st.append({{1, util::kDay - 2, 5}, {1, util::kDay + 2, 6}});
  st.append({{1, util::kDay + 10, 7}});
  st.flush();
  EXPECT_EQ(st.day_partitions(), 2u);
  EXPECT_EQ(st.sealed_segments(), 2u);
  const auto got = st.query(1, {0, 2 * util::kDay});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(), sample_less));
}

// ---------------------------------------------------- crash-safety gates

/// The acceptance crash test: a writer dies mid-segment (simulated by
/// truncating the youngest segment file). Reopen must drop exactly that
/// tail and nothing else; the surviving scan equals an in-memory archive
/// that saw only the surviving batches — bit for bit.
TEST(CrashSafety, TruncatedTailDroppedSurvivorsBitIdentical) {
  const auto dir = scratch_dir("crash_tail");
  util::Rng rng(9);
  store::StoreOptions options;
  options.segment_events = 500;  // each 500-event batch seals one segment
  options.block_events = 64;

  telemetry::Archive survivors;
  std::vector<telemetry::MetricId> ids;
  {
    auto st = store::Store::open(dir, options);
    for (int i = 0; i < 5; ++i) {
      const auto batch = random_batch(rng, {0, util::kHour}, 500, 6);
      st.append(batch);
      if (i < 4) survivors.append(batch);
    }
    st.flush();
    EXPECT_EQ(st.sealed_segments(), 5u);
    ids = st.metrics();
  }

  // "Kill the writer" mid-write of the youngest segment (sequence numbers
  // are zero-padded, so lexicographic max is the last one sealed).
  fs::path youngest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg" &&
        (youngest.empty() ||
         entry.path().filename() > youngest.filename())) {
      youngest = entry.path();
    }
  }
  ASSERT_FALSE(youngest.empty());
  const auto bytes = read_file(youngest.string());
  write_file(youngest.string(),
             {bytes.begin(), bytes.begin() + static_cast<long>(
                                                 bytes.size() / 2)});

  auto st = store::Store::open(dir, options);
  EXPECT_EQ(st.recovery().dropped_corrupt, 1u);
  EXPECT_EQ(st.recovery().adopted_orphans, 0u);
  EXPECT_EQ(st.sealed_segments(), 4u);
  EXPECT_EQ(st.total_events(), 4u * 500u);
  // The damaged file was set aside, not deleted — forensics stay possible.
  EXPECT_TRUE(fs::exists(youngest.string() + ".bad"));

  for (const auto id : ids) {
    expect_same_samples(survivors.query(id, {0, util::kHour}),
                        st.query(id, {0, util::kHour}),
                        "survivor metric " + std::to_string(id));
  }

  // Recovery persisted the repair: the next open is clean.
  auto again = store::Store::open(dir, options);
  EXPECT_TRUE(again.recovery().clean());
}

/// Crash after a segment sealed but before the manifest rename: the valid
/// orphan is adopted on reopen, losing nothing.
TEST(CrashSafety, SealedOrphanIsAdopted) {
  const auto dir = scratch_dir("crash_orphan");
  util::Rng rng(10);
  store::StoreOptions options;
  options.segment_events = 500;
  {
    auto st = store::Store::open(dir, options);
    st.append(random_batch(rng, {0, util::kHour}, 500, 4));
    st.flush();
  }
  // A sealed segment the manifest never heard of (manifest rename "lost").
  const auto orphan_batch = random_batch(rng, {0, util::kHour}, 300, 4);
  {
    store::SegmentWriter writer(dir + "/seg00000099_day00000.seg", 0, 64);
    writer.add(orphan_batch);
    (void)writer.seal();
  }

  auto st = store::Store::open(dir, options);
  EXPECT_EQ(st.recovery().adopted_orphans, 1u);
  EXPECT_EQ(st.total_events(), 800u);
  const auto got = st.query(orphan_batch.front().id, {0, util::kHour});
  EXPECT_FALSE(got.empty());
}

/// Stale manifest pointing at a deleted segment: the entry is dropped with
/// a report, the rest of the store stays queryable.
TEST(CrashSafety, StaleManifestEntryDropped) {
  const auto dir = scratch_dir("crash_stale");
  util::Rng rng(11);
  store::StoreOptions options;
  options.segment_events = 500;
  std::string first_file;
  {
    auto st = store::Store::open(dir, options);
    st.append(random_batch(rng, {0, util::kHour}, 500, 4));
    st.append(random_batch(rng, {0, util::kHour}, 500, 4));
    st.flush();
    EXPECT_EQ(st.sealed_segments(), 2u);
  }
  store::Manifest m;
  ASSERT_TRUE(store::Manifest::load(dir, m));
  ASSERT_EQ(m.segments.size(), 2u);
  fs::remove(dir + "/" + m.segments[0].file);

  auto st = store::Store::open(dir, options);
  EXPECT_EQ(st.recovery().dropped_missing, 1u);
  EXPECT_EQ(st.sealed_segments(), 1u);
  EXPECT_EQ(st.total_events(), 500u);
}

/// A corrupt manifest is rebuilt from the segment files themselves.
TEST(CrashSafety, CorruptManifestRebuiltFromSegments) {
  const auto dir = scratch_dir("crash_manifest");
  util::Rng rng(12);
  store::StoreOptions options;
  options.segment_events = 500;
  telemetry::Archive archive;
  {
    auto st = store::Store::open(dir, options);
    for (int i = 0; i < 3; ++i) {
      const auto batch = random_batch(rng, {0, util::kHour}, 500, 4);
      st.append(batch);
      archive.append(batch);
    }
    st.flush();
  }
  {
    std::ofstream out(store::manifest_path(dir), std::ios::trunc);
    out << "garbage that is definitely not a manifest\n";
  }

  auto st = store::Store::open(dir, options);
  EXPECT_TRUE(st.recovery().manifest_rebuilt);
  EXPECT_EQ(st.sealed_segments(), 3u);
  for (const auto id : st.metrics()) {
    expect_same_samples(archive.query(id, {0, util::kHour}),
                        st.query(id, {0, util::kHour}),
                        "rebuilt metric " + std::to_string(id));
  }
  // And the rebuild was persisted.
  EXPECT_TRUE(store::Store::open(dir, options).recovery().clean());
}

// ----------------------------------------------- archive/store contract

/// The shared query contract, property-tested: whatever seeded batch
/// stream is appended to both, every query over every probed range must
/// return the same multiset of samples. Batches are out-of-order inside
/// and across one another and straddle midnight.
class StoreContract : public testing::TestWithParam<int> {};

TEST_P(StoreContract, ArchiveAndStoreAgreeOnSeededStreams) {
  const int seed = GetParam();
  const auto dir = scratch_dir("contract_" + std::to_string(seed));
  util::Rng rng(static_cast<std::uint64_t>(seed));
  store::StoreOptions options;
  options.segment_events = 600;  // force several seals per run
  options.block_events = 96;

  telemetry::Archive archive;
  auto st = store::Store::open(dir, options);
  // Two days of data; several batches deliberately start just before
  // midnight so their partition (chosen by the FIRST event, the shared
  // rule) differs from where most of their events land.
  for (int b = 0; b < 12; ++b) {
    const util::TimeSec mid = util::kDay;
    const util::TimeRange span =
        b % 3 == 2 ? util::TimeRange{mid - util::kMinute, mid + util::kMinute}
                   : util::TimeRange{0, 2 * util::kDay};
    auto batch = random_batch(rng, span, 400, 12);
    archive.append(batch);
    st.append(std::move(batch));
  }
  st.flush();

  const util::TimeRange probes[] = {
      {0, 2 * util::kDay},                            // everything
      {util::kDay - 30, util::kDay + 30},             // straddles midnight
      {util::kHour, util::kHour + 1},                 // single-second
      {3 * util::kHour, 3 * util::kHour},             // empty
      {2 * util::kDay, 3 * util::kDay},               // past the data
  };
  for (const auto id : st.metrics()) {
    for (const auto& range : probes) {
      expect_same_samples(archive.query(id, range), st.query(id, range),
                          "seed " + std::to_string(seed) + " metric " +
                              std::to_string(id) + " range [" +
                              std::to_string(range.begin) + "," +
                              std::to_string(range.end) + ")");
    }
  }

  // Same contract through the reopened (pure on-disk) store.
  st.flush();
  auto reopened = store::Store::open(dir, options);
  for (const auto id : reopened.metrics()) {
    expect_same_samples(archive.query(id, {0, 2 * util::kDay}),
                        reopened.query(id, {0, 2 * util::kDay}),
                        "reopened seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreContract, testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------- parallel query

TEST(QueryMany, ParallelMatchesSerialAndPerMetricQueries) {
  const auto dir = scratch_dir("query_many");
  util::Rng rng(13);
  store::StoreOptions options;
  options.segment_events = 400;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  for (int b = 0; b < 10; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 400, 16));
  }
  st.flush();

  std::vector<telemetry::MetricId> ids{0, 3, 7, 11, 15, 2};
  const util::TimeRange range{util::kHour, 20 * util::kHour};

  util::ThreadPool serial(1);
  util::ThreadPool wide(4);
  const auto one = st.query_many(ids, range, &serial);
  const auto many = st.query_many(ids, range, &wide);
  const auto global = st.query_many(ids, range);  // default pool

  ASSERT_EQ(one.size(), ids.size());
  ASSERT_EQ(many.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(one[i].id, ids[i]);  // output preserves request order
    expect_same_samples(st.query(ids[i], range), one[i].samples,
                        "serial id " + std::to_string(ids[i]));
    // Parallel merge must be deterministic, not just equivalent.
    ASSERT_EQ(one[i].samples.size(), many[i].samples.size());
    for (std::size_t j = 0; j < one[i].samples.size(); ++j) {
      EXPECT_TRUE(sample_eq(one[i].samples[j], many[i].samples[j]));
      EXPECT_TRUE(sample_eq(one[i].samples[j], global[i].samples[j]));
    }
  }
}

TEST(QueryMany, ClusterSumMatchesArchiveAggregator) {
  const auto dir = scratch_dir("cluster_sum");
  util::Rng rng(14);
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  const std::vector<machine::NodeId> nodes{0, 1, 2, 3, 4};

  telemetry::Archive archive;
  store::StoreOptions options;
  options.segment_events = 300;
  auto st = store::Store::open(dir, options);
  // Timestamps are unique per metric (a BMC emits at most one sample per
  // channel per second) — with duplicate t the float accumulation order
  // inside a coarsen window would be unspecified and bit-parity undefined.
  for (int b = 0; b < 6; ++b) {
    std::vector<telemetry::MetricEvent> batch;
    for (const auto n : nodes) {
      for (int k = 0; k < 50; ++k) {
        batch.push_back(
            {telemetry::metric_id(n, channel),
             static_cast<util::TimeSec>(b * 600 + k * 12),
             static_cast<std::int32_t>(100 + rng.uniform_index(801))});
      }
    }
    std::shuffle(batch.begin(), batch.end(), rng);  // out-of-order feed
    archive.append(batch);
    st.append(std::move(batch));
  }
  st.flush();

  const util::TimeRange range{0, util::kHour};
  std::vector<double> mem_counts;
  std::vector<double> disk_counts;
  const auto mem =
      telemetry::cluster_sum(archive, nodes, channel, range, 10, &mem_counts);
  const auto disk =
      store::cluster_sum(st, nodes, channel, range, 10, &disk_counts);
  ASSERT_EQ(mem.size(), disk.size());
  ASSERT_EQ(mem_counts.size(), disk_counts.size());
  for (std::size_t i = 0; i < mem.size(); ++i) {
    EXPECT_EQ(mem[i], disk[i]) << "window " << i;  // bit-identical
    EXPECT_EQ(mem_counts[i], disk_counts[i]);
  }
}

// ------------------------------------------------------- block cache

namespace {

store::BlockCache::Columns make_columns(std::size_t events) {
  auto cols = std::make_shared<telemetry::DecodeScratch>();
  cols->ids.assign(events, 1);
  cols->times.assign(events, 0);
  cols->values.assign(events, 0);
  return cols;
}

}  // namespace

TEST(BlockCache, HitMissAndLruEviction) {
  const auto entry = store::BlockCache::entry_bytes(*make_columns(64));
  // One shard, room for exactly two entries.
  store::BlockCache cache(entry * 2, 1);
  const store::BlockCache::Key a{1, 0, 10};
  const store::BlockCache::Key b{1, 1, 11};
  const store::BlockCache::Key c{1, 2, 12};

  EXPECT_EQ(cache.find(a), nullptr);
  cache.insert(a, make_columns(64));
  cache.insert(b, make_columns(64));
  EXPECT_NE(cache.find(a), nullptr);  // refreshes a's recency
  cache.insert(c, make_columns(64));  // evicts b (LRU), not a
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_EQ(cache.find(b), nullptr);
  EXPECT_NE(cache.find(c), nullptr);

  const auto counters = cache.counters();
  EXPECT_EQ(counters.entries, 2u);
  EXPECT_LE(counters.bytes, cache.byte_budget());
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.insertions, 3u);
  EXPECT_EQ(counters.hits, 3u);
  EXPECT_EQ(counters.misses, 2u);
}

TEST(BlockCache, CrcIsPartOfTheKey) {
  // Same (segment, block) with a different directory CRC is a different
  // entry — stale decoded columns can never be served for rewritten
  // bytes; the old entry just ages out.
  store::BlockCache cache(1 << 20, 1);
  cache.insert({7, 3, 0xAAAA}, make_columns(8));
  EXPECT_EQ(cache.find({7, 3, 0xBBBB}), nullptr);
  EXPECT_NE(cache.find({7, 3, 0xAAAA}), nullptr);
}

TEST(BlockCache, OversizedEntryIsNotCached) {
  store::BlockCache cache(256, 1);
  cache.insert({1, 0, 1}, make_columns(4096));
  EXPECT_EQ(cache.find({1, 0, 1}), nullptr);
  EXPECT_EQ(cache.counters().insertions, 0u);
  EXPECT_EQ(cache.counters().entries, 0u);
}

TEST(BlockCache, EvictionKeepsSharedColumnsAlive) {
  const auto entry = store::BlockCache::entry_bytes(*make_columns(16));
  store::BlockCache cache(entry, 1);  // room for one entry
  cache.insert({1, 0, 1}, make_columns(16));
  const auto held = cache.find({1, 0, 1});
  ASSERT_NE(held, nullptr);
  cache.insert({1, 1, 2}, make_columns(16));  // evicts the first entry
  EXPECT_EQ(cache.find({1, 0, 1}), nullptr);
  // The shared_ptr we took before the eviction still reads fine.
  EXPECT_EQ(held->size(), 16u);
}

TEST(StoreCache, RepeatedQueryIsServedFromCacheBitIdentically) {
  const auto dir = scratch_dir("store_cache");
  util::Rng rng(21);
  store::StoreOptions options;
  options.segment_events = 500;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  for (int b = 0; b < 6; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 500, 8));
  }
  st.flush();
  ASSERT_NE(st.block_cache(), nullptr);

  const util::TimeRange range{0, util::kDay};
  store::QueryStats cold;
  const auto first = st.query(3, range, &cold);
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_EQ(cold.cache_hits, 0u);

  store::QueryStats warm;
  const auto second = st.query(3, range, &warm);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(sample_eq(first[i], second[i])) << "sample " << i;
  }
  EXPECT_GT(st.block_cache()->counters().hits, 0u);
}

TEST(StoreCache, DisabledCacheMatchesEnabledCache) {
  const auto dir = scratch_dir("store_cache_off");
  util::Rng rng(22);
  store::StoreOptions options;
  options.segment_events = 400;
  options.block_events = 64;
  {
    auto st = store::Store::open(dir, options);
    for (int b = 0; b < 5; ++b) {
      st.append(random_batch(rng, {0, util::kDay}, 400, 8));
    }
  }  // destructor flushes

  store::StoreOptions no_cache = options;
  no_cache.cache_bytes = 0;
  auto cached = store::Store::open(dir, options);
  auto uncached = store::Store::open(dir, no_cache);
  EXPECT_EQ(uncached.block_cache(), nullptr);

  const util::TimeRange range{0, util::kDay};
  for (const telemetry::MetricId id : cached.metrics()) {
    // Query the cached store twice so the second pass runs on hits.
    (void)cached.query(id, range);
    store::QueryStats warm;
    store::QueryStats off;
    const auto a = cached.query(id, range, &warm);
    const auto b = uncached.query(id, range, &off);
    EXPECT_GT(warm.cache_hits, 0u) << "metric " << id;
    EXPECT_EQ(off.cache_hits + off.cache_misses, 0u);
    ASSERT_EQ(a.size(), b.size()) << "metric " << id;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(sample_eq(a[i], b[i])) << "metric " << id;
    }
  }
}

TEST(StoreCache, TinyBudgetEvictsInsteadOfGrowing) {
  const auto dir = scratch_dir("store_cache_tiny");
  util::Rng rng(23);
  store::StoreOptions options;
  options.segment_events = 512;
  options.block_events = 32;
  // A few KB: single-digit entries across 8 shards — most inserts evict.
  options.cache_bytes = 8 << 10;
  auto st = store::Store::open(dir, options);
  for (int b = 0; b < 8; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 512, 4));
  }
  st.flush();
  const util::TimeRange range{0, util::kDay};
  for (int pass = 0; pass < 3; ++pass) {
    for (const telemetry::MetricId id : st.metrics()) {
      (void)st.query(id, range);
    }
  }
  const auto counters = st.block_cache()->counters();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LE(counters.bytes, st.block_cache()->byte_budget());
}

// ----------------------------------------------------------- window sum

TEST(WindowSum, MatchesQueryThenBucketReference) {
  const auto dir = scratch_dir("window_sum");
  util::Rng rng(24);
  store::StoreOptions options;
  options.segment_events = 300;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  for (int b = 0; b < 7; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 300, 6));
  }
  // Leave the last batch unsealed so the mem_ tail path is covered too.
  st.append(random_batch(rng, {0, util::kDay}, 100, 6));

  const util::TimeRange range{util::kHour, 10 * util::kHour};
  const util::TimeSec window = 600;
  util::ThreadPool serial(1);
  util::ThreadPool wide(4);
  for (const telemetry::MetricId id : st.metrics()) {
    const auto ws = st.window_sum(id, range, window, &wide);
    const auto ws_serial = st.window_sum(id, range, window, &serial);
    const auto samples = st.query(id, range);
    ASSERT_EQ(ws.size(),
              static_cast<std::size_t>((range.duration() + window - 1) /
                                       window));
    std::vector<double> ref_sum(ws.size(), 0.0);
    std::vector<std::uint64_t> ref_count(ws.size(), 0);
    for (const auto& s : samples) {
      const auto w = static_cast<std::size_t>((s.t - range.begin) / window);
      ref_sum[w] += s.value;
      ++ref_count[w];
    }
    for (std::size_t w = 0; w < ws.size(); ++w) {
      // Bit-equality: sums are exact integers, so thread schedule and
      // segment grouping must not matter.
      EXPECT_EQ(ws.sum[w], ref_sum[w]) << "id " << id << " window " << w;
      EXPECT_EQ(ws.count[w], ref_count[w]);
      EXPECT_EQ(ws_serial.sum[w], ws.sum[w]);
      EXPECT_EQ(ws_serial.count[w], ws.count[w]);
      if (ws.count[w] > 0) {
        EXPECT_DOUBLE_EQ(ws.mean(w), ref_sum[w] / static_cast<double>(
                                                      ref_count[w]));
      }
    }
  }
}

TEST(WindowSum, RejectsNonPositiveWindow) {
  const auto dir = scratch_dir("window_sum_bad");
  auto st = store::Store::open(dir);
  EXPECT_THROW((void)st.window_sum(1, {0, 100}, 0), store::StoreError);
}

// -------------------------------------------------------- accounting

TEST(Accounting, RawEventBytesIsTheStructSize) {
  EXPECT_EQ(telemetry::kRawEventBytes, sizeof(telemetry::MetricEvent));
  // The compression denominator everywhere — codec, archive, store.
  telemetry::Archive archive;
  std::vector<telemetry::MetricEvent> batch;
  for (int i = 0; i < 1000; ++i) batch.push_back({1, i, 7});
  archive.append(batch);
  EXPECT_DOUBLE_EQ(archive.compression_ratio(),
                   static_cast<double>(1000 * telemetry::kRawEventBytes) /
                       static_cast<double>(archive.compressed_bytes()));
}

// ------------------------------------------------------------ warm tier

TEST(WarmTier, MmapParityWithBufferedReadsOnEveryMetric) {
  const auto dir = scratch_dir("warm_parity");
  util::Rng rng(71);
  store::StoreOptions options;
  options.segment_events = 700;
  options.block_events = 96;
  options.cache_bytes = 0;  // every block read hits the tier under test
  {
    auto st = store::Store::open(dir, options);
    for (int b = 0; b < 9; ++b) {
      st.append(random_batch(rng, {0, 2 * util::kDay}, 700, 5));
    }
    st.flush();
  }

  auto cold = store::Store::open(dir, options);
  store::StoreOptions warm_options = options;
  warm_options.mmap_segments = true;
  auto warm = store::Store::open(dir, warm_options);

  const util::TimeRange range{0, 2 * util::kDay};
  store::QueryStats cold_stats, warm_stats;
  for (const telemetry::MetricId id : cold.metrics()) {
    expect_same_samples(warm.query(id, range, &warm_stats),
                        cold.query(id, range, &cold_stats),
                        "warm/cold tier, metric " + std::to_string(id));
  }
  // Tier attribution: the mapped store reads every block zero-copy, the
  // buffered one never maps. Both read the same number of blocks.
  EXPECT_FALSE(warm_stats.degraded());
  EXPECT_FALSE(cold_stats.degraded());
  EXPECT_GT(warm_stats.warm_blocks, 0u);
  EXPECT_EQ(warm_stats.cold_blocks, 0u);
  EXPECT_EQ(cold_stats.warm_blocks, 0u);
  EXPECT_GT(cold_stats.cold_blocks, 0u);
  EXPECT_EQ(warm_stats.warm_blocks, cold_stats.cold_blocks);
}

TEST(WarmTier, MappedReaderSurvivesUnlink) {
  const auto dir = scratch_dir("warm_unlink");
  util::Rng rng(72);
  store::StoreOptions options;
  options.segment_events = 400;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  st.append(random_batch(rng, {0, util::kDay}, 400, 3));
  st.flush();
  const auto directory = st.directory();
  ASSERT_FALSE(directory.empty());
  const std::string seg_path = dir + "/" + directory.front().file;

  store::SegmentReader reader(seg_path, nullptr, /*map_file=*/true);
  ASSERT_TRUE(reader.mapped());
  std::uint64_t before = 0;
  for (const auto& b : reader.blocks()) before += reader.read_block(b).size();

  // The compactor's retirement shape: the file vanishes under a reader
  // that is still serving queries. The mapping keeps the bytes alive.
  fs::remove(seg_path);
  std::uint64_t after = 0;
  for (const auto& b : reader.blocks()) after += reader.read_block(b).size();
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, reader.events());
}

// ----------------------------------------------------------- compaction

TEST(Compaction, PlanMergesSmallsDropsAgedAndForcesStraddlers) {
  auto meta = [](const char* file, std::int64_t day, std::uint64_t events,
                 util::TimeSec t_min, util::TimeSec t_max) {
    store::SegmentMeta m;
    m.file = file;
    m.day = day;
    m.events = events;
    m.t_min = t_min;
    m.t_max = t_max;
    return m;
  };
  const std::vector<store::SegmentMeta> directory{
      meta("aged.seg", 0, 5000, 0, 999),          // wholly expired
      meta("small_a.seg", 1, 100, 90000, 90500),  // merge pair...
      meta("small_b.seg", 1, 120, 90200, 90900),  // ...same day
      meta("lone.seg", 2, 80, 180000, 180500),    // lone small: untouched
      meta("big.seg", 3, 9000, 259300, 260000),   // big: untouched
      meta("straddle.seg", 0, 9000, 500, 2000),   // big but crosses cutoff
  };
  store::CompactionOptions opts;
  opts.retention.drop_before = 1000;
  opts.small_segment_events = 1000;
  opts.min_merge_inputs = 2;

  const auto plan = store::plan_compaction(directory, opts);
  ASSERT_EQ(plan.drop.size(), 1u);
  EXPECT_EQ(plan.drop[0], "aged.seg");
  ASSERT_EQ(plan.rounds.size(), 2u);  // day 0 (forced) and day 1 (pair)
  EXPECT_EQ(plan.rounds[0].day, 0);
  EXPECT_EQ(plan.rounds[0].inputs, std::vector<std::string>{"straddle.seg"});
  EXPECT_EQ(plan.rounds[1].day, 1);
  EXPECT_EQ(plan.rounds[1].inputs,
            (std::vector<std::string>{"small_a.seg", "small_b.seg"}));

  // Without retention pressure the straddler is just a big segment and
  // the lone small still is not worth a rewrite.
  store::CompactionOptions keep_all = opts;
  keep_all.retention.drop_before = 0;
  const auto plan2 = store::plan_compaction(directory, keep_all);
  EXPECT_TRUE(plan2.drop.empty());
  ASSERT_EQ(plan2.rounds.size(), 1u);
  EXPECT_EQ(plan2.rounds[0].day, 1);
}

TEST(Compaction, MergeIsLosslessAndIdempotent) {
  const auto dir = scratch_dir("compact_merge");
  util::Rng rng(73);
  store::StoreOptions options;
  options.segment_events = 250;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  for (int b = 0; b < 12; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 250, 4));
  }
  st.flush();
  const auto before_segments = st.sealed_segments();
  ASSERT_GE(before_segments, 4u);
  const util::TimeRange range{0, util::kDay};
  std::map<telemetry::MetricId, std::vector<ts::Sample>> reference;
  for (const telemetry::MetricId id : st.metrics()) {
    reference[id] = st.query(id, range);
  }

  store::CompactionOptions copts;
  copts.small_segment_events = 1 << 20;  // everything is "small"
  const auto report = st.compact(copts);
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_EQ(report.merged_inputs, before_segments);
  EXPECT_EQ(report.events_in, report.events_out);
  EXPECT_EQ(report.events_expired, 0u);
  EXPECT_EQ(st.sealed_segments(), 1u);
  EXPECT_EQ(st.graveyard_size(), 0u);  // no reader pinned the victims
  for (const auto& [id, samples] : reference) {
    expect_same_samples(st.query(id, range), samples,
                        "post-compaction, metric " + std::to_string(id));
  }

  // A second pass finds one big segment and nothing to do.
  const auto again = st.compact(copts);
  EXPECT_EQ(again.rounds, 0u);
  EXPECT_EQ(again.dropped_segments, 0u);
  EXPECT_EQ(st.sealed_segments(), 1u);

  // And the merged store reopens clean, with identical answers.
  auto reopened = store::Store::open(dir, options);
  EXPECT_TRUE(reopened.recovery().clean());
  for (const auto& [id, samples] : reference) {
    expect_same_samples(reopened.query(id, range), samples,
                        "reopen post-compaction, metric " +
                            std::to_string(id));
  }
}

TEST(Compaction, RetentionDropsWholeSegmentsAndFiltersStraddlers) {
  const auto dir = scratch_dir("compact_retention");
  util::Rng rng(74);
  store::StoreOptions options;
  options.segment_events = 300;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  // Two day-partitions: day 0 ages out entirely, day 1 straddles.
  for (int b = 0; b < 4; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 300, 4));
    st.append(random_batch(rng, {util::kDay, 2 * util::kDay}, 300, 4));
  }
  st.flush();
  const util::TimeRange all{0, 2 * util::kDay};
  const util::TimeSec cutoff = util::kDay + util::kHour;
  std::map<telemetry::MetricId, std::vector<ts::Sample>> survivors;
  const std::uint64_t total_before = st.total_events();
  for (const telemetry::MetricId id : st.metrics()) {
    auto samples = st.query(id, all);
    std::erase_if(samples,
                  [&](const ts::Sample& s) { return s.t < cutoff; });
    survivors[id] = std::move(samples);
  }

  store::CompactionOptions copts;
  copts.retention.drop_before = cutoff;
  copts.small_segment_events = 1 << 20;
  const auto report = st.compact(copts);
  EXPECT_GT(report.dropped_segments, 0u);  // the day-0 population
  EXPECT_EQ(report.rounds, 1u);            // day 1 rewrote
  EXPECT_GT(report.events_expired, 0u);
  EXPECT_EQ(report.events_out, report.events_in - report.events_expired);

  std::uint64_t total_after = 0;
  for (const auto& [id, keep] : survivors) {
    expect_same_samples(st.query(id, all), keep,
                        "retention survivor, metric " + std::to_string(id));
    total_after += keep.size();
  }
  EXPECT_EQ(st.total_events(), total_after);
  EXPECT_LT(total_after, total_before);
  EXPECT_GE(st.bounds().begin, cutoff);
}

TEST(Compaction, ConcurrentQueryKeepsItsSnapshotWhileSegmentsRetire) {
  const auto dir = scratch_dir("compact_concurrent");
  util::Rng rng(75);
  store::StoreOptions options;
  options.segment_events = 200;
  options.block_events = 64;
  auto st = store::Store::open(dir, options);
  for (int b = 0; b < 10; ++b) {
    st.append(random_batch(rng, {0, util::kDay}, 200, 3));
  }
  st.flush();
  ASSERT_GE(st.sealed_segments(), 4u);
  const util::TimeRange range{0, util::kDay};
  const auto ids = st.metrics();
  std::map<telemetry::MetricId, std::vector<ts::Sample>> reference;
  for (const telemetry::MetricId id : ids) reference[id] = st.query(id, range);

  // Compact from inside a running scan: the scan's snapshot pins the
  // retired inputs (graveyard holds them), and its results must still be
  // the full pre-compaction answer.
  store::CompactionOptions copts;
  copts.small_segment_events = 1 << 20;
  bool compacted = false;
  std::size_t graveyard_during = 0;
  std::map<telemetry::MetricId, std::vector<ts::Sample>> scanned;
  const bool completed = st.scan(
      ids, range,
      [&](store::MetricRun&& run) {
        if (!compacted) {
          compacted = true;
          const auto report = st.compact(copts);
          EXPECT_EQ(report.rounds, 1u);
          graveyard_during = st.graveyard_size();
        }
        scanned[run.id] = std::move(run.samples);
        return true;
      });
  ASSERT_TRUE(completed);
  EXPECT_GT(graveyard_during, 0u);  // victims pinned by the live scan
  for (const auto& [id, samples] : reference) {
    expect_same_samples(scanned[id], samples,
                        "scan across compaction, metric " +
                            std::to_string(id));
  }
  // The scan is done; its snapshot died with it, so the reap drains.
  EXPECT_GT(st.reap(), 0u);
  EXPECT_EQ(st.graveyard_size(), 0u);
  for (const auto& [id, samples] : reference) {
    expect_same_samples(st.query(id, range), samples,
                        "post-reap, metric " + std::to_string(id));
  }
}

// -------------------------------------------------- compaction recovery

TEST(CompactionJournal, EncodeDecodeRoundTripAndCrcTamper) {
  store::CompactionJournal j;
  j.state = store::CompactionJournal::State::kFlipped;
  j.day = 17;
  j.output = "seg00000042_day00017.seg";
  j.drop_before = 12345;
  j.inputs = {"seg00000001_day00017.seg", "seg00000002_day00017.seg"};

  const std::string text = j.encode();
  const auto back = store::CompactionJournal::decode(text);
  EXPECT_EQ(back.state, j.state);
  EXPECT_EQ(back.day, j.day);
  EXPECT_EQ(back.output, j.output);
  EXPECT_EQ(back.drop_before, j.drop_before);
  EXPECT_EQ(back.inputs, j.inputs);

  std::string tampered = text;
  tampered[tampered.find("flipped")] = 'F';
  EXPECT_THROW((void)store::CompactionJournal::decode(tampered),
               store::StoreError);
  EXPECT_THROW((void)store::CompactionJournal::decode("not a journal"),
               store::StoreError);

  EXPECT_EQ(store::CompactionJournal::path_for("/r", j.output),
            "/r/" + j.output + ".compact");
}

TEST(CompactionRecovery, CopyingJournalRollsBackWithoutDataLoss) {
  const auto dir = scratch_dir("compact_rollback");
  util::Rng rng(76);
  store::StoreOptions options;
  options.segment_events = 300;
  options.block_events = 64;
  std::map<telemetry::MetricId, std::vector<ts::Sample>> reference;
  std::vector<std::string> inputs;
  {
    auto st = store::Store::open(dir, options);
    for (int b = 0; b < 4; ++b) {
      st.append(random_batch(rng, {0, util::kDay}, 300, 4));
    }
    st.flush();
    for (const telemetry::MetricId id : st.metrics()) {
      reference[id] = st.query(id, {0, util::kDay});
    }
    for (const auto& m : st.directory()) inputs.push_back(m.file);
  }

  // A pass that died mid-copy: a copying journal plus a torn .incoming.
  store::CompactionJournal j;
  j.state = store::CompactionJournal::State::kCopying;
  j.day = 0;
  j.output = "seg00000099_day00000.seg";
  j.inputs = inputs;
  {
    const std::string text = j.encode();
    std::ofstream out(store::CompactionJournal::path_for(dir, j.output),
                      std::ios::binary);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
  write_file(dir + "/" + j.output + ".incoming", {0xDE, 0xAD, 0xBE, 0xEF});
  // Plus a torn journal save that never got renamed in.
  write_file(dir + "/" + j.output + ".compact.tmp", {0x00});

  auto st = store::Store::open(dir, options);
  EXPECT_EQ(st.recovery().compactions_rolled_back, 1u);
  EXPECT_EQ(st.recovery().compactions_finished, 0u);
  EXPECT_TRUE(st.recovery().clean());  // the inputs were untouched
  for (const auto& [id, samples] : reference) {
    expect_same_samples(st.query(id, {0, util::kDay}), samples,
                        "post-rollback, metric " + std::to_string(id));
  }
  EXPECT_FALSE(fs::exists(dir + "/" + j.output + ".incoming"));
  EXPECT_FALSE(fs::exists(dir + "/" + j.output + ".compact"));
  EXPECT_FALSE(fs::exists(dir + "/" + j.output + ".compact.tmp"));
}

TEST(CompactionRecovery, FlippedJournalRollsForwardToTheOutput) {
  const auto dir = scratch_dir("compact_forward");
  util::Rng rng(77);
  store::StoreOptions options;
  options.segment_events = 300;
  options.block_events = 64;
  std::map<telemetry::MetricId, std::vector<ts::Sample>> reference;
  std::vector<std::string> inputs;
  std::vector<telemetry::MetricEvent> merged;
  {
    auto st = store::Store::open(dir, options);
    for (int b = 0; b < 4; ++b) {
      st.append(random_batch(rng, {0, util::kDay}, 300, 4));
    }
    st.flush();
    for (const telemetry::MetricId id : st.metrics()) {
      reference[id] = st.query(id, {0, util::kDay});
    }
    for (const auto& m : st.directory()) {
      inputs.push_back(m.file);
      store::SegmentReader r(dir + "/" + m.file);
      for (const auto& b : r.blocks()) {
        const auto evs = r.read_block(b);
        merged.insert(merged.end(), evs.begin(), evs.end());
      }
    }
  }

  // Reconstruct the exact pre-crash state one op past the commit point:
  // a validated .incoming and a flipped journal, rename not yet done.
  const std::string output = "seg00000099_day00000.seg";
  {
    store::SegmentWriter writer(dir + "/" + output + ".incoming", 0, 64);
    writer.add(merged);
    (void)writer.seal();
  }
  store::CompactionJournal j;
  j.state = store::CompactionJournal::State::kFlipped;
  j.day = 0;
  j.output = output;
  j.inputs = inputs;
  {
    const std::string text = j.encode();
    std::ofstream out(store::CompactionJournal::path_for(dir, output),
                      std::ios::binary);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }

  auto st = store::Store::open(dir, options);
  EXPECT_EQ(st.recovery().compactions_finished, 1u);
  EXPECT_EQ(st.recovery().compactions_rolled_back, 0u);
  // Roll-forward replaced the listed inputs with the unlisted output, so
  // the manifest sweep adopts the orphan and drops the missing entries.
  EXPECT_EQ(st.recovery().adopted_orphans, 1u);
  EXPECT_EQ(st.recovery().dropped_missing, inputs.size());
  EXPECT_EQ(st.sealed_segments(), 1u);
  for (const auto& in : inputs) {
    EXPECT_FALSE(fs::exists(dir + "/" + in)) << in;
  }
  EXPECT_FALSE(fs::exists(dir + "/" + output + ".compact"));
  EXPECT_TRUE(fs::exists(dir + "/" + output));
  for (const auto& [id, samples] : reference) {
    expect_same_samples(st.query(id, {0, util::kDay}), samples,
                        "post-roll-forward, metric " + std::to_string(id));
  }

  // A second open has nothing left to replay.
  auto again = store::Store::open(dir, options);
  EXPECT_EQ(again.recovery().compactions_finished, 0u);
  EXPECT_EQ(again.recovery().compactions_rolled_back, 0u);
  EXPECT_TRUE(again.recovery().clean());
}

}  // namespace
