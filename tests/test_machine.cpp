#include <gtest/gtest.h>

#include <set>

#include "machine/spec.hpp"
#include "machine/topology.hpp"
#include "util/check.hpp"

namespace {

using namespace exawatt;
using machine::SummitSpec;

TEST(Spec, PaperConstants) {
  EXPECT_EQ(SummitSpec::kNodes, 4626);
  EXPECT_EQ(SummitSpec::kCabinets, 257);
  EXPECT_EQ(SummitSpec::kNodesPerCabinet, 18);
  EXPECT_EQ(SummitSpec::kTotalGpus, 27756);
  EXPECT_EQ(SummitSpec::kTotalCpus, 9252);
  EXPECT_EQ(SummitSpec::kCabinets * SummitSpec::kNodesPerCabinet,
            SummitSpec::kNodes);
}

TEST(Spec, IdleNodeSumsToClusterIdle) {
  EXPECT_NEAR(SummitSpec::kNodeIdlePowerW * SummitSpec::kNodes,
              SummitSpec::kClusterIdleW, 0.01 * SummitSpec::kClusterIdleW);
}

TEST(Spec, OverheadIsPositiveAndConsistent) {
  EXPECT_GT(SummitSpec::kNodeOverheadW, 0.0);
  const double idle_dc = SummitSpec::kNodeOverheadW +
                         SummitSpec::kCpusPerNode * SummitSpec::kCpuIdleW +
                         SummitSpec::kGpusPerNode * SummitSpec::kGpuIdleW;
  EXPECT_NEAR(idle_dc / SummitSpec::kPsuEfficiency,
              SummitSpec::kNodeIdlePowerW, 1e-9);
}

TEST(Spec, MachineScaleFraction) {
  EXPECT_DOUBLE_EQ(machine::MachineScale::full().fraction(), 1.0);
  const auto half = machine::MachineScale::small(2313);
  EXPECT_NEAR(half.fraction(), 0.5, 1e-3);
  EXPECT_EQ(half.gpus(), 2313 * 6);
  EXPECT_EQ(machine::MachineScale::small(19).cabinets(), 2);
}

TEST(Topology, FullScaleLayout) {
  machine::Topology topo;
  EXPECT_EQ(topo.nodes(), 4626);
  EXPECT_EQ(topo.cabinets(), 257);
  EXPECT_EQ(topo.msbs(), 5);
  EXPECT_GE(topo.rows() * topo.columns(), topo.cabinets());
}

TEST(Topology, CabinetAssignmentIsContiguous) {
  machine::Topology topo(machine::MachineScale::small(54));
  EXPECT_EQ(topo.cabinet_of(0), 0);
  EXPECT_EQ(topo.cabinet_of(17), 0);
  EXPECT_EQ(topo.cabinet_of(18), 1);
  EXPECT_EQ(topo.cabinet_of(53), 2);
  EXPECT_THROW((void)topo.cabinet_of(54), util::CheckError);
  EXPECT_THROW((void)topo.cabinet_of(-1), util::CheckError);
}

TEST(Topology, FloorPositionRoundTrip) {
  machine::Topology topo;
  const auto p = topo.position_of(1000);
  EXPECT_EQ(p.cabinet, 1000 / 18);
  EXPECT_EQ(p.height, 1000 % 18);
  EXPECT_EQ(p.row * topo.columns() + p.column, p.cabinet);
}

TEST(Topology, MsbPartitionIsCompleteAndDisjoint) {
  machine::Topology topo(machine::MachineScale::small(360));
  std::set<machine::NodeId> seen;
  for (machine::MsbId m = 0; m < topo.msbs(); ++m) {
    for (machine::NodeId n : topo.nodes_of_msb(m)) {
      EXPECT_TRUE(seen.insert(n).second) << "node in two MSBs";
      EXPECT_EQ(topo.msb_of(n), m);
    }
  }
  EXPECT_EQ(seen.size(), 360u);
}

TEST(Topology, MsbLoadsAreBalanced) {
  machine::Topology topo;
  std::size_t lo = SummitSpec::kNodes;
  std::size_t hi = 0;
  for (machine::MsbId m = 0; m < topo.msbs(); ++m) {
    const auto n = topo.nodes_of_msb(m).size();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  // Contiguous blocks: the last MSB may be short by up to a block.
  EXPECT_LE(hi - lo, 18u * 13u);
  EXPECT_GT(lo, 0u);
}

TEST(Topology, NodesOfCabinet) {
  machine::Topology topo(machine::MachineScale::small(40));
  const auto cab2 = topo.nodes_of_cabinet(2);  // partial cabinet: 36..39
  ASSERT_EQ(cab2.size(), 4u);
  EXPECT_EQ(cab2.front(), 36);
  EXPECT_EQ(cab2.back(), 39);
  EXPECT_THROW(topo.nodes_of_cabinet(3), util::CheckError);
}

TEST(Topology, NodeNamesAreDistinctWithinCabinet) {
  machine::Topology topo;
  std::set<std::string> names;
  for (machine::NodeId n : topo.nodes_of_cabinet(7)) {
    EXPECT_TRUE(names.insert(topo.node_name(n)).second);
  }
}

TEST(GpuLocation, SocketAndCoolantPosition) {
  machine::GpuLocation g;
  g.slot = 0;
  EXPECT_EQ(g.socket(), 0);
  EXPECT_EQ(g.coolant_position(), 0);
  g.slot = 2;
  EXPECT_EQ(g.socket(), 0);
  EXPECT_EQ(g.coolant_position(), 2);
  g.slot = 3;
  EXPECT_EQ(g.socket(), 1);
  EXPECT_EQ(g.coolant_position(), 0);
  g.slot = 5;
  EXPECT_EQ(g.socket(), 1);
  EXPECT_EQ(g.coolant_position(), 2);
}

class ScaledTopology : public ::testing::TestWithParam<int> {};

TEST_P(ScaledTopology, InvariantsHoldAtAnyScale) {
  const int nodes = GetParam();
  machine::Topology topo(machine::MachineScale::small(nodes));
  EXPECT_EQ(topo.nodes(), nodes);
  std::size_t total = 0;
  for (machine::MsbId m = 0; m < topo.msbs(); ++m) {
    total += topo.nodes_of_msb(m).size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(nodes));
  for (machine::NodeId n : {0, nodes / 2, nodes - 1}) {
    const auto p = topo.position_of(n);
    EXPECT_GE(p.row, 0);
    EXPECT_LT(p.row, topo.rows());
    EXPECT_GE(p.column, 0);
    EXPECT_LT(p.column, topo.columns());
    EXPECT_GE(p.height, 0);
    EXPECT_LT(p.height, 18);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaledTopology,
                         ::testing::Values(1, 18, 19, 64, 512, 4626));

}  // namespace
