#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ts/frame.hpp"
#include "ts/partition.hpp"
#include "ts/series.hpp"
#include "util/check.hpp"

namespace {

using namespace exawatt;

// ---------------------------------------------------------------- Series

TEST(Series, BasicAccessors) {
  ts::Series s(100, 10, {1.0, 2.0, 3.0});
  EXPECT_EQ(s.start(), 100);
  EXPECT_EQ(s.dt(), 10);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.end(), 130);
  EXPECT_EQ(s.time_at(2), 120);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(Series, RejectsNonPositiveDt) {
  EXPECT_THROW(ts::Series(0, 0, {}), util::CheckError);
  EXPECT_THROW(ts::Series(0, -5, {}), util::CheckError);
}

TEST(Series, IndexOf) {
  ts::Series s(100, 10, {1, 2, 3});
  EXPECT_EQ(s.index_of(99), -1);
  EXPECT_EQ(s.index_of(100), 0);
  EXPECT_EQ(s.index_of(109), 0);
  EXPECT_EQ(s.index_of(110), 1);
  EXPECT_EQ(s.index_of(1000), 90);  // beyond the end still maps to grid
}

TEST(Series, SliceInterior) {
  ts::Series s(0, 10, {0, 1, 2, 3, 4, 5});
  ts::Series cut = s.slice({15, 45});
  EXPECT_EQ(cut.start(), 20);
  ASSERT_EQ(cut.size(), 3u);
  EXPECT_DOUBLE_EQ(cut[0], 2.0);
  EXPECT_DOUBLE_EQ(cut[2], 4.0);
}

TEST(Series, SliceDisjointIsEmpty) {
  ts::Series s(0, 10, {0, 1, 2});
  EXPECT_TRUE(s.slice({100, 200}).empty());
  EXPECT_TRUE(s.slice({-100, -10}).empty());
}

TEST(Series, SliceWholeRange) {
  ts::Series s(0, 10, {0, 1, 2});
  ts::Series cut = s.slice({-100, 100});
  EXPECT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut.start(), 0);
}

TEST(Series, Diff) {
  ts::Series s(0, 10, {1.0, 4.0, 2.0});
  ts::Series d = s.diff();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -2.0);
  EXPECT_TRUE(ts::Series(0, 1, {5.0}).diff().empty());
}

TEST(Series, AddAlignedSameGrid) {
  ts::Series a(0, 10, {1, 1, 1, 1});
  ts::Series b(0, 10, {2, 2, 2, 2});
  a.add_aligned(b, 0.5);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a[i], 2.0);
}

TEST(Series, AddAlignedWithOffset) {
  ts::Series a(0, 10, {0, 0, 0, 0});
  ts::Series b(20, 10, {5, 5, 5, 5});  // extends past a's end
  a.add_aligned(b);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_DOUBLE_EQ(a[2], 5.0);
  EXPECT_DOUBLE_EQ(a[3], 5.0);
}

TEST(Series, AddAlignedRejectsMismatchedGrids) {
  ts::Series a(0, 10, {0, 0});
  ts::Series b(5, 10, {1, 1});   // phase-misaligned
  EXPECT_THROW(a.add_aligned(b), util::CheckError);
  ts::Series c(0, 20, {1});      // different dt
  EXPECT_THROW(a.add_aligned(c), util::CheckError);
}

// ---------------------------------------------------------- Coarsening

TEST(Coarsen, RegularSeriesStatistics) {
  // 1 Hz values 0..19 coarsened into two 10 s windows.
  std::vector<double> v(20);
  std::iota(v.begin(), v.end(), 0.0);
  ts::StatSeries st = ts::coarsen(ts::Series(0, 1, v), 10);
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].count, 10u);
  EXPECT_DOUBLE_EQ(st[0].mean, 4.5);
  EXPECT_DOUBLE_EQ(st[0].min, 0.0);
  EXPECT_DOUBLE_EQ(st[0].max, 9.0);
  EXPECT_DOUBLE_EQ(st[1].mean, 14.5);
  EXPECT_NEAR(st[0].std, 2.8723, 1e-3);
}

TEST(Coarsen, RejectsNonMultipleWindow) {
  ts::Series s(0, 3, {1, 2, 3});
  EXPECT_THROW(ts::coarsen(s, 10), util::CheckError);
}

TEST(Coarsen, SampleAndHoldCoversGaps) {
  // Emit-on-change stream: value 5 at t=0, then 15 at t=25. Sample-and-
  // hold means window [10,20) still sees value 5 even with no emits.
  std::vector<ts::Sample> samples = {{0, 5.0}, {25, 15.0}};
  ts::StatSeries st = ts::coarsen(samples, 10, {0, 40});
  ASSERT_EQ(st.size(), 4u);
  EXPECT_DOUBLE_EQ(st[0].mean, 5.0);
  EXPECT_DOUBLE_EQ(st[1].mean, 5.0);        // held value
  EXPECT_EQ(st[1].count, 10u);
  EXPECT_DOUBLE_EQ(st[2].min, 5.0);         // 5 s of old + 5 s of new
  EXPECT_DOUBLE_EQ(st[2].max, 15.0);
  EXPECT_DOUBLE_EQ(st[2].mean, 10.0);
  EXPECT_DOUBLE_EQ(st[3].mean, 15.0);
}

TEST(Coarsen, SamplesBeforeRangeHold) {
  std::vector<ts::Sample> samples = {{-100, 7.0}};
  ts::StatSeries st = ts::coarsen(samples, 10, {0, 20});
  ASSERT_EQ(st.size(), 2u);
  EXPECT_DOUBLE_EQ(st[0].mean, 7.0);
  EXPECT_DOUBLE_EQ(st[1].mean, 7.0);
}

TEST(Coarsen, EmptyStreamYieldsEmptyWindows) {
  ts::StatSeries st = ts::coarsen(std::vector<ts::Sample>{}, 10, {0, 30});
  ASSERT_EQ(st.size(), 3u);
  for (std::size_t i = 0; i < st.size(); ++i) EXPECT_EQ(st[i].count, 0u);
}

TEST(StatSeries, FieldExtraction) {
  std::vector<ts::Sample> samples = {{0, 1.0}, {10, 3.0}};
  ts::StatSeries st = ts::coarsen(samples, 10, {0, 20});
  ts::Series means = st.field(ts::StatSeries::Field::kMean);
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_DOUBLE_EQ(means[1], 3.0);
  ts::Series counts = st.field(ts::StatSeries::Field::kCount);
  EXPECT_DOUBLE_EQ(counts[0], 10.0);
}

// ------------------------------------------------------------------ Frame

TEST(Frame, SetAndGetColumns) {
  ts::Frame f(0, 10, 3);
  f.set("a", {1, 2, 3});
  f.set("b", {4, 5, 6});
  EXPECT_EQ(f.columns(), 2u);
  EXPECT_TRUE(f.has("a"));
  EXPECT_FALSE(f.has("c"));
  EXPECT_DOUBLE_EQ(f.at("b")[1], 5.0);
  EXPECT_THROW((void)f.at("missing"), util::CheckError);
}

TEST(Frame, ReplaceKeepsOrder) {
  ts::Frame f(0, 10, 2);
  f.set("a", {1, 2});
  f.set("b", {3, 4});
  f.set("a", {9, 9});
  ASSERT_EQ(f.names().size(), 2u);
  EXPECT_EQ(f.names()[0], "a");
  EXPECT_DOUBLE_EQ(f.at("a")[0], 9.0);
}

TEST(Frame, RejectsMismatchedColumn) {
  ts::Frame f(0, 10, 3);
  EXPECT_THROW(f.set("short", {1.0, 2.0}), util::CheckError);
  EXPECT_THROW(f.set("wrong_grid", ts::Series(5, 10, {1, 2, 3})),
               util::CheckError);
}

TEST(Frame, SliceAllColumns) {
  ts::Frame f(0, 10, 4);
  f.set("a", {0, 1, 2, 3});
  f.set("b", {10, 11, 12, 13});
  ts::Frame cut = f.slice({10, 30});
  EXPECT_EQ(cut.rows(), 2u);
  EXPECT_DOUBLE_EQ(cut.at("a")[0], 1.0);
  EXPECT_DOUBLE_EQ(cut.at("b")[1], 12.0);
}

// -------------------------------------------------------------- Partition

TEST(Partition, SplitsRangeEvenly) {
  auto parts = ts::partition_range({0, 100}, 30);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].range.begin, 0);
  EXPECT_EQ(parts[0].range.end, 30);
  EXPECT_EQ(parts[3].range.begin, 90);
  EXPECT_EQ(parts[3].range.end, 100);  // last partition is short
  EXPECT_EQ(parts[2].index, 2u);
}

TEST(Partition, EmptyRange) {
  EXPECT_TRUE(ts::partition_range({50, 50}, 10).empty());
}

TEST(Partition, MapAndReduce) {
  auto parts = ts::partition_range({0, util::kDay}, util::kHour);
  const double total = ts::partitioned_reduce(
      parts, 0.0,
      [](const ts::Partition& p) {
        return static_cast<double>(p.range.duration());
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(util::kDay));
}

TEST(Partition, MapPreservesOrder) {
  auto parts = ts::partition_range({0, 100}, 10);
  auto idx = ts::partitioned_map(
      parts, [](const ts::Partition& p) { return p.index; });
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i);
}

// Property: coarsening a regular series then summing count*mean equals
// the plain sum, for any window that divides the length.
class CoarsenProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoarsenProperty, MassConservation) {
  const int window = GetParam();
  std::vector<double> v(120);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.37) * 100.0;
  }
  const double direct = std::accumulate(v.begin(), v.end(), 0.0);
  ts::StatSeries st = ts::coarsen(ts::Series(0, 1, v), window);
  double via_windows = 0.0;
  for (std::size_t w = 0; w < st.size(); ++w) {
    via_windows += st[w].mean * static_cast<double>(st[w].count);
  }
  EXPECT_NEAR(direct, via_windows, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Windows, CoarsenProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 30, 60, 120));

}  // namespace
