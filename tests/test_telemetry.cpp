#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "telemetry/aggregator.hpp"
#include "telemetry/bmc.hpp"
#include "telemetry/codec.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/node_sampler.hpp"
#include "telemetry/pipeline.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;
namespace tm = exawatt::telemetry;

// ----------------------------------------------------------------- Metric

TEST(Metric, SchemaHasHundredChannels) {
  EXPECT_EQ(tm::metrics_per_node(), 100);
}

TEST(Metric, ChannelRoundTrip) {
  for (int c = 0; c < tm::metrics_per_node(); ++c) {
    const auto info = tm::channel_info(c);
    EXPECT_EQ(tm::channel_of(info.kind, info.index), c);
  }
  EXPECT_THROW((void)tm::channel_info(100), util::CheckError);
  EXPECT_THROW((void)tm::channel_of(tm::MetricKind::kGpuPower, 6),
               util::CheckError);
}

TEST(Metric, MetricIdRoundTrip) {
  const tm::MetricId id = tm::metric_id(1234, 57);
  EXPECT_EQ(tm::metric_node(id), 1234);
  EXPECT_EQ(tm::metric_channel(id), 57);
}

TEST(Metric, NamesAreInformative) {
  const auto name = tm::metric_name(
      tm::metric_id(7, tm::channel_of(tm::MetricKind::kGpuCoreTemp, 3)));
  EXPECT_NE(name.find("node00007"), std::string::npos);
  EXPECT_NE(name.find("gpu3_core_temp"), std::string::npos);
}

// -------------------------------------------------------------------- BMC

TEST(Bmc, FirstPushEmitsEverything) {
  tm::Bmc bmc(3);
  std::vector<std::int32_t> v(100, 7);
  const auto events = bmc.push(100, v);
  EXPECT_EQ(events.size(), 100u);
  EXPECT_EQ(events[0].t, 100);
  EXPECT_EQ(tm::metric_node(events[0].id), 3);
}

TEST(Bmc, EmitOnChangeSuppressesStaticChannels) {
  tm::Bmc bmc(0);
  std::vector<std::int32_t> v(100, 7);
  (void)bmc.push(0, v);
  EXPECT_TRUE(bmc.push(1, v).empty());  // nothing changed
  v[42] = 8;
  const auto events = bmc.push(2, v);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(tm::metric_channel(events[0].id), 42);
  EXPECT_EQ(events[0].value, 8);
  // Value must persist: same value again emits nothing.
  EXPECT_TRUE(bmc.push(3, v).empty());
}

TEST(Bmc, TracksSuppressionStats) {
  tm::Bmc bmc(0);
  std::vector<std::int32_t> v(100, 1);
  (void)bmc.push(0, v);
  (void)bmc.push(1, v);
  EXPECT_EQ(bmc.readings_seen(), 200u);
  EXPECT_EQ(bmc.events_emitted(), 100u);
}

TEST(Bmc, RejectsWrongWidth) {
  tm::Bmc bmc(0);
  std::vector<std::int32_t> v(3, 1);
  EXPECT_THROW((void)bmc.push(0, v), util::CheckError);
}

// -------------------------------------------------------------- Collector

TEST(Collector, DelayWithinBounds) {
  tm::Collector collector({.mean_delay_s = 2.5, .max_delay_s = 5.0});
  std::vector<tm::MetricEvent> events;
  for (int i = 0; i < 5000; ++i) {
    events.push_back({tm::metric_id(i % 37, 0), i / 37, 100});
  }
  const auto arrivals = collector.ingest(events);
  ASSERT_EQ(arrivals.size(), events.size());
  for (const auto& a : arrivals) {
    EXPECT_GE(a.arrival_t, a.event.t);
    EXPECT_LE(a.arrival_t, a.event.t + 5);
  }
  EXPECT_NEAR(collector.mean_delay_observed(), 2.5, 0.2);
}

TEST(Collector, DeterministicPerNodeSecond) {
  tm::Collector c1;
  tm::Collector c2;
  std::vector<tm::MetricEvent> events = {{tm::metric_id(5, 1), 99, 1}};
  EXPECT_EQ(c1.ingest(events)[0].arrival_t, c2.ingest(events)[0].arrival_t);
}

// ------------------------------------------------------------------ Codec

TEST(Codec, RoundTripExact) {
  util::Rng rng(13);
  std::vector<tm::MetricEvent> events;
  for (int i = 0; i < 5000; ++i) {
    events.push_back(
        {tm::metric_id(static_cast<machine::NodeId>(rng.uniform_index(20)),
                       static_cast<int>(rng.uniform_index(100))),
         static_cast<std::int64_t>(rng.uniform_index(3600)),
         static_cast<std::int32_t>(rng.uniform_index(3000)) - 500});
  }
  const auto block = tm::encode_events(events);
  const auto decoded = tm::decode_events(block);
  ASSERT_EQ(decoded.size(), events.size());
  // Decoded is (id, t)-sorted; sort the input the same way and compare.
  std::sort(events.begin(), events.end(),
            [](const tm::MetricEvent& a, const tm::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].id, events[i].id);
    EXPECT_EQ(decoded[i].t, events[i].t);
    EXPECT_EQ(decoded[i].value, events[i].value);
  }
}

TEST(Codec, CompressesSmoothStreams) {
  // 1 Hz power readings wandering by a few watts: the telemetry common
  // case. Expect strong compression vs 16-byte raw records.
  util::Rng rng(14);
  std::vector<tm::MetricEvent> events;
  std::int32_t v = 1200;
  for (int t = 0; t < 20000; ++t) {
    v += static_cast<std::int32_t>(rng.uniform_index(7)) - 3;
    events.push_back({tm::metric_id(0, 0), t, v});
  }
  const auto block = tm::encode_events(events);
  EXPECT_GT(block.compression_ratio(), 6.0);
  EXPECT_TRUE(tm::decode_events(block).size() == events.size());
}

TEST(Codec, EmptyBlock) {
  const auto block = tm::encode_events({});
  EXPECT_EQ(block.events, 0u);
  EXPECT_TRUE(tm::decode_events(block).empty());
}

TEST(Codec, NegativeValuesSurvive) {
  std::vector<tm::MetricEvent> events = {{1, 0, -100},
                                         {1, 1, -50},
                                         {1, 2, 50}};
  const auto decoded = tm::decode_events(tm::encode_events(events));
  EXPECT_EQ(decoded[0].value, -100);
  EXPECT_EQ(decoded[2].value, 50);
}

// Adversarial round-trip property: for any (id, t)-sortable batch, decode
// must be the exact inverse of encode. The helper asserts it field by
// field and returns the block for footprint checks.
namespace {
tm::EncodedBlock expect_codec_round_trip(std::vector<tm::MetricEvent> events) {
  const auto block = tm::encode_events(events);
  const auto decoded = tm::decode_events(block);
  std::sort(events.begin(), events.end(),
            [](const tm::MetricEvent& a, const tm::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  EXPECT_EQ(decoded.size(), events.size());
  for (std::size_t i = 0; i < std::min(decoded.size(), events.size()); ++i) {
    EXPECT_EQ(decoded[i].id, events[i].id) << "event " << i;
    EXPECT_EQ(decoded[i].t, events[i].t) << "event " << i;
    EXPECT_EQ(decoded[i].value, events[i].value) << "event " << i;
  }
  return block;
}
}  // namespace

TEST(Codec, SingleSampleSeries) {
  expect_codec_round_trip({{tm::metric_id(4607, 99), 31536000, -2147483647}});
}

TEST(Codec, LongConstantRunsHitTheRlePath) {
  // One metric at a fixed 1 s cadence and constant value: the RLE on the
  // timestamp deltas collapses the whole series into a single (dt, run)
  // header, leaving only the one-byte zero value-deltas — the codec's
  // best case, approaching its 16x raw-bytes-per-event floor. Must still
  // invert exactly.
  std::vector<tm::MetricEvent> events;
  for (int t = 0; t < 50000; ++t) {
    events.push_back({tm::metric_id(7, 3), t, 1500});
  }
  const auto block = expect_codec_round_trip(events);
  // ~1 byte per event plus a fixed header: the run structure is O(1).
  EXPECT_LT(block.bytes.size(), events.size() + 64);
  EXPECT_GT(block.compression_ratio(), 15.0);
}

TEST(Codec, ExtremeTimestampDeltasNearInt64Limits) {
  // Zigzag folds deltas into unsigned space; |delta| up to 2^61 keeps the
  // fold exact in both directions. Alternate the extremes so consecutive
  // deltas swing the full +/- range.
  const std::int64_t far = std::int64_t{1} << 61;
  std::vector<tm::MetricEvent> events = {
      {1, -far, 10}, {1, -1, 20}, {1, 0, 30}, {1, 1, 40}, {1, far, 50}};
  expect_codec_round_trip(events);
}

TEST(Codec, Int32ExtremeValueSwings) {
  // Value deltas spanning the full int32 range (INT32_MIN <-> INT32_MAX)
  // exercise the widest zigzag varint on the value track.
  const std::int32_t lo = std::numeric_limits<std::int32_t>::min();
  const std::int32_t hi = std::numeric_limits<std::int32_t>::max();
  std::vector<tm::MetricEvent> events;
  for (int t = 0; t < 64; ++t) {
    events.push_back({tm::metric_id(3, 0), t, (t % 2) == 0 ? lo : hi});
  }
  expect_codec_round_trip(events);
}

TEST(Codec, AdversarialMixedBatchFuzz) {
  // Randomized property sweep: many metrics, duplicate timestamps, large
  // id gaps, sign flips — 50 seeds of 200 events each.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed + 1);
    std::vector<tm::MetricEvent> events;
    for (int i = 0; i < 200; ++i) {
      const auto node =
          static_cast<machine::NodeId>(rng.uniform_index(46080));
      const auto channel = static_cast<int>(rng.uniform_index(100));
      const auto t = static_cast<std::int64_t>(rng.uniform_index(1u << 20)) -
                     (1 << 19);
      const auto value = static_cast<std::int32_t>(
          static_cast<std::int64_t>(rng.uniform_index(1ull << 32)) -
          (std::int64_t{1} << 31));
      events.push_back({tm::metric_id(node, channel), t, value});
    }
    expect_codec_round_trip(events);
  }
}

// ----------------------------------------------------------- CodecFastPath
//
// The bulk varint tier vs the byte-at-a-time scalar reference: same wire
// format, bit-identical bytes, identical decode results and identical
// rejection of damaged streams.

namespace {

/// Sorted tie-free batches so both tiers see the same input order (the
/// fast tier's is_sorted skip and the scalar tier's std::sort may break
/// duplicate-(id, t) ties differently; the wire format does not care).
std::vector<tm::MetricEvent> sorted_fuzz_batch(std::uint64_t seed,
                                               std::size_t events) {
  util::Rng rng(seed);
  std::vector<tm::MetricEvent> batch;
  batch.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    batch.push_back(
        {tm::metric_id(static_cast<machine::NodeId>(rng.uniform_index(64)),
                       static_cast<int>(rng.uniform_index(100))),
         static_cast<std::int64_t>(rng.uniform_index(1u << 16)) - (1 << 15),
         static_cast<std::int32_t>(
             static_cast<std::int64_t>(rng.uniform_index(1ull << 32)) -
             (std::int64_t{1} << 31))});
  }
  std::sort(batch.begin(), batch.end(),
            [](const tm::MetricEvent& a, const tm::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  batch.erase(std::unique(batch.begin(), batch.end(),
                          [](const tm::MetricEvent& a,
                             const tm::MetricEvent& b) {
                            return a.id == b.id && a.t == b.t;
                          }),
              batch.end());
  return batch;
}

void expect_events_equal(const std::vector<tm::MetricEvent>& a,
                         const std::vector<tm::MetricEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id) << "event " << i;
    ASSERT_EQ(a[i].t, b[i].t) << "event " << i;
    ASSERT_EQ(a[i].value, b[i].value) << "event " << i;
  }
}

}  // namespace

TEST(CodecFastPath, GoldenBytesArePinned) {
  // Hand-assembled expectation for a tiny tie-free batch — this pins the
  // wire format itself. If this test breaks, the change is a format
  // change, not an optimisation.
  const std::vector<tm::MetricEvent> events = {
      {5, 100, 7}, {5, 101, 7}, {5, 103, 9}, {9, 50, -3}};
  const std::vector<std::uint8_t> expected = {
      0x04,              // 4 events
      0x05, 0x03,        // id delta 5, run of 3
      0xC8, 0x01, 0x01,  // dt 100 (zigzag 200), dt-run 1
      0x0E,              // value delta +7
      0x02, 0x01, 0x00,  // dt 1, run 1, value delta 0
      0x04, 0x01, 0x04,  // dt 2, run 1, value delta +2
      0x04, 0x01,        // id delta 4, run of 1
      0x64, 0x01, 0x05,  // dt 50, run 1, value delta -3 (zigzag 5)
  };
  EXPECT_EQ(tm::encode_events(events).bytes, expected);
  EXPECT_EQ(tm::encode_events_scalar(events).bytes, expected);
  EXPECT_EQ(tm::encode_events_sorted(events).bytes, expected);
}

TEST(CodecFastPath, TiersBitIdenticalOnFuzzedBatches) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto batch = sorted_fuzz_batch(seed, 300);
    const auto fast = tm::encode_events(batch);
    const auto scalar = tm::encode_events_scalar(batch);
    ASSERT_EQ(fast.bytes, scalar.bytes) << "seed " << seed;
    ASSERT_EQ(fast.events, scalar.events) << "seed " << seed;
    expect_events_equal(tm::decode_events(fast),
                        tm::decode_events_scalar(fast));
  }
}

TEST(CodecFastPath, TiersAgreeOnStructuralEdgeCases) {
  std::vector<std::vector<tm::MetricEvent>> cases;
  // Long dt-RLE runs: one metric, constant cadence and value.
  cases.emplace_back();
  for (int t = 0; t < 10000; ++t) {
    cases.back().push_back({tm::metric_id(1, 0), t, 500});
  }
  // Single-event runs: every metric appears exactly once.
  cases.emplace_back();
  for (int n = 0; n < 500; ++n) {
    cases.back().push_back({tm::metric_id(n, 0), 42, n - 250});
  }
  // Negative time deltas within a run are impossible (sorted), but the
  // first delta of each run can be hugely negative; alternate extremes.
  const std::int64_t far = std::int64_t{1} << 60;
  cases.push_back({{1, -far, 10}, {1, 0, -10}, {1, far, 10}, {2, -1, -100}});
  // Maximal value swings exercise the widest value varints.
  cases.emplace_back();
  for (int t = 0; t < 64; ++t) {
    cases.back().push_back({3, t, (t % 2) == 0
                                      ? std::numeric_limits<std::int32_t>::min()
                                      : std::numeric_limits<std::int32_t>::max()});
  }
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const auto fast = tm::encode_events(cases[c]);
    const auto scalar = tm::encode_events_scalar(cases[c]);
    ASSERT_EQ(fast.bytes, scalar.bytes) << "case " << c;
    expect_events_equal(tm::decode_events(fast),
                        tm::decode_events_scalar(fast));
  }
}

TEST(CodecFastPath, SortedInputSkipsTheCopyAndSort) {
  // encode_events on pre-sorted input, encode_events_sorted, and the
  // scalar tier must all emit the same bytes; the unsorted path must too
  // (tie-free input, so sorting is deterministic).
  auto batch = sorted_fuzz_batch(7, 200);
  const auto sorted_bytes = tm::encode_events_sorted(batch).bytes;
  EXPECT_EQ(tm::encode_events(batch).bytes, sorted_bytes);
  std::reverse(batch.begin(), batch.end());
  EXPECT_EQ(tm::encode_events(batch).bytes, sorted_bytes);
}

TEST(CodecFastPath, EncodeSortedRejectsUnsortedInput) {
  EXPECT_THROW((void)tm::encode_events_sorted(
                   std::vector<tm::MetricEvent>{{2, 5, 1}, {1, 5, 1}}),
               util::CheckError);
  EXPECT_THROW((void)tm::encode_events_sorted(
                   std::vector<tm::MetricEvent>{{1, 9, 1}, {1, 5, 1}}),
               util::CheckError);
}

TEST(CodecFastPath, DecodeIntoReusesScratchAcrossBlocks) {
  tm::DecodeScratch scratch;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto batch = sorted_fuzz_batch(seed, 400);
    const auto block = tm::encode_events(batch);
    tm::decode_events_into(block, scratch);
    const auto reference = tm::decode_events(block);
    ASSERT_EQ(scratch.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(scratch.ids[i], reference[i].id);
      ASSERT_EQ(scratch.times[i], reference[i].t);
      ASSERT_EQ(scratch.values[i], reference[i].value);
    }
    EXPECT_GT(scratch.footprint_bytes(), 0u);
  }
}

TEST(CodecFastPath, DecodeFilterMatchesDecodeThenFilter) {
  const auto batch = sorted_fuzz_batch(11, 600);
  const auto block = tm::encode_events(batch);
  const tm::MetricId want = batch[batch.size() / 2].id;
  const util::TimeRange range{-2000, 2000};
  std::vector<ts::Sample> fused;
  EXPECT_EQ(tm::decode_filter_into(block, want, range, fused), batch.size());
  std::vector<ts::Sample> reference;
  for (const auto& ev : tm::decode_events(block)) {
    if (ev.id == want && range.contains(ev.t)) {
      reference.push_back({ev.t, static_cast<double>(ev.value)});
    }
  }
  ASSERT_EQ(fused.size(), reference.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i].t, reference[i].t);
    EXPECT_EQ(fused[i].value, reference[i].value);
  }
}

TEST(CodecFastPath, DecodeSumMatchesDecodeThenBucket) {
  const auto batch = sorted_fuzz_batch(12, 600);
  const auto block = tm::encode_events(batch);
  const tm::MetricId want = batch.front().id;
  const util::TimeRange range{-1000, 1000};
  const util::TimeSec window = 25;
  const std::size_t n = 80;
  std::vector<double> sums(n, 0.0);
  std::vector<std::uint64_t> counts(n, 0);
  EXPECT_EQ(tm::decode_sum_into(block, want, range, window, sums, counts),
            batch.size());
  std::vector<double> ref_sums(n, 0.0);
  std::vector<std::uint64_t> ref_counts(n, 0);
  for (const auto& ev : tm::decode_events(block)) {
    if (ev.id != want || !range.contains(ev.t)) continue;
    const auto w = static_cast<std::size_t>((ev.t - range.begin) / window);
    ref_sums[w] += static_cast<double>(ev.value);
    ++ref_counts[w];
  }
  EXPECT_EQ(sums, ref_sums);
  EXPECT_EQ(counts, ref_counts);
}

TEST(CodecFastPath, TruncationAtEveryPrefixThrows) {
  const auto batch = sorted_fuzz_batch(21, 120);
  const auto block = tm::encode_events(batch);
  for (std::size_t len = 0; len < block.bytes.size(); ++len) {
    tm::EncodedBlock cut;
    cut.events = block.events;
    cut.bytes.assign(block.bytes.begin(),
                     block.bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)tm::decode_events(cut), util::CheckError)
        << "prefix " << len;
    EXPECT_THROW((void)tm::decode_events_scalar(cut), util::CheckError)
        << "prefix " << len;
    tm::DecodeScratch scratch;
    EXPECT_THROW(tm::decode_events_into(cut, scratch), util::CheckError)
        << "prefix " << len;
  }
}

TEST(CodecFastPath, BitFlipsNeverDivergeTheTiers) {
  // Adversarial mutation sweep: flip one bit at every byte position. The
  // decoder may throw (CheckError) or may produce a still-plausible
  // stream — but both tiers must always agree, and nothing may crash
  // (this file runs under ASan/UBSan in the sanitized build).
  const auto batch = sorted_fuzz_batch(31, 80);
  const auto block = tm::encode_events(batch);
  for (std::size_t pos = 0; pos < block.bytes.size(); ++pos) {
    for (const int bit : {0, 3, 7}) {
      tm::EncodedBlock mutated = block;
      mutated.bytes[pos] ^= static_cast<std::uint8_t>(1u << bit);
      std::vector<tm::MetricEvent> fast;
      std::vector<tm::MetricEvent> scalar;
      bool fast_threw = false;
      bool scalar_threw = false;
      try {
        fast = tm::decode_events(mutated);
      } catch (const util::CheckError&) {
        fast_threw = true;
      }
      try {
        scalar = tm::decode_events_scalar(mutated);
      } catch (const util::CheckError&) {
        scalar_threw = true;
      }
      ASSERT_EQ(fast_threw, scalar_threw)
          << "byte " << pos << " bit " << bit;
      if (!fast_threw) expect_events_equal(fast, scalar);
    }
  }
}

TEST(CodecFastPath, ValueEscapingInt32FailsLoudly) {
  // Hand-built stream whose value track accumulates past INT32_MAX: one
  // event whose zigzag value delta decodes to 2^32. Before the narrowing
  // fix this silently truncated; now every tier throws.
  tm::EncodedBlock evil;
  evil.events = 1;
  util::varint_encode(1, evil.bytes);                       // total
  util::varint_encode(1, evil.bytes);                       // id delta
  util::varint_encode(1, evil.bytes);                       // run len
  util::varint_encode(util::zigzag_encode(0), evil.bytes);  // dt
  util::varint_encode(1, evil.bytes);                       // dt run
  util::varint_encode(util::zigzag_encode(std::int64_t{1} << 32),
                      evil.bytes);                          // value delta
  // The event-count sanity bound (total <= bytes) is satisfied: 1 <= 8.
  EXPECT_THROW((void)tm::decode_events(evil), util::CheckError);
  EXPECT_THROW((void)tm::decode_events_scalar(evil), util::CheckError);
  std::vector<ts::Sample> sink;
  EXPECT_THROW((void)tm::decode_filter_into(evil, 1, {-10, 10}, sink),
               util::CheckError);
}

// ---------------------------------------------------------------- Archive

TEST(Archive, QueryFiltersByMetricAndTime) {
  tm::Archive archive;
  std::vector<tm::MetricEvent> events;
  for (int t = 0; t < 100; ++t) {
    events.push_back({tm::metric_id(1, 0), t, t});
    events.push_back({tm::metric_id(2, 0), t, -t});
  }
  archive.append(std::move(events));
  const auto samples = archive.query(tm::metric_id(1, 0), {10, 20});
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[0].t, 10);
  EXPECT_DOUBLE_EQ(samples[0].value, 10.0);
  EXPECT_TRUE(archive.query(tm::metric_id(3, 0), {0, 100}).empty());
}

TEST(Archive, PartitionsByDay) {
  tm::Archive archive;
  archive.append({{1, 100, 5}});
  archive.append({{1, util::kDay + 100, 6}});
  EXPECT_EQ(archive.partitions(), 2u);
  EXPECT_EQ(archive.total_events(), 2u);
  const auto both = archive.query(1, {0, 2 * util::kDay});
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[1].t, util::kDay + 100);
}

// ------------------------------------------------- Sampler and Pipeline

struct PipelineFixture {
  machine::MachineScale scale = machine::MachineScale::small(64);
  std::vector<workload::Job> jobs;
  std::unique_ptr<workload::AllocationIndex> alloc;
  power::FleetVariability fleet{scale, 1};
  thermal::FleetThermal thermals{scale, 2};
  machine::Topology topo{scale};
  facility::MsbModel msb{topo, 3};
  util::TimeRange window{util::kHour, util::kHour + 10 * util::kMinute};

  PipelineFixture() {
    workload::WorkloadConfig cfg;
    cfg.scale = scale;
    cfg.seed = 17;
    workload::JobGenerator gen(cfg);
    jobs = gen.generate({0, util::kDay / 4});
    workload::Scheduler sched(scale);
    sched.run(jobs, util::kDay / 4);
    alloc = std::make_unique<workload::AllocationIndex>(jobs, window,
                                                        scale.nodes);
  }
};

TEST(NodeSampler, ReadingsPlausibleAndMonotoneTime) {
  PipelineFixture fx;
  tm::NodeSampler sampler(0, *fx.alloc, fx.fleet, fx.thermals, fx.msb, 20.0);
  auto r = sampler.sample(fx.window.begin);
  EXPECT_EQ(r.values.size(), 100u);
  EXPECT_GT(r.true_input_w, 300.0);
  EXPECT_LT(r.true_input_w, 3000.0);
  const int ch_temp = tm::channel_of(tm::MetricKind::kGpuCoreTemp, 0);
  EXPECT_GT(r.values[static_cast<std::size_t>(ch_temp)], 15);
  EXPECT_LT(r.values[static_cast<std::size_t>(ch_temp)], 80);
  EXPECT_THROW(sampler.sample(fx.window.begin), util::CheckError);
  EXPECT_NO_THROW(sampler.sample(fx.window.begin + 1));
}

TEST(NodeSampler, TemperatureRelaxesNotJumps) {
  PipelineFixture fx;
  tm::NodeSampler sampler(1, *fx.alloc, fx.fleet, fx.thermals, fx.msb, 20.0);
  double prev = -1.0;
  for (util::TimeSec t = fx.window.begin; t < fx.window.begin + 120; ++t) {
    (void)sampler.sample(t);
    const double now = sampler.temps().gpu_c[0];
    if (prev >= 0.0) {
      EXPECT_LT(std::fabs(now - prev), 4.0);
    }
    prev = now;
  }
}

TEST(Pipeline, EndToEndStatsAndReadback) {
  PipelineFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  const auto stats =
      pipeline.run({fx.window.begin, fx.window.begin + 120});
  EXPECT_EQ(stats.readings, 4u * 120u * 100u);
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.suppression_ratio, 1.5);
  EXPECT_GT(stats.compression_ratio, 2.0);
  EXPECT_GT(stats.mean_delay_s, 1.0);
  EXPECT_LT(stats.mean_delay_s, 4.0);

  // Read one metric back and coarsen: counts must cover the window.
  const auto agg = tm::aggregate_metric(
      pipeline.archive(),
      tm::metric_id(0, tm::channel_of(tm::MetricKind::kInputPower, 0)),
      {fx.window.begin, fx.window.begin + 120});
  ASSERT_EQ(agg.size(), 12u);
  for (std::size_t w = 0; w < agg.size(); ++w) {
    EXPECT_EQ(agg[w].count, 10u) << "window " << w;
    EXPECT_GT(agg[w].mean, 300.0);
  }
}

TEST(Pipeline, ClusterSumAcrossNodes) {
  PipelineFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3, 4, 5};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  (void)pipeline.run({fx.window.begin, fx.window.begin + 60});
  std::vector<double> counts;
  const auto sum = tm::cluster_sum(
      pipeline.archive(), nodes,
      tm::channel_of(tm::MetricKind::kInputPower, 0),
      {fx.window.begin, fx.window.begin + 60}, 10, &counts);
  ASSERT_EQ(sum.size(), 6u);
  for (std::size_t w = 0; w < sum.size(); ++w) {
    EXPECT_DOUBLE_EQ(counts[w], 6.0);
    EXPECT_GT(sum[w], 6.0 * 300.0);  // six nodes above idle floor-ish
  }
}

TEST(Pipeline, RejectsEmptyNodeSet) {
  PipelineFixture fx;
  EXPECT_THROW(tm::Pipeline({}, *fx.alloc, fx.fleet, fx.thermals, fx.msb),
               util::CheckError);
}

}  // namespace
