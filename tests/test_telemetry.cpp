#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "telemetry/aggregator.hpp"
#include "telemetry/bmc.hpp"
#include "telemetry/codec.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/node_sampler.hpp"
#include "telemetry/pipeline.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;
namespace tm = exawatt::telemetry;

// ----------------------------------------------------------------- Metric

TEST(Metric, SchemaHasHundredChannels) {
  EXPECT_EQ(tm::metrics_per_node(), 100);
}

TEST(Metric, ChannelRoundTrip) {
  for (int c = 0; c < tm::metrics_per_node(); ++c) {
    const auto info = tm::channel_info(c);
    EXPECT_EQ(tm::channel_of(info.kind, info.index), c);
  }
  EXPECT_THROW((void)tm::channel_info(100), util::CheckError);
  EXPECT_THROW((void)tm::channel_of(tm::MetricKind::kGpuPower, 6),
               util::CheckError);
}

TEST(Metric, MetricIdRoundTrip) {
  const tm::MetricId id = tm::metric_id(1234, 57);
  EXPECT_EQ(tm::metric_node(id), 1234);
  EXPECT_EQ(tm::metric_channel(id), 57);
}

TEST(Metric, NamesAreInformative) {
  const auto name = tm::metric_name(
      tm::metric_id(7, tm::channel_of(tm::MetricKind::kGpuCoreTemp, 3)));
  EXPECT_NE(name.find("node00007"), std::string::npos);
  EXPECT_NE(name.find("gpu3_core_temp"), std::string::npos);
}

// -------------------------------------------------------------------- BMC

TEST(Bmc, FirstPushEmitsEverything) {
  tm::Bmc bmc(3);
  std::vector<std::int32_t> v(100, 7);
  const auto events = bmc.push(100, v);
  EXPECT_EQ(events.size(), 100u);
  EXPECT_EQ(events[0].t, 100);
  EXPECT_EQ(tm::metric_node(events[0].id), 3);
}

TEST(Bmc, EmitOnChangeSuppressesStaticChannels) {
  tm::Bmc bmc(0);
  std::vector<std::int32_t> v(100, 7);
  (void)bmc.push(0, v);
  EXPECT_TRUE(bmc.push(1, v).empty());  // nothing changed
  v[42] = 8;
  const auto events = bmc.push(2, v);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(tm::metric_channel(events[0].id), 42);
  EXPECT_EQ(events[0].value, 8);
  // Value must persist: same value again emits nothing.
  EXPECT_TRUE(bmc.push(3, v).empty());
}

TEST(Bmc, TracksSuppressionStats) {
  tm::Bmc bmc(0);
  std::vector<std::int32_t> v(100, 1);
  (void)bmc.push(0, v);
  (void)bmc.push(1, v);
  EXPECT_EQ(bmc.readings_seen(), 200u);
  EXPECT_EQ(bmc.events_emitted(), 100u);
}

TEST(Bmc, RejectsWrongWidth) {
  tm::Bmc bmc(0);
  std::vector<std::int32_t> v(3, 1);
  EXPECT_THROW((void)bmc.push(0, v), util::CheckError);
}

// -------------------------------------------------------------- Collector

TEST(Collector, DelayWithinBounds) {
  tm::Collector collector({.mean_delay_s = 2.5, .max_delay_s = 5.0});
  std::vector<tm::MetricEvent> events;
  for (int i = 0; i < 5000; ++i) {
    events.push_back({tm::metric_id(i % 37, 0), i / 37, 100});
  }
  const auto arrivals = collector.ingest(events);
  ASSERT_EQ(arrivals.size(), events.size());
  for (const auto& a : arrivals) {
    EXPECT_GE(a.arrival_t, a.event.t);
    EXPECT_LE(a.arrival_t, a.event.t + 5);
  }
  EXPECT_NEAR(collector.mean_delay_observed(), 2.5, 0.2);
}

TEST(Collector, DeterministicPerNodeSecond) {
  tm::Collector c1;
  tm::Collector c2;
  std::vector<tm::MetricEvent> events = {{tm::metric_id(5, 1), 99, 1}};
  EXPECT_EQ(c1.ingest(events)[0].arrival_t, c2.ingest(events)[0].arrival_t);
}

// ------------------------------------------------------------------ Codec

TEST(Codec, RoundTripExact) {
  util::Rng rng(13);
  std::vector<tm::MetricEvent> events;
  for (int i = 0; i < 5000; ++i) {
    events.push_back(
        {tm::metric_id(static_cast<machine::NodeId>(rng.uniform_index(20)),
                       static_cast<int>(rng.uniform_index(100))),
         static_cast<std::int64_t>(rng.uniform_index(3600)),
         static_cast<std::int32_t>(rng.uniform_index(3000)) - 500});
  }
  const auto block = tm::encode_events(events);
  const auto decoded = tm::decode_events(block);
  ASSERT_EQ(decoded.size(), events.size());
  // Decoded is (id, t)-sorted; sort the input the same way and compare.
  std::sort(events.begin(), events.end(),
            [](const tm::MetricEvent& a, const tm::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].id, events[i].id);
    EXPECT_EQ(decoded[i].t, events[i].t);
    EXPECT_EQ(decoded[i].value, events[i].value);
  }
}

TEST(Codec, CompressesSmoothStreams) {
  // 1 Hz power readings wandering by a few watts: the telemetry common
  // case. Expect strong compression vs 16-byte raw records.
  util::Rng rng(14);
  std::vector<tm::MetricEvent> events;
  std::int32_t v = 1200;
  for (int t = 0; t < 20000; ++t) {
    v += static_cast<std::int32_t>(rng.uniform_index(7)) - 3;
    events.push_back({tm::metric_id(0, 0), t, v});
  }
  const auto block = tm::encode_events(events);
  EXPECT_GT(block.compression_ratio(), 6.0);
  EXPECT_TRUE(tm::decode_events(block).size() == events.size());
}

TEST(Codec, EmptyBlock) {
  const auto block = tm::encode_events({});
  EXPECT_EQ(block.events, 0u);
  EXPECT_TRUE(tm::decode_events(block).empty());
}

TEST(Codec, NegativeValuesSurvive) {
  std::vector<tm::MetricEvent> events = {{1, 0, -100},
                                         {1, 1, -50},
                                         {1, 2, 50}};
  const auto decoded = tm::decode_events(tm::encode_events(events));
  EXPECT_EQ(decoded[0].value, -100);
  EXPECT_EQ(decoded[2].value, 50);
}

// Adversarial round-trip property: for any (id, t)-sortable batch, decode
// must be the exact inverse of encode. The helper asserts it field by
// field and returns the block for footprint checks.
namespace {
tm::EncodedBlock expect_codec_round_trip(std::vector<tm::MetricEvent> events) {
  const auto block = tm::encode_events(events);
  const auto decoded = tm::decode_events(block);
  std::sort(events.begin(), events.end(),
            [](const tm::MetricEvent& a, const tm::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  EXPECT_EQ(decoded.size(), events.size());
  for (std::size_t i = 0; i < std::min(decoded.size(), events.size()); ++i) {
    EXPECT_EQ(decoded[i].id, events[i].id) << "event " << i;
    EXPECT_EQ(decoded[i].t, events[i].t) << "event " << i;
    EXPECT_EQ(decoded[i].value, events[i].value) << "event " << i;
  }
  return block;
}
}  // namespace

TEST(Codec, SingleSampleSeries) {
  expect_codec_round_trip({{tm::metric_id(4607, 99), 31536000, -2147483647}});
}

TEST(Codec, LongConstantRunsHitTheRlePath) {
  // One metric at a fixed 1 s cadence and constant value: the RLE on the
  // timestamp deltas collapses the whole series into a single (dt, run)
  // header, leaving only the one-byte zero value-deltas — the codec's
  // best case, approaching its 16x raw-bytes-per-event floor. Must still
  // invert exactly.
  std::vector<tm::MetricEvent> events;
  for (int t = 0; t < 50000; ++t) {
    events.push_back({tm::metric_id(7, 3), t, 1500});
  }
  const auto block = expect_codec_round_trip(events);
  // ~1 byte per event plus a fixed header: the run structure is O(1).
  EXPECT_LT(block.bytes.size(), events.size() + 64);
  EXPECT_GT(block.compression_ratio(), 15.0);
}

TEST(Codec, ExtremeTimestampDeltasNearInt64Limits) {
  // Zigzag folds deltas into unsigned space; |delta| up to 2^61 keeps the
  // fold exact in both directions. Alternate the extremes so consecutive
  // deltas swing the full +/- range.
  const std::int64_t far = std::int64_t{1} << 61;
  std::vector<tm::MetricEvent> events = {
      {1, -far, 10}, {1, -1, 20}, {1, 0, 30}, {1, 1, 40}, {1, far, 50}};
  expect_codec_round_trip(events);
}

TEST(Codec, Int32ExtremeValueSwings) {
  // Value deltas spanning the full int32 range (INT32_MIN <-> INT32_MAX)
  // exercise the widest zigzag varint on the value track.
  const std::int32_t lo = std::numeric_limits<std::int32_t>::min();
  const std::int32_t hi = std::numeric_limits<std::int32_t>::max();
  std::vector<tm::MetricEvent> events;
  for (int t = 0; t < 64; ++t) {
    events.push_back({tm::metric_id(3, 0), t, (t % 2) == 0 ? lo : hi});
  }
  expect_codec_round_trip(events);
}

TEST(Codec, AdversarialMixedBatchFuzz) {
  // Randomized property sweep: many metrics, duplicate timestamps, large
  // id gaps, sign flips — 50 seeds of 200 events each.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed + 1);
    std::vector<tm::MetricEvent> events;
    for (int i = 0; i < 200; ++i) {
      const auto node =
          static_cast<machine::NodeId>(rng.uniform_index(46080));
      const auto channel = static_cast<int>(rng.uniform_index(100));
      const auto t = static_cast<std::int64_t>(rng.uniform_index(1u << 20)) -
                     (1 << 19);
      const auto value = static_cast<std::int32_t>(
          static_cast<std::int64_t>(rng.uniform_index(1ull << 32)) -
          (std::int64_t{1} << 31));
      events.push_back({tm::metric_id(node, channel), t, value});
    }
    expect_codec_round_trip(events);
  }
}

// ---------------------------------------------------------------- Archive

TEST(Archive, QueryFiltersByMetricAndTime) {
  tm::Archive archive;
  std::vector<tm::MetricEvent> events;
  for (int t = 0; t < 100; ++t) {
    events.push_back({tm::metric_id(1, 0), t, t});
    events.push_back({tm::metric_id(2, 0), t, -t});
  }
  archive.append(std::move(events));
  const auto samples = archive.query(tm::metric_id(1, 0), {10, 20});
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[0].t, 10);
  EXPECT_DOUBLE_EQ(samples[0].value, 10.0);
  EXPECT_TRUE(archive.query(tm::metric_id(3, 0), {0, 100}).empty());
}

TEST(Archive, PartitionsByDay) {
  tm::Archive archive;
  archive.append({{1, 100, 5}});
  archive.append({{1, util::kDay + 100, 6}});
  EXPECT_EQ(archive.partitions(), 2u);
  EXPECT_EQ(archive.total_events(), 2u);
  const auto both = archive.query(1, {0, 2 * util::kDay});
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[1].t, util::kDay + 100);
}

// ------------------------------------------------- Sampler and Pipeline

struct PipelineFixture {
  machine::MachineScale scale = machine::MachineScale::small(64);
  std::vector<workload::Job> jobs;
  std::unique_ptr<workload::AllocationIndex> alloc;
  power::FleetVariability fleet{scale, 1};
  thermal::FleetThermal thermals{scale, 2};
  machine::Topology topo{scale};
  facility::MsbModel msb{topo, 3};
  util::TimeRange window{util::kHour, util::kHour + 10 * util::kMinute};

  PipelineFixture() {
    workload::WorkloadConfig cfg;
    cfg.scale = scale;
    cfg.seed = 17;
    workload::JobGenerator gen(cfg);
    jobs = gen.generate({0, util::kDay / 4});
    workload::Scheduler sched(scale);
    sched.run(jobs, util::kDay / 4);
    alloc = std::make_unique<workload::AllocationIndex>(jobs, window,
                                                        scale.nodes);
  }
};

TEST(NodeSampler, ReadingsPlausibleAndMonotoneTime) {
  PipelineFixture fx;
  tm::NodeSampler sampler(0, *fx.alloc, fx.fleet, fx.thermals, fx.msb, 20.0);
  auto r = sampler.sample(fx.window.begin);
  EXPECT_EQ(r.values.size(), 100u);
  EXPECT_GT(r.true_input_w, 300.0);
  EXPECT_LT(r.true_input_w, 3000.0);
  const int ch_temp = tm::channel_of(tm::MetricKind::kGpuCoreTemp, 0);
  EXPECT_GT(r.values[static_cast<std::size_t>(ch_temp)], 15);
  EXPECT_LT(r.values[static_cast<std::size_t>(ch_temp)], 80);
  EXPECT_THROW(sampler.sample(fx.window.begin), util::CheckError);
  EXPECT_NO_THROW(sampler.sample(fx.window.begin + 1));
}

TEST(NodeSampler, TemperatureRelaxesNotJumps) {
  PipelineFixture fx;
  tm::NodeSampler sampler(1, *fx.alloc, fx.fleet, fx.thermals, fx.msb, 20.0);
  double prev = -1.0;
  for (util::TimeSec t = fx.window.begin; t < fx.window.begin + 120; ++t) {
    (void)sampler.sample(t);
    const double now = sampler.temps().gpu_c[0];
    if (prev >= 0.0) {
      EXPECT_LT(std::fabs(now - prev), 4.0);
    }
    prev = now;
  }
}

TEST(Pipeline, EndToEndStatsAndReadback) {
  PipelineFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  const auto stats =
      pipeline.run({fx.window.begin, fx.window.begin + 120});
  EXPECT_EQ(stats.readings, 4u * 120u * 100u);
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.suppression_ratio, 1.5);
  EXPECT_GT(stats.compression_ratio, 2.0);
  EXPECT_GT(stats.mean_delay_s, 1.0);
  EXPECT_LT(stats.mean_delay_s, 4.0);

  // Read one metric back and coarsen: counts must cover the window.
  const auto agg = tm::aggregate_metric(
      pipeline.archive(),
      tm::metric_id(0, tm::channel_of(tm::MetricKind::kInputPower, 0)),
      {fx.window.begin, fx.window.begin + 120});
  ASSERT_EQ(agg.size(), 12u);
  for (std::size_t w = 0; w < agg.size(); ++w) {
    EXPECT_EQ(agg[w].count, 10u) << "window " << w;
    EXPECT_GT(agg[w].mean, 300.0);
  }
}

TEST(Pipeline, ClusterSumAcrossNodes) {
  PipelineFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3, 4, 5};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  (void)pipeline.run({fx.window.begin, fx.window.begin + 60});
  std::vector<double> counts;
  const auto sum = tm::cluster_sum(
      pipeline.archive(), nodes,
      tm::channel_of(tm::MetricKind::kInputPower, 0),
      {fx.window.begin, fx.window.begin + 60}, 10, &counts);
  ASSERT_EQ(sum.size(), 6u);
  for (std::size_t w = 0; w < sum.size(); ++w) {
    EXPECT_DOUBLE_EQ(counts[w], 6.0);
    EXPECT_GT(sum[w], 6.0 * 300.0);  // six nodes above idle floor-ish
  }
}

TEST(Pipeline, RejectsEmptyNodeSet) {
  PipelineFixture fx;
  EXPECT_THROW(tm::Pipeline({}, *fx.alloc, fx.fleet, fx.thermals, fx.msb),
               util::CheckError);
}

}  // namespace
