#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <set>

#include "failures/generator.hpp"
#include "failures/xid.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;
using failures::XidType;

// -------------------------------------------------------------------- Xid

TEST(Xid, NamesDistinctAndComplete) {
  std::set<std::string> names;
  for (std::size_t t = 0; t < failures::kXidTypeCount; ++t) {
    names.insert(failures::xid_name(static_cast<XidType>(t)));
  }
  EXPECT_EQ(names.size(), failures::kXidTypeCount);
  EXPECT_THROW((void)failures::xid_name(XidType::kCount), util::CheckError);
}

TEST(Xid, ApplicationVsHardwareSplit) {
  // Table 4's double ruler: the top three types are app-attributable.
  EXPECT_TRUE(failures::xid_is_application(XidType::kMemoryPageFault));
  EXPECT_TRUE(failures::xid_is_application(XidType::kGraphicsEngineException));
  EXPECT_TRUE(failures::xid_is_application(XidType::kStoppedProcessing));
  EXPECT_FALSE(failures::xid_is_application(XidType::kDoubleBitError));
  EXPECT_FALSE(failures::xid_is_application(XidType::kNvlinkError));
  EXPECT_FALSE(failures::xid_is_application(XidType::kFallenOffBus));
}

TEST(Xid, ProfilesMatchTable4) {
  const auto& profiles = failures::xid_profiles();
  EXPECT_EQ(profiles.size(), 16u);
  const auto& page_fault =
      profiles[static_cast<std::size_t>(XidType::kMemoryPageFault)];
  EXPECT_DOUBLE_EQ(page_fault.annual_count, 186496);
  EXPECT_DOUBLE_EQ(page_fault.top_node_share, 0.006);
  const auto& nvlink =
      profiles[static_cast<std::size_t>(XidType::kNvlinkError)];
  EXPECT_DOUBLE_EQ(nvlink.annual_count, 8736);
  EXPECT_DOUBLE_EQ(nvlink.top_node_share, 0.969);
  double total = 0.0;
  for (const auto& p : profiles) {
    EXPECT_EQ(p.type, static_cast<XidType>(&p - profiles.data()));
    total += p.annual_count;
  }
  EXPECT_NEAR(total, 251859.0, 1.0);  // the paper's total
}

TEST(Xid, SkewAssignmentsMatchFigure15) {
  const auto& p = failures::xid_profiles();
  using failures::ThermalSkew;
  EXPECT_EQ(p[static_cast<std::size_t>(XidType::kDoubleBitError)].skew,
            ThermalSkew::kRight);
  EXPECT_EQ(p[static_cast<std::size_t>(XidType::kFallenOffBus)].skew,
            ThermalSkew::kRight);
  EXPECT_EQ(
      p[static_cast<std::size_t>(XidType::kMicrocontrollerWarning)].skew,
      ThermalSkew::kRight);
  EXPECT_EQ(p[static_cast<std::size_t>(XidType::kGraphicsEngineFault)].skew,
            ThermalSkew::kLeft);
  EXPECT_EQ(p[static_cast<std::size_t>(XidType::kMemoryPageFault)].skew,
            ThermalSkew::kNone);
}

// -------------------------------------------------------------- Generator

struct Fixture {
  machine::MachineScale scale = machine::MachineScale::small(256);
  std::vector<workload::Job> jobs;
  std::vector<workload::Project> projects;

  explicit Fixture(double weeks = 2.0) {
    workload::WorkloadConfig cfg;
    cfg.scale = scale;
    cfg.seed = 21;
    workload::JobGenerator gen(cfg);
    projects = gen.projects();
    const auto horizon =
        static_cast<util::TimeSec>(weeks * 7.0 * util::kDay);
    jobs = gen.generate({0, horizon});
    workload::Scheduler sched(scale);
    sched.run(jobs, horizon);
  }
};

failures::FailureModelConfig boosted(double rate = 30.0) {
  failures::FailureModelConfig cfg;
  cfg.seed = 5;
  cfg.rate_scale = rate;
  return cfg;
}

TEST(FailureGenerator, EventsLieInsideJobs) {
  Fixture fx;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(5.0));
  const auto log = gen.generate(fx.jobs);
  ASSERT_GT(log.size(), 100u);
  std::map<workload::JobId, const workload::Job*> by_id;
  for (const auto& j : fx.jobs) by_id[j.id] = &j;
  for (const auto& ev : log) {
    ASSERT_TRUE(by_id.count(ev.job));
    const workload::Job* j = by_id[ev.job];
    EXPECT_GE(ev.time, j->start);
    EXPECT_LT(ev.time, j->end);
    EXPECT_GE(ev.slot, 0);
    EXPECT_LT(ev.slot, 6);
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, fx.scale.nodes);
    EXPECT_EQ(ev.project, j->project);
  }
}

TEST(FailureGenerator, SortedByTimeAndDeterministic) {
  Fixture fx;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(5.0));
  const auto a = gen.generate(fx.jobs);
  const auto b = gen.generate(fx.jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(a[i - 1].time, a[i].time);
    }
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST(FailureGenerator, CountsScaleWithExposure) {
  Fixture fx;
  failures::FailureGenerator g1(fx.scale, fx.projects, boosted(10.0));
  failures::FailureGenerator g2(fx.scale, fx.projects, boosted(40.0));
  const double n1 = static_cast<double>(g1.generate(fx.jobs).size());
  const double n2 = static_cast<double>(g2.generate(fx.jobs).size());
  EXPECT_NEAR(n2 / n1, 4.0, 0.4);
}

TEST(FailureGenerator, TypeMixMatchesTable4Proportions) {
  Fixture fx;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(30.0));
  const auto log = gen.generate(fx.jobs);
  std::map<XidType, std::size_t> counts;
  for (const auto& ev : log) ++counts[ev.type];
  // Page faults dominate by the Table 4 ratio (~186k / 32k over engine
  // exceptions); allow generous tolerance for workload-coupling effects.
  const double ratio =
      static_cast<double>(counts[XidType::kMemoryPageFault]) /
      static_cast<double>(counts[XidType::kGraphicsEngineException]);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 12.0);
  EXPECT_GT(counts[XidType::kMemoryPageFault],
            counts[XidType::kStoppedProcessing]);
  EXPECT_GT(counts[XidType::kStoppedProcessing],
            counts[XidType::kNvlinkError]);
}

TEST(FailureGenerator, NvlinkSuperOffender) {
  Fixture fx;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(30.0));
  const auto log = gen.generate(fx.jobs);
  std::size_t nvlink_total = 0;
  std::size_t on_offender = 0;
  for (const auto& ev : log) {
    if (ev.type != XidType::kNvlinkError) continue;
    ++nvlink_total;
    if (ev.node == gen.nvlink_offender()) ++on_offender;
  }
  ASSERT_GT(nvlink_total, 100u);
  EXPECT_NEAR(static_cast<double>(on_offender) /
                  static_cast<double>(nvlink_total),
              0.969, 0.03);
}

TEST(FailureGenerator, DriverErrorsFollowWarningsOnOneNode) {
  Fixture fx(4.0);
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(60.0));
  const auto log = gen.generate(fx.jobs);
  std::size_t driver = 0;
  std::size_t driver_on_node = 0;
  for (const auto& ev : log) {
    if (ev.type != XidType::kDriverErrorHandling) continue;
    ++driver;
    if (ev.node == gen.uc_driver_node()) ++driver_on_node;
  }
  ASSERT_GT(driver, 3u);
  EXPECT_EQ(driver, driver_on_node);  // the paper: 21 of 21 on one node
}

TEST(FailureGenerator, RightSkewTypesHaveRightSkewedZ) {
  Fixture fx(4.0);
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(200.0));
  const auto log = gen.generate(fx.jobs);
  std::map<XidType, std::vector<double>> z;
  for (const auto& ev : log) z[ev.type].push_back(ev.z_score);
  ASSERT_GT(z[XidType::kDoubleBitError].size(), 50u);
  EXPECT_GT(stats::skewness(z[XidType::kDoubleBitError]), 0.5);
  EXPECT_LT(stats::skewness(z[XidType::kGraphicsEngineFault]), -0.2);
  EXPECT_NEAR(stats::skewness(z[XidType::kMemoryPageFault]), 0.0, 0.2);
  // Z-scores are standardized: mean ~0, std ~1.
  EXPECT_NEAR(stats::mean(z[XidType::kMemoryPageFault]), 0.0, 0.1);
  EXPECT_NEAR(stats::stddev(z[XidType::kMemoryPageFault]), 1.0, 0.1);
}

TEST(FailureGenerator, TemperaturesMostlyBelowSixty) {
  Fixture fx;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(30.0));
  const auto log = gen.generate(fx.jobs);
  std::size_t hot = 0;
  for (const auto& ev : log) {
    EXPECT_GT(ev.temp_c, 0.0);
    EXPECT_LT(ev.temp_c, 95.0);
    if (ev.temp_c >= 60.0) ++hot;
  }
  EXPECT_LT(static_cast<double>(hot) / static_cast<double>(log.size()), 0.02);
}

TEST(FailureGenerator, SlotZeroElevated) {
  Fixture fx;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(30.0));
  const auto log = gen.generate(fx.jobs);
  std::array<std::size_t, 6> slots{};
  for (const auto& ev : log) ++slots[static_cast<std::size_t>(ev.slot)];
  EXPECT_GT(slots[0], slots[1]);
  EXPECT_GT(slots[0], slots[5]);
}

TEST(FailureGenerator, PropensityDrivesProjectRates) {
  Fixture fx(4.0);
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted(30.0));
  const auto log = gen.generate(fx.jobs);
  // Node-hours and failure counts per project.
  std::map<std::uint32_t, double> nh;
  std::map<std::uint32_t, double> fails;
  for (const auto& j : fx.jobs) {
    if (j.start >= 0) nh[j.project] += j.node_hours();
  }
  for (const auto& ev : log) fails[ev.project] += 1.0;
  // Correlate rate with propensity across projects with real exposure.
  std::vector<double> rate;
  std::vector<double> prop;
  for (const auto& [p, hours] : nh) {
    if (hours < 100.0) continue;
    rate.push_back(fails[p] / hours);
    prop.push_back(fx.projects[p].failure_propensity);
  }
  ASSERT_GT(rate.size(), 20u);
  double r = 0.0;
  {
    // Spearman-ish via ranks would be ideal; Pearson on logs suffices.
    std::vector<double> lr;
    std::vector<double> lp;
    for (std::size_t i = 0; i < rate.size(); ++i) {
      lr.push_back(std::log(rate[i] + 1e-9));
      lp.push_back(std::log(prop[i]));
    }
    r = stats::pearson(lr, lp);
  }
  EXPECT_GT(r, 0.4);
}

TEST(FailureGenerator, EmptyScheduleYieldsEmptyLog) {
  Fixture fx;
  std::vector<workload::Job> none;
  failures::FailureGenerator gen(fx.scale, fx.projects, boosted());
  EXPECT_TRUE(gen.generate(none).empty());
}

}  // namespace
