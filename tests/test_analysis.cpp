// Focused unit tests of the core analysis functions on *synthetic*
// inputs (no simulation): each analysis must compute exactly what its
// definition says, independent of the models that normally feed it.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure_analysis.hpp"
#include "core/pue_analysis.hpp"
#include "core/thermal_response.hpp"
#include "util/rng.hpp"
#include "workload/domain.hpp"
#include "util/check.hpp"

namespace {

using namespace exawatt;
using failures::GpuFailureEvent;
using failures::XidType;

GpuFailureEvent event(XidType type, machine::NodeId node, int slot,
                      util::TimeSec t = 0, std::uint32_t project = 0,
                      double temp = 30.0, double z = 0.0) {
  GpuFailureEvent ev;
  ev.type = type;
  ev.node = node;
  ev.slot = slot;
  ev.time = t;
  ev.project = project;
  ev.temp_c = temp;
  ev.z_score = z;
  return ev;
}

// ---------------------------------------------------- failure_composition

TEST(FailureComposition, CountsAndTopNodeShare) {
  std::vector<GpuFailureEvent> log;
  for (int i = 0; i < 7; ++i) {
    log.push_back(event(XidType::kMemoryPageFault, i % 2, 0));
  }
  log.push_back(event(XidType::kDoubleBitError, 5, 4));
  const auto comp = core::failure_composition(log, 10);
  ASSERT_EQ(comp.size(), failures::kXidTypeCount);
  // Sorted by count: page faults first.
  EXPECT_EQ(comp[0].type, XidType::kMemoryPageFault);
  EXPECT_EQ(comp[0].count, 7u);
  EXPECT_EQ(comp[0].max_per_node, 4u);  // node 0 got indices 0,2,4,6
  EXPECT_NEAR(comp[0].max_per_node_share, 4.0 / 7.0, 1e-12);
  EXPECT_EQ(comp[1].type, XidType::kDoubleBitError);
  EXPECT_NEAR(comp[1].max_per_node_share, 1.0, 1e-12);
}

TEST(FailureComposition, EmptyLog) {
  const auto comp = core::failure_composition({}, 4);
  for (const auto& row : comp) {
    EXPECT_EQ(row.count, 0u);
    EXPECT_DOUBLE_EQ(row.max_per_node_share, 0.0);
  }
}

// --------------------------------------------------- failure_correlation

TEST(FailureCorrelation, PerfectCoOccurrence) {
  // Types A and B always strike the same nodes; C strikes others.
  std::vector<GpuFailureEvent> log;
  for (machine::NodeId n : {1, 3, 5, 7}) {
    for (int k = 0; k < n; ++k) {
      log.push_back(event(XidType::kDoubleBitError, n, 0));
      log.push_back(event(XidType::kPageRetirementEvent, n, 0));
    }
  }
  log.push_back(event(XidType::kNvlinkError, 2, 0));
  const auto corr = core::failure_correlation(log, 10);
  const auto dbe = static_cast<std::size_t>(XidType::kDoubleBitError);
  const auto pre = static_cast<std::size_t>(XidType::kPageRetirementEvent);
  const auto nvl = static_cast<std::size_t>(XidType::kNvlinkError);
  EXPECT_NEAR(corr.matrix.at(dbe, pre).r, 1.0, 1e-9);
  EXPECT_TRUE(corr.matrix.at(dbe, pre).significant);
  EXPECT_LT(std::fabs(corr.matrix.at(dbe, nvl).r), 0.5);
  // Count vectors exposed for inspection.
  EXPECT_DOUBLE_EQ(corr.per_node_counts[dbe][7], 7.0);
}

// ------------------------------------------------- project_failure_rates

TEST(ProjectRates, NormalizesByNodeHours) {
  std::vector<workload::Job> jobs(2);
  jobs[0].project = 1;
  jobs[0].node_count = 10;
  jobs[0].start = 0;
  jobs[0].end = 10 * util::kHour;  // 100 node-hours
  jobs[0].id = 1;
  jobs[1].project = 2;
  jobs[1].node_count = 100;
  jobs[1].start = 0;
  jobs[1].end = 10 * util::kHour;  // 1000 node-hours
  jobs[1].id = 2;

  std::vector<GpuFailureEvent> log;
  for (int i = 0; i < 10; ++i) {
    auto ev = event(XidType::kMemoryPageFault, 0, 0);
    ev.project = 1;
    log.push_back(ev);
    ev.project = 2;
    log.push_back(ev);
  }
  util::Rng rng(1);
  const auto projects = workload::generate_projects(3, rng);
  const auto rates =
      core::project_failure_rates(log, jobs, projects, false, 10);
  ASSERT_EQ(rates.size(), 2u);
  // Same counts, 10x less exposure -> project 1 ranks first at 10x rate.
  EXPECT_EQ(rates[0].project, 1u);
  EXPECT_NEAR(rates[0].failures_per_node_hour /
                  rates[1].failures_per_node_hour,
              10.0, 1e-9);
}

TEST(ProjectRates, HardwareOnlyFilters) {
  std::vector<workload::Job> jobs(1);
  jobs[0].project = 1;
  jobs[0].node_count = 10;
  jobs[0].start = 0;
  jobs[0].end = util::kHour;
  std::vector<GpuFailureEvent> log;
  auto app = event(XidType::kMemoryPageFault, 0, 0);
  app.project = 1;
  auto hw = event(XidType::kDoubleBitError, 0, 0);
  hw.project = 1;
  log.push_back(app);
  log.push_back(app);
  log.push_back(hw);
  util::Rng rng(1);
  const auto projects = workload::generate_projects(2, rng);
  const auto all = core::project_failure_rates(log, jobs, projects, false, 5);
  const auto hw_only =
      core::project_failure_rates(log, jobs, projects, true, 5);
  EXPECT_NEAR(all[0].failures_per_node_hour, 0.3, 1e-9);
  EXPECT_NEAR(hw_only[0].failures_per_node_hour, 0.1, 1e-9);
}

// ---------------------------------------------------- thermal_extremity

TEST(ThermalExtremity, SkewAndSixtyDegreeShare) {
  std::vector<GpuFailureEvent> log;
  // Right-skewed z sample for DBE; two hot page faults.
  const double zs[] = {-0.5, -0.4, -0.3, -0.2, 0.0, 0.1, 0.3, 2.5, 3.0};
  for (double z : zs) {
    log.push_back(event(XidType::kDoubleBitError, 1, 0, 0, 0, 40.0 + z, z));
  }
  log.push_back(event(XidType::kMemoryPageFault, 2, 0, 0, 0, 65.0, 0.0));
  log.push_back(event(XidType::kMemoryPageFault, 2, 0, 0, 0, 30.0, 0.0));
  const auto ext = core::thermal_extremity(log);
  const auto& dbe = ext[static_cast<std::size_t>(XidType::kDoubleBitError)];
  EXPECT_GT(dbe.z_skewness, 0.5);
  EXPECT_DOUBLE_EQ(dbe.max_temp_c, 43.0);
  const auto& mpf = ext[static_cast<std::size_t>(XidType::kMemoryPageFault)];
  EXPECT_NEAR(mpf.share_above_60c, 0.5, 1e-12);
}

TEST(ThermalExtremity, ExcludesOffenderNode) {
  std::vector<GpuFailureEvent> log;
  for (int i = 0; i < 5; ++i) {
    log.push_back(event(XidType::kNvlinkError, 9, 0));
    log.push_back(event(XidType::kNvlinkError, 1, 0));
  }
  const auto ext = core::thermal_extremity(log, /*exclude_node=*/9);
  const auto& nvl = ext[static_cast<std::size_t>(XidType::kNvlinkError)];
  EXPECT_EQ(nvl.z_scores.size(), 5u);  // only node 1's events remain
}

// -------------------------------------------------------- slot_placement

TEST(SlotPlacement, CountsPerSlot) {
  std::vector<GpuFailureEvent> log;
  for (int s = 0; s < 6; ++s) {
    for (int k = 0; k <= s; ++k) {
      log.push_back(event(XidType::kFallenOffBus, 0, s));
    }
  }
  log.push_back(event(XidType::kDoubleBitError, 0, 0));  // other type
  const auto slots = core::slot_placement(log, XidType::kFallenOffBus);
  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(slots[s], s + 1);
  }
}

// ------------------------------------------------------ spatial_breakdown

TEST(SpatialBreakdown, CoordinatesSumToFilteredTotal) {
  machine::Topology topo(machine::MachineScale::small(360));
  std::vector<GpuFailureEvent> log;
  // 30 events spread over nodes with step 7 (coprime with the 18-node
  // cabinet height, so heights are visited uniformly).
  for (int i = 0; i < 30; ++i) {
    log.push_back(event(XidType::kMemoryPageFault, (i * 7) % 360, 0));
  }
  const auto sb = core::spatial_breakdown(log, topo, false);
  std::uint64_t rows = 0;
  std::uint64_t heights = 0;
  for (auto c : sb.by_row) rows += c;
  for (auto c : sb.by_height) heights += c;
  EXPECT_EQ(rows, 30u);
  EXPECT_EQ(heights, 30u);
  EXPECT_LT(sb.height_peak_ratio, 3.5);
}

// ------------------------------------------------------------ year_trend

TEST(YearTrend, WeeklyBucketsAndSeasonSplit) {
  // Two synthetic weeks: constant 4 MW winter, 8 MW summer-equivalent.
  const std::size_t per_week = 7 * 24 * 6;  // 10-minute windows
  ts::Frame cluster(0, 600, 2 * per_week);
  std::vector<double> p(2 * per_week, 4e6);
  for (std::size_t i = per_week; i < 2 * per_week; ++i) p[i] = 8e6;
  cluster.set("input_power_w", std::move(p));
  ts::Frame cep(0, 600, 2 * per_week);
  std::vector<double> pue(2 * per_week, 1.1);
  cep.set("pue", std::move(pue));
  cep.set("tower_tons", std::vector<double>(2 * per_week, 100.0));
  cep.set("chiller_tons", std::vector<double>(2 * per_week, 0.0));

  const auto trend = core::year_trend(cluster, cep);
  ASSERT_EQ(trend.weeks.size(), 2u);
  EXPECT_NEAR(trend.weeks[0].power_mw.median, 4.0, 1e-9);
  EXPECT_NEAR(trend.weeks[1].power_mw.median, 8.0, 1e-9);
  EXPECT_NEAR(trend.mean_power_mw, 6.0, 1e-9);
  EXPECT_NEAR(trend.mean_pue, 1.1, 1e-9);
  // Energy: 4 MW for a week = 0.672 GWh.
  EXPECT_NEAR(trend.weeks[0].energy_gwh, 4e6 * 7 * 24 * 3600 / 3.6e12, 1e-6);
  EXPECT_DOUBLE_EQ(trend.weeks[0].chiller_share, 0.0);
  EXPECT_DOUBLE_EQ(trend.chiller_weeks_fraction, 0.0);
}

TEST(YearTrend, RejectsMismatchedGrids) {
  ts::Frame cluster(0, 600, 10);
  cluster.set("input_power_w", std::vector<double>(10, 1e6));
  ts::Frame cep(0, 300, 10);
  cep.set("pue", std::vector<double>(10, 1.1));
  cep.set("tower_tons", std::vector<double>(10, 1.0));
  cep.set("chiller_tons", std::vector<double>(10, 0.0));
  EXPECT_THROW(core::year_trend(cluster, cep), util::CheckError);
}

// --------------------------------------------------- cluster_thermal_frame

TEST(ClusterThermal, StepResponseLagsAndSettles) {
  // Synthetic GPU power step: per-GPU 60 W -> 270 W at window 50.
  const int nodes = 100;
  const std::size_t n = 200;
  const double gpus = nodes * 6.0;
  const double cpus = nodes * 2.0;
  ts::Frame cluster(0, 10, n);
  std::vector<double> gpu_w(n, 60.0 * gpus);
  for (std::size_t i = 50; i < n; ++i) gpu_w[i] = 270.0 * gpus;
  cluster.set("gpu_power_w", std::move(gpu_w));
  cluster.set("cpu_power_w", std::vector<double>(n, 120.0 * cpus));
  cluster.set("input_power_w", std::vector<double>(n, 0.0));
  cluster.set("alloc_nodes", std::vector<double>(n, nodes));
  ts::Frame cep(0, 10, n);
  cep.set("mtw_supply_c", std::vector<double>(n, 20.0));

  const auto temps = core::cluster_thermal_frame(cluster, cep, nodes);
  const auto& mean = temps.at("gpu_mean_c");
  const auto& max = temps.at("gpu_max_c");
  // Before the step: settled near 20 + 0.062*60 + chain.
  EXPECT_NEAR(mean[49], 20.0 + 0.062 * 60.0 + 0.004 * 60.0, 0.5);
  // Right after the step the mean has not yet settled...
  EXPECT_LT(mean[51], mean[199] - 1.0);
  // ...and the max keeps rising after the mean has mostly settled.
  const double mean_rise_90 =
      mean[49] + 0.9 * (mean[199] - mean[49]);
  std::size_t mean_settle = 50;
  while (mean_settle < n && mean[mean_settle] < mean_rise_90) ++mean_settle;
  EXPECT_LT(max[mean_settle], max[199] - 0.5)
      << "max should still be climbing when the mean has settled";
  // CPU stays flat (its power never changed).
  const auto& cpu = temps.at("cpu_mean_c");
  EXPECT_NEAR(cpu[49], cpu[199], 0.2);
}

}  // namespace
