#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/text_table.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"
#include "util/welford.hpp"

namespace {

using namespace exawatt;

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(EXA_CHECK(false, "boom"), util::CheckError);
  EXPECT_NO_THROW(EXA_CHECK(true, "fine"));
}

TEST(Check, MessageCarriesContext) {
  try {
    EXA_CHECK(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamsAreDecorrelated) {
  util::Rng master(7);
  util::Rng s1 = master.substream(1, 0);
  util::Rng s2 = master.substream(1, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s1.next() == s2.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SubstreamsIndependentOfDrawOrder) {
  util::Rng master(7);
  util::Rng before = master.substream(3, 9);
  master.next();  // advancing the master must not change substreams
  // (substream derives from captured state, so re-derive from a fresh
  // master with the same seed).
  util::Rng master2(7);
  util::Rng after = master2.substream(3, 9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(before.next(), after.next());
}

TEST(Rng, UniformBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  util::Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalMoments) {
  util::Rng rng(11);
  util::Welford acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  util::Rng rng(13);
  for (double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, ExponentialMeanMatches) {
  util::Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  util::Rng rng(19);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  util::Rng rng(21);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(w), util::CheckError);
}

TEST(Rng, ParetoIsHeavyTailedAboveXm) {
  util::Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(SimTime, CalendarDecomposition) {
  const util::CalendarDate jan1 = util::calendar(0);
  EXPECT_EQ(jan1.month, 1);
  EXPECT_EQ(jan1.day_of_month, 1);
  const util::CalendarDate feb29 = util::calendar(59 * util::kDay);
  EXPECT_EQ(feb29.month, 2);
  EXPECT_EQ(feb29.day_of_month, 29);  // 2020 is a leap year
  const util::CalendarDate dec31 =
      util::calendar(365 * util::kDay + 3 * util::kHour);
  EXPECT_EQ(dec31.month, 12);
  EXPECT_EQ(dec31.day_of_month, 31);
  EXPECT_EQ(dec31.hour, 3);
}

TEST(SimTime, DayOfYearWrapsAcrossYears) {
  EXPECT_EQ(util::day_of_year(0), 0);
  EXPECT_EQ(util::day_of_year(util::kYear), 0);
  EXPECT_EQ(util::day_of_year(util::kYear + util::kDay), 1);
}

TEST(SimTime, SummerWindowMatchesPaper) {
  // July 24 is day-of-year 205 in 2020.
  EXPECT_FALSE(util::in_summer_window(204 * util::kDay));
  EXPECT_TRUE(util::in_summer_window(205 * util::kDay));
  EXPECT_TRUE(util::in_summer_window(273 * util::kDay));
  EXPECT_FALSE(util::in_summer_window(274 * util::kDay));
}

TEST(SimTime, TimeRangeClampAndOverlap) {
  const util::TimeRange a{0, 100};
  const util::TimeRange b{50, 150};
  EXPECT_TRUE(a.overlaps(b));
  const util::TimeRange c = a.clamp(b);
  EXPECT_EQ(c.begin, 50);
  EXPECT_EQ(c.end, 100);
  const util::TimeRange d{200, 300};
  EXPECT_FALSE(a.overlaps(d));
  EXPECT_EQ(a.clamp(d).duration(), 0);
}

TEST(Welford, MatchesDirectComputation) {
  util::Welford acc;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
  EXPECT_NEAR(acc.variance(), 10.0, 1e-12);
}

TEST(Welford, MergeEqualsSingleStream) {
  util::Welford a;
  util::Welford b;
  util::Welford whole;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.1) * 100.0;
    (i < 40 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  util::Welford a;
  a.add(5.0);
  util::Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Varint, RoundTripBoundaries) {
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                       ~0ULL, 1ULL << 63};
  std::vector<std::uint8_t> buf;
  for (auto v : values) util::varint_encode(v, buf);
  std::size_t pos = 0;
  for (auto v : values) {
    std::uint64_t out = 0;
    ASSERT_TRUE(util::varint_decode(buf, pos, out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, DecodeFailsOnTruncation) {
  std::vector<std::uint8_t> buf;
  util::varint_encode(1ULL << 40, buf);
  buf.pop_back();
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(util::varint_decode(buf, pos, out));
}

TEST(Varint, ZigzagRoundTrip) {
  for (std::int64_t v : {0L, -1L, 1L, -1000000L, 1000000L,
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(util::zigzag_decode(util::zigzag_encode(v)), v);
  }
  // Small magnitudes must map to small codes.
  EXPECT_LE(util::zigzag_encode(-3), 8u);
}

TEST(VarintBulk, WriterBytesMatchScalarEncoder) {
  util::Rng rng(99);
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                       ~0ULL, 1ULL << 63};
  for (int i = 0; i < 2000; ++i) {
    values.push_back(rng.next() >> (rng.next() % 64));
  }
  std::vector<std::uint8_t> scalar;
  for (auto v : values) util::varint_encode(v, scalar);
  std::vector<std::uint8_t> bulk;
  {
    util::VarintWriter w(bulk);
    for (auto v : values) w.write(v);
    w.finish();
    EXPECT_EQ(w.size(), bulk.size());
  }
  EXPECT_EQ(bulk, scalar);
}

TEST(VarintBulk, WriterAppendsAfterExistingBytes) {
  std::vector<std::uint8_t> buf = {0xAA, 0xBB};
  {
    util::VarintWriter w(buf);
    w.write(300);
  }  // destructor finishes
  EXPECT_EQ(buf[0], 0xAA);
  EXPECT_EQ(buf[1], 0xBB);
  std::size_t pos = 2;
  std::uint64_t out = 0;
  ASSERT_TRUE(util::varint_decode(buf, pos, out));
  EXPECT_EQ(out, 300u);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintBulk, ReaderMatchesScalarDecoderIncludingTail) {
  // The reader's fast path needs >= 10 bytes of slack; the last few
  // varints of any buffer exercise the checked tail fall-back. Mix sizes
  // so both paths run.
  util::Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.next() >> (rng.next() % 64));
  }
  std::vector<std::uint8_t> buf;
  for (auto v : values) util::varint_encode(v, buf);
  util::VarintReader r(buf);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t out = 0;
    ASSERT_TRUE(r.read(out)) << "varint " << i;
    EXPECT_EQ(out, values[i]) << "varint " << i;
  }
  EXPECT_TRUE(r.done());
}

TEST(VarintBulk, ReaderRejectsTruncationAndOverlong) {
  // Truncated max-length varint (tail path).
  std::vector<std::uint8_t> buf;
  util::varint_encode(~0ULL, buf);
  EXPECT_EQ(buf.size(), util::kMaxVarintBytes);
  buf.pop_back();
  std::uint64_t out = 0;
  EXPECT_FALSE(util::VarintReader(buf).read(out));
  // Overlong: 11 continuation bytes, plenty of slack for the fast path.
  const std::vector<std::uint8_t> overlong(16, 0x80);
  EXPECT_FALSE(util::VarintReader(overlong).read(out));
  std::size_t pos = 0;
  EXPECT_FALSE(util::varint_decode(overlong, pos, out));
  // Ten bytes ending clean is the longest acceptable encoding — both
  // tiers accept it and agree on the value.
  std::vector<std::uint8_t> max_len;
  util::varint_encode(~0ULL, max_len);
  util::VarintReader r(max_len);
  std::uint64_t fast = 0;
  ASSERT_TRUE(r.read(fast));
  EXPECT_TRUE(r.done());
  pos = 0;
  std::uint64_t scalar = 0;
  ASSERT_TRUE(util::varint_decode(max_len, pos, scalar));
  EXPECT_EQ(fast, scalar);
  EXPECT_EQ(fast, ~0ULL);
}

TEST(ThreadPool, RunsAllTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(Parallel, ParallelForCoversIndexSpace) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  util::parallel_for(500, [&](std::size_t i) { ++hits[i]; }, pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ParallelMapPreservesOrder) {
  util::ThreadPool pool(4);
  auto out = util::parallel_map(
      100, [](std::size_t i) { return i * i; }, pool);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, ReduceMatchesSerial) {
  util::ThreadPool pool(4);
  const double total = util::parallel_reduce(
      1000, 0.0, [](std::size_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; }, pool);
  EXPECT_DOUBLE_EQ(total, 999.0 * 1000.0 / 2.0);
}

TEST(TextTable, AlignsAndRejectsBadRows) {
  util::TextTable t({"a", "long_header"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only one"}), util::CheckError);
  const std::string s = t.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(util::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt_si(5.5e6, "W"), "5.50 MW");
  EXPECT_EQ(util::fmt_si(250.0, "W", 0), "250 W");
  EXPECT_EQ(util::fmt_bar(5.0, 10.0, 10), "#####");
  EXPECT_EQ(util::fmt_bar(0.0, 10.0, 10), "");
}

TEST(Csv, EscapesSpecialFields) {
  EXPECT_EQ(util::csv_escape("plain"), "plain");
  EXPECT_EQ(util::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ----------------------------------------------------- clock and backoff

TEST(ManualClock, AdvancesOnlyThroughSleepsAndRecordsThem) {
  util::ManualClock clock(100);
  EXPECT_EQ(clock.now_us(), 100);
  clock.sleep_us(50);
  clock.advance_us(25);
  clock.sleep_us(5);
  EXPECT_EQ(clock.now_us(), 180);
  ASSERT_EQ(clock.sleeps().size(), 2u);
  EXPECT_EQ(clock.sleeps()[0], 50);
  EXPECT_EQ(clock.sleeps()[1], 5);
}

TEST(SteadyClock, IsMonotonic) {
  auto& clock = util::Clock::steady();
  const auto a = clock.now_us();
  const auto b = clock.now_us();
  EXPECT_GE(b, a);
}

TEST(Backoff, DoublesFromBaseAndCaps) {
  util::BackoffPolicy policy;
  policy.base_delay_us = 1'000;
  policy.max_delay_us = 6'000;
  policy.jitter = 0.0;  // deterministic delays
  util::Rng rng(1);
  EXPECT_EQ(util::backoff_delay_us(policy, 1, rng), 1'000);
  EXPECT_EQ(util::backoff_delay_us(policy, 2, rng), 2'000);
  EXPECT_EQ(util::backoff_delay_us(policy, 3, rng), 4'000);
  EXPECT_EQ(util::backoff_delay_us(policy, 4, rng), 6'000);  // capped
  EXPECT_EQ(util::backoff_delay_us(policy, 9, rng), 6'000);
}

TEST(Backoff, JitterStaysWithinTheScaledBand) {
  util::BackoffPolicy policy;
  policy.base_delay_us = 10'000;
  policy.max_delay_us = 10'000;
  policy.jitter = 0.5;
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto d = util::backoff_delay_us(policy, 1, rng);
    EXPECT_GE(d, 5'000);   // scale = 1 - 0.5 * U[0,1) > 0.5
    EXPECT_LE(d, 10'000);
  }
}

TEST(Retry, TransientFailuresRetryOnTheInjectedClock) {
  util::BackoffPolicy policy;
  policy.max_attempts = 4;
  util::ManualClock clock;
  util::Rng rng(3);
  int calls = 0;
  const int got = util::retry_transient(policy, clock, rng, [&] {
    if (++calls < 3) throw util::VfsError("blip", /*transient=*/true);
    return 41 + 1;
  });
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.sleeps().size(), 2u);  // one wait per failed attempt
}

TEST(Retry, NonTransientErrorsRethrowImmediately) {
  util::ManualClock clock;
  util::Rng rng(3);
  int calls = 0;
  EXPECT_THROW(util::retry_transient(util::BackoffPolicy{}, clock, rng,
                                     [&]() -> int {
                                       ++calls;
                                       throw util::VfsError("disk gone");
                                     }),
               util::VfsError);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(Retry, ExhaustedAttemptsRethrowTheLastError) {
  util::BackoffPolicy policy;
  policy.max_attempts = 3;
  util::ManualClock clock;
  util::Rng rng(3);
  int calls = 0;
  EXPECT_THROW(
      util::retry_transient(policy, clock, rng,
                            [&]() -> int {
                              ++calls;
                              throw util::VfsError("still down", true);
                            }),
      util::VfsError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.sleeps().size(), 2u);
}

}  // namespace
