// Integration tests: end-to-end paths across the substrates, each one a
// miniature version of a paper experiment (scaled to stay fast on CI).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/edges.hpp"
#include "core/failure_analysis.hpp"
#include "core/job_features.hpp"
#include "core/pue_analysis.hpp"
#include "core/simulation.hpp"
#include "core/snapshots.hpp"
#include "core/spectral.hpp"
#include "power/job_power.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/pipeline.hpp"
#include "workload/allocation_index.hpp"

namespace {

using namespace exawatt;

core::SimulationConfig itest_config(int nodes, util::TimeSec duration,
                                    util::TimeSec start = 0) {
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(nodes);
  config.seed = 404;
  config.range = {start, start + duration};
  return config;
}

// Mini-F5: a winter week and a summer week must split PUE the right way.
TEST(Integration, SeasonalPueSplit) {
  core::Simulation winter(itest_config(256, util::kWeek, 10 * util::kDay));
  core::Simulation summer(itest_config(256, util::kWeek, 210 * util::kDay));
  auto pue_of = [](core::Simulation& sim, util::TimeRange r) {
    const auto cluster = sim.cluster_frame(r, {.dt = 600});
    const auto cep = sim.cep_frame(cluster);
    double acc = 0.0;
    for (std::size_t i = 0; i < cep.rows(); ++i) acc += cep.at("pue")[i];
    return acc / static_cast<double>(cep.rows());
  };
  const double w = pue_of(winter, winter.config().range);
  const double s = pue_of(summer, summer.config().range);
  EXPECT_LT(w, 1.15);
  EXPECT_GT(s, w + 0.04);
}

// Mini-F4: telemetry-path node sensors vs ground truth at cluster level.
// The telemetry 10 s means, summed across instrumented nodes, must stay
// in phase with the model's true node power while over-reading by the
// calibrated sensor bias.
TEST(Integration, TelemetrySummationTracksTruth) {
  core::Simulation sim(itest_config(64, util::kDay / 2));
  const util::TimeRange window = {2 * util::kHour,
                                  2 * util::kHour + 10 * util::kMinute};
  workload::AllocationIndex alloc(sim.jobs(), window, 64);
  power::FleetVariability fleet(sim.scale(), 11);
  thermal::FleetThermal thermals(sim.scale(), 12);
  machine::Topology topo(sim.scale());
  facility::MsbModel msb(topo, 13);

  std::vector<machine::NodeId> nodes;
  for (machine::NodeId n = 0; n < 16; ++n) nodes.push_back(n);
  telemetry::Pipeline pipeline(nodes, alloc, fleet, thermals, msb);
  (void)pipeline.run(window);
  const auto summation = telemetry::cluster_sum(
      pipeline.archive(), nodes,
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0), window);

  // Ground truth from the job-centric fast path for the same nodes.
  std::vector<double> truth(summation.size(), 0.0);
  for (std::size_t w = 0; w < summation.size(); ++w) {
    const util::TimeSec t = summation.time_at(w) + 5;
    for (machine::NodeId n : nodes) {
      int rank = 0;
      const workload::Job* j = alloc.job_at(n, t, &rank);
      truth[w] += j != nullptr
                      ? power::node_power_detail(*j, rank, t, fleet).input_w
                      : power::idle_node_power(n, fleet).input_w;
    }
  }
  // Over-read by ~10%, in phase.
  double ratio_acc = 0.0;
  for (std::size_t w = 0; w < summation.size(); ++w) {
    ratio_acc += summation[w] / truth[w];
  }
  const double mean_ratio = ratio_acc / static_cast<double>(summation.size());
  EXPECT_GT(mean_ratio, 1.05);
  EXPECT_LT(mean_ratio, 1.18);
}

// Mini-F10+F11: job-level and cluster-level edge analyses agree about
// who swings: removing the deep-swing jobs removes the big cluster edges.
TEST(Integration, ClusterEdgesComeFromSwingyJobs) {
  core::Simulation sim(itest_config(512, 4 * util::kDay));
  const auto cluster = sim.cluster_frame(sim.config().range, {.dt = 10});
  core::SnapshotOptions opts;
  opts.edges.per_node_threshold_w = 100.0;
  // 512-node machine: the largest possible swing is well under 1 MW, so
  // bin amplitudes at 0.25 MW instead of the full-scale 1 MW classes.
  opts.amplitude_bin_mw = 0.25;
  // This test attributes raw edges, so keep the unsteady (periodic) ones
  // the presentation-oriented steadiness filter would drop.
  opts.steady_pre_fraction = 2.0;
  const auto with = core::collect_edge_sets(cluster.at("input_power_w"),
                                            512.0, true, opts);
  std::size_t with_count = 0;
  for (const auto& s : with) with_count += s.at.size();

  // Rebuild the cluster series excluding jobs whose own series has edges.
  std::vector<workload::Job> calm;
  for (const auto& j : sim.jobs()) {
    if (j.start < 0) {
      continue;
    }
    const auto s = power::job_power_series(j, 10);
    if (core::detect_edges(s, static_cast<double>(j.node_count)).empty()) {
      calm.push_back(j);
    }
  }
  const auto calm_frame = power::cluster_power_frame(
      calm, sim.scale(), sim.config().range, {.dt = 10});
  const auto without = core::collect_edge_sets(
      calm_frame.at("input_power_w"), 512.0, true, opts);
  std::size_t without_count = 0;
  int without_max_bin = 0;
  for (const auto& s : without) {
    without_count += s.at.size();
    without_max_bin = std::max(without_max_bin, s.amplitude_mw);
  }
  int with_max_bin = 0;
  for (const auto& s : with) {
    with_max_bin = std::max(with_max_bin, s.amplitude_mw);
  }
  // Swingy jobs contribute cluster edges beyond the start/stop churn that
  // any schedule produces: removing them strictly reduces the count and
  // never enlarges the biggest amplitude class.
  EXPECT_LT(without_count, with_count);
  EXPECT_LE(without_max_bin, with_max_bin);
}

// Mini-F6/F7: class structure flows from generator through scheduler and
// power model into the analysis summaries.
TEST(Integration, ClassStructureSurvivesPipeline) {
  core::Simulation sim(itest_config(512, 5 * util::kDay));
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::map<int, stats::Ecdf*> unused;
  std::map<int, std::vector<double>> maxp;
  for (const auto& s : summaries) {
    maxp[s.sched_class].push_back(s.max_power_w);
  }
  ASSERT_GE(maxp.size(), 4u);
  // Median max power strictly ordered by class.
  double prev = 1e18;
  for (int cls = 1; cls <= 5; ++cls) {
    if (maxp[cls].size() < 5) continue;
    const double med = stats::median(maxp[cls]);
    EXPECT_LT(med, prev) << "class " << cls;
    prev = med;
  }
}

// Mini-T4/F14: the failure log joins back to the job history cleanly.
TEST(Integration, FailureLogJoinsJobHistory) {
  core::SimulationConfig config = itest_config(256, util::kWeek);
  config.failures.rate_scale = 25.0;
  core::Simulation sim(config);
  const auto& log = sim.failure_log();
  ASSERT_GT(log.size(), 200u);

  const auto composition = core::failure_composition(log, 256);
  std::uint64_t total = 0;
  for (const auto& c : composition) total += c.count;
  EXPECT_EQ(total, log.size());

  const auto rates = core::project_failure_rates(log, sim.jobs(),
                                                 sim.projects(), false, 15);
  ASSERT_FALSE(rates.empty());
  EXPECT_GE(rates.front().failures_per_node_hour,
            rates.back().failures_per_node_hour);

  // Every event's project exists and its domain matches the project table.
  for (const auto& ev : log) {
    ASSERT_LT(ev.project, sim.projects().size());
    EXPECT_EQ(ev.domain, sim.projects()[ev.project].domain);
  }
}

// Determinism across the whole stack: identical seeds -> identical
// cluster series, failure logs and summaries.
TEST(Integration, FullStackDeterminism) {
  core::Simulation a(itest_config(128, 2 * util::kDay));
  core::Simulation b(itest_config(128, 2 * util::kDay));
  const auto fa = a.cluster_frame({0, util::kDay}, {.dt = 300});
  const auto fb = b.cluster_frame({0, util::kDay}, {.dt = 300});
  for (std::size_t i = 0; i < fa.rows(); ++i) {
    EXPECT_DOUBLE_EQ(fa.at("input_power_w")[i], fb.at("input_power_w")[i]);
  }
  const auto& la = a.failure_log();
  const auto& lb = b.failure_log();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].time, lb[i].time);
    EXPECT_EQ(la[i].node, lb[i].node);
    EXPECT_DOUBLE_EQ(la[i].temp_c, lb[i].temp_c);
  }
}

// Scale invariance: the edge rule is per-node, so the fraction of jobs
// with edges is roughly stable across machine scales.
TEST(Integration, EdgeRuleScaleInvariant) {
  auto edge_fraction = [](int nodes) {
    core::Simulation sim(itest_config(nodes, 3 * util::kDay));
    std::size_t with = 0;
    std::size_t total = 0;
    for (const auto& j : sim.jobs()) {
      if (j.start < 0) continue;
      ++total;
      const auto s = power::job_power_series(j, 10);
      if (!core::detect_edges(s, static_cast<double>(j.node_count)).empty()) {
        ++with;
      }
    }
    return static_cast<double>(with) / static_cast<double>(total);
  };
  const double small = edge_fraction(128);
  const double large = edge_fraction(512);
  EXPECT_NEAR(small, large, 0.03);
}

}  // namespace
