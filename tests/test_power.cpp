#include <gtest/gtest.h>

#include "power/cluster.hpp"
#include "power/component.hpp"
#include "power/job_power.hpp"
#include "util/check.hpp"
#include "util/welford.hpp"
#include "workload/classes.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;
using machine::SummitSpec;

// -------------------------------------------------------------- Component

TEST(Component, GpuPowerEndpoints) {
  EXPECT_DOUBLE_EQ(power::gpu_power_w(0.0), SummitSpec::kGpuIdleW);
  EXPECT_DOUBLE_EQ(power::gpu_power_w(1.0), SummitSpec::kGpuTdpW);
  EXPECT_DOUBLE_EQ(power::gpu_power_w(-1.0), SummitSpec::kGpuIdleW);
  EXPECT_DOUBLE_EQ(power::gpu_power_w(2.0), SummitSpec::kGpuTdpW);
}

TEST(Component, CpuPowerMonotone) {
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const double p = power::cpu_power_w(u);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Component, IdleNodeInputMatchesSpec) {
  const workload::Utilization idle{};
  EXPECT_NEAR(power::node_input_power_w(idle), SummitSpec::kNodeIdlePowerW,
              1e-9);
}

TEST(Component, FullLoadStaysNearNodeMax) {
  // GPU-saturated, CPU-moderate: the realistic peak mode, ~2.3 kW input.
  const workload::Utilization peak{0.35, 0.96};
  const double p = power::node_input_power_w(peak);
  EXPECT_GT(p, 2200.0);
  EXPECT_LT(p, 2450.0);
}

TEST(Component, InputPowerIncludesPsuLoss) {
  EXPECT_NEAR(power::input_power_w(940.0), 1000.0, 1e-9);
}

TEST(Component, NodeComponentSplitConsistent) {
  const workload::Utilization u{0.5, 0.5};
  const double total_dc = SummitSpec::kNodeOverheadW +
                          power::node_cpu_power_w(u) +
                          power::node_gpu_power_w(u);
  EXPECT_NEAR(power::node_input_power_w(u), power::input_power_w(total_dc),
              1e-9);
}

TEST(FleetVariability, FactorsTightAroundOne) {
  power::FleetVariability fleet(machine::MachineScale::small(256), 7);
  util::Welford acc;
  for (machine::NodeId n = 0; n < 256; ++n) {
    for (int g = 0; g < 6; ++g) acc.add(fleet.gpu_power_factor(n, g));
  }
  EXPECT_NEAR(acc.mean(), 1.0, 0.01);
  EXPECT_NEAR(acc.stddev(), 0.05, 0.01);
  EXPECT_GT(acc.min(), 0.8);
  EXPECT_LT(acc.max(), 1.25);
}

TEST(FleetVariability, DeterministicAndBoundsChecked) {
  power::FleetVariability a(machine::MachineScale::small(64), 7);
  power::FleetVariability b(machine::MachineScale::small(64), 7);
  EXPECT_DOUBLE_EQ(a.gpu_power_factor(10, 3), b.gpu_power_factor(10, 3));
  EXPECT_THROW((void)a.gpu_power_factor(64, 0), util::CheckError);
  EXPECT_THROW((void)a.gpu_power_factor(0, 6), util::CheckError);
  EXPECT_THROW((void)a.cpu_power_factor(0, 2), util::CheckError);
}

// -------------------------------------------------------------- Job power

workload::Job scheduled_job(int nodes, util::TimeSec start,
                            util::TimeSec runtime, const char* app) {
  workload::Job j;
  j.id = 1;
  j.sched_class = workload::class_of(nodes);
  j.node_count = nodes;
  j.start = start;
  j.end = start + runtime;
  j.natural_runtime = runtime;
  j.requested_walltime = runtime;
  j.app = static_cast<std::uint16_t>(workload::app_index(app));
  j.key = 777;
  j.nodes = {{0, nodes}};
  return j;
}

TEST(JobPower, ZeroOutsideInterval) {
  const auto j = scheduled_job(4, 1000, 600, "ml-train");
  EXPECT_DOUBLE_EQ(power::job_utilization(j, 999).gpu, 0.0);
  EXPECT_DOUBLE_EQ(power::job_utilization(j, 1600).gpu, 0.0);
  EXPECT_GT(power::job_utilization(j, 1400).gpu, 0.0);
}

TEST(JobPower, SeriesCoversRuntime) {
  const auto j = scheduled_job(4, 0, 605, "chem-dft");
  const ts::Series s = power::job_power_series(j, 10);
  EXPECT_EQ(s.start(), 0);
  EXPECT_EQ(s.size(), 61u);  // ceil(605/10)
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GT(s[i], 0.0);
    EXPECT_LT(s[i], 4.0 * 2800.0);
  }
}

TEST(JobPower, SeriesScalesWithNodeCount) {
  const auto j1 = scheduled_job(2, 0, 600, "climate-cpu");
  auto j2 = j1;
  j2.node_count = 20;
  j2.nodes = {{0, 20}};
  const ts::Series a = power::job_power_series(j1, 10);
  const ts::Series b = power::job_power_series(j2, 10);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i] / a[i], 10.0, 1e-9);
  }
}

TEST(JobPower, SummaryInvariants) {
  const auto j = scheduled_job(64, 500, 3600, "gw-solver");
  const auto s = power::summarize_job(j);
  EXPECT_EQ(s.node_count, 64);
  EXPECT_GT(s.mean_power_w, 64 * SummitSpec::kNodeIdlePowerW * 0.8);
  EXPECT_GE(s.max_power_w, s.mean_power_w);
  EXPECT_NEAR(s.energy_j, s.mean_power_w * 3600.0, 1e-6 * s.energy_j);
  EXPECT_GE(s.max_gpu_node_w, s.mean_gpu_node_w);
  EXPECT_GE(s.max_cpu_node_w, s.mean_cpu_node_w);
  EXPECT_DOUBLE_EQ(s.runtime_s, 3600.0);
}

TEST(JobPower, UnscheduledJobSummaryIsEmpty) {
  workload::Job j;
  j.node_count = 8;
  j.start = -1;
  const auto s = power::summarize_job(j);
  EXPECT_DOUBLE_EQ(s.energy_j, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_power_w, 0.0);
}

TEST(JobPower, GpuHeavyVsCpuHeavyComponentSplit) {
  const auto gpu_job = scheduled_job(8, 0, 1800, "ml-train");
  const auto cpu_job = scheduled_job(8, 0, 1800, "climate-cpu");
  const auto gs = power::summarize_job(gpu_job);
  const auto cs = power::summarize_job(cpu_job);
  EXPECT_GT(gs.mean_gpu_node_w, gs.mean_cpu_node_w);
  EXPECT_GT(cs.mean_cpu_node_w, 300.0);
  EXPECT_LT(cs.mean_gpu_node_w, 500.0);
  EXPECT_GT(gs.mean_gpu_node_w, 2.0 * cs.mean_gpu_node_w);
}

TEST(JobPower, NodeDetailSumsToInput) {
  power::FleetVariability fleet(machine::MachineScale::small(64), 7);
  const auto j = scheduled_job(8, 0, 600, "chem-dft");
  const auto d = power::node_power_detail(j, 3, 300, fleet);
  const double dc = SummitSpec::kNodeOverheadW + d.cpu_total() + d.gpu_total();
  EXPECT_NEAR(d.input_w, dc / SummitSpec::kPsuEfficiency, 1e-9);
  EXPECT_THROW((void)power::node_power_detail(j, 8, 300, fleet), util::CheckError);
}

TEST(JobPower, NodeDetailVariesAcrossRanks) {
  power::FleetVariability fleet(machine::MachineScale::small(64), 7);
  const auto j = scheduled_job(16, 0, 600, "ml-train");
  util::Welford acc;
  for (int r = 0; r < 16; ++r) {
    acc.add(power::node_power_detail(j, r, 400, fleet).input_w);
  }
  EXPECT_GT(acc.stddev(), 1.0);            // variability exists
  EXPECT_LT(acc.stddev() / acc.mean(), 0.10);  // but stays small
}

TEST(JobPower, IdleNodePowerNearSpec) {
  power::FleetVariability fleet(machine::MachineScale::small(64), 7);
  util::Welford acc;
  for (machine::NodeId n = 0; n < 64; ++n) {
    acc.add(power::idle_node_power(n, fleet).input_w);
  }
  EXPECT_NEAR(acc.mean(), SummitSpec::kNodeIdlePowerW,
              0.02 * SummitSpec::kNodeIdlePowerW);
}

// ---------------------------------------------------------------- Cluster

TEST(Cluster, EmptyScheduleIsIdleFloor) {
  std::vector<workload::Job> none;
  const auto frame = power::cluster_power_frame(
      none, machine::MachineScale::small(100), {0, util::kHour}, {.dt = 60});
  const auto& p = frame.at("input_power_w");
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], 100 * SummitSpec::kNodeIdlePowerW, 1.0);
    EXPECT_DOUBLE_EQ(frame.at("alloc_nodes")[i], 0.0);
  }
}

TEST(Cluster, SingleJobRaisesPowerDuringItsInterval) {
  auto j = scheduled_job(50, 600, 1200, "ml-train");
  std::vector<workload::Job> jobs = {j};
  const auto frame = power::cluster_power_frame(
      jobs, machine::MachineScale::small(100), {0, util::kHour}, {.dt = 60});
  const auto& p = frame.at("input_power_w");
  const double idle = 100 * SummitSpec::kNodeIdlePowerW;
  EXPECT_NEAR(p[0], idle, 1.0);               // before the job
  EXPECT_GT(p[20], idle + 50 * 200.0);        // during (t=1200)
  EXPECT_NEAR(p[40], idle, 1.0);              // after (t=2400)
  EXPECT_DOUBLE_EQ(frame.at("alloc_nodes")[20], 50.0);
}

TEST(Cluster, PartialWindowCoverageIsWeighted) {
  // Job covers exactly half of one 60 s window.
  auto j = scheduled_job(10, 30, 60 * 9 + 30, "debug-interactive");
  std::vector<workload::Job> jobs = {j};
  const auto frame = power::cluster_power_frame(
      jobs, machine::MachineScale::small(20), {0, util::kHour}, {.dt = 60});
  const auto& alloc = frame.at("alloc_nodes");
  EXPECT_NEAR(alloc[0], 5.0, 1e-9);  // half coverage of window 0
  EXPECT_NEAR(alloc[5], 10.0, 1e-9);
}

TEST(Cluster, ComponentColumnsBracketTotals) {
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(256);
  cfg.seed = 3;
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 2});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay / 2);
  const auto frame = power::cluster_power_frame(jobs, cfg.scale,
                                                {0, util::kDay / 2},
                                                {.dt = 300, .subsamples = 2});
  const auto& input = frame.at("input_power_w");
  const auto& cpu = frame.at("cpu_power_w");
  const auto& gpu = frame.at("gpu_power_w");
  for (std::size_t i = 0; i < input.size(); ++i) {
    // DC components + overhead < input (PSU loss) and all positive.
    EXPECT_GT(cpu[i], 0.0);
    EXPECT_GT(gpu[i], 0.0);
    EXPECT_LT(cpu[i] + gpu[i], input[i]);
    // Peak envelope: never above node-max times machine size.
    EXPECT_LT(input[i], 256 * 2900.0);
    EXPECT_GE(input[i], 256 * SummitSpec::kNodeIdlePowerW * 0.99);
  }
}

TEST(Cluster, SubsamplingConvergesToFineGrid) {
  auto j = scheduled_job(32, 0, 3600, "chem-dft");
  std::vector<workload::Job> jobs = {j};
  const auto coarse = power::cluster_power_frame(
      jobs, machine::MachineScale::small(64), {0, 3600},
      {.dt = 600, .subsamples = 16});
  const auto fine = power::cluster_power_frame(
      jobs, machine::MachineScale::small(64), {0, 3600},
      {.dt = 10, .subsamples = 1});
  // Average the fine series into the coarse windows and compare.
  for (std::size_t w = 0; w < coarse.rows(); ++w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 60; ++i) acc += fine.at("input_power_w")[w * 60 + i];
    acc /= 60.0;
    EXPECT_NEAR(coarse.at("input_power_w")[w], acc,
                0.03 * acc);  // subsampling approximation
  }
}

TEST(Cluster, RejectsBadOptions) {
  std::vector<workload::Job> none;
  EXPECT_THROW(power::cluster_power_frame(none, machine::MachineScale::small(8),
                                          {0, 100}, {.dt = 0}),
               util::CheckError);
  EXPECT_THROW(power::cluster_power_frame(none, machine::MachineScale::small(8),
                                          {100, 100}, {.dt = 10}),
               util::CheckError);
}

}  // namespace
