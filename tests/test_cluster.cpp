// src/cluster suite: shard-map codec and routing, the fan_out scatter
// primitive, the merge algebra (window-sum grids, metric runs, query
// stats), partition-parity properties — any shard partition of a feed
// must answer bit-identically to one store holding the union, including
// with one shard dropped — and the rebalance protocol, including a
// crash-at-every-write-point sweep that must never lose or duplicate a
// committed event.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/merge.hpp"
#include "cluster/rebalance.hpp"
#include "cluster/shard_map.hpp"
#include "faultfs/fault.hpp"
#include "net/fanout.hpp"
#include "store/store.hpp"
#include "telemetry/metric.hpp"
#include "ts/series.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/vfs.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("exawatt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

const int kPowerChannel =
    telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);

/// Deterministic random feed on the input-power channel of `n_nodes`
/// nodes: out-of-order timestamps and duplicate instants included, since
/// the merge algebra must be a pure function of the sample multiset.
std::vector<telemetry::MetricEvent> make_events(std::uint64_t seed,
                                                int n_nodes,
                                                std::size_t count,
                                                util::TimeRange span) {
  util::Rng rng(seed);
  std::vector<telemetry::MetricEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto node =
        static_cast<machine::NodeId>(rng.uniform_index(
            static_cast<std::size_t>(n_nodes)));
    const auto t = span.begin + static_cast<util::TimeSec>(rng.uniform_index(
                                    static_cast<std::size_t>(span.duration())));
    events.push_back({telemetry::metric_id(node, kPowerChannel), t,
                      static_cast<std::int32_t>(rng.uniform_index(50'000))});
  }
  return events;
}

store::StoreOptions small_segments(std::size_t events_per_segment = 512) {
  store::StoreOptions options;
  options.segment_events = events_per_segment;
  return options;
}

/// Append `events` in pipeline-sized batches and seal.
void fill_store(store::Store& store,
                const std::vector<telemetry::MetricEvent>& events) {
  std::vector<telemetry::MetricEvent> batch;
  for (const auto& ev : events) {
    batch.push_back(ev);
    if (batch.size() == 256) {
      store.append(std::move(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) store.append(std::move(batch));
  store.flush();
}

bool runs_equal(const std::vector<store::MetricRun>& a,
                const std::vector<store::MetricRun>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].samples.size() != b[i].samples.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a[i].samples.size(); ++j) {
      if (a[i].samples[j].t != b[i].samples[j].t ||
          a[i].samples[j].value != b[i].samples[j].value) {
        return false;
      }
    }
  }
  return true;
}

// ------------------------------------------------------------ shard map

TEST(ShardMap, UniformCoversEveryShard) {
  const auto map = cluster::ShardMap::uniform(3);
  EXPECT_EQ(map.shards(), 3u);
  std::vector<std::size_t> owned(3, 0);
  for (int node = 0; node < 512; ++node) {
    const std::size_t shard =
        map.shard_of(telemetry::metric_id(node, kPowerChannel));
    ASSERT_LT(shard, 3u);
    ++owned[shard];
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(owned[s], 0u) << "shard " << s << " owns no traffic";
  }
}

TEST(ShardMap, RoutingIsDeterministic) {
  const auto a = cluster::ShardMap::uniform(4);
  const auto b = cluster::ShardMap::uniform(4);
  for (int node = 0; node < 64; ++node) {
    const auto id = telemetry::metric_id(node, kPowerChannel);
    EXPECT_EQ(a.shard_of(id), b.shard_of(id));
  }
}

TEST(ShardMap, RejectsDegenerateShardCounts) {
  EXPECT_THROW((void)cluster::ShardMap::uniform(0), util::CheckError);
  EXPECT_THROW(
      (void)cluster::ShardMap::uniform(cluster::ShardMap::kSlots + 1),
      util::CheckError);
}

TEST(ShardMap, AssignSlotMovesTrafficAndBumpsVersion) {
  auto map = cluster::ShardMap::uniform(2);
  const std::uint64_t v0 = map.version();
  for (std::size_t slot = 0; slot < cluster::ShardMap::kSlots; ++slot) {
    map.assign_slot(slot, 1);
  }
  EXPECT_EQ(map.version(), v0 + cluster::ShardMap::kSlots);
  for (int node = 0; node < 64; ++node) {
    EXPECT_EQ(map.shard_of(telemetry::metric_id(node, kPowerChannel)), 1u);
  }
}

TEST(ShardMap, RoundTripsThroughDisk) {
  const std::string dir = scratch_dir("shardmap_roundtrip");
  auto map = cluster::ShardMap::uniform(5);
  map.assign_slot(7, 2);
  map.save(dir + "/SHARDMAP");
  cluster::ShardMap loaded;
  ASSERT_TRUE(cluster::ShardMap::load(dir + "/SHARDMAP", loaded));
  EXPECT_EQ(loaded.encode(), map.encode());
  EXPECT_EQ(loaded.shards(), 5u);
  EXPECT_EQ(loaded.version(), map.version());
}

TEST(ShardMap, LoadMissingReturnsFalse) {
  const std::string dir = scratch_dir("shardmap_missing");
  cluster::ShardMap out;
  EXPECT_FALSE(cluster::ShardMap::load(dir + "/SHARDMAP", out));
}

TEST(ShardMap, CorruptionIsDetected) {
  const std::string dir = scratch_dir("shardmap_corrupt");
  const std::string path = dir + "/SHARDMAP";
  cluster::ShardMap::uniform(3).save(path);
  auto bytes = util::Vfs::real().read_all(path);
  bytes[bytes.size() / 2] ^= 0x01;
  auto out = util::Vfs::real().create(path);
  out->write(bytes);
  out->close();
  cluster::ShardMap loaded;
  EXPECT_THROW((void)cluster::ShardMap::load(path, loaded),
               store::StoreError);
}

TEST(ShardMap, SplitRoutesEveryEventToItsShard) {
  const auto map = cluster::ShardMap::uniform(3);
  const auto events = make_events(0x51u, 12, 2'000, {0, 600});
  const auto parts = map.split(events);
  ASSERT_EQ(parts.size(), 3u);
  std::size_t routed = 0;
  for (std::size_t shard = 0; shard < parts.size(); ++shard) {
    routed += parts[shard].size();
    for (const auto& ev : parts[shard]) {
      EXPECT_EQ(map.shard_of(ev.id), shard);
    }
  }
  EXPECT_EQ(routed, events.size());
  // Replaying the input through the routing must walk each shard's part
  // in order — split is a pure, order-preserving partition (the store's
  // append contract is order-sensitive for day-partition assignment).
  std::vector<std::size_t> cursor(parts.size(), 0);
  for (const auto& ev : events) {
    const std::size_t shard = map.shard_of(ev.id);
    const auto& got = parts[shard][cursor[shard]++];
    ASSERT_EQ(got.id, ev.id);
    ASSERT_EQ(got.t, ev.t);
    ASSERT_EQ(got.value, ev.value);
  }
}

// -------------------------------------------------------------- fan_out

TEST(FanOut, CollectsEveryResultInOrder) {
  const auto results =
      net::fan_out(8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].value, i * i);
  }
}

TEST(FanOut, CapturesExceptionsPerTask) {
  const auto results = net::fan_out(6, [](std::size_t i) -> int {
    if (i % 2 == 1) throw std::runtime_error("boom " + std::to_string(i));
    return static_cast<int>(i);
  });
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_FALSE(results[i].ok);
      EXPECT_EQ(results[i].error, "boom " + std::to_string(i));
    } else {
      EXPECT_TRUE(results[i].ok);
      EXPECT_EQ(results[i].value, static_cast<int>(i));
    }
  }
}

TEST(FanOut, ZeroTasksIsEmpty) {
  EXPECT_TRUE(net::fan_out(0, [](std::size_t) { return 0; }).empty());
}

// ---------------------------------------------------------------- merge

TEST(Merge, WindowSumEmptyTargetAdoptsSource) {
  store::WindowSum from;
  from.start = 100;
  from.window = 10;
  from.sum = {1.0, 2.0};
  from.count = {1, 2};
  store::WindowSum into;
  cluster::merge_window_sum(into, from);
  EXPECT_EQ(into.start, 100);
  EXPECT_EQ(into.sum, from.sum);
  EXPECT_EQ(into.count, from.count);
}

TEST(Merge, WindowSumAddsElementwise) {
  store::WindowSum a;
  a.start = 0;
  a.window = 10;
  a.sum = {1.0, 0.0, 4.0};
  a.count = {1, 0, 2};
  store::WindowSum b = a;
  b.sum = {2.0, 8.0, 0.0};
  b.count = {3, 4, 0};
  cluster::merge_window_sum(a, b);
  EXPECT_EQ(a.sum, (std::vector<double>{3.0, 8.0, 4.0}));
  EXPECT_EQ(a.count, (std::vector<std::uint64_t>{4, 4, 2}));
}

TEST(Merge, WindowSumRejectsMismatchedGrids) {
  store::WindowSum a;
  a.start = 0;
  a.window = 10;
  a.sum = {1.0};
  a.count = {1};
  store::WindowSum b = a;
  b.window = 20;
  EXPECT_THROW(cluster::merge_window_sum(a, b), util::CheckError);
}

TEST(Merge, DuplicateIdsEachGetTheFullRun) {
  // Store::query_many answers every duplicate requested id with the full
  // run; the clustered merge must match, not starve later duplicates.
  const std::string dir = scratch_dir("merge_duplicates");
  const auto events = make_events(0xF6, 4, 1'500, {0, 300});
  store::Store full = store::Store::open(dir + "/full", small_segments());
  fill_store(full, events);
  const auto map = cluster::ShardMap::uniform(2);
  std::vector<std::optional<store::Store>> shards;
  {
    const auto parts = map.split(events);
    for (std::size_t s = 0; s < 2; ++s) {
      shards.emplace_back(store::Store::open(
          dir + "/shard" + std::to_string(s), small_segments()));
      fill_store(*shards.back(), parts[s]);
    }
  }
  std::vector<telemetry::MetricId> ids = full.metrics();
  ASSERT_GE(ids.size(), 2u);
  ids.push_back(ids[0]);  // duplicate the first and last requested ids
  ids.push_back(ids[ids.size() - 2]);
  const util::TimeRange range{0, 300};
  std::vector<std::vector<store::MetricRun>> shard_runs;
  for (const auto& shard : shards) {
    shard_runs.push_back(shard->query_many(ids, range));
  }
  std::vector<const std::vector<store::MetricRun>*> parts;
  for (const auto& r : shard_runs) parts.push_back(&r);
  EXPECT_TRUE(runs_equal(cluster::merge_runs(ids, parts),
                         full.query_many(ids, range)));
}

TEST(Merge, QueryStatsMergeIsAdditive) {
  store::QueryStats a;
  a.lost_segments = 2;
  a.lost_blocks = 1;
  a.cache_hits = 10;
  a.cache_misses = 3;
  store::QueryStats b;
  b.lost_segments = 1;
  b.cache_misses = 4;
  a.merge(b);
  EXPECT_EQ(a.lost_segments, 3u);
  EXPECT_EQ(a.lost_blocks, 1u);
  EXPECT_EQ(a.cache_hits, 10u);
  EXPECT_EQ(a.cache_misses, 7u);
  EXPECT_TRUE(a.degraded());
}

// ----------------------------------------------- partition parity props

/// Any partition of a feed across `n_shards` stores must answer every
/// query shape bit-identically to one store holding the union.
void check_partition_parity(std::uint64_t seed, std::size_t n_shards) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ", shards " +
               std::to_string(n_shards));
  const std::string dir = scratch_dir(
      "partition_" + std::to_string(seed) + "_" + std::to_string(n_shards));
  const int n_nodes = 10;
  const util::TimeRange span{0, 900};
  const auto events = make_events(seed, n_nodes, 6'000, span);
  const auto map = cluster::ShardMap::uniform(n_shards);

  store::Store full = store::Store::open(dir + "/full", small_segments());
  fill_store(full, events);
  std::vector<std::optional<store::Store>> shards;
  {
    const auto parts = map.split(events);
    for (std::size_t s = 0; s < n_shards; ++s) {
      shards.emplace_back(
          store::Store::open(dir + "/shard" + std::to_string(s),
                             small_segments()));
      fill_store(*shards.back(), parts[s]);
    }
  }

  const std::vector<telemetry::MetricId> ids = full.metrics();
  ASSERT_FALSE(ids.empty());
  const util::TimeRange range{100, 800};
  const util::TimeSec window = 10;

  // Scan: per-shard runs reassemble into the unsharded answer.
  std::vector<std::vector<store::MetricRun>> shard_runs;
  shard_runs.reserve(n_shards);
  for (const auto& shard : shards) {
    shard_runs.push_back(shard->query_many(ids, range));
  }
  std::vector<const std::vector<store::MetricRun>*> parts;
  for (const auto& r : shard_runs) parts.push_back(&r);
  EXPECT_TRUE(
      runs_equal(cluster::merge_runs(ids, parts), full.query_many(ids, range)));

  // Window-sum grids: elementwise sums are exact, so shard grouping must
  // not perturb a single bit.
  for (const telemetry::MetricId id : ids) {
    const store::WindowSum direct = full.window_sum(id, range, window);
    store::WindowSum merged;
    for (const auto& shard : shards) {
      cluster::merge_window_sum(merged, shard->window_sum(id, range, window));
    }
    EXPECT_EQ(merged.start, direct.start);
    EXPECT_EQ(merged.window, direct.window);
    EXPECT_EQ(merged.sum, direct.sum);
    EXPECT_EQ(merged.count, direct.count);
  }

  // Cluster roll-up via the coordinator's reduction path: raw scans,
  // merge, coarsen per node, reduce in node order.
  std::vector<machine::NodeId> nodes;
  for (const telemetry::MetricId id : ids) {
    nodes.push_back(telemetry::metric_node(id));
  }
  std::vector<double> want_counts;
  const ts::Series want = store::cluster_sum(full, nodes, kPowerChannel,
                                             range, window, &want_counts);
  const auto merged_runs = cluster::merge_runs(ids, parts);
  std::vector<ts::StatSeries> per_node;
  per_node.reserve(merged_runs.size());
  for (const auto& run : merged_runs) {
    per_node.push_back(ts::coarsen(run.samples, window, range));
  }
  std::vector<double> got_counts;
  const ts::Series got =
      store::reduce_cluster_sum(per_node, range, window, &got_counts);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t w = 0; w < want.size(); ++w) {
    EXPECT_EQ(got[w], want[w]) << "window " << w;
  }
  EXPECT_EQ(got_counts, want_counts);
}

TEST(PartitionParity, TwoShards) { check_partition_parity(0xA1, 2); }
TEST(PartitionParity, ThreeShards) { check_partition_parity(0xB2, 3); }
TEST(PartitionParity, FiveShards) { check_partition_parity(0xC3, 5); }
TEST(PartitionParity, SingleShardDegenerate) {
  check_partition_parity(0xD4, 1);
}

TEST(PartitionParity, OneShardDownIsPartialNeverWrong) {
  // Drop shard 1 from a 3-way partition: the merge over the survivors
  // must bit-match a store built from exactly the surviving events —
  // degraded reads lose data, they never invent it.
  const std::string dir = scratch_dir("partition_degraded");
  const auto events = make_events(0xE5, 9, 5'000, {0, 600});
  const auto map = cluster::ShardMap::uniform(3);
  const auto parts = map.split(events);

  std::vector<telemetry::MetricEvent> survivors_feed;
  for (const auto& ev : parts[0]) survivors_feed.push_back(ev);
  for (const auto& ev : parts[2]) survivors_feed.push_back(ev);

  store::Store survivors =
      store::Store::open(dir + "/survivors", small_segments());
  fill_store(survivors, survivors_feed);
  store::Store shard0 = store::Store::open(dir + "/shard0", small_segments());
  fill_store(shard0, parts[0]);
  store::Store shard2 = store::Store::open(dir + "/shard2", small_segments());
  fill_store(shard2, parts[2]);

  const std::vector<telemetry::MetricId> ids = survivors.metrics();
  const util::TimeRange range{0, 600};
  const auto r0 = shard0.query_many(ids, range);
  const auto r2 = shard2.query_many(ids, range);
  const std::vector<const std::vector<store::MetricRun>*> two = {&r0, &r2};
  EXPECT_TRUE(runs_equal(cluster::merge_runs(ids, two),
                         survivors.query_many(ids, range)));

  for (const telemetry::MetricId id : ids) {
    const store::WindowSum direct = survivors.window_sum(id, range, 10);
    store::WindowSum merged;
    cluster::merge_window_sum(merged, shard0.window_sum(id, range, 10));
    cluster::merge_window_sum(merged, shard2.window_sum(id, range, 10));
    EXPECT_EQ(merged.sum, direct.sum);
    EXPECT_EQ(merged.count, direct.count);
  }
}

// ------------------------------------------------------------ rebalance

struct RebalanceRig {
  std::string dir;
  std::string root_a;
  std::string root_b;
  std::vector<telemetry::MetricEvent> feed_a;
  std::vector<telemetry::MetricEvent> feed_b;
  std::vector<store::MetricRun> reference;
  std::vector<telemetry::MetricId> ids;
  util::TimeRange range{0, 600};
};

/// Two populated stores plus the unsharded reference answer over their
/// union — what every post-rebalance layout must still produce.
RebalanceRig make_rebalance_rig(const std::string& name) {
  RebalanceRig rig;
  rig.dir = scratch_dir(name);
  rig.root_a = rig.dir + "/a";
  rig.root_b = rig.dir + "/b";
  rig.feed_a = make_events(0xAA, 6, 2'000, rig.range);
  rig.feed_b = make_events(0xBB, 6, 1'000, rig.range);
  {
    store::Store a = store::Store::open(rig.root_a, small_segments());
    fill_store(a, rig.feed_a);
    store::Store b = store::Store::open(rig.root_b, small_segments());
    fill_store(b, rig.feed_b);
  }
  std::vector<telemetry::MetricEvent> all = rig.feed_a;
  all.insert(all.end(), rig.feed_b.begin(), rig.feed_b.end());
  store::Store full = store::Store::open(rig.dir + "/full", small_segments());
  fill_store(full, all);
  rig.ids = full.metrics();
  rig.reference = full.query_many(rig.ids, rig.range);
  return rig;
}

/// Reopen both roots and require the union to bit-match the reference.
void expect_union_parity(const RebalanceRig& rig) {
  store::Store a = store::Store::open(rig.root_a, small_segments());
  store::Store b = store::Store::open(rig.root_b, small_segments());
  EXPECT_TRUE(a.recovery().clean());
  EXPECT_TRUE(b.recovery().clean());
  const auto ra = a.query_many(rig.ids, rig.range);
  const auto rb = b.query_many(rig.ids, rig.range);
  const std::vector<const std::vector<store::MetricRun>*> parts = {&ra, &rb};
  EXPECT_TRUE(runs_equal(cluster::merge_runs(rig.ids, parts), rig.reference));
}

TEST(Rebalance, MovesASegmentPreservingUnionParity) {
  auto rig = make_rebalance_rig("rebalance_move");
  std::vector<store::SegmentMeta> dir_a;
  std::uint64_t before_a = 0;
  std::uint64_t before_b = 0;
  {
    store::Store a = store::Store::open(rig.root_a, small_segments());
    store::Store b = store::Store::open(rig.root_b, small_segments());
    dir_a = a.directory();
    before_a = a.total_events();
    before_b = b.total_events();
  }
  ASSERT_GE(dir_a.size(), 2u) << "need sealed segments to move";

  const auto report =
      cluster::rebalance_segment(rig.root_a, rig.root_b, dir_a[0].file);
  EXPECT_EQ(report.events, dir_a[0].events);
  EXPECT_EQ(cluster::recover_migrations({rig.root_a, rig.root_b}), 0u);

  store::Store a = store::Store::open(rig.root_a, small_segments());
  store::Store b = store::Store::open(rig.root_b, small_segments());
  EXPECT_EQ(a.total_events(), before_a - dir_a[0].events);
  EXPECT_EQ(b.total_events(), before_b + dir_a[0].events);
  expect_union_parity(rig);
}

TEST(Rebalance, ResolvesSegmentNameCollisions) {
  auto rig = make_rebalance_rig("rebalance_collision");
  std::string victim;
  {
    store::Store a = store::Store::open(rig.root_a, small_segments());
    store::Store b = store::Store::open(rig.root_b, small_segments());
    // Both stores start numbering at seg0; the first segment names clash.
    for (const auto& seg_a : a.directory()) {
      for (const auto& seg_b : b.directory()) {
        if (seg_a.file == seg_b.file) victim = seg_a.file;
      }
    }
  }
  ASSERT_FALSE(victim.empty()) << "fixture should produce a name clash";
  const auto report =
      cluster::rebalance_segment(rig.root_a, rig.root_b, victim);
  EXPECT_NE(report.to_file, report.from_file);
  EXPECT_EQ(report.to_file, "m" + report.from_file);
  expect_union_parity(rig);
}

TEST(Rebalance, RefusesSegmentsTheSourceDoesNotOwn) {
  const auto rig = make_rebalance_rig("rebalance_unknown");
  EXPECT_THROW((void)cluster::rebalance_segment(rig.root_a, rig.root_b,
                                                "no_such.seg"),
               store::StoreError);
}

TEST(Rebalance, RefusesToStartOverAPendingJournal) {
  const auto rig = make_rebalance_rig("rebalance_pending");
  std::string victim;
  {
    store::Store a = store::Store::open(rig.root_a, small_segments());
    victim = a.directory().front().file;
  }
  cluster::MigrationJournal j;
  j.from_root = rig.root_a;
  j.to_root = rig.root_b;
  j.to_file = "stale.seg";
  j.meta.file = "stale.seg";
  j.save(util::Vfs::real());
  EXPECT_THROW(
      (void)cluster::rebalance_segment(rig.root_a, rig.root_b, victim),
      store::StoreError);
  // recover_migrations clears the copying-state journal; the move then
  // proceeds.
  EXPECT_EQ(cluster::recover_migrations({rig.root_a, rig.root_b}), 1u);
  (void)cluster::rebalance_segment(rig.root_a, rig.root_b, victim);
  expect_union_parity(rig);
}

TEST(MigrationJournal, RoundTripsAndRejectsCorruption) {
  cluster::MigrationJournal j;
  j.from_root = "/data/shard 0";  // spaces in roots must survive
  j.to_root = "/data/shard 2";
  j.to_file = "mseg00000003_day00001.seg";
  j.meta = {"seg00000003_day00001.seg", 1, 4096, 12345, 86400, 90000};
  j.state = cluster::MigrationJournal::State::kFlipped;
  const auto decoded = cluster::MigrationJournal::decode(j.encode());
  EXPECT_EQ(decoded.encode(), j.encode());
  EXPECT_EQ(decoded.from_root, j.from_root);
  EXPECT_EQ(decoded.to_file, j.to_file);
  EXPECT_EQ(decoded.meta.events, 4096u);
  EXPECT_TRUE(decoded.state == cluster::MigrationJournal::State::kFlipped);

  std::string text = j.encode();
  text[text.size() / 3] ^= 0x01;
  EXPECT_THROW((void)cluster::MigrationJournal::decode(text),
               store::StoreError);
}

TEST(Rebalance, CrashAtEveryWritePointNeverLosesACommittedEvent) {
  // Rehearse once to count the write points of a full move, then crash
  // at each in turn. After recover_migrations (the "next process start"),
  // the union of both stores must bit-match the reference — the move
  // either rolled back or completed, and no event was lost or duplicated
  // at any crash site.
  std::string victim;
  std::uint64_t write_points = 0;
  {
    auto rig = make_rebalance_rig("rebalance_rehearsal");
    {
      store::Store a = store::Store::open(rig.root_a, small_segments());
      victim = a.directory().front().file;
    }
    faultfs::FaultVfs counter(util::Vfs::real());
    (void)cluster::rebalance_segment(rig.root_a, rig.root_b, victim,
                                     &counter);
    write_points = counter.stats().write_ops;
    expect_union_parity(rig);
  }
  ASSERT_GT(write_points, 0u);

  for (std::uint64_t k = 0; k < write_points; ++k) {
    SCOPED_TRACE("crash at write op " + std::to_string(k));
    auto rig = make_rebalance_rig("rebalance_crash");
    faultfs::FaultVfs chaos(util::Vfs::real(),
                            faultfs::FaultPlan().crash_at_write(k));
    bool died = false;
    try {
      (void)cluster::rebalance_segment(rig.root_a, rig.root_b, victim,
                                       &chaos);
    } catch (const std::exception&) {
      died = true;
    }
    ASSERT_TRUE(died);
    (void)cluster::recover_migrations({rig.root_a, rig.root_b});
    EXPECT_FALSE(
        util::Vfs::real().exists(cluster::journal_path(rig.root_a)));
    EXPECT_FALSE(
        util::Vfs::real().exists(cluster::journal_path(rig.root_b)));
    expect_union_parity(rig);
  }
}

}  // namespace
