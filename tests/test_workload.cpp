#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/check.hpp"
#include "workload/allocation_index.hpp"
#include "workload/app_model.hpp"
#include "workload/classes.hpp"
#include "workload/domain.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;

// ---------------------------------------------------------------- Classes

TEST(Classes, Table3Bands) {
  EXPECT_EQ(workload::class_of(4608), 1);
  EXPECT_EQ(workload::class_of(2765), 1);
  EXPECT_EQ(workload::class_of(2764), 2);
  EXPECT_EQ(workload::class_of(922), 2);
  EXPECT_EQ(workload::class_of(921), 3);
  EXPECT_EQ(workload::class_of(92), 3);
  EXPECT_EQ(workload::class_of(91), 4);
  EXPECT_EQ(workload::class_of(46), 4);
  EXPECT_EQ(workload::class_of(45), 5);
  EXPECT_EQ(workload::class_of(1), 5);
  EXPECT_THROW((void)workload::class_of(0), util::CheckError);
}

TEST(Classes, Walltimes) {
  EXPECT_EQ(workload::scheduling_class(1).max_walltime, 24 * util::kHour);
  EXPECT_EQ(workload::scheduling_class(3).max_walltime, 12 * util::kHour);
  EXPECT_EQ(workload::scheduling_class(5).max_walltime, 2 * util::kHour);
  EXPECT_THROW((void)workload::scheduling_class(0), util::CheckError);
  EXPECT_THROW((void)workload::scheduling_class(6), util::CheckError);
}

TEST(Classes, ScaledBandsAreDisjointAndOrdered) {
  for (int machine_nodes : {64, 128, 512, 1024}) {
    int prev_min = machine_nodes + 1;
    for (int cls = 1; cls <= 5; ++cls) {
      const auto band = workload::scaled_class(cls, machine_nodes);
      EXPECT_GE(band.min_nodes, 1);
      EXPECT_LE(band.min_nodes, band.max_nodes);
      EXPECT_LT(band.max_nodes, prev_min)
          << "bands overlap at scale " << machine_nodes << " class " << cls;
      prev_min = band.min_nodes;
    }
    EXPECT_EQ(workload::scaled_class(5, machine_nodes).min_nodes, 1);
  }
}

TEST(Classes, FullScaleIsIdentity) {
  for (int cls = 1; cls <= 5; ++cls) {
    const auto band = workload::scaled_class(cls, 4626);
    EXPECT_EQ(band.min_nodes, workload::scheduling_class(cls).min_nodes);
    EXPECT_EQ(band.max_nodes, workload::scheduling_class(cls).max_nodes);
  }
}

// -------------------------------------------------------------- App model

TEST(AppModel, CatalogSanity) {
  const auto& apps = workload::app_catalog();
  EXPECT_GE(apps.size(), 10u);
  std::set<std::string> names;
  for (const auto& a : apps) {
    EXPECT_TRUE(names.insert(a.name).second) << "duplicate app " << a.name;
    EXPECT_GT(a.phases.period_s, 0.0);
    EXPECT_GT(a.phases.duty, 0.0);
    EXPECT_LT(a.phases.duty, 1.0);
    EXPECT_LE(a.phases.gpu_low, a.phases.gpu_high);
    EXPECT_LE(a.phases.cpu_low, a.phases.cpu_high);
  }
  EXPECT_EQ(workload::app_index("gw-solver"), 0u);
  EXPECT_THROW((void)workload::app_index("no-such-app"), util::CheckError);
}

TEST(AppModel, UtilizationBounded) {
  for (const auto& app : workload::app_catalog()) {
    for (util::TimeSec t : {0, 13, 100, 777, 5000, 90000}) {
      const auto u = workload::evaluate_app(app, t, 12345);
      EXPECT_GE(u.cpu, 0.0);
      EXPECT_LE(u.cpu, 1.0);
      EXPECT_GE(u.gpu, 0.0);
      EXPECT_LE(u.gpu, 1.0);
    }
  }
}

TEST(AppModel, DeterministicPerJobKey) {
  const auto& app = workload::app_catalog()[0];
  for (util::TimeSec t : {100, 500, 1000}) {
    const auto a = workload::evaluate_app(app, t, 42);
    const auto b = workload::evaluate_app(app, t, 42);
    EXPECT_DOUBLE_EQ(a.gpu, b.gpu);
    EXPECT_DOUBLE_EQ(a.cpu, b.cpu);
  }
}

TEST(AppModel, DifferentKeysShiftPhase) {
  const auto& app = workload::app_catalog()[0];
  int differing = 0;
  for (util::TimeSec t = 100; t < 400; t += 10) {
    if (std::abs(workload::evaluate_app(app, t, 1).gpu -
                 workload::evaluate_app(app, t, 2).gpu) > 0.05) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 3);
}

TEST(AppModel, StartupRampFromIdle) {
  const auto& app = workload::app_catalog()[workload::app_index("ml-train")];
  const auto early = workload::evaluate_app(app, 1, 7);
  const auto late = workload::evaluate_app(app, app.startup_s + 400, 7);
  EXPECT_LT(early.gpu, 0.15);
  EXPECT_GT(late.gpu, 0.3);
}

TEST(AppModel, PhaseOscillationVisitsBothLevels) {
  const auto& app = workload::app_catalog()[workload::app_index("md-replica")];
  double lo = 1.0;
  double hi = 0.0;
  for (util::TimeSec t = 1000; t < 1000 + 3 * 240; ++t) {
    const auto u = workload::evaluate_app(app, t, 99);
    lo = std::min(lo, u.gpu);
    hi = std::max(hi, u.gpu);
  }
  EXPECT_LT(lo, 0.15);
  EXPECT_GT(hi, 0.8);
}

TEST(AppModel, CheckpointDipIsModest) {
  // The dip must stay below the 868 W/node edge threshold (paper: 96.9%
  // of jobs are edge-free); see DESIGN.md calibration notes.
  const auto& app = workload::app_catalog()[workload::app_index("ml-train")];
  double lo = 1.0;
  double hi = 0.0;
  for (util::TimeSec t = 500; t < 500 + 2 * app.checkpoint_every_s; ++t) {
    const auto u = workload::evaluate_app(app, t, 5);
    lo = std::min(lo, u.gpu);
    hi = std::max(hi, u.gpu);
  }
  // Swing in watts: 6 GPUs, ~260 W dynamic range, PSU conversion.
  const double swing_w = (hi - lo) * 6.0 * 260.0 / 0.94;
  EXPECT_LT(swing_w, 868.0);
}

// ----------------------------------------------------------------- Domains

TEST(Domains, CatalogReferencesValidApps) {
  const auto& apps = workload::app_catalog();
  for (const auto& d : workload::domain_catalog()) {
    EXPECT_FALSE(d.app_mix.empty());
    for (const auto& [app, weight] : d.app_mix) {
      EXPECT_LT(app, apps.size());
      EXPECT_GT(weight, 0.0);
    }
  }
}

TEST(Domains, ProjectGeneration) {
  util::Rng rng(3);
  const auto projects = workload::generate_projects(100, rng);
  ASSERT_EQ(projects.size(), 100u);
  std::set<std::size_t> domains;
  for (const auto& p : projects) {
    EXPECT_LT(p.domain, workload::domain_catalog().size());
    EXPECT_LT(p.preferred_app, workload::app_catalog().size());
    EXPECT_GT(p.failure_propensity, 0.0);
    domains.insert(p.domain);
  }
  EXPECT_GT(domains.size(), 5u);  // spread across the catalog
}

TEST(Domains, ProjectsDeterministic) {
  util::Rng a(3);
  util::Rng b(3);
  const auto p1 = workload::generate_projects(20, a);
  const auto p2 = workload::generate_projects(20, b);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(p1[i].domain, p2[i].domain);
    EXPECT_EQ(p1[i].preferred_app, p2[i].preferred_app);
    EXPECT_DOUBLE_EQ(p1[i].failure_propensity, p2[i].failure_propensity);
  }
}

// --------------------------------------------------------------- Generator

workload::WorkloadConfig small_config() {
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::small(512);
  cfg.seed = 11;
  return cfg;
}

TEST(Generator, SubmissionsSortedAndInRange) {
  workload::JobGenerator gen(small_config());
  const auto jobs = gen.generate({0, util::kDay});
  ASSERT_GT(jobs.size(), 100u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit, 0);
    EXPECT_LT(jobs[i].submit, util::kDay);
    if (i > 0) {
      EXPECT_LE(jobs[i - 1].submit, jobs[i].submit);
    }
    EXPECT_EQ(jobs[i].id, i + 1);
  }
}

TEST(Generator, Deterministic) {
  workload::JobGenerator g1(small_config());
  workload::JobGenerator g2(small_config());
  const auto a = g1.generate({0, util::kDay});
  const auto b = g2.generate({0, util::kDay});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].node_count, b[i].node_count);
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].key, b[i].key);
  }
}

TEST(Generator, NodeCountsRespectClassBands) {
  workload::JobGenerator gen(small_config());
  util::Rng rng(5);
  for (int cls = 1; cls <= 5; ++cls) {
    const auto band = workload::scaled_class(cls, 512);
    for (int i = 0; i < 500; ++i) {
      const int n = gen.sample_node_count(cls, rng);
      EXPECT_GE(n, band.min_nodes) << "class " << cls;
      EXPECT_LE(n, band.max_nodes) << "class " << cls;
    }
  }
}

TEST(Generator, RuntimeRespectsFloorAndCapAfterScheduling) {
  workload::JobGenerator gen(small_config());
  util::Rng rng(6);
  for (int cls = 1; cls <= 5; ++cls) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_GE(gen.sample_runtime(cls, rng), 120);
    }
  }
}

TEST(Generator, Class5MassAtWallLimit) {
  workload::WorkloadConfig cfg = small_config();
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, 2 * util::kDay});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, 2 * util::kDay);
  std::size_t class5 = 0;
  std::size_t at_cap = 0;
  for (const auto& j : jobs) {
    if (j.sched_class != 5 || j.start < 0) continue;
    ++class5;
    if (j.runtime() == 2 * util::kHour) ++at_cap;
  }
  ASSERT_GT(class5, 500u);
  // The paper sees a visible probability mass at the 120-minute limit.
  EXPECT_GT(static_cast<double>(at_cap) / static_cast<double>(class5), 0.01);
}

TEST(Generator, ClassCountOrdering) {
  workload::JobGenerator gen(small_config());
  const auto jobs = gen.generate({0, 2 * util::kDay});
  std::map<int, std::size_t> per_class;
  for (const auto& j : jobs) ++per_class[j.sched_class];
  // Small jobs dominate the count (class 5 >> class 4 > ... > class 1).
  EXPECT_GT(per_class[5], per_class[4]);
  EXPECT_GT(per_class[4], per_class[1]);
  EXPECT_GT(per_class[3], per_class[1]);
}

// --------------------------------------------------------------- Scheduler

TEST(Scheduler, AllocatesDisjointNodes) {
  workload::WorkloadConfig cfg = small_config();
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 4});
  workload::Scheduler sched(cfg.scale);
  const auto stats = sched.run(jobs, util::kDay);
  EXPECT_GT(stats.scheduled, 0u);

  // At any sampled instant, running jobs occupy disjoint nodes.
  for (util::TimeSec t : {util::kHour, 3 * util::kHour, 6 * util::kHour}) {
    std::set<machine::NodeId> busy;
    for (const auto& j : jobs) {
      if (j.start < 0 || !j.interval().contains(t)) continue;
      for (const auto& r : j.nodes) {
        for (int i = 0; i < r.count; ++i) {
          EXPECT_TRUE(busy.insert(r.first + i).second)
              << "node double-booked at t=" << t;
        }
      }
    }
    EXPECT_LE(busy.size(), 512u);
  }
}

TEST(Scheduler, AllocationMatchesNodeCount) {
  workload::WorkloadConfig cfg = small_config();
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 4});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay);
  for (const auto& j : jobs) {
    if (j.start < 0) continue;
    int total = 0;
    for (const auto& r : j.nodes) total += r.count;
    EXPECT_EQ(total, j.node_count);
    EXPECT_GE(j.start, j.submit);
    EXPECT_GT(j.end, j.start);
    EXPECT_LE(j.runtime(), j.requested_walltime);
  }
}

TEST(Scheduler, RespectsHorizon) {
  workload::WorkloadConfig cfg = small_config();
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay);
  for (const auto& j : jobs) {
    if (j.start >= 0) {
      EXPECT_LE(j.end, util::kDay);
    }
  }
}

TEST(Scheduler, BackfillImprovesUtilization) {
  workload::WorkloadConfig cfg = small_config();
  cfg.arrival_scale = 1.3;  // push into contention
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay});
  workload::Scheduler sched(cfg.scale);
  const auto stats = sched.run(jobs, util::kDay);
  EXPECT_GT(stats.backfilled, 0u);
  EXPECT_GT(stats.utilization, 0.5);
}

TEST(Scheduler, RejectsUnsortedJobs) {
  workload::Job a;
  a.submit = 100;
  a.node_count = 1;
  a.natural_runtime = 600;
  a.requested_walltime = 600;
  workload::Job b = a;
  b.submit = 50;
  std::vector<workload::Job> jobs = {a, b};
  workload::Scheduler sched(machine::MachineScale::small(8));
  EXPECT_THROW(sched.run(jobs, util::kDay), util::CheckError);
}

TEST(Scheduler, JobLargerThanMachineNeverStarts) {
  workload::Job a;
  a.submit = 0;
  a.node_count = 100;
  a.natural_runtime = 600;
  a.requested_walltime = 600;
  std::vector<workload::Job> jobs = {a};
  workload::Scheduler sched(machine::MachineScale::small(8));
  const auto stats = sched.run(jobs, util::kDay);
  EXPECT_EQ(stats.scheduled, 0u);
  EXPECT_EQ(stats.unscheduled, 1u);
  EXPECT_EQ(jobs[0].start, -1);
}

// --------------------------------------------------------- AllocationIndex

TEST(AllocationIndex, LooksUpRunningJob) {
  workload::WorkloadConfig cfg = small_config();
  workload::JobGenerator gen(cfg);
  auto jobs = gen.generate({0, util::kDay / 4});
  workload::Scheduler sched(cfg.scale);
  sched.run(jobs, util::kDay);

  const util::TimeRange window = {util::kHour, 5 * util::kHour};
  workload::AllocationIndex index(jobs, window, cfg.scale.nodes);

  // Cross-check the index against a brute-force scan.
  std::size_t matches = 0;
  for (util::TimeSec t = window.begin; t < window.end; t += util::kHour) {
    for (machine::NodeId n = 0; n < 64; ++n) {
      const workload::Job* expected = nullptr;
      for (const auto& j : jobs) {
        if (j.start < 0 || !j.interval().contains(t)) continue;
        for (const auto& r : j.nodes) {
          if (n >= r.first && n < r.first + r.count) expected = &j;
        }
      }
      int rank = -1;
      const workload::Job* got = index.job_at(n, t, &rank);
      EXPECT_EQ(got, expected) << "node " << n << " t " << t;
      if (got != nullptr) {
        ++matches;
        EXPECT_EQ(got->node_at(rank), n);
      }
    }
  }
  EXPECT_GT(matches, 0u);
}

TEST(AllocationIndex, IdleNodeReturnsNull) {
  std::vector<workload::Job> none;
  workload::AllocationIndex index(none, {0, util::kHour}, 16);
  EXPECT_EQ(index.job_at(3, 100), nullptr);
  EXPECT_TRUE(index.spans(3).empty());
}

TEST(Job, NodeListAndNodeAt) {
  workload::Job j;
  j.node_count = 5;
  j.nodes = {{10, 2}, {20, 3}};
  const auto list = j.node_list();
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list[0], 10);
  EXPECT_EQ(list[1], 11);
  EXPECT_EQ(list[2], 20);
  EXPECT_EQ(j.node_at(0), 10);
  EXPECT_EQ(j.node_at(4), 22);
  EXPECT_EQ(j.node_at(5), -1);
}

TEST(Job, NodeHours) {
  workload::Job j;
  j.node_count = 10;
  j.start = 0;
  j.end = 2 * util::kHour;
  EXPECT_DOUBLE_EQ(j.node_hours(), 20.0);
}

}  // namespace
