#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/fft.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "stats/snapshot.hpp"
#include "stats/special.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace exawatt;

// ------------------------------------------------------------ Descriptive

TEST(Descriptive, BasicMoments) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::mean(x), 5.0);
  EXPECT_DOUBLE_EQ(stats::variance(x), 4.0);
  EXPECT_DOUBLE_EQ(stats::stddev(x), 2.0);
  EXPECT_DOUBLE_EQ(stats::min_value(x), 2.0);
  EXPECT_DOUBLE_EQ(stats::max_value(x), 9.0);
  EXPECT_DOUBLE_EQ(stats::sum(x), 40.0);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(stats::median(x), 2.5);
  EXPECT_DOUBLE_EQ(stats::quantile(x, 1.0 / 3.0), 2.0);
}

TEST(Descriptive, QuantileEdgeCases) {
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(stats::quantile(one, 0.7), 42.0);
  EXPECT_THROW((void)stats::quantile({}, 0.5), util::CheckError);
  EXPECT_THROW((void)stats::quantile(one, 1.5), util::CheckError);
}

TEST(Descriptive, SkewnessSigns) {
  util::Rng rng(4);
  std::vector<double> right;
  std::vector<double> sym;
  for (int i = 0; i < 20000; ++i) {
    right.push_back(rng.exponential(1.0));  // skewness 2
    sym.push_back(rng.normal());
  }
  EXPECT_GT(stats::skewness(right), 1.5);
  EXPECT_NEAR(stats::skewness(sym), 0.0, 0.08);
  EXPECT_DOUBLE_EQ(stats::skewness(std::vector<double>{1.0, 2.0}), 0.0);
}

TEST(Descriptive, BoxplotTukeyRule) {
  // 1..11 plus one far outlier.
  std::vector<double> x;
  for (int i = 1; i <= 11; ++i) x.push_back(i);
  x.push_back(100.0);
  const auto b = stats::boxplot(x);
  EXPECT_EQ(b.n, 12u);
  EXPECT_EQ(b.outliers, 1u);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 11.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_GT(b.q3, b.q1);
  EXPECT_DOUBLE_EQ(b.spread(), 10.0);
}

TEST(Descriptive, BoxplotConstantData) {
  const std::vector<double> x(10, 3.0);
  const auto b = stats::boxplot(x);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.iqr(), 0.0);
  EXPECT_EQ(b.outliers, 0u);
}

TEST(Descriptive, ZScores) {
  const std::vector<double> x = {10.0, 20.0, 30.0};
  const auto z = stats::zscores(x);
  EXPECT_NEAR(z[0], -1.0, 1e-12);
  EXPECT_NEAR(z[1], 0.0, 1e-12);
  EXPECT_NEAR(z[2], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats::zscore(25.0, 20.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::zscore(25.0, 20.0, 0.0), 0.0);  // degenerate
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BinningAndDensity) {
  stats::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_DOUBLE_EQ(h.density(b), 0.1);
  }
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, UnderOverflow) {
  stats::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(11.0);
  h.add(10.0);  // boundary lands in the last bin
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, ModeAndMerge) {
  stats::Histogram a(0.0, 10.0, 10);
  stats::Histogram b(0.0, 10.0, 10);
  a.add(3.5);
  a.add(3.6);
  b.add(3.7);
  b.add(7.2);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.mode_bin(), 3u);
  stats::Histogram incompatible(0.0, 5.0, 10);
  EXPECT_THROW(a.merge(incompatible), util::CheckError);
}

TEST(Histogram, LogEdges) {
  const auto edges = stats::log_edges(1.0, 1000.0, 3);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_NEAR(edges[0], 1.0, 1e-12);
  EXPECT_NEAR(edges[1], 10.0, 1e-9);
  EXPECT_NEAR(edges[3], 1000.0, 1e-9);
  EXPECT_THROW(stats::log_edges(0.0, 10.0, 3), util::CheckError);
}

// ------------------------------------------------------------------- Ecdf

TEST(Ecdf, StepFunction) {
  const std::vector<double> x = {1.0, 2.0, 2.0, 4.0};
  stats::Ecdf cdf(x);
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(3.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
}

TEST(Ecdf, Percentiles) {
  std::vector<double> x;
  for (int i = 1; i <= 100; ++i) x.push_back(i);
  stats::Ecdf cdf(x);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.8), 80.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 100.0);
}

TEST(Ecdf, GridIsMonotone) {
  util::Rng rng(8);
  std::vector<double> x;
  for (int i = 0; i < 500; ++i) x.push_back(rng.normal());
  stats::Ecdf cdf(x);
  const auto grid = cdf.grid(50);
  ASSERT_EQ(grid.size(), 50u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GE(grid[i].f, grid[i - 1].f);
    EXPECT_GE(grid[i].x, grid[i - 1].x);
  }
  EXPECT_DOUBLE_EQ(grid.back().f, 1.0);
}

// -------------------------------------------------------------------- KDE

TEST(Kde1, IntegratesToOne) {
  util::Rng rng(5);
  std::vector<double> x;
  for (int i = 0; i < 500; ++i) x.push_back(rng.normal(10.0, 2.0));
  stats::Kde1 kde(x);
  double integral = 0.0;
  const double lo = 0.0;
  const double hi = 20.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    integral += kde(lo + (hi - lo) * (i + 0.5) / n) * (hi - lo) / n;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde1, PeaksNearMean) {
  util::Rng rng(6);
  std::vector<double> x;
  for (int i = 0; i < 1000; ++i) x.push_back(rng.normal(3.0, 0.5));
  stats::Kde1 kde(x);
  EXPECT_GT(kde(3.0), kde(1.0));
  EXPECT_GT(kde(3.0), kde(5.0));
}

TEST(Kde2, BimodalModeCount) {
  util::Rng rng(7);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    const bool left = i % 2 == 0;
    xs.push_back(rng.normal(left ? -4.0 : 4.0, 0.5));
    ys.push_back(rng.normal(left ? -4.0 : 4.0, 0.5));
  }
  stats::Kde2 kde(xs, ys);
  const auto grid = kde.grid(-7, 7, 40, -7, 7, 40);
  EXPECT_EQ(stats::Kde2::count_modes(grid, 0.2), 2u);
}

TEST(Kde2, RejectsMismatchedInputs) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(stats::Kde2(a, b), util::CheckError);
}

// ---------------------------------------------------------------- Special

TEST(Special, IncompleteBetaKnownValues) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(stats::incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
  // I_0.5(a,a) = 0.5 by symmetry.
  EXPECT_NEAR(stats::incomplete_beta(3.0, 3.0, 0.5), 0.5, 1e-10);
  EXPECT_DOUBLE_EQ(stats::incomplete_beta(2.0, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::incomplete_beta(2.0, 5.0, 1.0), 1.0);
}

TEST(Special, TTestTwoSided) {
  // scipy.stats.t.sf(2.0, 10)*2 = 0.07338...
  EXPECT_NEAR(stats::t_sf_two_sided(2.0, 10.0), 0.07339, 1e-4);
  EXPECT_NEAR(stats::t_sf_two_sided(0.0, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(stats::t_sf_two_sided(-2.0, 10.0),
              stats::t_sf_two_sided(2.0, 10.0), 1e-12);
}

TEST(Special, PearsonPValue) {
  // r=0.9, n=10 -> t=5.84, p ~ 3.9e-4 (scipy.stats.pearsonr agreement).
  EXPECT_NEAR(stats::pearson_p_value(0.9, 10), 3.9e-4, 1e-4);
  EXPECT_DOUBLE_EQ(stats::pearson_p_value(1.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(stats::pearson_p_value(0.5, 2), 1.0);  // dof guard
}

TEST(Special, NormalCdf) {
  EXPECT_NEAR(stats::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(stats::normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(stats::normal_cdf(-1.96), 0.025, 1e-3);
}

// ------------------------------------------------------------ Correlation

TEST(Correlation, PerfectAndInverse) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(stats::pearson(x, neg), -1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceGuard) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::pearson(x, y), 0.0);
}

TEST(Correlation, MatrixBonferroni) {
  // Three variables over 200 observations: v0 ~ v1 strongly, v2 noise.
  util::Rng rng(9);
  std::vector<std::vector<double>> v(3, std::vector<double>(200));
  for (int i = 0; i < 200; ++i) {
    const double base = rng.normal();
    v[0][static_cast<std::size_t>(i)] = base;
    v[1][static_cast<std::size_t>(i)] = base + 0.1 * rng.normal();
    v[2][static_cast<std::size_t>(i)] = rng.normal();
  }
  stats::CorrelationMatrix m(v, 0.05);
  EXPECT_EQ(m.variables(), 3u);
  EXPECT_NEAR(m.adjusted_alpha(), 0.05 / 3.0, 1e-12);
  EXPECT_TRUE(m.at(0, 1).significant);
  EXPECT_GT(m.at(0, 1).r, 0.95);
  EXPECT_FALSE(m.at(0, 2).significant);
  EXPECT_EQ(m.significant_pairs(), 1u);
  // Symmetry and unit diagonal.
  EXPECT_DOUBLE_EQ(m.at(1, 0).r, m.at(0, 1).r);
  EXPECT_DOUBLE_EQ(m.at(2, 2).r, 1.0);
}

// -------------------------------------------------------------------- FFT

TEST(Fft, Radix2RoundTrip) {
  util::Rng rng(10);
  std::vector<std::complex<double>> a(64);
  for (auto& c : a) c = {rng.normal(), rng.normal()};
  auto b = a;
  stats::fft_radix2(b, false);
  stats::fft_radix2(b, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-9);
  }
}

TEST(Fft, Radix2RejectsNonPow2) {
  std::vector<std::complex<double>> a(12);
  EXPECT_THROW(stats::fft_radix2(a, false), util::CheckError);
}

TEST(Fft, BluesteinMatchesNaiveDft) {
  const std::size_t n = 13;  // prime size exercises Bluestein
  util::Rng rng(11);
  std::vector<std::complex<double>> x(n);
  for (auto& c : x) c = {rng.normal(), 0.0};
  const auto fast = stats::fft_any(x, false);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(fast[k].real(), acc.real(), 1e-8);
    EXPECT_NEAR(fast[k].imag(), acc.imag(), 1e-8);
  }
}

TEST(Fft, BluesteinInverseRoundTrip) {
  util::Rng rng(12);
  std::vector<std::complex<double>> x(100);  // non-power-of-two
  for (auto& c : x) c = {rng.normal(), rng.normal()};
  const auto fwd = stats::fft_any(x, false);
  const auto back = stats::fft_any(fwd, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), back[i].real(), 1e-8);
    EXPECT_NEAR(x[i].imag(), back[i].imag(), 1e-8);
  }
}

class DominantFrequencyTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(DominantFrequencyTest, RecoversInjectedTone) {
  const double freq = std::get<0>(GetParam());
  const std::size_t n = std::get<1>(GetParam());
  const double dt = 10.0;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 5.0 * std::sin(2.0 * std::numbers::pi * freq * dt *
                          static_cast<double>(i));
  }
  const auto dom = stats::dominant_frequency(x, dt);
  const double resolution = 1.0 / (static_cast<double>(n) * dt);
  EXPECT_NEAR(dom.frequency_hz, freq, 1.5 * resolution);
  // Spectral leakage (the tone rarely lands on a bin center) spreads the
  // peak: accept down to half the injected amplitude.
  EXPECT_GT(dom.amplitude, 2.5);
  EXPECT_LT(dom.amplitude, 5.5);
}

INSTANTIATE_TEST_SUITE_P(
    Tones, DominantFrequencyTest,
    ::testing::Combine(::testing::Values(0.005, 0.01, 0.02, 0.04),
                       ::testing::Values(128, 200, 333, 1000)));

TEST(Fft, DominantFrequencyShortInput) {
  const std::vector<double> x = {1.0, 2.0};
  const auto dom = stats::dominant_frequency(x, 10.0);
  EXPECT_DOUBLE_EQ(dom.amplitude, 0.0);
}

// --------------------------------------------------------------- Snapshot

TEST(Snapshot, MeanAndConfidenceInterval) {
  std::vector<std::vector<double>> snaps = {
      {1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}, {2.0, 2.0, 2.0}};
  const auto band = stats::superimpose(snaps);
  EXPECT_EQ(band.snapshots, 3u);
  ASSERT_EQ(band.mean.size(), 3u);
  EXPECT_DOUBLE_EQ(band.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(band.mean[1], 2.0);
  EXPECT_GT(band.hi[0], band.lo[0]);
  // Identical column -> zero-width CI.
  EXPECT_DOUBLE_EQ(band.hi[1], band.lo[1]);
}

TEST(Snapshot, NanEntriesAreSkipped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> snaps = {{1.0, nan}, {3.0, 4.0}};
  const auto band = stats::superimpose(snaps);
  EXPECT_DOUBLE_EQ(band.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(band.mean[1], 4.0);
}

TEST(Snapshot, RejectsRaggedInput) {
  std::vector<std::vector<double>> snaps = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(stats::superimpose(snaps), util::CheckError);
}

TEST(Snapshot, EmptyInput) {
  const auto band = stats::superimpose({});
  EXPECT_EQ(band.snapshots, 0u);
  EXPECT_TRUE(band.mean.empty());
}

}  // namespace
