#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "core/edges.hpp"
#include "stats/ecdf.hpp"
#include "stream/alerts.hpp"
#include "stream/coarsen.hpp"
#include "stream/edge.hpp"
#include "stream/engine.hpp"
#include "stream/ingest.hpp"
#include "stream/quantile.hpp"
#include "stream/replay.hpp"
#include "stream/rollup.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/pipeline.hpp"
#include "ts/series.hpp"
#include "util/ring_buffer.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace {

using namespace exawatt;
namespace tm = exawatt::telemetry;

// ------------------------------------------------------------ SpscRing

TEST(SpscRing, FifoOrderAcrossWraparound) {
  util::SpscRing<int> ring(4);  // capacity rounds to 4
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.pop(out));
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(ring.try_push(round * 10 + i));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
  EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, TryPushRefusesWhenFull) {
  util::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), 4u);
  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));
}

TEST(SpscRing, PushOverwriteDropsOldest) {
  util::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(ring.push_overwrite(i));
  EXPECT_TRUE(ring.push_overwrite(4));  // evicts 0
  EXPECT_TRUE(ring.push_overwrite(5));  // evicts 1
  std::vector<int> drained;
  int out = 0;
  while (ring.pop(out)) drained.push_back(out);
  EXPECT_EQ(drained, (std::vector<int>{2, 3, 4, 5}));
}

TEST(SpscRing, ThreadedBlockingTransfersEverythingInOrder) {
  util::SpscRing<std::uint64_t> ring(256);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t v = 0;
  while (expect < kN) {
    if (ring.pop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_FALSE(ring.pop(v));
}

TEST(SpscRing, ThreadedOverwriteNeverReordersOrTears) {
  // Under drop-oldest, the consumer must observe a strictly increasing
  // subsequence (drops allowed, reordering and torn values not).
  util::SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 200000;
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kN; ++i) ring.push_overwrite(i);
    done.store(true);
  });
  std::uint64_t last = 0;
  std::uint64_t popped = 0;
  std::uint64_t v = 0;
  for (;;) {
    if (ring.pop(v)) {
      ASSERT_GT(v, last);
      ASSERT_LE(v, kN);
      last = v;
      ++popped;
    } else if (done.load()) {
      if (!ring.pop(v)) break;
      ASSERT_GT(v, last);
      last = v;
      ++popped;
    }
  }
  producer.join();
  EXPECT_GT(popped, 0u);
  EXPECT_EQ(last, kN);  // the newest element always survives
}

// ------------------------------------------------------- ShardedIngest

TEST(ShardedIngest, RoutesByNodeAndKeepsPerShardFifo) {
  stream::IngestOptions opt;
  opt.shards = 3;
  stream::ShardedIngest ingest(opt);
  for (int node = 0; node < 9; ++node) {
    const auto a = ingest.shard_of(tm::metric_id(node, 0));
    const auto b = ingest.shard_of(tm::metric_id(node, 99));
    EXPECT_EQ(a, b) << "one node must map to one shard";
    EXPECT_LT(a, 3u);
  }
  for (int i = 0; i < 10; ++i) {
    tm::Collector::Arrival a{};
    a.event.id = tm::metric_id(5, 0);
    a.event.t = i;
    ingest.push(a);
  }
  std::vector<std::int64_t> ts;
  ingest.drain([&](const tm::Collector::Arrival& a) { ts.push_back(a.event.t); });
  ASSERT_EQ(ts.size(), 10u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_EQ(ingest.total_pushed(), 10u);
  EXPECT_EQ(ingest.total_dropped(), 0u);
}

TEST(ShardedIngest, DropOldestAccountsEvictions) {
  stream::IngestOptions opt;
  opt.shards = 1;
  opt.shard_capacity = 8;
  opt.policy = stream::BackpressurePolicy::kDropOldest;
  stream::ShardedIngest ingest(opt);
  for (int i = 0; i < 20; ++i) {
    tm::Collector::Arrival a{};
    a.event.t = i;
    ingest.push(static_cast<std::size_t>(0), a);
  }
  EXPECT_EQ(ingest.total_pushed(), 20u);
  EXPECT_EQ(ingest.total_dropped(), 12u);
  EXPECT_EQ(ingest.backlog(), 8u);
  std::vector<std::int64_t> ts;
  ingest.drain([&](const tm::Collector::Arrival& a) { ts.push_back(a.event.t); });
  EXPECT_EQ(ts.front(), 12);  // oldest survivors
  EXPECT_EQ(ts.back(), 19);
  EXPECT_GE(ingest.shard_stats(0).max_lag, 7u);
}

TEST(ShardedIngest, MultiProducerBlockingIsLossless) {
  stream::IngestOptions opt;
  opt.shards = 4;
  opt.shard_capacity = 64;
  stream::ShardedIngest ingest(opt);
  constexpr std::uint64_t kPerShard = 50000;
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < 4; ++s) {
    producers.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < kPerShard; ++i) {
        tm::Collector::Arrival a{};
        a.event.id = tm::metric_id(static_cast<machine::NodeId>(s), 0);
        a.event.t = static_cast<std::int64_t>(i);
        ingest.push(s, a);
      }
    });
  }
  std::uint64_t delivered = 0;
  std::array<std::int64_t, 4> last{-1, -1, -1, -1};
  while (delivered < 4 * kPerShard) {
    delivered += ingest.drain([&](const tm::Collector::Arrival& a) {
      const auto s = static_cast<std::size_t>(tm::metric_node(a.event.id));
      ASSERT_EQ(a.event.t, last[s] + 1) << "per-shard FIFO violated";
      last[s] = a.event.t;
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(ingest.total_pushed(), 4 * kPerShard);
  EXPECT_EQ(ingest.total_dropped(), 0u) << "blocking policy must not drop";
}

// --------------------------------------------------------- P2 quantile

TEST(P2Quantile, ExactBelowFiveSamples) {
  stream::P2Quantile q(0.5);
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  q.add(1.0);
  q.add(9.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);  // nearest-rank median of {1,5,9}
}

TEST(P2Quantile, TracksEcdfWithinDocumentedError) {
  std::mt19937_64 rng(2021);
  std::lognormal_distribution<double> dist(6.0, 0.5);
  stream::QuantileSet qs;
  std::vector<double> all;
  all.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    const double x = dist(rng);
    qs.add(x);
    all.push_back(x);
  }
  const stats::Ecdf ecdf(all);
  const double iqr = ecdf.percentile(0.75) - ecdf.percentile(0.25);
  // Documented sketch bound (quantile.hpp): within ~1-2% of the IQR for
  // smooth unimodal distributions; assert 5% for headroom.
  EXPECT_NEAR(qs.p50(), ecdf.percentile(0.5), 0.05 * iqr);
  EXPECT_NEAR(qs.p95(), ecdf.percentile(0.95), 0.05 * iqr);
  EXPECT_NEAR(qs.p99(), ecdf.percentile(0.99), 0.10 * iqr);
}

// --------------------------------------------- Pipeline-backed fixture

struct StreamFixture {
  machine::MachineScale scale = machine::MachineScale::small(64);
  std::vector<workload::Job> jobs;
  std::unique_ptr<workload::AllocationIndex> alloc;
  power::FleetVariability fleet{scale, 1};
  thermal::FleetThermal thermals{scale, 2};
  machine::Topology topo{scale};
  facility::MsbModel msb{topo, 3};
  util::TimeRange window{util::kHour, util::kHour + 10 * util::kMinute};

  StreamFixture() {
    workload::WorkloadConfig cfg;
    cfg.scale = scale;
    cfg.seed = 17;
    workload::JobGenerator gen(cfg);
    jobs = gen.generate({0, util::kDay / 4});
    workload::Scheduler sched(scale);
    sched.run(jobs, util::kDay / 4);
    alloc = std::make_unique<workload::AllocationIndex>(jobs, window,
                                                        scale.nodes);
  }

  /// Run the pipeline with a tap, returning every arrival in arrival-time
  /// order (the order a real stream consumer would see them).
  std::vector<tm::Collector::Arrival> run_feed(tm::Pipeline& pipeline,
                                               util::TimeRange range) {
    std::vector<tm::Collector::Arrival> feed;
    pipeline.set_tap([&](util::TimeSec,
                         std::span<const tm::Collector::Arrival> batch) {
      feed.insert(feed.end(), batch.begin(), batch.end());
    });
    (void)pipeline.run(range);
    std::stable_sort(feed.begin(), feed.end(),
                     [](const tm::Collector::Arrival& a,
                        const tm::Collector::Arrival& b) {
                       return a.arrival_t < b.arrival_t;
                     });
    return feed;
  }
};

void expect_stat_series_identical(const ts::StatSeries& batch,
                                  const ts::StatSeries& live,
                                  tm::MetricId id) {
  ASSERT_EQ(batch.size(), live.size());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    ASSERT_EQ(batch[w].count, live[w].count) << "metric " << id << " w" << w;
    // EXPECT_EQ on doubles is exact equality — the bit-identity contract.
    ASSERT_EQ(batch[w].min, live[w].min) << "metric " << id << " w" << w;
    ASSERT_EQ(batch[w].max, live[w].max) << "metric " << id << " w" << w;
    ASSERT_EQ(batch[w].mean, live[w].mean) << "metric " << id << " w" << w;
    ASSERT_EQ(batch[w].std, live[w].std) << "metric " << id << " w" << w;
  }
}

// ------------------------------------------------- StreamingCoarsener

TEST(StreamingCoarsener, BitIdenticalToBatchAggregatorOnLiveFeed) {
  StreamFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  const auto feed = fx.run_feed(pipeline, fx.window);
  ASSERT_FALSE(feed.empty());

  stream::StreamingCoarsener coarsener(fx.window, 10);
  stream::WindowCollector collector(coarsener);
  coarsener.set_sink(std::ref(collector));
  // Replay in arrival order with a watermark trailing the collector's max
  // delay — exactly the live engine's protocol.
  std::size_t cursor = 0;
  for (util::TimeSec now = fx.window.begin; now < fx.window.end; ++now) {
    while (cursor < feed.size() && feed[cursor].arrival_t <= now) {
      coarsener.push(feed[cursor].event.id, feed[cursor].event.t,
                     static_cast<double>(feed[cursor].event.value));
      ++cursor;
    }
    coarsener.advance(now - 5);
  }
  while (cursor < feed.size()) {
    coarsener.push(feed[cursor].event.id, feed[cursor].event.t,
                   static_cast<double>(feed[cursor].event.value));
    ++cursor;
  }
  coarsener.finish();
  EXPECT_EQ(coarsener.late_dropped(), 0u);
  EXPECT_EQ(coarsener.pending_samples(), 0u);

  // Every channel of every node must match the batch aggregator exactly.
  std::size_t checked = 0;
  for (machine::NodeId n : nodes) {
    for (int c = 0; c < tm::metrics_per_node(); ++c) {
      const tm::MetricId id = tm::metric_id(n, c);
      const auto batch =
          tm::aggregate_metric(pipeline.archive(), id, fx.window, 10);
      expect_stat_series_identical(batch, collector.series(id), id);
      ++checked;
    }
  }
  EXPECT_EQ(checked, nodes.size() * 100u);
}

TEST(StreamingCoarsener, OutOfOrderWithinLatenessMatchesSortedBatch) {
  const util::TimeRange range{1000, 1060};
  std::vector<ts::Sample> sorted = {{1002, 5.0}, {1007, 9.0}, {1013, 2.0},
                                    {1021, 4.0}, {1038, 6.0}, {1052, 1.0}};
  const auto batch = ts::coarsen(sorted, 10, range);

  stream::StreamingCoarsener coarsener(range, 10);
  stream::WindowCollector collector(coarsener);
  coarsener.set_sink(std::ref(collector));
  // Push shuffled; everything lands before the first advance, so any
  // cross-sample order is legal.
  const std::vector<std::size_t> order = {3, 0, 5, 2, 4, 1};
  for (std::size_t i : order) {
    coarsener.push(7, sorted[i].t, sorted[i].value);
  }
  coarsener.finish();
  expect_stat_series_identical(batch, collector.series(7), 7);
}

TEST(StreamingCoarsener, LateSamplesAreCountedAndIgnored) {
  const util::TimeRange range{0, 100};
  stream::StreamingCoarsener coarsener(range, 10);
  stream::WindowCollector collector(coarsener);
  coarsener.set_sink(std::ref(collector));
  coarsener.push(1, 5, 10.0);
  coarsener.advance(50);
  const auto before = collector.series(1);
  coarsener.push(1, 30, 99.0);  // emitted before the watermark: too late
  EXPECT_EQ(coarsener.late_dropped(), 1u);
  coarsener.finish();
  const auto after = collector.series(1);
  // Windows 0..4 were already final; the straggler must not have touched
  // anything (the hold keeps filling with 10.0, never 99.0).
  for (std::size_t w = 0; w < after.size(); ++w) {
    EXPECT_EQ(after[w].mean, 10.0) << "w" << w;
  }
  EXPECT_EQ(before[0].count, after[0].count);
}

TEST(StreamingCoarsener, PartialTrailingWindowCloses) {
  const util::TimeRange range{0, 25};  // 3 windows, last covers 20..25
  stream::StreamingCoarsener coarsener(range, 10);
  stream::WindowCollector collector(coarsener);
  coarsener.set_sink(std::ref(collector));
  coarsener.push(3, 0, 2.0);
  coarsener.finish();
  const auto live = collector.series(3);
  const auto batch = ts::coarsen(std::vector<ts::Sample>{{0, 2.0}}, 10, range);
  expect_stat_series_identical(batch, live, 3);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[2].count, 5u);  // 5 held seconds, not 10
}

// --------------------------------------------- Loss / outage interaction

TEST(StreamingCoarsener, LossAndOutageHolesMatchBatchAndStayFinite) {
  StreamFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3};
  tm::CollectorParams params;
  params.loss_fraction = 0.3;
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb,
                        20.0, params);
  // Node 2 is dark from the start of the window: with no earlier emit to
  // hold, its leading windows are genuine count == 0 gaps (an outage in
  // the middle is bridged by sample-and-hold — that is the defined batch
  // semantic, and the streaming path must reproduce it, holes or holds).
  const util::TimeRange outage{fx.window.begin, fx.window.begin + 240};
  pipeline.collector().add_outage({2, outage});
  const auto feed = fx.run_feed(pipeline, fx.window);

  stream::StreamingCoarsener coarsener(fx.window, 10);
  stream::WindowCollector collector(coarsener);
  coarsener.set_sink(std::ref(collector));
  for (const auto& a : feed) {
    coarsener.push(a.event.id, a.event.t, static_cast<double>(a.event.value));
  }
  coarsener.finish();

  std::size_t gap_windows = 0;
  for (machine::NodeId n : nodes) {
    for (int c = 0; c < tm::metrics_per_node(); ++c) {
      const tm::MetricId id = tm::metric_id(n, c);
      const auto batch =
          tm::aggregate_metric(pipeline.archive(), id, fx.window, 10);
      const auto live = collector.series(id);
      expect_stat_series_identical(batch, live, id);
      for (std::size_t w = 0; w < live.size(); ++w) {
        // Gap-aware, never garbage: empty windows are explicit
        // (count == 0, all stats zero), populated windows are finite.
        if (live[w].count == 0) {
          ++gap_windows;
          EXPECT_EQ(live[w].mean, 0.0);
          EXPECT_EQ(live[w].std, 0.0);
        } else {
          EXPECT_TRUE(std::isfinite(live[w].mean));
          EXPECT_TRUE(std::isfinite(live[w].std));
          EXPECT_LE(live[w].min, live[w].max);
        }
      }
    }
  }
  EXPECT_GT(gap_windows, 0u) << "the outage must actually create holes";

  // Cluster roll-up over the holes: windows where node 2 is dark must
  // report fewer contributing nodes, and the sum must stay finite.
  std::vector<double> counts;
  const auto sum = tm::cluster_sum(
      pipeline.archive(), nodes,
      tm::channel_of(tm::MetricKind::kInputPower, 0), fx.window, 10, &counts);
  bool saw_reduced = false;
  for (std::size_t w = 0; w < sum.size(); ++w) {
    EXPECT_TRUE(std::isfinite(sum[w]));
    const util::TimeSec t = sum.time_at(w);
    if (t + 10 <= outage.end) {
      // Before node 2's first surviving emit there is nothing to hold:
      // these windows must be missing it.
      EXPECT_LT(counts[w], static_cast<double>(nodes.size()));
      saw_reduced = true;
    }
  }
  EXPECT_TRUE(saw_reduced);
}

// ------------------------------------------------ StreamingEdgeDetector

ts::Series synthetic_power() {
  // Multi-edge cluster trace: quiet floor, a returned square pulse, a
  // partially-returned swing, a falling edge, and an unreturned tail rise.
  // Steps must clear the full-machine threshold 868 * 4608 ~= 4.0 MW.
  std::vector<double> v;
  auto hold = [&](double w, int n) { v.insert(v.end(), n, w); };
  hold(6.0e6, 20);
  hold(11.0e6, 15);  // +5.0 MW rising edge, then...
  hold(6.5e6, 10);   // ...returns (gave back 4.5 of 5.0)
  hold(12.0e6, 8);   // +5.5 MW rising edge
  hold(9.0e6, 12);   // partial give-back only (3.0 < 0.8 * 5.5)
  hold(6.6e6, 15);   // full return
  hold(1.5e6, 10);   // -5.1 MW falling edge
  hold(6.0e6, 10);   // recovers (gave back 4.5 of 5.1)
  hold(11.0e6, 10);  // +5.0 MW unreturned rise at end of trace
  return ts::Series(0, 10, std::move(v));
}

TEST(StreamingEdgeDetector, MatchesBatchDetectorOnSyntheticTrace) {
  const auto power = synthetic_power();
  const double node_count = 4608.0;
  const auto batch = core::detect_edges(power, node_count);
  ASSERT_GE(batch.size(), 3u);

  stream::StreamingEdgeDetector det(power.start(), power.dt(), node_count);
  std::vector<core::Edge> sunk;
  det.set_sink([&](const core::Edge& e) { sunk.push_back(e); });
  for (std::size_t i = 0; i < power.size(); ++i) det.push(power[i]);
  det.finish();

  ASSERT_EQ(det.edges().size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& b = batch[i];
    const auto& s = det.edges()[i];
    EXPECT_EQ(s.rising, b.rising) << "edge " << i;
    EXPECT_EQ(s.start, b.start) << "edge " << i;
    EXPECT_EQ(s.amplitude_w, b.amplitude_w) << "edge " << i;
    EXPECT_EQ(s.initial_w, b.initial_w) << "edge " << i;
    EXPECT_EQ(s.peak_w, b.peak_w) << "edge " << i;
    EXPECT_EQ(s.duration_s, b.duration_s) << "edge " << i;
    EXPECT_EQ(s.returned, b.returned) << "edge " << i;
  }
  EXPECT_EQ(sunk.size(), batch.size());
  EXPECT_EQ(det.retained(), 0u) << "finish() must release the buffer";
}

TEST(StreamingEdgeDetector, MatchesBatchOnPseudoRandomTraces) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    double level = 6.0e6;
    std::uniform_real_distribution<double> jump(-5.0e6, 5.0e6);
    std::uniform_int_distribution<int> hold(1, 12);
    for (int seg = 0; seg < 30; ++seg) {
      level = std::clamp(level + jump(rng), 1.0e6, 12.0e6);
      v.insert(v.end(), static_cast<std::size_t>(hold(rng)), level);
    }
    const ts::Series power(0, 10, v);
    const auto batch = core::detect_edges(power, 4608.0);
    stream::StreamingEdgeDetector det(0, 10, 4608.0);
    for (double x : v) det.push(x);
    det.finish();
    ASSERT_EQ(det.edges().size(), batch.size()) << "trial " << trial;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(det.edges()[i].start, batch[i].start);
      EXPECT_EQ(det.edges()[i].amplitude_w, batch[i].amplitude_w);
      EXPECT_EQ(det.edges()[i].duration_s, batch[i].duration_s);
      EXPECT_EQ(det.edges()[i].returned, batch[i].returned);
    }
  }
}

TEST(StreamingEdgeDetector, BoundedRetentionDuringQuietStream) {
  stream::StreamingEdgeDetector det(0, 10, 4608.0);
  for (int i = 0; i < 100000; ++i) det.push(6.0e6);
  // Scan phase needs only a two-sample lookback window; the buffer must
  // not grow with the stream.
  EXPECT_LT(det.retained(), 2048u);
}

// ---------------------------------------------------------- ClusterRollup

TEST(ClusterRollup, MatchesBatchClusterSumAndStepsPue) {
  StreamFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3, 4, 5};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  const auto feed = fx.run_feed(pipeline, fx.window);

  stream::StreamingCoarsener coarsener(fx.window, 10);
  stream::RollupOptions opt;
  opt.edge_node_count = static_cast<double>(fx.scale.nodes);
  stream::ClusterRollup rollup(fx.window, 10, opt);
  coarsener.set_sink(
      [&](const stream::WindowUpdate& u) { rollup.on_window(u); });
  std::size_t windows_seen = 0;
  rollup.set_sink([&](const stream::ClusterWindow& w) {
    ++windows_seen;
    EXPECT_GT(w.nodes_reporting, 0.0);
    EXPECT_GE(w.cooling.pue, 1.0);
  });
  for (const auto& a : feed) {
    coarsener.push(a.event.id, a.event.t, static_cast<double>(a.event.value));
  }
  coarsener.finish();
  rollup.finish();

  std::vector<double> counts;
  const auto batch = tm::cluster_sum(
      pipeline.archive(), nodes,
      tm::channel_of(tm::MetricKind::kInputPower, 0), fx.window, 10, &counts);
  const auto live = rollup.power_series();
  ASSERT_EQ(live.size(), batch.size());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    EXPECT_EQ(live[w], batch[w]) << "window " << w;
  }
  EXPECT_EQ(windows_seen, batch.size());
  const auto pue = rollup.pue_series();
  ASSERT_EQ(pue.size(), batch.size());
  for (std::size_t w = 0; w < pue.size(); ++w) {
    EXPECT_TRUE(std::isfinite(pue[w]));
    EXPECT_GE(pue[w], 1.0);
  }
}

// ------------------------------------------------------------ AlertEngine

TEST(AlertEngine, PowerSwingRaisesOnQualifyingEdgesOnly) {
  stream::AlertOptions opt;
  opt.power_swing_w = 2.0e6;
  stream::AlertEngine alerts(opt);
  core::Edge small{};
  small.amplitude_w = 1.0e6;
  alerts.on_edge(small);
  EXPECT_EQ(alerts.raised(stream::AlertKind::kPowerSwing), 0u);
  core::Edge big{};
  big.amplitude_w = 3.0e6;
  big.start = 100;
  big.duration_s = 40;
  big.returned = true;
  alerts.on_edge(big);
  EXPECT_EQ(alerts.raised(stream::AlertKind::kPowerSwing), 1u);
  EXPECT_EQ(alerts.active(stream::AlertKind::kPowerSwing), 0u)
      << "a returned edge clears immediately";
  big.returned = false;
  alerts.on_edge(big);
  EXPECT_EQ(alerts.active(stream::AlertKind::kPowerSwing), 1u);
}

TEST(AlertEngine, ThermalHysteresisLatchesPerNode) {
  stream::AlertOptions opt;
  opt.thermal_min_baseline = 100;
  stream::AlertEngine alerts(opt);
  // Deterministic bounded baseline around 40 C (sd ~1.4, max |z| ~1.4 —
  // a random baseline would have its own >= 3 sigma tail draws).
  for (int i = 0; i < 500; ++i) {
    alerts.on_gpu_temp(1, i, 40.0 + 2.0 * std::sin(0.37 * i));
  }
  EXPECT_EQ(alerts.raised(stream::AlertKind::kThermal), 0u);
  // Node 9 runs hot: one raise, latched while hot.
  alerts.on_gpu_temp(9, 600, 55.0);
  alerts.on_gpu_temp(9, 601, 56.0);
  alerts.on_gpu_temp(9, 602, 57.0);
  EXPECT_EQ(alerts.raised(stream::AlertKind::kThermal), 1u);
  EXPECT_EQ(alerts.active(stream::AlertKind::kThermal), 1u);
  // Between clear and raise thresholds: still latched (hysteresis).
  alerts.on_gpu_temp(9, 603, 45.5);
  EXPECT_EQ(alerts.active(stream::AlertKind::kThermal), 1u);
  // Back to baseline: clears once.
  alerts.on_gpu_temp(9, 604, 40.0);
  EXPECT_EQ(alerts.active(stream::AlertKind::kThermal), 0u);
  const auto& log = alerts.log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_FALSE(log.back().raised);
  EXPECT_FALSE(log.back().describe().empty());
}

TEST(AlertEngine, SilenceRaisesAfterThresholdAndClearsOnReturn) {
  stream::AlertOptions opt;
  opt.silence_s = 30;
  stream::AlertEngine alerts(opt);
  alerts.on_node_event(4, 100);
  alerts.advance(120);
  EXPECT_EQ(alerts.raised(stream::AlertKind::kSilence), 0u);
  alerts.advance(131);
  EXPECT_EQ(alerts.raised(stream::AlertKind::kSilence), 1u);
  EXPECT_EQ(alerts.active(stream::AlertKind::kSilence), 1u);
  alerts.advance(200);
  EXPECT_EQ(alerts.raised(stream::AlertKind::kSilence), 1u)
      << "one raise per outage, not one per tick";
  alerts.on_node_event(4, 210);
  EXPECT_EQ(alerts.active(stream::AlertKind::kSilence), 0u);
}

// ----------------------------------------------------------------- Engine

TEST(Engine, LockStepRunMatchesBatchAndRendersPanel) {
  StreamFixture fx;
  std::vector<machine::NodeId> nodes = {0, 1, 2, 3, 4, 5};
  tm::Pipeline pipeline(nodes, *fx.alloc, fx.fleet, fx.thermals, fx.msb);
  const auto feed = fx.run_feed(pipeline, fx.window);

  stream::EngineOptions opt;
  opt.range = fx.window;
  opt.rollup.edge_node_count = static_cast<double>(fx.scale.nodes);
  stream::Engine engine(opt);
  std::size_t cursor = 0;
  for (util::TimeSec now = fx.window.begin; now < fx.window.end; ++now) {
    while (cursor < feed.size() && feed[cursor].arrival_t <= now) {
      engine.ingest(feed[cursor]);
      ++cursor;
    }
    engine.advance_to(now);
  }
  while (cursor < feed.size()) engine.ingest(feed[cursor++]);
  engine.finish();

  EXPECT_EQ(engine.events_ingested(), feed.size());
  EXPECT_EQ(engine.coarsener().late_dropped(), 0u);

  const auto batch = tm::cluster_sum(
      pipeline.archive(), nodes,
      tm::channel_of(tm::MetricKind::kInputPower, 0), fx.window, 10);
  const auto live = engine.rollup().power_series();
  ASSERT_EQ(live.size(), batch.size());
  for (std::size_t w = 0; w < batch.size(); ++w) {
    EXPECT_EQ(live[w], batch[w]) << "window " << w;
  }

  EXPECT_GT(engine.power_quantiles().count(), 0u);
  EXPECT_GT(engine.gpu_temp_quantiles().count(), 0u);
  EXPECT_LE(engine.power_quantiles().p50(), engine.power_quantiles().p99());

  const auto snap = engine.dashboard();
  EXPECT_EQ(snap.title, "live stream dashboard");
  EXPECT_GT(snap.sampled_nodes, 0);
  EXPECT_GT(snap.gpu_core_c.total(), 0u);
  const auto panel = engine.render();
  EXPECT_NE(panel.find("live stream dashboard"), std::string::npos);
  EXPECT_NE(panel.find("watermark"), std::string::npos);
}

// ------------------------------------------------------------ ReplaySinks

/// 1 Hz input-power runs for `nodes` nodes with a square pulse over
/// [120, 180) — a returned edge large enough to page mid-replay.
std::vector<store::MetricRun> replay_step_runs(int nodes, util::TimeSec span) {
  const int channel = tm::channel_of(tm::MetricKind::kInputPower, 0);
  std::vector<store::MetricRun> runs;
  for (int n = 0; n < nodes; ++n) {
    store::MetricRun run;
    run.id = tm::metric_id(n, channel);
    for (util::TimeSec t = 0; t < span; ++t) {
      const double watts = (t >= 120 && t < 180) ? 60000.0 : 2000.0;
      run.samples.push_back({t, watts});
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(ReplaySinks, WindowsAndAlertsArriveInStreamOrder) {
  const auto runs = replay_step_runs(4, 300);
  stream::EngineOptions opt;
  opt.range = {0, 300};
  opt.rollup.edge_node_count = 4.0;
  opt.alerts.power_swing_w = 1.0e5;  // the 232 kW pulse qualifies

  struct Seen {
    bool window;
    std::size_t index;
    util::TimeSec t;
    double value;
  };
  std::vector<Seen> merged;
  stream::ReplaySinks sinks;
  sinks.on_window = [&](const stream::ClusterWindow& w) {
    merged.push_back({true, w.index, w.t, w.power_w});
  };
  sinks.on_alert = [&](const stream::Alert& a) {
    merged.push_back({false, 0, a.t, a.value});
  };
  const auto replay = stream::replay_rollup_runs(runs, opt, sinks);

  EXPECT_FALSE(replay.cancelled);
  EXPECT_EQ(replay.events, 4u * 300u);

  // Windows arrive as 0, 1, 2, ... on the 10 s grid, and the streamed
  // values are the same doubles the finished series reports.
  std::size_t windows = 0;
  for (const auto& s : merged) {
    if (!s.window) continue;
    EXPECT_EQ(s.index, windows);
    EXPECT_EQ(s.t, static_cast<util::TimeSec>(windows) * 10);
    ASSERT_LT(windows, replay.power.size());
    EXPECT_EQ(s.value, replay.power[windows]);
    ++windows;
  }
  EXPECT_EQ(windows, replay.windows);
  EXPECT_EQ(windows, replay.power.size());

  // The pulse closes a qualifying returned edge mid-stream; its alert
  // must be interleaved with the windows, not batched after the last one.
  std::vector<std::size_t> alert_pos;
  std::size_t last_window_pos = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].window) {
      last_window_pos = i;
    } else {
      alert_pos.push_back(i);
    }
  }
  ASSERT_FALSE(alert_pos.empty());
  EXPECT_LT(alert_pos.front(), last_window_pos);

  // Stream order: alert transitions replay in log order (non-decreasing
  // t), and any window delivered after an alert can only have closed at a
  // watermark past the alert's second.
  util::TimeSec prev_alert_t = 0;
  for (std::size_t i : alert_pos) {
    EXPECT_GE(merged[i].t, prev_alert_t);
    prev_alert_t = merged[i].t;
    for (std::size_t j = i + 1; j < merged.size(); ++j) {
      if (!merged[j].window) continue;
      EXPECT_GT(merged[j].t + 10, merged[i].t - opt.allowed_lateness_s);
    }
  }
}

TEST(ReplaySinks, CancelMidReplayKeepsEmittedWindowsAndSetsFlag) {
  const auto runs = replay_step_runs(4, 300);
  stream::EngineOptions opt;
  opt.range = {0, 300};
  opt.rollup.edge_node_count = 4.0;

  const auto full = stream::replay_rollup_runs(runs, opt);
  ASSERT_EQ(full.windows, 30u);
  ASSERT_FALSE(full.cancelled);

  std::vector<double> emitted;
  stream::ReplaySinks sinks;
  sinks.on_window = [&](const stream::ClusterWindow& w) {
    emitted.push_back(w.power_w);
  };
  // Trip the per-second poll once 8 windows have streamed — the shape of
  // a subscriber disconnecting mid-sweep.
  sinks.cancelled = [&] { return emitted.size() >= 8; };
  const auto part = stream::replay_rollup_runs(runs, opt, sinks);

  EXPECT_TRUE(part.cancelled);
  EXPECT_EQ(part.windows, 8u);
  EXPECT_EQ(emitted.size(), 8u);
  ASSERT_EQ(part.power.size(), 8u);
  ASSERT_EQ(part.pue.size(), 8u);
  // Everything emitted before the trip stands, bit-identical to the
  // uncancelled replay's prefix.
  for (std::size_t w = 0; w < emitted.size(); ++w) {
    EXPECT_EQ(part.power[w], emitted[w]);
    EXPECT_EQ(part.power[w], full.power[w]);
    EXPECT_EQ(part.pue[w], full.pue[w]);
  }
  EXPECT_LT(part.events, full.events);
}

}  // namespace
