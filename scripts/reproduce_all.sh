#!/usr/bin/env bash
# Reproduce everything: build, test, validate, regenerate every paper
# artifact and ablation. Outputs land in test_output.txt /
# bench_output.txt at the repository root and one CSV per figure in the
# working directory.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt
./build/tools/exawatt_validate

# Streaming ingest first: its sustained-rate target (>= 462,600 samples/s,
# zero drops under the blocking policy) is a hard acceptance gate.
./build/bench/bench_stream_ingest 2>&1 | tee bench_stream_output.txt
grep -q "sustained: MET" bench_stream_output.txt

# On-disk store next: persisting the same feed must beat sim-real-time
# (>= 462,600 events/s written through seal+fsync-free path), the
# decoded-block cache must make repeated queries >= 5x cheaper, the mmap
# warm tier must beat buffered cold reads >= 1.3x, and the zero-copy
# chunked scan must keep its staged bytes flat (<= one chunk) regardless
# of archive size.
./build/bench/bench_store 2>&1 | tee bench_store_output.txt
grep -q "store write: MET" bench_store_output.txt
grep -q "cache-hit repeated query: .* MET" bench_store_output.txt
grep -q "warm-tier scan: .* -- MET" bench_store_output.txt
grep -q "stream peak staged: .* -- MET" bench_store_output.txt
grep -q "compaction: " bench_store_output.txt

# The compaction crash sweep doubles as a runnable artifact: every write
# point of a merge+retention pass must recover without losing a
# committed event.
./build/tools/exawatt_sim compactcheck --nodes 6 --minutes 4 \
    --store build/compactcheck_repro | tee compactcheck_output.txt
grep -q "compactcheck: PASS" compactcheck_output.txt

# Codec fast path: the bulk varint decode tier must be >= 2x the scalar
# reference on the smooth-telemetry batch (bit-identical bytes).
./build/bench/bench_codec 2>&1 | tee bench_codec_output.txt
grep -q "decode fast path: .* MET" bench_codec_output.txt

# Network query service: serving the warm store over loopback TCP must
# sustain at least the machine's own 462,600 events/s production rate as
# decoded read volume across concurrent scan clients.
./build/bench/bench_net 2>&1 | tee bench_net_output.txt
grep -q "net read: MET" bench_net_output.txt

# Sharded cluster: scatter-gather reads across 3 shard servers through
# the coordinator must sustain the same 462,600 events/s of merged read
# volume — sharding for capacity must not cost real-time serving.
./build/bench/bench_cluster 2>&1 | tee bench_cluster_output.txt
grep -q "cluster read: MET" bench_cluster_output.txt

# What-if scenario service: a 32-variant counterfactual sweep must
# re-feed the stored trace at >= 462,600 events/s summed across its
# variant legs — planning sweeps must stay interactive.
./build/bench/bench_scenario 2>&1 | tee bench_scenario_output.txt
grep -q "scenario sweep read: MET" bench_scenario_output.txt

# Multi-tenant QoS: a mixed-method open-loop flood at 10x measured
# capacity must keep interactive p99 within its bound while batch work
# keeps flowing, and admission pricing must calibrate exactly against
# measured block counts. Runs after bench_codec so the cost model picks
# up this machine's own decode rate from BENCH_codec.json.
./build/bench/bench_qos 2>&1 | tee bench_qos_output.txt
grep -q "qos overload gate: MET" bench_qos_output.txt

# Machine-readable artifacts for trend tracking.
test -s BENCH_store.json
test -s BENCH_codec.json
test -s BENCH_net.json
test -s BENCH_cluster.json
test -s BENCH_scenario.json
test -s BENCH_qos.json

for b in build/bench/*; do
  case "$b" in *bench_stream_ingest|*bench_store|*bench_codec|*bench_net|*bench_cluster|*bench_scenario|*bench_qos) continue ;; esac
  [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
