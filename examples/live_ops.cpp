// Live operations room (paper §2): the streaming analytics engine riding
// the out-of-band telemetry feed in lock-step with the twin. Where
// examples/facility_dashboard.cpp renders panels from the *model*, this
// one sees only what an operator would: the collector's delayed,
// out-of-order event stream. The engine coarsens it to the archive's
// 10-second windows (bit-identical to the batch aggregator), rolls up
// cluster power and PUE, sketches quantiles, and pages on power swings,
// thermal extremity and telemetry silence — then the final panel is
// cross-checked against the batch pipeline over the same archive.

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "core/simulation.hpp"
#include "stream/engine.hpp"
#include "stream/ingest.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/pipeline.hpp"
#include "workload/allocation_index.hpp"

int main() {
  using namespace exawatt;

  // A 48-node slice, 15 live minutes starting two hours in.
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(48);
  config.seed = 11;
  const util::TimeRange live{2 * util::kHour,
                             2 * util::kHour + 15 * util::kMinute};
  config.range = {0, live.end + util::kHour};
  core::Simulation sim(config);

  workload::AllocationIndex alloc(sim.jobs(), live, config.scale.nodes);
  power::FleetVariability fleet(config.scale, 21);
  thermal::FleetThermal thermals(config.scale, 22);
  machine::Topology topo(config.scale);
  facility::MsbModel msb(topo, 23);
  std::vector<machine::NodeId> nodes(
      static_cast<std::size_t>(config.scale.nodes));
  std::iota(nodes.begin(), nodes.end(), 0);

  // Inject the operational trouble the alert engine exists for: 20% event
  // loss and one node going dark mid-window.
  telemetry::CollectorParams collector;
  collector.loss_fraction = 0.2;
  telemetry::Pipeline pipeline(nodes, alloc, fleet, thermals, msb, 20.0,
                               collector);
  pipeline.collector().add_outage(
      {7, {live.begin + 300, live.begin + 600}});

  stream::ShardedIngest ingest({.shards = 4});
  stream::EngineOptions options;
  options.range = live;
  options.rollup.edge_node_count = static_cast<double>(config.scale.nodes);
  stream::Engine engine(options);

  // Lock-step: events wait in the in-flight map until their arrival
  // second, so the engine sees the collector's real delay and reorder.
  std::map<util::TimeSec, std::vector<telemetry::Collector::Arrival>> wire;
  pipeline.set_tap([&](util::TimeSec now,
                       std::span<const telemetry::Collector::Arrival> batch) {
    for (const auto& arrival : batch) wire[arrival.arrival_t].push_back(arrival);
    for (auto it = wire.begin(); it != wire.end() && it->first <= now;
         it = wire.erase(it)) {
      for (const auto& arrival : it->second) ingest.push(arrival);
    }
    ingest.drain(
        [&](const telemetry::Collector::Arrival& a) { engine.ingest(a); });
    engine.advance_to(now);
    if ((now - live.begin + 1) % 300 == 0) {
      std::printf("%s\n", engine.render().c_str());
    }
  });
  (void)pipeline.run(live);
  for (const auto& [t, batch] : wire) {
    for (const auto& arrival : batch) ingest.push(arrival);
  }
  ingest.drain(
      [&](const telemetry::Collector::Arrival& a) { engine.ingest(a); });
  engine.finish();

  // The operator's question: did the live view drift from the archive?
  const auto batch = telemetry::cluster_sum(
      pipeline.archive(), nodes,
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0), live);
  const auto streamed = engine.rollup().power_series();
  const std::size_t windows = std::min(batch.size(), streamed.size());
  std::size_t identical = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    if (streamed[w] == batch[w]) ++identical;
  }
  std::printf("live vs batch cluster power: %zu/%zu windows bit-identical\n",
              identical, windows);
  std::printf("silence alerts raised while node 7 was dark: %zu\n",
              engine.alerts().raised(stream::AlertKind::kSilence));
  return identical == windows && windows > 0 ? 0 : 1;
}
