// Power steering: the extension loop the paper's conclusion sketches.
// Train power portraits on past jobs (§9), then schedule the next wave
// under a cluster power budget with the power-aware scheduler (§8),
// and compare what the data center sees vs the uncapped baseline.

#include <cstdio>

#include "core/job_features.hpp"
#include "core/prediction.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "power/cluster.hpp"
#include "power/power_aware_scheduler.hpp"
#include "util/text_table.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace exawatt;

  const auto scale = machine::MachineScale::small(1024);

  // --- 1. Learn portraits from a week of history ------------------------
  core::SimulationConfig history_config;
  history_config.scale = scale;
  history_config.seed = 1;
  history_config.range = {0, util::kWeek};
  core::Simulation history(history_config);
  const auto summaries = core::summarize_jobs(history.jobs());
  const core::PowerPredictor predictor(summaries);
  std::printf("trained %zu power portraits from %zu historical jobs\n",
              predictor.portraits(), summaries.size());

  // --- 2. Predict the next wave's hottest submissions -------------------
  workload::WorkloadConfig next_config;
  next_config.scale = scale;
  next_config.seed = 2;
  workload::JobGenerator gen(next_config);
  auto wave = gen.generate({0, 2 * util::kDay});
  std::printf("next wave: %zu submissions over two days\n\n", wave.size());

  util::TextTable preview({"job", "class", "nodes", "predicted mean",
                           "predicted max", "uncertainty"});
  std::size_t shown = 0;
  for (const auto& j : wave) {
    if (j.sched_class > 2 || shown >= 6) continue;
    const auto p = predictor.predict(j.project, j.sched_class, j.node_count);
    preview.add_row({std::to_string(j.id), std::to_string(j.sched_class),
                     std::to_string(j.node_count),
                     util::fmt_si(p.mean_power_w, "W"),
                     util::fmt_si(p.max_power_w, "W"),
                     util::fmt_double(100.0 * p.uncertainty, 0) + "%"});
    ++shown;
  }
  std::printf("predicted leadership-job power (before they run):\n%s\n",
              preview.str().c_str());

  // --- 3. Schedule under a budget vs uncapped ---------------------------
  auto uncapped = wave;
  auto capped = wave;
  power::PowerAwareScheduler baseline(scale, {.cluster_cap_w = 0.0});
  // Budget: ~80% of the machine's realistic peak at this scale.
  const double cap_w = 0.8 * 2.35e3 * static_cast<double>(scale.nodes);
  power::PowerAwareScheduler steering(scale, {.cluster_cap_w = cap_w});
  const auto sa = baseline.run(uncapped, 2 * util::kDay);
  const auto sb = steering.run(capped, 2 * util::kDay);

  auto describe = [&](const char* name,
                      const std::vector<workload::Job>& jobs,
                      const power::PowerAwareStats& stats) {
    const auto frame = power::cluster_power_frame(
        jobs, scale, {0, 2 * util::kDay}, {.dt = 300, .subsamples = 2});
    const auto& p = frame.at("input_power_w");
    double peak = 0.0;
    double mean = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      peak = std::max(peak, p[i]);
      mean += p[i];
    }
    mean /= static_cast<double>(p.size());
    std::printf("%s: peak %s, mean %s, utilization %.1f%%, blocked %zu\n",
                name, util::fmt_si(peak, "W").c_str(),
                util::fmt_si(mean, "W").c_str(),
                100.0 * stats.base.utilization, stats.power_blocked);
    std::printf("  power profile: %s\n",
                core::sparkline(p, 64).c_str());
  };
  describe("baseline (no cap)", uncapped, sa);
  describe("power steering   ", capped, sb);
  std::printf("\nThe capped run shaves the peaks the facility must size its\n"
              "cooling for — the opportunity the paper's conclusion calls\n"
              "out — while small jobs keep flowing.\n");
  return 0;
}
