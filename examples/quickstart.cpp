// Quickstart: build a small Summit-like machine, simulate a day of
// operation, and print the cluster's power/PUE summary.
//
// This touches the three layers a downstream user cares about:
//   1. workload synthesis + scheduling      (core::Simulation)
//   2. cluster power + facility response    (cluster_frame / cep_frame)
//   3. analysis                             (core::year_trend et al.)

#include <cstdio>

#include "core/pue_analysis.hpp"
#include "core/simulation.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace exawatt;

  // A 1/9-scale machine keeps the example instant; drop this line (or use
  // MachineScale::full()) for the real 4,626-node configuration.
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(512);
  config.seed = 2020;
  config.range = {0, 2 * util::kDay};

  core::Simulation sim(config);
  const auto& jobs = sim.jobs();
  const auto& stats = sim.scheduler_stats();

  std::printf("Simulated %zu job submissions on %d nodes\n", jobs.size(),
              config.scale.nodes);
  std::printf("  scheduled: %zu  backfilled: %zu  utilization: %.1f%%\n",
              stats.scheduled, stats.backfilled, 100.0 * stats.utilization);

  // Cluster power at 60 s resolution for the first simulated day.
  const ts::Frame cluster =
      sim.cluster_frame({0, util::kDay}, {.dt = 60, .subsamples = 2});
  const ts::Frame cep = sim.cep_frame(cluster);

  const ts::Series& power = cluster.at("input_power_w");
  double peak = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    peak = peak > power[i] ? peak : power[i];
    mean += power[i];
  }
  mean /= static_cast<double>(power.size());

  const ts::Series& pue = cep.at("pue");
  double pue_mean = 0.0;
  for (std::size_t i = 0; i < pue.size(); ++i) pue_mean += pue[i];
  pue_mean /= static_cast<double>(pue.size());

  util::TextTable table({"metric", "value"});
  table.add_row({"mean cluster power", util::fmt_si(mean, "W")});
  table.add_row({"peak cluster power", util::fmt_si(peak, "W")});
  table.add_row({"mean PUE", util::fmt_double(pue_mean, 3)});
  table.add_row({"MTW supply (last)",
                 util::fmt_double(cep.at("mtw_supply_c")[pue.size() - 1], 1) +
                     " C"});
  std::printf("\nDay-one operations summary\n%s\n", table.str().c_str());
  return 0;
}
