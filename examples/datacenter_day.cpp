// Data-center cross-cutting view of one summer day: power edges, the
// cooling plant's response, and what they do to PUE (the paper's §5
// narrative condensed into one runnable walk-through).

#include <cstdio>

#include "core/edges.hpp"
#include "core/simulation.hpp"
#include "core/snapshots.hpp"
#include "core/thermal_response.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace exawatt;

  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(1024);
  config.seed = 77;
  // Simulate a window inside the paper's summer period (late July).
  const util::TimeSec day0 = 206 * util::kDay;
  config.range = {day0 - util::kDay, day0 + 2 * util::kDay};

  core::Simulation sim(config);
  const ts::Frame cluster = sim.cluster_frame(
      {day0, day0 + util::kDay}, {.dt = 10, .subsamples = 1});
  const ts::Frame cep = sim.cep_frame(cluster);
  const ts::Frame temps = core::cluster_thermal_frame(
      cluster, cep, config.scale.nodes);

  const ts::Series& power = cluster.at("input_power_w");

  // 1. Detect the day's big swings (868 W/node, the paper's rule).
  const auto edges =
      core::detect_edges(power, static_cast<double>(config.scale.nodes));
  std::size_t rising = 0;
  double largest_mw = 0.0;
  for (const auto& e : edges) {
    if (e.rising) ++rising;
    const double mw = e.amplitude_w / 1e6;
    largest_mw = mw > largest_mw ? mw : largest_mw;
  }
  std::printf("Summer day on %d nodes: %zu edges (%zu rising), largest %.2f MW\n",
              config.scale.nodes, edges.size(), rising, largest_mw);

  // 2. Superimpose snapshots around rising edges and show the cooling
  //    response (power up -> return water up -> tons up -> PUE down).
  const auto sets = core::collect_edge_sets(
      power, static_cast<double>(config.scale.nodes), /*rising=*/true);
  for (const auto& set : sets) {
    const auto band_power = core::superimpose_column(power, set);
    const auto band_pue = core::superimpose_column(cep.at("pue"), set);
    const auto band_ret = core::superimpose_column(cep.at("mtw_return_c"), set);
    const auto band_gpu = core::superimpose_column(temps.at("gpu_mean_c"), set);
    std::printf(
        "\n%d MW rising edges (%zu found); offsets -60s, 0, +60s, +180s:\n",
        set.amplitude_mw, set.at.size());
    util::TextTable t({"signal", "-60s", "edge", "+60s", "+180s"});
    auto row = [&](const char* name, const stats::SnapshotBand& b,
                   const char* unit, double scale) {
      const std::size_t c = 6;  // index of the edge (60 s before / dt 10 s)
      t.add_row({name,
                 util::fmt_double(b.mean[c - 6] * scale, 2) + unit,
                 util::fmt_double(b.mean[c] * scale, 2) + unit,
                 util::fmt_double(b.mean[c + 6] * scale, 2) + unit,
                 util::fmt_double(b.mean[c + 18] * scale, 2) + unit});
    };
    row("cluster power", band_power, " MW", 1e-6);
    row("PUE", band_pue, "", 1.0);
    row("MTW return", band_ret, " C", 1.0);
    row("GPU mean temp", band_gpu, " C", 1.0);
    std::printf("%s", t.str().c_str());
  }

  std::printf("\nDone. The inverse power-PUE symmetry and the ~1 min lag of\n"
              "the return-water response reproduce the paper's Figure 11/12\n"
              "dynamics at this scale.\n");
  return 0;
}
