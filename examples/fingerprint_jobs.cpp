// Job power fingerprinting (the paper's §9 future-work capability):
// summarize each job's power behaviour into a compact vector, cluster
// with k-means, and check how well clusters recover the application
// archetypes that actually generated the jobs.

#include <cstdio>

#include "core/fingerprint.hpp"
#include "core/job_features.hpp"
#include "core/simulation.hpp"
#include "util/text_table.hpp"
#include "workload/app_model.hpp"

int main() {
  using namespace exawatt;

  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(256);
  config.seed = 5;
  config.range = {0, 14 * util::kDay};

  core::Simulation sim(config);
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::printf("Fingerprinting %zu jobs...\n", summaries.size());

  std::vector<core::Fingerprint> prints;
  prints.reserve(summaries.size());
  for (const auto& s : summaries) {
    prints.push_back(core::fingerprint_of(s));
  }

  util::TextTable table({"k", "inertia", "app purity"});
  for (std::size_t k : {4, 8, 12, 16}) {
    const auto clustering = core::cluster_fingerprints(prints, k);
    table.add_row({std::to_string(k),
                   util::fmt_double(clustering.inertia, 0),
                   util::fmt_double(100.0 * clustering.app_purity, 1) + "%"});
  }
  std::printf("\nClustering quality vs k\n%s\n", table.str().c_str());

  // Show the majority archetype of each cluster at k = 12.
  const auto clustering = core::cluster_fingerprints(prints, 12);
  std::vector<std::vector<std::size_t>> votes(
      12, std::vector<std::size_t>(workload::app_catalog().size(), 0));
  for (std::size_t i = 0; i < prints.size(); ++i) {
    ++votes[static_cast<std::size_t>(clustering.assignment[i])][prints[i].app];
  }
  util::TextTable clusters({"cluster", "jobs", "majority archetype"});
  for (std::size_t c = 0; c < votes.size(); ++c) {
    std::size_t total = 0;
    std::size_t best_app = 0;
    for (std::size_t a = 0; a < votes[c].size(); ++a) {
      total += votes[c][a];
      if (votes[c][a] > votes[c][best_app]) best_app = a;
    }
    if (total == 0) continue;
    clusters.add_row({std::to_string(c), std::to_string(total),
                      workload::app_catalog()[best_app].name});
  }
  std::printf("Cluster portraits at k = 12\n%s\n", clusters.str().c_str());
  std::printf("Higher purity at k near the archetype count shows the\n"
              "fingerprints recover the underlying application classes.\n");
  return 0;
}
