// The telemetry system's day job (paper §2): the near-real-time panel
// facility engineers watch — histogram summaries of every GPU/CPU core
// temperature, cross-checked against MTW supply/return and the staged
// cooling capacity. This example replays one simulated hour and prints
// the panel as the cluster load moves.

#include <cstdio>

#include "core/dashboard.hpp"
#include "core/simulation.hpp"
#include "facility/weather.hpp"
#include "workload/allocation_index.hpp"

int main() {
  using namespace exawatt;

  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(512);
  config.seed = 8;
  config.range = {0, util::kDay};
  core::Simulation sim(config);

  const util::TimeRange hour = {10 * util::kHour, 11 * util::kHour};
  const workload::AllocationIndex alloc(sim.jobs(), hour,
                                        config.scale.nodes);
  const power::FleetVariability fleet(config.scale, 11);
  const thermal::FleetThermal thermals(config.scale, 12);
  const core::FacilityDashboard dashboard(alloc, fleet, thermals,
                                          config.scale.nodes);

  // Drive the cooling plant along the cluster power for realistic MTW
  // state behind each panel refresh.
  const ts::Frame cluster = sim.cluster_frame(hour, {.dt = 10});
  facility::Weather weather(3);
  facility::CoolingParams cp;
  cp.pump_power_w *= config.scale.fraction();
  cp.loop_w_per_c *= config.scale.fraction();
  facility::CoolingPlant plant(cp);
  plant.reset(cluster.at("input_power_w")[0], weather.wet_bulb_c(hour.begin));

  for (std::size_t i = 0; i < cluster.rows(); ++i) {
    const util::TimeSec t = cluster.time_at(i);
    plant.step(10, cluster.at("input_power_w")[i], weather.wet_bulb_c(t));
    // Refresh the panel every 20 minutes of simulated time.
    if (i % 120 == 0) {
      const auto snap = dashboard.snapshot(t, plant.state());
      std::printf("%s\n", snap.render().c_str());
    }
  }

  std::printf("The histogram head-room below the 73 C warning band is what\n"
              "lets operators run medium-temperature water all year.\n");
  return 0;
}
