// GPU reliability walk-through: generate a failure log for a simulated
// period, reproduce the Table 4 composition, the co-occurrence analysis,
// and the per-project failure ranking (paper §6).

#include <cstdio>

#include "core/failure_analysis.hpp"
#include "core/simulation.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace exawatt;

  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(512);
  config.seed = 13;
  config.range = {0, 28 * util::kDay};
  // Boost rates so a 4-week small-machine window still yields a rich log.
  config.failures.rate_scale = 40.0;

  core::Simulation sim(config);
  const auto& log = sim.failure_log();
  std::printf("Generated %zu GPU XID events over 4 weeks on %d nodes\n\n",
              log.size(), config.scale.nodes);

  // Table 4: composition by type.
  util::TextTable table({"GPU error", "count", "max/node", "share"});
  for (const auto& row :
       core::failure_composition(log, config.scale.nodes)) {
    if (row.count == 0) continue;
    table.add_row({failures::xid_name(row.type), std::to_string(row.count),
                   std::to_string(row.max_per_node),
                   util::fmt_double(100.0 * row.max_per_node_share, 1) + "%"});
  }
  std::printf("Failure composition (Table 4 shape)\n%s\n", table.str().c_str());

  // Figure 13: significant co-occurrences.
  const auto corr = core::failure_correlation(log, config.scale.nodes);
  std::printf("Significant co-occurring pairs (Bonferroni 0.05): %zu\n",
              corr.matrix.significant_pairs());
  const auto uc = static_cast<std::size_t>(
      failures::XidType::kMicrocontrollerWarning);
  const auto drv = static_cast<std::size_t>(
      failures::XidType::kDriverErrorHandling);
  std::printf(
      "  microcontroller warning <-> driver error handling: r = %.2f%s\n\n",
      corr.matrix.at(uc, drv).r,
      corr.matrix.at(uc, drv).significant ? " (significant)" : "");

  // Figure 14: top projects by failures per node-hour.
  util::TextTable rank({"project", "node-hours", "failures/node-hour"});
  const auto rates = core::project_failure_rates(
      log, sim.jobs(), sim.projects(), /*hardware_only=*/false, 10);
  for (const auto& r : rates) {
    rank.add_row({sim.projects()[r.project].name,
                  util::fmt_double(r.node_hours, 0),
                  util::fmt_double(r.failures_per_node_hour, 5)});
  }
  std::printf("Top projects by failure rate (Figure 14 shape)\n%s\n",
              rank.str().c_str());
  return 0;
}
