// exawatt_validate — executable reproduction checklist: runs a
// medium-scale simulation and evaluates the shape criteria recorded in
// EXPERIMENTS.md for every paper artifact. Exit code 0 iff all pass.
//
//   exawatt_validate [--nodes N] [--weeks W] [--seed S]
//
// This is deliberately lighter than the bench binaries (minutes vs the
// full sweeps): a smoke-level "is the reproduction still a reproduction"
// gate for CI.

#include <cstdio>
#include <string>
#include <vector>

#include "core/edges.hpp"
#include "core/failure_analysis.hpp"
#include "core/job_features.hpp"
#include "core/msb_validation.hpp"
#include "core/pue_analysis.hpp"
#include "core/simulation.hpp"
#include "core/snapshots.hpp"
#include "core/spectral.hpp"
#include "power/job_power.hpp"
#include "stats/descriptive.hpp"
#include "util/flags.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

struct Checklist {
  util::TextTable table{{"artifact", "criterion", "measured", "pass"}};
  int failures = 0;

  void check(const char* artifact, const char* criterion, double measured,
             bool pass, int precision = 3) {
    table.add_row({artifact, criterion, util::fmt_double(measured, precision),
                   pass ? "ok" : "FAIL"});
    if (!pass) ++failures;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto nodes = static_cast<int>(flags.get_int("nodes", 2313));
  const auto weeks = flags.get_number("weeks", 3.0);
  core::SimulationConfig config;
  config.scale = nodes >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(nodes);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2020));
  config.range = {0, static_cast<util::TimeSec>(weeks * util::kWeek)};
  // Rare failure types need year-scale exposure; boost rates so a short
  // validation window still exercises them (shares and correlations are
  // rate-invariant by construction).
  config.failures.rate_scale = flags.get_number("failure-boost", 15.0);

  std::printf("validating at %d nodes, %.1f weeks, seed %llu...\n\n",
              config.scale.nodes, weeks,
              static_cast<unsigned long long>(config.seed));
  core::Simulation sim(config);
  Checklist c;

  // --- workload / scheduling --------------------------------------------
  {
    const auto& stats = sim.scheduler_stats();
    c.check("workload", "utilization in [0.6, 0.98]", stats.utilization,
            stats.utilization > 0.6 && stats.utilization < 0.98);
    std::array<std::size_t, 6> per_class{};
    for (const auto& j : sim.jobs()) {
      ++per_class[static_cast<std::size_t>(j.sched_class)];
    }
    c.check("T3", "class-5 dominates job count",
            static_cast<double>(per_class[5]) /
                static_cast<double>(sim.jobs().size()),
            per_class[5] > 10 * per_class[1]);
  }

  // --- F5: power envelope + seasonal PUE (short window: winter only) ----
  const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 600, .subsamples = 2});
  const ts::Frame cep = sim.cep_frame(cluster);
  {
    const auto trend = core::year_trend(cluster, cep);
    const double idle_mw =
        config.scale.nodes * machine::SummitSpec::kNodeIdlePowerW / 1e6;
    const double peak_mw =
        config.scale.nodes * 2.35e3 / 1e6;  // realistic node peak
    c.check("F5", "mean power between idle and peak", trend.mean_power_mw,
            trend.mean_power_mw > idle_mw &&
                trend.mean_power_mw < peak_mw);
    c.check("F5", "winter PUE ~1.11", trend.winter_mean_pue,
            trend.winter_mean_pue > 1.07 && trend.winter_mean_pue < 1.16);
  }

  // --- F4: MSB validation ------------------------------------------------
  {
    const machine::Topology topo(config.scale);
    const facility::MsbModel msb(topo, 4);
    const auto result = core::validate_msbs(
        sim.jobs(), topo, msb, {util::kDay, 2 * util::kDay}, 10);
    c.check("F4", "summation over-reads (diff < 0)",
            result.overall_mean_diff_w, result.overall_mean_diff_w < 0.0, 0);
    c.check("F4", "relative offset ~11%", result.overall_relative,
            result.overall_relative > 0.05 && result.overall_relative < 0.18);
    double min_phase = 1.0;
    for (const auto& cmp : result.per_msb) {
      min_phase = std::min(min_phase, cmp.phase_correlation);
    }
    c.check("F4", "in phase (r > 0.99)", min_phase, min_phase > 0.99, 4);
  }

  // --- F6/F7: class structure --------------------------------------------
  const auto summaries = core::summarize_jobs(sim.jobs());
  {
    double prev = 1e18;
    bool ordered = true;
    for (int cls = 1; cls <= 5; ++cls) {
      const auto jobs = core::by_class(summaries, cls);
      if (jobs.size() < 5) continue;
      const auto maxp = core::feature(jobs, core::JobFeature::kMaxPowerW);
      const double med = stats::median(maxp);
      if (med >= prev) ordered = false;
      prev = med;
    }
    c.check("F6", "max power medians ordered by class", prev / 1e6, ordered);
    const auto c1 = core::by_class(summaries, 1);
    if (c1.size() >= 10) {
      const auto cdf = core::feature_cdf(c1, core::JobFeature::kWalltimeHours);
      c.check("F7", "class-1 walltime p80 < 1.2 h", cdf.p80, cdf.p80 < 1.2);
    }
  }

  // --- F9: empty both-high corner ----------------------------------------
  {
    std::size_t both_high = 0;
    for (const auto& s : summaries) {
      if (s.mean_cpu_node_w > 350.0 && s.mean_gpu_node_w > 900.0) {
        ++both_high;
      }
    }
    const double share = static_cast<double>(both_high) /
                         static_cast<double>(summaries.size());
    c.check("F9", "both-high corner < 3%", share, share < 0.03, 4);
  }

  // --- F10: edge-free share + dominant frequency --------------------------
  {
    std::size_t with_edges = 0;
    std::size_t near_200s = 0;
    std::size_t spectra = 0;
    std::size_t analyzed = 0;
    for (const auto& j : sim.jobs()) {
      if (j.start < 0 || analyzed >= 8000) continue;
      ++analyzed;
      const auto series = power::job_power_series(j, 10);
      if (!core::detect_edges(series, static_cast<double>(j.node_count))
               .empty()) {
        ++with_edges;
      }
      const auto spec = core::job_spectrum(series);
      if (spec.valid) {
        ++spectra;
        if (spec.frequency_hz >= 0.004 && spec.frequency_hz <= 0.006) {
          ++near_200s;
        }
      }
    }
    const double edge_share = static_cast<double>(with_edges) /
                              static_cast<double>(analyzed);
    c.check("F10", "edge-free share ~97%", 1.0 - edge_share,
            edge_share > 0.005 && edge_share < 0.08);
    const double f200 =
        static_cast<double>(near_200s) / static_cast<double>(spectra);
    c.check("F10", "200 s band common (>20%)", f200, f200 > 0.2);
  }

  // --- T4/F13: failures ----------------------------------------------------
  {
    const auto& log = sim.failure_log();
    const auto composition =
        core::failure_composition(log, config.scale.nodes);
    c.check("T4", "page faults rank first",
            static_cast<double>(composition[0].count),
            composition[0].type == failures::XidType::kMemoryPageFault, 0);
    double nvlink_share = 0.0;
    for (const auto& row : composition) {
      if (row.type == failures::XidType::kNvlinkError) {
        nvlink_share = row.max_per_node_share;
      }
    }
    c.check("T4", "NVLink super-offender ~97%", nvlink_share,
            nvlink_share > 0.9);
    const auto corr = core::failure_correlation(log, config.scale.nodes);
    const auto uc = static_cast<std::size_t>(
        failures::XidType::kMicrocontrollerWarning);
    const auto drv = static_cast<std::size_t>(
        failures::XidType::kDriverErrorHandling);
    c.check("F13", "uC-warning <-> driver-error r > 0.8",
            corr.matrix.at(uc, drv).r,
            corr.matrix.at(uc, drv).significant &&
                corr.matrix.at(uc, drv).r > 0.8);
    const auto extremity = core::thermal_extremity(
        log, sim.failure_generator().nvlink_offender());
    const auto& dbe = extremity[static_cast<std::size_t>(
        failures::XidType::kDoubleBitError)];
    if (dbe.z_scores.size() >= 10) {
      c.check("F15", "DBE z right-skewed", dbe.z_skewness,
              dbe.z_skewness > 0.3);
    }
    const auto slot0 =
        core::slot_placement(log, failures::XidType::kPageRetirementEvent);
    c.check("F16", "slot 0 elevated",
            static_cast<double>(slot0[0]),
            slot0[0] > slot0[1] && slot0[0] > slot0[5], 0);
  }

  std::printf("%s\n", c.table.str().c_str());
  if (c.failures == 0) {
    std::printf("all criteria pass.\n");
    return 0;
  }
  std::printf("%d criteria FAILED.\n", c.failures);
  return 1;
}
