// exawatt_sim — command-line front end for the digital twin:
//
//   exawatt_sim simulate --nodes 512 --days 7 --seed 42 --out traces/
//       run the twin and export the paper-schema datasets (C/D, E, 1+2,
//       5+7) as CSV files into the output directory.
//
//   exawatt_sim analyze --data traces/
//       re-import the datasets and print the operational report: class
//       mix, power envelope, edge statistics, failure composition.
//
//   exawatt_sim report --nodes 512 --days 2 --seed 42
//       one-shot in-memory simulate + analyze (no files).
//
//   exawatt_sim stream --nodes 64 --minutes 10 --seed 42 --shards 4
//       run the twin's telemetry feed and the streaming analytics engine
//       in lock-step; prints the live dashboard every --refresh seconds
//       and a final parity check against the batch aggregator.

#include <cstdio>
#include <filesystem>
#include <map>
#include <numeric>
#include <string>

#include "core/edges.hpp"
#include "core/failure_analysis.hpp"
#include "core/job_features.hpp"
#include "core/pue_analysis.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "datasets/export.hpp"
#include "datasets/import.hpp"
#include "stream/engine.hpp"
#include "stream/ingest.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/pipeline.hpp"
#include "util/flags.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

int usage() {
  std::printf(
      "usage: exawatt_sim <command> [flags]\n"
      "  simulate --nodes N --days D --seed S --out DIR   export datasets\n"
      "  analyze  --data DIR                              analyze exports\n"
      "  report   --nodes N --days D --seed S             in-memory report\n"
      "  stream   --nodes N --minutes M --seed S --shards K --refresh R\n"
      "                                                   live analytics demo\n");
  return 2;
}

core::SimulationConfig config_from(const util::Flags& flags) {
  core::SimulationConfig config;
  const auto nodes = static_cast<int>(flags.get_int("nodes", 512));
  config.scale = nodes >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(nodes);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto days = flags.get_number("days", 2.0);
  config.range = {0, static_cast<util::TimeSec>(days * util::kDay)};
  return config;
}

void print_job_report(const std::vector<workload::Job>& jobs) {
  std::size_t scheduled = 0;
  std::array<std::size_t, 6> per_class{};
  double node_hours = 0.0;
  for (const auto& j : jobs) {
    if (j.start < 0) continue;
    ++scheduled;
    ++per_class[static_cast<std::size_t>(j.sched_class)];
    node_hours += j.node_hours();
  }
  util::TextTable t({"class", "jobs", "share"});
  for (int cls = 1; cls <= 5; ++cls) {
    t.add_row({std::to_string(cls),
               std::to_string(per_class[static_cast<std::size_t>(cls)]),
               util::fmt_double(100.0 *
                                    static_cast<double>(
                                        per_class[static_cast<std::size_t>(
                                            cls)]) /
                                    static_cast<double>(scheduled),
                                1) +
                   "%"});
  }
  std::printf("jobs: %zu scheduled, %.0f node-hours\n%s\n", scheduled,
              node_hours, t.str().c_str());
}

void print_power_report(const ts::Series& power, int nodes) {
  double peak = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    peak = std::max(peak, power[i]);
    mean += power[i];
  }
  mean /= static_cast<double>(power.size());
  const auto edges = core::detect_edges(power, static_cast<double>(nodes));
  std::printf("cluster power: mean %s, peak %s, %zu edges (868 W/node rule)\n",
              util::fmt_si(mean, "W").c_str(),
              util::fmt_si(peak, "W").c_str(), edges.size());
  std::printf("profile: %s\n\n", core::sparkline(power, 72).c_str());
}

void print_failure_report(const std::vector<failures::GpuFailureEvent>& log,
                          int nodes) {
  if (log.empty()) {
    std::printf("no GPU failures in the window\n");
    return;
  }
  util::TextTable t({"GPU error", "count", "max/node share"});
  for (const auto& row : core::failure_composition(log, nodes)) {
    if (row.count == 0) continue;
    t.add_row({failures::xid_name(row.type), std::to_string(row.count),
               util::fmt_double(100.0 * row.max_per_node_share, 1) + "%"});
  }
  std::printf("GPU failures: %zu total\n%s\n", log.size(), t.str().c_str());
}

int cmd_simulate(const util::Flags& flags) {
  const std::string out = flags.get("out", "traces");
  std::filesystem::create_directories(out);
  core::SimulationConfig config = config_from(flags);
  core::Simulation sim(config);
  std::printf("simulating %d nodes for %.1f days (seed %llu)...\n",
              config.scale.nodes,
              static_cast<double>(config.range.duration()) / util::kDay,
              static_cast<unsigned long long>(config.seed));

  const auto jobs_rows = datasets::export_jobs(out + "/jobs.csv", sim.jobs());
  const auto xid_rows =
      datasets::export_xid_log(out + "/xid_log.csv", sim.failure_log());
  const auto cluster =
      sim.cluster_frame(config.range, {.dt = 60, .subsamples = 2});
  const auto series_rows =
      datasets::export_cluster_series(out + "/cluster_power.csv", cluster);
  const auto summaries = core::summarize_jobs(sim.jobs());
  const auto power_rows =
      datasets::export_job_power(out + "/job_power.csv", summaries);

  util::TextTable t({"dataset", "file", "rows"});
  t.add_row({"C+D job history", out + "/jobs.csv", std::to_string(jobs_rows)});
  t.add_row({"E XID log", out + "/xid_log.csv", std::to_string(xid_rows)});
  t.add_row({"1+2 cluster series", out + "/cluster_power.csv",
             std::to_string(series_rows)});
  t.add_row({"5+7 job power", out + "/job_power.csv",
             std::to_string(power_rows)});
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_analyze(const util::Flags& flags) {
  const std::string dir = flags.get("data", "traces");
  const auto jobs = datasets::import_jobs(dir + "/jobs.csv");
  const auto log = datasets::import_xid_log(dir + "/xid_log.csv");
  const auto power = datasets::import_cluster_power(dir + "/cluster_power.csv");
  int max_node = 0;
  for (const auto& j : jobs) {
    for (const auto& r : j.nodes) max_node = std::max(max_node, r.first + r.count);
  }
  std::printf("loaded %zu jobs, %zu failures, %zu power windows (machine "
              ">= %d nodes)\n\n",
              jobs.size(), log.size(), power.size(), max_node);
  print_job_report(jobs);
  print_power_report(power, max_node);
  print_failure_report(log, max_node);
  return 0;
}

int cmd_report(const util::Flags& flags) {
  core::SimulationConfig config = config_from(flags);
  core::Simulation sim(config);
  print_job_report(sim.jobs());
  const auto cluster =
      sim.cluster_frame(config.range, {.dt = 60, .subsamples = 2});
  print_power_report(cluster.at("input_power_w"), config.scale.nodes);
  const auto cep = sim.cep_frame(cluster);
  const auto trend = core::year_trend(cluster, cep);
  std::printf("PUE: mean %.3f (facility model)\n\n", trend.mean_pue);
  print_failure_report(sim.failure_log(), config.scale.nodes);
  return 0;
}

int cmd_stream(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const double minutes = flags.get_number("minutes", 10.0);
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 4));
  const auto refresh = static_cast<util::TimeSec>(flags.get_int("refresh", 120));

  // Stream a window an hour into the operational period so jobs are
  // already running when the panel comes up.
  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};

  core::SimulationConfig config;
  config.scale = n >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(n);
  config.seed = seed;
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  std::printf("streaming %d nodes for %.1f min (seed %llu, %zu shards)\n\n",
              config.scale.nodes, minutes,
              static_cast<unsigned long long>(seed), shards);

  workload::AllocationIndex alloc(sim.jobs(), window, config.scale.nodes);
  power::FleetVariability fleet(config.scale, seed + 1);
  thermal::FleetThermal thermals(config.scale, seed + 2);
  machine::Topology topo(config.scale);
  facility::MsbModel msb(topo, seed + 3);
  std::vector<machine::NodeId> nodes(
      static_cast<std::size_t>(config.scale.nodes));
  std::iota(nodes.begin(), nodes.end(), 0);
  telemetry::Pipeline pipeline(nodes, alloc, fleet, thermals, msb);

  stream::IngestOptions ingest_options;
  ingest_options.shards = shards;
  stream::ShardedIngest ingest(ingest_options);

  stream::EngineOptions engine_options;
  engine_options.range = window;
  engine_options.rollup.edge_node_count =
      static_cast<double>(config.scale.nodes);
  engine_options.rollup.weather_seed = seed + 4;
  stream::Engine engine(engine_options);

  // Lock-step bridge: the tap hands over each second's collector output;
  // events sit in the in-flight map until their arrival second, which is
  // what makes the feed genuinely out-of-order across metrics.
  std::map<util::TimeSec, std::vector<telemetry::Collector::Arrival>>
      in_flight;
  pipeline.set_tap([&](util::TimeSec now,
                       std::span<const telemetry::Collector::Arrival> batch) {
    for (const auto& arrival : batch) {
      in_flight[arrival.arrival_t].push_back(arrival);
    }
    for (auto it = in_flight.begin();
         it != in_flight.end() && it->first <= now;
         it = in_flight.erase(it)) {
      for (const auto& arrival : it->second) ingest.push(arrival);
    }
    ingest.drain(
        [&](const telemetry::Collector::Arrival& a) { engine.ingest(a); });
    engine.advance_to(now);
    if (refresh > 0 && (now - window.begin + 1) % refresh == 0) {
      std::printf("%s\n", engine.render().c_str());
    }
  });
  const auto stats = pipeline.run(window);

  // Stragglers still in flight past the range end (delay tail).
  for (const auto& [t, batch] : in_flight) {
    for (const auto& arrival : batch) ingest.push(arrival);
  }
  ingest.drain(
      [&](const telemetry::Collector::Arrival& a) { engine.ingest(a); });
  engine.finish();
  std::printf("%s\n", engine.render(8).c_str());

  std::printf("feed: %llu events | mean delay %.2f s | ingest pushed %llu "
              "dropped %llu | max shard lag %zu\n",
              static_cast<unsigned long long>(stats.events),
              stats.mean_delay_s,
              static_cast<unsigned long long>(ingest.total_pushed()),
              static_cast<unsigned long long>(ingest.total_dropped()),
              [&] {
                std::size_t lag = 0;
                for (std::size_t s = 0; s < ingest.shards(); ++s) {
                  lag = std::max(lag, ingest.shard_stats(s).max_lag);
                }
                return lag;
              }());

  // Parity: the streaming roll-up must reproduce the batch aggregator
  // bit-for-bit from the same archive.
  const auto batch_sum = telemetry::cluster_sum(
      pipeline.archive(), nodes,
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0), window);
  const auto live = engine.rollup().power_series();
  const std::size_t nw = std::min(batch_sum.size(), live.size());
  std::size_t identical = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    if (batch_sum[i] == live[i]) ++identical;
  }
  std::printf("parity vs batch aggregator: %zu/%zu windows bit-identical\n",
              identical, nw);
  return identical == nw && nw > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  try {
    if (flags.command() == "simulate") return cmd_simulate(flags);
    if (flags.command() == "analyze") return cmd_analyze(flags);
    if (flags.command() == "report") return cmd_report(flags);
    if (flags.command() == "stream") return cmd_stream(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
