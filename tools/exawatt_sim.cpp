// exawatt_sim — command-line front end for the digital twin:
//
//   exawatt_sim simulate --nodes 512 --days 7 --seed 42 --out traces/
//       run the twin and export the paper-schema datasets (C/D, E, 1+2,
//       5+7) as CSV files into the output directory.
//
//   exawatt_sim analyze --data traces/
//       re-import the datasets and print the operational report: class
//       mix, power envelope, edge statistics, failure composition.
//
//   exawatt_sim report --nodes 512 --days 2 --seed 42
//       one-shot in-memory simulate + analyze (no files).
//
//   exawatt_sim stream --nodes 64 --minutes 10 --seed 42 --shards 4
//       run the twin's telemetry feed and the streaming analytics engine
//       in lock-step; prints the live dashboard every --refresh seconds
//       and a final parity check against the batch aggregator.
//
//   exawatt_sim simulate ... --store telemetry_store/ --tnodes 32 --tminutes 30
//       additionally run the 1 Hz telemetry pipeline over a node subset
//       and land the feed in the crash-safe on-disk columnar store.
//
//   exawatt_sim analyze --store telemetry_store/
//       reopen the store (recovery report), roll up cluster power from
//       segments and replay it through the streaming engine — analysis
//       from disk, no re-simulation.
//
//   exawatt_sim storecheck --nodes 12 --minutes 6 --store DIR
//       round-trip gate (the `store_roundtrip` ctest): simulate, persist,
//       reopen, and require store/archive/streaming-replay bit-parity.
//
//   exawatt_sim faultcheck --nodes 6 --minutes 4 --store DIR
//       chaos gate (the `faultcheck` ctest): crash the store at every
//       write point in turn, reopen, and require that recovery loses at
//       most the unsealed tail (surviving samples are a subset of the
//       reference feed, cluster_sum bit-matches a sub-archive built from
//       the survivors), then exercise the degraded-query path.
//
//   exawatt_sim serve --store telemetry_store/ --port 4626
//       expose the store over TCP: the query service answers window-sum /
//       scan / roll-up requests and streams subscription ticks. SIGINT or
//       SIGTERM drains gracefully and prints the final service counters.
//
//   exawatt_sim servecheck --nodes 12 --minutes 6 --store DIR
//       loopback serving gate (the `net_roundtrip` ctest): stand a server
//       up on an ephemeral port and require every wire response to be
//       bit-identical to the direct in-process store call, subscription
//       ticks to match the streaming replay, and a damaged store to
//       report its losses over the wire.
//
//   exawatt_sim cluster --shards 4701,4702,4703 --port 4700
//       scatter-gather coordinator front-end: serve the full query
//       protocol over a set of shard servers (started with `serve`),
//       merging partials and degrading — never erroring — when a shard
//       is down. Ctrl-C drains and prints the per-shard breakdown.
//
//   exawatt_sim clustercheck --nodes 9 --minutes 5 --store DIR
//       cluster parity gate (the `cluster_roundtrip` ctest): shard one
//       telemetry feed across 3 loopback shard servers and require every
//       coordinator answer to be bit-identical to the single-store
//       answer; kill a shard mid-run and require partial results with
//       exact lost-segment accounting; rebalance a sealed segment
//       between shards and require parity again on both sides of the
//       flip.
//
//   exawatt_sim scenario --store DIR --cap-mw 18 [--force-chillers]
//       counterfactual what-if: replay the stored trace with a declared
//       intervention (cluster power cap, wet-bulb offset, forced trim
//       chillers, replaced weather year) next to the un-intervened
//       baseline and print the energy/PUE deltas. --endpoint HOST:PORT
//       runs the same replay on a live server (kScenario RPC);
//       --sweep-caps 14,16,18 fans one variant per cap (kScenarioSweep).
//
//   exawatt_sim scenariocheck --nodes 12 --minutes 6 --store DIR
//       scenario gate (the `scenario_roundtrip` ctest): the identity
//       scenario must be bit-identical to pue_rollup both store-backed
//       and over loopback RPC, a capped replay must never exceed the
//       baseline power, a forced chiller outage must never beat the
//       baseline PUE, and a sweep whose client disconnects mid-stream
//       must free its admission slot (checked via server_stats).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <thread>

#include "cluster/coordinator.hpp"
#include "cluster/merge.hpp"
#include "cluster/rebalance.hpp"
#include "cluster/shard_map.hpp"
#include "core/edges.hpp"
#include "faultfs/fault.hpp"
#include "core/failure_analysis.hpp"
#include "core/job_features.hpp"
#include "core/pue_analysis.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "datasets/export.hpp"
#include "datasets/import.hpp"
#include "qos/cost.hpp"
#include "qos/scheduler.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "store/store.hpp"
#include "stream/engine.hpp"
#include "stream/ingest.hpp"
#include "stream/replay.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/pipeline.hpp"
#include "util/flags.hpp"
#include "util/signal.hpp"
#include "util/text_table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace exawatt;

int usage() {
  std::printf(
      "usage: exawatt_sim <command> [flags]\n"
      "  simulate --nodes N --days D --seed S --out DIR   export datasets\n"
      "           [--store DIR --tnodes N --tminutes M]   + telemetry store\n"
      "  analyze  --data DIR | --store DIR                analyze exports\n"
      "  report   --nodes N --days D --seed S             in-memory report\n"
      "  stream   --nodes N --minutes M --seed S --shards K --refresh R\n"
      "                                                   live analytics demo\n"
      "  storecheck --nodes N --minutes M --store DIR     store parity gate\n"
      "  faultcheck --nodes N --minutes M --store DIR [--stride K]\n"
      "                                                   crash-at-every-write"
      " gate\n"
      "  compact  --store DIR [--drop-before T --small-events N]\n"
      "                                                   merge + retention"
      " pass\n"
      "  compactcheck --nodes N --minutes M --store DIR [--stride K]\n"
      "                                                   compaction crash"
      " gate\n"
      "  serve    --store DIR --port P [--queue N --deadline MS]\n"
      "           [--no-qos --min-workers N --max-workers N]\n"
      "           [--auto-compact --compact-interval S]    TCP query service\n"
      "  servecheck --nodes N --minutes M --store DIR     loopback wire-parity"
      " gate\n"
      "  qoscheck --nodes N --minutes M --store DIR       multi-tenant QoS"
      " gate\n"
      "  cluster  --shards P1,P2,.. --port P [--queue N --deadline MS]\n"
      "                                                   scatter-gather"
      " coordinator\n"
      "  clustercheck --nodes N --minutes M --store DIR   3-shard cluster"
      " parity gate\n"
      "  scenario --store DIR | --endpoint HOST:PORT [--cap-mw MW]\n"
      "           [--wet-bulb-offset C --force-chillers --weather-seed S]\n"
      "           [--sweep-caps MW1,MW2,...]              counterfactual"
      " replay\n"
      "  scenariocheck --nodes N --minutes M --store DIR  scenario parity"
      " gate\n"
      "  analyze  --endpoint HOST:PORT                    server_stats over"
      " the wire\n");
  return 2;
}

core::SimulationConfig config_from(const util::Flags& flags) {
  core::SimulationConfig config;
  const auto nodes = static_cast<int>(flags.get_int("nodes", 512));
  config.scale = nodes >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(nodes);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto days = flags.get_number("days", 2.0);
  config.range = {0, static_cast<util::TimeSec>(days * util::kDay)};
  return config;
}

/// The model stack behind a live telemetry feed over a node subset —
/// shared by `stream`, `simulate --store` and `storecheck`.
struct TelemetryRig {
  workload::AllocationIndex alloc;
  power::FleetVariability fleet;
  thermal::FleetThermal thermals;
  machine::Topology topo;
  facility::MsbModel msb;
  std::vector<machine::NodeId> nodes;
  telemetry::Pipeline pipeline;

  TelemetryRig(core::Simulation& sim, const core::SimulationConfig& config,
               util::TimeRange window, int n_nodes)
      : alloc(sim.jobs(), window, config.scale.nodes),
        fleet(config.scale, config.seed + 1),
        thermals(config.scale, config.seed + 2),
        topo(config.scale),
        msb(topo, config.seed + 3),
        nodes([&] {
          std::vector<machine::NodeId> v(static_cast<std::size_t>(n_nodes));
          std::iota(v.begin(), v.end(), 0);
          return v;
        }()),
        pipeline(nodes, alloc, fleet, thermals, msb) {}
};

/// Count bit-identical leading windows of two power series.
std::pair<std::size_t, std::size_t> parity(const ts::Series& a,
                                           const ts::Series& b) {
  const std::size_t nw = std::min(a.size(), b.size());
  std::size_t identical = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    if (a[i] == b[i]) ++identical;
  }
  return {identical, nw};
}

void print_job_report(const std::vector<workload::Job>& jobs) {
  std::size_t scheduled = 0;
  std::array<std::size_t, 6> per_class{};
  double node_hours = 0.0;
  for (const auto& j : jobs) {
    if (j.start < 0) continue;
    ++scheduled;
    ++per_class[static_cast<std::size_t>(j.sched_class)];
    node_hours += j.node_hours();
  }
  util::TextTable t({"class", "jobs", "share"});
  for (int cls = 1; cls <= 5; ++cls) {
    t.add_row({std::to_string(cls),
               std::to_string(per_class[static_cast<std::size_t>(cls)]),
               util::fmt_double(100.0 *
                                    static_cast<double>(
                                        per_class[static_cast<std::size_t>(
                                            cls)]) /
                                    static_cast<double>(scheduled),
                                1) +
                   "%"});
  }
  std::printf("jobs: %zu scheduled, %.0f node-hours\n%s\n", scheduled,
              node_hours, t.str().c_str());
}

void print_power_report(const ts::Series& power, int nodes) {
  double peak = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    peak = std::max(peak, power[i]);
    mean += power[i];
  }
  mean /= static_cast<double>(power.size());
  const auto edges = core::detect_edges(power, static_cast<double>(nodes));
  std::printf("cluster power: mean %s, peak %s, %zu edges (868 W/node rule)\n",
              util::fmt_si(mean, "W").c_str(),
              util::fmt_si(peak, "W").c_str(), edges.size());
  std::printf("profile: %s\n\n", core::sparkline(power, 72).c_str());
}

void print_failure_report(const std::vector<failures::GpuFailureEvent>& log,
                          int nodes) {
  if (log.empty()) {
    std::printf("no GPU failures in the window\n");
    return;
  }
  util::TextTable t({"GPU error", "count", "max/node share"});
  for (const auto& row : core::failure_composition(log, nodes)) {
    if (row.count == 0) continue;
    t.add_row({failures::xid_name(row.type), std::to_string(row.count),
               util::fmt_double(100.0 * row.max_per_node_share, 1) + "%"});
  }
  std::printf("GPU failures: %zu total\n%s\n", log.size(), t.str().c_str());
}

int cmd_simulate(const util::Flags& flags) {
  const std::string out = flags.get("out", "traces");
  std::filesystem::create_directories(out);
  core::SimulationConfig config = config_from(flags);
  core::Simulation sim(config);
  std::printf("simulating %d nodes for %.1f days (seed %llu)...\n",
              config.scale.nodes,
              static_cast<double>(config.range.duration()) / util::kDay,
              static_cast<unsigned long long>(config.seed));

  const auto jobs_rows = datasets::export_jobs(out + "/jobs.csv", sim.jobs());
  const auto xid_rows =
      datasets::export_xid_log(out + "/xid_log.csv", sim.failure_log());
  const auto cluster =
      sim.cluster_frame(config.range, {.dt = 60, .subsamples = 2});
  const auto series_rows =
      datasets::export_cluster_series(out + "/cluster_power.csv", cluster);
  const auto summaries = core::summarize_jobs(sim.jobs());
  const auto power_rows =
      datasets::export_job_power(out + "/job_power.csv", summaries);

  util::TextTable t({"dataset", "file", "rows"});
  t.add_row({"C+D job history", out + "/jobs.csv", std::to_string(jobs_rows)});
  t.add_row({"E XID log", out + "/xid_log.csv", std::to_string(xid_rows)});
  t.add_row({"1+2 cluster series", out + "/cluster_power.csv",
             std::to_string(series_rows)});
  t.add_row({"5+7 job power", out + "/job_power.csv",
             std::to_string(power_rows)});

  const std::string store_dir = flags.get("store");
  if (!store_dir.empty()) {
    // Dataset A: run the 1 Hz out-of-band pipeline over a node subset and
    // land the feed durably — analyze --store re-reads it without
    // re-simulating.
    const int tnodes = static_cast<int>(
        std::min<std::int64_t>(config.scale.nodes, flags.get_int("tnodes", 32)));
    const auto tminutes = flags.get_number("tminutes", 30.0);
    const util::TimeRange twindow{
        0, std::min(config.range.end,
                    static_cast<util::TimeSec>(tminutes * 60.0))};
    TelemetryRig rig(sim, config, twindow, tnodes);
    store::Store store = store::Store::open(store_dir);
    rig.pipeline.set_batch_sink(
        [&](const std::vector<telemetry::MetricEvent>& batch) {
          store.append(batch);
        });
    rig.pipeline.run(twindow);
    store.flush();
    t.add_row({"A telemetry store", store_dir + "/ (" +
                   std::to_string(store.sealed_segments()) + " segments)",
               std::to_string(store.total_events())});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

/// Every node with an input-power channel on disk.
std::vector<machine::NodeId> power_nodes(const store::Store& store) {
  const int power_channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<machine::NodeId> nodes;
  for (const telemetry::MetricId id : store.metrics()) {
    if (telemetry::metric_channel(id) == power_channel) {
      nodes.push_back(telemetry::metric_node(id));
    }
  }
  return nodes;
}

void print_query_stats(const char* what, const store::QueryStats& stats) {
  std::printf("%s: cache %llu hits / %llu misses%s", what,
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              stats.degraded() ? "" : ", no data loss\n");
  if (stats.degraded()) {
    std::printf(", DEGRADED: %zu segment(s) and %zu block(s) lost\n",
                stats.lost_segments, stats.lost_blocks);
  }
}

int analyze_store(const std::string& dir) {
  store::Store store = store::Store::open(dir);
  const auto& rec = store.recovery();
  std::printf("store %s: %zu segments, %zu day partitions, %llu events, "
              "%.2f MB on disk (%.1fx compression)\n",
              dir.c_str(), store.sealed_segments(), store.day_partitions(),
              static_cast<unsigned long long>(store.total_events()),
              static_cast<double>(store.stored_bytes()) / 1e6,
              store.compression_ratio());
  std::printf("recovery: %s (adopted %zu, dropped corrupt %zu, dropped "
              "missing %zu%s)\n\n",
              rec.clean() ? "clean" : "repaired", rec.adopted_orphans,
              rec.dropped_corrupt, rec.dropped_missing,
              rec.manifest_rebuilt ? ", manifest rebuilt" : "");

  const int power_channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  const std::vector<machine::NodeId> nodes = power_nodes(store);
  if (nodes.empty()) {
    std::printf("store holds no input-power channels; nothing to analyze\n");
    return 1;
  }
  const util::TimeRange window = store.bounds();
  store::QueryStats sum_stats;
  const auto power = store::cluster_sum(store, nodes, power_channel, window,
                                        10, nullptr, nullptr, &sum_stats);
  print_power_report(power, static_cast<int>(nodes.size()));
  print_query_stats("roll-up scan", sum_stats);

  stream::EngineOptions options;
  options.range = window;
  options.rollup.edge_node_count = static_cast<double>(nodes.size());
  store::QueryStats replay_stats;
  const auto replay =
      stream::replay_rollup(store, nodes, options, {}, &replay_stats);
  print_query_stats("replay scan", replay_stats);
  const auto [identical, nw] = parity(power, replay.power);
  std::printf("streaming replay parity vs store roll-up: %zu/%zu windows "
              "bit-identical\n",
              identical, nw);
  // A degraded store still analyzes — that is the point of the QueryStats
  // plumbing — but the parity gate below only holds on an intact one.
  if (sum_stats.degraded() || replay_stats.degraded()) return 0;
  return identical == nw && nw > 0 ? 0 : 1;
}

/// "PORT" or "HOST:PORT" → Endpoint (bare ports dial loopback).
cluster::Endpoint parse_endpoint(const std::string& spec) {
  cluster::Endpoint ep;
  const std::size_t colon = spec.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  if (colon != std::string::npos && colon > 0) ep.host = spec.substr(0, colon);
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("bad endpoint (want PORT or HOST:PORT): " + spec);
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

/// Comma-separated endpoint list, e.g. "4701,4702" or "10.0.0.2:4701,...".
std::vector<cluster::Endpoint> parse_endpoints(const std::string& list) {
  std::vector<cluster::Endpoint> eps;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string part = list.substr(begin, end - begin);
    if (!part.empty()) eps.push_back(parse_endpoint(part));
    begin = end + 1;
  }
  return eps;
}

/// `analyze --endpoint HOST:PORT`: read the kServerStats counters off a
/// live server — a shard reports its service metrics; a coordinator
/// front-end additionally reports upstream-link health (reconnects and
/// down shards) via the stats-augment hook.
int analyze_endpoint(const std::string& spec) {
  const cluster::Endpoint ep = parse_endpoint(spec);
  server::ClientOptions copts;
  copts.host = ep.host;
  copts.port = ep.port;
  server::Client client(copts);
  server::wire::Request req;
  req.method = server::wire::Method::kServerStats;
  const auto resp = client.call(req);
  if (resp.status != server::wire::Status::kOk) {
    std::printf("server_stats on %s:%u returned %s\n", ep.host.c_str(),
                ep.port, server::wire::status_name(resp.status));
    return 1;
  }
  const auto& s = resp.server;
  std::printf("server %s:%u\n", ep.host.c_str(), ep.port);
  std::printf(
      "service: %llu accepted, %llu served, %llu shed, %llu deadline-"
      "exceeded, %llu cancelled, %llu failed | depth %llu / limit %llu | "
      "latency p50 %.2f ms p99 %.2f ms\n",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.served),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.queue_limit), s.p50_ms, s.p99_ms);
  if (s.shards_total > 0) {
    std::printf("upstream: %llu shard(s), %llu down | reconnects %llu "
                "attempted / %llu succeeded\n",
                static_cast<unsigned long long>(s.shards_total),
                static_cast<unsigned long long>(s.shards_down),
                static_cast<unsigned long long>(s.reconnects_attempted),
                static_cast<unsigned long long>(s.reconnects_succeeded));
  } else {
    std::printf("upstream: none (single-store server)\n");
  }
  // A classic-FIFO (or pre-QoS) server reports all-zero QoS counters;
  // printing them would only mislead.
  std::uint64_t qos_activity = s.qos_workers;
  for (std::size_t c = 0; c < qos::kClassCount; ++c) {
    qos_activity += s.qos_served[c] + s.qos_shed[c];
  }
  if (qos_activity > 0) {
    std::printf("qos: %llu worker(s), backlog %llu us estimated\n",
                static_cast<unsigned long long>(s.qos_workers),
                static_cast<unsigned long long>(s.qos_backlog_cost_us));
    for (std::size_t c = 0; c < qos::kClassCount; ++c) {
      std::printf("  %-11s %llu served, %llu shed, p99 %.2f ms\n",
                  qos::class_name(static_cast<qos::Class>(c)),
                  static_cast<unsigned long long>(s.qos_served[c]),
                  static_cast<unsigned long long>(s.qos_shed[c]),
                  static_cast<double>(s.qos_p99_us[c]) / 1000.0);
    }
  }
  return 0;
}

int cmd_analyze(const util::Flags& flags) {
  const std::string endpoint = flags.get("endpoint");
  if (!endpoint.empty()) return analyze_endpoint(endpoint);
  const std::string store_dir = flags.get("store");
  if (!store_dir.empty()) return analyze_store(store_dir);
  const std::string dir = flags.get("data", "traces");
  const auto jobs = datasets::import_jobs(dir + "/jobs.csv");
  const auto log = datasets::import_xid_log(dir + "/xid_log.csv");
  const auto power = datasets::import_cluster_power(dir + "/cluster_power.csv");
  int max_node = 0;
  for (const auto& j : jobs) {
    for (const auto& r : j.nodes) max_node = std::max(max_node, r.first + r.count);
  }
  std::printf("loaded %zu jobs, %zu failures, %zu power windows (machine "
              ">= %d nodes)\n\n",
              jobs.size(), log.size(), power.size(), max_node);
  print_job_report(jobs);
  print_power_report(power, max_node);
  print_failure_report(log, max_node);
  return 0;
}

int cmd_report(const util::Flags& flags) {
  core::SimulationConfig config = config_from(flags);
  core::Simulation sim(config);
  print_job_report(sim.jobs());
  const auto cluster =
      sim.cluster_frame(config.range, {.dt = 60, .subsamples = 2});
  print_power_report(cluster.at("input_power_w"), config.scale.nodes);
  const auto cep = sim.cep_frame(cluster);
  const auto trend = core::year_trend(cluster, cep);
  std::printf("PUE: mean %.3f (facility model)\n\n", trend.mean_pue);
  print_failure_report(sim.failure_log(), config.scale.nodes);
  return 0;
}

int cmd_stream(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const double minutes = flags.get_number("minutes", 10.0);
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 4));
  const auto refresh = static_cast<util::TimeSec>(flags.get_int("refresh", 120));

  // Stream a window an hour into the operational period so jobs are
  // already running when the panel comes up.
  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};

  core::SimulationConfig config;
  config.scale = n >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(n);
  config.seed = seed;
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  std::printf("streaming %d nodes for %.1f min (seed %llu, %zu shards)\n\n",
              config.scale.nodes, minutes,
              static_cast<unsigned long long>(seed), shards);

  TelemetryRig rig(sim, config, window, config.scale.nodes);
  telemetry::Pipeline& pipeline = rig.pipeline;
  const std::vector<machine::NodeId>& nodes = rig.nodes;

  stream::IngestOptions ingest_options;
  ingest_options.shards = shards;
  stream::ShardedIngest ingest(ingest_options);

  stream::EngineOptions engine_options;
  engine_options.range = window;
  engine_options.rollup.edge_node_count =
      static_cast<double>(config.scale.nodes);
  engine_options.rollup.weather_seed = seed + 4;
  stream::Engine engine(engine_options);

  // Ctrl-C / SIGTERM: stop the feed at the current simulated second, let
  // the drain below flush stragglers, and still print the final panel.
  util::SignalTrap trap;

  // Lock-step bridge: the tap hands over each second's collector output;
  // events sit in the in-flight map until their arrival second, which is
  // what makes the feed genuinely out-of-order across metrics.
  std::map<util::TimeSec, std::vector<telemetry::Collector::Arrival>>
      in_flight;
  pipeline.set_tap([&](util::TimeSec now,
                       std::span<const telemetry::Collector::Arrival> batch) {
    if (trap.stop_requested()) pipeline.request_stop();
    for (const auto& arrival : batch) {
      in_flight[arrival.arrival_t].push_back(arrival);
    }
    for (auto it = in_flight.begin();
         it != in_flight.end() && it->first <= now;
         it = in_flight.erase(it)) {
      for (const auto& arrival : it->second) ingest.push(arrival);
    }
    ingest.drain(
        [&](const telemetry::Collector::Arrival& a) { engine.ingest(a); });
    engine.advance_to(now);
    // Back-pressure watchdog: shed events page like any other alert.
    engine.alerts().on_ingest_drops(now, ingest.total_dropped());
    if (refresh > 0 && (now - window.begin + 1) % refresh == 0) {
      std::printf("%s\n", engine.render().c_str());
    }
  });
  const auto stats = pipeline.run(window);
  if (trap.stop_requested()) {
    std::printf("\nsignal %d: feed stopped early, draining in-flight "
                "events...\n",
                trap.signal_number());
  }

  // Stragglers still in flight past the range end (delay tail).
  for (const auto& [t, batch] : in_flight) {
    for (const auto& arrival : batch) ingest.push(arrival);
  }
  ingest.drain(
      [&](const telemetry::Collector::Arrival& a) { engine.ingest(a); });
  engine.finish();
  std::printf("%s\n", engine.render(8).c_str());

  std::printf("feed: %llu events | mean delay %.2f s | ingest pushed %llu "
              "dropped %llu | max shard lag %zu\n",
              static_cast<unsigned long long>(stats.events),
              stats.mean_delay_s,
              static_cast<unsigned long long>(ingest.total_pushed()),
              static_cast<unsigned long long>(ingest.total_dropped()),
              [&] {
                std::size_t lag = 0;
                for (std::size_t s = 0; s < ingest.shards(); ++s) {
                  lag = std::max(lag, ingest.shard_stats(s).max_lag);
                }
                return lag;
              }());

  // Parity: the streaming roll-up must reproduce the batch aggregator
  // bit-for-bit from the same archive.
  const auto batch_sum = telemetry::cluster_sum(
      pipeline.archive(), nodes,
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0), window);
  const auto live = engine.rollup().power_series();
  const std::size_t nw = std::min(batch_sum.size(), live.size());
  std::size_t identical = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    if (batch_sum[i] == live[i]) ++identical;
  }
  std::printf("parity vs batch aggregator: %zu/%zu windows bit-identical\n",
              identical, nw);
  // An interrupted stream saw only a prefix of the window; the full-run
  // parity gate does not apply, a clean drain is the success criterion.
  if (trap.stop_requested()) return 0;
  return identical == nw && nw > 0 ? 0 : 1;
}

/// The `store_roundtrip` ctest gate: persist a live feed, reopen the
/// store from disk and require bit-parity against the in-memory archive
/// on every access path (per-metric scans, cluster roll-up, streaming
/// replay). Exits non-zero on the first divergence.
int cmd_storecheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 12));
  const double minutes = flags.get_number("minutes", 6.0);
  const std::string dir = flags.get("store", "storecheck_data");
  std::filesystem::remove_all(dir);

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  store::StoreOptions store_options;
  store_options.segment_events = 1 << 14;  // several segments even at N=12
  {
    store::Store store = store::Store::open(dir, store_options);
    rig.pipeline.set_batch_sink(
        [&](const std::vector<telemetry::MetricEvent>& batch) {
          store.append(batch);
        });
    const auto stats = rig.pipeline.run(window);
    store.flush();
    std::printf("persisted %llu events into %zu segments\n",
                static_cast<unsigned long long>(stats.events),
                store.sealed_segments());
  }  // store closed — the reopen below starts from disk alone

  store::Store store = store::Store::open(dir, store_options);
  if (!store.recovery().clean()) {
    std::printf("FAIL: reopen of a cleanly-flushed store needed repair\n");
    return 1;
  }
  const auto& archive = rig.pipeline.archive();

  std::size_t mismatched_metrics = 0;
  const auto ids = store.metrics();
  for (const telemetry::MetricId id : ids) {
    const auto disk = store.query(id, window);
    const auto mem = archive.query(id, window);
    if (disk.size() != mem.size() ||
        !std::equal(disk.begin(), disk.end(), mem.begin(),
                    [](const ts::Sample& a, const ts::Sample& b) {
                      return a.t == b.t && a.value == b.value;
                    })) {
      ++mismatched_metrics;
    }
  }
  std::printf("per-metric parity: %zu/%zu metrics bit-identical\n",
              ids.size() - mismatched_metrics, ids.size());

  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  const auto batch_sum =
      telemetry::cluster_sum(archive, rig.nodes, channel, window);
  const auto disk_sum = store::cluster_sum(store, rig.nodes, channel, window);
  const auto [sum_same, sum_nw] = parity(batch_sum, disk_sum);
  std::printf("cluster_sum parity: %zu/%zu windows bit-identical\n", sum_same,
              sum_nw);

  stream::EngineOptions options;
  options.range = window;
  options.rollup.edge_node_count = static_cast<double>(rig.nodes.size());
  const auto replayed = stream::replay_power_rollup(store, rig.nodes, options);
  const auto [replay_same, replay_nw] = parity(batch_sum, replayed);
  std::printf("streaming replay parity: %zu/%zu windows bit-identical\n",
              replay_same, replay_nw);

  const bool ok = mismatched_metrics == 0 && !ids.empty() &&
                  sum_same == sum_nw && sum_nw > 0 &&
                  replay_same == replay_nw && replay_nw > 0;
  std::printf("storecheck: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

/// True when every sample of `part` appears in `full` with an identical
/// timestamp and bit-identical value (both inputs time-sorted).
bool is_subset(const std::vector<ts::Sample>& part,
               const std::vector<ts::Sample>& full) {
  std::size_t j = 0;
  for (const auto& s : part) {
    while (j < full.size() && full[j].t < s.t) ++j;
    if (j >= full.size() || full[j].t != s.t || full[j].value != s.value) {
      return false;
    }
    ++j;
  }
  return true;
}

/// The `faultcheck` ctest gate: a scripted chaos schedule against the
/// on-disk store. One reference feed is captured, then the same batches
/// are replayed with a simulated process death at every write point in
/// turn; each survivor store must reopen to a strict subset of the
/// reference (never a wrong value) whose cluster roll-up bit-matches a
/// sub-archive rebuilt from exactly the surviving events. Finishes with a
/// lost-segment degraded-query probe. Exits non-zero on any violation.
int cmd_faultcheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 6));
  const double minutes = flags.get_number("minutes", 4.0);
  const std::string dir = flags.get("store", "faultcheck_data");
  const auto stride =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          1, flags.get_int("stride", 1)));

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  // One reference run: capture the batch stream so every chaos replay
  // feeds byte-identical input, and keep the in-memory archive as truth.
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  rig.pipeline.set_batch_sink(
      [&](const std::vector<telemetry::MetricEvent>& batch) {
        batches.push_back(batch);
      });
  const auto feed_stats = rig.pipeline.run(window);
  const auto& archive = rig.pipeline.archive();
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);

  store::StoreOptions base_options;
  base_options.segment_events = 1 << 13;  // several seals even at N=6

  // Replay the captured batches into `root` through `vfs`; false when an
  // injected fault killed the run before the final flush.
  auto feed = [&](const std::string& root, util::Vfs& vfs) {
    std::filesystem::remove_all(root);
    store::StoreOptions opts = base_options;
    opts.vfs = &vfs;
    try {
      store::Store store = store::Store::open(root, opts);
      for (const auto& batch : batches) store.append(batch);
      store.flush();
      return true;
    } catch (const std::exception&) {
      return false;  // simulated process death; reopen happens below
    }
  };

  // Verify one survivor store against the reference archive. Returns the
  // number of violations printed.
  auto verify_survivor = [&](const std::string& root,
                             const std::string& what) {
    std::size_t bad = 0;
    store::Store store = store::Store::open(root, base_options);
    telemetry::Archive sub;
    std::map<std::int64_t, std::vector<telemetry::MetricEvent>> by_day;
    for (const telemetry::MetricId id : store.metrics()) {
      const auto disk = store.query(id, window);
      if (!is_subset(disk, archive.query(id, window))) {
        std::printf("FAIL %s: metric %u has samples the feed never "
                    "produced\n",
                    what.c_str(), id);
        ++bad;
      }
      for (const auto& s : disk) {
        by_day[s.t / util::kDay].push_back(
            {id, s.t, static_cast<std::int32_t>(s.value)});
      }
    }
    for (auto& [day, events] : by_day) sub.append(std::move(events));

    // The invariant from the recovery contract: the store's roll-up must
    // equal the in-memory aggregator over exactly the surviving events.
    const auto disk_sum =
        store::cluster_sum(store, rig.nodes, channel, window);
    const auto sub_sum =
        telemetry::cluster_sum(sub, rig.nodes, channel, window);
    const auto [same, nw] = parity(sub_sum, disk_sum);
    if (same != nw || disk_sum.size() != sub_sum.size()) {
      std::printf("FAIL %s: cluster_sum diverges from the surviving "
                  "events (%zu/%zu windows)\n",
                  what.c_str(), same, nw);
      ++bad;
    }
    return bad;
  };

  // Rehearsal: a fault-free run through the (counting) FaultVfs measures
  // how many write points the full feed has and must verify clean.
  faultfs::FaultVfs counter(util::Vfs::real(), {});
  if (!feed(dir, counter)) {
    std::printf("FAIL: fault-free rehearsal run threw\n");
    return 1;
  }
  const std::uint64_t write_points = counter.stats().write_ops;
  std::size_t violations = verify_survivor(dir, "rehearsal");
  std::printf("reference feed: %llu events, %zu batches, %llu write "
              "points\n",
              static_cast<unsigned long long>(feed_stats.events),
              batches.size(),
              static_cast<unsigned long long>(write_points));

  // The sweep: simulated process death at write point k, reopen on the
  // real filesystem, verify the survivors.
  std::size_t crashes = 0;
  for (std::uint64_t k = 0; k < write_points; k += stride) {
    faultfs::FaultVfs chaos(util::Vfs::real(),
                            faultfs::FaultPlan().crash_at_write(k));
    if (feed(dir, chaos)) {
      std::printf("FAIL: crash scheduled at write %llu never fired\n",
                  static_cast<unsigned long long>(k));
      ++violations;
      continue;
    }
    ++crashes;
    violations += verify_survivor(
        dir, "crash@" + std::to_string(static_cast<unsigned long long>(k)));
  }
  std::printf("crash sweep: %zu kill points injected (stride %llu), "
              "%zu violations\n",
              crashes, static_cast<unsigned long long>(stride), violations);

  // Degraded-query probe: lose a sealed segment under a live store; the
  // query must shrink and flag, never throw.
  {
    faultfs::FaultVfs clean(util::Vfs::real(), {});
    if (!feed(dir, clean)) {
      std::printf("FAIL: clean run for the degraded probe threw\n");
      return 1;
    }
    store::Store store = store::Store::open(dir, base_options);
    std::string victim;
    for (const std::string& name : util::Vfs::real().list(dir)) {
      if (name.ends_with(".seg")) {
        victim = name;
        break;
      }
    }
    if (victim.empty() || store.sealed_segments() == 0) {
      std::printf("FAIL: degraded probe found no sealed segment to lose\n");
      ++violations;
    } else {
      util::Vfs::real().remove(dir + "/" + victim);
      store::QueryStats stats;
      try {
        const auto sum = store::cluster_sum(store, rig.nodes, channel,
                                            window, 10, nullptr, nullptr,
                                            &stats);
        if (!stats.degraded()) {
          std::printf("FAIL: query over a lost segment did not report "
                      "degraded\n");
          ++violations;
        } else {
          std::printf("degraded probe: lost %s, roll-up served %zu "
                      "windows with %zu segment(s) flagged lost\n",
                      victim.c_str(), sum.size(), stats.lost_segments);
        }
      } catch (const std::exception& e) {
        std::printf("FAIL: degraded query threw instead of degrading: "
                    "%s\n",
                    e.what());
        ++violations;
      }
    }
  }

  std::printf("faultcheck: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}

/// Operator command: one synchronous compaction pass over an existing
/// store. `--drop-before T` moves the retention cutoff (absolute seconds;
/// 0 keeps everything), `--small-events N` sets the merge-candidate
/// threshold.
int cmd_compact(const util::Flags& flags) {
  const std::string dir = flags.get("store", "");
  if (dir.empty()) {
    std::printf("compact needs --store DIR\n");
    return 1;
  }
  store::CompactionOptions opts;
  opts.retention.drop_before =
      static_cast<util::TimeSec>(flags.get_int("drop-before", 0));
  opts.small_segment_events = static_cast<std::uint64_t>(
      flags.get_int("small-events", 1 << 18));
  store::Store store = store::Store::open(dir);
  const std::size_t before = store.sealed_segments();
  const auto report = store.compact(opts);
  std::printf(
      "compacted %s: %zu -> %zu segments (%zu dropped whole, %zu rounds "
      "merged %zu inputs, %zu skipped)\n",
      dir.c_str(), before, store.sealed_segments(),
      report.dropped_segments, report.rounds, report.merged_inputs,
      report.rounds_skipped);
  std::printf(
      "events: %llu in, %llu out, %llu expired by retention "
      "(drop_before=%lld)\n",
      static_cast<unsigned long long>(report.events_in),
      static_cast<unsigned long long>(report.events_out),
      static_cast<unsigned long long>(report.events_expired),
      static_cast<long long>(opts.retention.drop_before));
  return 0;
}

/// The `compact_lifecycle` ctest gate: crash-at-every-write sweep over
/// the compaction path. A store is fed and flushed cleanly once; then a
/// retention-filtered merge pass runs with a simulated process death at
/// each of its write points in turn. Every survivor must reopen (which
/// replays the compaction journal) to a store whose samples are a subset
/// of the reference feed AND a superset of the reference's retained tail
/// — a crash may resurrect expired data but must never lose a committed
/// live event — and whose cluster roll-up bit-matches a sub-archive of
/// exactly the surviving events. Exits non-zero on any violation.
int cmd_compactcheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 6));
  const double minutes = flags.get_number("minutes", 4.0);
  const std::string dir = flags.get("store", "compactcheck_data");
  const std::string pristine = dir + ".pristine";
  const auto stride = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, flags.get_int("stride", 1)));

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  // Retention cutoff one third into the window: rounds see expired
  // events to shed, straddling segments to force-rewrite, and a live
  // tail that must survive every crash.
  const util::TimeSec cut = window.begin + (window.end - window.begin) / 3;
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  store::StoreOptions base_options;
  base_options.segment_events = 1 << 13;  // several merge inputs at N=6

  // One clean feed into the pristine copy; every sweep iteration starts
  // from a byte-identical restore of it, so the compaction pass is the
  // only variable.
  std::filesystem::remove_all(pristine);
  {
    store::Store store = store::Store::open(pristine, base_options);
    rig.pipeline.set_batch_sink(
        [&](const std::vector<telemetry::MetricEvent>& batch) {
          store.append(batch);
        });
    const auto stats = rig.pipeline.run(window);
    store.flush();
    std::printf("reference feed: %llu events in %zu segments, retention "
                "cutoff t=%lld\n",
                static_cast<unsigned long long>(stats.events),
                store.sealed_segments(), static_cast<long long>(cut));
  }
  const auto& archive = rig.pipeline.archive();
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  const util::TimeRange tail{cut, window.end};

  auto restore = [&] {
    std::filesystem::remove_all(dir);
    std::filesystem::copy(pristine, dir);
  };

  store::CompactionOptions copts;
  copts.retention.drop_before = cut;
  copts.small_segment_events = std::uint64_t{1} << 20;  // merge everything
  copts.min_merge_inputs = 2;

  // Run one compaction pass through `vfs`; false when an injected fault
  // killed it (simulated process death — recovery happens at reopen).
  auto lifecycle = [&](util::Vfs& vfs) {
    store::StoreOptions opts = base_options;
    opts.vfs = &vfs;
    try {
      store::Store store = store::Store::open(dir, opts);
      (void)store.compact(copts);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };

  // Verify one survivor store on the real filesystem (reopen = journal
  // replay). `expect_exact` tightens the gate for fault-free runs: the
  // survivors must then be exactly the retained tail.
  auto verify_survivor = [&](const std::string& what, bool expect_exact) {
    std::size_t bad = 0;
    store::Store store = store::Store::open(dir, base_options);
    telemetry::Archive sub;
    std::map<std::int64_t, std::vector<telemetry::MetricEvent>> by_day;
    for (const telemetry::MetricId id : store.metrics()) {
      const auto disk = store.query(id, window);
      const auto ref = archive.query(id, window);
      const auto ref_tail = archive.query(id, tail);
      if (!is_subset(disk, ref)) {
        std::printf("FAIL %s: metric %u has samples the feed never "
                    "produced\n",
                    what.c_str(), id);
        ++bad;
      }
      if (!is_subset(ref_tail, disk)) {
        std::printf("FAIL %s: metric %u lost committed live events\n",
                    what.c_str(), id);
        ++bad;
      }
      if (expect_exact && disk.size() != ref_tail.size()) {
        std::printf("FAIL %s: metric %u kept %zu samples, expected the "
                    "%zu-sample retained tail\n",
                    what.c_str(), id, disk.size(), ref_tail.size());
        ++bad;
      }
      for (const auto& s : disk) {
        by_day[s.t / util::kDay].push_back(
            {id, s.t, static_cast<std::int32_t>(s.value)});
      }
    }
    for (auto& [day, events] : by_day) sub.append(std::move(events));
    const auto disk_sum =
        store::cluster_sum(store, rig.nodes, channel, window);
    const auto sub_sum =
        telemetry::cluster_sum(sub, rig.nodes, channel, window);
    const auto [same, nw] = parity(sub_sum, disk_sum);
    if (same != nw || disk_sum.size() != sub_sum.size()) {
      std::printf("FAIL %s: cluster_sum diverges from the surviving "
                  "events (%zu/%zu windows)\n",
                  what.c_str(), same, nw);
      ++bad;
    }
    // Recovery must be idempotent and must leave no lifecycle litter.
    store::Store again = store::Store::open(dir, base_options);
    if (again.recovery().compactions_finished != 0 ||
        again.recovery().compactions_rolled_back != 0) {
      std::printf("FAIL %s: second reopen replayed journals again\n",
                  what.c_str());
      ++bad;
    }
    for (const std::string& name : util::Vfs::real().list(dir)) {
      if (name.ends_with(".compact") || name.ends_with(".incoming") ||
          name.ends_with(".compact.tmp")) {
        std::printf("FAIL %s: lifecycle litter survived recovery: %s\n",
                    what.c_str(), name.c_str());
        ++bad;
      }
    }
    return bad;
  };

  // Rehearsal: a fault-free pass through the counting FaultVfs measures
  // the write points and must verify clean (and exact).
  restore();
  faultfs::FaultVfs counter(util::Vfs::real(), {});
  if (!lifecycle(counter)) {
    std::printf("FAIL: fault-free compaction rehearsal threw\n");
    return 1;
  }
  const std::uint64_t write_points = counter.stats().write_ops;
  std::size_t violations = verify_survivor("rehearsal", true);
  std::printf("rehearsal: %llu compaction write points\n",
              static_cast<unsigned long long>(write_points));

  // The sweep: simulated process death at compaction write point k —
  // journal save, .incoming writes, the flip, the rename, manifest
  // replace, input deletion — then reopen-and-verify on the real fs.
  std::size_t crashes = 0;
  for (std::uint64_t k = 0; k < write_points; k += stride) {
    restore();
    faultfs::FaultVfs chaos(util::Vfs::real(),
                            faultfs::FaultPlan().crash_at_write(k));
    if (!lifecycle(chaos)) ++crashes;
    violations += verify_survivor(
        "crash@" + std::to_string(static_cast<unsigned long long>(k)),
        false);
  }
  std::printf("compaction crash sweep: %zu kill points fired (of %llu, "
              "stride %llu), %zu violations\n",
              crashes, static_cast<unsigned long long>(write_points),
              static_cast<unsigned long long>(stride), violations);

  std::printf("compactcheck: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}

/// The subscription executor `serve` and `servecheck` install: replay the
/// requested window of the store through the streaming engine on the pool
/// thread, pushing each closed cluster window (and alert transition) to
/// the subscriber as it happens, then a final kEnd tick. Runs the exact
/// replay path `analyze --store` uses, which is what makes subscription
/// ticks bit-comparable to the offline series.
server::QueryService::SubscribeSource make_replay_source(
    const store::Store& store) {
  return [&store](const server::wire::Request& request,
                  const server::CancelToken& cancel,
                  const server::QueryService::Emit& emit) {
    using server::wire::Tick;
    using server::wire::TickKind;
    std::vector<machine::NodeId> nodes = request.nodes;
    if (nodes.empty()) nodes = power_nodes(store);
    // The wire range is adversarial: an inverted or empty range means
    // "everything", and anything else is clamped to the stored data — the
    // replay walks its range second by second, so it must never outlive
    // the store just because a subscriber asked for end = 2^60.
    util::TimeRange range = request.range;
    if (range.begin >= range.end) {
      range = store.bounds();
    } else {
      range = range.clamp(store.bounds());
    }

    stream::EngineOptions options;
    options.range = range;
    options.window = request.window > 0 ? request.window : 10;
    options.rollup.edge_node_count = static_cast<double>(
        std::max<std::size_t>(1, nodes.size()));

    stream::ReplaySinks sinks;
    if ((request.subscribe_mask &
         static_cast<std::uint8_t>(TickKind::kWindow)) != 0) {
      sinks.on_window = [&emit](const stream::ClusterWindow& w) {
        Tick tick;
        tick.kind = TickKind::kWindow;
        tick.index = w.index;
        tick.t = w.t;
        tick.power_w = w.power_w;
        tick.pue = w.cooling.pue;
        tick.nodes_reporting = w.nodes_reporting;
        emit(tick);
      };
    }
    if ((request.subscribe_mask &
         static_cast<std::uint8_t>(TickKind::kAlert)) != 0) {
      sinks.on_alert = [&emit](const stream::Alert& alert) {
        Tick tick;
        tick.kind = TickKind::kAlert;
        tick.t = alert.t;
        tick.alert = alert;
        emit(tick);
      };
    }
    sinks.cancelled = [&cancel] {
      return cancel != nullptr && cancel->load(std::memory_order_relaxed);
    };

    const auto replay = stream::replay_rollup(store, nodes, options, sinks);
    if (!replay.cancelled) {
      Tick end;
      end.kind = TickKind::kEnd;
      end.t = range.end;
      end.index = replay.windows;
      emit(end);
    }
  };
}

void print_service_report(const server::ServiceMetrics& m,
                          const net::LoopStats& loop) {
  std::printf(
      "service: %llu accepted, %llu served, %llu shed, %llu deadline-"
      "exceeded, %llu cancelled, %llu failed | depth %llu | latency p50 "
      "%.2f ms p99 %.2f ms\n",
      static_cast<unsigned long long>(m.accepted),
      static_cast<unsigned long long>(m.served),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.deadline_exceeded),
      static_cast<unsigned long long>(m.cancelled),
      static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.queue_depth), m.p50_ms, m.p99_ms);
  if (m.qos) {
    std::printf("qos: %llu worker(s), backlog %llu us estimated\n",
                static_cast<unsigned long long>(m.qos_workers),
                static_cast<unsigned long long>(m.qos_backlog_cost_us));
    for (std::size_t c = 0; c < qos::kClassCount; ++c) {
      std::printf("  %-11s %llu served, %llu shed, p99 %.2f ms\n",
                  qos::class_name(static_cast<qos::Class>(c)),
                  static_cast<unsigned long long>(m.class_served[c]),
                  static_cast<unsigned long long>(m.class_shed[c]),
                  m.class_p99_ms[c]);
    }
  }
  std::printf(
      "transport: %llu conns (%llu closed), %llu frames in / %llu out, "
      "%llu B in / %llu B out, %llu protocol errors, %llu backpressure "
      "closes\n",
      static_cast<unsigned long long>(loop.accepted),
      static_cast<unsigned long long>(loop.closed),
      static_cast<unsigned long long>(loop.frames_in),
      static_cast<unsigned long long>(loop.frames_out),
      static_cast<unsigned long long>(loop.bytes_in),
      static_cast<unsigned long long>(loop.bytes_out),
      static_cast<unsigned long long>(loop.protocol_errors),
      static_cast<unsigned long long>(loop.backpressure_closes));
}

int cmd_serve(const util::Flags& flags) {
  const std::string dir = flags.get("store", "telemetry_store");
  store::Store store = store::Store::open(dir);
  std::printf("store %s: %zu segments, %llu events, window [%lld, %lld)\n",
              dir.c_str(), store.sealed_segments(),
              static_cast<unsigned long long>(store.total_events()),
              static_cast<long long>(store.bounds().begin),
              static_cast<long long>(store.bounds().end));

  server::ServerOptions options;
  options.port = static_cast<std::uint16_t>(flags.get_int("port", 4626));
  options.service.queue_limit =
      static_cast<std::size_t>(flags.get_int("queue", 256));
  options.service.default_deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline", 0));
  const bool qos_on = !flags.has("no-qos");
  if (qos_on) {
    server::QosOptions q;
    // Calibrate unit costs from the codec bench when its JSON is around;
    // defaults otherwise — pricing only needs to be proportionate.
    q.cost = qos::CostProfile::from_bench_json(
        flags.get("bench-codec", "BENCH_codec.json"));
    q.pool.autoscaler.min_workers =
        static_cast<std::size_t>(flags.get_int("min-workers", 1));
    q.pool.autoscaler.max_workers =
        static_cast<std::size_t>(flags.get_int("max-workers", 0));
    options.service.qos = std::move(q);
  }
  server::Server server(store, options);
  server.service().set_subscribe_source(make_replay_source(store));

  util::SignalTrap trap;
  std::printf("serving on 127.0.0.1:%u (queue %zu, default deadline %u ms, "
              "qos %s) — Ctrl-C drains\n",
              server.port(), options.service.queue_limit,
              options.service.default_deadline_ms, qos_on ? "on" : "off");

  // --auto-compact: periodic store compaction rides the QoS queue as a
  // batch-class citizen — it waits its class turn behind paying traffic
  // and may be shed under overload (the next tick simply retries).
  const bool auto_compact = flags.has("auto-compact");
  const auto compact_every = static_cast<std::int64_t>(
      flags.get_int("compact-interval", 30));
  auto compacting = std::make_shared<std::atomic<bool>>(false);
  std::int64_t last_compact_us = util::Clock::steady().now_us();
  if (auto_compact) {
    std::printf("auto-compact: every %llds as a batch-class task\n",
                static_cast<long long>(compact_every));
  }
  server.run([&] {
    if (auto_compact && !trap.stop_requested()) {
      const std::int64_t now_us = util::Clock::steady().now_us();
      bool expected = false;
      if (now_us - last_compact_us >= compact_every * 1'000'000 &&
          compacting->compare_exchange_strong(expected, true)) {
        last_compact_us = now_us;
        // Cost estimate: a merge pass decodes at most the sealed
        // population once — price it like a scan of every sealed block.
        const std::uint64_t cost_us =
            20'000 + 1'000 * static_cast<std::uint64_t>(
                                 store.sealed_segments());
        server.service().submit_internal(
            qos::Class::kBatch, cost_us,
            [&store, compacting] {
              const auto report = store.compact({});
              std::printf("auto-compact: %zu rounds merged %zu inputs, "
                          "%zu dropped whole\n",
                          report.rounds, report.merged_inputs,
                          report.dropped_segments);
              compacting->store(false);
            },
            /*dropped=*/[compacting] { compacting->store(false); });
      }
    }
    return trap.stop_requested();
  });
  if (trap.stop_requested()) {
    std::printf("\nsignal %d: draining — no new connections, letting "
                "%llu in-flight request(s) finish...\n",
                trap.signal_number(),
                static_cast<unsigned long long>(
                    server.service().metrics().queue_depth));
  }
  server.drain();
  print_service_report(server.service().metrics(), server.loop_stats());
  return 0;
}

/// The `net_roundtrip` ctest gate: every response that crosses the wire
/// must be bit-identical to the direct in-process store call, the
/// subscription tick stream must match the offline streaming replay, and
/// a store that loses a segment must say so over the wire.
int cmd_servecheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 12));
  const double minutes = flags.get_number("minutes", 6.0);
  const std::string dir = flags.get("store", "servecheck_data");
  std::filesystem::remove_all(dir);

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  store::StoreOptions store_options;
  store_options.segment_events = 1 << 14;
  {
    store::Store store = store::Store::open(dir, store_options);
    rig.pipeline.set_batch_sink(
        [&](const std::vector<telemetry::MetricEvent>& batch) {
          store.append(batch);
        });
    rig.pipeline.run(window);
    store.flush();
  }

  std::size_t violations = 0;
  const auto bit_same = [](const ts::Series& a, const ts::Series& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  const auto runs_same = [](const std::vector<store::MetricRun>& a,
                            const std::vector<store::MetricRun>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id || a[i].samples.size() != b[i].samples.size()) {
        return false;
      }
      for (std::size_t j = 0; j < a[i].samples.size(); ++j) {
        if (a[i].samples[j].t != b[i].samples[j].t ||
            a[i].samples[j].value != b[i].samples[j].value) {
          return false;
        }
      }
    }
    return true;
  };

  // Phase 1: intact store — wire answers vs direct in-process calls.
  {
    store::Store store = store::Store::open(dir, store_options);
    const std::vector<machine::NodeId> nodes = power_nodes(store);
    const int channel =
        telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
    // QoS on: a class-less client over the QoS scheduler must stay
    // bit-identical to the direct store call — the parity sweep below is
    // the proof that enabling QoS changes nothing for legacy traffic.
    server::ServerOptions sopts;
    sopts.service.qos.emplace();
    server::Server server(store, sopts);
    server.service().set_subscribe_source(make_replay_source(store));
    std::thread loop([&] { server.run(); });

    server::ClientOptions copts;
    copts.port = server.port();
    server::Client client(copts);

    server::wire::Request req;
    req.method = server::wire::Method::kPing;
    if (client.call(req).status != server::wire::Status::kOk) {
      std::printf("FAIL: ping did not return OK\n");
      ++violations;
    }

    // window_sum: every power metric, wire vs direct, bitwise.
    std::size_t ws_same = 0;
    for (const machine::NodeId node : nodes) {
      req = {};
      req.method = server::wire::Method::kWindowSum;
      req.metric = telemetry::metric_id(node, channel);
      req.range = window;
      req.window = 10;
      const auto resp = client.call(req);
      const auto direct = store.window_sum(req.metric, window, 10);
      if (resp.status == server::wire::Status::kOk &&
          resp.window_sum.start == direct.start &&
          resp.window_sum.sum == direct.sum &&
          resp.window_sum.count == direct.count) {
        ++ws_same;
      }
    }
    std::printf("window_sum wire parity: %zu/%zu metrics bit-identical\n",
                ws_same, nodes.size());
    if (ws_same != nodes.size()) ++violations;

    // Scan: all power metrics at once.
    req = {};
    req.method = server::wire::Method::kScan;
    for (const machine::NodeId node : nodes) {
      req.metrics.push_back(telemetry::metric_id(node, channel));
    }
    req.range = window;
    {
      const auto resp = client.call(req);
      const auto direct = store.query_many(req.metrics, window);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      runs_same(resp.runs, direct);
      std::printf("scan wire parity: %s (%zu runs)\n",
                  ok ? "bit-identical" : "DIVERGED", direct.size());
      if (!ok) ++violations;
    }

    // cluster_sum roll-up.
    req = {};
    req.method = server::wire::Method::kClusterSum;
    req.nodes = nodes;
    req.channel = channel;
    req.range = window;
    req.window = 10;
    {
      const auto resp = client.call(req);
      std::vector<double> counts;
      const auto direct =
          store::cluster_sum(store, nodes, channel, window, 10, &counts);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      bit_same(resp.series, direct) && resp.counts == counts;
      std::printf("cluster_sum wire parity: %s (%zu windows)\n",
                  ok ? "bit-identical" : "DIVERGED", direct.size());
      if (!ok) ++violations;
    }

    // PUE roll-up replay.
    stream::EngineOptions options;
    options.range = window;
    options.rollup.edge_node_count = static_cast<double>(nodes.size());
    const auto offline = stream::replay_rollup(store, nodes, options);
    req = {};
    req.method = server::wire::Method::kPueRollup;
    req.nodes = nodes;
    req.range = window;
    req.window = 10;
    {
      const auto resp = client.call(req);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      bit_same(resp.series, offline.power) &&
                      bit_same(resp.pue, offline.pue);
      std::printf("pue_rollup wire parity: %s (%zu windows)\n",
                  ok ? "bit-identical" : "DIVERGED", offline.power.size());
      if (!ok) ++violations;
    }

    // Chunked transport: the same scan and pue_rollup negotiated as a
    // kChunk/kFinal stream (4 KiB slices through the connection's
    // stream gate) must reassemble to the identical answers — the
    // streaming path is transport, never semantics.
    req = {};
    req.method = server::wire::Method::kScan;
    for (const machine::NodeId node : nodes) {
      req.metrics.push_back(telemetry::metric_id(node, channel));
    }
    req.range = window;
    req.chunk_bytes = 4096;
    {
      const auto resp = client.call(req);
      const auto direct = store.query_many(req.metrics, window);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      runs_same(resp.runs, direct);
      std::printf("chunked scan wire parity: %s (%zu runs)\n",
                  ok ? "bit-identical" : "DIVERGED", direct.size());
      if (!ok) ++violations;
    }
    req = {};
    req.method = server::wire::Method::kPueRollup;
    req.nodes = nodes;
    req.range = window;
    req.window = 10;
    req.chunk_bytes = 4096;
    {
      const auto resp = client.call(req);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      bit_same(resp.series, offline.power) &&
                      bit_same(resp.pue, offline.pue);
      std::printf("chunked pue_rollup wire parity: %s (%zu windows)\n",
                  ok ? "bit-identical" : "DIVERGED", offline.power.size());
      if (!ok) ++violations;
    }
    req = {};
    req.method = server::wire::Method::kServerStats;
    {
      const auto resp = client.call(req);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      resp.server.streams >= 2 &&
                      resp.server.stream_chunks >= 2;
      std::printf("chunked transport: %llu streams, %llu chunk frames "
                  "reported — %s\n",
                  static_cast<unsigned long long>(resp.server.streams),
                  static_cast<unsigned long long>(resp.server.stream_chunks),
                  ok ? "streamed" : "NOT STREAMED");
      if (!ok) ++violations;
    }

    // Subscription: window ticks must match the offline replay series.
    req = {};
    req.method = server::wire::Method::kSubscribe;
    req.nodes = nodes;
    req.range = window;
    req.window = 10;
    {
      server::Subscription sub(copts, req);
      std::size_t tick_same = 0;
      std::size_t window_ticks = 0;
      while (const auto tick = sub.next(10000)) {
        if (tick->kind != server::wire::TickKind::kWindow) continue;
        ++window_ticks;
        if (tick->index < offline.power.size() &&
            tick->power_w == offline.power[tick->index] &&
            tick->pue == offline.pue[tick->index]) {
          ++tick_same;
        }
      }
      std::printf("subscription tick parity: %zu/%zu window ticks match "
                  "the streaming replay (replay closed %zu)\n",
                  tick_same, window_ticks, offline.windows);
      if (window_ticks == 0 || tick_same != window_ticks ||
          window_ticks != offline.windows) {
        ++violations;
      }
      if (!sub.result().has_value() ||
          sub.result()->status != server::wire::Status::kOk) {
        std::printf("FAIL: subscription did not end with an OK response\n");
        ++violations;
      }
    }

    server.shutdown();
    loop.join();
    server.drain();
  }

  // Phase 2: damaged store — lose one sealed segment *under a live,
  // cold-cached store* (reopening after the loss would let recovery
  // repair the manifest and hide it) and require the loss to be visible
  // over the wire with the same degraded result the direct call produces.
  {
    std::string victim;
    for (const std::string& name : util::Vfs::real().list(dir)) {
      if (name.ends_with(".seg")) {
        victim = name;
        break;
      }
    }
    if (victim.empty()) {
      std::printf("FAIL: no sealed segment to damage\n");
      ++violations;
    } else {
      store::Store store = store::Store::open(dir, store_options);
      util::Vfs::real().remove(dir + "/" + victim);
      const std::vector<machine::NodeId> nodes = power_nodes(store);
      const int channel =
          telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
      server::ServerOptions sopts;
      sopts.service.qos.emplace();  // degraded reads through QoS too
      server::Server server(store, sopts);
      std::thread loop([&] { server.run(); });
      server::ClientOptions copts;
      copts.port = server.port();
      server::Client client(copts);

      server::wire::Request req;
      req.method = server::wire::Method::kScan;
      for (const machine::NodeId node : nodes) {
        req.metrics.push_back(telemetry::metric_id(node, channel));
      }
      req.range = window;
      const auto resp = client.call(req);
      store::QueryStats direct_stats;
      const auto direct =
          store.query_many(req.metrics, window, nullptr, &direct_stats);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      resp.stats.lost_segments == direct_stats.lost_segments &&
                      resp.stats.lost_segments > 0 &&
                      runs_same(resp.runs, direct);
      std::printf("degraded wire parity: lost %s, %zu segment(s) flagged "
                  "over the wire — %s\n",
                  victim.c_str(), resp.stats.lost_segments,
                  ok ? "matches direct query" : "DIVERGED");
      if (!ok) ++violations;

      server.shutdown();
      loop.join();
      server.drain();
    }
  }

  std::printf("servecheck: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}

void print_shard_table(const std::vector<cluster::ShardStats>& shards) {
  util::TextTable t({"shard", "endpoint", "up", "calls", "ok", "shed",
                     "deadline", "errors", "transport", "reconnects",
                     "mean ms", "max ms"});
  const auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const cluster::ShardStats& s = shards[i];
    t.add_row({std::to_string(i), s.endpoint, s.up ? "yes" : "DOWN",
               std::to_string(s.calls), std::to_string(s.ok),
               std::to_string(s.shed), std::to_string(s.deadline_exceeded),
               std::to_string(s.other_errors),
               std::to_string(s.transport_errors),
               std::to_string(s.reconnect_attempts) + "/" +
                   std::to_string(s.reconnect_successes),
               ms(s.mean_latency_ms()),
               ms(static_cast<double>(s.latency_us_max) / 1000.0)});
  }
  std::printf("%s", t.str().c_str());
}

int cmd_cluster(const util::Flags& flags) {
  const std::string shard_list = flags.get("shards");
  if (shard_list.empty()) {
    std::fprintf(stderr, "cluster: --shards P1,P2,... is required (start "
                         "each shard with `exawatt_sim serve --port P`)\n");
    return 2;
  }
  cluster::CoordinatorOptions copts;
  copts.shards = parse_endpoints(shard_list);
  cluster::Coordinator coordinator(std::move(copts));

  server::ServiceOptions sopts;
  sopts.queue_limit = static_cast<std::size_t>(flags.get_int("queue", 256));
  sopts.default_deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline", 0));
  server::QueryService service(coordinator.executor(), sopts);
  service.set_stats_augment([&](server::wire::ServerStatsWire& s) {
    coordinator.augment_stats(s);
  });

  server::ServerOptions options;
  options.port = static_cast<std::uint16_t>(flags.get_int("port", 4700));
  server::Server server(service, options);

  util::SignalTrap trap;
  std::printf("coordinating %zu shard(s) on 127.0.0.1:%u (queue %zu, "
              "default deadline %u ms) — Ctrl-C drains\n",
              coordinator.shards(), server.port(), sopts.queue_limit,
              sopts.default_deadline_ms);
  server.run([&] { return trap.stop_requested(); });
  if (trap.stop_requested()) {
    std::printf("\nsignal %d: draining — no new connections, letting "
                "%llu in-flight request(s) finish...\n",
                trap.signal_number(),
                static_cast<unsigned long long>(
                    service.metrics().queue_depth));
  }
  server.drain();
  print_service_report(service.metrics(), server.loop_stats());
  print_shard_table(coordinator.shard_stats());
  return 0;
}

/// The `cluster_roundtrip` ctest gate: shard one telemetry feed across 3
/// loopback shard servers and require every coordinator answer to be
/// bit-identical to a single store holding the union; kill a shard and
/// require honest partial results (exact lost-segment accounting, never
/// wrong values); rebalance a sealed segment between shards and require
/// parity again after the flip.
int cmd_clustercheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 9));
  const double minutes = flags.get_number("minutes", 5.0);
  const std::string dir = flags.get("store", "clustercheck_data");
  std::filesystem::remove_all(dir);
  constexpr std::size_t kShards = 3;

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  // Capture the feed once so the reference store and the shards ingest
  // the exact same batches.
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  rig.pipeline.set_batch_sink(
      [&](const std::vector<telemetry::MetricEvent>& batch) {
        batches.push_back(batch);
      });
  rig.pipeline.run(window);

  std::size_t violations = 0;
  util::Vfs& fs = util::Vfs::real();
  fs.mkdirs(dir);

  // Shard map: durable round-trip plus routing sanity on a real batch.
  const cluster::ShardMap map = cluster::ShardMap::uniform(kShards);
  map.save(dir + "/SHARDMAP");
  cluster::ShardMap loaded;
  if (!cluster::ShardMap::load(dir + "/SHARDMAP", loaded) ||
      loaded.encode() != map.encode()) {
    std::printf("FAIL: shard map did not round-trip through disk\n");
    ++violations;
  }
  if (!batches.empty()) {
    const auto parts = map.split(batches.front());
    std::size_t routed = 0;
    bool misrouted = false;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      routed += parts[i].size();
      for (const telemetry::MetricEvent& ev : parts[i]) {
        if (map.shard_of(ev.id) != i) misrouted = true;
      }
    }
    if (misrouted || routed != batches.front().size()) {
      std::printf("FAIL: split() dropped or misrouted events\n");
      ++violations;
    }
  }

  // Ingest: one reference store with everything, kShards stores with the
  // hash-routed partition. Small segments so rebalance has material.
  store::StoreOptions store_options;
  store_options.segment_events = 1 << 13;
  const std::string ref_dir = dir + "/ref";
  std::vector<std::string> roots;
  for (std::size_t i = 0; i < kShards; ++i) {
    roots.push_back(dir + "/shard" + std::to_string(i));
  }
  {
    store::Store ref = store::Store::open(ref_dir, store_options);
    std::vector<store::Store> writers;
    for (const std::string& root : roots) {
      writers.push_back(store::Store::open(root, store_options));
    }
    for (const auto& batch : batches) {
      ref.append(batch);
      const auto parts = map.split(batch);
      for (std::size_t i = 0; i < kShards; ++i) {
        if (!parts[i].empty()) writers[i].append(parts[i]);
      }
    }
    ref.flush();
    for (auto& w : writers) w.flush();
  }

  store::Store ref = store::Store::open(ref_dir, store_options);
  std::vector<std::optional<store::Store>> shards;
  for (const std::string& root : roots) {
    shards.emplace_back(store::Store::open(root, store_options));
  }

  struct ShardServer {
    std::unique_ptr<server::Server> server;
    std::thread loop;
  };
  // Every in-process service would otherwise share the process-global
  // worker pool; on a small machine a coordinator leg parked there would
  // starve the very shard services it is waiting on. Give each service
  // its own pool, as separate server processes naturally have.
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  const auto start_shard = [&pools](store::Store& st) {
    ShardServer s;
    pools.push_back(std::make_unique<util::ThreadPool>(1));
    server::ServerOptions opts;
    opts.service.pool = pools.back().get();
    // Shards run the QoS scheduler: coordinator parity below doubles as
    // proof that class-less scatter legs through QoS stay bit-identical.
    opts.service.qos.emplace();
    s.server = std::make_unique<server::Server>(st, opts);
    s.loop = std::thread([srv = s.server.get()] { srv->run(); });
    return s;
  };
  const auto stop_shard = [](ShardServer& s) {
    if (!s.server) return;
    s.server->shutdown();
    s.loop.join();
    s.server->drain();
    s.server.reset();
  };
  std::vector<ShardServer> servers;
  for (auto& st : shards) servers.push_back(start_shard(*st));

  cluster::CoordinatorOptions copts;
  for (const ShardServer& s : servers) {
    copts.shards.push_back({"127.0.0.1", s.server->port()});
  }
  // The check cluster is quiesced (all stores flushed before serving),
  // so directory pruning is safe — and this gate is what keeps the
  // pruned planning path exercised.
  copts.prune = true;
  cluster::Coordinator coordinator(std::move(copts));
  util::ThreadPool front_pool(2);
  server::ServiceOptions front_options;
  front_options.pool = &front_pool;
  server::QueryService front(coordinator.executor(), front_options);
  front.set_stats_augment([&](server::wire::ServerStatsWire& s) {
    coordinator.augment_stats(s);
  });
  server::Server front_server(front, {});
  std::thread front_loop([&] { front_server.run(); });
  server::ClientOptions client_options;
  client_options.port = front_server.port();
  server::Client client(client_options);

  const std::vector<machine::NodeId> nodes = power_nodes(ref);
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  const int alt_channel =
      telemetry::channel_of(telemetry::MetricKind::kGpuCoreTemp, 0);
  std::vector<telemetry::MetricId> power_ids;
  for (const machine::NodeId node : nodes) {
    power_ids.push_back(telemetry::metric_id(node, channel));
  }

  const auto bit_same = [](const ts::Series& a, const ts::Series& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  const auto runs_same = [](const std::vector<store::MetricRun>& a,
                            const std::vector<store::MetricRun>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id || a[i].samples.size() != b[i].samples.size()) {
        return false;
      }
      for (std::size_t j = 0; j < a[i].samples.size(); ++j) {
        if (a[i].samples[j].t != b[i].samples[j].t ||
            a[i].samples[j].value != b[i].samples[j].value) {
          return false;
        }
      }
    }
    return true;
  };

  // The parity suite: every coordinator answer vs the single reference
  // store, bitwise. Runs three times — fresh, after a shard restart, and
  // after a rebalance — and must hold identically each time.
  const auto check_parity = [&](const char* tag) {
    std::size_t bad = 0;
    server::wire::Request req;

    std::size_t ws_same = 0;
    for (const telemetry::MetricId id : power_ids) {
      req = {};
      req.method = server::wire::Method::kWindowSum;
      req.metric = id;
      req.range = window;
      req.window = 10;
      const auto resp = client.call(req);
      const auto direct = ref.window_sum(id, window, 10);
      if (resp.status == server::wire::Status::kOk &&
          resp.window_sum.start == direct.start &&
          resp.window_sum.sum == direct.sum &&
          resp.window_sum.count == direct.count) {
        ++ws_same;
      }
    }
    if (ws_same != power_ids.size()) ++bad;

    req = {};
    req.method = server::wire::Method::kScan;
    req.metrics = power_ids;
    req.range = window;
    bool scan_ok = false;
    {
      const auto resp = client.call(req);
      const auto direct = ref.query_many(power_ids, window);
      scan_ok = resp.status == server::wire::Status::kOk &&
                !resp.stats.degraded() && runs_same(resp.runs, direct);
      if (!scan_ok) ++bad;
    }

    req = {};
    req.method = server::wire::Method::kClusterSum;
    req.nodes = nodes;
    req.channel = channel;
    req.range = window;
    req.window = 10;
    bool sum_ok = false;
    {
      const auto resp = client.call(req);
      std::vector<double> counts;
      const auto direct =
          store::cluster_sum(ref, nodes, channel, window, 10, &counts);
      sum_ok = resp.status == server::wire::Status::kOk &&
               bit_same(resp.series, direct) && resp.counts == counts;
      if (!sum_ok) ++bad;
    }

    // Non-default channel: the coordinator must scan the requested
    // channel's ids, not assume input power — a GPU-temperature roll-up
    // answered with power data would be wrong values, not degraded ones.
    req = {};
    req.method = server::wire::Method::kClusterSum;
    req.nodes = nodes;
    req.channel = alt_channel;
    req.range = window;
    req.window = 10;
    bool alt_sum_ok = false;
    {
      const auto resp = client.call(req);
      std::vector<double> counts;
      const auto direct =
          store::cluster_sum(ref, nodes, alt_channel, window, 10, &counts);
      alt_sum_ok = resp.status == server::wire::Status::kOk &&
                   bit_same(resp.series, direct) && resp.counts == counts;
      if (!alt_sum_ok) ++bad;
    }

    stream::EngineOptions options;
    options.range = window;
    options.rollup.edge_node_count = static_cast<double>(nodes.size());
    const auto offline = stream::replay_rollup(ref, nodes, options);
    req = {};
    req.method = server::wire::Method::kPueRollup;
    req.nodes = nodes;
    req.range = window;
    req.window = 10;
    bool pue_ok = false;
    {
      const auto resp = client.call(req);
      pue_ok = resp.status == server::wire::Status::kOk &&
               bit_same(resp.series, offline.power) &&
               bit_same(resp.pue, offline.pue);
      if (!pue_ok) ++bad;
    }

    req = {};
    req.method = server::wire::Method::kDirectory;
    bool dir_ok = false;
    {
      const auto resp = client.call(req);
      dir_ok = resp.status == server::wire::Status::kOk &&
               resp.directory.total_events == ref.total_events() &&
               resp.directory.bounds.begin == ref.bounds().begin &&
               resp.directory.bounds.end == ref.bounds().end;
      if (!dir_ok) ++bad;
    }

    std::printf("[%s] parity: window_sum %zu/%zu, scan %s, cluster_sum %s "
                "(gpu temp %s), pue_rollup %s, directory %s\n",
                tag, ws_same, power_ids.size(),
                scan_ok ? "bit-identical" : "DIVERGED",
                sum_ok ? "bit-identical" : "DIVERGED",
                alt_sum_ok ? "bit-identical" : "DIVERGED",
                pue_ok ? "bit-identical" : "DIVERGED",
                dir_ok ? "matches" : "DIVERGED");
    return bad;
  };

  violations += check_parity("3 shards");

  // Degraded phase: kill shard 1's server (its store stays alive — only
  // the endpoint dies). The coordinator must keep answering with partial
  // results and charge exactly shard 1's overlap as lost segments.
  stop_shard(servers[1]);
  {
    std::uint64_t overlap = 0;
    for (const store::SegmentMeta& seg : shards[1]->directory()) {
      if (seg.t_min < window.end && window.begin <= seg.t_max) ++overlap;
    }
    const std::uint64_t expected_lost = std::max<std::uint64_t>(overlap, 1);

    server::wire::Request req;
    req.method = server::wire::Method::kScan;
    req.metrics = power_ids;
    req.range = window;
    const auto resp = client.call(req);

    const auto r0 = shards[0]->query_many(power_ids, window);
    const auto r2 = shards[2]->query_many(power_ids, window);
    const std::vector<store::MetricRun>* parts[] = {&r0, &r2};
    const auto survivors = cluster::merge_runs(power_ids, parts);

    const bool ok = resp.status == server::wire::Status::kOk &&
                    resp.stats.lost_segments == expected_lost &&
                    runs_same(resp.runs, survivors);
    std::printf("[degraded] shard 1 down: status %s, lost %zu segment(s) "
                "(expected %llu), survivor data %s\n",
                server::wire::status_name(resp.status),
                resp.stats.lost_segments,
                static_cast<unsigned long long>(expected_lost),
                ok ? "bit-identical" : "DIVERGED");
    if (!ok) ++violations;
  }

  // Restart shard 1 on a fresh port and repoint the coordinator; full
  // parity must come back without touching the client.
  servers[1] = start_shard(*shards[1]);
  coordinator.set_endpoint(1, {"127.0.0.1", servers[1].server->port()});
  violations += check_parity("restarted");

  // Rebalance phase: move shard 0's first sealed segment to shard 2 with
  // everything quiesced, replay recovery (a no-op on a clean move), and
  // demand the same answers from the new layout.
  const std::vector<store::SegmentMeta> shard0_dir = shards[0]->directory();
  if (shard0_dir.empty()) {
    std::printf("FAIL: shard 0 sealed no segments to rebalance\n");
    ++violations;
  } else {
    for (auto& s : servers) stop_shard(s);
    shards.clear();  // release the stores before touching their roots

    const std::string victim = shard0_dir.front().file;
    const cluster::RebalanceReport moved =
        cluster::rebalance_segment(roots[0], roots[2], victim);
    const std::size_t resolved = cluster::recover_migrations(roots);
    std::printf("[rebalance] moved %s (%llu events) shard0 -> shard2 as %s; "
                "recovery replayed %zu journal(s)\n",
                moved.from_file.c_str(),
                static_cast<unsigned long long>(moved.events),
                moved.to_file.c_str(), resolved);
    if (resolved != 0) ++violations;

    std::uint64_t reopened_events = 0;
    bool clean = true;
    for (const std::string& root : roots) {
      shards.emplace_back(store::Store::open(root, store_options));
      clean = clean && shards.back()->recovery().clean();
      reopened_events += shards.back()->total_events();
    }
    if (!clean || reopened_events != ref.total_events()) {
      std::printf("FAIL: post-rebalance reopen lost events (%llu vs %llu) "
                  "or needed repair\n",
                  static_cast<unsigned long long>(reopened_events),
                  static_cast<unsigned long long>(ref.total_events()));
      ++violations;
    }
    for (std::size_t i = 0; i < kShards; ++i) {
      servers[i] = start_shard(*shards[i]);
      coordinator.set_endpoint(i, {"127.0.0.1", servers[i].server->port()});
    }
    violations += check_parity("rebalanced");
  }

  front_server.shutdown();
  front_loop.join();
  front_server.drain();
  for (auto& s : servers) stop_shard(s);

  std::printf("clustercheck: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}

/// The `qos` ctest gate: multi-tenant QoS behavior over real loopback
/// wire traffic.
///
///  1. Class-less parity — a legacy (untagged) client against a QoS
///     server gets answers bit-identical to the direct store call.
///  2. Tagged round-trips — per-class served counters in server_stats
///     account exactly for what each tenant sent.
///  3. Overload — batch floods from four tenants against one worker and
///     a tiny queue: interactive requests are NEVER shed (victims are
///     cheapest-to-refuse = worst class first), every shed response
///     carries the estimated-cost hint, and the shed counter reconciles.
///  4. Cluster inheritance — a batch-tagged cluster_sum through the
///     scatter coordinator lands on every shard as batch-class work.
int cmd_qoscheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 12));
  const double minutes = flags.get_number("minutes", 6.0);
  const std::string dir = flags.get("store", "qoscheck_data");
  std::filesystem::remove_all(dir);

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  std::vector<std::vector<telemetry::MetricEvent>> batches;
  rig.pipeline.set_batch_sink(
      [&](const std::vector<telemetry::MetricEvent>& batch) {
        batches.push_back(batch);
      });
  rig.pipeline.run(window);

  store::StoreOptions store_options;
  store_options.segment_events = 1 << 13;
  {
    store::Store store = store::Store::open(dir, store_options);
    for (const auto& batch : batches) store.append(batch);
    store.flush();
  }

  std::size_t violations = 0;
  store::Store store = store::Store::open(dir, store_options);
  const std::vector<machine::NodeId> nodes = power_nodes(store);
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);

  // Phase 1+2+3: one QoS server, deliberately starved — one worker and
  // a four-deep queue make overload reproducible at tiny request counts.
  {
    server::ServerOptions sopts;
    server::QosOptions q;
    q.pool.autoscaler.min_workers = 1;
    q.pool.autoscaler.max_workers = 1;
    sopts.service.queue_limit = 4;
    sopts.service.qos = q;
    server::Server server(store, sopts);
    server.service().set_subscribe_source(make_replay_source(store));
    std::thread loop([&] { server.run(); });

    server::ClientOptions copts;
    copts.port = server.port();

    // Phase 1: class-less parity (scan + window_sum + cluster_sum).
    {
      server::Client client(copts);
      server::wire::Request req;
      req.method = server::wire::Method::kClusterSum;
      req.nodes = nodes;
      req.channel = channel;
      req.range = window;
      req.window = 10;
      const auto wire_resp = client.call(req);
      const auto direct = server.service().execute(req);
      bool same = wire_resp.status == server::wire::Status::kOk &&
                  wire_resp.series.size() == direct.series.size();
      if (same) {
        for (std::size_t i = 0; i < direct.series.size(); ++i) {
          same = same && wire_resp.series[i] == direct.series[i];
        }
      }
      if (!same) {
        std::printf("FAIL: class-less cluster_sum through QoS is not "
                    "bit-identical to the direct call\n");
        ++violations;
      }
    }

    // Phase 2: tagged round-trips from 4 tenants across all classes.
    const std::uint32_t kTenants = 4;
    const std::size_t kPerTenant = 6;
    std::uint64_t sent_by_class[qos::kClassCount] = {0, 0, 0};
    for (std::uint32_t t = 1; t <= kTenants; ++t) {
      server::Client client(copts);
      for (std::size_t i = 0; i < kPerTenant; ++i) {
        server::wire::Request req;
        req.method = server::wire::Method::kWindowSum;
        req.metric = telemetry::metric_id(nodes[i % nodes.size()], channel);
        req.range = window;
        req.window = 30;
        req.tenant = t;
        req.qos_class = static_cast<std::uint32_t>(i % qos::kClassCount);
        const auto resp = client.call(req);
        if (resp.status != server::wire::Status::kOk) {
          std::printf("FAIL: tagged window_sum (tenant %u class %u) "
                      "returned %s\n",
                      t, req.qos_class,
                      server::wire::status_name(resp.status));
          ++violations;
        } else {
          ++sent_by_class[static_cast<std::size_t>(
              qos::class_from_wire(req.qos_class))];
        }
      }
    }
    {
      server::Client client(copts);
      server::wire::Request req;
      req.method = server::wire::Method::kServerStats;
      const auto stats = client.call(req);
      for (std::size_t c = 0; c < qos::kClassCount; ++c) {
        if (stats.server.qos_served[c] < sent_by_class[c]) {
          std::printf("FAIL: class %s served %llu < %llu sent\n",
                      qos::class_name(static_cast<qos::Class>(c)),
                      static_cast<unsigned long long>(
                          stats.server.qos_served[c]),
                      static_cast<unsigned long long>(sent_by_class[c]));
          ++violations;
        }
      }
      if (stats.server.qos_workers == 0) {
        std::printf("FAIL: server_stats reports zero QoS workers\n");
        ++violations;
      }
    }

    // Phase 3: overload. Four batch tenants flood expensive full-range
    // rollups at a one-worker, four-slot server while one interactive
    // tenant keeps pinging. Victims are cheapest-to-refuse: the queue
    // holds only batch work, so an arriving ping always wins a slot.
    std::atomic<std::uint64_t> batch_ok{0}, batch_shed{0};
    std::atomic<std::uint64_t> hintless_sheds{0}, odd_status{0};
    std::vector<std::thread> flood;
    flood.reserve(kTenants);
    for (std::uint32_t t = 1; t <= kTenants; ++t) {
      flood.emplace_back([&, t] {
        server::Client client(copts);
        for (int i = 0; i < 8; ++i) {
          server::wire::Request req;
          req.method = server::wire::Method::kPueRollup;
          req.nodes = nodes;
          req.range = window;
          req.window = 10;
          req.tenant = t;
          req.qos_class = 2;  // batch
          const auto resp = client.call(req);
          if (resp.status == server::wire::Status::kOk) {
            ++batch_ok;
          } else if (resp.status ==
                     server::wire::Status::kResourceExhausted) {
            ++batch_shed;
            if (resp.shed_cost_hint_us == 0) ++hintless_sheds;
          } else {
            ++odd_status;
          }
        }
      });
    }
    std::uint64_t ping_shed = 0, ping_ok = 0;
    {
      server::Client client(copts);
      for (int i = 0; i < 40; ++i) {
        server::wire::Request req;
        req.method = server::wire::Method::kPing;
        req.tenant = 9;
        req.qos_class = 0;  // interactive
        const auto resp = client.call(req);
        if (resp.status == server::wire::Status::kOk) ++ping_ok;
        if (resp.status == server::wire::Status::kResourceExhausted) {
          ++ping_shed;
        }
      }
    }
    for (auto& th : flood) th.join();
    std::printf("[overload] batch %llu ok / %llu shed, interactive %llu "
                "ok / %llu shed\n",
                static_cast<unsigned long long>(batch_ok.load()),
                static_cast<unsigned long long>(batch_shed.load()),
                static_cast<unsigned long long>(ping_ok),
                static_cast<unsigned long long>(ping_shed));
    if (ping_shed != 0) {
      std::printf("FAIL: interactive requests were shed while batch work "
                  "sat queued\n");
      ++violations;
    }
    if (batch_ok.load() == 0) {
      std::printf("FAIL: overload starved batch completely\n");
      ++violations;
    }
    if (hintless_sheds.load() != 0) {
      std::printf("FAIL: %llu shed response(s) lacked the estimated-cost "
                  "hint\n",
                  static_cast<unsigned long long>(hintless_sheds.load()));
      ++violations;
    }
    if (odd_status.load() != 0) {
      std::printf("FAIL: %llu flood request(s) resolved to a status other "
                  "than kOk/kResourceExhausted\n",
                  static_cast<unsigned long long>(odd_status.load()));
      ++violations;
    }
    {
      server::Client client(copts);
      server::wire::Request req;
      req.method = server::wire::Method::kServerStats;
      const auto stats = client.call(req);
      if (stats.server.qos_shed[2] < batch_shed.load()) {
        std::printf("FAIL: batch shed counter %llu < %llu observed\n",
                    static_cast<unsigned long long>(
                        stats.server.qos_shed[2]),
                    static_cast<unsigned long long>(batch_shed.load()));
        ++violations;
      }
      if (stats.server.qos_shed[0] != 0) {
        std::printf("FAIL: interactive shed counter is nonzero\n");
        ++violations;
      }
    }

    server.shutdown();
    loop.join();
    server.drain();
  }

  // Phase 4: scatter legs inherit tenant and class. Two QoS shards
  // behind a coordinator; a batch-tagged cluster_sum must land on each
  // shard's batch counter — the coordinator forwards identity, it does
  // not launder it.
  {
    const cluster::ShardMap map = cluster::ShardMap::uniform(2);
    std::vector<std::string> roots{dir + "/shard0", dir + "/shard1"};
    {
      std::vector<store::Store> writers;
      for (const std::string& root : roots) {
        writers.push_back(store::Store::open(root, store_options));
      }
      for (const auto& batch : batches) {
        const auto parts = map.split(batch);
        for (std::size_t i = 0; i < parts.size(); ++i) {
          if (!parts[i].empty()) writers[i].append(parts[i]);
        }
      }
      for (auto& w : writers) w.flush();
    }
    std::vector<std::optional<store::Store>> shards;
    for (const std::string& root : roots) {
      shards.emplace_back(store::Store::open(root, store_options));
    }
    struct ShardServer {
      std::unique_ptr<server::Server> server;
      std::thread loop;
    };
    std::vector<ShardServer> servers;
    for (auto& st : shards) {
      ShardServer s;
      server::ServerOptions opts;
      opts.service.qos.emplace();
      s.server = std::make_unique<server::Server>(*st, opts);
      s.loop = std::thread([srv = s.server.get()] { srv->run(); });
      servers.push_back(std::move(s));
    }
    cluster::CoordinatorOptions copts;
    for (const ShardServer& s : servers) {
      copts.shards.push_back({"127.0.0.1", s.server->port()});
    }
    cluster::Coordinator coordinator(std::move(copts));

    server::wire::Request req;
    req.method = server::wire::Method::kClusterSum;
    req.nodes = nodes;
    req.channel = channel;
    req.range = window;
    req.window = 10;
    req.tenant = 7;
    req.qos_class = 2;  // batch
    const auto resp = coordinator.execute(req, nullptr, 0, nullptr);
    if (resp.status != server::wire::Status::kOk) {
      std::printf("FAIL: batch-tagged cluster_sum through coordinator "
                  "returned %s\n",
                  server::wire::status_name(resp.status));
      ++violations;
    }
    // Drain before reading counters: a chunk-streamed scan leg hands the
    // coordinator its bytes before the shard worker books the request,
    // so the counters lag the response by a hair.
    for (auto& s : servers) {
      s.server->shutdown();
      s.loop.join();
      s.server->drain();
    }
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const auto m = servers[i].server->service().metrics();
      if (m.class_served[2] == 0) {
        std::printf("FAIL: shard %zu saw no batch-class work — the "
                    "scatter leg dropped the QoS identity (accepted %llu "
                    "served %llu class0 %llu class1 %llu class2 %llu, "
                    "lost_segments %llu)\n",
                    i, static_cast<unsigned long long>(m.accepted),
                    static_cast<unsigned long long>(m.served),
                    static_cast<unsigned long long>(m.class_served[0]),
                    static_cast<unsigned long long>(m.class_served[1]),
                    static_cast<unsigned long long>(m.class_served[2]),
                    static_cast<unsigned long long>(
                        resp.stats.lost_segments));
        ++violations;
      }
      if (m.class_served[0] != 0 || m.class_shed[0] != 0) {
        std::printf("FAIL: shard %zu counted interactive work it was "
                    "never sent\n",
                    i);
        ++violations;
      }
    }
    for (auto& s : servers) s.server.reset();
  }

  std::printf("qoscheck: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}

/// One ScenarioSpec from the intervention flags (--cap-mw,
/// --wet-bulb-offset, --force-chillers, --weather-seed).
scenario::ScenarioSpec spec_from(const util::Flags& flags) {
  scenario::ScenarioSpec spec;
  spec.name = flags.get("name", "scenario");
  spec.power_cap_w = flags.get_number("cap-mw", 0.0) * 1e6;
  spec.wet_bulb_offset_c = flags.get_number("wet-bulb-offset", 0.0);
  spec.force_chillers = flags.has("force-chillers");
  if (flags.has("weather-seed")) {
    spec.has_weather_seed = true;
    spec.weather_seed =
        static_cast<std::uint64_t>(flags.get_int("weather-seed", 7));
  }
  return spec;
}

void print_scenario_summaries(
    const std::vector<scenario::ScenarioSummary>& rows) {
  util::TextTable t({"scenario", "windows", "energy", "Δenergy", "mean PUE",
                     "ΔPUE", "peak", "max Δpower"});
  for (const scenario::ScenarioSummary& s : rows) {
    t.add_row({s.name, std::to_string(s.windows),
               util::fmt_si(s.energy_j, "J"),
               util::fmt_si(s.energy_j - s.baseline_energy_j, "J"),
               util::fmt_double(s.mean_pue, 4),
               util::fmt_double(s.mean_pue - s.baseline_mean_pue, 4),
               util::fmt_si(s.peak_power_w, "W").c_str(),
               util::fmt_si(s.max_power_delta_w, "W").c_str()});
  }
  std::printf("%s", t.str().c_str());
}

/// `scenario`: replay a counterfactual against a store (in-process) or a
/// live server (kScenario / kScenarioSweep over the wire). Both paths
/// build the same wire request, so the flags mean the same thing either
/// way; --sweep-caps MW1,MW2,... fans one variant per cap.
int cmd_scenario(const util::Flags& flags) {
  const std::string endpoint = flags.get("endpoint");
  const std::string dir = flags.get("store", "telemetry_store");

  std::vector<scenario::ScenarioSpec> specs;
  const std::string sweep_caps = flags.get("sweep-caps");
  if (!sweep_caps.empty()) {
    std::size_t begin = 0;
    while (begin <= sweep_caps.size()) {
      std::size_t end = sweep_caps.find(',', begin);
      if (end == std::string::npos) end = sweep_caps.size();
      const std::string part = sweep_caps.substr(begin, end - begin);
      begin = end + 1;
      if (part.empty()) continue;
      scenario::ScenarioSpec spec = spec_from(flags);
      spec.power_cap_w = std::strtod(part.c_str(), nullptr) * 1e6;
      spec.name = "cap-" + part + "MW";
      specs.push_back(std::move(spec));
    }
  } else {
    specs.push_back(spec_from(flags));
  }
  if (specs.empty() || specs.size() > server::wire::kMaxSweepVariants) {
    std::fprintf(stderr, "scenario: want 1..%zu variants, got %zu\n",
                 server::wire::kMaxSweepVariants, specs.size());
    return 2;
  }

  server::wire::Request req;
  req.method = specs.size() == 1 ? server::wire::Method::kScenario
                                 : server::wire::Method::kScenarioSweep;
  req.scenarios = specs;
  req.window = flags.get_int("window", 10);
  // An inverted default range clamps to the data hull server-side, the
  // same "everything" idiom kSubscribe uses.
  req.range = {flags.get_int("range-begin", 0),
               flags.get_int("range-end",
                             std::numeric_limits<util::TimeSec>::max())};
  req.subscribe_mask = 0;  // summaries, not per-window tick streaming

  server::wire::Response resp;
  if (!endpoint.empty()) {
    const cluster::Endpoint ep = parse_endpoint(endpoint);
    const auto n_nodes = flags.get_int("nodes", 32);
    for (std::int64_t i = 0; i < n_nodes; ++i) {
      req.nodes.push_back(static_cast<machine::NodeId>(i));
    }
    server::ClientOptions copts;
    copts.host = ep.host;
    copts.port = ep.port;
    copts.request_timeout_ms =
        static_cast<int>(flags.get_int("timeout", 30000));
    server::Client client(copts);
    resp = client.call(req);
  } else {
    store::Store store = store::Store::open(dir);
    req.nodes = power_nodes(store);
    if (req.nodes.empty()) {
      std::fprintf(stderr,
                   "scenario: store %s holds no input-power channels\n",
                   dir.c_str());
      return 1;
    }
    server::QueryService service(store);
    resp = service.execute(req);
  }

  if (resp.status != server::wire::Status::kOk) {
    std::fprintf(stderr, "scenario: %s (%s)\n",
                 server::wire::status_name(resp.status),
                 resp.message.c_str());
    return 1;
  }
  print_scenario_summaries(resp.scenarios);
  if (resp.method == server::wire::Method::kScenario &&
      !resp.series.values().empty()) {
    std::printf("baseline: %s\n",
                core::sparkline(resp.baseline_power, 72).c_str());
    std::printf("variant:  %s\n", core::sparkline(resp.series, 72).c_str());
  }
  return 0;
}

/// The `scenario_roundtrip` ctest gate: the identity scenario must be
/// bit-identical to a plain pue_rollup — store-backed AND over loopback
/// RPC — a capped replay must never exceed the baseline power, a forced
/// trim-chiller outage must never beat the baseline PUE, and a sweep
/// whose client vanishes must free its admission slot (server_stats).
int cmd_scenariocheck(const util::Flags& flags) {
  const auto n = static_cast<int>(flags.get_int("nodes", 12));
  const double minutes = flags.get_number("minutes", 6.0);
  const std::string dir = flags.get("store", "scenariocheck_data");
  std::filesystem::remove_all(dir);

  const util::TimeSec start = util::kHour;
  const util::TimeRange window{
      start, start + static_cast<util::TimeSec>(minutes * 60.0)};
  core::SimulationConfig config;
  config.scale = machine::MachineScale::small(n);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.range = {0, window.end + util::kHour};
  core::Simulation sim(config);
  TelemetryRig rig(sim, config, window, config.scale.nodes);

  store::StoreOptions store_options;
  store_options.segment_events = 1 << 14;
  {
    store::Store store = store::Store::open(dir, store_options);
    rig.pipeline.set_batch_sink(
        [&](const std::vector<telemetry::MetricEvent>& batch) {
          store.append(batch);
        });
    rig.pipeline.run(window);
    store.flush();
  }

  std::size_t violations = 0;
  const auto bit_same = [](const ts::Series& a, const ts::Series& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };

  store::Store store = store::Store::open(dir, store_options);
  const std::vector<machine::NodeId> nodes = power_nodes(store);

  stream::EngineOptions options;
  options.range = window;
  options.rollup.edge_node_count = static_cast<double>(nodes.size());
  const auto offline = stream::replay_rollup(store, nodes, options);
  if (offline.windows == 0) {
    std::printf("FAIL: replay closed no windows — nothing to gate on\n");
    ++violations;
  }

  // Identity parity, store-backed: a default spec installs no hooks, so
  // every one of its four series must be bit-identical to the replay.
  {
    scenario::ScenarioSpec identity;
    identity.name = "identity";
    const auto r = scenario::run_scenario(store, nodes, options, identity);
    const bool ok = !r.cancelled && bit_same(r.power, offline.power) &&
                    bit_same(r.pue, offline.pue) &&
                    bit_same(r.baseline_power, offline.power) &&
                    bit_same(r.baseline_pue, offline.pue);
    std::printf("identity scenario vs pue_rollup (store-backed): %s "
                "(%zu windows)\n",
                ok ? "bit-identical" : "DIVERGED", offline.windows);
    if (!ok) ++violations;
  }

  double baseline_peak = 0.0;
  for (std::size_t i = 0; i < offline.power.size(); ++i) {
    baseline_peak = std::max(baseline_peak, offline.power[i]);
  }

  // Wire phases: identity parity, cap monotonicity and the chiller
  // outage, all through a loopback server — the same frames a remote
  // operator's what-if would ride.
  {
    server::Server server(store, {});
    std::thread loop([&] { server.run(); });
    server::ClientOptions copts;
    copts.port = server.port();
    server::Client client(copts);

    server::wire::Request req;
    req.method = server::wire::Method::kScenario;
    req.nodes = nodes;
    req.range = window;
    req.window = 10;
    req.subscribe_mask = 0;
    req.scenarios.resize(1);
    req.scenarios.front().name = "identity";
    {
      const auto resp = client.call(req);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      bit_same(resp.series, offline.power) &&
                      bit_same(resp.pue, offline.pue) &&
                      bit_same(resp.baseline_power, offline.power) &&
                      bit_same(resp.baseline_pue, offline.pue) &&
                      resp.scenarios.size() == 1 &&
                      resp.scenarios.front().windows == offline.windows;
      std::printf("identity scenario vs pue_rollup (loopback RPC): %s\n",
                  ok ? "bit-identical" : "DIVERGED");
      if (!ok) ++violations;
    }

    // A cap at 60% of the observed peak must bind somewhere, and the
    // capped series must never exceed the baseline anywhere.
    {
      req.scenarios.front() = {};
      req.scenarios.front().name = "cap";
      req.scenarios.front().power_cap_w = 0.6 * baseline_peak;
      const auto resp = client.call(req);
      std::size_t over = 0;
      std::size_t bound = 0;
      const std::size_t nw =
          std::min(resp.series.size(), offline.power.size());
      for (std::size_t i = 0; i < nw; ++i) {
        if (resp.series[i] > offline.power[i]) ++over;
        if (resp.series[i] < offline.power[i]) ++bound;
      }
      const bool ok = resp.status == server::wire::Status::kOk &&
                      nw == offline.power.size() && over == 0 && bound > 0;
      std::printf("power cap at 60%% of peak: %zu/%zu windows above "
                  "baseline, %zu clamped — %s\n",
                  over, nw, bound, ok ? "capped ≤ baseline" : "VIOLATED");
      if (!ok) ++violations;
    }

    // Trim chillers forced on for the whole range: strictly worse
    // facility overhead, so the variant PUE may never beat the baseline.
    {
      req.scenarios.front() = {};
      req.scenarios.front().name = "chiller-outage";
      req.scenarios.front().force_chillers = true;
      const auto resp = client.call(req);
      std::size_t better = 0;
      double mean_delta = 0.0;
      const std::size_t nw = std::min(resp.pue.size(), offline.pue.size());
      for (std::size_t i = 0; i < nw; ++i) {
        if (resp.pue[i] < offline.pue[i]) ++better;
        mean_delta += resp.pue[i] - offline.pue[i];
      }
      if (nw > 0) mean_delta /= static_cast<double>(nw);
      const bool ok = resp.status == server::wire::Status::kOk &&
                      nw == offline.pue.size() && better == 0 &&
                      mean_delta > 0.0;
      std::printf("forced trim chillers: PUE beats baseline in %zu/%zu "
                  "windows (mean ΔPUE %+0.4f) — %s\n",
                  better, nw, mean_delta,
                  ok ? "outage never wins" : "VIOLATED");
      if (!ok) ++violations;
    }

    // Sweep coherence: tighter caps may only shrink replayed energy, and
    // every summary must land at its request index.
    {
      req.method = server::wire::Method::kScenarioSweep;
      req.scenarios.clear();
      for (const double frac : {0.4, 0.6, 0.8, 1.2}) {
        scenario::ScenarioSpec spec;
        spec.name = "cap-" + util::fmt_double(frac, 1);
        spec.power_cap_w = frac * baseline_peak;
        req.scenarios.push_back(std::move(spec));
      }
      const auto resp = client.call(req);
      bool ordered = resp.scenarios.size() == req.scenarios.size();
      bool monotone = ordered;
      for (std::size_t i = 0; ordered && i < resp.scenarios.size(); ++i) {
        ordered = resp.scenarios[i].name == req.scenarios[i].name;
        if (i > 0 && resp.scenarios[i].energy_j <
                         resp.scenarios[i - 1].energy_j) {
          monotone = false;
        }
      }
      const bool ok = resp.status == server::wire::Status::kOk && ordered &&
                      monotone;
      std::printf("4-cap sweep: %zu summaries, request order %s, energy "
                  "monotone in the cap %s — %s\n",
                  resp.scenarios.size(), ordered ? "kept" : "LOST",
                  monotone ? "yes" : "NO", ok ? "coherent" : "VIOLATED");
      if (!ok) ++violations;
    }

    server.shutdown();
    loop.join();
    server.drain();
  }

  // Cancelled sweep frees its admission slot. A 1-thread pool pins sweep
  // A on the only worker; sweep B queues behind it; B's client vanishes
  // while A streams. When the worker reaches B its cancel token has long
  // been tripped, so B must resolve kCancelled — and the service
  // counters, read over the wire as server_stats, must show the slot
  // returned (depth 0) with the cancellation accounted.
  {
    util::ThreadPool pool(1);
    server::ServerOptions sopts;
    sopts.service.pool = &pool;
    store::Store fresh = store::Store::open(dir, store_options);
    server::Server server(fresh, sopts);
    std::thread loop([&] { server.run(); });
    server::ClientOptions copts;
    copts.port = server.port();

    server::wire::Request req;
    req.method = server::wire::Method::kScenarioSweep;
    req.nodes = nodes;
    req.range = window;
    req.window = 10;
    req.subscribe_mask =
        static_cast<std::uint8_t>(server::wire::TickKind::kWindow);
    for (int i = 0; i < 8; ++i) {
      scenario::ScenarioSpec spec;
      spec.name = "sweep-" + std::to_string(i);
      spec.power_cap_w = (0.3 + 0.1 * i) * baseline_peak;
      req.scenarios.push_back(std::move(spec));
    }

    server::Subscription running(copts, req);
    // First variant tick: sweep A is live on the pool's only thread.
    std::optional<server::wire::Tick> first;
    try {
      first = running.next(30000);
    } catch (const net::NetError&) {
    }
    if (!first.has_value() ||
        first->kind != server::wire::TickKind::kVariantWindow) {
      std::printf("FAIL: sweep streamed no variant-window tick\n");
      ++violations;
    }

    req.subscribe_mask = 0;
    server::Subscription doomed(copts, req);  // queues behind A
    doomed.close();                           // ...and its peer vanishes

    // Drain A: every variant must close every window, and the final
    // response must carry all 8 summaries.
    std::vector<std::size_t> per_variant(req.scenarios.size(), 0);
    if (first.has_value()) ++per_variant[first->variant];
    try {
      while (const auto tick = running.next(30000)) {
        if (tick->kind == server::wire::TickKind::kVariantWindow &&
            tick->variant < per_variant.size()) {
          ++per_variant[tick->variant];
        }
      }
    } catch (const net::NetError&) {
    }
    bool streamed_all = running.result().has_value() &&
                        running.result()->status ==
                            server::wire::Status::kOk &&
                        running.result()->scenarios.size() ==
                            req.scenarios.size();
    for (const std::size_t count : per_variant) {
      streamed_all = streamed_all && count == offline.windows;
    }
    std::printf("streaming sweep: %zu variants x %zu windows ticked, "
                "final response %s\n",
                per_variant.size(), offline.windows,
                streamed_all ? "OK with all summaries" : "BROKEN");
    if (!streamed_all) ++violations;

    // The abandoned sweep must leave no queued ghost behind: the
    // cancellation counted and every admitted slot accounted for. The
    // stats probe occupies a slot while it snapshots itself, so the
    // reported depth legitimately includes it — the conservation law is
    // accepted == finished buckets + whatever is still in flight.
    server::Client probe(copts);
    server::wire::Request stats_req;
    stats_req.method = server::wire::Method::kServerStats;
    server::wire::ServerStatsWire s;
    bool freed = false;
    for (int attempt = 0; attempt < 100; ++attempt) {
      const auto resp = probe.call(stats_req);
      if (resp.status != server::wire::Status::kOk) break;
      s = resp.server;
      freed = s.queue_depth <= 1 && s.cancelled >= 1 &&
              s.accepted == s.served + s.shed + s.deadline_exceeded +
                                s.cancelled + s.failed + s.queue_depth;
      if (freed) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("cancelled sweep: server_stats depth %llu (the probe "
                "itself), cancelled %llu, accepted %llu all accounted — "
                "%s\n",
                static_cast<unsigned long long>(s.queue_depth),
                static_cast<unsigned long long>(s.cancelled),
                static_cast<unsigned long long>(s.accepted),
                freed ? "slot freed" : "SLOT LEAKED");
    if (!freed) ++violations;

    server.shutdown();
    loop.join();
    server.drain();
  }

  std::printf("scenariocheck: %s\n", violations == 0 ? "PASS" : "FAIL");
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  try {
    if (flags.command() == "simulate") return cmd_simulate(flags);
    if (flags.command() == "analyze") return cmd_analyze(flags);
    if (flags.command() == "report") return cmd_report(flags);
    if (flags.command() == "stream") return cmd_stream(flags);
    if (flags.command() == "storecheck") return cmd_storecheck(flags);
    if (flags.command() == "faultcheck") return cmd_faultcheck(flags);
    if (flags.command() == "compact") return cmd_compact(flags);
    if (flags.command() == "compactcheck") return cmd_compactcheck(flags);
    if (flags.command() == "serve") return cmd_serve(flags);
    if (flags.command() == "servecheck") return cmd_servecheck(flags);
    if (flags.command() == "qoscheck") return cmd_qoscheck(flags);
    if (flags.command() == "cluster") return cmd_cluster(flags);
    if (flags.command() == "clustercheck") return cmd_clustercheck(flags);
    if (flags.command() == "scenario") return cmd_scenario(flags);
    if (flags.command() == "scenariocheck") return cmd_scenariocheck(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
