// loadgen — multi-threaded load generator for `exawatt_sim serve`.
//
//   loadgen --port 4626 --threads 8 --seconds 10 --nodes 32
//       [--deadline MS] [--range-begin S --range-end S] [--subscribe]
//       [--scenario] [--connections N]
//   loadgen --cluster 4701,4702,4703 --threads 8 --seconds 10
//
// Each thread owns one connection and issues a mixed read workload
// (window-sum, metric scans, cluster roll-ups, pings) as fast as the
// server answers, with an optional per-request deadline. Prints the
// status breakdown — shed (RESOURCE_EXHAUSTED) is admission control
// doing its job and is counted apart from transport errors, which are
// broken links — plus achieved request and event-read rates and a
// latency histogram with p50/p90/p99. Exit code is non-zero when no
// request succeeded — so the tool doubles as a connectivity probe.
//
// --scenario folds counterfactual replays into the mix: 10% kScenario
// (a random power cap or forced-chiller outage) and 5% kScenarioSweep
// (four cap variants, summaries only). These are the service's most
// CPU-heavy, cache-hostile requests — every one replays the whole range
// twice or more — so they shift the load from the wire to the pool and
// are the right stressor for admission control and deadline policy.
//
// --connections N adds an idle-heavy open-loop herd on top of the
// worker mix: N extra connections are opened and *held* for the whole
// run, each pinged once per --idle-every seconds on a fixed schedule
// (open loop: the schedule never adapts to response times, so a server
// that slows down accumulates lag instead of hiding it). This is the
// many-connection soak — dashboards and collectors that sit connected
// doing almost nothing — and the herd's ping latency is reported apart
// from the busy workers' percentiles. Raises RLIMIT_NOFILE as needed.
//
// --cluster PORTS (or HOST:PORT,...) drives a scatter-gather
// coordinator over the listed shard servers instead of one server: all
// threads share the coordinator, and the report adds a per-shard
// latency/status breakdown so a slow or flapping shard is visible.
//
// --classes turns on multi-tenant QoS traffic: every request carries a
// tenant id drawn Zipf(--zipf) from --tenants tenants and a priority
// class tied to its weight — interactive pings/window-sums, normal
// scans/roll-ups, batch replays — and the report adds a per-class
// latency table plus the server's own QoS counters (server_stats).
//
// --rate R switches the workers from closed-loop ("as fast as the
// server answers") to an open-loop Poisson process at R req/s total:
// each worker draws exponential inter-arrival gaps on a fixed schedule
// that never adapts to response times, and latency is measured from the
// *scheduled* arrival — a server that falls behind accumulates queueing
// delay in the numbers instead of quietly slowing the offered load.
// This is the overload harness: --rate well past capacity with
// --classes shows whether interactive p99 survives a batch flood.
//
// The default --nodes/--range match `exawatt_sim simulate --store`'s
// defaults (32 instrumented nodes, 30 minutes at 1 Hz).

#include <sys/resource.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "scenario/spec.hpp"
#include "server/client.hpp"
#include "telemetry/metric.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBuckets = 22;  ///< 2^k us buckets: 1 us .. ~4 s

std::size_t bucket_of(double us) {
  if (us < 1.0) return 0;
  const auto b = static_cast<std::size_t>(std::log2(us));
  return std::min(b, kBuckets - 1);
}

constexpr std::size_t kClasses = 3;  ///< interactive / normal / batch
const char* const kClassNames[kClasses] = {"interactive", "normal",
                                           "batch"};

struct WorkerStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t other = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t events = 0;  ///< response_event_volume sum
  std::vector<double> latencies_us;
  std::array<std::uint64_t, kBuckets> histogram{};
  /// --classes mode: the same outcomes split by priority class.
  std::array<std::uint64_t, kClasses> class_sent{};
  std::array<std::uint64_t, kClasses> class_ok{};
  std::array<std::uint64_t, kClasses> class_shed{};
  std::array<std::vector<double>, kClasses> class_latencies_us;
};

/// Zipf(alpha) sampler over tenants 1..n: tenant k with weight k^-alpha,
/// drawn by inverting the precomputed CDF. The skew is the point — one
/// or two heavy tenants plus a long tail is what fair queues must tame.
struct ZipfTenants {
  std::vector<double> cdf;
  ZipfTenants(std::uint32_t n, double alpha) {
    cdf.reserve(n);
    double total = 0.0;
    for (std::uint32_t k = 1; k <= n; ++k) {
      total += std::pow(static_cast<double>(k), -alpha);
      cdf.push_back(total);
    }
    for (double& c : cdf) c /= total;
  }
  [[nodiscard]] std::uint32_t draw(double u) const {
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint32_t>(it - cdf.begin()) + 1;
  }
};

/// "P" or "HOST:P", comma-separated, into coordinator endpoints.
std::vector<exawatt::cluster::Endpoint> parse_endpoints(
    const std::string& list) {
  std::vector<exawatt::cluster::Endpoint> eps;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string part = list.substr(begin, end - begin);
    begin = end + 1;
    if (part.empty()) continue;
    exawatt::cluster::Endpoint ep;
    const std::size_t colon = part.rfind(':');
    const std::string port_text =
        colon == std::string::npos ? part : part.substr(colon + 1);
    if (colon != std::string::npos && colon > 0) ep.host = part.substr(0, colon);
    const long port = std::strtol(port_text.c_str(), nullptr, 10);
    if (port <= 0 || port > 65535) {
      throw std::runtime_error("bad endpoint (want PORT or HOST:PORT): " +
                               part);
    }
    ep.port = static_cast<std::uint16_t>(port);
    eps.push_back(std::move(ep));
  }
  return eps;
}

/// Best-effort soft-cap raise for the idle herd; returns the cap now in
/// force so the caller can refuse an impossible --connections ask.
rlim_t raise_nofile(rlim_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur;
}

/// The idle herd: `herd.size()` held-open connections, each pinged once
/// per `every_s` on a fixed stagger. Returns ping latencies (ms).
struct IdleHerdReport {
  std::uint64_t pings = 0;
  std::uint64_t errors = 0;
  std::vector<double> latency_ms;
};

void print_shard_breakdown(
    const std::vector<exawatt::cluster::ShardStats>& shards) {
  exawatt::util::TextTable t({"shard", "endpoint", "up", "calls", "ok",
                              "shed", "deadline", "errors", "transport",
                              "reconnects", "mean ms", "max ms"});
  const auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const exawatt::cluster::ShardStats& s = shards[i];
    t.add_row({std::to_string(i), s.endpoint, s.up ? "yes" : "DOWN",
               std::to_string(s.calls), std::to_string(s.ok),
               std::to_string(s.shed), std::to_string(s.deadline_exceeded),
               std::to_string(s.other_errors),
               std::to_string(s.transport_errors),
               std::to_string(s.reconnect_attempts) + "/" +
                   std::to_string(s.reconnect_successes),
               ms(s.mean_latency_ms()),
               ms(static_cast<double>(s.latency_us_max) / 1000.0)});
  }
  std::printf("\nper-shard breakdown:\n%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  server::ClientOptions copts;
  copts.host = flags.get("host", "127.0.0.1");
  copts.port = static_cast<std::uint16_t>(flags.get_int("port", 4626));
  const auto threads =
      static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("threads", 8)));
  const double seconds = flags.get_number("seconds", 10.0);
  const auto n_nodes = static_cast<int>(flags.get_int("nodes", 32));
  const auto deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline", 0));
  const bool scenarios = flags.has("scenario");
  const util::TimeRange range{flags.get_int("range-begin", 0),
                              flags.get_int("range-end", 30 * 60)};
  const auto idle_connections = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("connections", 0)));
  const double idle_every =
      std::max(0.5, flags.get_number("idle-every", 5.0));
  const bool classes = flags.has("classes");
  const auto tenants = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.get_int("tenants", 4)));
  const double zipf_alpha = flags.get_number("zipf", 1.1);
  const double rate = flags.get_number("rate", 0.0);  // 0 = closed loop
  const ZipfTenants zipf(tenants, zipf_alpha);

  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<machine::NodeId> nodes(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) nodes[static_cast<std::size_t>(i)] = i;

  const std::string cluster_list = flags.get("cluster");
  std::unique_ptr<cluster::Coordinator> coordinator;
  if (!cluster_list.empty()) {
    cluster::CoordinatorOptions cluster_options;
    cluster_options.shards = parse_endpoints(cluster_list);
    coordinator =
        std::make_unique<cluster::Coordinator>(std::move(cluster_options));
  }

  if (coordinator != nullptr) {
    std::printf("loadgen: %zu threads x %.1f s against a %zu-shard cluster "
                "[%s] (%d nodes, range [%lld, %lld), deadline %u ms%s)\n",
                threads, seconds, coordinator->shards(),
                cluster_list.c_str(), n_nodes,
                static_cast<long long>(range.begin),
                static_cast<long long>(range.end), deadline_ms,
                scenarios ? ", 15% scenario replays" : "");
  } else {
    std::printf("loadgen: %zu threads x %.1f s against %s:%u (%d nodes, "
                "range [%lld, %lld), deadline %u ms%s)\n",
                threads, seconds, copts.host.c_str(), copts.port, n_nodes,
                static_cast<long long>(range.begin),
                static_cast<long long>(range.end), deadline_ms,
                scenarios ? ", 15% scenario replays" : "");
  }
  if (classes) {
    std::printf("qos traffic: %u tenants Zipf(%.2f), classes tagged "
                "(interactive/normal/batch)\n",
                tenants, zipf_alpha);
  }
  if (rate > 0.0) {
    std::printf("open loop: %.0f req/s offered on a fixed Poisson "
                "schedule (latency includes queueing-behind-schedule)\n",
                rate);
  }

  // The idle-heavy herd opens before the clock starts so the workers
  // below measure a server already holding every connection.
  std::vector<std::unique_ptr<server::Client>> herd;
  IdleHerdReport herd_report;
  if (idle_connections > 0 && coordinator == nullptr) {
    const rlim_t cap =
        raise_nofile(static_cast<rlim_t>(idle_connections) + 256);
    if (idle_connections + 128 > cap) {
      std::fprintf(stderr,
                   "loadgen: --connections %zu exceeds the fd cap (%llu); "
                   "raise ulimit -n\n",
                   idle_connections, static_cast<unsigned long long>(cap));
      return 1;
    }
    server::wire::Request ping;
    ping.method = server::wire::Method::kPing;
    herd.reserve(idle_connections);
    for (std::size_t i = 0; i < idle_connections; ++i) {
      herd.push_back(std::make_unique<server::Client>(copts));
      try {
        (void)herd.back()->call(ping);  // establish the connection now
      } catch (const net::NetError&) {
        ++herd_report.errors;  // lazily retried by the caretaker below
      }
    }
    std::printf("idle herd: %zu connections held, one ping each per "
                "%.1f s (open loop)\n",
                herd.size(), idle_every);
  }

  const auto t0 = Clock::now();
  const auto until = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(seconds));

  // Caretaker: walks the herd on a fixed stagger — the schedule never
  // adapts to response times (open loop), so server slowdowns surface as
  // lag in the herd's own latency numbers.
  std::thread caretaker;
  if (!herd.empty()) {
    caretaker = std::thread([&] {
      server::wire::Request ping;
      ping.method = server::wire::Method::kPing;
      const auto step = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(idle_every /
                                        static_cast<double>(herd.size())));
      auto next_at = Clock::now();
      std::size_t i = 0;
      while (Clock::now() < until) {
        std::this_thread::sleep_until(next_at);
        next_at += step;
        if (Clock::now() >= until) break;
        const auto sent_at = Clock::now();
        try {
          const auto resp = herd[i]->call(ping);
          ++herd_report.pings;
          if (resp.status == server::wire::Status::kOk) {
            herd_report.latency_ms.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          sent_at)
                    .count());
          }
        } catch (const net::NetError&) {
          ++herd_report.errors;
        }
        i = (i + 1) % herd.size();
      }
    });
  }

  std::vector<WorkerStats> per_thread(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      WorkerStats& stats = per_thread[w];
      util::Rng rng(0x10adULL + w);
      // Cluster mode drives the shared coordinator in-process (it is
      // thread-safe and serializes each shard link itself); single-server
      // mode keeps one connection per worker.
      std::optional<server::Client> client;
      if (coordinator == nullptr) client.emplace(copts);
      const server::CancelToken no_cancel;
      // Open loop: this worker's share of the offered rate, drawn as
      // exponential gaps on an absolute schedule that never adapts.
      const double worker_rate = rate / static_cast<double>(threads);
      auto next_arrival = Clock::now();
      while (Clock::now() < until) {
        auto scheduled_at = Clock::now();
        if (rate > 0.0) {
          scheduled_at = next_arrival;
          const double gap_s =
              -std::log(std::max(rng.uniform(), 1e-12)) / worker_rate;
          next_arrival += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(gap_s));
          std::this_thread::sleep_until(scheduled_at);
          if (Clock::now() >= until) break;
        }
        server::wire::Request req;
        req.deadline_ms = deadline_ms;
        req.range = range;
        req.window = 10;
        std::size_t cls = 1;
        if (classes) {
          // Class drawn first, method tied to it: interactive traffic is
          // cheap and latency-sensitive, batch is the replay heavyweight.
          req.tenant = zipf.draw(rng.uniform());
          const double c = rng.uniform();
          cls = c < 0.3 ? 0 : (c < 0.8 ? 1 : 2);
          req.qos_class = static_cast<std::uint32_t>(cls);
          if (cls == 0) {
            if (rng.uniform() < 0.5) {
              req.method = server::wire::Method::kPing;
            } else {
              req.method = server::wire::Method::kWindowSum;
              req.metric = telemetry::metric_id(
                  nodes[rng.uniform_index(nodes.size())], channel);
            }
          } else if (cls == 1) {
            if (rng.uniform() < 0.6) {
              req.method = server::wire::Method::kScan;
              const std::size_t want = 1 + rng.uniform_index(8);
              for (std::size_t i = 0; i < want; ++i) {
                req.metrics.push_back(telemetry::metric_id(
                    nodes[rng.uniform_index(nodes.size())], channel));
              }
            } else {
              req.method = server::wire::Method::kClusterSum;
              req.nodes = nodes;
              req.channel = channel;
            }
          } else if (scenarios && rng.uniform() < 0.3) {
            req.method = server::wire::Method::kScenarioSweep;
            req.nodes = nodes;
            req.subscribe_mask = 0;
            for (int v = 0; v < 4; ++v) {
              scenario::ScenarioSpec spec;
              spec.name = "loadgen-sweep-" + std::to_string(v);
              spec.power_cap_w = (0.4 + 0.2 * v) * 3000.0 *
                                 static_cast<double>(n_nodes);
              req.scenarios.push_back(std::move(spec));
            }
          } else {
            req.method = server::wire::Method::kPueRollup;
            req.nodes = nodes;
          }

          ++stats.sent;
          ++stats.class_sent[cls];
          try {
            const auto resp =
                coordinator != nullptr
                    ? coordinator->execute(
                          req, no_cancel,
                          deadline_ms == 0
                              ? 0
                              : util::Clock::steady().now_us() +
                                    static_cast<std::int64_t>(deadline_ms) *
                                        1000)
                    : client->call(req);
            // Open loop measures from the *scheduled* arrival: time spent
            // waiting to even be sent is queueing delay the client felt.
            const double us = std::chrono::duration<double, std::micro>(
                                  Clock::now() - scheduled_at)
                                  .count();
            stats.latencies_us.push_back(us);
            ++stats.histogram[bucket_of(us)];
            stats.class_latencies_us[cls].push_back(us);
            switch (resp.status) {
              case server::wire::Status::kOk:
                ++stats.ok;
                ++stats.class_ok[cls];
                stats.events += server::wire::response_event_volume(resp);
                break;
              case server::wire::Status::kResourceExhausted:
                ++stats.shed;
                ++stats.class_shed[cls];
                break;
              case server::wire::Status::kDeadlineExceeded:
                ++stats.deadline;
                break;
              default:
                ++stats.other;
                break;
            }
          } catch (const net::NetError&) {
            ++stats.transport_errors;
            if (client.has_value() && !client->connected()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
          }
          continue;
        }
        const double pick = rng.uniform();
        if (scenarios && pick >= 0.85 && pick < 0.95) {
          // 10% single counterfactual: a cap drawn around the plausible
          // cluster power, or the forced-chiller outage.
          req.method = server::wire::Method::kScenario;
          req.nodes = nodes;
          req.subscribe_mask = 0;
          scenario::ScenarioSpec spec;
          if (rng.uniform() < 0.5) {
            spec.name = "loadgen-cap";
            spec.power_cap_w =
                (0.3 + 0.6 * rng.uniform()) * 3000.0 *
                static_cast<double>(n_nodes);
          } else {
            spec.name = "loadgen-outage";
            spec.force_chillers = true;
          }
          req.scenarios.push_back(std::move(spec));
        } else if (scenarios && pick >= 0.95) {
          // 5% sweep: four caps fanned server-side, summaries back.
          req.method = server::wire::Method::kScenarioSweep;
          req.nodes = nodes;
          req.subscribe_mask = 0;
          for (int v = 0; v < 4; ++v) {
            scenario::ScenarioSpec spec;
            spec.name = "loadgen-sweep-" + std::to_string(v);
            spec.power_cap_w = (0.4 + 0.2 * v) * 3000.0 *
                               static_cast<double>(n_nodes);
            req.scenarios.push_back(std::move(spec));
          }
        } else if (pick < 0.45) {
          req.method = server::wire::Method::kWindowSum;
          req.metric = telemetry::metric_id(
              nodes[rng.uniform_index(nodes.size())], channel);
        } else if (pick < 0.75) {
          req.method = server::wire::Method::kScan;
          const std::size_t want = 1 + rng.uniform_index(8);
          for (std::size_t i = 0; i < want; ++i) {
            req.metrics.push_back(telemetry::metric_id(
                nodes[rng.uniform_index(nodes.size())], channel));
          }
        } else if (pick < 0.9) {
          req.method = server::wire::Method::kClusterSum;
          req.nodes = nodes;
          req.channel = channel;
        } else {
          req.method = server::wire::Method::kPing;
        }

        const auto sent_at = rate > 0.0 ? scheduled_at : Clock::now();
        ++stats.sent;
        try {
          const auto resp =
              coordinator != nullptr
                  ? coordinator->execute(
                        req, no_cancel,
                        deadline_ms == 0
                            ? 0
                            : util::Clock::steady().now_us() +
                                  static_cast<std::int64_t>(deadline_ms) *
                                      1000)
                  : client->call(req);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() -
                                                        sent_at)
                  .count();
          stats.latencies_us.push_back(us);
          ++stats.histogram[bucket_of(us)];
          switch (resp.status) {
            case server::wire::Status::kOk:
              ++stats.ok;
              stats.events += server::wire::response_event_volume(resp);
              break;
            case server::wire::Status::kResourceExhausted:
              ++stats.shed;
              break;
            case server::wire::Status::kDeadlineExceeded:
              ++stats.deadline;
              break;
            default:
              ++stats.other;
              break;
          }
        } catch (const net::NetError&) {
          ++stats.transport_errors;
          if (client.has_value() && !client->connected()) {
            // Server gone (or drained); keep trying until the clock runs
            // out so a restart mid-run is measured, not fatal.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (caretaker.joinable()) caretaker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerStats total;
  for (const auto& s : per_thread) {
    total.sent += s.sent;
    total.ok += s.ok;
    total.shed += s.shed;
    total.deadline += s.deadline;
    total.other += s.other;
    total.transport_errors += s.transport_errors;
    total.events += s.events;
    total.latencies_us.insert(total.latencies_us.end(),
                              s.latencies_us.begin(), s.latencies_us.end());
    for (std::size_t b = 0; b < kBuckets; ++b) {
      total.histogram[b] += s.histogram[b];
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
      total.class_sent[c] += s.class_sent[c];
      total.class_ok[c] += s.class_ok[c];
      total.class_shed[c] += s.class_shed[c];
      total.class_latencies_us[c].insert(total.class_latencies_us[c].end(),
                                         s.class_latencies_us[c].begin(),
                                         s.class_latencies_us[c].end());
    }
  }

  // Shed is the server protecting itself (RESOURCE_EXHAUSTED at
  // admission) — a healthy signal under overload; transport errors are
  // broken links. The two must never be conflated in the report.
  std::printf(
      "\nsent %llu: %llu ok, %llu shed (RESOURCE_EXHAUSTED), %llu "
      "deadline-exceeded, %llu other, %llu transport errors\n",
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.deadline),
      static_cast<unsigned long long>(total.other),
      static_cast<unsigned long long>(total.transport_errors));
  if (coordinator != nullptr) {
    // A degraded scatter still answers kOk, so shard-level shedding and
    // outages hide inside "ok" above; sum the per-shard legs here.
    std::uint64_t leg_shed = 0;
    std::uint64_t leg_transport = 0;
    const auto shards = coordinator->shard_stats();
    for (const auto& s : shards) {
      leg_shed += s.shed;
      leg_transport += s.transport_errors;
    }
    std::printf("scatter legs: %llu shed (RESOURCE_EXHAUSTED), %llu "
                "transport errors across %zu shard(s)\n",
                static_cast<unsigned long long>(leg_shed),
                static_cast<unsigned long long>(leg_transport),
                shards.size());
  }
  std::printf("rates: %s, %s read back\n",
              util::fmt_si(static_cast<double>(total.sent) / elapsed,
                           "req/s", 2)
                  .c_str(),
              util::fmt_si(static_cast<double>(total.events) / elapsed,
                           "events/s", 2)
                  .c_str());

  if (!total.latencies_us.empty()) {
    std::sort(total.latencies_us.begin(), total.latencies_us.end());
    const auto pct = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(total.latencies_us.size() - 1));
      return total.latencies_us[idx] / 1000.0;
    };
    std::printf("latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, max "
                "%.3f ms\n\n",
                pct(0.5), pct(0.9), pct(0.99),
                total.latencies_us.back() / 1000.0);

    std::uint64_t peak = 1;
    for (const auto c : total.histogram) peak = std::max(peak, c);
    std::printf("latency histogram:\n");
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (total.histogram[b] == 0) continue;
      const double lo_ms = (b == 0 ? 0.0 : std::exp2(static_cast<double>(b))) / 1000.0;
      const double hi_ms = std::exp2(static_cast<double>(b + 1)) / 1000.0;
      const auto width = static_cast<std::size_t>(
          40.0 * static_cast<double>(total.histogram[b]) /
          static_cast<double>(peak));
      std::printf("  [%9.3f, %9.3f) ms |%-40s| %llu\n", lo_ms, hi_ms,
                  std::string(std::max<std::size_t>(width, 1), '#').c_str(),
                  static_cast<unsigned long long>(total.histogram[b]));
    }
  }
  if (classes) {
    // Per-class latency table — the number the QoS scheduler is judged
    // on is the interactive row's p99 under a batch flood.
    util::TextTable t(
        {"class", "sent", "ok", "shed", "p50 ms", "p99 ms", "max ms"});
    const auto ms = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", v / 1000.0);
      return std::string(buf);
    };
    for (std::size_t c = 0; c < kClasses; ++c) {
      auto& lat = total.class_latencies_us[c];
      std::sort(lat.begin(), lat.end());
      const auto pct = [&](double q) {
        return lat.empty() ? 0.0
                           : lat[static_cast<std::size_t>(
                                 q * static_cast<double>(lat.size() - 1))];
      };
      t.add_row({kClassNames[c], std::to_string(total.class_sent[c]),
                 std::to_string(total.class_ok[c]),
                 std::to_string(total.class_shed[c]), ms(pct(0.5)),
                 ms(pct(0.99)), ms(lat.empty() ? 0.0 : lat.back())});
    }
    std::printf("\nper-class breakdown:\n%s", t.str().c_str());
    if (coordinator == nullptr) {
      // The server's own QoS accounting, read over the wire — served /
      // shed / p99 as the scheduler saw them, plus the autoscaled worker
      // count and the cost backlog still queued at the end of the run.
      try {
        server::Client client(copts);
        server::wire::Request req;
        req.method = server::wire::Method::kServerStats;
        const auto resp = client.call(req);
        if (resp.status == server::wire::Status::kOk) {
          std::printf("server qos: %llu worker(s), backlog %llu us",
                      static_cast<unsigned long long>(
                          resp.server.qos_workers),
                      static_cast<unsigned long long>(
                          resp.server.qos_backlog_cost_us));
          for (std::size_t c = 0; c < kClasses; ++c) {
            std::printf(" | %s %llu/%llu p99 %.2f ms", kClassNames[c],
                        static_cast<unsigned long long>(
                            resp.server.qos_served[c]),
                        static_cast<unsigned long long>(
                            resp.server.qos_shed[c]),
                        static_cast<double>(resp.server.qos_p99_us[c]) /
                            1000.0);
          }
          std::printf("\n");
        }
      } catch (const net::NetError&) {
        // Server already gone; the client-side table above stands alone.
      }
    }
  }
  if (!herd.empty()) {
    auto& lat = herd_report.latency_ms;
    std::sort(lat.begin(), lat.end());
    const auto pct = [&](double q) {
      return lat.empty() ? 0.0
                         : lat[static_cast<std::size_t>(
                               q * static_cast<double>(lat.size() - 1))];
    };
    std::printf("idle herd: %llu pings (%llu errors), p50 %.3f ms, "
                "p99 %.3f ms\n",
                static_cast<unsigned long long>(herd_report.pings),
                static_cast<unsigned long long>(herd_report.errors),
                pct(0.5), pct(0.99));
  }
  if (coordinator != nullptr) {
    print_shard_breakdown(coordinator->shard_stats());
  }
  return total.ok > 0 ? 0 : 1;
}
