// F14 — GPU failures per node-hour by project (paper Fig. 14): top-15
// projects for (a) all failures and (b) the hardware-only subset. Shape
// targets: order-of-magnitude variability across projects (distinct
// workload patterns drive GPU reliability); the hardware-only ranking
// differs from the all-failures ranking.

#include "bench_common.hpp"
#include "core/failure_analysis.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"
#include "workload/domain.hpp"

namespace {

using namespace exawatt;

void print_ranking(const char* title,
                   const std::vector<core::ProjectFailureRate>& rates,
                   core::Simulation& sim, util::CsvWriter& csv,
                   bool hardware) {
  std::printf("%s\n", title);
  util::TextTable t({"project", "domain", "node-hours", "fail/node-hr",
                     "top type"});
  for (const auto& r : rates) {
    std::size_t top_type = 0;
    for (std::size_t i = 0; i < r.by_type.size(); ++i) {
      if (r.by_type[i] > r.by_type[top_type]) top_type = i;
    }
    t.add_row({sim.projects()[r.project].name,
               workload::domain_catalog()[r.domain].name,
               util::fmt_double(r.node_hours, 0),
               util::fmt_double(r.failures_per_node_hour, 6),
               failures::xid_name(static_cast<failures::XidType>(top_type))});
    csv.add_row({hardware ? 1.0 : 0.0, static_cast<double>(r.project),
                 r.node_hours, r.failures_per_node_hour});
  }
  std::printf("%s\n", t.str().c_str());
  if (rates.size() >= 2) {
    std::printf("[shape] rate spread across top-15: %.1fx\n\n",
                rates.front().failures_per_node_hour /
                    std::max(rates.back().failures_per_node_hour, 1e-12));
  }
}

void print_artifact() {
  bench::print_header(
      "F14  Failures per node-hour by project (Figure 14)",
      "top-15 projects; high cross-project variability; hardware-only "
      "subset ranks differently");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  const auto& log = sim.failure_log();

  util::CsvWriter csv("f14_failures_per_project.csv",
                      {"hardware_only", "project", "node_hours",
                       "failures_per_node_hour"});
  print_ranking("(a) all failures, top-15 projects",
                core::project_failure_rates(log, sim.jobs(), sim.projects(),
                                            false, 15),
                sim, csv, false);
  print_ranking("(b) hardware failures only, top-15 projects",
                core::project_failure_rates(log, sim.jobs(), sim.projects(),
                                            true, 15),
                sim, csv, true);
}

void BM_project_rates(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 8 * util::kWeek);
  static core::Simulation sim(config);
  static const auto& log = sim.failure_log();
  for (auto _ : state) {
    auto rates = core::project_failure_rates(log, sim.jobs(), sim.projects(),
                                             false, 15);
    benchmark::DoNotOptimize(rates.size());
  }
}
BENCHMARK(BM_project_rates);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
