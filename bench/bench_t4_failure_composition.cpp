// T4 — GPU failure composition (paper Table 4): counts per XID type and
// the maximum share a single node contributes. Shape targets: the rank
// order (memory page faults >> graphics engine exceptions >> stopped
// processing >> NVLink >> ...); one node carrying ~97% of NVLink errors;
// driver-error-handling exceptions all on one node; application-
// attributable types dominating the total (~96%).

#include "bench_common.hpp"
#include "core/failure_analysis.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "T4  GPU failure composition (Table 4)",
      "251,859 errors in 2020; page faults 186,496 (0.6% top node); NVLink "
      "8,736 (96.9% one node); driver-error-handling 21 (100% one node)");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  const auto& log = sim.failure_log();
  const auto composition =
      core::failure_composition(log, config.scale.nodes);

  std::uint64_t total = 0;
  std::uint64_t app_total = 0;
  for (const auto& row : composition) {
    total += row.count;
    if (failures::xid_is_application(row.type)) app_total += row.count;
  }
  std::printf("total events: %llu (paper: 251,859); application-"
              "attributable: %.1f%%\n\n",
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(app_total) /
                  static_cast<double>(total));

  util::TextTable t({"GPU error", "count", "paper count", "max/node share",
                     "paper share"});
  const auto& profiles = failures::xid_profiles();
  util::CsvWriter csv("t4_failure_composition.csv",
                      {"type", "count", "max_per_node", "share"});
  for (const auto& row : composition) {
    const auto& profile = profiles[static_cast<std::size_t>(row.type)];
    t.add_row({failures::xid_name(row.type), std::to_string(row.count),
               util::fmt_double(profile.annual_count, 0),
               util::fmt_double(100.0 * row.max_per_node_share, 1) + "%",
               util::fmt_double(100.0 * profile.top_node_share, 1) + "%"});
    csv.add_row({static_cast<double>(row.type),
                 static_cast<double>(row.count),
                 static_cast<double>(row.max_per_node),
                 row.max_per_node_share});
  }
  std::printf("%s\n", t.str().c_str());
}

void BM_failure_generation(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 4 * util::kWeek);
  static core::Simulation sim(config);
  (void)sim.jobs();
  for (auto _ : state) {
    failures::FailureGenerator gen(config.scale, sim.projects(),
                                   config.failures);
    auto log = gen.generate(sim.jobs());
    benchmark::DoNotOptimize(log.size());
  }
}
BENCHMARK(BM_failure_generation);

void BM_composition(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 8 * util::kWeek);
  static core::Simulation sim(config);
  static const auto& log = sim.failure_log();
  for (auto _ : state) {
    auto c = core::failure_composition(log, config.scale.nodes);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_composition);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
