// F15 — Thermal extremity of GPU failures (paper Fig. 15): per-type
// distributions of the offending GPU's temperature z-score within its
// job, and the absolute core temperatures. Shape targets: no type is
// left-skewed except (weakly) graphics-engine faults; double-bit,
// off-the-bus, microcontroller-warning and page-retirement-failure are
// right-skewed ("not yet warmed up"); essentially all failures below
// 60 C except a small share of NVLink/off-the-bus; the NVLink
// super-offender is removed before the analysis.

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "core/failure_analysis.hpp"
#include "failures/generator.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F15  Thermal extremity of failures (Figure 15)",
      "no left skew (except graphics engine fault); DBE/off-bus/uC-warn/"
      "retirement-failure right-skewed; max DBE temp ~46 C; <60 C overall");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  // The paper drops the 97%-of-NVLink super-offender before the analysis.
  const auto extremity = core::thermal_extremity(
      sim.failure_log(), sim.failure_generator().nvlink_offender());

  util::TextTable t({"type", "n", "z mean", "z skew", "max temp (C)",
                     ">=60C"});
  util::CsvWriter csv("f15_thermal_extremity.csv",
                      {"type", "z_score", "temp_c"});
  for (const auto& e : extremity) {
    if (e.z_scores.size() < 5) continue;
    t.add_row({failures::xid_name(e.type), std::to_string(e.z_scores.size()),
               util::fmt_double(stats::mean(e.z_scores), 2),
               util::fmt_double(e.z_skewness, 2),
               util::fmt_double(e.max_temp_c, 1),
               util::fmt_double(100.0 * e.share_above_60c, 1) + "%"});
    const std::size_t stride =
        std::max<std::size_t>(1, e.z_scores.size() / 2000);
    for (std::size_t i = 0; i < e.z_scores.size(); i += stride) {
      csv.add_row({static_cast<double>(e.type), e.z_scores[i], e.temps_c[i]});
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("[shape] right-skew (z skew > 0.3) expected for DBE, fallen "
              "off bus, uC warning, page retirement failure; left skew only "
              "for graphics engine fault.\n\n");
}

void BM_thermal_extremity(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 8 * util::kWeek);
  static core::Simulation sim(config);
  static const auto& log = sim.failure_log();
  for (auto _ : state) {
    auto e = core::thermal_extremity(log);
    benchmark::DoNotOptimize(e.size());
  }
}
BENCHMARK(BM_thermal_extremity);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
