// S2 — On-disk telemetry store (src/store, DESIGN.md §2): the durable
// counterpart of the in-memory archive. The paper's out-of-band feed is
// 100 metrics/node/s from 4,626 nodes — 462,600 events/s — and the store
// must (a) ingest at least that fast, i.e. persist faster than the
// machine produces, and (b) answer range scans faster in parallel than
// serially, since analysis reads a day of segments at a time.
// Reports write throughput vs the sim-real-time target, reopen/recovery
// latency, and cold+warm fan-out scan times vs thread-pool size, then
// google-benchmark timings of the primitives.

#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_common.hpp"
#include "faultfs/fault.hpp"
#include "server/chunk.hpp"
#include "server/wire.hpp"
#include "store/store.hpp"
#include "telemetry/archive.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string bench_store_dir(const char* leaf) {
  return (fs::temp_directory_path() / "exawatt_bench_store" / leaf).string();
}

/// A BMC-shaped feed: `metrics` channels at 1 Hz for `seconds`, values a
/// small random walk (the delta codec's favorable, realistic case), one
/// batch per emitted second like the pipeline's sink sees it.
std::vector<std::vector<telemetry::MetricEvent>> synth_feed(
    std::uint32_t metrics, util::TimeSec seconds) {
  util::Rng rng(2020);
  std::vector<std::int32_t> walk(metrics);
  for (auto& v : walk) {
    v = static_cast<std::int32_t>(500 + rng.uniform_index(1500));
  }
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  batches.reserve(static_cast<std::size_t>(seconds));
  for (util::TimeSec t = 0; t < seconds; ++t) {
    std::vector<telemetry::MetricEvent> batch;
    batch.reserve(metrics);
    for (std::uint32_t m = 0; m < metrics; ++m) {
      walk[m] += static_cast<std::int32_t>(rng.uniform_index(7)) - 3;
      batch.push_back({m, t, walk[m]});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void print_artifact() {
  bench::print_header(
      "S2  On-disk telemetry store (src/store)",
      "Dataset A lands as one tar of parquet files per day; our segment "
      "store must persist the 462,600 events/s out-of-band feed faster "
      "than real time and scan it back in parallel");

  // 3,200 metrics (32 nodes) for 15 simulated minutes = 2.88M events by
  // default; full scale quadruples the span.
  const std::uint32_t metrics = 3'200;
  const util::TimeSec span = bench::full_scale_requested() ? 3'600 : 900;
  const double target = 462'600.0;
  const auto batches = synth_feed(metrics, span);
  std::uint64_t total = 0;
  for (const auto& b : batches) total += b.size();

  const std::string dir = bench_store_dir("write");
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 18;
  // Cache off for the write + scan-scaling sections: the scaling table
  // measures the decode fan-out, and repeated passes must not quietly
  // turn into cache hits. The cache gets its own section below.
  options.cache_bytes = 0;

  double write_s = 0.0;
  {
    auto st = store::Store::open(dir, options);
    const auto t0 = Clock::now();
    for (const auto& b : batches) st.append(b);
    st.flush();
    write_s = seconds_since(t0);
    std::printf("wrote %llu events in %.2f s -> %s (%zu segments, %.1fx "
                "compression, %.2f MB)\n",
                static_cast<unsigned long long>(total), write_s,
                util::fmt_si(static_cast<double>(total) / write_s,
                             "events/s", 2)
                    .c_str(),
                st.sealed_segments(), st.compression_ratio(),
                static_cast<double>(st.stored_bytes()) / 1e6);
  }
  const double rate = static_cast<double>(total) / write_s;
  std::printf("store write: %s (%.2fx the 462,600 events/s feed)\n",
              rate >= target ? "MET" : "NOT MET", rate / target);

  // Reopen = recovery path: directory listing, manifest CRC, footer
  // validation of every listed segment.
  const auto t0 = Clock::now();
  auto st = store::Store::open(dir, options);
  std::printf("reopen+recovery: %.1f ms (%zu segments, clean=%d)\n\n",
              1e3 * seconds_since(t0), st.sealed_segments(),
              st.recovery().clean() ? 1 : 0);

  // Fan-out scan: all metrics over the full span, vs thread-pool width.
  // The first pass at each width is repeated so cold-cache noise (first
  // touch of the segment files) does not decide the speedup.
  std::vector<telemetry::MetricId> ids(metrics);
  for (std::uint32_t m = 0; m < metrics; ++m) ids[m] = m;
  const util::TimeRange range{0, span};

  util::TextTable t({"threads", "scan time", "events/s", "speedup"});
  double serial_s = 0.0;
  double two_thread_s = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool pool(threads);
    double best = 1e30;
    std::uint64_t got = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto s0 = Clock::now();
      const auto runs = st.query_many(ids, range, &pool);
      const double elapsed = seconds_since(s0);
      best = std::min(best, elapsed);
      got = 0;
      for (const auto& run : runs) got += run.samples.size();
      benchmark::DoNotOptimize(got);
    }
    if (threads == 1) serial_s = best;
    if (threads == 2) two_thread_s = best;
    t.add_row({std::to_string(threads), util::fmt_double(1e3 * best, 1) + " ms",
               util::fmt_si(static_cast<double>(got) / best, "events/s", 2),
               util::fmt_double(serial_s / best, 2) + "x"});
  }
  std::printf("%s\n", t.str().c_str());
  // The decode-bound scan can only beat serial with real cores to fan
  // out to; on a 1-thread host the comparison is noise, not a verdict.
  const double scan_speedup = serial_s / two_thread_s;
  const bool multi_core = std::thread::hardware_concurrency() >= 2;
  const bool gate_scan_parallel = !multi_core || scan_speedup >= 1.5;
  if (multi_core) {
    std::printf("parallel scan (2 threads) vs serial: %.2fx -- %s "
                "(target >= 1.5x)\n\n",
                scan_speedup, gate_scan_parallel ? "MET" : "NOT MET");
  } else {
    std::printf("parallel scan (2 threads) vs serial: %.2fx (single "
                "hardware thread -- speedup not measurable)\n\n",
                scan_speedup);
  }

  // Decoded-block cache: a dashboard re-rendering the same roll-up (the
  // paper's 10 s power means, here 60 s buckets over the full span) pays
  // disk + CRC + varint decode once, then every refresh accumulates
  // straight from the cached columns.
  store::StoreOptions cached_options = options;
  cached_options.cache_bytes = std::size_t{256} << 20;
  auto cached = store::Store::open(dir, cached_options);
  const auto rollup = [&](std::uint32_t m) {
    const auto grid = cached.window_sum(m, range, 60);
    std::uint64_t got = 0;
    for (const auto c : grid.count) got += c;
    return got;
  };
  const auto cold0 = Clock::now();
  std::uint64_t cold_got = 0;
  for (std::uint32_t m = 0; m < 64; ++m) cold_got += rollup(m);
  const double cold_s = seconds_since(cold0);
  double warm_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const auto w0 = Clock::now();
    std::uint64_t warm_got = 0;
    for (std::uint32_t m = 0; m < 64; ++m) warm_got += rollup(m);
    warm_s = std::min(warm_s, seconds_since(w0));
    benchmark::DoNotOptimize(warm_got);
  }
  const auto cache_counters = cached.block_cache()->counters();
  const double cache_speedup = cold_s / warm_s;
  std::printf("decoded-block cache: cold %.1f ms, warm %.1f ms over %llu "
              "samples (%llu hits / %llu misses, %.1f MB resident)\n",
              1e3 * cold_s, 1e3 * warm_s,
              static_cast<unsigned long long>(cold_got),
              static_cast<unsigned long long>(cache_counters.hits),
              static_cast<unsigned long long>(cache_counters.misses),
              static_cast<double>(cache_counters.bytes) / 1e6);
  std::printf("cache-hit repeated query: %.1fx vs cold -- %s "
              "(target >= 5x)\n\n",
              cache_speedup, cache_speedup >= 5.0 ? "MET" : "NOT MET");

  // Warm read tier: the same full-span fan-out scan served from mmap'd
  // segments (zero-copy block slices, no per-block open/seek) vs the
  // buffered cold tier. Cache off on both so the comparison is pure
  // read-path; both benefit equally from the OS page cache.
  double cold_tier_s = 1e30;
  double warm_tier_s = 1e30;
  store::QueryStats warm_stats;
  {
    util::ThreadPool pool(4);
    auto cold_st = store::Store::open(dir, options);
    for (int rep = 0; rep < 3; ++rep) {
      const auto s0 = Clock::now();
      const auto runs = cold_st.query_many(ids, range, &pool);
      cold_tier_s = std::min(cold_tier_s, seconds_since(s0));
      benchmark::DoNotOptimize(runs.size());
    }
    store::StoreOptions warm_options = options;
    warm_options.mmap_segments = true;
    auto warm_st = store::Store::open(dir, warm_options);
    for (int rep = 0; rep < 3; ++rep) {
      const auto s0 = Clock::now();
      warm_stats = {};
      const auto runs = warm_st.query_many(ids, range, &pool, &warm_stats);
      warm_tier_s = std::min(warm_tier_s, seconds_since(s0));
      benchmark::DoNotOptimize(runs.size());
    }
  }
  const double warm_speedup = cold_tier_s / warm_tier_s;
  const bool gate_warm_tier = warm_speedup >= 1.3;
  std::printf("warm tier (mmap): %.1f ms vs cold (buffered) %.1f ms over "
              "%llu warm / %llu cold blocks\n",
              1e3 * warm_tier_s, 1e3 * cold_tier_s,
              static_cast<unsigned long long>(warm_stats.warm_blocks),
              static_cast<unsigned long long>(warm_stats.cold_blocks));
  std::printf("warm-tier scan: %.2fx vs cold -- %s (target >= 1.3x)\n\n",
              warm_speedup, gate_warm_tier ? "MET" : "NOT MET");

  // Zero-copy scan-to-wire: stream every metric's encoded blocks through
  // a ChunkWriter into a counting sink. Whole blocks slice straight from
  // the mapped segment into chunk frames; the gate is peak staged bytes
  // <= chunk_bytes — serving memory flat in the archive size.
  std::uint64_t stream_bytes = 0;
  std::uint64_t stream_frames = 0;
  std::uint64_t stream_raw_blocks = 0;
  std::uint64_t stream_loose = 0;
  std::size_t stream_peak_staged = 0;
  const std::uint32_t stream_chunk = 64 * 1024;
  double stream_s = 0.0;
  {
    store::StoreOptions warm_options = options;
    warm_options.mmap_segments = true;
    auto warm_st = store::Store::open(dir, warm_options);
    server::ChunkWriter::Sink sink;
    sink.acquire = [](std::size_t, const std::function<bool()>&) {
      return true;
    };
    sink.send = [&](std::vector<std::uint8_t>&& frame) {
      stream_bytes += frame.size();
      ++stream_frames;
      return true;
    };
    server::ChunkWriter chunk(1, stream_chunk, sink, [] { return false; });
    std::vector<std::uint8_t> buf;
    auto note = [&] {
      stream_peak_staged = std::max(stream_peak_staged, chunk.buffered());
      return true;
    };
    store::RawScanSink raw;
    raw.begin_run = [&](telemetry::MetricId id) {
      buf.clear();
      server::wire::scan_blocks_run_begin(id, &buf);
      return chunk.write(buf) && note();
    };
    raw.block = [&](std::span<const std::uint8_t> bytes, std::uint32_t ev) {
      ++stream_raw_blocks;
      buf.clear();
      server::wire::scan_blocks_block_header(
          static_cast<std::uint32_t>(bytes.size()), ev, &buf);
      return chunk.write(buf) && chunk.write(bytes) && note();
    };
    raw.samples = [&](std::span<const ts::Sample> samples) {
      stream_loose += samples.size();
      buf.clear();
      server::wire::scan_blocks_samples(samples, &buf);
      return chunk.write(buf) && note();
    };
    raw.end_run = [&] {
      buf.clear();
      server::wire::scan_blocks_run_end(&buf);
      return chunk.write(buf) && note();
    };
    const auto s0 = Clock::now();
    buf.clear();
    server::wire::scan_blocks_begin(ids.size(), &buf);
    bool ok = chunk.write(buf);
    if (ok) ok = warm_st.scan_encoded(ids, range, raw);
    if (ok) {
      buf.clear();
      server::wire::scan_blocks_end({}, &buf);
      ok = chunk.write(buf) && chunk.finish();
    }
    stream_s = seconds_since(s0);
    benchmark::DoNotOptimize(ok);
  }
  const bool gate_stream_flat = stream_peak_staged <= stream_chunk;
  std::printf("zero-copy scan-to-wire: %.2f MB in %llu frames (%.1f ms, "
              "%llu raw blocks, %llu loose samples)\n",
              static_cast<double>(stream_bytes) / 1e6,
              static_cast<unsigned long long>(stream_frames),
              1e3 * stream_s,
              static_cast<unsigned long long>(stream_raw_blocks),
              static_cast<unsigned long long>(stream_loose));
  std::printf("stream peak staged: %zu bytes vs %u chunk -- %s (flat in "
              "archive size)\n\n",
              stream_peak_staged, stream_chunk,
              gate_stream_flat ? "MET" : "NOT MET");

  // Compaction throughput: re-feed into fragment-sized segments, then one
  // merge pass folds them into per-day outputs — decode + re-sort +
  // re-encode + fsync'd journal protocol, the background cost the store
  // pays to keep read fan-out bounded.
  const std::string cdir = bench_store_dir("compact_pass");
  fs::remove_all(cdir);
  std::size_t compact_segs_before = 0;
  store::CompactionReport creport;
  double compact_s = 0.0;
  {
    store::StoreOptions copts_store = options;
    copts_store.segment_events = 1 << 14;  // deliberate fragmentation
    {
      auto cst = store::Store::open(cdir, copts_store);
      for (const auto& b : batches) cst.append(b);
      cst.flush();
    }
    auto cst = store::Store::open(cdir, copts_store);
    compact_segs_before = cst.sealed_segments();
    store::CompactionOptions copts;
    copts.small_segment_events = std::uint64_t{1} << 20;
    const auto c0 = Clock::now();
    creport = cst.compact(copts);
    compact_s = seconds_since(c0);
    std::printf("compaction: %zu -> %zu segments, %llu events merged in "
                "%.1f ms (%s)\n\n",
                compact_segs_before, cst.sealed_segments(),
                static_cast<unsigned long long>(creport.events_in),
                1e3 * compact_s,
                util::fmt_si(static_cast<double>(creport.events_in) /
                                 compact_s,
                             "events/s", 2)
                    .c_str());
  }
  fs::remove_all(cdir);

  bench::JsonObject json;
  json.add("bench", std::string("store"))
      .add("events_written", total)
      .add("write_eps", rate)
      .add("write_target_eps", target)
      .add("gate_write", rate >= target)
      .add("scan_serial_ms", 1e3 * serial_s)
      .add("scan_two_thread_ms", 1e3 * two_thread_s)
      .add("scan_parallel_speedup", scan_speedup)
      .add("gate_scan_parallel", gate_scan_parallel)
      .add("cold_tier_ms", 1e3 * cold_tier_s)
      .add("warm_tier_ms", 1e3 * warm_tier_s)
      .add("warm_tier_speedup", warm_speedup)
      .add("warm_blocks", warm_stats.warm_blocks)
      .add("cold_blocks", warm_stats.cold_blocks)
      .add("gate_warm_tier", gate_warm_tier)
      .add("stream_bytes", stream_bytes)
      .add("stream_frames", stream_frames)
      .add("stream_raw_blocks", stream_raw_blocks)
      .add("stream_peak_staged", static_cast<std::uint64_t>(stream_peak_staged))
      .add("stream_chunk_bytes", static_cast<std::uint64_t>(stream_chunk))
      .add("gate_stream_flat", gate_stream_flat)
      .add("compact_segments_before", static_cast<std::uint64_t>(compact_segs_before))
      .add("compact_merged_inputs", static_cast<std::uint64_t>(creport.merged_inputs))
      .add("compact_events", creport.events_in)
      .add("compact_eps", static_cast<double>(creport.events_in) / compact_s)
      .add("cache_cold_ms", 1e3 * cold_s)
      .add("cache_warm_ms", 1e3 * warm_s)
      .add("cache_speedup", cache_speedup)
      .add("cache_hits", cache_counters.hits)
      .add("cache_misses", cache_counters.misses)
      .add("gate_cache_5x", cache_speedup >= 5.0);
  json.write("BENCH_store.json");
  fs::remove_all(dir);
}

void BM_segment_seal(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const auto batches = synth_feed(100, static_cast<util::TimeSec>(events) / 100);
  const std::string dir = bench_store_dir("seal");
  fs::create_directories(dir);
  std::size_t n = 0;
  for (auto _ : state) {
    const std::string path = dir + "/seg" + std::to_string(n++) + ".seg";
    store::SegmentWriter writer(path, 0);
    for (const auto& b : batches) writer.add(b);
    const auto meta = writer.seal();
    benchmark::DoNotOptimize(meta.bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
  fs::remove_all(dir);
}
BENCHMARK(BM_segment_seal)->Arg(100'000)->Arg(400'000);

void BM_store_query_one_metric(benchmark::State& state) {
  const std::string dir = bench_store_dir("query");
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 16;
  auto st = store::Store::open(dir, options);
  for (const auto& b : synth_feed(200, 1'800)) st.append(b);
  st.flush();
  telemetry::MetricId id = 0;
  for (auto _ : state) {
    const auto samples = st.query(id, {600, 1'200});
    benchmark::DoNotOptimize(samples.size());
    id = (id + 1) % 200;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  fs::remove_all(dir);
}
BENCHMARK(BM_store_query_one_metric);

// The same one-metric range scan driven through the fault-injection Vfs
// with an empty schedule: the price of the filesystem seam itself (the
// production store pays only the virtual-call indirection of RealVfs;
// this is the ceiling the test harness pays).
void BM_store_query_through_faultvfs(benchmark::State& state) {
  const std::string dir = bench_store_dir("query_seam");
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 16;
  faultfs::FaultVfs vfs(util::Vfs::real());
  options.vfs = &vfs;
  auto st = store::Store::open(dir, options);
  for (const auto& b : synth_feed(200, 1'800)) st.append(b);
  st.flush();
  telemetry::MetricId id = 0;
  for (auto _ : state) {
    const auto samples = st.query(id, {600, 1'200});
    benchmark::DoNotOptimize(samples.size());
    id = (id + 1) % 200;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  fs::remove_all(dir);
}
BENCHMARK(BM_store_query_through_faultvfs);

// Worst-case degraded scan: every block read comes back corrupted, so the
// query walks the whole block directory, fails each CRC, and returns an
// empty flagged result. Bounds the cost of answering "the disk is dying"
// — it must stay cheap enough to serve during an incident.
void BM_store_query_degraded(benchmark::State& state) {
  const std::string dir = bench_store_dir("query_degraded");
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 16;
  faultfs::FaultVfs vfs(util::Vfs::real());
  options.vfs = &vfs;
  auto st = store::Store::open(dir, options);
  for (const auto& b : synth_feed(200, 1'800)) st.append(b);
  st.flush();
  vfs.set_plan(faultfs::FaultPlan().flip_bits_on_reads_from(0, 1));
  telemetry::MetricId id = 0;
  for (auto _ : state) {
    store::QueryStats stats;
    const auto samples = st.query(id, {600, 1'200}, &stats);
    benchmark::DoNotOptimize(stats.lost_blocks);
    benchmark::DoNotOptimize(samples.size());
    id = (id + 1) % 200;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  fs::remove_all(dir);
}
BENCHMARK(BM_store_query_degraded);

void BM_store_reopen(benchmark::State& state) {
  const std::string dir = bench_store_dir("reopen");
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 15;
  {
    auto st = store::Store::open(dir, options);
    for (const auto& b : synth_feed(400, 600)) st.append(b);
    st.flush();
  }
  for (auto _ : state) {
    auto st = store::Store::open(dir, options);
    benchmark::DoNotOptimize(st.sealed_segments());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  fs::remove_all(dir);
}
BENCHMARK(BM_store_reopen);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
