// F11 — Superimposed time-series snapshots of summer rising edges per
// MW amplitude class (paper Fig. 11): cluster power and PUE aligned at
// the edge with 95% CI. Shape targets: PUE is noticeably symmetric and
// inversely proportional to power; the best (lowest) PUE accompanies the
// largest swings; large-amplitude edges are rare (a handful of 7 MW
// events all summer) while small ones are common.

#include "bench_common.hpp"
#include "core/snapshots.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

core::SnapshotOptions snapshot_options() {
  core::SnapshotOptions opts;
  // Cluster-level snapshot detection: a 10 s step of >= ~0.46 MW at full
  // scale starts an edge; merged multi-step edges are binned by their
  // total amplitude (the paper's 1 MW classes).
  opts.edges.per_node_threshold_w = 100.0;
  return opts;
}

void print_artifact() {
  bench::print_header(
      "F11  Summer rising-edge snapshots by MW class (Figure 11)",
      "PUE inversely mirrors power around edges; optimal PUE at the "
      "largest (7 MW) swings; snapshot counts fall with amplitude");

  core::SimulationConfig config = bench::standard_config(
      machine::SummitSpec::kNodes, 10 * util::kWeek, 205 * util::kDay);
  core::Simulation sim(config);
  const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 10, .subsamples = 1});
  const ts::Frame cep = sim.cep_frame(cluster);
  const ts::Series& power = cluster.at("input_power_w");

  const auto sets = core::collect_edge_sets(
      power, static_cast<double>(config.scale.nodes), /*rising=*/true,
      snapshot_options());

  util::TextTable t({"MW class", "snapshots", "power -60s (MW)",
                     "power +60s (MW)", "PUE -60s", "PUE +60s", "PUE +180s"});
  util::CsvWriter csv("f11_edge_snapshots.csv",
                      {"mw_class", "offset_s", "power_mean_mw", "power_lo_mw",
                       "power_hi_mw", "pue_mean"});
  double pue_small = 0.0;
  double pue_large = 0.0;
  int largest_class = 0;
  for (const auto& set : sets) {
    const auto bp = core::superimpose_column(power, set, snapshot_options());
    const auto bq =
        core::superimpose_column(cep.at("pue"), set, snapshot_options());
    // Offsets: window is [-60 s, +240 s] at 10 s -> index 6 is the edge.
    const std::size_t e = 6;
    t.add_row({std::to_string(set.amplitude_mw) + " MW",
               std::to_string(set.at.size()),
               util::fmt_double(bp.mean[e - 6] / 1e6, 2),
               util::fmt_double(bp.mean[e + 6] / 1e6, 2),
               util::fmt_double(bq.mean[e - 6], 3),
               util::fmt_double(bq.mean[e + 6], 3),
               util::fmt_double(bq.mean[e + 18], 3)});
    for (std::size_t i = 0; i < bp.mean.size(); ++i) {
      csv.add_row({static_cast<double>(set.amplitude_mw),
                   static_cast<double>(static_cast<int>(i * 10) - 60),
                   bp.mean[i] / 1e6, bp.lo[i] / 1e6, bp.hi[i] / 1e6,
                   bq.mean[i]});
    }
    if (set.amplitude_mw == 1) pue_small = bq.mean[e + 18];
    if (set.amplitude_mw >= largest_class) {
      largest_class = set.amplitude_mw;
      pue_large = bq.mean[e + 18];
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("[shape] post-edge PUE at 1 MW class: %.3f vs at %d MW class: "
              "%.3f (paper: best PUE at the largest swings)\n\n",
              pue_small, largest_class, pue_large);
}

void BM_collect_edges_summer_week(benchmark::State& state) {
  static core::SimulationConfig config = bench::standard_config(
      machine::SummitSpec::kNodes, util::kWeek, 205 * util::kDay);
  static core::Simulation sim(config);
  static const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 10, .subsamples = 1});
  for (auto _ : state) {
    auto sets = core::collect_edge_sets(
        cluster.at("input_power_w"),
        static_cast<double>(config.scale.nodes), true, snapshot_options());
    benchmark::DoNotOptimize(sets.size());
  }
}
BENCHMARK(BM_collect_edges_summer_week);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
