// S5 — What-if scenario service (src/scenario, DESIGN.md §12): a sweep
// must re-feed stored telemetry through the counterfactual replay at
// least as fast as the machine produces it — 462,600 events/s of
// replayed volume summed across variant legs — or a 64-variant planning
// sweep stops being an interactive operator tool. The artifact lands a
// node-structured input-power feed in a real store, fetches the runs
// once (exactly what the service executor does), fans a cap/outage
// sweep across worker threads, and gates on the sustained replayed-event
// rate; then google-benchmark timings of the kernels underneath.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "server/wire.hpp"
#include "store/store.hpp"
#include "stream/replay.hpp"
#include "telemetry/metric.hpp"
#include "ts/series.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string bench_scenario_dir() {
  return (fs::temp_directory_path() / "exawatt_bench_scenario").string();
}

/// 1 Hz input-power feed for `nodes` nodes over `seconds` — the shape
/// the scenario replay actually consumes (other channels are ignored by
/// the roll-up, so they would only pad the store).
std::vector<std::vector<telemetry::MetricEvent>> synth_power_feed(
    int nodes, util::TimeSec seconds) {
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  util::Rng rng(2026);
  std::vector<std::int32_t> walk(static_cast<std::size_t>(nodes));
  for (auto& v : walk) {
    v = static_cast<std::int32_t>(1500 + rng.uniform_index(2000));
  }
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  batches.reserve(static_cast<std::size_t>(seconds));
  for (util::TimeSec t = 0; t < seconds; ++t) {
    std::vector<telemetry::MetricEvent> batch;
    batch.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      auto& v = walk[static_cast<std::size_t>(n)];
      v += static_cast<std::int32_t>(rng.uniform_index(21)) - 10;
      batch.push_back({telemetry::metric_id(n, channel), t, v});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void print_artifact() {
  bench::print_header(
      "S5  What-if scenario service (src/scenario)",
      "A counterfactual sweep must replay stored telemetry at >= 462,600 "
      "events/s summed across its variant legs — the machine's own "
      "production rate");

  const int nodes = 512;
  const util::TimeSec span = bench::full_scale_requested() ? 900 : 300;
  const double target = 462'600.0;

  const std::string dir = bench_scenario_dir();
  fs::remove_all(dir);
  {
    store::StoreOptions options;
    options.segment_events = 1 << 18;
    store::Store store = store::Store::open(dir, options);
    for (const auto& batch : synth_power_feed(nodes, span)) {
      store.append(batch);
    }
    store.flush();
  }
  store::Store store = store::Store::open(dir);

  // Fetch once, replay many — exactly the shape of the service executor
  // (one query_many, then every variant leg re-feeds the same runs).
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<telemetry::MetricId> ids;
  std::vector<machine::NodeId> node_ids;
  for (int n = 0; n < nodes; ++n) {
    ids.push_back(telemetry::metric_id(n, channel));
    node_ids.push_back(n);
  }
  const auto runs = store.query_many(ids, {0, span});

  stream::EngineOptions base;
  base.range = {0, span};
  base.window = 10;
  base.rollup.edge_node_count = static_cast<double>(nodes);

  // The sweep: half the wire-protocol maximum, a spread of caps plus the
  // forced-chiller outage — the mix an operator's planning sweep carries.
  std::vector<scenario::ScenarioSpec> variants;
  for (int v = 0; v < 32; ++v) {
    scenario::ScenarioSpec spec;
    if (v % 8 == 7) {
      spec.name = "outage-" + std::to_string(v);
      spec.force_chillers = true;
    } else {
      spec.name = "cap-" + std::to_string(v);
      spec.power_cap_w = (0.5 + 0.02 * v) * 2500.0 * nodes;
    }
    variants.push_back(std::move(spec));
  }

  scenario::SweepOptions sweep;
  const unsigned hw = std::thread::hardware_concurrency();
  sweep.threads = std::min<std::size_t>(variants.size(), hw > 0 ? hw : 2);

  const auto t0 = Clock::now();
  const auto results = scenario::run_sweep(runs, base, variants, sweep);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::uint64_t fed = 0;
  std::uint64_t run_events = 0;
  for (const auto& run : runs) run_events += run.samples.size();
  for (const auto& r : results) fed += r.events;
  fed += run_events;  // the shared baseline leg replays the runs too
  const double rate = static_cast<double>(fed) / elapsed;

  std::printf("%zu variants x %lld s of %d-node feed on %zu workers: "
              "%llu events re-fed in %.2f s, %s\n",
              variants.size(), static_cast<long long>(span), nodes,
              sweep.threads, static_cast<unsigned long long>(fed), elapsed,
              util::fmt_si(rate, "events/s", 2).c_str());
  std::printf("scenario sweep read: %s (%.2fx the 462,600 events/s feed)\n\n",
              rate >= target ? "MET" : "NOT MET", rate / target);

  bench::JsonObject json;
  json.add("variants", static_cast<std::uint64_t>(variants.size()));
  json.add("nodes", static_cast<std::uint64_t>(nodes));
  json.add("span_seconds", static_cast<std::uint64_t>(span));
  json.add("workers", static_cast<std::uint64_t>(sweep.threads));
  json.add("events_replayed", fed);
  json.add("sweep_seconds", elapsed);
  json.add("events_per_second", rate);
  json.add("target_events_per_second", target);
  json.add("scenario_sweep_met", rate >= target);
  json.write("BENCH_scenario.json");

  fs::remove_all(dir);
}

// --- google-benchmark timings of the kernels underneath ------------------

std::vector<store::MetricRun> micro_runs(int nodes, util::TimeSec span) {
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<store::MetricRun> runs;
  util::Rng rng(3);
  for (int n = 0; n < nodes; ++n) {
    store::MetricRun run;
    run.id = telemetry::metric_id(n, channel);
    for (util::TimeSec t = 0; t < span; ++t) {
      run.samples.push_back(
          {t, 2000.0 + static_cast<double>(rng.uniform_index(500))});
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

/// Replay cost of the identity scenario — the no-hook fast path every
/// baseline leg takes.
void BM_scenario_identity_replay(benchmark::State& state) {
  const auto runs = micro_runs(32, 300);
  stream::EngineOptions base;
  base.range = {0, 300};
  base.rollup.edge_node_count = 32.0;
  scenario::ScenarioSpec identity;
  for (auto _ : state) {
    const auto r = scenario::run_scenario_runs(runs, base, identity);
    benchmark::DoNotOptimize(r.windows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * 300 * 2);
}
BENCHMARK(BM_scenario_identity_replay);

/// The same replay with a binding cap installed — what the per-window
/// intervention hooks cost on top of the identity path.
void BM_scenario_capped_replay(benchmark::State& state) {
  const auto runs = micro_runs(32, 300);
  stream::EngineOptions base;
  base.range = {0, 300};
  base.rollup.edge_node_count = 32.0;
  scenario::ScenarioSpec cap;
  cap.name = "cap";
  cap.power_cap_w = 32 * 1800.0;
  for (auto _ : state) {
    const auto r = scenario::run_scenario_runs(runs, base, cap);
    benchmark::DoNotOptimize(r.windows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * 300 * 2);
}
BENCHMARK(BM_scenario_capped_replay);

/// Wire cost of a full 64-variant sweep request (the largest legal
/// scenario frame a client can send).
void BM_sweep_request_codec(benchmark::State& state) {
  server::wire::Request req;
  req.method = server::wire::Method::kScenarioSweep;
  for (int n = 0; n < 512; ++n) req.nodes.push_back(n);
  req.range = {0, 86'400};
  for (std::size_t v = 0; v < server::wire::kMaxSweepVariants; ++v) {
    scenario::ScenarioSpec spec;
    spec.name = "variant-" + std::to_string(v);
    spec.power_cap_w = 1e7 + static_cast<double>(v) * 1e5;
    spec.has_cooling = true;
    req.scenarios.push_back(std::move(spec));
  }
  for (auto _ : state) {
    const auto decoded =
        server::wire::decode_request(server::wire::encode_request(req));
    benchmark::DoNotOptimize(decoded.scenarios.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(server::wire::kMaxSweepVariants));
}
BENCHMARK(BM_sweep_request_codec);

/// Aggregation cost of one variant's series into its wire summary.
void BM_summarize(benchmark::State& state) {
  scenario::ScenarioResult r;
  const auto n = static_cast<std::size_t>(state.range(0));
  r.power = ts::Series(0, 10, std::vector<double>(n, 1.1e7));
  r.pue = ts::Series(0, 10, std::vector<double>(n, 1.12));
  r.baseline_power = ts::Series(0, 10, std::vector<double>(n, 1.3e7));
  r.baseline_pue = ts::Series(0, 10, std::vector<double>(n, 1.1));
  for (auto _ : state) {
    const auto s = scenario::summarize(r, "bench", 10);
    benchmark::DoNotOptimize(s.energy_j);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_summarize)->Arg(8640);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
