// AB4 — Ablation: in-band vs out-of-band telemetry collection (paper §2:
// "no impact occurs on HPC applications due to the method's out-of-band
// nature"). The counterfactual: an in-band daemon sampling the same 100
// metrics at 1 Hz steals compute time, and for bulk-synchronous codes the
// per-node noise is amplified with scale. This bench quantifies the
// application slowdown and the year's lost node-hours the out-of-band
// path avoids.

#include "bench_common.hpp"
#include "telemetry/inband.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "AB4  In-band vs out-of-band collection (paper Section 2)",
      "out-of-band: zero application impact; in-band sampling costs grow "
      "with rate and are amplified at scale for synchronous codes");

  util::TextTable t({"sampling", "1-node job", "64-node job",
                     "4608-node job", "lost node-hours/yr (full scale)"});
  util::CsvWriter csv("ab_inband.csv",
                      {"sample_hz", "slowdown_4608", "lost_node_hours"});
  const int metrics = 100;
  for (double hz : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    const double s1 = telemetry::inband_slowdown(hz, metrics, 1);
    const double s64 = telemetry::inband_slowdown(hz, metrics, 64);
    const double s4608 = telemetry::inband_slowdown(hz, metrics, 4608);
    const double lost = telemetry::inband_lost_node_hours_per_year(
        hz, metrics, machine::SummitSpec::kNodes, 0.85, 64.0);
    t.add_row({hz == 0.0 ? "out-of-band (any rate)"
                         : util::fmt_double(hz, 1) + " Hz in-band",
               util::fmt_double(100.0 * s1, 3) + "%",
               util::fmt_double(100.0 * s64, 3) + "%",
               util::fmt_double(100.0 * s4608, 3) + "%",
               util::fmt_double(lost, 0)});
    csv.add_row({hz, s4608, lost});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "[shape] the paper's 1 Hz x 100 metrics regime costs ~1-3%% of a "
      "leadership job in-band — half a million node-hours a year at "
      "Summit's scale — and exactly zero out-of-band.\n\n");
}

void BM_slowdown_model(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (int n = 1; n <= 4608; n *= 2) {
      acc += telemetry::inband_slowdown(1.0, 100, n);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_slowdown_model);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
