// F4 — Power meter vs per-node sensor summation at scale (paper Fig. 4).
// The paper compared the sum of per-node 10-second mean input power under
// each main switchboard with the switchboard's own meter: summation ran
// ~11% above the meters (mean meter - summation ≈ -129 kW), with per-MSB
// constant offsets, tight spread, and in-phase oscillation.

#include "bench_common.hpp"
#include "core/msb_validation.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

core::SimulationConfig config() {
  const int nodes =
      bench::full_scale_requested() ? machine::SummitSpec::kNodes : 2313;
  return bench::standard_config(nodes, 3 * util::kDay);
}

void print_artifact() {
  bench::print_header(
      "F4  MSB meter vs per-node summation (Figure 4)",
      "mean diff (meter - summation) -128.83 kW; ~11% offset; in-phase, "
      "tight per-MSB distributions");

  core::Simulation sim(config());
  const machine::Topology topo(sim.scale());
  const facility::MsbModel msb(topo, 4);
  // One day of 10 s windows, skipping the first day (scheduler warm-up).
  const util::TimeRange window = {util::kDay, 2 * util::kDay};
  const auto result =
      core::validate_msbs(sim.jobs(), topo, msb, window, 10);

  util::TextTable t({"MSB", "mean diff", "std diff", "relative", "phase r"});
  for (const auto& cmp : result.per_msb) {
    t.add_row({std::string(1, static_cast<char>('A' + cmp.msb)),
               util::fmt_si(cmp.mean_diff_w, "W", 2),
               util::fmt_si(cmp.std_diff_w, "W", 2),
               util::fmt_double(100.0 * cmp.relative_diff, 1) + "%",
               util::fmt_double(cmp.phase_correlation, 4)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("overall mean diff (meter - summation): %s  (~%.1f%%)\n",
              util::fmt_si(result.overall_mean_diff_w, "W", 2).c_str(),
              100.0 * result.overall_relative);
  std::printf("[shape] diff is negative (sensors over-read), per-MSB means "
              "differ, phase r ~ 1.0\n\n");

  util::CsvWriter csv("f4_msb_validation.csv",
                      {"msb", "t", "meter_w", "summation_w"});
  for (const auto& cmp : result.per_msb) {
    for (std::size_t i = 0; i < cmp.meter_w.size(); i += 30) {
      csv.add_row({static_cast<double>(cmp.msb),
                   static_cast<double>(cmp.meter_w.time_at(i)),
                   cmp.meter_w[i], cmp.summation_w[i]});
    }
  }
}

void BM_validate_day(benchmark::State& state) {
  static core::Simulation sim(bench::standard_config(512, 2 * util::kDay));
  static const machine::Topology topo(sim.scale());
  static const facility::MsbModel msb(topo, 4);
  for (auto _ : state) {
    auto result = core::validate_msbs(sim.jobs(), topo, msb,
                                      {util::kDay, 2 * util::kDay}, 10);
    benchmark::DoNotOptimize(result.overall_mean_diff_w);
  }
}
BENCHMARK(BM_validate_day);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
