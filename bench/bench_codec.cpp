// S3 — Telemetry codec fast path (src/telemetry/codec, src/util/varint,
// DESIGN.md): the lossless delta+zigzag+varint+RLE block codec that
// squeezes the paper's 462,600 events/s out-of-band feed into ~1 MB/s.
// Two tiers share the wire format: the byte-at-a-time scalar reference
// and the bulk pointer-based kernels the hot paths use. This bench pins
// the fast path's win over the reference (the acceptance gate is decode
// >= 2x scalar), reports the fused decode-filter / decode-aggregate
// kernels that skip event materialization entirely, and writes the
// headline numbers to BENCH_codec.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/codec.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;
namespace tm = exawatt::telemetry;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A BMC-shaped batch: `metrics` channels at 1 Hz for `seconds`, values a
/// small random walk — the smooth-telemetry case the codec is built for,
/// already (metric, time)-sorted like aggregator output.
std::vector<tm::MetricEvent> synth_batch(std::uint32_t metrics,
                                         util::TimeSec seconds) {
  util::Rng rng(2020);
  std::vector<tm::MetricEvent> events;
  events.reserve(static_cast<std::size_t>(metrics) *
                 static_cast<std::size_t>(seconds));
  for (std::uint32_t m = 0; m < metrics; ++m) {
    std::int32_t walk = static_cast<std::int32_t>(500 + rng.uniform_index(1500));
    for (util::TimeSec t = 0; t < seconds; ++t) {
      walk += static_cast<std::int32_t>(rng.uniform_index(7)) - 3;
      events.push_back({m, t, walk});
    }
  }
  return events;
}

/// Best-of-N wall time of `fn` (which must consume its own result).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

void print_artifact() {
  bench::print_header(
      "S3  Codec fast path (src/telemetry/codec)",
      "several lossless compression methods throughout the pipeline "
      "reduce 460k metrics/s to ~1 MB/s; decode speed bounds every "
      "query, replay and roll-up over the stored feed");

  const std::uint32_t metrics = bench::full_scale_requested() ? 400u : 100u;
  const util::TimeSec span = 3'600;
  const auto events = synth_batch(metrics, span);
  const double n = static_cast<double>(events.size());
  const auto block = tm::encode_events(events);
  const double mb = static_cast<double>(block.bytes.size()) / 1e6;
  std::printf("batch: %zu events -> %.2f MB encoded (%.1fx compression)\n\n",
              events.size(), mb, block.compression_ratio());

  // Encode: scalar reference vs bulk writer, same input, identical bytes.
  const double enc_scalar_s = best_of(5, [&] {
    auto copy = events;
    benchmark::DoNotOptimize(tm::encode_events_scalar(std::move(copy)));
  });
  const double enc_bulk_s = best_of(5, [&] {
    benchmark::DoNotOptimize(tm::encode_events_sorted(events));
  });

  // Decode: scalar reference vs bulk, vs columnar scratch reuse, vs the
  // fused kernels that never materialize events at all.
  const double dec_scalar_s =
      best_of(5, [&] { benchmark::DoNotOptimize(tm::decode_events_scalar(block)); });
  const double dec_bulk_s =
      best_of(5, [&] { benchmark::DoNotOptimize(tm::decode_events(block)); });
  tm::DecodeScratch scratch;
  const double dec_into_s = best_of(5, [&] {
    tm::decode_events_into(block, scratch);
    benchmark::DoNotOptimize(scratch.size());
  });
  const util::TimeRange range{0, span};
  std::vector<ts::Sample> samples;
  const double dec_filter_s = best_of(5, [&] {
    samples.clear();
    benchmark::DoNotOptimize(
        tm::decode_filter_into(block, metrics / 2, range, samples));
  });
  const std::size_t windows = static_cast<std::size_t>(span) / 60;
  std::vector<double> sums(windows);
  std::vector<std::uint64_t> counts(windows);
  const double dec_sum_s = best_of(5, [&] {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    benchmark::DoNotOptimize(
        tm::decode_sum_into(block, metrics / 2, range, 60, sums, counts));
  });

  util::TextTable t({"kernel", "time", "events/s", "vs scalar"});
  const auto row = [&](const char* name, double s, double ref_s) {
    t.add_row({name, util::fmt_double(1e3 * s, 2) + " ms",
               util::fmt_si(n / s, "events/s", 2),
               util::fmt_double(ref_s / s, 2) + "x"});
  };
  row("encode scalar (reference)", enc_scalar_s, enc_scalar_s);
  row("encode bulk", enc_bulk_s, enc_scalar_s);
  row("decode scalar (reference)", dec_scalar_s, dec_scalar_s);
  row("decode bulk", dec_bulk_s, dec_scalar_s);
  row("decode into scratch", dec_into_s, dec_scalar_s);
  row("fused decode-filter", dec_filter_s, dec_scalar_s);
  row("fused decode-sum", dec_sum_s, dec_scalar_s);
  std::printf("%s\n", t.str().c_str());

  // The gate measures the decode tier the store actually runs — the
  // columnar DecodeScratch fill behind every cache load and scan — against
  // the retained scalar reference decoding the same block in full.
  const double decode_speedup = dec_scalar_s / dec_into_s;
  std::printf("decode fast path: %.2fx vs scalar -- %s (target >= 2x)\n",
              decode_speedup, decode_speedup >= 2.0 ? "MET" : "NOT MET");
  std::printf("decode throughput: %s, fused sum: %s\n\n",
              util::fmt_si(n / dec_into_s, "events/s", 2).c_str(),
              util::fmt_si(n / dec_sum_s, "events/s", 2).c_str());

  bench::JsonObject json;
  json.add("bench", std::string("codec"))
      .add("events", static_cast<std::uint64_t>(events.size()))
      .add("encoded_mb", mb)
      .add("compression_ratio", block.compression_ratio())
      .add("encode_scalar_eps", n / enc_scalar_s)
      .add("encode_bulk_eps", n / enc_bulk_s)
      .add("encode_speedup", enc_scalar_s / enc_bulk_s)
      .add("decode_scalar_eps", n / dec_scalar_s)
      .add("decode_bulk_eps", n / dec_bulk_s)
      .add("decode_into_eps", n / dec_into_s)
      .add("decode_speedup", decode_speedup)
      .add("decode_filter_eps", n / dec_filter_s)
      .add("decode_sum_eps", n / dec_sum_s)
      .add("gate_decode_2x", decode_speedup >= 2.0);
  json.write("BENCH_codec.json");
}

void BM_encode_bulk(benchmark::State& state) {
  const auto events =
      synth_batch(100, static_cast<util::TimeSec>(state.range(0)) / 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm::encode_events_sorted(events));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_encode_bulk)->Arg(100'000)->Arg(400'000);

void BM_encode_scalar(benchmark::State& state) {
  const auto events =
      synth_batch(100, static_cast<util::TimeSec>(state.range(0)) / 100);
  for (auto _ : state) {
    auto copy = events;
    benchmark::DoNotOptimize(tm::encode_events_scalar(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_encode_scalar)->Arg(100'000);

void BM_decode_bulk(benchmark::State& state) {
  const auto block = tm::encode_events(
      synth_batch(100, static_cast<util::TimeSec>(state.range(0)) / 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm::decode_events(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.events));
}
BENCHMARK(BM_decode_bulk)->Arg(100'000)->Arg(400'000);

void BM_decode_scalar(benchmark::State& state) {
  const auto block = tm::encode_events(
      synth_batch(100, static_cast<util::TimeSec>(state.range(0)) / 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm::decode_events_scalar(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.events));
}
BENCHMARK(BM_decode_scalar)->Arg(100'000);

void BM_decode_into_scratch(benchmark::State& state) {
  const auto block = tm::encode_events(synth_batch(100, 1'000));
  tm::DecodeScratch scratch;
  for (auto _ : state) {
    tm::decode_events_into(block, scratch);
    benchmark::DoNotOptimize(scratch.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.events));
}
BENCHMARK(BM_decode_into_scratch);

void BM_decode_sum_fused(benchmark::State& state) {
  const auto block = tm::encode_events(synth_batch(100, 1'000));
  std::vector<double> sums(100);
  std::vector<std::uint64_t> counts(100);
  for (auto _ : state) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    benchmark::DoNotOptimize(
        tm::decode_sum_into(block, 50, {0, 1'000}, 10, sums, counts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.events));
}
BENCHMARK(BM_decode_sum_fused);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
