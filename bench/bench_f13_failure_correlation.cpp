// F13 — GPU failure co-occurrence (paper Fig. 13): Pearson correlation of
// the per-node failure-count vectors for every pair of XID types, with
// significance at alpha=0.05 after Bonferroni correction. Shape targets:
// an extremely strong microcontroller-warning <-> driver-error-handling
// pair; a correlated block among double-bit errors, preemptive cleanups
// and page-retirement events; most pairs insignificant.

#include "bench_common.hpp"
#include "core/failure_analysis.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F13  Failure co-occurrence correlation (Figure 13)",
      "uC-warning <-> driver-error r ~ 0.9+; DBE/cleanup/retirement block; "
      "Bonferroni-corrected alpha 0.05");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  const auto corr =
      core::failure_correlation(sim.failure_log(), config.scale.nodes);

  std::printf("pairs significant after Bonferroni: %zu (adjusted alpha "
              "%.2e)\n\n",
              corr.matrix.significant_pairs(), corr.matrix.adjusted_alpha());

  util::TextTable t({"pair", "r", "significant"});
  util::CsvWriter csv("f13_failure_correlation.csv",
                      {"type_i", "type_j", "r", "p", "significant"});
  const std::size_t k = corr.matrix.variables();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const auto& cell = corr.matrix.at(i, j);
      csv.add_row({static_cast<double>(i), static_cast<double>(j), cell.r,
                   cell.p, cell.significant ? 1.0 : 0.0});
      if (!cell.significant || cell.r < 0.05) continue;
      t.add_row({std::string(failures::xid_name(
                     static_cast<failures::XidType>(i))) +
                     " <-> " +
                     failures::xid_name(static_cast<failures::XidType>(j)),
                 util::fmt_double(cell.r, 2), "yes"});
    }
  }
  std::printf("%s\n", t.str().c_str());

  const auto uc =
      static_cast<std::size_t>(failures::XidType::kMicrocontrollerWarning);
  const auto drv =
      static_cast<std::size_t>(failures::XidType::kDriverErrorHandling);
  std::printf("[shape] headline pair r = %.2f (paper: ~0.95, strongest "
              "off-diagonal)\n\n",
              corr.matrix.at(uc, drv).r);
}

void BM_correlation_matrix(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 8 * util::kWeek);
  static core::Simulation sim(config);
  static const auto& log = sim.failure_log();
  for (auto _ : state) {
    auto corr = core::failure_correlation(log, config.scale.nodes);
    benchmark::DoNotOptimize(corr.matrix.significant_pairs());
  }
}
BENCHMARK(BM_correlation_matrix);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
