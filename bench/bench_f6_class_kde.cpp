// F6 — Joint distribution of total job energy vs max input power per
// scheduling class (paper Fig. 6): Gaussian-KDE contours in log-log
// space. Shape targets: max input power separates the classes almost
// cleanly; energy overlaps broadly; small classes (3-5) are multi-modal
// while the leadership classes concentrate into few peaks.

#include <cmath>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "core/job_features.hpp"
#include "stats/kde.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

std::vector<power::JobPowerSummary> population() {
  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 13 * util::kWeek);
  static core::Simulation sim(config);
  return core::summarize_jobs(sim.jobs());
}

void print_artifact() {
  bench::print_header(
      "F6  Energy vs max power KDE per class (Figure 6)",
      "max power strongly correlated with class (minimal overlap); energy "
      "overlaps across classes; small classes multi-modal");

  const auto all = population();
  std::printf("population: %zu scheduled jobs (13-week window, full scale)\n\n",
              all.size());

  util::TextTable t({"class", "jobs", "maxP p5 (MW)", "maxP p95 (MW)",
                     "energy p5 (J)", "energy p95 (J)", "KDE modes"});
  util::CsvWriter csv("f6_class_kde.csv",
                      {"class", "log10_energy", "log10_maxp", "density"});
  std::vector<std::pair<double, double>> class_power_bands;
  for (int cls = 1; cls <= 5; ++cls) {
    const auto jobs = core::by_class(all, cls);
    if (jobs.size() < 20) continue;
    // Log-space samples (subsampled: KDE is O(n * grid)).
    std::vector<double> le;
    std::vector<double> lp;
    const std::size_t stride = std::max<std::size_t>(1, jobs.size() / 3000);
    for (std::size_t i = 0; i < jobs.size(); i += stride) {
      le.push_back(std::log10(std::max(jobs[i].energy_j, 1.0)));
      lp.push_back(std::log10(std::max(jobs[i].max_power_w, 1.0)));
    }
    const stats::Kde2 kde(le, lp);
    const auto grid = kde.grid(
        stats::min_value(le) - 0.2, stats::max_value(le) + 0.2, 48,
        stats::min_value(lp) - 0.2, stats::max_value(lp) + 0.2, 48);
    const std::size_t modes = stats::Kde2::count_modes(grid, 0.10);

    const auto maxp = core::feature(jobs, core::JobFeature::kMaxPowerW);
    const auto energy = core::feature(jobs, core::JobFeature::kEnergyJ);
    const double p5 = stats::quantile(maxp, 0.05);
    const double p95 = stats::quantile(maxp, 0.95);
    class_power_bands.emplace_back(p5, p95);
    t.add_row({std::to_string(cls), std::to_string(jobs.size()),
               util::fmt_double(p5 / 1e6, 3), util::fmt_double(p95 / 1e6, 3),
               util::fmt_si(stats::quantile(energy, 0.05), "J", 1),
               util::fmt_si(stats::quantile(energy, 0.95), "J", 1),
               std::to_string(modes)});
    for (std::size_t j = 0; j < grid.y.size(); j += 4) {
      for (std::size_t i = 0; i < grid.x.size(); i += 4) {
        csv.add_row({static_cast<double>(cls), grid.x[i], grid.y[j],
                     grid.at(j, i)});
      }
    }
  }
  std::printf("%s\n", t.str().c_str());

  // Shape check: classes separate strongly along the max-power axis —
  // the p5-p95 bands of adjacent classes touch only at their fringes.
  std::size_t separated = 0;
  for (std::size_t i = 0; i + 1 < class_power_bands.size(); ++i) {
    // Larger class's band center sits above the smaller class's p95.
    const double center_i =
        0.5 * (class_power_bands[i].first + class_power_bands[i].second);
    if (center_i > class_power_bands[i + 1].second) ++separated;
  }
  std::printf("[shape] adjacent class max-power band centers above the next "
              "class's p95: %zu of %zu (paper: classes separate along max "
              "power; energy overlaps)\n\n",
              separated, class_power_bands.size() - 1);
}

void BM_kde2_grid(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> xs(2000);
  std::vector<double> ys(2000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal(0.0, 1.0);
    ys[i] = rng.normal(0.0, 2.0) + xs[i];
  }
  const stats::Kde2 kde(xs, ys);
  for (auto _ : state) {
    auto grid = kde.grid(-4, 4, 48, -8, 8, 48);
    benchmark::DoNotOptimize(grid.density.data());
  }
}
BENCHMARK(BM_kde2_grid);

void BM_summarize_jobs(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kWeek);
  static core::Simulation sim(config);
  (void)sim.jobs();
  for (auto _ : state) {
    auto s = core::summarize_jobs(sim.jobs());
    benchmark::DoNotOptimize(s.data());
    state.SetItemsProcessed(static_cast<std::int64_t>(s.size()));
  }
}
BENCHMARK(BM_summarize_jobs);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
