// FP — Job power-profile fingerprinting (paper §9, future work): vector
// fingerprints of job power behaviour clustered with k-means into user/
// app "power portraits". Validation: clusters should align with the
// ground-truth application archetypes that generated the jobs, and the
// elbow of the inertia curve should sit near the archetype count.

#include "bench_common.hpp"
#include "core/fingerprint.hpp"
#include "core/job_features.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"
#include "workload/app_model.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "FP  Job power fingerprinting + clustering (paper Section 9)",
      "fingerprints cluster into app/user power portraits usable for "
      "predictive power analytics");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 4 * util::kWeek);
  core::Simulation sim(config);
  const auto summaries = core::summarize_jobs(sim.jobs());
  std::vector<core::Fingerprint> prints;
  prints.reserve(summaries.size());
  for (const auto& s : summaries) prints.push_back(core::fingerprint_of(s));
  std::printf("fingerprints: %zu jobs, %zu archetypes in catalog\n\n",
              prints.size(), workload::app_catalog().size());

  util::TextTable t({"k", "inertia", "app purity"});
  util::CsvWriter csv("fp_fingerprint.csv", {"k", "inertia", "purity"});
  for (std::size_t k : {2, 4, 8, 12, 14, 20, 28}) {
    const auto c = core::cluster_fingerprints(prints, k);
    t.add_row({std::to_string(k), util::fmt_double(c.inertia, 0),
               util::fmt_double(100.0 * c.app_purity, 1) + "%"});
    csv.add_row({static_cast<double>(k), c.inertia, c.app_purity});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("[shape] purity rises toward k ~ archetype count and "
              "saturates; inertia elbow in the same region.\n\n");
}

void BM_kmeans(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kWeek);
  static core::Simulation sim(config);
  static const auto prints = [] {
    std::vector<core::Fingerprint> p;
    for (const auto& s : core::summarize_jobs(sim.jobs())) {
      p.push_back(core::fingerprint_of(s));
    }
    return p;
  }();
  for (auto _ : state) {
    auto c = core::cluster_fingerprints(prints, 12);
    benchmark::DoNotOptimize(c.inertia);
  }
}
BENCHMARK(BM_kmeans);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
