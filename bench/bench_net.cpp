// S3 — Network query service (src/net + src/server, DESIGN.md §10): the
// serving layer must hand the out-of-band feed back to clients at least
// as fast as the machine produces it — 462,600 events/s of read volume —
// or an operator dashboard falls behind the telemetry it renders. The
// artifact stands a real TCP loopback server over a warm store, drives
// it with concurrent scan clients, and gates on the sustained decoded-
// event rate crossing the wire; then google-benchmark timings of the
// framing and wire-codec primitives underneath.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_common.hpp"
#include "net/socket.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string bench_net_dir() {
  return (fs::temp_directory_path() / "exawatt_bench_net").string();
}

/// Same BMC-shaped feed as bench_store: `metrics` channels at 1 Hz for
/// `seconds`, values a small random walk.
std::vector<std::vector<telemetry::MetricEvent>> synth_feed(
    std::uint32_t metrics, util::TimeSec seconds) {
  util::Rng rng(2020);
  std::vector<std::int32_t> walk(metrics);
  for (auto& v : walk) {
    v = static_cast<std::int32_t>(500 + rng.uniform_index(1500));
  }
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  batches.reserve(static_cast<std::size_t>(seconds));
  for (util::TimeSec t = 0; t < seconds; ++t) {
    std::vector<telemetry::MetricEvent> batch;
    batch.reserve(metrics);
    for (std::uint32_t m = 0; m < metrics; ++m) {
      walk[m] += static_cast<std::int32_t>(rng.uniform_index(7)) - 3;
      batch.push_back({m, t, walk[m]});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Lift the fd soft cap toward `want` (10k idle sockets plus overhead);
/// returns the cap actually in force.
rlim_t raise_nofile(rlim_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur;
}

/// Idle-heavy soak: herds of mostly-idle connections at growing counts,
/// measuring the ping p99 a *working* client sees through each herd. The
/// epoll loop's promise is O(ready) dispatch — the curve should be near
/// flat, and the gate holds p99 at 1024 connections to within 3x of the
/// 16-connection baseline (plus a 250 us jitter floor so a sub-100 us
/// baseline doesn't turn scheduler noise into a failure).
struct SoakPoint {
  std::size_t connections;
  double p99_ms;
};

std::vector<SoakPoint> connection_soak(const store::Store& store,
                                       bool full_scale) {
  const rlim_t fd_cap = raise_nofile(32'768);
  std::vector<std::size_t> counts = {16, 256, 1024};
  if (full_scale) counts.push_back(10'000);
  server::Server server(store, {});
  std::thread loop([&] { server.run(); });

  server::ClientOptions copts;
  copts.port = server.port();
  server::Client pinger(copts);
  server::wire::Request ping;
  ping.method = server::wire::Method::kPing;

  std::vector<net::TcpStream> idlers;
  std::vector<SoakPoint> curve;
  for (const std::size_t want : counts) {
    if (want + 128 > fd_cap) {
      std::printf("soak: skipping %zu connections (fd cap %llu)\n", want,
                  static_cast<unsigned long long>(fd_cap));
      continue;
    }
    while (idlers.size() + 1 < want) {
      idlers.push_back(
          net::TcpStream::connect("127.0.0.1", server.port(), 2000));
    }
    // Let the accept wave drain before timing anything.
    while (server.loop_stats().accepted <
           idlers.size() - server.loop_stats().closed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<double> lat_ms;
    lat_ms.reserve(400);
    for (int i = 0; i < 400; ++i) {
      const auto t0 = Clock::now();
      const auto resp = pinger.call(ping);
      if (resp.status == server::wire::Status::kOk) {
        lat_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
      }
    }
    std::sort(lat_ms.begin(), lat_ms.end());
    const double p99 =
        lat_ms.empty()
            ? 0.0
            : lat_ms[static_cast<std::size_t>(
                  0.99 * static_cast<double>(lat_ms.size() - 1))];
    std::printf("soak: %5zu connections held, ping p99 %.3f ms\n", want,
                p99);
    curve.push_back({want, p99});
  }
  idlers.clear();
  server.shutdown();
  loop.join();
  server.drain();
  return curve;
}

void print_artifact() {
  bench::print_header(
      "S3  Network query service (src/net + src/server)",
      "Serving the archived feed to operators must sustain at least the "
      "machine's own 462,600 events/s production rate as read volume "
      "over TCP");

  const std::uint32_t metrics = 3'200;
  const util::TimeSec span = 900;
  const double target = 462'600.0;
  const double drive_s = bench::full_scale_requested() ? 10.0 : 3.0;

  const std::string dir = bench_net_dir();
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 18;
  store::Store store = store::Store::open(dir, options);
  for (const auto& b : synth_feed(metrics, span)) store.append(b);
  store.flush();

  // Warm pass: decode every segment once so the drive below measures the
  // serving path (admission, wire codec, TCP) over a hot cache, the
  // steady state of a long-lived server.
  std::vector<telemetry::MetricId> all_ids(metrics);
  for (std::uint32_t m = 0; m < metrics; ++m) all_ids[m] = m;
  (void)store.query_many(all_ids, {0, span});

  server::Server server(store, {});
  std::thread loop([&] { server.run(); });
  const std::uint16_t port = server.port();

  const std::size_t clients =
      std::max<std::size_t>(2, std::thread::hardware_concurrency() / 2);
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> failures{0};
  const auto t0 = Clock::now();
  const auto until = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(drive_s));
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      util::Rng rng(0xbe7ULL + c);
      server::ClientOptions copts;
      copts.port = port;
      server::Client client(copts);
      while (Clock::now() < until) {
        server::wire::Request req;
        req.method = server::wire::Method::kScan;
        req.range = {0, span};
        const std::size_t want = 64;
        for (std::size_t i = 0; i < want; ++i) {
          req.metrics.push_back(
              static_cast<telemetry::MetricId>(rng.uniform_index(metrics)));
        }
        try {
          const auto resp = client.call(req);
          requests.fetch_add(1, std::memory_order_relaxed);
          if (resp.status == server::wire::Status::kOk) {
            events.fetch_add(server::wire::response_event_volume(resp),
                             std::memory_order_relaxed);
          }
        } catch (const net::NetError&) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  server.shutdown();
  loop.join();
  server.drain();

  const double rate = static_cast<double>(events.load()) / elapsed;
  const auto m = server.service().metrics();
  std::printf("%zu clients x %.1f s: %llu scans, %llu transport failures, "
              "%s read back\n",
              clients, elapsed,
              static_cast<unsigned long long>(requests.load()),
              static_cast<unsigned long long>(failures.load()),
              util::fmt_si(rate, "events/s", 2).c_str());
  std::printf("service latency: p50 %.2f ms, p99 %.2f ms (served %llu, "
              "shed %llu)\n",
              m.p50_ms, m.p99_ms,
              static_cast<unsigned long long>(m.served),
              static_cast<unsigned long long>(m.shed));
  std::printf("net read: %s (%.2fx the 462,600 events/s feed)\n\n",
              rate >= target ? "MET" : "NOT MET", rate / target);

  const auto curve = connection_soak(store, bench::full_scale_requested());
  double p99_16 = 0.0;
  double p99_1024 = 0.0;
  for (const auto& pt : curve) {
    if (pt.connections == 16) p99_16 = pt.p99_ms;
    if (pt.connections == 1024) p99_1024 = pt.p99_ms;
  }
  const double soak_limit = std::max(3.0 * p99_16, p99_16 + 0.25);
  const bool soak_met =
      p99_16 > 0.0 && p99_1024 > 0.0 && p99_1024 <= soak_limit;
  std::printf("soak gate: p99@1024 %.3f ms vs limit %.3f ms (3x the "
              "16-connection %.3f ms) — %s\n\n",
              p99_1024, soak_limit, p99_16, soak_met ? "MET" : "NOT MET");

  bench::JsonObject json;
  json.add("clients", static_cast<std::uint64_t>(clients));
  json.add("drive_seconds", elapsed);
  json.add("requests", requests.load());
  json.add("events_per_second", rate);
  json.add("target_events_per_second", target);
  json.add("net_read_met", rate >= target);
  json.add("p50_ms", m.p50_ms);
  json.add("p99_ms", m.p99_ms);
  for (const auto& pt : curve) {
    json.add("soak_ping_p99_ms_c" + std::to_string(pt.connections),
             pt.p99_ms);
  }
  json.add("soak_p99_limit_ms", soak_limit);
  json.add("soak_gate_met", soak_met);
  json.write("BENCH_net.json");

  fs::remove_all(dir);
}

// --- google-benchmark timings of the layers underneath -------------------

void BM_frame_encode(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0x5a);
  std::uint64_t id = 0;
  for (auto _ : state) {
    auto bytes = net::encode_frame(net::FrameType::kRequest, ++id, payload);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_frame_encode)->Arg(256)->Arg(64 << 10);

void BM_frame_decode(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0x5a);
  const auto bytes = net::encode_frame(net::FrameType::kRequest, 7, payload);
  for (auto _ : state) {
    net::FrameDecoder decoder;
    decoder.feed(bytes);
    net::Frame frame;
    benchmark::DoNotOptimize(decoder.next(frame));
    benchmark::DoNotOptimize(frame.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_frame_decode)->Arg(256)->Arg(64 << 10);

/// Adversarial rejection cost: a hostile 4 GB length claim must be
/// rejected from the 24 header bytes alone, long before any allocation.
void BM_frame_reject_oversized(benchmark::State& state) {
  auto bytes = net::encode_frame(net::FrameType::kRequest, 7, {});
  bytes[16] = 0xff;  // payload_len LE bytes 16..19
  bytes[17] = 0xff;
  bytes[18] = 0xff;
  bytes[19] = 0xff;
  for (auto _ : state) {
    net::FrameDecoder decoder;
    bool threw = false;
    try {
      decoder.feed(bytes);
    } catch (const net::FrameError&) {
      threw = true;
    }
    benchmark::DoNotOptimize(threw);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_frame_reject_oversized);

void BM_wire_response_roundtrip(benchmark::State& state) {
  server::wire::Response resp;
  resp.method = server::wire::Method::kScan;
  resp.runs.resize(8);
  for (std::size_t r = 0; r < resp.runs.size(); ++r) {
    resp.runs[r].id = static_cast<telemetry::MetricId>(r);
    for (int i = 0; i < state.range(0); ++i) {
      resp.runs[r].samples.push_back(
          {static_cast<util::TimeSec>(i), 500.0 + static_cast<double>(i % 7)});
    }
  }
  for (auto _ : state) {
    const auto bytes = server::wire::encode_response(resp);
    const auto back = server::wire::decode_response(bytes);
    benchmark::DoNotOptimize(back.runs.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          state.range(0));
}
BENCHMARK(BM_wire_response_roundtrip)->Arg(64)->Arg(1024);

/// Full-stack RTT for the smallest request — the wire-level floor under
/// every latency percentile the service reports.
void BM_loopback_ping(benchmark::State& state) {
  const std::string dir = bench_net_dir() + "_ping";
  fs::remove_all(dir);
  store::Store store = store::Store::open(dir);
  server::Server server(store, {});
  std::thread loop([&] { server.run(); });
  server::ClientOptions copts;
  copts.port = server.port();
  server::Client client(copts);
  server::wire::Request req;
  req.method = server::wire::Method::kPing;
  for (auto _ : state) {
    const auto resp = client.call(req);
    benchmark::DoNotOptimize(resp.status);
  }
  server.shutdown();
  loop.join();
  server.drain();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  fs::remove_all(dir);
}
BENCHMARK(BM_loopback_ping);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
