// F17 — GPU power/temperature variability during a full-scale exemplar
// job (paper Fig. 17): a ~4,608-node, ~21-minute BerkeleyGW-like run.
// Shape targets: idle <-> peak transitions in under half a minute;
// near-linear monotonic power-temperature relation per instant; a narrow
// non-outlier power spread (~62 W) against a wide temperature spread
// (~15.8 C) — manufacturing + placement variability; the vast majority
// of GPUs below 60 C; even spatial heat distribution at peak with mild
// locality.

#include <cmath>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/variability.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F17  Exemplar full-scale job variability (Figure 17)",
      "power spread ~62 W vs temp spread ~15.8 C; near-linear power-temp; "
      "<60 C for the vast majority; even cabinet heatmap at peak");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 6 * util::kWeek);
  core::Simulation sim(config);
  const workload::Job* exemplar = core::select_exemplar(
      sim.jobs(), static_cast<int>(0.9 * machine::SummitSpec::kMaxJobNodes));
  if (exemplar == nullptr) {
    std::printf("no exemplar job found in the window; widen the range\n");
    return;
  }
  std::printf("exemplar: job %llu, %d nodes, %.1f minutes, app #%u\n\n",
              static_cast<unsigned long long>(exemplar->id),
              exemplar->node_count,
              static_cast<double>(exemplar->end - exemplar->start) / 60.0,
              exemplar->app);

  const power::FleetVariability fleet(config.scale, 11);
  const thermal::FleetThermal thermals(config.scale, 12);
  const auto study =
      core::variability_study(*exemplar, fleet, thermals, 20.0, 6);

  util::TextTable t({"instant", "gpuP med (W)", "gpuP spread (W)",
                     "gpuT med (C)", "gpuT spread (C)", "corr(P,T)"});
  util::CsvWriter csv("f17_variability.csv",
                      {"instant", "power_med_w", "power_spread_w",
                       "temp_med_c", "temp_spread_c", "corr"});
  for (std::size_t s = 0; s < study.snapshots.size(); ++s) {
    const auto& snap = study.snapshots[s];
    t.add_row({std::to_string(s),
               util::fmt_double(snap.gpu_power_w.median, 0),
               util::fmt_double(snap.power_spread_w, 1),
               util::fmt_double(snap.gpu_temp_c.median, 1),
               util::fmt_double(snap.temp_spread_c, 1),
               util::fmt_double(snap.power_temp_corr, 3)});
    csv.add_row({static_cast<double>(s), snap.gpu_power_w.median,
                 snap.power_spread_w, snap.gpu_temp_c.median,
                 snap.temp_spread_c, snap.power_temp_corr});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("max GPU temp over the job: %.1f C; readings below 60 C: "
              "%.2f%% (paper: vast majority)\n\n",
              study.max_temp_c, 100.0 * study.share_below_60c);

  // Spatial view at the mid-job instant: cabinet heatmap statistics.
  const auto& mid = study.snapshots[study.snapshots.size() / 2];
  std::vector<double> means;
  for (double m : mid.cabinet_mean_c) {
    if (!std::isnan(m)) means.push_back(m);
  }
  if (!means.empty()) {
    const auto bp = stats::boxplot(means);
    std::printf("cabinet mean-temp distribution at peak: median %.1f C, "
                "IQR %.2f C across %zu cabinets (paper: 'quite even')\n\n",
                bp.median, bp.iqr(), means.size());
  }

  // Figure 17 bottom rows: the floor heatmap ('.' = no job nodes).
  std::printf("floor heatmap of cabinet mean GPU temp (mid-job instant):\n%s\n",
              core::floor_heatmap(thermals.topology(), mid.cabinet_mean_c)
                  .c_str());
}

void BM_variability_snapshot(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 2 * util::kWeek);
  static core::Simulation sim(config);
  static const workload::Job* big = core::select_exemplar(
      sim.jobs(), 2000, 5.0, 120.0);
  static const power::FleetVariability fleet(config.scale, 11);
  static const thermal::FleetThermal thermals(config.scale, 12);
  if (big == nullptr) {
    state.SkipWithError("no exemplar");
    return;
  }
  for (auto _ : state) {
    auto study = core::variability_study(*big, fleet, thermals, 20.0, 1);
    benchmark::DoNotOptimize(study.max_temp_c);
  }
}
BENCHMARK(BM_variability_snapshot);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
