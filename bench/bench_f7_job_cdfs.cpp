// F7 — Cumulative distribution functions of class-1/2 job features
// (paper Fig. 7): node count, wall time, mean power, max power, and
// (max - mean) power, with the 80th-percentile markers. Shape targets:
// class-1 mode at ~4096 nodes (>60% above 4000); class-2 mass at
// 1000/1024 with 80% below ~1500 nodes; class 2 runs longer (80% up to
// ~3 h vs ~43 min); max power 80th pct ~6.6 MW (c1) / ~1.6 MW (c2) with
// maxima ~10.7 / ~5.6 MW; class 1 shows larger max-mean variation.

#include <map>

#include "bench_common.hpp"
#include "core/job_features.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F7  Job feature CDFs, classes 1-2 (Figure 7)",
      "c1: 60%+ jobs >4000 nodes, mode 4096, 80% < 43 min, maxP80 6.6 MW, "
      "max 10.7 MW; c2: mode 1000/1024, 80% < 1500 nodes / ~3 h, maxP80 "
      "1.6 MW, max 5.6 MW");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 13 * util::kWeek);
  core::Simulation sim(config);
  const auto all = core::summarize_jobs(sim.jobs());

  util::CsvWriter csv("f7_job_cdfs.csv", {"class", "feature", "x", "cdf"});
  const struct {
    core::JobFeature f;
    const char* name;
    double scale;
    const char* unit;
  } kFeatures[] = {
      {core::JobFeature::kNodeCount, "nodes", 1.0, ""},
      {core::JobFeature::kWalltimeHours, "walltime", 1.0, "h"},
      {core::JobFeature::kMeanPowerW, "mean power", 1e-6, "MW"},
      {core::JobFeature::kMaxPowerW, "max power", 1e-6, "MW"},
      {core::JobFeature::kMaxMinusMeanW, "max-mean", 1e-6, "MW"},
  };

  for (int cls : {1, 2}) {
    const auto jobs = core::by_class(all, cls);
    std::printf("Class %d (%zu jobs)\n", cls, jobs.size());
    util::TextTable t({"feature", "p50", "p80 (red line)", "max"});
    for (const auto& feat : kFeatures) {
      const core::FeatureCdf c = core::feature_cdf(jobs, feat.f);
      t.add_row({feat.name,
                 util::fmt_double(c.cdf.percentile(0.5) * feat.scale, 2) +
                     feat.unit,
                 util::fmt_double(c.p80 * feat.scale, 2) + feat.unit,
                 util::fmt_double(c.max * feat.scale, 2) + feat.unit});
      for (const auto& p : c.cdf.grid(60)) {
        csv.add_row({static_cast<double>(cls), 0.0, p.x * feat.scale, p.f});
      }
    }
    std::printf("%s\n", t.str().c_str());

    // Node-count mode (the paper's 4096 / 1000-1024 spikes).
    const auto nodes = core::feature(jobs, core::JobFeature::kNodeCount);
    std::map<int, std::size_t> counts;
    for (double n : nodes) ++counts[static_cast<int>(n)];
    int mode = 0;
    std::size_t best = 0;
    for (const auto& [n, c] : counts) {
      if (c > best) {
        best = c;
        mode = n;
      }
    }
    std::printf("  node-count mode: %d (%zu jobs, %.0f%% of class)\n\n", mode,
                best, 100.0 * static_cast<double>(best) /
                          static_cast<double>(jobs.size()));
  }
}

void BM_feature_cdf(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 2 * util::kWeek);
  static core::Simulation sim(config);
  static const auto all = core::summarize_jobs(sim.jobs());
  for (auto _ : state) {
    auto c = core::feature_cdf(all, core::JobFeature::kMaxPowerW);
    benchmark::DoNotOptimize(c.p80);
  }
}
BENCHMARK(BM_feature_cdf);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
