// F8 — Job max power and energy by science domain, classes 1 and 2
// (paper Fig. 8): per-domain boxplot distributions. Shape targets:
// domains differ visibly in both spread and median (different codes
// dominate different disciplines); class-1 peaks approach the system
// maximum (~10 MW) in several domains; energy varies over decades due to
// run-time differences.

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "core/job_features.hpp"
#include "core/simulation.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"
#include "workload/domain.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F8  Max power & energy by science domain (Figure 8)",
      "per-domain distributions differ strongly; class-1 peaks near 10 MW; "
      "energy spans decades");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 13 * util::kWeek);
  core::Simulation sim(config);
  const auto all = core::summarize_jobs(sim.jobs());
  const auto& domains = workload::domain_catalog();

  util::CsvWriter csv("f8_domain_power.csv",
                      {"class", "domain", "maxp_q1", "maxp_med", "maxp_q3",
                       "energy_q1", "energy_med", "energy_q3"});
  for (int cls : {1, 2}) {
    const auto jobs = core::by_class(all, cls);
    std::printf("Class %d (%zu jobs)\n", cls, jobs.size());
    util::TextTable t({"domain", "jobs", "maxP med (MW)", "maxP IQR (MW)",
                       "energy med (J)", "energy IQR"});
    std::vector<double> medians;
    for (std::size_t d = 0; d < domains.size(); ++d) {
      std::vector<double> maxp;
      std::vector<double> energy;
      for (const auto& j : jobs) {
        if (j.domain == d) {
          maxp.push_back(j.max_power_w);
          energy.push_back(j.energy_j);
        }
      }
      if (maxp.size() < 5) continue;
      const auto bp = stats::boxplot(maxp);
      const auto be = stats::boxplot(energy);
      medians.push_back(bp.median);
      t.add_row({domains[d].name, std::to_string(maxp.size()),
                 util::fmt_double(bp.median / 1e6, 2),
                 util::fmt_double(bp.q1 / 1e6, 2) + "-" +
                     util::fmt_double(bp.q3 / 1e6, 2),
                 util::fmt_si(be.median, "J", 1),
                 util::fmt_si(be.q1, "J", 1) + "-" +
                     util::fmt_si(be.q3, "J", 1)});
      csv.add_row({static_cast<double>(cls), static_cast<double>(d), bp.q1,
                   bp.median, bp.q3, be.q1, be.median, be.q3});
    }
    std::printf("%s", t.str().c_str());
    if (!medians.empty()) {
      std::printf("[shape] class-%d domain max-power medians span %.2f-%.2f "
                  "MW (cross-domain variation)\n\n",
                  cls, stats::min_value(medians) / 1e6,
                  stats::max_value(medians) / 1e6);
    }
  }
}

void BM_domain_grouping(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 2 * util::kWeek);
  static core::Simulation sim(config);
  static const auto all = core::summarize_jobs(sim.jobs());
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t d = 0; d < workload::domain_catalog().size(); ++d) {
      std::vector<double> maxp;
      for (const auto& j : all) {
        if (j.domain == d) maxp.push_back(j.max_power_w);
      }
      if (maxp.size() >= 5) acc += stats::boxplot(maxp).median;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_domain_grouping);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
