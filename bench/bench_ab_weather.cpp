// AB5 — Ablation: climate sensitivity of the cooling economy (paper §2:
// chilled water is needed only when the wet-bulb defeats the towers —
// ~20% of the Tennessee year). Sweep a uniform warming offset on the
// weather model and measure the chiller duty cycle and annual mean PUE:
// the facility-design question behind medium-temperature-water cooling.

#include "bench_common.hpp"
#include "core/pue_analysis.hpp"
#include "facility/weather.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

struct Outcome {
  double offset_c = 0.0;
  double mean_pue = 0.0;
  double summer_pue = 0.0;
  double chiller_time_share = 0.0;  ///< fraction of windows with chillers on
};

Outcome run_with_offset(core::Simulation& sim, const ts::Frame& cluster,
                        double offset_c) {
  // Wrap the weather by biasing the wet-bulb the cooling plant sees:
  // simplest faithful injection is adjusting the tower knee instead.
  facility::CepOptions options;
  options.cooling.pump_power_w *= sim.scale().fraction();
  options.cooling.loop_w_per_c *= sim.scale().fraction();
  // A +X C warmer climate is equivalent to a setpoint X C lower.
  options.cooling.mtw_supply_setpoint_c -= offset_c;
  const ts::Frame cep = facility::simulate_cep(cluster, options);

  Outcome o;
  o.offset_c = offset_c;
  const auto trend = core::year_trend(cluster, cep);
  o.mean_pue = trend.mean_pue;
  o.summer_pue = trend.summer_mean_pue;
  std::size_t on = 0;
  const auto& chiller = cep.at("chiller_tons");
  const auto& tower = cep.at("tower_tons");
  for (std::size_t i = 0; i < cep.rows(); ++i) {
    if (chiller[i] > 0.05 * (chiller[i] + tower[i] + 1.0)) ++on;
  }
  o.chiller_time_share = static_cast<double>(on) /
                         static_cast<double>(cep.rows());
  return o;
}

void print_artifact() {
  bench::print_header(
      "AB5  Climate sensitivity of the cooling economy (paper Section 2)",
      "chilled water ~20% of the Tennessee year at the nominal climate; "
      "each degree of warming grows the chiller duty cycle and PUE");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 1800, .subsamples = 2});

  util::TextTable t({"climate offset", "chiller time share", "mean PUE",
                     "summer PUE"});
  util::CsvWriter csv("ab_weather.csv",
                      {"offset_c", "chiller_share", "mean_pue",
                       "summer_pue"});
  for (double offset : {-2.0, 0.0, 1.0, 2.0, 4.0}) {
    const Outcome o = run_with_offset(sim, cluster, offset);
    t.add_row({util::fmt_double(o.offset_c, 0) + " C",
               util::fmt_double(100.0 * o.chiller_time_share, 1) + "%",
               util::fmt_double(o.mean_pue, 4),
               util::fmt_double(o.summer_pue, 4)});
    csv.add_row({o.offset_c, o.chiller_time_share, o.mean_pue, o.summer_pue});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("[shape] chiller duty cycle and PUE grow monotonically with "
              "the warming offset; the nominal climate sits in the paper's "
              "~20-30%% chilled-water regime.\n\n");
}

void BM_cep_year(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  static core::Simulation sim(config);
  static const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 1800, .subsamples = 1});
  for (auto _ : state) {
    auto cep = sim.cep_frame(cluster);
    benchmark::DoNotOptimize(cep.rows());
  }
}
BENCHMARK(BM_cep_year);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
