// F9 — Per-node CPU vs GPU power joint distributions, mean and max
// (paper Fig. 9). Shape targets: density mass hugs the axes (jobs are
// either CPU- or GPU-focused); the upper-right corner (both maxed) is
// essentially empty; the max plots spread farther along the GPU axis.

#include <array>
#include <tuple>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "core/job_features.hpp"
#include "stats/kde.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F9  CPU vs GPU per-node power KDE (Figure 9)",
      "mass near the axes; empty upper-right corner; GPU axis dominates "
      "the max plots");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 13 * util::kWeek);
  core::Simulation sim(config);
  const auto all = core::summarize_jobs(sim.jobs());

  // The paper splits into the two leadership classes vs classes 3-5.
  const auto group_of = [](int cls) { return cls <= 2 ? 0 : 1; };
  const char* kGroupName[2] = {"classes 1-2", "classes 3-5"};
  util::CsvWriter csv("f9_cpu_gpu.csv",
                      {"group", "stat", "cpu_node_w", "gpu_node_w"});

  for (int g = 0; g < 2; ++g) {
    std::vector<double> mean_cpu;
    std::vector<double> mean_gpu;
    std::vector<double> max_cpu;
    std::vector<double> max_gpu;
    for (const auto& j : all) {
      if (group_of(j.sched_class) != g) continue;
      mean_cpu.push_back(j.mean_cpu_node_w);
      mean_gpu.push_back(j.mean_gpu_node_w);
      max_cpu.push_back(j.max_cpu_node_w);
      max_gpu.push_back(j.max_gpu_node_w);
    }
    std::printf("%s (%zu jobs)\n", kGroupName[g], mean_cpu.size());

    // Quadrant occupancy at fixed physical thresholds: "CPU-high" means
    // the sockets draw > 350 W together (> ~48% package utilization);
    // "GPU-high" means the six devices draw > 900 W (> ~37% utilization).
    auto quadrants = [](const std::vector<double>& cx,
                        const std::vector<double>& cy) {
      const double sx = 350.0;
      const double sy = 900.0;
      std::array<std::size_t, 4> q{};  // LL, LH(gpu), HL(cpu), HH
      for (std::size_t i = 0; i < cx.size(); ++i) {
        const bool hx = cx[i] > sx;
        const bool hy = cy[i] > sy;
        ++q[(hx ? 2u : 0u) + (hy ? 1u : 0u)];
      }
      return q;
    };
    util::TextTable t({"stat", "low/low", "gpu-high", "cpu-high",
                       "both-high (should be ~0)"});
    for (const auto& [name, cx, cy] :
         {std::tuple{"mean", &mean_cpu, &mean_gpu},
          std::tuple{"max", &max_cpu, &max_gpu}}) {
      const auto q = quadrants(*cx, *cy);
      const double n = static_cast<double>(cx->size());
      t.add_row({name, util::fmt_double(100.0 * q[0] / n, 1) + "%",
                 util::fmt_double(100.0 * q[1] / n, 1) + "%",
                 util::fmt_double(100.0 * q[2] / n, 1) + "%",
                 util::fmt_double(100.0 * q[3] / n, 1) + "%"});
      for (std::size_t i = 0; i < cx->size();
           i += std::max<std::size_t>(1, cx->size() / 1500)) {
        csv.add_row({static_cast<double>(g), name == std::string("max") ? 1.0
                                                                        : 0.0,
                     (*cx)[i], (*cy)[i]});
      }
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("[shape] 'both-high' stays near zero; GPU-high share grows in "
              "the max statistics\n\n");
}

void BM_quadrant_analysis(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 2 * util::kWeek);
  static core::Simulation sim(config);
  static const auto all = core::summarize_jobs(sim.jobs());
  for (auto _ : state) {
    std::size_t hh = 0;
    for (const auto& j : all) {
      if (j.max_cpu_node_w > 400.0 && j.max_gpu_node_w > 1200.0) ++hh;
    }
    benchmark::DoNotOptimize(hh);
  }
}
BENCHMARK(BM_quadrant_analysis);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
