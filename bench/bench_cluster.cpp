// S4 — Sharded store cluster (src/cluster, DESIGN.md §11): a 3-shard
// cluster must hand the feed back through the scatter-gather coordinator
// at least as fast as the machine produces it — 462,600 events/s of
// decoded read volume — or sharding for capacity costs the dashboards
// their real-time view. The artifact shards a warm feed across three
// real TCP shard servers, drives the coordinator with concurrent scan
// readers, and gates on the sustained merged-event rate; then
// google-benchmark timings of the routing and merge kernels underneath.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/merge.hpp"
#include "cluster/rebalance.hpp"
#include "cluster/shard_map.hpp"
#include "server/server.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kShards = 3;

std::string bench_cluster_dir() {
  return (fs::temp_directory_path() / "exawatt_bench_cluster").string();
}

/// Same BMC-shaped feed as bench_net: `metrics` channels at 1 Hz for
/// `seconds`, values a small random walk.
std::vector<std::vector<telemetry::MetricEvent>> synth_feed(
    std::uint32_t metrics, util::TimeSec seconds) {
  util::Rng rng(2020);
  std::vector<std::int32_t> walk(metrics);
  for (auto& v : walk) {
    v = static_cast<std::int32_t>(500 + rng.uniform_index(1500));
  }
  std::vector<std::vector<telemetry::MetricEvent>> batches;
  batches.reserve(static_cast<std::size_t>(seconds));
  for (util::TimeSec t = 0; t < seconds; ++t) {
    std::vector<telemetry::MetricEvent> batch;
    batch.reserve(metrics);
    for (std::uint32_t m = 0; m < metrics; ++m) {
      walk[m] += static_cast<std::int32_t>(rng.uniform_index(7)) - 3;
      batch.push_back({m, t, walk[m]});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void print_artifact() {
  bench::print_header(
      "S4  Sharded store cluster (src/cluster)",
      "Scatter-gather reads across 3 shard servers must sustain at least "
      "the machine's own 462,600 events/s production rate as merged read "
      "volume");

  const std::uint32_t metrics = 3'200;
  const util::TimeSec span = 900;
  const double target = 462'600.0;
  const double drive_s = bench::full_scale_requested() ? 10.0 : 3.0;

  const std::string dir = bench_cluster_dir();
  fs::remove_all(dir);
  const auto map = cluster::ShardMap::uniform(kShards);
  std::vector<std::optional<store::Store>> shards;
  {
    store::StoreOptions options;
    options.segment_events = 1 << 18;
    for (std::size_t s = 0; s < kShards; ++s) {
      shards.emplace_back(store::Store::open(
          dir + "/shard" + std::to_string(s), options));
    }
    for (const auto& batch : synth_feed(metrics, span)) {
      auto parts = map.split(batch);
      for (std::size_t s = 0; s < kShards; ++s) {
        shards[s]->append(std::move(parts[s]));
      }
    }
    for (auto& shard : shards) shard->flush();
  }

  // Warm pass: decode every shard's segments once so the drive measures
  // the scatter-gather path (fan-out, wire codec, merge) over hot caches.
  std::vector<telemetry::MetricId> all_ids(metrics);
  for (std::uint32_t m = 0; m < metrics; ++m) all_ids[m] = m;
  for (auto& shard : shards) (void)shard->query_many(all_ids, {0, span});

  // One pool per in-process service: colocated services sharing the
  // process-global pool starve each other on small machines (see
  // DESIGN.md §11) — separate server processes never share one.
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<std::thread> loops;
  cluster::CoordinatorOptions copts;
  for (auto& shard : shards) {
    pools.push_back(std::make_unique<util::ThreadPool>(1));
    server::ServerOptions opts;
    opts.service.pool = pools.back().get();
    servers.push_back(std::make_unique<server::Server>(*shard, opts));
    loops.emplace_back([srv = servers.back().get()] { srv->run(); });
    copts.shards.push_back({"127.0.0.1", servers.back()->port()});
  }
  copts.prune = true;  // shards are sealed before the drive starts
  cluster::Coordinator coordinator(copts);
  coordinator.refresh_directories();

  const std::size_t readers =
      std::max<std::size_t>(2, std::thread::hardware_concurrency() / 2);
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> degraded{0};
  const auto t0 = Clock::now();
  const auto until = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(drive_s));
  std::vector<std::thread> drivers;
  drivers.reserve(readers);
  for (std::size_t c = 0; c < readers; ++c) {
    drivers.emplace_back([&, c] {
      util::Rng rng(0xc105ULL + c);
      const server::CancelToken no_cancel;
      while (Clock::now() < until) {
        server::wire::Request req;
        req.method = server::wire::Method::kScan;
        req.range = {0, span};
        const std::size_t want = 64;
        for (std::size_t i = 0; i < want; ++i) {
          req.metrics.push_back(
              static_cast<telemetry::MetricId>(rng.uniform_index(metrics)));
        }
        const auto resp = coordinator.execute(req, no_cancel, 0);
        requests.fetch_add(1, std::memory_order_relaxed);
        if (resp.status == server::wire::Status::kOk) {
          events.fetch_add(server::wire::response_event_volume(resp),
                           std::memory_order_relaxed);
          if (resp.stats.degraded()) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  for (auto& server : servers) server->shutdown();
  for (auto& loop : loops) loop.join();
  for (auto& server : servers) server->drain();

  const double rate = static_cast<double>(events.load()) / elapsed;
  std::printf("%zu readers x %.1f s over %zu shards: %llu scatters, "
              "%llu degraded, %s read back\n",
              readers, elapsed, kShards,
              static_cast<unsigned long long>(requests.load()),
              static_cast<unsigned long long>(degraded.load()),
              util::fmt_si(rate, "events/s", 2).c_str());
  std::uint64_t legs = 0;
  std::uint64_t leg_errors = 0;
  for (const auto& shard : coordinator.shard_stats()) {
    legs += shard.calls;
    leg_errors += shard.shed + shard.deadline_exceeded + shard.other_errors +
                  shard.transport_errors;
  }
  std::printf("scatter legs: %llu total, %llu not ok\n",
              static_cast<unsigned long long>(legs),
              static_cast<unsigned long long>(leg_errors));
  std::printf("cluster read: %s (%.2fx the 462,600 events/s feed)\n\n",
              rate >= target ? "MET" : "NOT MET", rate / target);

  bench::JsonObject json;
  json.add("shards", static_cast<std::uint64_t>(kShards));
  json.add("readers", static_cast<std::uint64_t>(readers));
  json.add("drive_seconds", elapsed);
  json.add("requests", requests.load());
  json.add("degraded_responses", degraded.load());
  json.add("scatter_legs", legs);
  json.add("events_per_second", rate);
  json.add("target_events_per_second", target);
  json.add("cluster_read_met", rate >= target);
  json.write("BENCH_cluster.json");

  fs::remove_all(dir);
}

// --- google-benchmark timings of the kernels underneath ------------------

/// Routing cost per event: the hash-slot lookup every ingest batch pays.
void BM_shard_route(benchmark::State& state) {
  const auto map = cluster::ShardMap::uniform(kShards);
  telemetry::MetricId id = 0;
  std::size_t sink = 0;
  for (auto _ : state) {
    sink += map.shard_of(++id);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_shard_route);

void BM_split_batch(benchmark::State& state) {
  const auto map = cluster::ShardMap::uniform(kShards);
  util::Rng rng(7);
  std::vector<telemetry::MetricEvent> batch;
  for (int i = 0; i < state.range(0); ++i) {
    batch.push_back({static_cast<telemetry::MetricId>(rng.uniform_index(3200)),
                     static_cast<util::TimeSec>(i), 500});
  }
  for (auto _ : state) {
    auto parts = map.split(batch);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_split_batch)->Arg(3200);

void BM_merge_window_sum(benchmark::State& state) {
  store::WindowSum shard_grid;
  shard_grid.start = 0;
  shard_grid.window = 10;
  shard_grid.sum.assign(static_cast<std::size_t>(state.range(0)), 1234.0);
  shard_grid.count.assign(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    store::WindowSum merged;
    for (std::size_t s = 0; s < kShards; ++s) {
      cluster::merge_window_sum(merged, shard_grid);
    }
    benchmark::DoNotOptimize(merged.sum.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * static_cast<int>(kShards));
}
BENCHMARK(BM_merge_window_sum)->Arg(8640);

/// Re-sort-and-reassemble cost of a scatter's scan legs — the serial
/// tail of every merged read.
void BM_merge_runs(benchmark::State& state) {
  const std::size_t ids_n = 8;
  std::vector<telemetry::MetricId> ids;
  for (std::size_t i = 0; i < ids_n; ++i) {
    ids.push_back(static_cast<telemetry::MetricId>(i));
  }
  std::vector<std::vector<store::MetricRun>> shard_runs(kShards);
  util::Rng rng(11);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (const telemetry::MetricId id : ids) {
      store::MetricRun run;
      run.id = id;
      for (int i = 0; i < state.range(0); ++i) {
        run.samples.push_back({static_cast<util::TimeSec>(rng.uniform_index(
                                   100'000)),
                               500.0});
      }
      std::sort(run.samples.begin(), run.samples.end(), store::sample_less);
      shard_runs[s].push_back(std::move(run));
    }
  }
  std::vector<const std::vector<store::MetricRun>*> parts;
  for (const auto& r : shard_runs) parts.push_back(&r);
  for (auto _ : state) {
    auto merged = cluster::merge_runs(ids, parts);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids_n * kShards) *
                          state.range(0));
}
BENCHMARK(BM_merge_runs)->Arg(256)->Arg(4096);

void BM_migration_journal_roundtrip(benchmark::State& state) {
  cluster::MigrationJournal j;
  j.from_root = "/data/shard0";
  j.to_root = "/data/shard2";
  j.to_file = "mseg00000003_day00001.seg";
  j.meta = {"seg00000003_day00001.seg", 1, 4096, 1 << 20, 86400, 90000};
  for (auto _ : state) {
    const auto decoded = cluster::MigrationJournal::decode(j.encode());
    benchmark::DoNotOptimize(decoded.to_file.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_migration_journal_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
