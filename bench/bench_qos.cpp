// Q1 — Multi-tenant QoS (src/qos, DESIGN.md §15): cost-model admission,
// per-class per-tenant fair scheduling and an autoscaled worker pool in
// front of the query service. The artifact is an overload experiment: a
// mixed-method, multi-tenant open-loop flood at 10x the service's
// measured capacity must leave interactive p99 within 2x of its unloaded
// baseline while batch work keeps flowing (throughput > 0, not drained
// to starvation) — the QoS promise under the exact conditions that
// collapse a FIFO. Also regenerates the admission-pricing calibration
// table (estimated vs measured blocks must agree exactly) and writes the
// headline numbers to BENCH_qos.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "qos/autoscale.hpp"
#include "qos/cost.hpp"
#include "qos/scheduler.hpp"
#include "server/service.hpp"
#include "server/wire.hpp"
#include "store/store.hpp"
#include "telemetry/metric.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;
namespace fs = std::filesystem;
using SteadyClock = std::chrono::steady_clock;

constexpr std::uint32_t kNodes = 48;
constexpr util::TimeSec kSpan = 1'800;  // 1 Hz per node
constexpr std::uint32_t kTenants = 6;   // gate requires >= 4

std::string g_store_dir;  // set by print_artifact, reused by the BMs

int power_channel() {
  return telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
}

std::vector<machine::NodeId> all_nodes() {
  std::vector<machine::NodeId> nodes(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    nodes[n] = static_cast<machine::NodeId>(n);
  }
  return nodes;
}

/// One power channel per node at 1 Hz: the shape pue_rollup replays and
/// every other method scans, so one feed exercises the whole price list.
void build_store(const std::string& dir) {
  fs::remove_all(dir);
  store::StoreOptions options;
  options.segment_events = 1 << 13;
  auto store = store::Store::open(dir, options);
  util::Rng rng(2020);
  std::vector<std::int32_t> walk(kNodes);
  for (auto& v : walk) {
    v = static_cast<std::int32_t>(8'000 + rng.uniform_index(4'000));
  }
  for (util::TimeSec t = 0; t < kSpan; ++t) {
    std::vector<telemetry::MetricEvent> batch;
    batch.reserve(kNodes);
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      walk[n] += static_cast<std::int32_t>(rng.uniform_index(41)) - 20;
      batch.push_back({telemetry::metric_id(n, power_channel()), t, walk[n]});
    }
    store.append(std::move(batch));
  }
  store.flush();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

server::wire::Response call_sync(server::QueryService& service,
                                 server::wire::Request req) {
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  server::wire::Response out;
  service.submit(std::move(req), server::make_cancel_token(), nullptr,
                 [&](server::wire::Response&& r) {
                   std::lock_guard lk(mu);
                   out = std::move(r);
                   got = true;
                   cv.notify_all();
                 });
  std::unique_lock lk(mu);
  cv.wait(lk, [&] { return got; });
  return out;
}

/// The tenant/class/method mix of the flood: 30% interactive probes,
/// 50% normal scans, 20% batch replays — six tenants sharing it.
server::wire::Request mixed_request(util::Rng& rng) {
  server::wire::Request req;
  req.tenant = 1 + static_cast<std::uint32_t>(rng.uniform_index(kTenants));
  const double c = rng.uniform();
  if (c < 0.3) {
    req.qos_class = 0;
    if (rng.uniform() < 0.5) {
      req.method = server::wire::Method::kPing;
    } else {
      req.method = server::wire::Method::kWindowSum;
      req.metric = telemetry::metric_id(
          static_cast<machine::NodeId>(rng.uniform_index(kNodes)),
          power_channel());
      const auto begin =
          static_cast<util::TimeSec>(rng.uniform_index(kSpan - 120));
      req.range = {begin, begin + 120};
      req.window = 10;
    }
  } else if (c < 0.8) {
    req.qos_class = 1;
    req.method = server::wire::Method::kClusterSum;
    req.nodes = all_nodes();
    req.nodes.resize(12);
    req.channel = power_channel();
    const auto begin =
        static_cast<util::TimeSec>(rng.uniform_index(kSpan - 300));
    req.range = {begin, begin + 300};
    req.window = 30;
  } else {
    req.qos_class = 2;
    req.method = server::wire::Method::kPueRollup;
    req.nodes = all_nodes();
    req.range = {0, kSpan};
    req.window = 30;
  }
  return req;
}

server::wire::Request interactive_probe(util::Rng& rng) {
  server::wire::Request req;
  req.qos_class = 0;
  req.tenant = 1 + static_cast<std::uint32_t>(rng.uniform_index(kTenants));
  if (rng.uniform() < 0.5) {
    req.method = server::wire::Method::kPing;
  } else {
    req.method = server::wire::Method::kWindowSum;
    req.metric = telemetry::metric_id(
        static_cast<machine::NodeId>(rng.uniform_index(kNodes)),
        power_channel());
    const auto begin =
        static_cast<util::TimeSec>(rng.uniform_index(kSpan - 120));
    req.range = {begin, begin + 120};
    req.window = 10;
  }
  return req;
}

/// Estimated vs measured codec blocks for every priced method shape:
/// measured is the block cache's hits+misses delta around a query of the
/// same (ids, range) — the exactness contract behind admission pricing.
bool calibration_table(const store::Store& store) {
  struct Shape {
    const char* name;
    std::vector<telemetry::MetricId> ids;
    util::TimeRange range;
  };
  std::vector<telemetry::MetricId> node_ids;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    node_ids.push_back(telemetry::metric_id(n, power_channel()));
  }
  const std::vector<Shape> shapes = {
      {"window_sum (1 id, 120 s)", {node_ids[3]}, {600, 720}},
      {"scan (8 ids, 300 s)",
       {node_ids.begin(), node_ids.begin() + 8},
       {200, 500}},
      {"cluster_sum (12 ids, full)",
       {node_ids.begin(), node_ids.begin() + 12},
       {0, kSpan}},
      {"pue_rollup (48 ids, full)", node_ids, {0, kSpan}},
  };
  util::TextTable t({"shape", "estimated", "measured", "match"});
  bool exact = true;
  for (const auto& shape : shapes) {
    const std::uint64_t estimated =
        store.estimate_blocks(shape.ids, shape.range);
    const auto before = store.block_cache()->counters();
    const auto runs = store.query_many(shape.ids, shape.range);
    benchmark::DoNotOptimize(runs.size());
    const auto after = store.block_cache()->counters();
    const std::uint64_t measured =
        (after.hits + after.misses) - (before.hits + before.misses);
    const bool match = measured == estimated;
    exact = exact && match;
    t.add_row({shape.name, std::to_string(estimated),
               std::to_string(measured), match ? "exact" : "MISMATCH"});
  }
  std::printf("admission-price calibration (blocks touched):\n%s\n",
              t.str().c_str());
  return exact;
}

struct ClassTally {
  std::mutex mu;
  std::array<std::uint64_t, qos::kClassCount> sent{};
  std::array<std::uint64_t, qos::kClassCount> ok{};
  std::array<std::uint64_t, qos::kClassCount> shed{};
  std::array<std::vector<double>, qos::kClassCount> latencies_ms;
};

void print_artifact() {
  bench::print_header(
      "Q1  Multi-tenant QoS (src/qos)",
      "Operating a shared telemetry service for a whole lab: overload "
      "from one tenant's batch replays must not take down another "
      "tenant's dashboards — admission pricing, fair queues and an "
      "autoscaled pool keep interactive p99 flat at 10x offered load");

  g_store_dir =
      (fs::temp_directory_path() / "exawatt_bench_qos" / "store").string();
  build_store(g_store_dir);
  store::StoreOptions options;
  options.segment_events = 1 << 13;
  const auto store = store::Store::open(g_store_dir, options);
  std::printf("store: %u nodes x %lld s -> %zu segments, %llu events\n\n",
              kNodes, static_cast<long long>(kSpan), store.sealed_segments(),
              static_cast<unsigned long long>(store.total_events()));

  // --- calibration: the pricing input must be exact, not approximate.
  const bool calibration_exact = calibration_table(store);

  // The served profile: block decode calibrated from BENCH_codec.json
  // when a prior bench run left one (reproduce_all.sh runs the codec
  // bench first), defaults otherwise. The worker ceiling tracks the
  // hardware: on a 1-core host, eight CPU-bound workers add run-queue
  // contention, not capacity, and the contention lands on exactly the
  // interactive latency this artifact measures.
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t max_workers = std::clamp<std::size_t>(2 * hw, 2, 8);
  server::ServiceOptions sopts;
  sopts.queue_limit = 256;
  sopts.qos.emplace();
  sopts.qos->cost = qos::CostProfile::from_bench_json("BENCH_codec.json");
  sopts.qos->pool.autoscaler.min_workers = 2;
  sopts.qos->pool.autoscaler.max_workers = max_workers;
  server::QueryService service(store, sopts);
  std::printf("pool: 2..%zu workers (%zu hardware threads)\n", max_workers,
              hw);

  // --- unloaded baseline: sequential interactive probes, no contention.
  util::Rng rng(7);
  std::vector<double> unloaded_ms;
  for (int i = 0; i < 300; ++i) {
    const auto t0 = SteadyClock::now();
    const auto resp = call_sync(service, interactive_probe(rng));
    if (resp.status != server::wire::Status::kOk) continue;
    unloaded_ms.push_back(
        std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
            .count());
  }
  const double unloaded_p99 = percentile(unloaded_ms, 0.99);
  std::printf("unloaded interactive p99: %.3f ms (%zu probes)\n",
              unloaded_p99, unloaded_ms.size());

  // --- capacity: closed-loop mixed load at pool width, served rate.
  std::atomic<std::size_t> next{0};
  constexpr std::size_t kCapacityProbes = 480;
  const auto cap0 = SteadyClock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < max_workers; ++w) {
      threads.emplace_back([&, w] {
        util::Rng wrng(100 + w);
        while (next.fetch_add(1) < kCapacityProbes) {
          const auto resp = call_sync(service, mixed_request(wrng));
          benchmark::DoNotOptimize(resp.status);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const double cap_s =
      std::chrono::duration<double>(SteadyClock::now() - cap0).count();
  const double capacity = static_cast<double>(kCapacityProbes) / cap_s;
  std::printf("closed-loop capacity: %.0f req/s (mixed methods, %u "
              "tenants)\n",
              capacity, kTenants);

  // --- overload: open-loop Poisson flood at 10x capacity for 2.5 s.
  // Latency is measured from the *scheduled* arrival, so a service that
  // silently queues behind schedule cannot hide it.
  const double offered = 10.0 * capacity;
  const double seconds = 2.5;
  constexpr unsigned kProducers = 4;
  ClassTally tally;
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  {
    std::vector<std::thread> producers;
    const auto t_begin = SteadyClock::now();
    for (unsigned p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        util::Rng prng(900 + p);
        const double rate = offered / kProducers;
        const auto t_end =
            t_begin + std::chrono::duration_cast<SteadyClock::duration>(
                          std::chrono::duration<double>(seconds));
        auto scheduled = t_begin;
        while (true) {
          const double gap_s =
              -std::log(std::max(prng.uniform(), 1e-12)) / rate;
          scheduled += std::chrono::duration_cast<SteadyClock::duration>(
              std::chrono::duration<double>(gap_s));
          if (scheduled >= t_end) break;
          std::this_thread::sleep_until(scheduled);
          auto req = mixed_request(prng);
          const auto cls = static_cast<std::size_t>(
              qos::class_from_wire(req.qos_class));
          {
            std::lock_guard lk(tally.mu);
            ++tally.sent[cls];
          }
          submitted.fetch_add(1);
          const auto arrival = scheduled;
          service.submit(
              std::move(req), server::make_cancel_token(), nullptr,
              [&, cls, arrival](server::wire::Response&& resp) {
                const double ms = std::chrono::duration<double, std::milli>(
                                      SteadyClock::now() - arrival)
                                      .count();
                {
                  std::lock_guard lk(tally.mu);
                  if (resp.status == server::wire::Status::kOk) {
                    ++tally.ok[cls];
                    tally.latencies_ms[cls].push_back(ms);
                  } else if (resp.status ==
                             server::wire::Status::kResourceExhausted) {
                    ++tally.shed[cls];
                  }
                }
                completed.fetch_add(1);
              });
        }
      });
    }
    for (auto& th : producers) th.join();
  }
  while (completed.load() < submitted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  util::TextTable t({"class", "sent", "ok", "shed", "p50 ms", "p99 ms"});
  for (std::size_t c = 0; c < qos::kClassCount; ++c) {
    t.add_row({qos::class_name(static_cast<qos::Class>(c)),
               std::to_string(tally.sent[c]), std::to_string(tally.ok[c]),
               std::to_string(tally.shed[c]),
               util::fmt_double(percentile(tally.latencies_ms[c], 0.5), 3),
               util::fmt_double(percentile(tally.latencies_ms[c], 0.99),
                                3)});
  }
  const auto m = service.metrics();
  std::printf("overload: offered %.0f req/s (10.0x) for %.1f s, %llu "
              "submitted\n%s",
              offered, seconds,
              static_cast<unsigned long long>(submitted.load()),
              t.str().c_str());
  std::printf("pool grew to %llu worker(s); service shed %llu total\n\n",
              static_cast<unsigned long long>(m.qos_workers),
              static_cast<unsigned long long>(m.shed));

  const double overload_p99 = percentile(tally.latencies_ms[0], 0.99);
  const std::uint64_t batch_ok = tally.ok[2];
  const std::uint64_t total_shed = m.shed;
  // The promise is "dashboards stay interactive", not a microbenchmark
  // race: an unloaded probe finishes in tens of microseconds, and no
  // scheduler can hold 2x that while every core runs saturated with
  // batch decodes — p99 wake-up latency alone is milliseconds of
  // run-queue jitter. So the 2x ratio gate carries an absolute floor of
  // one UI frame (25 ms): the ratio governs once baselines are
  // themselves frame-scale, the floor keeps sub-millisecond baselines
  // honest instead of flaky. The per-class table above shows the real
  // differentiation — normal/batch p99 under the same flood runs an
  // order of magnitude higher.
  const double p99_bound = std::max(2.0 * unloaded_p99, 25.0);
  const bool gate_p99 = overload_p99 <= p99_bound;
  const bool gate_batch = batch_ok > 0;
  const bool gate_shed = total_shed > 0;  // the overload must be real
  const bool met = gate_p99 && gate_batch && gate_shed && calibration_exact;
  std::printf("interactive p99 under 10x overload: %.3f ms vs %.3f ms "
              "unloaded (bound %.3f ms) -- %s\n",
              overload_p99, unloaded_p99, p99_bound,
              gate_p99 ? "ok" : "VIOLATED");
  std::printf("batch throughput under overload: %llu served -- %s\n",
              static_cast<unsigned long long>(batch_ok),
              gate_batch ? "ok" : "STARVED");
  std::printf("qos overload gate: %s (p99 %s, batch %s, shed %llu, "
              "calibration %s)\n\n",
              met ? "MET" : "NOT MET", gate_p99 ? "ok" : "violated",
              gate_batch ? "flowing" : "starved",
              static_cast<unsigned long long>(total_shed),
              calibration_exact ? "exact" : "MISMATCH");

  bench::JsonObject json;
  json.add("nodes", static_cast<std::uint64_t>(kNodes))
      .add("tenants", static_cast<std::uint64_t>(kTenants))
      .add("capacity_rps", capacity)
      .add("offered_rps", offered)
      .add("unloaded_interactive_p99_ms", unloaded_p99)
      .add("overload_interactive_p99_ms", overload_p99)
      .add("p99_bound_ms", p99_bound)
      .add("batch_served", batch_ok)
      .add("total_shed", total_shed)
      .add("qos_workers", m.qos_workers)
      .add("block_decode_us", sopts.qos->cost.block_decode_us)
      .add("calibration_exact", calibration_exact)
      .add("gate_met", met);
  json.write("BENCH_qos.json");
}

// ------------------------------------------------------------ kernels

void BM_cost_price(benchmark::State& state) {
  store::StoreOptions options;
  options.segment_events = 1 << 13;
  const auto store = store::Store::open(g_store_dir, options);
  const qos::CostModel model(qos::CostProfile{},
                             qos::store_block_counter(store));
  server::wire::Request req;
  req.method = server::wire::Method::kClusterSum;
  req.nodes = all_nodes();
  req.channel = power_channel();
  req.range = {0, kSpan};
  req.window = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.price(req));
  }
}
BENCHMARK(BM_cost_price);

void BM_scheduler_push_pop(benchmark::State& state) {
  qos::Scheduler sched;
  std::int64_t now = 0;
  std::uint64_t tenant = 0;
  for (auto _ : state) {
    qos::Item item;
    item.cls = static_cast<qos::Class>(tenant % qos::kClassCount);
    item.tenant = tenant++ % 4;
    item.cost_us = 500;
    benchmark::DoNotOptimize(sched.push(std::move(item), now).admitted);
    benchmark::DoNotOptimize(sched.pop(now).has_value());
    ++now;
  }
}
BENCHMARK(BM_scheduler_push_pop);

void BM_scheduler_shed_decision(benchmark::State& state) {
  // Worst case: every push scans a full queue for the shed victim.
  qos::SchedulerOptions opts;
  opts.max_queue = 64;
  qos::Scheduler sched(opts);
  for (std::size_t i = 0; i < opts.max_queue; ++i) {
    qos::Item item;
    item.cls = qos::Class::kNormal;
    item.tenant = i % 4;
    item.cost_us = 100;
    (void)sched.push(std::move(item), 0);
  }
  for (auto _ : state) {
    qos::Item item;
    item.cls = qos::Class::kBatch;  // always the victim itself
    item.cost_us = 1'000'000;
    auto r = sched.push(std::move(item), 0);
    benchmark::DoNotOptimize(r.admitted);
  }
}
BENCHMARK(BM_scheduler_shed_decision);

void BM_autoscaler_decide(benchmark::State& state) {
  qos::AutoScalerOptions opts;
  opts.min_workers = 1;
  opts.max_workers = 16;
  qos::AutoScaler scaler(opts);
  qos::ScaleSignals s;
  s.queued = 3;
  s.oldest_wait_us = 1'000;
  s.workers = 4;
  s.busy = 4;
  for (auto _ : state) {
    s.now_us += 100;
    benchmark::DoNotOptimize(scaler.decide(s));
  }
}
BENCHMARK(BM_autoscaler_decide);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
