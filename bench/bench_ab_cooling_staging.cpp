// AB2 — Ablation: cooling-capacity staging parameters (paper §9:
// "the higher PUE experienced on the high-magnitude falling edges
// revealed potential parameter tunings ... to the control system that
// stages and de-stages cooling capacity"). Sweep the de-staging time
// constant and measure summer mean PUE and the post-falling-edge PUE
// overshoot; also measure the power->cooling response lag directly with
// cross-correlation (stats::estimate_lag).

#include <cmath>

#include "bench_common.hpp"
#include "core/snapshots.hpp"
#include "stats/xcorr.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

struct Outcome {
  double tau_down_s = 0.0;
  double mean_pue = 0.0;
  double fall_overshoot = 0.0;  ///< mean PUE excess 0-3 min after falls
  double lag_s = 0.0;           ///< measured power->tons response lag
};

Outcome run_with_tau(core::Simulation& sim, const ts::Frame& cluster,
                     double tau_down) {
  facility::CepOptions options;
  options.cooling.stage_down_tau_s = tau_down;
  options.cooling.pump_power_w *= sim.scale().fraction();
  options.cooling.loop_w_per_c *= sim.scale().fraction();
  const ts::Frame cep = facility::simulate_cep(cluster, options);

  Outcome o;
  o.tau_down_s = tau_down;
  const ts::Series& pue = cep.at("pue");
  const ts::Series& power = cluster.at("input_power_w");
  double acc = 0.0;
  for (std::size_t i = 0; i < pue.size(); ++i) acc += pue[i];
  o.mean_pue = acc / static_cast<double>(pue.size());

  // Falling-edge PUE overshoot.
  core::SnapshotOptions snap;
  snap.edges.per_node_threshold_w = 100.0;
  const auto falls = core::collect_edge_sets(
      power, static_cast<double>(sim.scale().nodes), /*rising=*/false, snap);
  double overshoot = 0.0;
  std::size_t n = 0;
  for (const auto& set : falls) {
    const auto band = core::superimpose_column(pue, set, snap);
    // Compare PUE in the 3 minutes after the fall vs 1 minute before.
    double after = 0.0;
    for (std::size_t i = 7; i < 25; ++i) after += band.mean[i];
    after /= 18.0;
    overshoot += (after - band.mean[0]) * static_cast<double>(set.at.size());
    n += set.at.size();
  }
  if (n > 0) o.fall_overshoot = overshoot / static_cast<double>(n);

  // Direct lag measurement power -> total tons.
  std::vector<double> tons(cluster.rows());
  for (std::size_t i = 0; i < tons.size(); ++i) {
    tons[i] = cep.at("tower_tons")[i] + cep.at("chiller_tons")[i];
  }
  const auto lag =
      stats::estimate_lag(power.values(), tons, 30);  // +/- 300 s
  o.lag_s = static_cast<double>(lag.lag) * static_cast<double>(cluster.dt());
  return o;
}

void print_artifact() {
  bench::print_header(
      "AB2  Cooling staging ablation (paper Section 9)",
      "slower de-staging wastes cooling after falling edges (PUE "
      "overshoot); the plant responds ~1 minute behind the load");

  core::SimulationConfig config = bench::standard_config(
      machine::SummitSpec::kNodes, 2 * util::kWeek, 210 * util::kDay);
  core::Simulation sim(config);
  const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 10, .subsamples = 1});

  util::TextTable t({"tau_down (s)", "summer mean PUE",
                     "falling-edge PUE overshoot", "measured lag (s)"});
  util::CsvWriter csv("ab_cooling_staging.csv",
                      {"tau_down_s", "mean_pue", "fall_overshoot", "lag_s"});
  for (double tau : {55.0, 170.0, 400.0, 900.0}) {
    const Outcome o = run_with_tau(sim, cluster, tau);
    t.add_row({util::fmt_double(o.tau_down_s, 0),
               util::fmt_double(o.mean_pue, 4),
               util::fmt_double(o.fall_overshoot, 4),
               util::fmt_double(o.lag_s, 0)});
    csv.add_row({o.tau_down_s, o.mean_pue, o.fall_overshoot, o.lag_s});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("[shape] summer mean PUE grows monotonically with the "
              "de-staging tau (capacity lingers after load drops — the "
              "paper's falling-edge inefficiency); the measured "
              "power->cooling lag sits near the ~60 s return-sensor delay "
              "and stretches as staging slows.\n\n");
}

void BM_lag_estimation(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(static_cast<double>(i) * 0.02) + 0.2 * rng.normal();
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = (i >= 6 ? x[i - 6] : 0.0) + 0.2 * rng.normal();
  }
  for (auto _ : state) {
    auto lag = stats::estimate_lag(x, y, 30);
    benchmark::DoNotOptimize(lag.lag);
  }
}
BENCHMARK(BM_lag_estimation);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
