// F10 — Power consumption dynamics (paper Fig. 10): per-job rising/
// falling edge counts and durations (868 W/node per 10 s step rule), and
// the FFT of the differenced job power series (dominant frequency and
// amplitude per job). Shape targets: the large majority of jobs (~97%)
// have no edges; class 4 has the most edges with the shortest durations;
// class-1 edges are fewer but sustained (tail beyond 200 min); ~0.005 Hz
// (200 s) is a common dominant frequency across classes; amplitudes skew
// low with structure toward high values.

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "core/edges.hpp"
#include "core/spectral.hpp"
#include "power/job_power.hpp"
#include "stats/ecdf.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

struct PerJobDynamics {
  int cls = 5;
  std::size_t edges = 0;
  std::vector<double> durations_min;
  core::JobSpectrum spectrum;
};

std::vector<PerJobDynamics> analyze(const std::vector<workload::Job>& jobs) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].start >= 0 && jobs[i].end > jobs[i].start) idx.push_back(i);
  }
  return util::parallel_map(idx.size(), [&](std::size_t k) {
    const workload::Job& j = jobs[idx[k]];
    PerJobDynamics d;
    d.cls = j.sched_class;
    const ts::Series series = power::job_power_series(j, 10);
    const auto stats = core::job_edge_stats(
        series, static_cast<double>(j.node_count));
    d.edges = stats.edges;
    d.durations_min = stats.durations_min;
    d.spectrum = core::job_spectrum(series);
    return d;
  });
}

void print_artifact() {
  bench::print_header(
      "F10  Edge counts/durations + FFT spectra (Figure 10)",
      "~96.9% of jobs edge-free; class 4 most/shortest edges; class 1 "
      "sustained edges; 0.005 Hz common dominant frequency");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 4 * util::kWeek);
  core::Simulation sim(config);
  const auto dynamics = analyze(sim.jobs());

  std::size_t with_edges = 0;
  for (const auto& d : dynamics) {
    if (d.edges > 0) ++with_edges;
  }
  std::printf("jobs analyzed: %zu; with >= 1 edge: %zu (%.1f%%; paper: "
              "3.1%%)\n\n",
              dynamics.size(), with_edges,
              100.0 * static_cast<double>(with_edges) /
                  static_cast<double>(dynamics.size()));

  util::TextTable t({"class", "jobs w/ edges", "edges p50", "edges p95",
                     "dur p50 (min)", "dur p95 (min)"});
  util::CsvWriter csv("f10_edges_fft.csv",
                      {"class", "edges", "duration_min", "freq_hz", "amp_w"});
  for (int cls = 1; cls <= 5; ++cls) {
    std::vector<double> counts;
    std::vector<double> durations;
    for (const auto& d : dynamics) {
      if (d.cls != cls || d.edges == 0) continue;
      counts.push_back(static_cast<double>(d.edges));
      for (double m : d.durations_min) durations.push_back(m);
    }
    if (counts.empty()) {
      t.add_row({std::to_string(cls), "0", "-", "-", "-", "-"});
      continue;
    }
    t.add_row({std::to_string(cls), std::to_string(counts.size()),
               util::fmt_double(stats::quantile(counts, 0.5), 1),
               util::fmt_double(stats::quantile(counts, 0.95), 1),
               util::fmt_double(stats::quantile(durations, 0.5), 1),
               util::fmt_double(stats::quantile(durations, 0.95), 1)});
  }
  std::printf("%s\n", t.str().c_str());

  // FFT: dominant frequency histogram per class.
  util::TextTable ff({"class", "freq p50 (Hz)", "share in 4-6 mHz",
                      "amp p50 (kW)", "amp p95 (kW)"});
  for (int cls = 1; cls <= 5; ++cls) {
    std::vector<double> freqs;
    std::vector<double> amps;
    std::size_t near_200s = 0;
    for (const auto& d : dynamics) {
      if (d.cls != cls || !d.spectrum.valid) continue;
      freqs.push_back(d.spectrum.frequency_hz);
      amps.push_back(d.spectrum.amplitude_w);
      if (d.spectrum.frequency_hz >= 0.004 && d.spectrum.frequency_hz <= 0.006) {
        ++near_200s;
      }
      csv.add_row({static_cast<double>(cls), 0.0, 0.0,
                   d.spectrum.frequency_hz, d.spectrum.amplitude_w});
    }
    if (freqs.empty()) continue;
    ff.add_row({std::to_string(cls),
                util::fmt_double(stats::quantile(freqs, 0.5), 4),
                util::fmt_double(100.0 * static_cast<double>(near_200s) /
                                     static_cast<double>(freqs.size()),
                                 1) + "%",
                util::fmt_double(stats::quantile(amps, 0.5) / 1e3, 1),
                util::fmt_double(stats::quantile(amps, 0.95) / 1e3, 1)});
  }
  std::printf("%s\n", ff.str().c_str());
}

void BM_job_series_and_edges(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kWeek);
  static core::Simulation sim(config);
  static const workload::Job* big = [] {
    const workload::Job* best = nullptr;
    for (const auto& j : sim.jobs()) {
      if (j.start >= 0 &&
          (best == nullptr || j.node_hours() > best->node_hours())) {
        best = &j;
      }
    }
    return best;
  }();
  for (auto _ : state) {
    const ts::Series s = power::job_power_series(*big, 10);
    auto e = core::job_edge_stats(s, static_cast<double>(big->node_count));
    benchmark::DoNotOptimize(e.edges);
  }
}
BENCHMARK(BM_job_series_and_edges);

void BM_fft_bluestein_1000(benchmark::State& state) {
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.05 * static_cast<double>(i)) +
           0.3 * std::sin(0.31 * static_cast<double>(i));
  }
  for (auto _ : state) {
    auto dom = stats::dominant_frequency(x, 10.0);
    benchmark::DoNotOptimize(dom.amplitude);
  }
}
BENCHMARK(BM_fft_bluestein_1000);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
