// F5 — Summit power and energy trends over the year (paper Fig. 5):
// weekly boxplots of cluster power and PUE, the seasonal PUE split
// (winter ~1.11, summer ~1.22, Feb maintenance ~1.3), the 2.5 MW idle
// floor and ~13 MW peak envelope, and chilled water active ~20% of year.

#include "bench_common.hpp"
#include "core/pue_analysis.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F5  Year 2020 power/energy/PUE trends (Figure 5)",
      "avg power 5-6 MW; idle 2.5 MW; peak 13 MW envelope; PUE 1.11 avg, "
      "1.22 summer, 1.3 Feb maintenance; chillers ~20% of the year");

  // Job counts do not scale with machine size, so the full machine is no
  // more expensive than a reduced one: run the paper's real scale.
  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);

  const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 600, .subsamples = 3});
  const ts::Frame cep = sim.cep_frame(cluster);
  const core::YearTrend trend = core::year_trend(cluster, cep);

  std::printf("jobs: %zu submitted, %zu scheduled, utilization %.1f%%\n\n",
              sim.jobs().size(), sim.scheduler_stats().scheduled,
              100.0 * sim.scheduler_stats().utilization);

  util::TextTable t({"week", "power med (MW)", "p10-p90 box", "max (MW)",
                     "PUE med", "chiller share"});
  for (std::size_t w = 0; w < trend.weeks.size(); w += 4) {
    const auto& s = trend.weeks[w];
    t.add_row({std::to_string(s.week), util::fmt_double(s.power_mw.median, 2),
               util::fmt_double(s.power_mw.q1, 2) + "-" +
                   util::fmt_double(s.power_mw.q3, 2),
               util::fmt_double(s.max_power_mw, 2),
               util::fmt_double(s.pue.median, 3),
               util::fmt_double(100.0 * s.chiller_share, 0) + "%"});
  }
  std::printf("%s\n", t.str().c_str());

  util::TextTable h({"headline", "measured", "paper"});
  h.add_row({"mean power", util::fmt_double(trend.mean_power_mw, 2) + " MW",
             "5-6 MW"});
  h.add_row({"mean PUE", util::fmt_double(trend.mean_pue, 3), "1.11"});
  h.add_row({"winter mean PUE", util::fmt_double(trend.winter_mean_pue, 3),
             "~1.11"});
  h.add_row({"summer mean PUE", util::fmt_double(trend.summer_mean_pue, 3),
             "~1.22"});
  h.add_row({"max PUE (Feb maint.)", util::fmt_double(trend.max_pue, 2),
             "~1.3"});
  h.add_row({"chiller-active weeks",
             util::fmt_double(100.0 * trend.chiller_weeks_fraction, 0) + "%",
             "~20-30% of the year"});
  std::printf("%s\n", h.str().c_str());

  util::CsvWriter csv("f5_year_trend.csv",
                      {"week", "power_q1_mw", "power_med_mw", "power_q3_mw",
                       "power_max_mw", "pue_med", "chiller_share"});
  for (const auto& s : trend.weeks) {
    csv.add_row({static_cast<double>(s.week), s.power_mw.q1, s.power_mw.median,
                 s.power_mw.q3, s.max_power_mw, s.pue.median,
                 s.chiller_share});
  }
}

void BM_cluster_year_frame(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  static core::Simulation sim(config);
  (void)sim.jobs();
  for (auto _ : state) {
    auto frame = sim.cluster_frame({0, 4 * util::kWeek},
                                   {.dt = 600, .subsamples = 3});
    benchmark::DoNotOptimize(frame.rows());
  }
}
BENCHMARK(BM_cluster_year_frame);

void BM_cep_simulation(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  static core::Simulation sim(config);
  static const ts::Frame cluster =
      sim.cluster_frame({0, 8 * util::kWeek}, {.dt = 600, .subsamples = 1});
  for (auto _ : state) {
    auto cep = sim.cep_frame(cluster);
    benchmark::DoNotOptimize(cep.rows());
  }
}
BENCHMARK(BM_cep_simulation);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
