#pragma once

// Shared harness glue for the figure/table benches: every bench binary
// first *regenerates its artifact* (prints the same rows/series the paper
// reports, plus a CSV dump next to the binary), then runs google-benchmark
// timings of the kernels involved. EXPERIMENTS.md records paper-vs-
// measured for each artifact.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/simulation.hpp"

namespace exawatt::bench {

/// Environment knob: EXAWATT_BENCH_SCALE=full promotes benches from their
/// fast default scale to the paper's 4,626-node machine where supported.
inline bool full_scale_requested() {
  const char* env = std::getenv("EXAWATT_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

/// Standard simulation used by most figure benches: a multi-week window
/// at a configurable machine scale, seeded for exact reproducibility.
inline core::SimulationConfig standard_config(int nodes,
                                              util::TimeSec duration,
                                              util::TimeSec start = 0) {
  core::SimulationConfig config;
  config.scale = nodes >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(nodes);
  config.seed = 2020;
  config.range = {start, start + duration};
  return config;
}

inline void print_header(const char* artifact, const char* claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("paper: %s\n", claim);
  std::printf("==================================================================\n");
}

}  // namespace exawatt::bench
