#pragma once

// Shared harness glue for the figure/table benches: every bench binary
// first *regenerates its artifact* (prints the same rows/series the paper
// reports, plus a CSV dump next to the binary), then runs google-benchmark
// timings of the kernels involved. EXPERIMENTS.md records paper-vs-
// measured for each artifact.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "core/simulation.hpp"

namespace exawatt::bench {

/// Environment knob: EXAWATT_BENCH_SCALE=full promotes benches from their
/// fast default scale to the paper's 4,626-node machine where supported.
inline bool full_scale_requested() {
  const char* env = std::getenv("EXAWATT_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

/// Standard simulation used by most figure benches: a multi-week window
/// at a configurable machine scale, seeded for exact reproducibility.
inline core::SimulationConfig standard_config(int nodes,
                                              util::TimeSec duration,
                                              util::TimeSec start = 0) {
  core::SimulationConfig config;
  config.scale = nodes >= machine::SummitSpec::kNodes
                     ? machine::MachineScale::full()
                     : machine::MachineScale::small(nodes);
  config.seed = 2020;
  config.range = {start, start + duration};
  return config;
}

/// Minimal machine-readable artifact: a flat JSON object of the headline
/// numbers a bench prints, written next to wherever the harness runs it
/// (scripts/reproduce_all.sh collects BENCH_*.json from the repo root).
/// Keys keep insertion order; numbers use enough digits to round-trip.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& add(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& add(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonObject& add(const std::string& key, const std::string& v) {
    return raw(key, "\"" + v + "\"");
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{%s\n}\n", body_.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  JsonObject& raw(const std::string& key, const std::string& value) {
    body_ += body_.empty() ? "\n" : ",\n";
    body_ += "  \"" + key + "\": " + value;
    return *this;
  }

  std::string body_;
};

inline void print_header(const char* artifact, const char* claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("paper: %s\n", claim);
  std::printf("==================================================================\n");
}

}  // namespace exawatt::bench
