// F16 — Failure counts per GPU slot placement (paper Fig. 16): for page
// retirement events, double-bit errors, microcontroller warnings and
// fallen-off-the-bus, count failures by the offending GPU's slot (0-5).
// Shape targets: slot 0 elevated (single-GPU jobs); NOT an increasing
// ramp along the coolant order (the "second-hand water" hypothesis is
// rejected); DBE/page-retirement bump at slot 4; off-the-bus elevated on
// the socket-1 slots.

#include "bench_common.hpp"
#include "core/failure_analysis.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "F16  Failure counts per GPU slot (Figure 16)",
      "slot 0 elevated; no coolant-order ramp; slot-4 bump for DBE & page "
      "retirement events; off-the-bus high on socket-1 slots");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  const auto& log = sim.failure_log();

  const failures::XidType kTypes[] = {
      failures::XidType::kPageRetirementEvent,
      failures::XidType::kDoubleBitError,
      failures::XidType::kMicrocontrollerWarning,
      failures::XidType::kFallenOffBus,
  };
  util::TextTable t({"type", "slot0", "slot1", "slot2", "slot3", "slot4",
                     "slot5"});
  util::CsvWriter csv("f16_slot_placement.csv",
                      {"type", "slot", "count"});
  for (const auto type : kTypes) {
    const auto slots = core::slot_placement(log, type);
    std::vector<std::string> row = {failures::xid_name(type)};
    for (std::size_t s = 0; s < 6; ++s) {
      row.push_back(std::to_string(slots[s]));
      csv.add_row({static_cast<double>(type), static_cast<double>(s),
                   static_cast<double>(slots[s])});
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.str().c_str());

  // Coolant-order check across ALL types: would failures rise from
  // position 0 to 2 within a socket if pre-warmed water mattered?
  std::array<std::uint64_t, 3> by_position{};
  for (const auto& ev : log) {
    ++by_position[static_cast<std::size_t>(ev.slot % 3)];
  }
  std::printf("[shape] all-type counts by coolant position 0/1/2: "
              "%llu / %llu / %llu (paper: close to the REVERSE of the "
              "overheating hypothesis)\n\n",
              static_cast<unsigned long long>(by_position[0]),
              static_cast<unsigned long long>(by_position[1]),
              static_cast<unsigned long long>(by_position[2]));

  // Figure 14's complementary spatial calculation: row / column / height
  // distributions over the healthy fleet stay flat (no environmental
  // structure), once the defect-heavy nodes are excluded.
  const machine::Topology topo(config.scale);
  const auto spatial = core::spatial_breakdown(log, topo);
  std::printf("spatial peak/mean ratios (healthy fleet): row %.2f, column "
              "%.2f, height %.2f (flat ~1.0; environmental problems would "
              "spike one axis)\n\n",
              spatial.row_peak_ratio, spatial.column_peak_ratio,
              spatial.height_peak_ratio);
}

void BM_slot_placement(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 8 * util::kWeek);
  static core::Simulation sim(config);
  static const auto& log = sim.failure_log();
  for (auto _ : state) {
    auto slots =
        core::slot_placement(log, failures::XidType::kDoubleBitError);
    benchmark::DoNotOptimize(slots[0]);
  }
}
BENCHMARK(BM_slot_placement);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
