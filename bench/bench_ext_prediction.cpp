// EXT1 — Extension: fingerprint-based job power prediction (paper §9).
// Train per-(project, class) power portraits on three weeks of history
// and predict the next week's job mean/max power before each job runs.
// Success criterion from the paper's sketch: portrait-based predictions
// beat the naive per-class baseline, and uncertainty shrinks with
// portrait depth.

#include "bench_common.hpp"
#include "core/job_features.hpp"
#include "core/prediction.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "EXT1  Queued-job power prediction (paper Section 9)",
      "power portraits per (project, class) predict queued-job power; "
      "uncertainty converges with history depth");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, 4 * util::kWeek);
  core::Simulation sim(config);
  const auto all = core::summarize_jobs(sim.jobs());

  // Temporal split: first three weeks train, last week tests. Summaries
  // lack times, so split by job id order (ids are submit-ordered).
  std::vector<power::JobPowerSummary> train;
  std::vector<power::JobPowerSummary> test;
  const workload::JobId split_id =
      all[all.size() * 3 / 4].id;
  for (const auto& s : all) {
    (s.id < split_id ? train : test).push_back(s);
  }
  const core::PowerPredictor predictor(train);
  const auto eval = predictor.evaluate(test);

  util::TextTable t({"metric", "portrait predictor", "per-class baseline"});
  t.add_row({"MAPE mean power",
             util::fmt_double(100.0 * eval.mape_mean, 1) + "%",
             util::fmt_double(100.0 * eval.baseline_mape_mean, 1) + "%"});
  t.add_row({"MAPE max power",
             util::fmt_double(100.0 * eval.mape_max, 1) + "%",
             util::fmt_double(100.0 * eval.baseline_mape_max, 1) + "%"});
  t.add_row({"test jobs", std::to_string(eval.jobs), "-"});
  t.add_row({"portraits", std::to_string(predictor.portraits()), "-"});
  std::printf("%s\n", t.str().c_str());

  // Uncertainty convergence: portrait depth vs relative sigma.
  util::TextTable u({"portrait depth", "mean uncertainty", "predictions"});
  std::map<int, std::pair<double, int>> by_depth;
  for (const auto& s : test) {
    const auto p = predictor.predict(s.project, s.sched_class, s.node_count);
    const int bucket = p.portrait_jobs == 0      ? 0
                       : p.portrait_jobs < 10    ? 1
                       : p.portrait_jobs < 100   ? 2
                                                 : 3;
    by_depth[bucket].first += p.uncertainty;
    by_depth[bucket].second += 1;
  }
  const char* kBucket[] = {"cold (0)", "1-9 jobs", "10-99 jobs",
                           "100+ jobs"};
  util::CsvWriter csv("ext_prediction.csv",
                      {"bucket", "mean_uncertainty", "count"});
  for (const auto& [bucket, acc] : by_depth) {
    if (acc.second == 0) continue;
    u.add_row({kBucket[bucket],
               util::fmt_double(acc.first / acc.second, 3),
               std::to_string(acc.second)});
    csv.add_row({static_cast<double>(bucket), acc.first / acc.second,
                 static_cast<double>(acc.second)});
  }
  std::printf("%s\n", u.str().c_str());
  std::printf("[shape] portrait MAPE < baseline MAPE; uncertainty falls "
              "with portrait depth (the paper's converging-fingerprint "
              "sketch)\n\n");
}

void BM_train_predictor(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kWeek);
  static core::Simulation sim(config);
  static const auto all = core::summarize_jobs(sim.jobs());
  for (auto _ : state) {
    core::PowerPredictor predictor(all);
    benchmark::DoNotOptimize(predictor.portraits());
  }
}
BENCHMARK(BM_train_predictor);

void BM_predict(benchmark::State& state) {
  static core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kWeek);
  static core::Simulation sim(config);
  static const auto all = core::summarize_jobs(sim.jobs());
  static const core::PowerPredictor predictor(all);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = all[i++ % all.size()];
    auto p = predictor.predict(s.project, s.sched_class, s.node_count);
    benchmark::DoNotOptimize(p.mean_power_w);
  }
}
BENCHMARK(BM_predict);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
