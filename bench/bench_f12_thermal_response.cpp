// F12 — Component temperatures and cooling-system response around summer
// edges (paper Fig. 12): cluster power/PUE, GPU mean/max and CPU mean/max
// temperatures, MTW supply/return, and tower vs chiller tons, aligned at
// 4 MW / 7 MW rising and 7 MW falling edges. Shape targets: GPU temps
// tightly track power (max keeps rising after the edge); CPU temps stay
// comparatively flat; tons/return-temperature respond with ~1 min delay;
// attenuation on falling edges is slower than the rise response.

#include "bench_common.hpp"
#include "core/snapshots.hpp"
#include "core/thermal_response.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

core::SnapshotOptions snapshot_options() {
  core::SnapshotOptions opts;
  opts.edges.per_node_threshold_w = 100.0;
  opts.after_s = 240;
  return opts;
}

void summarize_set(const char* label, const core::EdgeSnapshotSet& set,
                   const ts::Series& power, const ts::Frame& cep,
                   const ts::Frame& temps, util::CsvWriter& csv) {
  const auto opts = snapshot_options();
  const auto bp = core::superimpose_column(power, set, opts);
  const auto gpu_mean =
      core::superimpose_column(temps.at("gpu_mean_c"), set, opts);
  const auto gpu_max =
      core::superimpose_column(temps.at("gpu_max_c"), set, opts);
  const auto cpu_mean =
      core::superimpose_column(temps.at("cpu_mean_c"), set, opts);
  const auto ret =
      core::superimpose_column(cep.at("mtw_return_c"), set, opts);
  const auto tower = core::superimpose_column(cep.at("tower_tons"), set, opts);
  const auto chiller =
      core::superimpose_column(cep.at("chiller_tons"), set, opts);

  std::printf("%s (%zu snapshots)\n", label, set.at.size());
  util::TextTable t({"signal", "-60s", "edge", "+60s", "+120s", "+240s"});
  auto row = [&](const char* name, const stats::SnapshotBand& b, double scale,
                 int precision) {
    const std::size_t e = 6;
    t.add_row({name, util::fmt_double(b.mean[e - 6] * scale, precision),
               util::fmt_double(b.mean[e] * scale, precision),
               util::fmt_double(b.mean[e + 6] * scale, precision),
               util::fmt_double(b.mean[e + 12] * scale, precision),
               util::fmt_double(b.mean[e + 24] * scale, precision)});
  };
  row("power (MW)", bp, 1e-6, 2);
  row("GPU mean (C)", gpu_mean, 1.0, 1);
  row("GPU max (C)", gpu_max, 1.0, 1);
  row("CPU mean (C)", cpu_mean, 1.0, 1);
  row("MTW return (C)", ret, 1.0, 1);
  row("tower (tons)", tower, 1.0, 0);
  row("chiller (tons)", chiller, 1.0, 0);
  std::printf("%s\n", t.str().c_str());

  for (std::size_t i = 0; i < bp.mean.size(); ++i) {
    csv.add_row({static_cast<double>(set.amplitude_mw),
                 set.rising ? 1.0 : 0.0,
                 static_cast<double>(static_cast<int>(i * 10) - 60),
                 bp.mean[i] / 1e6, gpu_mean.mean[i], gpu_max.mean[i],
                 cpu_mean.mean[i], ret.mean[i], tower.mean[i],
                 chiller.mean[i]});
  }
}

void print_artifact() {
  bench::print_header(
      "F12  Thermal & cooling response at edges (Figure 12)",
      "GPU temps track power (max keeps rising); CPU temps ~flat; ~1 min "
      "cooling-response delay; falling edges attenuate slower");

  core::SimulationConfig config = bench::standard_config(
      machine::SummitSpec::kNodes, 10 * util::kWeek, 205 * util::kDay);
  core::Simulation sim(config);
  const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 10, .subsamples = 1});
  const ts::Frame cep = sim.cep_frame(cluster);
  const ts::Frame temps =
      core::cluster_thermal_frame(cluster, cep, config.scale.nodes);
  const ts::Series& power = cluster.at("input_power_w");
  const double nodes = config.scale.nodes;

  util::CsvWriter csv("f12_thermal_response.csv",
                      {"mw_class", "rising", "offset_s", "power_mw",
                       "gpu_mean_c", "gpu_max_c", "cpu_mean_c",
                       "mtw_return_c", "tower_tons", "chiller_tons"});

  const auto rising =
      core::collect_edge_sets(power, nodes, true, snapshot_options());
  const auto falling =
      core::collect_edge_sets(power, nodes, false, snapshot_options());

  auto find_set = [](const std::vector<core::EdgeSnapshotSet>& sets,
                     int min_mw) -> const core::EdgeSnapshotSet* {
    const core::EdgeSnapshotSet* best = nullptr;
    for (const auto& s : sets) {
      if (s.amplitude_mw >= min_mw &&
          (best == nullptr || s.amplitude_mw < best->amplitude_mw)) {
        best = &s;
      }
    }
    return best;
  };

  if (const auto* s = find_set(rising, 4)) {
    summarize_set("4 MW rising edges", *s, power, cep, temps, csv);
  }
  if (const auto* s = find_set(rising, 6)) {
    summarize_set("large (6+ MW) rising edges", *s, power, cep, temps, csv);
  }
  if (const auto* s = find_set(falling, 4)) {
    summarize_set("large falling edges", *s, power, cep, temps, csv);
  }
  std::printf("[shape] compare tower tons at edge vs +60s (the ~1 min lag), "
              "and falling-edge attenuation vs the rise.\n\n");
}

void BM_thermal_frame_week(benchmark::State& state) {
  static core::SimulationConfig config = bench::standard_config(
      machine::SummitSpec::kNodes, util::kWeek, 205 * util::kDay);
  static core::Simulation sim(config);
  static const ts::Frame cluster =
      sim.cluster_frame(config.range, {.dt = 10, .subsamples = 1});
  static const ts::Frame cep = sim.cep_frame(cluster);
  for (auto _ : state) {
    auto temps =
        core::cluster_thermal_frame(cluster, cep, config.scale.nodes);
    benchmark::DoNotOptimize(temps.rows());
  }
}
BENCHMARK(BM_thermal_frame_week);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
