// T2 — Telemetry pipeline (paper Table 2 and §2/§3): the out-of-band
// 1 Hz collection path. Reproduces the pipeline-rate claims: ~100 metrics
// per node per second raw, sparse emit-on-change stream, lossless
// compression to a ~1 MB/s cluster-wide stream (8.5 TB/year), and mean
// propagation delay of ~2.5 s.

#include "bench_common.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/pipeline.hpp"
#include "util/text_table.hpp"
#include "workload/allocation_index.hpp"

namespace {

using namespace exawatt;

struct Setup {
  core::SimulationConfig config;
  std::unique_ptr<core::Simulation> sim;
  std::unique_ptr<workload::AllocationIndex> alloc;
  std::unique_ptr<power::FleetVariability> fleet;
  std::unique_ptr<thermal::FleetThermal> thermals;
  std::unique_ptr<machine::Topology> topo;
  std::unique_ptr<facility::MsbModel> msb;
  util::TimeRange window;
  std::vector<machine::NodeId> nodes;
};

Setup make_setup(int machine_nodes, int instrumented, util::TimeSec minutes) {
  Setup s;
  s.config = bench::standard_config(machine_nodes, util::kDay);
  s.sim = std::make_unique<core::Simulation>(s.config);
  s.window = {6 * util::kHour, 6 * util::kHour + minutes * util::kMinute};
  s.alloc = std::make_unique<workload::AllocationIndex>(
      s.sim->jobs(), s.window, s.config.scale.nodes);
  s.fleet = std::make_unique<power::FleetVariability>(s.config.scale, 11);
  s.thermals = std::make_unique<thermal::FleetThermal>(s.config.scale, 12);
  s.topo = std::make_unique<machine::Topology>(s.config.scale);
  s.msb = std::make_unique<facility::MsbModel>(*s.topo, 13);
  for (int n = 0; n < instrumented; ++n) {
    s.nodes.push_back(n);
  }
  return s;
}

void print_artifact() {
  bench::print_header(
      "T2  Telemetry pipeline rates (Table 2, Figures 2-3)",
      "460k metrics/s -> ~1 MB/s after lossless compression; 8.5 TB/yr; "
      "mean propagation delay 2.5 s (max 5 s)");

  const int kInstrumented = bench::full_scale_requested() ? 512 : 96;
  Setup s = make_setup(1024, kInstrumented, 20);
  telemetry::Pipeline pipeline(s.nodes, *s.alloc, *s.fleet, *s.thermals,
                               *s.msb);
  const telemetry::PipelineStats stats = pipeline.run(s.window);

  const double seconds = static_cast<double>(s.window.duration());
  const double nodes = static_cast<double>(s.nodes.size());
  const double events_per_node_s = static_cast<double>(stats.events) /
                                   (seconds * nodes);
  const double bytes_per_node_s =
      static_cast<double>(stats.compressed_bytes) / (seconds * nodes);
  const double full_nodes = machine::SummitSpec::kNodes;

  util::TextTable t({"quantity", "measured", "full-scale extrapolation",
                     "paper"});
  t.add_row({"raw readings", std::to_string(stats.readings),
             util::fmt_si(100.0 * full_nodes, "metrics/s", 0),
             "462,600 metrics/s raw"});
  t.add_row({"emitted events/s/node", util::fmt_double(events_per_node_s, 1),
             util::fmt_si(events_per_node_s * full_nodes, "events/s", 0),
             "~460k metrics/s"});
  t.add_row({"suppression (raw/emit)",
             util::fmt_double(stats.suppression_ratio, 2) + "x", "-", "-"});
  t.add_row({"codec ratio (vs 16B records)",
             util::fmt_double(stats.compression_ratio, 1) + "x", "-",
             "lossless, multiple stages"});
  t.add_row({"archive stream", util::fmt_si(bytes_per_node_s, "B/s/node", 2),
             util::fmt_si(bytes_per_node_s * full_nodes, "B/s", 2),
             "~1 MB/s"});
  t.add_row({"year footprint", "-",
             util::fmt_si(bytes_per_node_s * full_nodes * 365.0 * 86400.0,
                          "B", 2),
             "8.5 TB compressed"});
  t.add_row({"mean delay", util::fmt_double(stats.mean_delay_s, 2) + " s",
             "-", "2.5 s (max 5 s)"});
  std::printf("%s\n", t.str().c_str());

  // Round-trip sanity: archive query vs direct aggregation.
  const telemetry::MetricId power0 = telemetry::metric_id(
      s.nodes.front(),
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0));
  const ts::StatSeries agg =
      telemetry::aggregate_metric(pipeline.archive(), power0, s.window);
  std::printf("10 s coarsening of node0 input power: %zu windows, "
              "first mean %.0f W, last mean %.0f W\n\n",
              agg.size(), agg[0].mean, agg[agg.size() - 1].mean);
}

void BM_codec_encode(benchmark::State& state) {
  static Setup s = make_setup(256, 16, 5);
  static telemetry::Pipeline pipeline(s.nodes, *s.alloc, *s.fleet,
                                      *s.thermals, *s.msb);
  static const telemetry::PipelineStats stats = pipeline.run(s.window);
  (void)stats;
  // Re-encode a decoded day's worth of events from the archive.
  static std::vector<telemetry::MetricEvent> events = [] {
    std::vector<telemetry::MetricEvent> evs;
    for (machine::NodeId n : s.nodes) {
      const auto samples = pipeline.archive().query(
          telemetry::metric_id(
              n, telemetry::channel_of(telemetry::MetricKind::kInputPower, 0)),
          s.window);
      for (const auto& sample : samples) {
        evs.push_back({telemetry::metric_id(n, 0), sample.t,
                       static_cast<std::int32_t>(sample.value)});
      }
    }
    return evs;
  }();
  for (auto _ : state) {
    auto block = telemetry::encode_events(events);
    benchmark::DoNotOptimize(block.bytes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_codec_encode);

void BM_codec_roundtrip(benchmark::State& state) {
  std::vector<telemetry::MetricEvent> events;
  util::Rng rng(3);
  std::int32_t v = 1000;
  for (int i = 0; i < 10000; ++i) {
    v += static_cast<std::int32_t>(rng.uniform_index(21)) - 10;
    events.push_back({telemetry::metric_id(i % 16, i % 100), i / 16, v});
  }
  for (auto _ : state) {
    auto block = telemetry::encode_events(events);
    auto back = telemetry::decode_events(block);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_codec_roundtrip);

void BM_pipeline_minute(benchmark::State& state) {
  static Setup s = make_setup(256, 16, 30);
  for (auto _ : state) {
    telemetry::Pipeline pipeline(s.nodes, *s.alloc, *s.fleet, *s.thermals,
                                 *s.msb);
    const auto stats =
        pipeline.run({s.window.begin, s.window.begin + util::kMinute});
    benchmark::DoNotOptimize(stats.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.nodes.size()) * 60 *
                          100);
}
BENCHMARK(BM_pipeline_minute);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
