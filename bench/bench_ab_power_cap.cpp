// AB1 — Ablation: power-aware scheduling (paper §8 conclusion).
// The paper argues that "aggressive power and energy aware application
// optimizations and scheduling policies can have impact even on HPC
// deployments like Summit that impose no power constraints". This
// ablation quantifies the trade: sweep a cluster power budget in the
// EASY-backfill scheduler and measure peak power committed, realized
// peak, utilization, and queue wait against the uncapped baseline.

#include "bench_common.hpp"
#include "power/cluster.hpp"
#include "power/power_aware_scheduler.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace exawatt;

struct Outcome {
  double cap_mw = 0.0;
  double realized_peak_mw = 0.0;
  double committed_peak_mw = 0.0;
  double utilization = 0.0;
  double mean_wait_min = 0.0;
  std::size_t power_blocked = 0;
  std::size_t unscheduled = 0;
};

Outcome run_with_cap(double cap_w) {
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::full();
  cfg.seed = 2020;
  workload::JobGenerator gen(cfg);
  const util::TimeRange range = {0, 2 * util::kWeek};
  auto jobs = gen.generate(range);

  power::PowerAwareScheduler scheduler(cfg.scale,
                                       {.cluster_cap_w = cap_w});
  const auto stats = scheduler.run(jobs, range.end);
  const auto frame = power::cluster_power_frame(jobs, cfg.scale, range,
                                                {.dt = 60, .subsamples = 2});
  double peak = 0.0;
  const auto& p = frame.at("input_power_w");
  for (std::size_t i = 0; i < p.size(); ++i) peak = std::max(peak, p[i]);

  Outcome o;
  o.cap_mw = cap_w / 1e6;
  o.realized_peak_mw = peak / 1e6;
  o.committed_peak_mw = stats.peak_committed_w / 1e6;
  o.utilization = stats.base.utilization;
  o.mean_wait_min = stats.base.mean_wait_s / 60.0;
  o.power_blocked = stats.power_blocked;
  o.unscheduled = stats.base.unscheduled;
  return o;
}

void print_artifact() {
  bench::print_header(
      "AB1  Power-aware scheduling ablation (paper Section 8)",
      "peak shaving via a scheduler power budget; cost in wait time and "
      "utilization should stay modest until the cap bites into the mean");

  util::TextTable t({"cap (MW)", "committed peak", "realized peak",
                     "utilization", "mean wait (min)", "power-blocked",
                     "unscheduled"});
  util::CsvWriter csv("ab_power_cap.csv",
                      {"cap_mw", "realized_peak_mw", "committed_peak_mw",
                       "utilization", "mean_wait_min"});
  for (double cap_mw : {0.0, 11.0, 10.0, 9.0, 8.0, 7.0}) {
    const Outcome o = run_with_cap(cap_mw * 1e6);
    t.add_row({cap_mw > 0.0 ? util::fmt_double(cap_mw, 0) : "none",
               util::fmt_double(o.committed_peak_mw, 2),
               util::fmt_double(o.realized_peak_mw, 2),
               util::fmt_double(100.0 * o.utilization, 1) + "%",
               util::fmt_double(o.mean_wait_min, 1),
               std::to_string(o.power_blocked),
               std::to_string(o.unscheduled)});
    csv.add_row({o.cap_mw, o.realized_peak_mw, o.committed_peak_mw,
                 o.utilization, o.mean_wait_min});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "[shape] realized peak tracks the cap almost exactly (predictable "
      "facility load, the paper's stated opportunity); the cost shows up "
      "as blocked starts, lower utilization and starved leadership jobs "
      "(unscheduled column), not as mean wait — small jobs keep "
      "flowing.\n\n");
}

void BM_power_aware_schedule(benchmark::State& state) {
  workload::WorkloadConfig cfg;
  cfg.scale = machine::MachineScale::full();
  cfg.seed = 2020;
  workload::JobGenerator gen(cfg);
  const auto base_jobs = gen.generate({0, 2 * util::kDay});
  for (auto _ : state) {
    auto jobs = base_jobs;
    power::PowerAwareScheduler scheduler(cfg.scale,
                                         {.cluster_cap_w = 9e6});
    auto stats = scheduler.run(jobs, 2 * util::kDay);
    benchmark::DoNotOptimize(stats.base.scheduled);
  }
}
BENCHMARK(BM_power_aware_schedule);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
