// EXT2 — Extension: GPU survival analysis (the Titan-lineage methodology
// behind the paper's reliability section; Ostrouchov et al., SC'20).
// Kaplan-Meier curves of time-to-first-hardware-failure for the fleet's
// GPUs, split by the defect pool and by slot; log-rank test between the
// weak pool and the healthy population.

#include "bench_common.hpp"
#include "core/gpu_survival.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

void print_artifact() {
  bench::print_header(
      "EXT2  GPU survival analysis (Ostrouchov et al. methodology)",
      "weak-pool GPUs fail decisively earlier (log-rank p ~ 0); healthy "
      "fleet survival stays near 1 over the year");

  core::SimulationConfig config =
      bench::standard_config(machine::SummitSpec::kNodes, util::kYear);
  core::Simulation sim(config);
  const auto study = core::gpu_survival_study(
      sim.failure_log(), sim.failure_generator().defect_pool(),
      config.scale.nodes, config.range);

  const stats::KaplanMeier km_all(study.all);
  const stats::KaplanMeier km_weak(study.weak_pool);
  const stats::KaplanMeier km_healthy(study.healthy);

  util::TextTable t({"population", "GPUs", "hw failures", "S(90 days)",
                     "S(1 year)"});
  auto row = [&](const char* name, const stats::KaplanMeier& km) {
    t.add_row({name, std::to_string(km.n()),
               std::to_string(km.total_events()),
               util::fmt_double(km(90.0 * util::kDay), 4),
               util::fmt_double(km(366.0 * util::kDay), 4)});
  };
  row("all GPUs", km_all);
  row("weak-pool nodes", km_weak);
  row("healthy nodes", km_healthy);
  std::printf("%s\n", t.str().c_str());
  std::printf("log-rank weak vs healthy: chi2 = %.1f, p = %.2e\n\n",
              study.weak_vs_healthy.chi_square,
              study.weak_vs_healthy.p_value);

  util::TextTable slot_t({"slot", "hw failures", "S(1 year)"});
  util::CsvWriter csv("ext_survival.csv", {"slot", "events", "s_year"});
  for (std::size_t s = 0; s < 6; ++s) {
    const stats::KaplanMeier km(study.by_slot[s]);
    slot_t.add_row({std::to_string(s), std::to_string(km.total_events()),
                    util::fmt_double(km(366.0 * util::kDay), 5)});
    csv.add_row({static_cast<double>(s),
                 static_cast<double>(km.total_events()),
                 km(366.0 * util::kDay)});
  }
  std::printf("%s", slot_t.str().c_str());
  std::printf("[shape] slot-0 survival lowest (elevated exposure, Figure "
              "16); the fleet outside the weak pool survives the year with "
              "S ~ 1\n\n");
}

void BM_kaplan_meier(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<stats::SurvivalObservation> obs;
  for (int i = 0; i < 30000; ++i) {
    const double t = rng.exponential(1.0 / 1000.0);
    obs.push_back({std::min(t, 2000.0), t < 2000.0});
  }
  for (auto _ : state) {
    stats::KaplanMeier km(obs);
    benchmark::DoNotOptimize(km.median());
  }
}
BENCHMARK(BM_kaplan_meier);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
