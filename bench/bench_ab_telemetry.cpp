// AB3 — Ablation: telemetry design choices (paper §3). Two studies:
//  (a) Coarsening window: the paper chose 10 s windows with
//      count/min/max/mean/std to avoid information loss. Sweep the
//      window and measure edge-detection fidelity against a 10 s
//      reference — too coarse and fast edges vanish.
//  (b) Codec stages: raw records vs delta+varint vs the full
//      delta+varint+RLE codec, on a realistic archived stream.

#include "bench_common.hpp"
#include "core/edges.hpp"
#include "power/job_power.hpp"
#include "telemetry/codec.hpp"
#include "ts/series.hpp"
#include "util/csv.hpp"
#include "util/text_table.hpp"
#include "util/varint.hpp"

namespace {

using namespace exawatt;

// --- (a) coarsening-window sweep ----------------------------------------

void window_study(core::Simulation& sim) {
  // Jobs with edges at the 10 s reference resolution.
  std::vector<const workload::Job*> swingy;
  for (const auto& j : sim.jobs()) {
    if (j.start < 0) continue;
    const auto s = power::job_power_series(j, 10);
    if (!core::detect_edges(s, static_cast<double>(j.node_count)).empty()) {
      swingy.push_back(&j);
    }
  }
  std::printf("reference: %zu jobs with >=1 edge at 10 s windows\n\n",
              swingy.size());

  util::TextTable t({"window (s)", "jobs still detected", "recall"});
  util::CsvWriter csv("ab_telemetry_window.csv", {"window_s", "recall"});
  for (util::TimeSec window : {10, 30, 60, 120, 300}) {
    std::size_t detected = 0;
    for (const workload::Job* j : swingy) {
      const auto s = power::job_power_series(*j, window);
      if (!core::detect_edges(s, static_cast<double>(j->node_count))
               .empty()) {
        ++detected;
      }
    }
    const double recall = swingy.empty()
                              ? 0.0
                              : static_cast<double>(detected) /
                                    static_cast<double>(swingy.size());
    t.add_row({std::to_string(window), std::to_string(detected),
               util::fmt_double(100.0 * recall, 1) + "%"});
    csv.add_row({static_cast<double>(window), recall});
  }
  std::printf("%s", t.str().c_str());
  std::printf("[shape] recall degrades with the window: the 10 s choice "
              "preserves the fast edges that 60 s+ windows average away\n\n");
}

// --- (b) codec-stage comparison ------------------------------------------

std::vector<telemetry::MetricEvent> realistic_stream() {
  // A smooth power channel plus a quantized temperature channel, per the
  // telemetry common case.
  util::Rng rng(99);
  std::vector<telemetry::MetricEvent> events;
  std::int32_t power = 1500;
  std::int32_t temp = 35;
  for (int t = 0; t < 30000; ++t) {
    power += static_cast<std::int32_t>(rng.uniform_index(9)) - 4;
    events.push_back({telemetry::metric_id(0, 0), t, power});
    if (rng.chance(0.08)) {  // temperature changes rarely (quantized)
      temp += rng.chance(0.5) ? 1 : -1;
      events.push_back({telemetry::metric_id(0, 9), t, temp});
    }
  }
  return events;
}

std::size_t encode_delta_varint_only(
    const std::vector<telemetry::MetricEvent>& events) {
  // Delta+zigzag+varint per field, no per-metric runs, no RLE.
  std::vector<std::uint8_t> out;
  telemetry::MetricEvent prev{0, 0, 0};
  for (const auto& ev : events) {
    util::varint_encode(util::zigzag_encode(
                            static_cast<std::int64_t>(ev.id) - prev.id),
                        out);
    util::varint_encode(util::zigzag_encode(ev.t - prev.t), out);
    util::varint_encode(util::zigzag_encode(
                            static_cast<std::int64_t>(ev.value) - prev.value),
                        out);
    prev = ev;
  }
  return out.size();
}

void codec_study() {
  const auto events = realistic_stream();
  const std::size_t raw = events.size() * 16;
  const std::size_t delta = encode_delta_varint_only(events);
  const auto full = telemetry::encode_events(events);

  util::TextTable t({"stage", "bytes", "ratio vs raw", "bytes/event"});
  auto row = [&](const char* name, std::size_t bytes) {
    t.add_row({name, std::to_string(bytes),
               util::fmt_double(static_cast<double>(raw) /
                                    static_cast<double>(bytes),
                                2) + "x",
               util::fmt_double(static_cast<double>(bytes) /
                                    static_cast<double>(events.size()),
                                2)});
  };
  row("raw (id,t,value) records", raw);
  row("delta + zigzag + varint", delta);
  row("full codec (+ per-metric runs + dt RLE)", full.bytes.size());
  std::printf("%s", t.str().c_str());
  std::printf("[shape] each stage tightens the stream; the full codec "
              "approaches ~2-3 bytes/event, the regime behind the paper's "
              "460k metrics/s -> ~1 MB/s claim\n\n");
}

void print_artifact() {
  bench::print_header(
      "AB3  Telemetry design ablations (paper Section 3)",
      "10 s coarsening preserves edge fidelity; staged lossless "
      "compression reaches ~2-3 bytes/event");
  core::SimulationConfig config =
      bench::standard_config(1024, util::kWeek);
  core::Simulation sim(config);
  window_study(sim);
  codec_study();
}

void BM_codec_full(benchmark::State& state) {
  static const auto events = realistic_stream();
  for (auto _ : state) {
    auto block = telemetry::encode_events(events);
    benchmark::DoNotOptimize(block.bytes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_codec_full);

void BM_codec_delta_only(benchmark::State& state) {
  static const auto events = realistic_stream();
  for (auto _ : state) {
    auto bytes = encode_delta_varint_only(events);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_codec_delta_only);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
