// S1 — Streaming ingest front-end (stream/ingest, DESIGN.md §2): the
// MPSC facade the live analytics engine drains. The paper's out-of-band
// path carries 100 metrics/node/s from 4,626 nodes — 462,600 samples/s —
// so the transport must sustain that rate with zero loss under the
// blocking backpressure policy and bounded memory (fixed ring capacity).
// Reports sustained samples/s and p99 producer-side push latency vs
// shard count, then google-benchmark timings of the primitives.

#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "stream/coarsen.hpp"
#include "stream/ingest.hpp"
#include "stream/quantile.hpp"
#include "util/ring_buffer.hpp"
#include "util/text_table.hpp"

namespace {

using namespace exawatt;

struct IngestRun {
  double seconds = 0.0;
  double samples_per_s = 0.0;
  double p99_push_ns = 0.0;
  std::uint64_t dropped = 0;
  std::size_t max_lag = 0;
};

IngestRun run_ingest(std::size_t shards, std::uint64_t events_per_shard) {
  stream::IngestOptions opt;
  opt.shards = shards;
  opt.shard_capacity = 1 << 14;
  opt.policy = stream::BackpressurePolicy::kBlock;
  stream::ShardedIngest ingest(opt);

  using Clock = std::chrono::steady_clock;
  std::vector<stream::P2Quantile> push_p99;
  for (std::size_t s = 0; s < shards; ++s) push_p99.emplace_back(0.99);

  const auto t0 = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < shards; ++s) {
    producers.emplace_back([&, s] {
      telemetry::Collector::Arrival a{};
      a.event.id = telemetry::metric_id(static_cast<machine::NodeId>(s), 0);
      for (std::uint64_t i = 0; i < events_per_shard; ++i) {
        a.event.t = static_cast<std::int64_t>(i / 100);
        a.event.value = static_cast<std::int32_t>(1500 + (i % 7));
        a.arrival_t = a.event.t + 2;
        // Sample every 64th push for the latency sketch: cheap enough
        // not to throttle the stream it is measuring.
        if ((i & 63) == 0) {
          const auto p0 = Clock::now();
          ingest.push(s, a);
          push_p99[s].add(static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - p0)
                  .count()));
        } else {
          ingest.push(s, a);
        }
      }
    });
  }

  const std::uint64_t expected = events_per_shard * shards;
  std::uint64_t delivered = 0;
  std::uint64_t checksum = 0;
  while (delivered < expected) {
    delivered += ingest.drain([&](const telemetry::Collector::Arrival& a) {
      checksum += static_cast<std::uint64_t>(a.event.value);
    });
  }
  for (auto& p : producers) p.join();
  benchmark::DoNotOptimize(checksum);

  IngestRun out;
  out.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.samples_per_s = static_cast<double>(expected) / out.seconds;
  for (std::size_t s = 0; s < shards; ++s) {
    out.p99_push_ns = std::max(out.p99_push_ns, push_p99[s].value());
    out.max_lag = std::max(out.max_lag, ingest.shard_stats(s).max_lag);
  }
  out.dropped = ingest.total_dropped();
  return out;
}

void print_artifact() {
  bench::print_header(
      "S1  Streaming ingest throughput (stream/ingest)",
      "the out-of-band feed is 462,600 samples/s at full scale; the "
      "engine's transport must sustain it with zero drops (blocking "
      "policy) and bounded queues");

  const std::uint64_t per_shard =
      bench::full_scale_requested() ? 8'000'000 : 2'000'000;
  const double target = 462'600.0;

  util::TextTable t({"shards", "samples/s", "p99 push", "drops", "max lag",
                     "vs target"});
  double best = 0.0;
  std::uint64_t total_drops = 0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const IngestRun r = run_ingest(shards, per_shard);
    best = std::max(best, r.samples_per_s);
    total_drops += r.dropped;
    t.add_row({std::to_string(shards),
               util::fmt_si(r.samples_per_s, "samples/s", 2),
               util::fmt_double(r.p99_push_ns, 0) + " ns",
               std::to_string(r.dropped), std::to_string(r.max_lag),
               util::fmt_double(r.samples_per_s / target, 1) + "x"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("target %s sustained: %s (best %s, drops %llu)\n\n",
              util::fmt_si(target, "samples/s", 0).c_str(),
              best >= target && total_drops == 0 ? "MET" : "NOT MET",
              util::fmt_si(best, "samples/s", 2).c_str(),
              static_cast<unsigned long long>(total_drops));
}

void BM_spsc_push_pop(benchmark::State& state) {
  util::SpscRing<telemetry::Collector::Arrival> ring(1 << 14);
  telemetry::Collector::Arrival a{};
  telemetry::Collector::Arrival out{};
  for (auto _ : state) {
    (void)ring.try_push(a);
    (void)ring.pop(out);
    benchmark::DoNotOptimize(out.event.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_spsc_push_pop);

void BM_ingest_mpsc(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::uint64_t per_shard = 200'000;
  for (auto _ : state) {
    const IngestRun r = run_ingest(shards, per_shard);
    benchmark::DoNotOptimize(r.samples_per_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(per_shard * shards));
}
BENCHMARK(BM_ingest_mpsc)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_coarsener_push_advance(benchmark::State& state) {
  // The consumer-side cost behind the transport: one sample through the
  // streaming coarsener including its share of watermark advances.
  const util::TimeRange range{0, 3600};
  stream::StreamingCoarsener coarsener(range, 10);
  std::size_t sunk = 0;
  coarsener.set_sink([&](const stream::WindowUpdate&) { ++sunk; });
  std::int64_t t = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    coarsener.push(static_cast<telemetry::MetricId>(i % 100), t, 1500.0);
    if (++i % 100 == 0) {
      t = (t + 1) % 3595;
      if (t == 0) {
        // Range exhausted: start a fresh coarsener (amortized away).
        state.PauseTiming();
        coarsener = stream::StreamingCoarsener(range, 10);
        coarsener.set_sink([&](const stream::WindowUpdate&) { ++sunk; });
        state.ResumeTiming();
      }
      coarsener.advance(t - 5);
    }
  }
  benchmark::DoNotOptimize(sunk);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_coarsener_push_advance);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
