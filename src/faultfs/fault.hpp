#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/sim_time.hpp"
#include "util/vfs.hpp"

namespace exawatt::faultfs {

/// Injectable fault classes, mirroring the operational damage the paper's
/// year-long campaign rides through: torn writes on the daily archive,
/// full disks, flipped bits on read-back, stalled I/O and outright
/// collector crashes.
enum class FaultKind : std::uint8_t {
  kFailWrite,   ///< the write-side op throws (transient or permanent)
  kShortWrite,  ///< only the first `arg` bytes reach the file, then throw
  kEnospc,      ///< permanent "no space left on device"
  kCrash,       ///< this and every later write-side op fails — simulated
                ///< process death; reads keep working for the autopsy
  kFailRead,    ///< the read-side op throws (transient or permanent)
  kFlipBit,     ///< flip bit (`arg` % bits) of the bytes returned by a read
  kDelayWrite,  ///< write-side op sleeps `arg` us on the injected clock
  kDelayRead,   ///< read-side op sleeps `arg` us on the injected clock
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One scripted fault, keyed by the global op counter of its side
/// (write-side ops: create/write/close/rename/remove; read-side ops:
/// read_range/read_all). With `repeat`, it fires on every op >= `op`.
struct Fault {
  FaultKind kind = FaultKind::kFailWrite;
  std::uint64_t op = 0;
  std::uint64_t arg = 0;
  bool transient = false;
  bool repeat = false;

  [[nodiscard]] bool matches(std::uint64_t index) const {
    return repeat ? index >= op : index == op;
  }
};

/// A deterministic chaos schedule: an ordered list of faults plus the
/// builder helpers the tests read like a script. Also buildable from a
/// seed (`FaultPlan::random`) for property tests — `describe()` is what
/// gets printed when a randomized run fails, so the failure replays.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& fail_write(std::uint64_t nth, bool transient = false);
  FaultPlan& short_write(std::uint64_t nth, std::uint64_t keep_bytes);
  FaultPlan& enospc_at(std::uint64_t nth);
  FaultPlan& crash_at_write(std::uint64_t nth);
  FaultPlan& fail_read(std::uint64_t nth, bool transient = false);
  FaultPlan& flip_bit_on_read(std::uint64_t nth, std::uint64_t bit);
  /// Flip one bit of every read-side op with index >= `from`.
  FaultPlan& flip_bits_on_reads_from(std::uint64_t from, std::uint64_t bit);
  FaultPlan& delay_write(std::uint64_t nth, std::uint64_t us);
  FaultPlan& delay_read(std::uint64_t nth, std::uint64_t us);

  /// Seeded random read-side plan (flips, read failures, delays) with
  /// `faults` entries over op indices [0, max_op). Read-side only so the
  /// "queries never return wrong values" property is exercised without
  /// also varying what got written.
  [[nodiscard]] static FaultPlan random_reads(std::uint64_t seed,
                                              std::size_t faults,
                                              std::uint64_t max_op);

  [[nodiscard]] const std::vector<Fault>& faults() const { return faults_; }
  [[nodiscard]] bool empty() const { return faults_.empty(); }
  /// One line per fault — printed on property-test failure for replay.
  [[nodiscard]] std::string describe() const;

 private:
  FaultPlan& add(Fault fault);
  std::vector<Fault> faults_;
};

/// Accounting for one FaultVfs lifetime.
struct FaultStats {
  std::uint64_t write_ops = 0;  ///< create/write/rename/remove seen
  std::uint64_t read_ops = 0;   ///< read_range/read_all seen
  std::uint64_t injected = 0;   ///< faults actually fired
};

/// A Vfs decorator that executes a FaultPlan against a base filesystem.
/// Thread-safe: the store's parallel scan fan-out may drive reads from
/// many pool threads at once, and op numbering must stay deterministic
/// for single-threaded schedules (the chaos harness feeds serially).
class FaultVfs final : public util::Vfs {
 public:
  explicit FaultVfs(util::Vfs& base, FaultPlan plan = {},
                    util::Clock* clock = nullptr);

  [[nodiscard]] std::unique_ptr<util::VfsFile> create(
      const std::string& path) override;
  [[nodiscard]] std::vector<std::uint8_t> read_range(
      const std::string& path, std::uint64_t offset,
      std::size_t bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_all(
      const std::string& path) override;
  [[nodiscard]] std::uint64_t size(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void mkdirs(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list(const std::string& dir) override;
  /// Mapping claims one read-side op: fail-read faults make the map
  /// attempt throw (callers fall back to buffered reads), flip-bit
  /// faults return a mapping backed by a corrupted private copy (so
  /// CRC checks downstream see the damage), delay-read sleeps.
  [[nodiscard]] std::shared_ptr<util::VfsMapping> map(
      const std::string& path) override;

  [[nodiscard]] FaultStats stats() const;
  /// Swap the schedule mid-run (op counters keep counting) — used to arm
  /// read faults only after a store has opened cleanly.
  void set_plan(FaultPlan plan);
  /// The write-side op journal: one "<kind> <path>" line per op, in order.
  /// Chaos harnesses use it to aim a crash at a specific write point
  /// (e.g. the manifest rename) observed in a clean rehearsal run.
  [[nodiscard]] std::vector<std::string> write_journal() const;

 private:
  friend class FaultFile;

  /// Claim the next write-side op index and return the faults due on it.
  [[nodiscard]] std::vector<Fault> next_write_op(const std::string& what);
  [[nodiscard]] std::vector<Fault> next_read_op();
  void apply_write_faults(const std::vector<Fault>& due,
                          const std::string& path);
  /// Applies read faults to `bytes` in place (flips); throws for failures.
  void apply_read_faults(const std::vector<Fault>& due,
                         const std::string& path,
                         std::vector<std::uint8_t>& bytes);

  util::Vfs& base_;
  util::Clock* clock_;
  mutable std::mutex mu_;
  FaultPlan plan_;
  FaultStats stats_;
  bool crashed_ = false;
  std::vector<std::string> journal_;
};

}  // namespace exawatt::faultfs
