#include "faultfs/fault.hpp"

#include <algorithm>
#include <sstream>

#include "util/rng.hpp"

namespace exawatt::faultfs {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailWrite: return "fail-write";
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kFailRead: return "fail-read";
    case FaultKind::kFlipBit: return "flip-bit";
    case FaultKind::kDelayWrite: return "delay-write";
    case FaultKind::kDelayRead: return "delay-read";
  }
  return "?";
}

// -------------------------------------------------------------- FaultPlan

FaultPlan& FaultPlan::add(Fault fault) {
  faults_.push_back(fault);
  return *this;
}

FaultPlan& FaultPlan::fail_write(std::uint64_t nth, bool transient) {
  return add({FaultKind::kFailWrite, nth, 0, transient, false});
}

FaultPlan& FaultPlan::short_write(std::uint64_t nth,
                                  std::uint64_t keep_bytes) {
  return add({FaultKind::kShortWrite, nth, keep_bytes, false, false});
}

FaultPlan& FaultPlan::enospc_at(std::uint64_t nth) {
  return add({FaultKind::kEnospc, nth, 0, false, false});
}

FaultPlan& FaultPlan::crash_at_write(std::uint64_t nth) {
  return add({FaultKind::kCrash, nth, 0, false, false});
}

FaultPlan& FaultPlan::fail_read(std::uint64_t nth, bool transient) {
  return add({FaultKind::kFailRead, nth, 0, transient, false});
}

FaultPlan& FaultPlan::flip_bit_on_read(std::uint64_t nth, std::uint64_t bit) {
  return add({FaultKind::kFlipBit, nth, bit, false, false});
}

FaultPlan& FaultPlan::flip_bits_on_reads_from(std::uint64_t from,
                                              std::uint64_t bit) {
  return add({FaultKind::kFlipBit, from, bit, false, true});
}

FaultPlan& FaultPlan::delay_write(std::uint64_t nth, std::uint64_t us) {
  return add({FaultKind::kDelayWrite, nth, us, false, false});
}

FaultPlan& FaultPlan::delay_read(std::uint64_t nth, std::uint64_t us) {
  return add({FaultKind::kDelayRead, nth, us, false, false});
}

FaultPlan FaultPlan::random_reads(std::uint64_t seed, std::size_t faults,
                                  std::uint64_t max_op) {
  util::Rng rng(seed);
  FaultPlan plan;
  for (std::size_t i = 0; i < faults; ++i) {
    const std::uint64_t op = rng.uniform_index(max_op);
    const double pick = rng.uniform();
    if (pick < 0.5) {
      plan.flip_bit_on_read(op, rng.uniform_index(1 << 16));
    } else if (pick < 0.8) {
      plan.fail_read(op, rng.chance(0.5));
    } else {
      plan.delay_read(op, rng.uniform_index(5'000));
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const auto& f : faults_) {
    os << fault_kind_name(f.kind) << " op=" << f.op;
    if (f.repeat) os << "+";
    if (f.arg != 0) os << " arg=" << f.arg;
    if (f.transient) os << " transient";
    os << '\n';
  }
  return os.str();
}

// --------------------------------------------------------------- FaultVfs

/// Write-side decorator: every write/close claims a write op on the
/// owning FaultVfs, so a plan can hit "the 3rd write of the 2nd segment"
/// no matter which file object issues it.
class FaultFile final : public util::VfsFile {
 public:
  FaultFile(FaultVfs& owner, std::string path,
            std::unique_ptr<util::VfsFile> base)
      : owner_(owner), path_(std::move(path)), base_(std::move(base)) {}

  void write(std::span<const std::uint8_t> bytes) override;
  void close() override;

 private:
  FaultVfs& owner_;
  std::string path_;
  std::unique_ptr<util::VfsFile> base_;
};

FaultVfs::FaultVfs(util::Vfs& base, FaultPlan plan, util::Clock* clock)
    : base_(base),
      clock_(clock != nullptr ? clock : &util::Clock::steady()),
      plan_(std::move(plan)) {}

FaultStats FaultVfs::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultVfs::set_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
}

std::vector<std::string> FaultVfs::write_journal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

std::vector<Fault> FaultVfs::next_write_op(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = stats_.write_ops++;
  journal_.push_back(what);
  std::vector<Fault> due;
  if (crashed_) {
    due.push_back({FaultKind::kCrash, index, 0, false, true});
    return due;
  }
  for (const auto& f : plan_.faults()) {
    if (f.kind == FaultKind::kFailRead || f.kind == FaultKind::kFlipBit ||
        f.kind == FaultKind::kDelayRead) {
      continue;
    }
    if (f.matches(index)) due.push_back(f);
  }
  stats_.injected += due.size();
  return due;
}

std::vector<Fault> FaultVfs::next_read_op() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = stats_.read_ops++;
  std::vector<Fault> due;
  for (const auto& f : plan_.faults()) {
    if (f.kind != FaultKind::kFailRead && f.kind != FaultKind::kFlipBit &&
        f.kind != FaultKind::kDelayRead) {
      continue;
    }
    if (f.matches(index)) due.push_back(f);
  }
  stats_.injected += due.size();
  return due;
}

void FaultVfs::apply_write_faults(const std::vector<Fault>& due,
                                  const std::string& path) {
  for (const auto& f : due) {
    switch (f.kind) {
      case FaultKind::kDelayWrite:
        clock_->sleep_us(static_cast<std::int64_t>(f.arg));
        break;
      case FaultKind::kCrash: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          crashed_ = true;
        }
        throw util::VfsError("faultfs: simulated crash at " + path);
      }
      case FaultKind::kEnospc:
        throw util::VfsError("faultfs: no space left on device: " + path);
      case FaultKind::kFailWrite:
      case FaultKind::kShortWrite:  // the short prefix is handled by caller
        throw util::VfsError("faultfs: injected write failure: " + path,
                             f.transient);
      case FaultKind::kFailRead:
      case FaultKind::kFlipBit:
      case FaultKind::kDelayRead:
        break;
    }
  }
}

void FaultVfs::apply_read_faults(const std::vector<Fault>& due,
                                 const std::string& path,
                                 std::vector<std::uint8_t>& bytes) {
  for (const auto& f : due) {
    switch (f.kind) {
      case FaultKind::kDelayRead:
        clock_->sleep_us(static_cast<std::int64_t>(f.arg));
        break;
      case FaultKind::kFlipBit:
        if (!bytes.empty()) {
          const std::uint64_t bit = f.arg % (bytes.size() * 8);
          bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        break;
      default:
        break;
    }
  }
}

void FaultFile::write(std::span<const std::uint8_t> bytes) {
  const auto due = owner_.next_write_op("write " + path_);
  // A scripted short write persists a prefix before the failure surfaces —
  // the torn-write shape a crash leaves on a real disk.
  for (const auto& f : due) {
    if (f.kind == FaultKind::kShortWrite) {
      const std::size_t keep =
          std::min<std::size_t>(bytes.size(), static_cast<std::size_t>(f.arg));
      base_->write(bytes.subspan(0, keep));
    }
  }
  owner_.apply_write_faults(due, path_);
  base_->write(bytes);
}

void FaultFile::close() {
  const auto due = owner_.next_write_op("close " + path_);
  owner_.apply_write_faults(due, path_);
  base_->close();
}

std::unique_ptr<util::VfsFile> FaultVfs::create(const std::string& path) {
  const auto due = next_write_op("create " + path);
  apply_write_faults(due, path);
  return std::make_unique<FaultFile>(*this, path, base_.create(path));
}

std::vector<std::uint8_t> FaultVfs::read_range(const std::string& path,
                                               std::uint64_t offset,
                                               std::size_t bytes) {
  const auto due = next_read_op();
  for (const auto& f : due) {
    if (f.kind == FaultKind::kFailRead) {
      throw util::VfsError("faultfs: injected read failure: " + path,
                           f.transient);
    }
  }
  auto out = base_.read_range(path, offset, bytes);
  apply_read_faults(due, path, out);
  return out;
}

std::vector<std::uint8_t> FaultVfs::read_all(const std::string& path) {
  const auto due = next_read_op();
  for (const auto& f : due) {
    if (f.kind == FaultKind::kFailRead) {
      throw util::VfsError("faultfs: injected read failure: " + path,
                           f.transient);
    }
  }
  auto out = base_.read_all(path);
  apply_read_faults(due, path, out);
  return out;
}

namespace {

// A mapping backed by an owned byte vector — used when a read fault
// corrupted the mapped view, so the damage stays private to this
// mapping and never touches the base file or other readers.
class CopyMapping final : public util::VfsMapping {
 public:
  explicit CopyMapping(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}
  [[nodiscard]] std::span<const std::uint8_t> bytes() const override {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace

std::shared_ptr<util::VfsMapping> FaultVfs::map(const std::string& path) {
  const auto due = next_read_op();
  for (const auto& f : due) {
    if (f.kind == FaultKind::kFailRead) {
      throw util::VfsError("faultfs: injected map failure: " + path,
                           f.transient);
    }
  }
  for (const auto& f : due) {
    if (f.kind == FaultKind::kDelayRead) {
      clock_->sleep_us(static_cast<std::int64_t>(f.arg));
    }
  }
  auto mapping = base_.map(path);
  if (mapping == nullptr) return nullptr;
  const bool flips = std::any_of(
      due.begin(), due.end(),
      [](const Fault& f) { return f.kind == FaultKind::kFlipBit; });
  if (flips) {
    const auto view = mapping->bytes();
    std::vector<std::uint8_t> copy(view.begin(), view.end());
    apply_read_faults(due, path, copy);
    return std::make_shared<CopyMapping>(std::move(copy));
  }
  return mapping;
}

std::uint64_t FaultVfs::size(const std::string& path) {
  return base_.size(path);
}

bool FaultVfs::exists(const std::string& path) { return base_.exists(path); }

void FaultVfs::rename(const std::string& from, const std::string& to) {
  const auto due = next_write_op("rename " + from + " -> " + to);
  apply_write_faults(due, from);
  base_.rename(from, to);
}

void FaultVfs::remove(const std::string& path) {
  const auto due = next_write_op("remove " + path);
  apply_write_faults(due, path);
  base_.remove(path);
}

void FaultVfs::mkdirs(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      throw util::VfsError("faultfs: simulated crash at " + path);
    }
  }
  base_.mkdirs(path);
}

std::vector<std::string> FaultVfs::list(const std::string& dir) {
  return base_.list(dir);
}

}  // namespace exawatt::faultfs
