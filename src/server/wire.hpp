#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "machine/topology.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "stream/alerts.hpp"
#include "ts/series.hpp"

namespace exawatt::server::wire {

/// Malformed request/response payload inside a structurally valid frame.
/// Unlike a framing fault this is NOT connection-fatal on the server: the
/// stream is still in sync, so the offender gets INVALID_ARGUMENT back
/// and the connection lives on.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Query methods of the service (payload byte 0 of a request frame).
enum class Method : std::uint8_t {
  kPing = 0,        ///< liveness / RTT probe; echoes an empty OK
  kWindowSum = 1,   ///< Store::window_sum of one metric
  kScan = 2,        ///< metric-range scan (Store::query_many)
  kClusterSum = 3,  ///< store::cluster_sum power roll-up across nodes
  kPueRollup = 4,   ///< streaming replay: cluster power + facility PUE
  kSubscribe = 5,   ///< stream of coarse ticks / alerts (Tick frames)
  kServerStats = 6, ///< server-side metrics counters snapshot
  kDirectory = 7,   ///< sealed-segment directory (cluster query planning)
  kScenario = 8,       ///< counterfactual replay of one ScenarioSpec
  kScenarioSweep = 9,  ///< N-variant scenario fan-out (summaries back)
  /// Response-only: a kScan answered in block form. Runs arrive as raw
  /// still-encoded codec blocks (sliced zero-copy from mapped segments
  /// server-side) plus loose boundary samples; the client decodes and
  /// re-sorts into the identical MetricRuns a kScan would carry. Opted
  /// into per-request via extension tag 2 on a kScan — a server that
  /// predates it ignores the tag and answers classic kScan, so the
  /// decoder must accept either method back.
  kScanBlocks = 10,
};

/// A sweep request is bounded so one frame cannot demand unbounded
/// server CPU; the executor rejects larger fan-outs with
/// INVALID_ARGUMENT (split the sweep client-side instead).
inline constexpr std::size_t kMaxSweepVariants = 64;

[[nodiscard]] const char* method_name(Method m);

enum class Status : std::uint8_t {
  kOk = 0,
  kResourceExhausted = 1,  ///< admission queue full — explicit shed
  kDeadlineExceeded = 2,   ///< expired before execution finished/started
  kCancelled = 3,          ///< client disconnected while queued/running
  kInvalidArgument = 4,    ///< malformed or out-of-contract request
  kUnimplemented = 5,      ///< method not served by this endpoint
  kInternal = 6,           ///< execution threw
  kUnavailable = 7,        ///< server is draining for shutdown
};

[[nodiscard]] const char* status_name(Status s);

/// One decoded request. A tagged union flattened into optional fields —
/// `method` says which ones are meaningful (mirrors the encoders below).
struct Request {
  Method method = Method::kPing;
  /// Relative deadline; 0 = none. The server stamps an absolute deadline
  /// at admission and refuses to *start* expired work.
  std::uint32_t deadline_ms = 0;

  telemetry::MetricId metric = 0;              // kWindowSum
  std::vector<telemetry::MetricId> metrics;    // kScan
  std::vector<machine::NodeId> nodes;          // kClusterSum / kPueRollup
  int channel = 0;                             // kClusterSum
  util::TimeRange range{0, 0};
  util::TimeSec window = 10;

  /// kSubscribe: bitmask of TickKind values the client wants. Also
  /// honored by kScenarioSweep: set the kWindow bit to stream every
  /// variant's closed windows as kVariantWindow ticks ahead of the
  /// summary response (plain call()ers leave it 0 on sweeps).
  std::uint8_t subscribe_mask = 0x3;

  /// kScenario (exactly one) / kScenarioSweep (1..kMaxSweepVariants).
  std::vector<scenario::ScenarioSpec> scenarios;

  /// Nonzero opts this request into chunked streaming responses: the
  /// server may answer with kChunk/kFinal continuation frames of about
  /// this payload size instead of one materialized response. Travels as
  /// a trailing (tag,value) extension block — a pre-chunking server
  /// rejects it with INVALID_ARGUMENT ("trailing bytes"), which the
  /// Client treats as "peer too old" and transparently retries without
  /// it, so mixed-version fleets keep working.
  std::uint32_t chunk_bytes = 0;

  /// On a chunked kScan, asks the server to answer in kScanBlocks form
  /// (raw encoded blocks instead of decoded samples — the zero-copy
  /// scan-to-wire path). Travels as extension tag 2; servers that
  /// predate it skip the tag and answer classic kScan, so setting this
  /// is always safe. Meaningful only together with `chunk_bytes`.
  bool want_scan_blocks = false;

  /// QoS priority class: 0 interactive, 1 normal, 2 batch (the decoder
  /// demotes unknown future values to batch — a tier this server does
  /// not know must never jump the interactive lane). Travels as
  /// extension tag 3, written only when non-default, so a class-less
  /// legacy client's bytes are unchanged and lands in `normal`.
  std::uint32_t qos_class = 1;

  /// Tenant id for per-tenant fair queueing inside a class; 0 (the
  /// default) is the anonymous tenant every legacy client shares.
  /// Extension tag 4.
  std::uint32_t tenant = 0;
};

/// Server-side service counters (kServerStats response payload).
struct ServerStatsWire {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_limit = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Upstream-link health. A plain shard server reports zeros; a cluster
  /// coordinator front-end fills these from its shard `Client`s so
  /// coordinator-to-shard flapping is visible to any stats consumer.
  std::uint64_t reconnects_attempted = 0;
  std::uint64_t reconnects_succeeded = 0;
  std::uint64_t shards_total = 0;
  std::uint64_t shards_down = 0;
  /// Chunked-streaming health: responses streamed, chunk frames sent,
  /// and producer pauses/resumes at the per-connection stream gate.
  std::uint64_t streams = 0;
  std::uint64_t stream_chunks = 0;
  std::uint64_t stream_pauses = 0;
  std::uint64_t stream_resumes = 0;
  /// QoS health (zeros when the endpoint runs the classic FIFO): live
  /// worker count, estimated queued cost, and per-class counters indexed
  /// by qos::Class (0 interactive / 1 normal / 2 batch). p99 in whole
  /// microseconds — a latency histogram does not need sub-us precision
  /// and u64 keeps the extension block uniform.
  std::uint64_t qos_workers = 0;
  std::uint64_t qos_backlog_cost_us = 0;
  std::array<std::uint64_t, 3> qos_served{};
  std::array<std::uint64_t, 3> qos_shed{};
  std::array<std::uint64_t, 3> qos_p99_us{};
};

/// kDirectory response payload: the store's sealed-segment directory
/// plus its live totals — everything a coordinator needs to plan a
/// scatter query (time-range pruning) and to account a dead shard's
/// overlap as `lost_segments` instead of guessing.
struct DirectoryWire {
  std::uint64_t total_events = 0;
  std::uint64_t buffered_events = 0;
  util::TimeRange bounds{0, 0};
  std::vector<store::SegmentMeta> segments;
};

/// One decoded response. `status != kOk` carries only `message`. The
/// method is echoed in the payload so the decoder knows which fields
/// follow without out-of-band context.
struct Response {
  Status status = Status::kOk;
  Method method = Method::kPing;
  std::string message;

  /// On a QoS shed (RESOURCE_EXHAUSTED), the refused request's estimated
  /// cost in microseconds — the client-side hint for backoff/splitting.
  /// Travels as a count-prefixed u64 block after the error message, and
  /// ONLY to peers whose request carried a qos extension tag (proof the
  /// peer is new enough): an old decoder throws on trailing bytes after
  /// an error response, so the server never volunteers the block to a
  /// peer that did not implicitly opt in.
  std::uint64_t shed_cost_hint_us = 0;

  store::WindowSum window_sum;          // kWindowSum
  std::vector<store::MetricRun> runs;   // kScan
  ts::Series series;                    // kClusterSum / kPueRollup power
                                        // (kScenario: variant power)
  std::vector<double> counts;           // kClusterSum contributing nodes
  ts::Series pue;                       // kPueRollup / kScenario variant
  store::QueryStats stats;              // loss/cache accounting, kOk reads
  ServerStatsWire server;               // kServerStats
  DirectoryWire directory;              // kDirectory
  ts::Series baseline_power;            // kScenario un-intervened legs
  ts::Series baseline_pue;
  /// kScenario (one entry) / kScenarioSweep (one per requested variant,
  /// in request order — full series travel only for single scenarios).
  std::vector<scenario::ScenarioSummary> scenarios;
};

enum class TickKind : std::uint8_t {
  kWindow = 1,  ///< one closed cluster roll-up window
  kAlert = 2,   ///< one alert engine transition
  kEnd = 4,     ///< subscription finished (replay reached range end)
  /// One closed window of one sweep variant (kScenarioSweep streaming;
  /// `variant` says which). Sent only to peers that asked for window
  /// ticks on a sweep, so an old peer never sees the unknown kind.
  kVariantWindow = 8,
};

/// One subscription push (payload of a Tick frame).
struct Tick {
  TickKind kind = TickKind::kWindow;
  // kWindow / kVariantWindow
  std::uint64_t index = 0;
  util::TimeSec t = 0;
  double power_w = 0.0;
  double pue = 0.0;
  double nodes_reporting = 0.0;
  std::uint32_t variant = 0;  ///< kVariantWindow: index into the sweep
  // kAlert
  stream::Alert alert;
};

[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& req);
/// Throws WireError on malformed/truncated payload or absurd counts.
[[nodiscard]] Request decode_request(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& resp);
[[nodiscard]] Response decode_response(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_tick(const Tick& tick);
[[nodiscard]] Tick decode_tick(std::span<const std::uint8_t> payload);

/// Chunked-scan streaming encoders. A streamed kScan response is built
/// as begin (status, method, run count), one `run` block per metric in
/// request order, and end (the QueryStats tail); the concatenation is
/// byte-identical to `encode_response` of the materialized response —
/// bit-parity by construction, so the client-side reassembler needs no
/// streaming-aware decoder. All three append to `*out`.
void scan_stream_begin(std::size_t n_runs, std::vector<std::uint8_t>* out);
void scan_stream_run(const store::MetricRun& run,
                     std::vector<std::uint8_t>* out);
void scan_stream_end(const store::QueryStats& stats,
                     std::vector<std::uint8_t>* out);

/// Block-form streaming encoders (a kScanBlocks response). Layout after
/// the (status, method, run count) header: per run, a u32 metric id then
/// tagged pieces — 0 = one time-sorted loose-sample batch, 1 = one raw
/// encoded block (u32 byte count + u32 event count, bytes follow), 2 =
/// end of run — then the QueryStats tail. `scan_blocks_block_header`
/// writes only the 9-byte piece header: the executor hands the block
/// bytes themselves straight to the ChunkWriter, which forwards whole
/// chunks without copying them through a response buffer.
void scan_blocks_begin(std::size_t n_runs, std::vector<std::uint8_t>* out);
void scan_blocks_run_begin(telemetry::MetricId id,
                           std::vector<std::uint8_t>* out);
void scan_blocks_block_header(std::uint32_t n_bytes, std::uint32_t n_events,
                              std::vector<std::uint8_t>* out);
void scan_blocks_samples(std::span<const ts::Sample> samples,
                         std::vector<std::uint8_t>* out);
void scan_blocks_run_end(std::vector<std::uint8_t>* out);
void scan_blocks_end(const store::QueryStats& stats,
                     std::vector<std::uint8_t>* out);

/// Sum of events carried by a response (scan sample counts / window_sum
/// event counts / roll-up windows) — the loadgen's "read volume" unit.
[[nodiscard]] std::uint64_t response_event_volume(const Response& resp);

}  // namespace exawatt::server::wire
