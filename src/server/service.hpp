#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "qos/cost.hpp"
#include "qos/pool.hpp"
#include "qos/scheduler.hpp"
#include "server/wire.hpp"
#include "store/store.hpp"
#include "stream/quantile.hpp"
#include "util/sim_time.hpp"
#include "util/thread_pool.hpp"

namespace exawatt::server {

class ChunkWriter;

/// Cooperative cancellation: the server trips one token per connection
/// when the peer disconnects; queued work observes it before starting,
/// streaming work between ticks.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

[[nodiscard]] inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Enables the multi-tenant QoS path: cost-model admission, per-class
/// per-tenant fair scheduling and an autoscaled worker pool replace the
/// single FIFO on the shared thread pool.
struct QosOptions {
  /// Unit costs behind admission pricing; calibrate with
  /// qos::CostProfile::from_bench_json when a BENCH_codec.json exists.
  qos::CostProfile cost;
  /// max_queue is overridden with ServiceOptions::queue_limit so the
  /// service keeps one admission knob in both modes.
  qos::SchedulerOptions scheduler;
  qos::WorkerPoolOptions pool;
  /// Block counter behind the cost model. Defaulted to the service's
  /// own Store in the store-backed constructor; a custom-executor
  /// front-end may leave it null (structure-only pricing) or install a
  /// directory-based one.
  qos::BlockCounter blocks;
};

struct ServiceOptions {
  /// Bounded admission queue: requests beyond this many queued-or-running
  /// are shed with an explicit RESOURCE_EXHAUSTED response — the
  /// overloaded server stays predictable instead of building an unbounded
  /// backlog of work it will finish after every deadline has passed.
  /// (In QoS mode the bound applies to the scheduler's queued set and
  /// shedding is cost-based: the worst (class, cost, age) item goes, not
  /// the newest arrival.)
  std::size_t queue_limit = 256;
  /// Executor; nullptr selects the process-global pool. Unused by the
  /// QoS path, which runs its own autoscaled workers.
  util::ThreadPool* pool = nullptr;
  /// Deadline/latency clock; nullptr selects the steady wall clock.
  /// Tests install a util::ManualClock to make expiry deterministic.
  util::Clock* clock = nullptr;
  /// Applied when a request carries no deadline; 0 = unbounded.
  std::uint32_t default_deadline_ms = 0;
  /// Engaged = QoS mode. Disengaged (the default) keeps the classic
  /// bounded FIFO byte-for-byte, so existing embedders and class-less
  /// clients see identical behavior.
  std::optional<QosOptions> qos;
};

/// Wire-supplied time grids are adversarial. Accepts only (range, window)
/// pairs whose window count can be computed without signed overflow and
/// whose grid stays under 2^24 windows (what a year of 1 Hz data can
/// legitimately need); on rejection `*why` explains. Shared by the
/// store-backed executor and the cluster coordinator so both ends of a
/// scatter agree on what a valid grid is.
[[nodiscard]] bool grid_ok(util::TimeRange range, util::TimeSec window,
                           std::string* why);

/// Validate a kScenario/kScenarioSweep request against the data hull
/// (`bounds`: Store::bounds() or the cluster hull) and produce the
/// clamped engine options both executors replay with. On rejection fills
/// `*resp` with INVALID_ARGUMENT and returns false. Shared by the
/// store-backed executor and the cluster coordinator so a sweep is valid
/// on one exactly when it is valid on the other.
[[nodiscard]] bool scenario_request_ok(const wire::Request& request,
                                       util::TimeRange bounds,
                                       stream::EngineOptions* opts,
                                       wire::Response* resp);

/// Snapshot of the service counters (also serialized as kServerStats).
struct ServiceMetrics {
  std::uint64_t accepted = 0;           ///< admitted into the queue
  std::uint64_t served = 0;             ///< finished with kOk
  std::uint64_t shed = 0;               ///< RESOURCE_EXHAUSTED at admission
  std::uint64_t deadline_exceeded = 0;  ///< expired before/while executing
  std::uint64_t cancelled = 0;          ///< peer vanished first
  std::uint64_t failed = 0;             ///< execution threw (kInternal)
  std::uint64_t queue_depth = 0;        ///< queued or running right now
  double p50_ms = 0.0;                  ///< admission->completion latency
  double p99_ms = 0.0;
  /// QoS-mode extras; all zero on a classic-FIFO service.
  bool qos = false;
  std::uint64_t qos_workers = 0;          ///< live worker threads
  std::uint64_t qos_backlog_cost_us = 0;  ///< estimated queued cost
  std::array<std::uint64_t, qos::kClassCount> class_served{};
  std::array<std::uint64_t, qos::kClassCount> class_shed{};
  std::array<double, qos::kClassCount> class_p99_ms{};
};

/// The RPC service over one Store: stateless query execution behind a
/// deadline-aware bounded admission queue on the shared thread pool.
///
/// Threading contract: `submit` may be called from any thread (the
/// server calls it from the event-loop thread). The `done` callback is
/// invoked exactly once — inline for shed/drain rejections, on a pool
/// thread otherwise. `emit` (subscription ticks) fires zero or more
/// times strictly before `done`, always on the pool thread.
class QueryService {
 public:
  using Emit = std::function<void(const wire::Tick&)>;
  using Done = std::function<void(wire::Response&&)>;

  /// Subscription executor installed by the endpoint (the serve command
  /// wires a store replay here). Must honor `cancel` between ticks and
  /// return when it fires; runs entirely on a pool thread.
  using SubscribeSource = std::function<void(
      const wire::Request&, const CancelToken&, const Emit&)>;

  /// Produces the response body for one admitted request — the seam that
  /// lets a cluster coordinator sit behind the same admission queue,
  /// deadline policy and counters as a plain store shard. Must poll
  /// `cancel` and the absolute `deadline_us` (0 = none) in long bodies.
  /// The `Emit` is the request's tick channel (null when the caller
  /// cannot stream): kScenarioSweep pushes per-variant windows through
  /// it ahead of the summary response, every other method ignores it.
  /// kServerStats never reaches the executor: the service answers it
  /// itself (the counters are its own). `stream` (null when the request
  /// did not negotiate chunking) is the chunked response channel: a
  /// streaming-aware body writes encoded response bytes through it as
  /// they are produced — pausing under backpressure inside
  /// ChunkWriter — and returns a kOk response with `streamed` data left
  /// empty; a body that ignores it is materialized and chunked by the
  /// server afterwards.
  using Executor = std::function<wire::Response(
      const wire::Request&, const CancelToken&, std::int64_t, const Emit&,
      ChunkWriter*)>;

  /// Hook appending endpoint-specific fields to a kServerStats response
  /// (a coordinator fills the shard/reconnect counters, the server its
  /// streaming counters). Augments chain: each registered hook runs in
  /// registration order over the same snapshot.
  using StatsAugment = std::function<void(wire::ServerStatsWire&)>;

  /// Store-backed service: executor = `make_store_executor(store, ...)`.
  /// In QoS mode the cost model's block counter defaults to this store.
  QueryService(const store::Store& store, ServiceOptions options = {});
  /// Custom-executor service (the cluster coordinator front-end).
  QueryService(Executor executor, ServiceOptions options = {});
  ~QueryService();

  /// No subscription source installed => kSubscribe gets kUnimplemented.
  void set_subscribe_source(SubscribeSource source);
  /// Appends (does not replace): augments accumulate and run in order.
  void set_stats_augment(StatsAugment augment);

  /// `stream` must outlive the request (the server keeps its shared_ptr
  /// alive in `done`); null = the request did not negotiate chunking.
  void submit(wire::Request request, CancelToken cancel, Emit emit,
              Done done, ChunkWriter* stream = nullptr);

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] std::size_t queue_limit() const {
    return options_.queue_limit;
  }

  /// Graceful shutdown: stop admitting (new requests get kUnavailable)
  /// and block until every queued/running request has completed.
  void drain();

  /// Enqueue endpoint-internal work (background compaction) as a QoS
  /// citizen of `cls`: it waits its class turn, can be shed under
  /// pressure (it simply does not run — the caller's cadence retries),
  /// and drain() waits for it. Falls back to the plain pool when QoS is
  /// off. `cost_us` is the caller's estimate for backlog accounting and
  /// shed ordering. `dropped` (optional) fires instead of `work` when
  /// the item is shed or refused at admission (draining included), so
  /// callers can release an in-flight latch.
  void submit_internal(qos::Class cls, std::uint64_t cost_us,
                       std::function<void()> work,
                       std::function<void()> dropped = nullptr);

  /// True when this service runs the QoS scheduler (vs the classic FIFO).
  [[nodiscard]] bool qos_enabled() const { return qos_sched_ != nullptr; }

  /// Execute one request body against the store, bypassing admission —
  /// the single code path the admitted worker and the in-process tests
  /// share, so over-the-wire results are the store's results by
  /// construction.
  [[nodiscard]] wire::Response execute(const wire::Request& request) const {
    return execute(request, nullptr, 0, nullptr, nullptr);
  }

  /// Same, with cooperative interruption: long-running bodies (the PUE
  /// roll-up replay walks its range second by second) poll `cancel` and
  /// `deadline_us` (absolute clock microseconds, 0 = none) and abandon
  /// the work with kCancelled / kDeadlineExceeded instead of occupying a
  /// pool thread past the point anyone wants the answer.
  [[nodiscard]] wire::Response execute(const wire::Request& request,
                                       const CancelToken& cancel,
                                       std::int64_t deadline_us) const {
    return execute(request, cancel, deadline_us, nullptr, nullptr);
  }

  /// Full form with the tick channel (sweep streaming) and the chunked
  /// response channel; both may be null, in which case streaming methods
  /// answer without ticks and results materialize in the Response.
  [[nodiscard]] wire::Response execute(const wire::Request& request,
                                       const CancelToken& cancel,
                                       std::int64_t deadline_us,
                                       const Emit& emit,
                                       ChunkWriter* stream = nullptr) const;

 private:
  /// Everything one admitted request carries through the queue; shared
  /// between the run and shed closures (exactly one of which fires).
  struct Admitted {
    wire::Request request;
    CancelToken cancel;
    Emit emit;
    Done done;
    ChunkWriter* stream = nullptr;
    SubscribeSource subscribe;
    std::int64_t admitted_us = 0;
    std::int64_t deadline_us = 0;
    qos::Class cls = qos::kDefaultClass;
    bool qos_tagged = false;     ///< peer sent a qos extension tag
    std::uint64_t cost_us = 0;   ///< admission estimate
  };

  void submit_qos(wire::Request request, CancelToken cancel, Emit emit,
                  Done done, ChunkWriter* stream);
  /// The admitted execution body both the FIFO and QoS paths share:
  /// cancel/deadline gates, subscribe routing, executor call, finish.
  void run_admitted(const std::shared_ptr<Admitted>& a, bool count_class);
  void finish(std::int64_t admitted_us, std::optional<qos::Class> cls,
              wire::Response&& response, const Done& done);

  Executor executor_;
  ServiceOptions options_;
  util::ThreadPool& pool_;
  util::Clock& clock_;
  SubscribeSource subscribe_;
  std::vector<StatsAugment> stats_augments_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  bool draining_ = false;
  std::uint64_t depth_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  stream::P2Quantile lat_p50_;
  stream::P2Quantile lat_p99_;
  /// QoS-mode state (null in classic FIFO mode). Per-class counters are
  /// guarded by mu_ like the totals above. The pool is declared last so
  /// it is destroyed (stopping its workers) before the scheduler and
  /// cost model they pull from.
  std::array<std::uint64_t, qos::kClassCount> class_served_{};
  std::array<std::uint64_t, qos::kClassCount> class_shed_{};
  std::array<stream::P2Quantile, qos::kClassCount> class_p99_;
  std::unique_ptr<qos::CostModel> qos_cost_;
  std::unique_ptr<qos::Scheduler> qos_sched_;
  std::unique_ptr<qos::WorkerPool> qos_pool_;
};

/// The canonical store-backed executor: every non-stats method of the
/// wire protocol evaluated against one Store. `clock` drives deadline
/// polling in long bodies (nullptr = steady wall clock) and should match
/// the owning service's clock so ManualClock tests stay deterministic.
[[nodiscard]] QueryService::Executor make_store_executor(
    const store::Store& store, util::Clock* clock = nullptr);

/// The scenario body on already-fetched input-power runs: replay the
/// baseline plus every requested variant (a sweep fans variants out over
/// dedicated worker threads), stream kVariantWindow ticks through `emit`
/// when the request's subscribe mask asks for them, and fill `*resp`
/// with series/summaries — or the kCancelled / kDeadlineExceeded verdict
/// when a leg was abandoned. The store executor and the cluster
/// coordinator both run exactly this function, differing only in where
/// the runs came from (local query_many vs shard scatter).
void run_scenario_request(const wire::Request& request,
                          const std::vector<store::MetricRun>& runs,
                          const stream::EngineOptions& opts,
                          const CancelToken& cancel,
                          std::int64_t deadline_us, util::Clock& clock,
                          const QueryService::Emit& emit,
                          wire::Response* resp);

}  // namespace exawatt::server
