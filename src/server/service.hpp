#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "server/wire.hpp"
#include "store/store.hpp"
#include "stream/quantile.hpp"
#include "util/sim_time.hpp"
#include "util/thread_pool.hpp"

namespace exawatt::server {

class ChunkWriter;

/// Cooperative cancellation: the server trips one token per connection
/// when the peer disconnects; queued work observes it before starting,
/// streaming work between ticks.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

[[nodiscard]] inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

struct ServiceOptions {
  /// Bounded admission queue: requests beyond this many queued-or-running
  /// are shed with an explicit RESOURCE_EXHAUSTED response — the
  /// overloaded server stays predictable instead of building an unbounded
  /// backlog of work it will finish after every deadline has passed.
  std::size_t queue_limit = 256;
  /// Executor; nullptr selects the process-global pool.
  util::ThreadPool* pool = nullptr;
  /// Deadline/latency clock; nullptr selects the steady wall clock.
  /// Tests install a util::ManualClock to make expiry deterministic.
  util::Clock* clock = nullptr;
  /// Applied when a request carries no deadline; 0 = unbounded.
  std::uint32_t default_deadline_ms = 0;
};

/// Wire-supplied time grids are adversarial. Accepts only (range, window)
/// pairs whose window count can be computed without signed overflow and
/// whose grid stays under 2^24 windows (what a year of 1 Hz data can
/// legitimately need); on rejection `*why` explains. Shared by the
/// store-backed executor and the cluster coordinator so both ends of a
/// scatter agree on what a valid grid is.
[[nodiscard]] bool grid_ok(util::TimeRange range, util::TimeSec window,
                           std::string* why);

/// Validate a kScenario/kScenarioSweep request against the data hull
/// (`bounds`: Store::bounds() or the cluster hull) and produce the
/// clamped engine options both executors replay with. On rejection fills
/// `*resp` with INVALID_ARGUMENT and returns false. Shared by the
/// store-backed executor and the cluster coordinator so a sweep is valid
/// on one exactly when it is valid on the other.
[[nodiscard]] bool scenario_request_ok(const wire::Request& request,
                                       util::TimeRange bounds,
                                       stream::EngineOptions* opts,
                                       wire::Response* resp);

/// Snapshot of the service counters (also serialized as kServerStats).
struct ServiceMetrics {
  std::uint64_t accepted = 0;           ///< admitted into the queue
  std::uint64_t served = 0;             ///< finished with kOk
  std::uint64_t shed = 0;               ///< RESOURCE_EXHAUSTED at admission
  std::uint64_t deadline_exceeded = 0;  ///< expired before/while executing
  std::uint64_t cancelled = 0;          ///< peer vanished first
  std::uint64_t failed = 0;             ///< execution threw (kInternal)
  std::uint64_t queue_depth = 0;        ///< queued or running right now
  double p50_ms = 0.0;                  ///< admission->completion latency
  double p99_ms = 0.0;
};

/// The RPC service over one Store: stateless query execution behind a
/// deadline-aware bounded admission queue on the shared thread pool.
///
/// Threading contract: `submit` may be called from any thread (the
/// server calls it from the event-loop thread). The `done` callback is
/// invoked exactly once — inline for shed/drain rejections, on a pool
/// thread otherwise. `emit` (subscription ticks) fires zero or more
/// times strictly before `done`, always on the pool thread.
class QueryService {
 public:
  using Emit = std::function<void(const wire::Tick&)>;
  using Done = std::function<void(wire::Response&&)>;

  /// Subscription executor installed by the endpoint (the serve command
  /// wires a store replay here). Must honor `cancel` between ticks and
  /// return when it fires; runs entirely on a pool thread.
  using SubscribeSource = std::function<void(
      const wire::Request&, const CancelToken&, const Emit&)>;

  /// Produces the response body for one admitted request — the seam that
  /// lets a cluster coordinator sit behind the same admission queue,
  /// deadline policy and counters as a plain store shard. Must poll
  /// `cancel` and the absolute `deadline_us` (0 = none) in long bodies.
  /// The `Emit` is the request's tick channel (null when the caller
  /// cannot stream): kScenarioSweep pushes per-variant windows through
  /// it ahead of the summary response, every other method ignores it.
  /// kServerStats never reaches the executor: the service answers it
  /// itself (the counters are its own). `stream` (null when the request
  /// did not negotiate chunking) is the chunked response channel: a
  /// streaming-aware body writes encoded response bytes through it as
  /// they are produced — pausing under backpressure inside
  /// ChunkWriter — and returns a kOk response with `streamed` data left
  /// empty; a body that ignores it is materialized and chunked by the
  /// server afterwards.
  using Executor = std::function<wire::Response(
      const wire::Request&, const CancelToken&, std::int64_t, const Emit&,
      ChunkWriter*)>;

  /// Hook appending endpoint-specific fields to a kServerStats response
  /// (a coordinator fills the shard/reconnect counters, the server its
  /// streaming counters). Augments chain: each registered hook runs in
  /// registration order over the same snapshot.
  using StatsAugment = std::function<void(wire::ServerStatsWire&)>;

  /// Store-backed service: executor = `make_store_executor(store, ...)`.
  QueryService(const store::Store& store, ServiceOptions options = {});
  /// Custom-executor service (the cluster coordinator front-end).
  QueryService(Executor executor, ServiceOptions options = {});

  /// No subscription source installed => kSubscribe gets kUnimplemented.
  void set_subscribe_source(SubscribeSource source);
  /// Appends (does not replace): augments accumulate and run in order.
  void set_stats_augment(StatsAugment augment);

  /// `stream` must outlive the request (the server keeps its shared_ptr
  /// alive in `done`); null = the request did not negotiate chunking.
  void submit(wire::Request request, CancelToken cancel, Emit emit,
              Done done, ChunkWriter* stream = nullptr);

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] std::size_t queue_limit() const {
    return options_.queue_limit;
  }

  /// Graceful shutdown: stop admitting (new requests get kUnavailable)
  /// and block until every queued/running request has completed.
  void drain();

  /// Execute one request body against the store, bypassing admission —
  /// the single code path the admitted worker and the in-process tests
  /// share, so over-the-wire results are the store's results by
  /// construction.
  [[nodiscard]] wire::Response execute(const wire::Request& request) const {
    return execute(request, nullptr, 0, nullptr, nullptr);
  }

  /// Same, with cooperative interruption: long-running bodies (the PUE
  /// roll-up replay walks its range second by second) poll `cancel` and
  /// `deadline_us` (absolute clock microseconds, 0 = none) and abandon
  /// the work with kCancelled / kDeadlineExceeded instead of occupying a
  /// pool thread past the point anyone wants the answer.
  [[nodiscard]] wire::Response execute(const wire::Request& request,
                                       const CancelToken& cancel,
                                       std::int64_t deadline_us) const {
    return execute(request, cancel, deadline_us, nullptr, nullptr);
  }

  /// Full form with the tick channel (sweep streaming) and the chunked
  /// response channel; both may be null, in which case streaming methods
  /// answer without ticks and results materialize in the Response.
  [[nodiscard]] wire::Response execute(const wire::Request& request,
                                       const CancelToken& cancel,
                                       std::int64_t deadline_us,
                                       const Emit& emit,
                                       ChunkWriter* stream = nullptr) const;

 private:
  void finish(std::int64_t admitted_us, wire::Response&& response,
              const Done& done);

  Executor executor_;
  ServiceOptions options_;
  util::ThreadPool& pool_;
  util::Clock& clock_;
  SubscribeSource subscribe_;
  std::vector<StatsAugment> stats_augments_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  bool draining_ = false;
  std::uint64_t depth_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  stream::P2Quantile lat_p50_;
  stream::P2Quantile lat_p99_;
};

/// The canonical store-backed executor: every non-stats method of the
/// wire protocol evaluated against one Store. `clock` drives deadline
/// polling in long bodies (nullptr = steady wall clock) and should match
/// the owning service's clock so ManualClock tests stay deterministic.
[[nodiscard]] QueryService::Executor make_store_executor(
    const store::Store& store, util::Clock* clock = nullptr);

/// The scenario body on already-fetched input-power runs: replay the
/// baseline plus every requested variant (a sweep fans variants out over
/// dedicated worker threads), stream kVariantWindow ticks through `emit`
/// when the request's subscribe mask asks for them, and fill `*resp`
/// with series/summaries — or the kCancelled / kDeadlineExceeded verdict
/// when a leg was abandoned. The store executor and the cluster
/// coordinator both run exactly this function, differing only in where
/// the runs came from (local query_many vs shard scatter).
void run_scenario_request(const wire::Request& request,
                          const std::vector<store::MetricRun>& runs,
                          const stream::EngineOptions& opts,
                          const CancelToken& cancel,
                          std::int64_t deadline_us, util::Clock& clock,
                          const QueryService::Emit& emit,
                          wire::Response* resp);

}  // namespace exawatt::server
