#include "server/client.hpp"

#include <chrono>

#include "util/check.hpp"

namespace exawatt::server {

namespace {

using SteadyClock = std::chrono::steady_clock;

int remaining_ms(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - SteadyClock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

void Client::disconnect() {
  stream_.close();
  decoder_ = {};
  assembler_ = net::ChunkAssembler(options_.max_response_bytes);
}

void Client::ensure_connected() {
  if (stream_.valid()) return;
  const bool reconnecting = ever_connected_;
  if (reconnecting) ++stats_.reconnect_attempts;
  stream_ = net::TcpStream::connect(options_.host, options_.port,
                                    options_.connect_timeout_ms);
  decoder_ = {};
  assembler_ = net::ChunkAssembler(options_.max_response_bytes);
  ever_connected_ = true;
  ++stats_.connects;
  if (reconnecting) ++stats_.reconnect_successes;
}

void Client::send_request(const wire::Request& request, std::uint64_t id) {
  const auto bytes = net::encode_frame(net::FrameType::kRequest, id,
                                       wire::encode_request(request));
  stream_.write_all(bytes.data(), bytes.size(), options_.request_timeout_ms);
}

net::Frame Client::read_frame_for(std::uint64_t id, int timeout_ms) {
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t chunk[16 << 10];
  for (;;) {
    net::Frame frame;
    while (decoder_.next(frame)) {
      // Chunked responses reassemble here, transparently: callers only
      // ever see complete logical frames. A stream-contract violation is
      // connection-fatal — the byte stream cannot be trusted past it.
      try {
        if (!assembler_.feed(frame)) continue;
      } catch (const net::FrameError& e) {
        disconnect();
        throw net::NetError(std::string("chunk stream violation: ") +
                            e.what());
      }
      if (frame.type == net::FrameType::kGoodbye) {
        disconnect();
        throw net::NetError(
            "server closed the connection: " +
            std::string(frame.payload.begin(), frame.payload.end()));
      }
      if (frame.request_id == id) return frame;
      // A stale response (from an abandoned earlier request on this
      // connection) is skipped, not an error.
    }
    const int left = remaining_ms(deadline);
    if (left == 0 || !stream_.wait_readable(left)) {
      throw net::NetError("request timeout");
    }
    const net::IoResult r = stream_.read_some(chunk, sizeof(chunk));
    switch (r.status) {
      case net::IoStatus::kOk:
        try {
          decoder_.feed({chunk, r.n});
        } catch (const net::FrameError& e) {
          disconnect();
          throw net::NetError(std::string("protocol error from server: ") +
                              e.what());
        }
        break;
      case net::IoStatus::kWouldBlock:
        break;
      default:
        disconnect();
        throw net::NetError("connection lost");
    }
  }
}

wire::Response Client::call(const wire::Request& request) {
  EXA_CHECK(request.method != wire::Method::kSubscribe,
            "use Subscription for kSubscribe");
  ++stats_.calls;
  std::string last_error = "unreachable";
  bool downgrade_retried = false;
  for (int attempt = 0; attempt <= options_.max_reconnects; ++attempt) {
    try {
      ensure_connected();
      wire::Request effective = request;
      if (peer_no_chunks_) {
        effective.chunk_bytes = 0;
        effective.want_scan_blocks = false;  // tags 2..4 are trailing
        effective.qos_class = 1;             // bytes to an old peer too
        effective.tenant = 0;
      }
      const std::uint64_t id = next_id_++;
      send_request(effective, id);
      net::Frame frame = read_frame_for(id, options_.request_timeout_ms);
      // A call()er may receive ticks ahead of its response (a sweep
      // whose mask asked for streaming); they are skipped, not a
      // protocol violation — Subscription is the API that wants them.
      while (frame.type == net::FrameType::kTick) {
        frame = read_frame_for(id, options_.request_timeout_ms);
      }
      if (frame.type != net::FrameType::kResponse) {
        disconnect();
        throw net::NetError("unexpected frame type from server");
      }
      wire::Response resp;
      try {
        resp = wire::decode_response(frame.payload);
      } catch (const wire::WireError& e) {
        disconnect();
        throw net::NetError(std::string("bad response payload: ") + e.what());
      }
      if ((effective.chunk_bytes != 0 || effective.want_scan_blocks ||
           effective.qos_class != 1 || effective.tenant != 0) &&
          resp.status == wire::Status::kInvalidArgument &&
          resp.message.find("trailing bytes") != std::string::npos) {
        // Mixed-version negotiation: a pre-extension server rejects the
        // tagged trailer (chunking or qos) as trailing bytes. Downgrade
        // (sticky for this connection's lifetime) and retry once without
        // burning a reconnect attempt — the connection itself is healthy.
        peer_no_chunks_ = true;
        if (!downgrade_retried) {
          downgrade_retried = true;
          --attempt;
          continue;
        }
      }
      return resp;
    } catch (const net::NetError& e) {
      ++stats_.transport_errors;
      last_error = e.what();
      disconnect();
      // Reconnect-and-retry: reads are idempotent, and the broken
      // connection is the common failure after a server restart.
    }
  }
  throw net::NetError("request failed after " +
                      std::to_string(options_.max_reconnects + 1) +
                      " attempt(s): " + last_error);
}

Subscription::Subscription(ClientOptions options,
                           const wire::Request& request)
    : client_(std::move(options)) {
  EXA_CHECK(request.method == wire::Method::kSubscribe ||
                request.method == wire::Method::kScenarioSweep,
            "Subscription wants a streaming method (kSubscribe / "
            "kScenarioSweep)");
  client_.ensure_connected();
  id_ = client_.next_id_++;
  client_.send_request(request, id_);
}

std::optional<wire::Tick> Subscription::next(int timeout_ms) {
  if (ended_) return std::nullopt;
  net::Frame frame;
  try {
    frame = client_.read_frame_for(id_, timeout_ms);
  } catch (const net::NetError&) {
    if (!client_.connected()) {
      // Connection gone: the stream is over, not merely slow.
      ended_ = true;
      return std::nullopt;
    }
    throw;  // plain timeout — caller may keep waiting
  }
  if (frame.type == net::FrameType::kResponse) {
    result_ = wire::decode_response(frame.payload);
    ended_ = true;
    return std::nullopt;
  }
  if (frame.type != net::FrameType::kTick) {
    ended_ = true;
    return std::nullopt;
  }
  wire::Tick tick = wire::decode_tick(frame.payload);
  if (tick.kind == wire::TickKind::kEnd) {
    // Keep reading for the final response so result() is meaningful,
    // but the tick stream itself is done. The response follows the end
    // tick immediately; a short wait is enough.
    try {
      const net::Frame fin = client_.read_frame_for(id_, timeout_ms);
      if (fin.type == net::FrameType::kResponse) {
        result_ = wire::decode_response(fin.payload);
      }
    } catch (const net::NetError&) {
      // Tolerated: the stream delivered everything it promised.
    }
    ended_ = true;
    return std::nullopt;
  }
  ++ticks_;
  return tick;
}

void Subscription::close() {
  client_.disconnect();
  ended_ = true;
}

}  // namespace exawatt::server
