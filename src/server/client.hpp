#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "server/wire.hpp"

namespace exawatt::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// End-to-end budget for one call(): send + wait for the response.
  int request_timeout_ms = 5000;
  /// Transparent reconnect attempts after a broken connection before
  /// call() gives up (every method here is an idempotent read, so a
  /// retried request can at worst repeat work, never corrupt state).
  int max_reconnects = 1;
  /// Cap on one reassembled chunked response (kChunkOversized past it) —
  /// the client-side bound on what a hostile server can make it buffer.
  std::size_t max_response_bytes = net::kMaxAssembledResponse;
};

/// Lifetime link-health counters of one Client. A reconnect is any
/// connection attempt after the client has been connected at least once
/// — the signal that distinguishes a flapping link from first use.
struct ClientStats {
  std::uint64_t connects = 0;             ///< successful connections
  std::uint64_t reconnect_attempts = 0;   ///< re-dials after a drop
  std::uint64_t reconnect_successes = 0;
  std::uint64_t calls = 0;                ///< call() invocations
  std::uint64_t transport_errors = 0;     ///< NetError per attempt
};

/// Synchronous client for the query service: one connection, one request
/// in flight. call() blocks until the matching response or throws
/// net::NetError (transport loss / timeout). Response status is returned
/// as data — a shed or expired request is an answer, not an exception.
class Client {
 public:
  explicit Client(ClientOptions options);

  /// Lazily connects. Throws net::NetError when the server is
  /// unreachable after the configured reconnect attempts.
  [[nodiscard]] wire::Response call(const wire::Request& request);

  /// True while the underlying connection is believed healthy.
  [[nodiscard]] bool connected() const { return stream_.valid(); }
  /// Drop the connection; the next call() reconnects.
  void disconnect();

  [[nodiscard]] const ClientOptions& options() const { return options_; }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  friend class Subscription;
  void ensure_connected();
  void send_request(const wire::Request& request, std::uint64_t id);
  /// Next frame for `id` (skipping stale ids); throws on timeout/loss.
  [[nodiscard]] net::Frame read_frame_for(std::uint64_t id, int timeout_ms);

  ClientOptions options_;
  net::TcpStream stream_;
  net::FrameDecoder decoder_;
  net::ChunkAssembler assembler_;
  std::uint64_t next_id_ = 1;
  bool ever_connected_ = false;
  /// Sticky downgrade: the peer rejected the chunk_bytes extension
  /// ("trailing bytes..." INVALID_ARGUMENT), so it predates chunking —
  /// every later request is sent plain, no repeated probe round-trips.
  bool peer_no_chunks_ = false;
  ClientStats stats_;
};

/// A server-push subscription: issues a streaming request (kSubscribe,
/// or kScenarioSweep with the window bit set in `subscribe_mask`) on a
/// dedicated connection and iterates Tick frames. Ends when the server
/// sends a kEnd tick, the final response arrives, or the connection
/// drops.
class Subscription {
 public:
  /// `request.method` must be kSubscribe or kScenarioSweep.
  Subscription(ClientOptions options, const wire::Request& request);

  /// Next tick, or nullopt when the stream ended (kEnd consumed, final
  /// response received, or connection closed). Throws net::NetError on
  /// timeout — the stream may still be alive, callers may retry.
  [[nodiscard]] std::optional<wire::Tick> next(int timeout_ms);

  /// The final response, once the stream has ended (status of the whole
  /// subscription: kOk after kEnd, kCancelled, ...).
  [[nodiscard]] const std::optional<wire::Response>& result() const {
    return result_;
  }
  [[nodiscard]] bool ended() const { return ended_; }
  /// Ticks delivered so far.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  void close();

 private:
  Client client_;
  std::uint64_t id_ = 0;
  bool ended_ = false;
  std::uint64_t ticks_ = 0;
  std::optional<wire::Response> result_;
};

}  // namespace exawatt::server
