#include "server/server.hpp"

namespace exawatt::server {

Server::Server(const store::Store& store, ServerOptions options)
    : owned_service_(
          std::make_unique<QueryService>(store, options.service)),
      service_(*owned_service_) {
  init_loop(options);
}

Server::Server(QueryService& service, ServerOptions options)
    : service_(service) {
  init_loop(options);
}

void Server::init_loop(const ServerOptions& options) {
  net::EventLoop::Callbacks callbacks;
  callbacks.on_frame = [this](net::ConnId conn, net::Frame&& frame) {
    on_frame(conn, std::move(frame));
  };
  callbacks.on_open = [this](net::ConnId conn) { on_open(conn); };
  callbacks.on_close = [this](net::ConnId conn) { on_close(conn); };
  loop_ = std::make_unique<net::EventLoop>(
      net::TcpListener::bind(options.port, options.loopback_only),
      std::move(callbacks), options.loop);
}

void Server::on_open(net::ConnId conn) {
  std::lock_guard lk(mu_);
  tokens_.emplace(conn, make_cancel_token());
}

void Server::on_close(net::ConnId conn) {
  CancelToken token;
  {
    std::lock_guard lk(mu_);
    const auto it = tokens_.find(conn);
    if (it == tokens_.end()) return;
    token = std::move(it->second);
    tokens_.erase(it);
  }
  // Everything this peer still has queued or streaming is now pointless;
  // workers observe the trip before (or between ticks of) execution.
  token->store(true, std::memory_order_relaxed);
}

CancelToken Server::token_of(net::ConnId conn) {
  std::lock_guard lk(mu_);
  const auto it = tokens_.find(conn);
  return it != tokens_.end() ? it->second : make_cancel_token();
}

void Server::on_frame(net::ConnId conn, net::Frame&& frame) {
  if (frame.type != net::FrameType::kRequest) {
    // Clients must only ever send requests; anything else is a protocol
    // violation at the message layer — goodbye and close.
    loop_->send(conn,
                net::encode_frame(
                    net::FrameType::kGoodbye, frame.request_id,
                    {reinterpret_cast<const std::uint8_t*>("unexpected frame "
                                                           "type"),
                     21}));
    loop_->close_after_flush(conn);
    return;
  }
  const std::uint64_t request_id = frame.request_id;
  wire::Request request;
  try {
    request = wire::decode_request(frame.payload);
  } catch (const wire::WireError& e) {
    // Framing is intact (magic/CRC passed), so the connection survives a
    // malformed request body; only this request is rejected.
    wire::Response resp;
    resp.status = wire::Status::kInvalidArgument;
    resp.message = e.what();
    loop_->send(conn, net::encode_frame(net::FrameType::kResponse, request_id,
                                        wire::encode_response(resp)));
    return;
  }

  // Completion + ticks hop back to the loop thread via the mailbox; a
  // send to a vanished connection is a no-op (its token is tripped).
  auto emit = [this, conn, request_id](const wire::Tick& tick) {
    loop_->send(conn, net::encode_frame(net::FrameType::kTick, request_id,
                                        wire::encode_tick(tick)));
  };
  auto done = [this, conn, request_id](wire::Response&& resp) {
    loop_->send(conn, net::encode_frame(net::FrameType::kResponse, request_id,
                                        wire::encode_response(resp)));
  };
  service_.submit(std::move(request), token_of(conn), std::move(emit),
                  std::move(done));
}

void Server::run(const std::function<bool()>& until, int tick_ms) {
  if (!until) {
    loop_->run();
    return;
  }
  while (!until()) {
    if (!loop_->run_once(tick_ms)) return;
  }
}

void Server::shutdown() { loop_->stop(); }

void Server::drain(int max_flush_ms) {
  loop_->pause_accept();
  service_.drain();
  for (int waited = 0; waited < max_flush_ms && !loop_->output_idle();
       waited += 20) {
    if (!loop_->run_once(20)) break;
  }
}

}  // namespace exawatt::server
