#include "server/server.hpp"

#include <algorithm>

#include "server/chunk.hpp"

namespace exawatt::server {

namespace {

/// Negotiated chunk payload clamp: small enough that one chunk never
/// monopolizes a gate budget, large enough that framing overhead stays
/// negligible. The client asked for *about* this much per frame.
constexpr std::uint32_t kMinChunkBytes = 512;
constexpr std::uint32_t kMaxChunkBytes = 1u << 20;

}  // namespace

Server::Server(const store::Store& store, ServerOptions options)
    : owned_service_(
          std::make_unique<QueryService>(store, options.service)),
      service_(*owned_service_) {
  init_loop(options);
}

Server::Server(QueryService& service, ServerOptions options)
    : service_(service) {
  init_loop(options);
}

void Server::init_loop(const ServerOptions& options) {
  net::EventLoop::Callbacks callbacks;
  callbacks.on_frame = [this](net::ConnId conn, net::Frame&& frame) {
    on_frame(conn, std::move(frame));
  };
  callbacks.on_open = [this](net::ConnId conn) { on_open(conn); };
  callbacks.on_close = [this](net::ConnId conn) { on_close(conn); };
  loop_ = std::make_unique<net::EventLoop>(
      net::TcpListener::bind(options.port, options.loopback_only),
      std::move(callbacks), options.loop);
  // Chained after whatever augment the service owner installed (a
  // coordinator adds shard health first; both run).
  service_.set_stats_augment([this](wire::ServerStatsWire& s) {
    s.streams += streams_.load(std::memory_order_relaxed);
    s.stream_chunks += stream_chunks_.load(std::memory_order_relaxed);
    const net::LoopStats ls = loop_->stats();
    s.stream_pauses += ls.stream_pauses;
    s.stream_resumes += ls.stream_resumes;
  });
}

void Server::on_open(net::ConnId conn) {
  std::lock_guard lk(mu_);
  tokens_.emplace(conn, make_cancel_token());
}

void Server::on_close(net::ConnId conn) {
  CancelToken token;
  {
    std::lock_guard lk(mu_);
    const auto it = tokens_.find(conn);
    if (it == tokens_.end()) return;
    token = std::move(it->second);
    tokens_.erase(it);
  }
  // Everything this peer still has queued or streaming is now pointless;
  // workers observe the trip before (or between ticks of) execution.
  token->store(true, std::memory_order_relaxed);
}

CancelToken Server::token_of(net::ConnId conn) {
  std::lock_guard lk(mu_);
  const auto it = tokens_.find(conn);
  return it != tokens_.end() ? it->second : make_cancel_token();
}

void Server::on_frame(net::ConnId conn, net::Frame&& frame) {
  if (frame.type != net::FrameType::kRequest) {
    // Clients must only ever send requests; anything else is a protocol
    // violation at the message layer — goodbye and close.
    loop_->send(conn,
                net::encode_frame(
                    net::FrameType::kGoodbye, frame.request_id,
                    {reinterpret_cast<const std::uint8_t*>("unexpected frame "
                                                           "type"),
                     21}));
    loop_->close_after_flush(conn);
    return;
  }
  const std::uint64_t request_id = frame.request_id;
  wire::Request request;
  try {
    request = wire::decode_request(frame.payload);
  } catch (const wire::WireError& e) {
    // Framing is intact (magic/CRC passed), so the connection survives a
    // malformed request body; only this request is rejected.
    wire::Response resp;
    resp.status = wire::Status::kInvalidArgument;
    resp.message = e.what();
    loop_->send(conn, net::encode_frame(net::FrameType::kResponse, request_id,
                                        wire::encode_response(resp)));
    return;
  }

  const CancelToken token = token_of(conn);

  // Chunked streaming, when the request negotiated it: the writer slices
  // encoded response bytes into kChunk/kFinal frames whose budget it
  // acquires from this connection's stream gate — a peer that stops
  // draining pauses the producing worker instead of ballooning memory.
  std::shared_ptr<ChunkWriter> writer;
  if (request.chunk_bytes != 0) {
    const std::shared_ptr<net::StreamGate> gate = loop_->gate_of(conn);
    if (gate != nullptr) {
      ChunkWriter::Sink sink;
      sink.acquire = [gate](std::size_t n,
                            const std::function<bool()>& cancelled) {
        return gate->acquire(n, cancelled);
      };
      sink.send = [this, conn](std::vector<std::uint8_t>&& bytes) {
        return loop_->send(conn, std::move(bytes), /*gated=*/true);
      };
      writer = std::make_shared<ChunkWriter>(
          request_id,
          std::clamp(request.chunk_bytes, kMinChunkBytes, kMaxChunkBytes),
          std::move(sink),
          [token] { return token->load(std::memory_order_relaxed); });
      streams_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Completion + ticks hop back to the loop thread via the mailbox; a
  // send to a vanished connection is a no-op (its token is tripped).
  auto emit = [this, conn, request_id](const wire::Tick& tick) {
    loop_->send(conn, net::encode_frame(net::FrameType::kTick, request_id,
                                        wire::encode_tick(tick)));
  };
  auto done = [this, conn, request_id, writer](wire::Response&& resp) {
    if (writer != nullptr) {
      if (!writer->terminated()) {
        if (resp.status == wire::Status::kOk) {
          // Materialized-but-chunked path (executor body that ignores
          // the stream): runs on a pool thread, so blocking on the gate
          // here is the intended backpressure. A streaming body already
          // terminated the writer and never reaches this.
          const auto payload = wire::encode_response(resp);
          if (writer->write(payload)) (void)writer->finish();
        } else if (writer->streamed()) {
          // Failure after fragments went out: disown them with kAbort.
          (void)writer->abort(resp);
        } else {
          // Nothing streamed yet, and error dones can run inline on the
          // loop thread (shed/drain/invalid) — a plain ungated frame
          // must not block on the gate that very thread drains.
          loop_->send(conn,
                      net::encode_frame(net::FrameType::kResponse, request_id,
                                        wire::encode_response(resp)));
        }
      }
      stream_chunks_.fetch_add(writer->chunks(), std::memory_order_relaxed);
      return;
    }
    loop_->send(conn, net::encode_frame(net::FrameType::kResponse, request_id,
                                        wire::encode_response(resp)));
  };
  service_.submit(std::move(request), token, std::move(emit),
                  std::move(done), writer.get());
}

void Server::run(const std::function<bool()>& until, int tick_ms) {
  if (!until) {
    loop_->run();
    return;
  }
  while (!until()) {
    if (!loop_->run_once(tick_ms)) return;
  }
}

void Server::shutdown() { loop_->stop(); }

void Server::drain(int max_flush_ms) {
  loop_->pause_accept();
  service_.drain();
  for (int waited = 0; waited < max_flush_ms && !loop_->output_idle();
       waited += 20) {
    if (!loop_->run_once(20)) break;
  }
}

}  // namespace exawatt::server
