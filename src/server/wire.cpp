#include "server/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "telemetry/codec.hpp"
#include "util/check.hpp"

namespace exawatt::server::wire {

namespace {

/// Bounded little-endian writer/reader pair. Every read checks the
/// remaining byte count first — a response decoded by the client and a
/// request decoded by the server both treat the payload as adversarial.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void doubles(std::span<const double> v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  std::uint8_t u8() {
    need(1);
    return in_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  /// View of the next n raw bytes (no copy; valid while the payload is).
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    const std::span<const std::uint8_t> v = in_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  /// Element count declared for `elem_bytes`-sized items; rejected when
  /// it exceeds what the remaining payload can physically hold, so a
  /// hostile count can never size an allocation.
  std::size_t count(std::size_t elem_bytes) {
    const std::uint64_t n = u64();
    if (n > remaining() / elem_bytes) {
      throw WireError("declared count exceeds payload");
    }
    return static_cast<std::size_t>(n);
  }
  std::vector<double> doubles() {
    const std::size_t n = count(8);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

 private:
  void need(std::size_t n) {
    if (remaining() < n) throw WireError("truncated payload");
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

void write_series(Writer& w, const ts::Series& s) {
  w.i64(s.start());
  w.i64(s.dt());
  w.doubles(s.values());
}

ts::Series read_series(Reader& r) {
  const util::TimeSec start = r.i64();
  const util::TimeSec dt = r.i64();
  std::vector<double> values = r.doubles();
  if (values.empty()) return {};
  if (dt <= 0) throw WireError("series dt must be positive");
  return ts::Series(start, dt, std::move(values));
}

void write_stats(Writer& w, const store::QueryStats& s) {
  w.u64(s.lost_segments);
  w.u64(s.lost_blocks);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
}

store::QueryStats read_stats(Reader& r) {
  store::QueryStats s;
  s.lost_segments = static_cast<std::size_t>(r.u64());
  s.lost_blocks = static_cast<std::size_t>(r.u64());
  s.cache_hits = static_cast<std::size_t>(r.u64());
  s.cache_misses = static_cast<std::size_t>(r.u64());
  return s;
}

Method read_method(Reader& r) {
  const std::uint8_t m = r.u8();
  if (m > static_cast<std::uint8_t>(Method::kScanBlocks)) {
    throw WireError("unknown method " + std::to_string(int{m}));
  }
  return static_cast<Method>(m);
}

/// ScenarioSpec travels with its cooling override as a count-prefixed
/// double block (same mixed-version posture as the kServerStats
/// extension block): a decoder fills the tunables it knows by position
/// and skips the rest, so adding a CoolingParams field is not a protocol
/// break.
void write_spec(Writer& w, const scenario::ScenarioSpec& spec) {
  w.str(spec.name);
  std::uint32_t flags = 0;
  if (spec.force_chillers) flags |= 1u;
  if (spec.has_weather_seed) flags |= 2u;
  if (spec.has_cooling) flags |= 4u;
  w.u32(flags);
  w.f64(spec.power_cap_w);
  w.f64(spec.wet_bulb_offset_c);
  w.u64(spec.weather_seed);
  if (!spec.has_cooling) {
    w.u64(0);
    return;
  }
  const facility::CoolingParams& c = spec.cooling;
  const double cooling[] = {
      c.mtw_supply_setpoint_c, c.tower_approach_c,  c.tower_fade_band_c,
      c.stage_up_tau_s,        c.stage_down_tau_s,  c.supply_tau_s,
      c.loop_w_per_c,          static_cast<double>(c.return_delay_s),
      c.pump_power_w,          c.distribution_loss_frac,
      c.tower_fan_w_per_w,     c.chiller_w_per_w,
  };
  w.doubles(cooling);
}

scenario::ScenarioSpec read_spec(Reader& r) {
  scenario::ScenarioSpec spec;
  spec.name = r.str();
  const std::uint32_t flags = r.u32();
  spec.force_chillers = (flags & 1u) != 0;
  spec.has_weather_seed = (flags & 2u) != 0;
  spec.has_cooling = (flags & 4u) != 0;
  spec.power_cap_w = r.f64();
  spec.wet_bulb_offset_c = r.f64();
  spec.weather_seed = r.u64();
  const std::size_t n = r.count(8);
  facility::CoolingParams& c = spec.cooling;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = r.f64();
    switch (i) {
      case 0: c.mtw_supply_setpoint_c = v; break;
      case 1: c.tower_approach_c = v; break;
      case 2: c.tower_fade_band_c = v; break;
      case 3: c.stage_up_tau_s = v; break;
      case 4: c.stage_down_tau_s = v; break;
      case 5: c.supply_tau_s = v; break;
      case 6: c.loop_w_per_c = v; break;
      case 7: c.return_delay_s = static_cast<util::TimeSec>(v); break;
      case 8: c.pump_power_w = v; break;
      case 9: c.distribution_loss_frac = v; break;
      case 10: c.tower_fan_w_per_w = v; break;
      case 11: c.chiller_w_per_w = v; break;
      default: break;  // newer peer's tunable — skip
    }
  }
  if (spec.has_cooling && n == 0) {
    throw WireError("cooling override flagged but no tunables sent");
  }
  return spec;
}

void write_summary(Writer& w, const scenario::ScenarioSummary& s) {
  w.str(s.name);
  w.u64(s.windows);
  w.f64(s.energy_j);
  w.f64(s.baseline_energy_j);
  w.f64(s.mean_pue);
  w.f64(s.baseline_mean_pue);
  w.f64(s.peak_power_w);
  w.f64(s.baseline_peak_power_w);
  w.f64(s.max_power_delta_w);
  w.f64(s.max_pue_delta);
}

scenario::ScenarioSummary read_summary(Reader& r) {
  scenario::ScenarioSummary s;
  s.name = r.str();
  s.windows = r.u64();
  s.energy_j = r.f64();
  s.baseline_energy_j = r.f64();
  s.mean_pue = r.f64();
  s.baseline_mean_pue = r.f64();
  s.peak_power_w = r.f64();
  s.baseline_peak_power_w = r.f64();
  s.max_power_delta_w = r.f64();
  s.max_pue_delta = r.f64();
  return s;
}

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kPing: return "ping";
    case Method::kWindowSum: return "window_sum";
    case Method::kScan: return "scan";
    case Method::kClusterSum: return "cluster_sum";
    case Method::kPueRollup: return "pue_rollup";
    case Method::kSubscribe: return "subscribe";
    case Method::kServerStats: return "server_stats";
    case Method::kDirectory: return "directory";
    case Method::kScenario: return "scenario";
    case Method::kScenarioSweep: return "scenario_sweep";
    case Method::kScanBlocks: return "scan_blocks";
  }
  return "unknown";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kCancelled: return "CANCELLED";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kUnimplemented: return "UNIMPLEMENTED";
    case Status::kInternal: return "INTERNAL";
    case Status::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode_request(const Request& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(req.method));
  w.u32(req.deadline_ms);
  switch (req.method) {
    case Method::kPing:
    case Method::kServerStats:
    case Method::kDirectory:
      break;
    case Method::kWindowSum:
      w.u32(req.metric);
      w.i64(req.range.begin);
      w.i64(req.range.end);
      w.i64(req.window);
      break;
    case Method::kScan:
      w.u64(req.metrics.size());
      for (const telemetry::MetricId id : req.metrics) w.u32(id);
      w.i64(req.range.begin);
      w.i64(req.range.end);
      break;
    case Method::kClusterSum:
    case Method::kPueRollup:
      w.u64(req.nodes.size());
      for (const machine::NodeId n : req.nodes) w.u32(static_cast<std::uint32_t>(n));
      w.u32(static_cast<std::uint32_t>(req.channel));
      w.i64(req.range.begin);
      w.i64(req.range.end);
      w.i64(req.window);
      break;
    case Method::kSubscribe:
      w.u8(req.subscribe_mask);
      break;
    case Method::kScenario:
    case Method::kScenarioSweep:
      w.u64(req.nodes.size());
      for (const machine::NodeId n : req.nodes) w.u32(static_cast<std::uint32_t>(n));
      w.i64(req.range.begin);
      w.i64(req.range.end);
      w.i64(req.window);
      w.u8(req.subscribe_mask);
      w.u64(req.scenarios.size());
      for (const scenario::ScenarioSpec& spec : req.scenarios) {
        write_spec(w, spec);
      }
      break;
    case Method::kScanBlocks:
      throw WireError("scan_blocks is response-only (request as kScan)");
  }
  // Trailing (tag,value) extension block, written only when a non-default
  // option is set: a peer that predates it sees "trailing bytes after
  // request" (per-request INVALID_ARGUMENT, connection intact) and the
  // Client falls back to a plain request — never a silent misparse.
  const std::uint32_t n_ext = (req.chunk_bytes != 0 ? 1u : 0u) +
                              (req.want_scan_blocks ? 1u : 0u) +
                              (req.qos_class != 1 ? 1u : 0u) +
                              (req.tenant != 0 ? 1u : 0u);
  if (n_ext != 0) {
    w.u32(n_ext);  // extension count
    if (req.chunk_bytes != 0) {
      w.u32(1);  // tag 1: chunk_bytes
      w.u32(req.chunk_bytes);
    }
    if (req.want_scan_blocks) {
      w.u32(2);  // tag 2: answer a kScan in block form
      w.u32(1);
    }
    if (req.qos_class != 1) {
      w.u32(3);  // tag 3: QoS priority class
      w.u32(req.qos_class);
    }
    if (req.tenant != 0) {
      w.u32(4);  // tag 4: tenant id (per-tenant fair queueing)
      w.u32(req.tenant);
    }
  }
  return w.take();
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Request req;
  req.method = read_method(r);
  req.deadline_ms = r.u32();
  switch (req.method) {
    case Method::kPing:
    case Method::kServerStats:
    case Method::kDirectory:
      break;
    case Method::kWindowSum:
      req.metric = r.u32();
      req.range.begin = r.i64();
      req.range.end = r.i64();
      req.window = r.i64();
      break;
    case Method::kScan: {
      const std::size_t n = r.count(4);
      req.metrics.reserve(n);
      for (std::size_t i = 0; i < n; ++i) req.metrics.push_back(r.u32());
      req.range.begin = r.i64();
      req.range.end = r.i64();
      break;
    }
    case Method::kClusterSum:
    case Method::kPueRollup: {
      const std::size_t n = r.count(4);
      req.nodes.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        req.nodes.push_back(static_cast<machine::NodeId>(r.u32()));
      }
      req.channel = static_cast<int>(r.u32());
      req.range.begin = r.i64();
      req.range.end = r.i64();
      req.window = r.i64();
      break;
    }
    case Method::kSubscribe:
      req.subscribe_mask = r.u8();
      break;
    case Method::kScenario:
    case Method::kScenarioSweep: {
      const std::size_t n = r.count(4);
      req.nodes.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        req.nodes.push_back(static_cast<machine::NodeId>(r.u32()));
      }
      req.range.begin = r.i64();
      req.range.end = r.i64();
      req.window = r.i64();
      req.subscribe_mask = r.u8();
      // 40 = the fixed bytes of one spec (4-byte name length + flags +
      // two doubles + seed + cooling count) — bounds the allocation.
      const std::size_t n_specs = r.count(40);
      req.scenarios.reserve(n_specs);
      for (std::size_t i = 0; i < n_specs; ++i) {
        req.scenarios.push_back(read_spec(r));
      }
      break;
    }
    case Method::kScanBlocks:
      throw WireError("scan_blocks is response-only (request as kScan)");
  }
  if (!r.done()) {
    // (tag,value) extensions appended by newer clients; unknown tags are
    // skipped so this decoder stays forward-compatible.
    const std::uint32_t n_ext = r.u32();
    if (n_ext > r.remaining() / 8) {
      throw WireError("declared count exceeds payload");
    }
    for (std::uint32_t i = 0; i < n_ext; ++i) {
      const std::uint32_t tag = r.u32();
      const std::uint32_t value = r.u32();
      switch (tag) {
        case 1: req.chunk_bytes = value; break;
        case 2: req.want_scan_blocks = value != 0; break;
        case 3: req.qos_class = value; break;
        case 4: req.tenant = value; break;
        default: break;  // newer peer's option — skip
      }
    }
  }
  if (!r.done()) throw WireError("trailing bytes after request");
  return req;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.u8(static_cast<std::uint8_t>(resp.method));
  if (resp.status != Status::kOk) {
    w.str(resp.message);
    // Count-prefixed u64 extension block; index 0 = shed cost hint. A
    // pre-QoS decoder throws "trailing bytes after error response" on
    // it, so the service only sets the hint for peers whose request
    // carried a qos tag (see Response::shed_cost_hint_us).
    if (resp.shed_cost_hint_us != 0) {
      w.u64(1);
      w.u64(resp.shed_cost_hint_us);
    }
    return w.take();
  }
  switch (resp.method) {
    case Method::kPing:
      break;
    case Method::kWindowSum:
      w.i64(resp.window_sum.start);
      w.i64(resp.window_sum.window);
      w.doubles(resp.window_sum.sum);
      w.u64(resp.window_sum.count.size());
      for (const std::uint64_t c : resp.window_sum.count) w.u64(c);
      write_stats(w, resp.stats);
      break;
    case Method::kScan:
      w.u64(resp.runs.size());
      for (const store::MetricRun& run : resp.runs) {
        w.u32(run.id);
        w.u64(run.samples.size());
        for (const ts::Sample& s : run.samples) {
          w.i64(s.t);
          w.f64(s.value);
        }
      }
      write_stats(w, resp.stats);
      break;
    case Method::kClusterSum:
      write_series(w, resp.series);
      w.doubles(resp.counts);
      write_stats(w, resp.stats);
      break;
    case Method::kPueRollup:
      write_series(w, resp.series);
      write_series(w, resp.pue);
      write_stats(w, resp.stats);
      break;
    case Method::kSubscribe:
      // The OK response just acknowledges the subscription; ticks follow
      // as separate frames with the same request id.
      break;
    case Method::kServerStats:
      w.u64(resp.server.accepted);
      w.u64(resp.server.served);
      w.u64(resp.server.shed);
      w.u64(resp.server.deadline_exceeded);
      w.u64(resp.server.cancelled);
      w.u64(resp.server.failed);
      w.u64(resp.server.queue_depth);
      w.u64(resp.server.queue_limit);
      w.f64(resp.server.p50_ms);
      w.f64(resp.server.p99_ms);
      // Count-prefixed extension block: new u64 counters append here, so
      // a mixed-version rollout degrades gracefully instead of throwing
      // transport-looking WireErrors — an old decoder skips fields it
      // does not know, a new decoder zero-fills fields an old server
      // never sent.
      w.u64(19);
      w.u64(resp.server.reconnects_attempted);
      w.u64(resp.server.reconnects_succeeded);
      w.u64(resp.server.shards_total);
      w.u64(resp.server.shards_down);
      w.u64(resp.server.streams);
      w.u64(resp.server.stream_chunks);
      w.u64(resp.server.stream_pauses);
      w.u64(resp.server.stream_resumes);
      w.u64(resp.server.qos_workers);
      w.u64(resp.server.qos_backlog_cost_us);
      for (const std::uint64_t v : resp.server.qos_served) w.u64(v);
      for (const std::uint64_t v : resp.server.qos_shed) w.u64(v);
      for (const std::uint64_t v : resp.server.qos_p99_us) w.u64(v);
      break;
    case Method::kDirectory:
      w.u64(resp.directory.total_events);
      w.u64(resp.directory.buffered_events);
      w.i64(resp.directory.bounds.begin);
      w.i64(resp.directory.bounds.end);
      w.u64(resp.directory.segments.size());
      for (const store::SegmentMeta& s : resp.directory.segments) {
        w.str(s.file);
        w.i64(s.day);
        w.u64(s.events);
        w.u64(s.bytes);
        w.i64(s.t_min);
        w.i64(s.t_max);
      }
      break;
    case Method::kScenario:
      write_series(w, resp.series);
      write_series(w, resp.pue);
      write_series(w, resp.baseline_power);
      write_series(w, resp.baseline_pue);
      w.u64(resp.scenarios.size());
      for (const scenario::ScenarioSummary& s : resp.scenarios) {
        write_summary(w, s);
      }
      write_stats(w, resp.stats);
      break;
    case Method::kScenarioSweep:
      // Summaries only: a sweep's full series fan back as kVariantWindow
      // ticks when the client asked for them, not as an N-fold response.
      w.u64(resp.scenarios.size());
      for (const scenario::ScenarioSummary& s : resp.scenarios) {
        write_summary(w, s);
      }
      write_stats(w, resp.stats);
      break;
    case Method::kScanBlocks:
      // Materialized fallback (roundtrip tests, abort paths): each run
      // travels as one loose-sample batch. Byte-compatible with the
      // streamed form, which mixes raw block pieces in.
      w.u64(resp.runs.size());
      for (const store::MetricRun& run : resp.runs) {
        w.u32(run.id);
        w.u8(0);
        w.u64(run.samples.size());
        for (const ts::Sample& s : run.samples) {
          w.i64(s.t);
          w.f64(s.value);
        }
        w.u8(2);
      }
      write_stats(w, resp.stats);
      break;
  }
  return w.take();
}

Response decode_response(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Response resp;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kUnavailable)) {
    throw WireError("unknown status " + std::to_string(int{status}));
  }
  resp.status = static_cast<Status>(status);
  resp.method = read_method(r);
  if (resp.status != Status::kOk) {
    resp.message = r.str();
    if (!r.done()) {
      // Count-prefixed extension (shed cost hint and whatever a newer
      // server appends after it) — same skip-unknown contract as the
      // server-stats block.
      const std::size_t n_ext = r.count(8);
      for (std::size_t i = 0; i < n_ext; ++i) {
        const std::uint64_t v = r.u64();
        switch (i) {
          case 0: resp.shed_cost_hint_us = v; break;
          default: break;  // newer peer's field — skip
        }
      }
    }
    if (!r.done()) throw WireError("trailing bytes after error response");
    return resp;
  }
  switch (resp.method) {
    case Method::kPing:
      break;
    case Method::kWindowSum: {
      resp.window_sum.start = r.i64();
      resp.window_sum.window = r.i64();
      resp.window_sum.sum = r.doubles();
      const std::size_t n = r.count(8);
      resp.window_sum.count.reserve(n);
      for (std::size_t i = 0; i < n; ++i) resp.window_sum.count.push_back(r.u64());
      if (resp.window_sum.count.size() != resp.window_sum.sum.size()) {
        throw WireError("window_sum sum/count length mismatch");
      }
      resp.stats = read_stats(r);
      break;
    }
    case Method::kScan: {
      const std::size_t n_runs = r.count(12);
      resp.runs.reserve(n_runs);
      for (std::size_t i = 0; i < n_runs; ++i) {
        store::MetricRun run;
        run.id = r.u32();
        const std::size_t n = r.count(16);
        run.samples.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
          ts::Sample s;
          s.t = r.i64();
          s.value = r.f64();
          run.samples.push_back(s);
        }
        resp.runs.push_back(std::move(run));
      }
      resp.stats = read_stats(r);
      break;
    }
    case Method::kClusterSum:
      resp.series = read_series(r);
      resp.counts = r.doubles();
      resp.stats = read_stats(r);
      break;
    case Method::kPueRollup:
      resp.series = read_series(r);
      resp.pue = read_series(r);
      resp.stats = read_stats(r);
      break;
    case Method::kSubscribe:
      break;
    case Method::kServerStats: {
      resp.server.accepted = r.u64();
      resp.server.served = r.u64();
      resp.server.shed = r.u64();
      resp.server.deadline_exceeded = r.u64();
      resp.server.cancelled = r.u64();
      resp.server.failed = r.u64();
      resp.server.queue_depth = r.u64();
      resp.server.queue_limit = r.u64();
      resp.server.p50_ms = r.f64();
      resp.server.p99_ms = r.f64();
      // Extension block (see encoder): absent on pre-cluster servers
      // (fields stay zero), and counters this decoder does not know yet
      // are consumed and ignored rather than tripping "trailing bytes".
      if (!r.done()) {
        const std::size_t n_ext = r.count(8);
        for (std::size_t i = 0; i < n_ext; ++i) {
          const std::uint64_t v = r.u64();
          switch (i) {
            case 0: resp.server.reconnects_attempted = v; break;
            case 1: resp.server.reconnects_succeeded = v; break;
            case 2: resp.server.shards_total = v; break;
            case 3: resp.server.shards_down = v; break;
            case 4: resp.server.streams = v; break;
            case 5: resp.server.stream_chunks = v; break;
            case 6: resp.server.stream_pauses = v; break;
            case 7: resp.server.stream_resumes = v; break;
            case 8: resp.server.qos_workers = v; break;
            case 9: resp.server.qos_backlog_cost_us = v; break;
            case 10: case 11: case 12:
              resp.server.qos_served[i - 10] = v;
              break;
            case 13: case 14: case 15:
              resp.server.qos_shed[i - 13] = v;
              break;
            case 16: case 17: case 18:
              resp.server.qos_p99_us[i - 16] = v;
              break;
            default: break;  // newer peer's counter — skip
          }
        }
      }
      break;
    }
    case Method::kDirectory: {
      resp.directory.total_events = r.u64();
      resp.directory.buffered_events = r.u64();
      resp.directory.bounds.begin = r.i64();
      resp.directory.bounds.end = r.i64();
      // 44 = the fixed bytes of one entry (4-byte name length + 5 ints);
      // a hostile count can never size an allocation past the payload.
      const std::size_t n = r.count(44);
      resp.directory.segments.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        store::SegmentMeta s;
        s.file = r.str();
        s.day = r.i64();
        s.events = r.u64();
        s.bytes = r.u64();
        s.t_min = r.i64();
        s.t_max = r.i64();
        resp.directory.segments.push_back(std::move(s));
      }
      break;
    }
    case Method::kScenario: {
      resp.series = read_series(r);
      resp.pue = read_series(r);
      resp.baseline_power = read_series(r);
      resp.baseline_pue = read_series(r);
      // 76 = fixed bytes of one summary (4-byte name length + the window
      // count + 8 doubles).
      const std::size_t n = r.count(76);
      resp.scenarios.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        resp.scenarios.push_back(read_summary(r));
      }
      resp.stats = read_stats(r);
      break;
    }
    case Method::kScenarioSweep: {
      const std::size_t n = r.count(76);
      resp.scenarios.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        resp.scenarios.push_back(read_summary(r));
      }
      resp.stats = read_stats(r);
      break;
    }
    case Method::kScanBlocks: {
      // Block-form scan: decode raw codec blocks right here so callers
      // see the same MetricRuns a kScan response carries. Per-run
      // re-sort with sample_less reproduces the kScan byte order —
      // the sorted run is a pure function of the sample multiset.
      const std::size_t n_runs = r.count(5);  // u32 id + end marker
      resp.runs.reserve(n_runs);
      for (std::size_t i = 0; i < n_runs; ++i) {
        store::MetricRun run;
        run.id = r.u32();
        for (;;) {
          const std::uint8_t piece = r.u8();
          if (piece == 2) break;
          if (piece == 0) {
            const std::size_t n = r.count(16);
            run.samples.reserve(run.samples.size() + n);
            for (std::size_t j = 0; j < n; ++j) {
              ts::Sample s;
              s.t = r.i64();
              s.value = r.f64();
              run.samples.push_back(s);
            }
            continue;
          }
          if (piece != 1) throw WireError("scan_blocks: unknown piece tag");
          const std::uint32_t n_bytes = r.u32();
          const std::uint32_t n_events = r.u32();
          const std::span<const std::uint8_t> raw = r.bytes(n_bytes);
          const std::size_t before = run.samples.size();
          std::size_t total = 0;
          try {
            total = telemetry::decode_filter_into(
                telemetry::EncodedView{raw, n_events}, run.id,
                {std::numeric_limits<util::TimeSec>::min(),
                 std::numeric_limits<util::TimeSec>::max()},
                run.samples);
          } catch (const util::CheckError& e) {
            throw WireError(std::string("scan_blocks: damaged block: ") +
                            e.what());
          }
          // A whole block belongs to one metric and ships uncut, so the
          // decode must account for every declared event.
          if (total != n_events ||
              run.samples.size() - before != n_events) {
            throw WireError("scan_blocks: block event count mismatch");
          }
        }
        std::sort(run.samples.begin(), run.samples.end(),
                  store::sample_less);
        resp.runs.push_back(std::move(run));
      }
      resp.stats = read_stats(r);
      break;
    }
  }
  if (!r.done()) throw WireError("trailing bytes after response");
  return resp;
}

void scan_stream_begin(std::size_t n_runs, std::vector<std::uint8_t>* out) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Status::kOk));
  w.u8(static_cast<std::uint8_t>(Method::kScan));
  w.u64(n_runs);
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_stream_run(const store::MetricRun& run,
                     std::vector<std::uint8_t>* out) {
  Writer w;
  w.u32(run.id);
  w.u64(run.samples.size());
  for (const ts::Sample& s : run.samples) {
    w.i64(s.t);
    w.f64(s.value);
  }
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_stream_end(const store::QueryStats& stats,
                     std::vector<std::uint8_t>* out) {
  Writer w;
  write_stats(w, stats);
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_blocks_begin(std::size_t n_runs, std::vector<std::uint8_t>* out) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Status::kOk));
  w.u8(static_cast<std::uint8_t>(Method::kScanBlocks));
  w.u64(n_runs);
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_blocks_run_begin(telemetry::MetricId id,
                           std::vector<std::uint8_t>* out) {
  Writer w;
  w.u32(id);
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_blocks_block_header(std::uint32_t n_bytes, std::uint32_t n_events,
                              std::vector<std::uint8_t>* out) {
  Writer w;
  w.u8(1);  // piece: raw encoded block (bytes follow, written separately)
  w.u32(n_bytes);
  w.u32(n_events);
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_blocks_samples(std::span<const ts::Sample> samples,
                         std::vector<std::uint8_t>* out) {
  Writer w;
  w.u8(0);  // piece: loose time-sorted samples
  w.u64(samples.size());
  for (const ts::Sample& s : samples) {
    w.i64(s.t);
    w.f64(s.value);
  }
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

void scan_blocks_run_end(std::vector<std::uint8_t>* out) {
  out->push_back(2);  // piece: end of run
}

void scan_blocks_end(const store::QueryStats& stats,
                     std::vector<std::uint8_t>* out) {
  Writer w;
  write_stats(w, stats);
  const auto bytes = w.take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> encode_tick(const Tick& tick) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(tick.kind));
  switch (tick.kind) {
    case TickKind::kWindow:
      w.u64(tick.index);
      w.i64(tick.t);
      w.f64(tick.power_w);
      w.f64(tick.pue);
      w.f64(tick.nodes_reporting);
      break;
    case TickKind::kAlert:
      w.u8(static_cast<std::uint8_t>(tick.alert.kind));
      w.u8(tick.alert.raised ? 1 : 0);
      w.i64(tick.alert.t);
      w.i64(tick.alert.node);
      w.f64(tick.alert.value);
      break;
    case TickKind::kEnd:
      break;
    case TickKind::kVariantWindow:
      w.u32(tick.variant);
      w.u64(tick.index);
      w.i64(tick.t);
      w.f64(tick.power_w);
      w.f64(tick.pue);
      w.f64(tick.nodes_reporting);
      break;
  }
  return w.take();
}

Tick decode_tick(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Tick tick;
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(TickKind::kWindow):
      tick.kind = TickKind::kWindow;
      tick.index = r.u64();
      tick.t = r.i64();
      tick.power_w = r.f64();
      tick.pue = r.f64();
      tick.nodes_reporting = r.f64();
      break;
    case static_cast<std::uint8_t>(TickKind::kAlert): {
      tick.kind = TickKind::kAlert;
      const std::uint8_t akind = r.u8();
      if (akind > static_cast<std::uint8_t>(stream::AlertKind::kIngestDrops)) {
        throw WireError("unknown alert kind");
      }
      tick.alert.kind = static_cast<stream::AlertKind>(akind);
      tick.alert.raised = r.u8() != 0;
      tick.alert.t = r.i64();
      tick.alert.node = static_cast<machine::NodeId>(r.i64());
      tick.alert.value = r.f64();
      break;
    }
    case static_cast<std::uint8_t>(TickKind::kEnd):
      tick.kind = TickKind::kEnd;
      break;
    case static_cast<std::uint8_t>(TickKind::kVariantWindow):
      tick.kind = TickKind::kVariantWindow;
      tick.variant = r.u32();
      tick.index = r.u64();
      tick.t = r.i64();
      tick.power_w = r.f64();
      tick.pue = r.f64();
      tick.nodes_reporting = r.f64();
      break;
    default:
      throw WireError("unknown tick kind");
  }
  if (!r.done()) throw WireError("trailing bytes after tick");
  return tick;
}

std::uint64_t response_event_volume(const Response& resp) {
  if (resp.status != Status::kOk) return 0;
  std::uint64_t volume = 0;
  for (const std::uint64_t c : resp.window_sum.count) volume += c;
  for (const store::MetricRun& run : resp.runs) volume += run.samples.size();
  volume += resp.series.size();
  volume += resp.pue.size();
  volume += resp.baseline_power.size();
  volume += resp.baseline_pue.size();
  for (const scenario::ScenarioSummary& s : resp.scenarios) {
    // A sweep response carries aggregates; the replayed windows behind
    // them are its read volume (two legs: baseline + variant).
    if (resp.method == Method::kScenarioSweep) volume += 2 * s.windows;
  }
  return volume;
}

}  // namespace exawatt::server::wire
