#include "server/service.hpp"

#include <limits>
#include <thread>

#include "scenario/engine.hpp"
#include "server/chunk.hpp"
#include "stream/replay.hpp"
#include "telemetry/metric.hpp"
#include "util/check.hpp"

namespace exawatt::server {

// Rejects before the store's round-up arithmetic
// (`(duration + window - 1) / window` doubles) can overflow or demand
// an absurd allocation.
bool grid_ok(util::TimeRange range, util::TimeSec window, std::string* why) {
  if (range.begin > range.end) {
    *why = "range begin > end";
    return false;
  }
  const util::TimeSec duration = range.duration();
  if (duration < 0) {  // wider than INT64_MAX seconds (unsigned wrap)
    *why = "range too wide";
    return false;
  }
  if (window <= 0) {
    *why = "window must be positive";
    return false;
  }
  if (window - 1 > std::numeric_limits<util::TimeSec>::max() - duration) {
    *why = "window too large";  // duration + window - 1 would overflow
    return false;
  }
  if (duration / window > static_cast<util::TimeSec>(1) << 24) {
    *why = "window grid too large";
    return false;
  }
  return true;
}

bool scenario_request_ok(const wire::Request& request,
                         util::TimeRange bounds,
                         stream::EngineOptions* opts,
                         wire::Response* resp) {
  const auto invalid = [&](std::string why) {
    resp->status = wire::Status::kInvalidArgument;
    resp->message = std::move(why);
    return false;
  };
  if (request.nodes.empty()) return invalid("scenario wants nodes");
  if (request.nodes.size() > 4096) {
    return invalid("too many nodes for a scenario replay");
  }
  const std::size_t max_specs =
      request.method == wire::Method::kScenario ? 1 : wire::kMaxSweepVariants;
  if (request.scenarios.empty() || request.scenarios.size() > max_specs) {
    return invalid(request.method == wire::Method::kScenario
                       ? "scenario wants exactly one spec"
                       : "sweep wants 1..64 specs");
  }
  std::string why;
  for (const scenario::ScenarioSpec& spec : request.scenarios) {
    if (!spec.valid(&why)) {
      return invalid("scenario '" + spec.name + "': " + why);
    }
  }
  if (request.range.begin > request.range.end) {
    return invalid("range begin > end");
  }
  // Like pue_rollup: the replay walks its range second by second, so a
  // wire-supplied range must not outlive the data.
  const util::TimeRange range = request.range.clamp(bounds);
  const util::TimeSec window = request.window > 0 ? request.window : 10;
  if (!grid_ok(range, window, &why)) return invalid(std::move(why));
  opts->range = range;
  opts->window = window;
  opts->rollup.edge_node_count = static_cast<double>(request.nodes.size());
  return true;
}

void run_scenario_request(const wire::Request& request,
                          const std::vector<store::MetricRun>& runs,
                          const stream::EngineOptions& opts,
                          const CancelToken& cancel,
                          std::int64_t deadline_us, util::Clock& clock,
                          const QueryService::Emit& emit,
                          wire::Response* resp) {
  const auto cancelled = [&cancel, deadline_us, &clock] {
    return (cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
           (deadline_us != 0 && clock.now_us() > deadline_us);
  };
  bool abandoned = false;
  if (request.method == wire::Method::kScenario) {
    stream::ReplaySinks sinks;
    sinks.cancelled = cancelled;
    scenario::ScenarioResult r = scenario::run_scenario_runs(
        runs, opts, request.scenarios.front(), sinks);
    abandoned = r.cancelled;
    if (!abandoned) {
      resp->scenarios.push_back(
          scenario::summarize(r, request.scenarios.front().name,
                              opts.window));
      resp->series = std::move(r.power);
      resp->pue = std::move(r.pue);
      resp->baseline_power = std::move(r.baseline_power);
      resp->baseline_pue = std::move(r.baseline_pue);
    }
  } else {
    scenario::SweepOptions sweep;
    sweep.cancelled = cancelled;
    if (emit != nullptr &&
        (request.subscribe_mask &
         static_cast<std::uint8_t>(wire::TickKind::kWindow)) != 0) {
      sweep.on_window = [&emit](std::size_t variant,
                                const stream::ClusterWindow& w) {
        wire::Tick tick;
        tick.kind = wire::TickKind::kVariantWindow;
        tick.variant = static_cast<std::uint32_t>(variant);
        tick.index = w.index;
        tick.t = w.t;
        tick.power_w = w.power_w;
        tick.pue = w.cooling.pue;
        tick.nodes_reporting = w.nodes_reporting;
        emit(tick);
      };
    }
    if (request.scenarios.size() > 1) {
      const unsigned hw = std::thread::hardware_concurrency();
      sweep.threads = std::min<std::size_t>(request.scenarios.size(),
                                            hw > 0 ? hw : 2);
    }
    const std::vector<scenario::ScenarioResult> results =
        scenario::run_sweep(runs, opts, request.scenarios, sweep);
    for (const scenario::ScenarioResult& r : results) {
      abandoned = abandoned || r.cancelled;
    }
    if (!abandoned) {
      resp->scenarios.reserve(results.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        resp->scenarios.push_back(scenario::summarize(
            results[i], request.scenarios[i].name, opts.window));
      }
    }
  }
  if (abandoned) {
    // Same verdict shape as an abandoned pue_rollup: a partial sweep is
    // not the answer, so report why the work stopped.
    const bool peer_gone =
        cancel != nullptr && cancel->load(std::memory_order_relaxed);
    resp->scenarios.clear();
    resp->status = peer_gone ? wire::Status::kCancelled
                             : wire::Status::kDeadlineExceeded;
    resp->message = peer_gone ? "client disconnected during replay"
                              : "deadline expired during replay";
  }
}

namespace {

wire::Response execute_on_store(const store::Store& store,
                                util::Clock& clock,
                                const wire::Request& request,
                                const CancelToken& cancel,
                                std::int64_t deadline_us,
                                const QueryService::Emit& emit,
                                ChunkWriter* stream) {
  wire::Response resp;
  resp.method = request.method;
  std::string why;
  switch (request.method) {
    case wire::Method::kPing:
      break;
    case wire::Method::kWindowSum: {
      if (!grid_ok(request.range, request.window, &why)) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = std::move(why);
        break;
      }
      resp.window_sum = store.window_sum(request.metric, request.range,
                                         request.window, nullptr,
                                         &resp.stats);
      break;
    }
    case wire::Method::kScan: {
      if (request.metrics.empty() || request.metrics.size() > 4096) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "scan wants 1..4096 metric ids";
        break;
      }
      if (request.range.begin > request.range.end) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "range begin > end";
        break;
      }
      if (stream == nullptr) {
        resp.runs = store.query_many(request.metrics, request.range, nullptr,
                                     &resp.stats);
        break;
      }
      // Chunked path: runs flow one at a time from the decoded-block
      // cache through the ChunkWriter into the connection's gated
      // outbox — peak resident bytes are one run plus the stream
      // budget, not the result size. The concatenated stream encoding
      // is byte-identical to encode_response of the materialized
      // result; resp.runs stays empty (already on the wire).
      bool expired = false;
      std::vector<std::uint8_t> buf;
      bool alive = true;
      auto check_liveness = [&] {
        if (deadline_us != 0 && clock.now_us() > deadline_us) {
          expired = true;
          return false;
        }
        return cancel == nullptr || !cancel->load(std::memory_order_relaxed);
      };
      if (request.want_scan_blocks) {
        // Block form: whole-in-range blocks ship still encoded, sliced
        // straight from the mapped segment through the ChunkWriter —
        // the serving path never decodes or re-encodes them. The
        // response method flips to kScanBlocks so the peer knows to
        // decode pieces (it opted in, so it can).
        resp.method = wire::Method::kScanBlocks;
        buf.clear();
        wire::scan_blocks_begin(request.metrics.size(), &buf);
        alive = stream->write(buf);
        if (alive) {
          store::RawScanSink sink;
          sink.begin_run = [&](telemetry::MetricId id) {
            if (!check_liveness()) return false;
            buf.clear();
            wire::scan_blocks_run_begin(id, &buf);
            return stream->write(buf);
          };
          sink.block = [&](std::span<const std::uint8_t> bytes,
                           std::uint32_t events) {
            if (!check_liveness()) return false;
            buf.clear();
            wire::scan_blocks_block_header(
                static_cast<std::uint32_t>(bytes.size()), events, &buf);
            return stream->write(buf) && stream->write(bytes);
          };
          sink.samples = [&](std::span<const ts::Sample> samples) {
            if (!check_liveness()) return false;
            buf.clear();
            wire::scan_blocks_samples(samples, &buf);
            return stream->write(buf);
          };
          sink.end_run = [&] {
            buf.clear();
            wire::scan_blocks_run_end(&buf);
            return stream->write(buf);
          };
          alive = store.scan_encoded(request.metrics, request.range, sink,
                                     &resp.stats);
        }
      } else {
        wire::scan_stream_begin(request.metrics.size(), &buf);
        alive = stream->write(buf);
        if (alive) {
          alive = store.scan(
              request.metrics, request.range,
              [&](store::MetricRun&& run) {
                if (!check_liveness()) return false;
                buf.clear();
                wire::scan_stream_run(run, &buf);
                return stream->write(buf);
              },
              &resp.stats);
        }
      }
      if (alive) {
        buf.clear();
        if (request.want_scan_blocks) {
          wire::scan_blocks_end(resp.stats, &buf);
        } else {
          wire::scan_stream_end(resp.stats, &buf);
        }
        if (!stream->write(buf) || !stream->finish()) {
          resp.status = wire::Status::kCancelled;
          resp.message = "stream died mid-scan";
        }
        break;
      }
      // The scan stopped early: deadline, cancel, or a dead stream. The
      // fragments already sent are disowned by the kAbort frame carrying
      // this error response.
      const bool peer_gone =
          cancel != nullptr && cancel->load(std::memory_order_relaxed);
      resp.status = expired ? wire::Status::kDeadlineExceeded
                            : wire::Status::kCancelled;
      resp.message = expired ? "deadline expired during scan"
                             : (peer_gone ? "client disconnected during scan"
                                          : "stream died mid-scan");
      if (!stream->terminated()) stream->abort(resp);
      break;
    }
    case wire::Method::kClusterSum: {
      if (request.nodes.empty()) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "cluster_sum wants nodes";
        break;
      }
      if (!grid_ok(request.range, request.window, &why)) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = std::move(why);
        break;
      }
      resp.series =
          store::cluster_sum(store, request.nodes, request.channel,
                             request.range, request.window, &resp.counts,
                             nullptr, &resp.stats);
      break;
    }
    case wire::Method::kPueRollup: {
      if (request.nodes.empty()) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "pue_rollup wants nodes";
        break;
      }
      if (request.range.begin > request.range.end) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "range begin > end";
        break;
      }
      // The replay walks its range one simulated second at a time, so a
      // wire-supplied range must not outlive the data: there is nothing
      // to replay outside the store's bounds.
      const util::TimeRange range = request.range.clamp(store.bounds());
      const util::TimeSec window = request.window > 0 ? request.window : 10;
      if (!grid_ok(range, window, &why)) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = std::move(why);
        break;
      }
      stream::EngineOptions opts;
      opts.range = range;
      opts.window = window;
      opts.rollup.edge_node_count =
          static_cast<double>(request.nodes.size());
      stream::ReplaySinks sinks;
      sinks.cancelled = [&] {
        return (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) ||
               (deadline_us != 0 && clock.now_us() > deadline_us);
      };
      stream::RollupReplay replay = stream::replay_rollup(
          store, request.nodes, opts, sinks, &resp.stats);
      if (replay.cancelled) {
        // Abandoned mid-replay; a partial series is not the answer the
        // client asked for, so report why the work stopped instead.
        const bool peer_gone =
            cancel != nullptr && cancel->load(std::memory_order_relaxed);
        resp.status = peer_gone ? wire::Status::kCancelled
                                : wire::Status::kDeadlineExceeded;
        resp.message = peer_gone ? "client disconnected during replay"
                                 : "deadline expired during replay";
        break;
      }
      resp.series = std::move(replay.power);
      resp.pue = std::move(replay.pue);
      break;
    }
    case wire::Method::kSubscribe:
      // Reached only via execute() in tests; the admitted path routes
      // subscriptions to the installed source instead.
      resp.status = wire::Status::kUnimplemented;
      resp.message = "subscribe needs a streaming endpoint";
      break;
    case wire::Method::kDirectory:
      resp.directory.total_events = store.total_events();
      resp.directory.buffered_events = store.buffered_events();
      resp.directory.bounds = store.bounds();
      resp.directory.segments = store.directory();
      break;
    case wire::Method::kServerStats:
      // Handled by QueryService::execute before the executor is reached.
      break;
    case wire::Method::kScenario:
    case wire::Method::kScenarioSweep: {
      stream::EngineOptions opts;
      if (!scenario_request_ok(request, store.bounds(), &opts, &resp)) {
        break;
      }
      const int channel =
          telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
      std::vector<telemetry::MetricId> ids;
      ids.reserve(request.nodes.size());
      for (const machine::NodeId n : request.nodes) {
        ids.push_back(telemetry::metric_id(n, channel));
      }
      const auto runs =
          store.query_many(ids, opts.range, nullptr, &resp.stats);
      run_scenario_request(request, runs, opts, cancel, deadline_us, clock,
                           emit, &resp);
      break;
    }
  }
  return resp;
}

}  // namespace

QueryService::Executor make_store_executor(const store::Store& store,
                                           util::Clock* clock) {
  util::Clock* resolved =
      clock != nullptr ? clock : &util::Clock::steady();
  return [&store, resolved](const wire::Request& request,
                            const CancelToken& cancel,
                            std::int64_t deadline_us,
                            const QueryService::Emit& emit,
                            ChunkWriter* stream) {
    return execute_on_store(store, *resolved, request, cancel, deadline_us,
                            emit, stream);
  };
}

namespace {

/// The store-backed constructor defaults the QoS block counter to its
/// own store — pricing and execution then read the same directory.
ServiceOptions with_store_counter(const store::Store& store,
                                  ServiceOptions options) {
  if (options.qos && !options.qos->blocks) {
    options.qos->blocks = qos::store_block_counter(store);
  }
  return options;
}

}  // namespace

QueryService::QueryService(const store::Store& store, ServiceOptions options)
    : QueryService(make_store_executor(store, options.clock),
                   with_store_counter(store, std::move(options))) {}

QueryService::QueryService(Executor executor, ServiceOptions options)
    : executor_(std::move(executor)),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? *options_.pool
                                     : util::ThreadPool::global()),
      clock_(options_.clock != nullptr ? *options_.clock
                                       : util::Clock::steady()),
      lat_p50_(0.5),
      lat_p99_(0.99),
      class_p99_{stream::P2Quantile(0.99), stream::P2Quantile(0.99),
                 stream::P2Quantile(0.99)} {
  EXA_CHECK(options_.queue_limit > 0, "admission queue must hold something");
  EXA_CHECK(executor_ != nullptr, "service needs an executor");
  if (options_.qos) {
    qos_cost_ = std::make_unique<qos::CostModel>(options_.qos->cost,
                                                 options_.qos->blocks);
    qos::SchedulerOptions sched = options_.qos->scheduler;
    sched.max_queue = options_.queue_limit;
    qos_sched_ = std::make_unique<qos::Scheduler>(sched);
    qos_pool_ = std::make_unique<qos::WorkerPool>(
        qos_sched_.get(), options_.qos->pool, options_.clock);
  }
}

QueryService::~QueryService() {
  if (qos_pool_ != nullptr) qos_pool_->stop();
  if (qos_sched_ != nullptr) {
    // Unstarted items at teardown are shed, not leaked: their done
    // callbacks still fire exactly once.
    for (qos::Item& item : qos_sched_->drain_all()) {
      if (item.shed) item.shed();
    }
  }
}

void QueryService::set_subscribe_source(SubscribeSource source) {
  std::lock_guard lk(mu_);
  subscribe_ = std::move(source);
}

void QueryService::set_stats_augment(StatsAugment augment) {
  std::lock_guard lk(mu_);
  stats_augments_.push_back(std::move(augment));
}

wire::Response QueryService::execute(const wire::Request& request,
                                     const CancelToken& cancel,
                                     std::int64_t deadline_us,
                                     const Emit& emit,
                                     ChunkWriter* stream) const {
  if (request.method == wire::Method::kServerStats) {
    // The counters are the service's own, so stats never defer to the
    // executor — a coordinator augments the snapshot with its link
    // health instead of replacing it.
    wire::Response resp;
    resp.method = request.method;
    const ServiceMetrics m = metrics();
    resp.server.accepted = m.accepted;
    resp.server.served = m.served;
    resp.server.shed = m.shed;
    resp.server.deadline_exceeded = m.deadline_exceeded;
    resp.server.cancelled = m.cancelled;
    resp.server.failed = m.failed;
    resp.server.queue_depth = m.queue_depth;
    resp.server.queue_limit = options_.queue_limit;
    resp.server.p50_ms = m.p50_ms;
    resp.server.p99_ms = m.p99_ms;
    resp.server.qos_workers = m.qos_workers;
    resp.server.qos_backlog_cost_us = m.qos_backlog_cost_us;
    for (std::size_t c = 0; c < qos::kClassCount; ++c) {
      resp.server.qos_served[c] = m.class_served[c];
      resp.server.qos_shed[c] = m.class_shed[c];
      resp.server.qos_p99_us[c] =
          static_cast<std::uint64_t>(m.class_p99_ms[c] * 1000.0);
    }
    std::vector<StatsAugment> augments;
    {
      std::lock_guard lk(mu_);
      augments = stats_augments_;
    }
    for (const StatsAugment& augment : augments) augment(resp.server);
    return resp;
  }
  return executor_(request, cancel, deadline_us, emit, stream);
}

void QueryService::finish(std::int64_t admitted_us,
                          std::optional<qos::Class> cls,
                          wire::Response&& response, const Done& done) {
  const double latency_ms =
      static_cast<double>(clock_.now_us() - admitted_us) / 1000.0;
  {
    std::lock_guard lk(mu_);
    --depth_;
    switch (response.status) {
      case wire::Status::kOk: ++served_; break;
      case wire::Status::kDeadlineExceeded: ++deadline_exceeded_; break;
      case wire::Status::kCancelled: ++cancelled_; break;
      case wire::Status::kInternal: ++failed_; break;
      default: break;
    }
    lat_p50_.add(latency_ms);
    lat_p99_.add(latency_ms);
    if (cls) {
      const auto c = static_cast<std::size_t>(*cls);
      if (response.status == wire::Status::kOk) ++class_served_[c];
      class_p99_[c].add(latency_ms);
    }
    if (depth_ == 0) idle_cv_.notify_all();
  }
  done(std::move(response));
}

void QueryService::run_admitted(const std::shared_ptr<Admitted>& a,
                                bool count_class) {
  const std::optional<qos::Class> cls =
      count_class ? std::optional<qos::Class>(a->cls) : std::nullopt;
  wire::Response resp;
  resp.method = a->request.method;
  if (a->cancel != nullptr && a->cancel->load(std::memory_order_relaxed)) {
    // The peer is gone; its queued work is void, not executed.
    resp.status = wire::Status::kCancelled;
    resp.message = "client disconnected while queued";
    finish(a->admitted_us, cls, std::move(resp), a->done);
    return;
  }
  if (a->deadline_us != 0 && clock_.now_us() > a->deadline_us) {
    // Expired work is never started — running it would only delay
    // requests that can still make their deadlines.
    resp.status = wire::Status::kDeadlineExceeded;
    resp.message = "deadline expired before execution";
    finish(a->admitted_us, cls, std::move(resp), a->done);
    return;
  }
  try {
    if (a->request.method == wire::Method::kSubscribe) {
      if (!a->subscribe) {
        resp.status = wire::Status::kUnimplemented;
        resp.message = "no subscription source";
      } else {
        a->subscribe(a->request, a->cancel, a->emit);
        if (a->cancel != nullptr &&
            a->cancel->load(std::memory_order_relaxed)) {
          resp.status = wire::Status::kCancelled;
          resp.message = "subscriber disconnected";
        }
      }
    } else {
      resp = execute(a->request, a->cancel, a->deadline_us, a->emit,
                     a->stream);
      if (a->deadline_us != 0 && clock_.now_us() > a->deadline_us) {
        // Finished too late to be useful; report it as such so the
        // latency SLO accounting reflects what the client saw.
        resp = {};
        resp.method = a->request.method;
        resp.status = wire::Status::kDeadlineExceeded;
        resp.message = "deadline expired during execution";
      }
    }
  } catch (const std::exception& e) {
    resp = {};
    resp.method = a->request.method;
    resp.status = wire::Status::kInternal;
    resp.message = e.what();
  }
  finish(a->admitted_us, cls, std::move(resp), a->done);
}

void QueryService::submit(wire::Request request, CancelToken cancel,
                          Emit emit, Done done, ChunkWriter* stream) {
  if (qos_sched_ != nullptr) {
    submit_qos(std::move(request), std::move(cancel), std::move(emit),
               std::move(done), stream);
    return;
  }
  SubscribeSource subscribe;
  {
    std::lock_guard lk(mu_);
    if (draining_) {
      wire::Response resp;
      resp.method = request.method;
      resp.status = wire::Status::kUnavailable;
      resp.message = "server is draining";
      done(std::move(resp));
      return;
    }
    if (depth_ >= options_.queue_limit) {
      // The explicit shed: the client learns immediately instead of
      // waiting on a queue the server cannot work off in time.
      ++shed_;
      wire::Response resp;
      resp.method = request.method;
      resp.status = wire::Status::kResourceExhausted;
      resp.message = "admission queue full (" +
                     std::to_string(options_.queue_limit) + ")";
      done(std::move(resp));
      return;
    }
    ++depth_;
    ++accepted_;
    subscribe = subscribe_;
  }

  const std::int64_t admitted_us = clock_.now_us();
  const std::uint32_t deadline_ms = request.deadline_ms != 0
                                        ? request.deadline_ms
                                        : options_.default_deadline_ms;

  auto a = std::make_shared<Admitted>();
  a->request = std::move(request);
  a->cancel = std::move(cancel);
  a->emit = std::move(emit);
  a->done = std::move(done);
  a->stream = stream;
  a->subscribe = std::move(subscribe);
  a->admitted_us = admitted_us;
  a->deadline_us =
      deadline_ms != 0
          ? admitted_us + static_cast<std::int64_t>(deadline_ms) * 1000
          : 0;
  pool_.submit([this, a] { run_admitted(a, /*count_class=*/false); });
}

void QueryService::submit_qos(wire::Request request, CancelToken cancel,
                              Emit emit, Done done, ChunkWriter* stream) {
  // Everything the worker needs travels in one shared Admitted record:
  // the run and shed closures alias it instead of copying the request.
  const bool qos_tagged = request.qos_class != 1 || request.tenant != 0;
  const qos::Class cls = qos::class_from_wire(request.qos_class);
  const std::uint32_t tenant = request.tenant;
  const std::uint64_t cost_us = qos_cost_->price(request);

  const std::int64_t admitted_us = clock_.now_us();
  const std::uint32_t deadline_ms = request.deadline_ms != 0
                                        ? request.deadline_ms
                                        : options_.default_deadline_ms;
  auto a = std::make_shared<Admitted>();
  a->request = std::move(request);
  a->cancel = std::move(cancel);
  a->emit = std::move(emit);
  a->done = std::move(done);
  a->stream = stream;
  a->admitted_us = admitted_us;
  a->deadline_us =
      deadline_ms != 0
          ? admitted_us + static_cast<std::int64_t>(deadline_ms) * 1000
          : 0;
  a->cls = cls;
  a->qos_tagged = qos_tagged;
  a->cost_us = cost_us;

  qos::Item item;
  item.cls = cls;
  item.tenant = tenant;
  item.cost_us = cost_us;
  item.run = [this, a] {
    {
      std::lock_guard lk(mu_);
      a->subscribe = subscribe_;
    }
    run_admitted(a, /*count_class=*/true);
  };
  item.shed = [this, a] {
    {
      std::lock_guard lk(mu_);
      --depth_;
      ++shed_;
      ++class_shed_[static_cast<std::size_t>(a->cls)];
      if (depth_ == 0) idle_cv_.notify_all();
    }
    wire::Response resp;
    resp.method = a->request.method;
    resp.status = wire::Status::kResourceExhausted;
    resp.message = "queue overloaded: request shed (estimated cost " +
                   std::to_string(a->cost_us) + " us)";
    // The cost hint is a response extension old decoders reject, so it
    // rides only to peers that proved themselves new by tagging the
    // request.
    if (a->qos_tagged) resp.shed_cost_hint_us = a->cost_us;
    a->done(std::move(resp));
  };

  {
    std::lock_guard lk(mu_);
    if (draining_) {
      wire::Response resp;
      resp.method = a->request.method;
      resp.status = wire::Status::kUnavailable;
      resp.message = "server is draining";
      a->done(std::move(resp));
      return;
    }
    // Count before push: a worker may pop and finish the item before
    // push even returns, and finish() expects depth_ to include it.
    ++depth_;
    ++accepted_;
  }
  qos::PushResult r = qos_sched_->push(std::move(item), clock_.now_us());
  if (!r.admitted) {
    // The incoming request itself was refused: undo its admission (the
    // shed callback below settles depth_ and the shed counters).
    std::lock_guard lk(mu_);
    --accepted_;
  }
  if (r.evicted) {
    // Invoked outside every lock — the shed closure takes mu_ itself.
    r.evicted->shed();
  }
  if (r.admitted) qos_pool_->notify();
}

void QueryService::submit_internal(qos::Class cls, std::uint64_t cost_us,
                                   std::function<void()> work,
                                   std::function<void()> dropped) {
  if (qos_sched_ == nullptr) {
    pool_.submit(std::move(work));
    return;
  }
  {
    std::unique_lock lk(mu_);
    if (draining_) {
      lk.unlock();  // user callback never runs under mu_
      if (dropped) dropped();
      return;
    }
    ++depth_;  // internal work is not `accepted_` — it is not a request
  }
  auto settle = [this] {
    std::lock_guard lk(mu_);
    --depth_;
    if (depth_ == 0) idle_cv_.notify_all();
  };
  qos::Item item;
  item.cls = cls;
  item.tenant = 0;
  item.cost_us = cost_us;
  item.run = [work = std::move(work), settle] {
    try {
      work();
    } catch (...) {
      // Internal work failing must not take the worker thread with it.
    }
    settle();
  };
  // Shed under pressure: the work simply does not run this round — the
  // caller's cadence retries once `dropped` releases its latch.
  item.shed = [settle, dropped = std::move(dropped)] {
    settle();
    if (dropped) dropped();
  };
  qos::PushResult r = qos_sched_->push(std::move(item), clock_.now_us());
  if (r.evicted) r.evicted->shed();
  if (r.admitted) qos_pool_->notify();
}

ServiceMetrics QueryService::metrics() const {
  ServiceMetrics m;
  // Pool and scheduler snapshots are taken outside mu_ — each has its
  // own lock, and the ordering here (no lock held while asking) keeps
  // the three lock domains acyclic.
  if (qos_pool_ != nullptr) {
    m.qos = true;
    m.qos_workers = qos_pool_->workers();
    m.qos_backlog_cost_us =
        qos_sched_->snapshot(clock_.now_us()).backlog_cost_us;
  }
  std::lock_guard lk(mu_);
  m.accepted = accepted_;
  m.served = served_;
  m.shed = shed_;
  m.deadline_exceeded = deadline_exceeded_;
  m.cancelled = cancelled_;
  m.failed = failed_;
  m.queue_depth = depth_;
  m.p50_ms = lat_p50_.count() > 0 ? lat_p50_.value() : 0.0;
  m.p99_ms = lat_p99_.count() > 0 ? lat_p99_.value() : 0.0;
  for (std::size_t c = 0; c < qos::kClassCount; ++c) {
    m.class_served[c] = class_served_[c];
    m.class_shed[c] = class_shed_[c];
    m.class_p99_ms[c] =
        class_p99_[c].count() > 0 ? class_p99_[c].value() : 0.0;
  }
  return m;
}

void QueryService::drain() {
  std::unique_lock lk(mu_);
  draining_ = true;
  idle_cv_.wait(lk, [this] { return depth_ == 0; });
}

}  // namespace exawatt::server
