#include "server/chunk.hpp"

#include <utility>

#include "net/frame.hpp"
#include "util/check.hpp"

namespace exawatt::server {

ChunkWriter::ChunkWriter(std::uint64_t request_id, std::uint32_t chunk_bytes,
                         Sink sink, std::function<bool()> cancelled)
    : request_id_(request_id),
      chunk_bytes_(chunk_bytes),
      sink_(std::move(sink)),
      cancelled_(std::move(cancelled)) {
  EXA_CHECK(chunk_bytes_ > 0, "chunk_bytes must be positive");
  EXA_CHECK(chunk_bytes_ <= net::kMaxPayload, "chunk_bytes over frame limit");
}

bool ChunkWriter::flush(std::span<const std::uint8_t> payload,
                        std::uint16_t flags) {
  auto frame =
      net::encode_frame(net::FrameType::kResponse, request_id_, payload, flags);
  // Budget covers the frame as it sits in the connection outbox: header
  // included, released by the loop as the bytes reach the socket.
  if (flags != net::kFrameFlagAbort) {
    if (!sink_.acquire || !sink_.acquire(frame.size(), cancelled_)) {
      terminated_ = true;
      return false;
    }
  }
  if (!sink_.send || !sink_.send(std::move(frame))) {
    terminated_ = true;
    return false;
  }
  ++chunks_;
  return true;
}

bool ChunkWriter::write(std::span<const std::uint8_t> bytes) {
  if (terminated_) return false;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  // Flush whole chunks, keep the tail buffered: the final slice must
  // travel as kFinal and we cannot know it is final until finish().
  std::size_t off = 0;
  while (buf_.size() - off > chunk_bytes_) {
    if (!flush({buf_.data() + off, chunk_bytes_}, net::kFrameFlagChunk)) {
      return false;
    }
    off += chunk_bytes_;
  }
  if (off != 0) buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

bool ChunkWriter::finish() {
  if (terminated_) return false;
  const bool ok = flush(buf_, net::kFrameFlagFinal);
  buf_.clear();
  terminated_ = true;
  return ok;
}

bool ChunkWriter::abort(const wire::Response& error) {
  if (terminated_) return false;
  buf_.clear();
  const auto payload = wire::encode_response(error);
  const bool ok = flush(payload, net::kFrameFlagAbort);
  terminated_ = true;
  return ok;
}

}  // namespace exawatt::server
