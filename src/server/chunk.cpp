#include "server/chunk.hpp"

#include <utility>

#include "net/frame.hpp"
#include "util/check.hpp"

namespace exawatt::server {

ChunkWriter::ChunkWriter(std::uint64_t request_id, std::uint32_t chunk_bytes,
                         Sink sink, std::function<bool()> cancelled)
    : request_id_(request_id),
      chunk_bytes_(chunk_bytes),
      sink_(std::move(sink)),
      cancelled_(std::move(cancelled)) {
  EXA_CHECK(chunk_bytes_ > 0, "chunk_bytes must be positive");
  EXA_CHECK(chunk_bytes_ <= net::kMaxPayload, "chunk_bytes over frame limit");
}

bool ChunkWriter::flush(std::span<const std::uint8_t> payload,
                        std::uint16_t flags) {
  auto frame =
      net::encode_frame(net::FrameType::kResponse, request_id_, payload, flags);
  // Budget covers the frame as it sits in the connection outbox: header
  // included, released by the loop as the bytes reach the socket.
  if (flags != net::kFrameFlagAbort) {
    if (!sink_.acquire || !sink_.acquire(frame.size(), cancelled_)) {
      terminated_ = true;
      return false;
    }
  }
  if (!sink_.send || !sink_.send(std::move(frame))) {
    terminated_ = true;
    return false;
  }
  ++chunks_;
  return true;
}

bool ChunkWriter::write(std::span<const std::uint8_t> bytes) {
  if (terminated_) return false;
  // Zero-copy forwarding: top the buffered tail up to one full chunk,
  // then flush whole chunks straight from the caller's span — a large
  // write (an encoded block sliced from a mapped segment) never
  // round-trips through buf_. Only the sub-chunk remainder is copied:
  // it must wait, because the final slice travels as kFinal and we
  // cannot know it is final until finish(). Chunk payloads are exactly
  // chunk_bytes and buf_ never exceeds chunk_bytes, same as the
  // copy-through encoding this replaces (byte-identical stream).
  std::size_t off = 0;
  if (!buf_.empty()) {
    if (buf_.size() + bytes.size() <= chunk_bytes_) {
      buf_.insert(buf_.end(), bytes.begin(), bytes.end());
      return true;
    }
    const std::size_t take = chunk_bytes_ - buf_.size();
    buf_.insert(buf_.end(), bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(take));
    off = take;
    if (!flush(buf_, net::kFrameFlagChunk)) return false;
    buf_.clear();
  }
  while (bytes.size() - off > chunk_bytes_) {
    if (!flush(bytes.subspan(off, chunk_bytes_), net::kFrameFlagChunk)) {
      return false;
    }
    off += chunk_bytes_;
  }
  buf_.insert(buf_.end(), bytes.begin() + static_cast<std::ptrdiff_t>(off),
              bytes.end());
  return true;
}

bool ChunkWriter::finish() {
  if (terminated_) return false;
  const bool ok = flush(buf_, net::kFrameFlagFinal);
  buf_.clear();
  terminated_ = true;
  return ok;
}

bool ChunkWriter::abort(const wire::Response& error) {
  if (terminated_) return false;
  buf_.clear();
  const auto payload = wire::encode_response(error);
  const bool ok = flush(payload, net::kFrameFlagAbort);
  terminated_ = true;
  return ok;
}

}  // namespace exawatt::server
