#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "net/event_loop.hpp"
#include "server/service.hpp"

namespace exawatt::server {

struct ServerOptions {
  std::uint16_t port = 0;      ///< 0 = ephemeral (see Server::port())
  bool loopback_only = true;
  ServiceOptions service = {};
  net::LoopOptions loop = {};
};

/// The TCP endpoint of the query service: one poll-loop thread (the
/// caller of run()) owns all socket I/O; request execution fans out on
/// the service's thread pool; finished responses come back through the
/// loop's thread-safe mailbox. A client disconnect trips the cancel
/// token shared by everything that peer still has in flight.
class Server {
 public:
  Server(const store::Store& store, ServerOptions options = {});
  /// Front an externally owned service (the cluster coordinator builds
  /// its own executor-backed QueryService). `service` must outlive the
  /// Server; `options.service` is ignored — the service was already
  /// configured by whoever built it.
  Server(QueryService& service, ServerOptions options = {});

  [[nodiscard]] QueryService& service() { return service_; }
  [[nodiscard]] std::uint16_t port() const { return loop_->port(); }
  [[nodiscard]] net::LoopStats loop_stats() const { return loop_->stats(); }

  /// Serve until `until()` returns true (polled about every `tick_ms`)
  /// or shutdown() is called. Blocks; the calling thread becomes the
  /// event-loop thread.
  void run(const std::function<bool()>& until = {}, int tick_ms = 200);

  /// Thread-safe: make run() return. Does not drain — callers do
  /// `shutdown(); /* join run() */; drain();` or use serve_until which
  /// packages the sequence.
  void shutdown();

  /// Graceful drain, called on the (former) loop thread after run()
  /// returns: stop accepting connections, let queued/running requests
  /// finish, then pump the loop until their responses have flushed (or
  /// `max_flush_ms` passes — a peer that stopped reading cannot hold
  /// shutdown hostage).
  void drain(int max_flush_ms = 5000);

 private:
  void init_loop(const ServerOptions& options);
  void on_frame(net::ConnId conn, net::Frame&& frame);
  void on_open(net::ConnId conn);
  void on_close(net::ConnId conn);
  [[nodiscard]] CancelToken token_of(net::ConnId conn);

  /// Present only when this Server built its own service (store ctor);
  /// `service_` is the single access path either way.
  std::unique_ptr<QueryService> owned_service_;
  QueryService& service_;
  std::unique_ptr<net::EventLoop> loop_;

  /// Chunked-streaming counters, surfaced via the kServerStats augment
  /// (pause/resume counts come from the loop's stream gates).
  std::atomic<std::uint64_t> streams_{0};
  std::atomic<std::uint64_t> stream_chunks_{0};

  std::mutex mu_;
  std::map<net::ConnId, CancelToken> tokens_;
};

}  // namespace exawatt::server
