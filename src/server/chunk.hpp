#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "server/wire.hpp"

namespace exawatt::server {

/// Server-side producer of one chunked response stream: executors write
/// encoded response bytes into it as they are produced (a scan run at a
/// time), it slices them into ~chunk_bytes kChunk frames and pushes each
/// through the sink — acquiring stream-gate budget first, so a peer that
/// stops draining pauses the producing scan right here instead of
/// ballooning server memory. `finish()` flushes the tail as kFinal;
/// `abort()` replaces everything streamed so far with one error
/// response (the kAbort frame), which is how a deadline or cancel that
/// fires mid-stream is surfaced without a protocol break.
///
/// The Sink seam exists so unit tests can drive backpressure
/// deterministically with no sockets: production wires `acquire` to
/// StreamGate::acquire and `send` to EventLoop::send(conn, ..., gated).
class ChunkWriter {
 public:
  struct Sink {
    /// Reserve budget for `n` outbound bytes; blocks under backpressure.
    /// False = stream is dead (peer closed or request cancelled).
    std::function<bool(std::size_t n, const std::function<bool()>& cancelled)>
        acquire;
    /// Hand one encoded frame to the transport. False = peer gone.
    std::function<bool(std::vector<std::uint8_t>&& frame_bytes)> send;
  };

  ChunkWriter(std::uint64_t request_id, std::uint32_t chunk_bytes, Sink sink,
              std::function<bool()> cancelled);

  ChunkWriter(const ChunkWriter&) = delete;
  ChunkWriter& operator=(const ChunkWriter&) = delete;

  /// Append response bytes; every full chunk_bytes slice is flushed as a
  /// kChunk frame. False = stream died (further writes are no-ops).
  bool write(std::span<const std::uint8_t> bytes);

  /// Flush the remainder as the kFinal frame (sent even when empty — the
  /// stream needs its terminator). False = stream died.
  bool finish();

  /// Disown everything streamed so far: send `error` as the kAbort
  /// frame's payload. The abort bypasses the budget gate — it must get
  /// out even when the gate is saturated, and it is small by contract.
  bool abort(const wire::Response& error);

  /// True once any frame of this stream reached the sink — the point of
  /// no return for answering with a plain (unchunked) response.
  [[nodiscard]] bool streamed() const { return chunks_ != 0; }
  /// True once the stream ended (finished, aborted, or died).
  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] std::uint64_t chunks() const { return chunks_; }
  [[nodiscard]] std::uint32_t chunk_bytes() const { return chunk_bytes_; }
  /// Bytes currently staged for the next frame — never exceeds
  /// chunk_bytes, which is what makes the streaming path's peak memory
  /// independent of archive size (the stream-flat benchmark gate).
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  bool flush(std::span<const std::uint8_t> payload, std::uint16_t flags);

  std::uint64_t request_id_;
  std::uint32_t chunk_bytes_;
  Sink sink_;
  std::function<bool()> cancelled_;
  std::vector<std::uint8_t> buf_;
  std::uint64_t chunks_ = 0;
  bool terminated_ = false;
};

}  // namespace exawatt::server
