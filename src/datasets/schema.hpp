#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace exawatt::datasets {

/// The paper's artifact appendix enumerates the datasets the analysis
/// pipeline produced (raw A-E and preprocessed 0-13). This module exports
/// the simulated equivalents with the same key columns, so the analyses
/// can be decoupled from the simulator and rerun from files — and so
/// downstream users can swap in *real* telemetry exports with matching
/// schemas.
///
/// Implemented datasets:
///   C  "Job scheduler allocation history"       (jobs.csv)
///   D  "Per-node job scheduler allocation"      (job_nodes.csv, ranges)
///   E  "NVidia GPU XID error log"               (xid_log.csv)
///   1  "Cluster-level power time-series"        (cluster_power.csv)
///   2  "Cluster CPU/GPU component time-series"  (cluster_components.csv)
///   5  "Job-level power data"                   (job_power.csv)
///   7  "Job-level energy data"                  (job_energy.csv)

/// In-memory row mirror of Dataset C (+ the columns of D compactly as
/// node ranges, matching workload::Job).
struct JobRecord {
  std::uint64_t allocation_id = 0;
  int sched_class = 5;
  int node_count = 0;
  std::uint32_t project = 0;
  std::uint16_t domain = 0;
  std::uint16_t app = 0;
  util::TimeSec submit = 0;
  util::TimeSec begin_time = -1;
  util::TimeSec end_time = -1;
  std::uint64_t key = 0;
  /// Dataset D: "first:count" range list, e.g. "0:128;512:64".
  std::string node_ranges;
};

/// Dataset E row.
struct XidRecord {
  util::TimeSec timestamp = 0;
  int xid_type = 0;   ///< failures::XidType ordinal
  std::int32_t node = 0;
  int slot = 0;
  std::uint64_t allocation_id = 0;
  std::uint32_t project = 0;
  std::uint16_t domain = 0;
  double temp_c = 0.0;
  double z_score = 0.0;
};

/// Dataset 5/7 row (job-level power & energy).
struct JobPowerRecord {
  std::uint64_t allocation_id = 0;
  double mean_sum_inp = 0.0;  ///< mean total input power (W)
  double max_sum_inp = 0.0;   ///< max total input power (W)
  double energy_j = 0.0;
  double gpu_energy_j = 0.0;
  int num_nodes = 0;
  util::TimeSec begin_time = 0;
  util::TimeSec end_time = 0;
  std::uint16_t job_domain = 0;
  std::uint32_t account = 0;  ///< project id
  int sched_class = 5;
};

/// Serialize/parse the Dataset D range-list encoding.
[[nodiscard]] std::string encode_ranges(
    const std::vector<std::pair<std::int32_t, int>>& ranges);
[[nodiscard]] std::vector<std::pair<std::int32_t, int>> decode_ranges(
    const std::string& encoded);

}  // namespace exawatt::datasets
